examples/debug_hang.ml: Core Faults Front Interp List Printf Sim
