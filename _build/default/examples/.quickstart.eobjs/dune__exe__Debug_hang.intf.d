examples/debug_hang.mli:
