examples/edge_detect.ml: Apps Array Core Front Int64 List Printf Rtl Sim
