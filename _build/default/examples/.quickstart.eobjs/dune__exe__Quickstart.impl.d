examples/quickstart.ml: Core Front Interp List Printf Rtl Sim
