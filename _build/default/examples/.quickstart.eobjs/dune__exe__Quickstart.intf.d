examples/quickstart.mli:
