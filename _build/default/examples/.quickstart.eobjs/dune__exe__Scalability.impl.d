examples/scalability.ml: Apps Core Device Front List Printf Rtl Sim
