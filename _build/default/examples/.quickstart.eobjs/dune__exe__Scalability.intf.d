examples/scalability.mli:
