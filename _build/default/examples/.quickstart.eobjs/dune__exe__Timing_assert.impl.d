examples/timing_assert.ml: Core Filename Front Int64 List Printf Sim String
