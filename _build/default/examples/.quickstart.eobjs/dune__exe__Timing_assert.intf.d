examples/timing_assert.mli:
