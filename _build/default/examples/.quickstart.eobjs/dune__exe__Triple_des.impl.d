examples/triple_des.ml: Apps Core Device Front Int64 List Printf Rtl Sim
