examples/triple_des.mli:
