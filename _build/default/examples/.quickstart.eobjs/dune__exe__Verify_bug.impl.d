examples/verify_bug.ml: Core Faults Front Int64 Interp List Printf Sim
