examples/verify_bug.mli:
