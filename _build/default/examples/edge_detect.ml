(* Edge-detection case study (paper Section 5.2, Table 2).

   A pipelined 5x5 kernel processes a streamed grayscale image; two
   in-circuit assertions verify the image geometry sent by the host
   matches the hardware configuration.  Output is validated against an
   OCaml reference filter, and a deliberate geometry mismatch shows the
   assertions firing in circuit.

   Run with: dune exec examples/edge_detect.exe *)

let () =
  let w = Apps.Edge_src.default_width and h = 24 in
  let img = Apps.Edge_ref.test_image ~w ~h in
  let expected = Array.to_list (Array.map Int64.of_int (Apps.Edge_ref.filter ~w ~h img)) in
  let program =
    Front.Typecheck.parse_and_check ~file:"edge.c" (Apps.Edge_src.demo_source ())
  in
  let original = Core.Driver.compile ~strategy:Core.Driver.baseline program in
  let compiled = Core.Driver.compile ~strategy:Core.Driver.parallelized program in

  Printf.printf "image: %dx%d, 16-bit grayscale\n" w h;
  Printf.printf "area: %d ALUTs (+%d for assertions), fmax %.1f MHz (original %.1f)\n"
    compiled.Core.Driver.area.Rtl.Area.aluts
    (compiled.Core.Driver.area.Rtl.Area.aluts - original.Core.Driver.area.Rtl.Area.aluts)
    compiled.Core.Driver.timing.Rtl.Timing.fmax_mhz
    original.Core.Driver.timing.Rtl.Timing.fmax_mhz;

  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.feeds = [ ("pixels_in", Apps.Edge_ref.to_stream img) ];
      drains = [ "pixels_out" ];
      params = [ ("edge", [ ("width", Int64.of_int w); ("height", Int64.of_int h) ]) ];
    }
  in
  let run = Core.Driver.simulate ~options compiled in
  let engine = run.Core.Driver.engine in
  let out = try List.assoc "pixels_out" engine.Sim.Engine.drained with Not_found -> [] in
  Printf.printf "in-circuit run: %d cycles, %d pixels, matches reference filter: %b\n"
    engine.Sim.Engine.cycles (List.length out) (out = expected);
  List.iter
    (fun (p : Sim.Engine.pipe_stats) ->
      Printf.printf "pipeline: II=%d (measured %.2f), depth=%d, %d iterations\n"
        p.Sim.Engine.ii_static p.Sim.Engine.ii_measured p.Sim.Engine.depth_static
        p.Sim.Engine.issues)
    (List.filter (fun (p : Sim.Engine.pipe_stats) -> p.Sim.Engine.issues > 0)
       engine.Sim.Engine.pipes);

  (* Host misconfiguration: stream a wider image than the bitstream
     supports.  Software simulation of the same source would fail too —
     but only if the developer thought to simulate this case; in the
     field, the in-circuit assertion is what catches it. *)
  print_endline "\n--- host sends a 48-pixel-wide image ---";
  let bad =
    {
      options with
      Core.Driver.params =
        [ ("edge", [ ("width", 48L); ("height", Int64.of_int h) ]) ];
    }
  in
  let run = Core.Driver.simulate ~options:bad compiled in
  List.iter print_endline run.Core.Driver.messages
