(* Assertion scalability (paper Section 5.3, Figures 4 and 5).

   A streaming loopback chain of N processes, one assertion per process.
   Compares three builds: the original application, unoptimized
   assertions (one failure stream per process), and channel-shared
   assertions (one 32-bit stream per 32 assertions, Section 4.2), then
   runs the 8-stage design in circuit to show data still flows and a
   bad input is caught.

   Run with: dune exec examples/scalability.exe *)

let () =
  print_endline "  N    fmax orig  fmax unopt  fmax shared | ALUT ovh: unopt   shared";
  List.iter
    (fun n ->
      let program =
        Front.Typecheck.parse_and_check ~file:"loopback.c"
          (Apps.Loopback_src.source ~n ())
      in
      let open Core.Driver in
      let orig = compile ~strategy:baseline program in
      let unopt = compile ~strategy:unoptimized program in
      let shared =
        compile ~strategy:{ unoptimized with share = `Shared 32 } program
      in
      let ovh c =
        100.0
        *. float_of_int (c.area.Rtl.Area.aluts - orig.area.Rtl.Area.aluts)
        /. float_of_int Device.Stratix.ep2s180.Device.Stratix.aluts
      in
      Printf.printf "%4d   %8.1f    %8.1f     %8.1f |          %5.2f%%   %5.2f%%\n" n
        orig.timing.Rtl.Timing.fmax_mhz unopt.timing.Rtl.Timing.fmax_mhz
        shared.timing.Rtl.Timing.fmax_mhz (ovh unopt) (ovh shared))
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];

  print_endline "\n--- running the 8-stage chain in circuit ---";
  let n = 8 and count = 16 in
  let program =
    Front.Typecheck.parse_and_check ~file:"loopback.c" (Apps.Loopback_src.source ~n ())
  in
  let compiled =
    Core.Driver.compile ~strategy:{ Core.Driver.optimized with Core.Driver.share = `Shared 32 }
      program
  in
  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.feeds = [ ("feed_in", Apps.Loopback_src.feed ~count) ];
      drains = [ "loop_out" ];
      params = Apps.Loopback_src.params ~n ~count;
    }
  in
  let run = Core.Driver.simulate ~options compiled in
  let out =
    try List.assoc "loop_out" run.Core.Driver.engine.Sim.Engine.drained with Not_found -> []
  in
  Printf.printf "looped %d values through %d stages in %d cycles\n" (List.length out) n
    run.Core.Driver.engine.Sim.Engine.cycles;

  (* inject a zero: stage assertions require strictly positive values *)
  let bad_feed = 0L :: Apps.Loopback_src.feed ~count:(count - 1) in
  let run =
    Core.Driver.simulate
      ~options:{ options with Core.Driver.feeds = [ ("feed_in", bad_feed) ] }
      compiled
  in
  List.iter print_endline run.Core.Driver.messages
