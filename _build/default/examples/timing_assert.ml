(* Timing assertions (the paper's Section 6 future work) and the
   embedded-logic-analyzer view.

   "Future work includes adding the ability for assertions to check the
   timing of the lines of code, which would be useful for verifying
   timing properties of an application in terms of clock cycles."

   Two assert(true) markers bracket a producer's loop body; a cycle
   budget between their taps asserts the loop's service rate.  A
   downstream consumer occasionally goes slow; once backpressure stalls
   the producer past its budget, the timing assertion fires in circuit.
   The same run captures a VCD waveform — what SignalTap would give you,
   minus the source-level interpretation.

   Run with: dune exec examples/timing_assert.exe *)

let source =
  {|
stream int32 work_in depth 4;
stream int32 work_out depth 4;

process hw producer(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    assert(true);               /* marker: iteration start (tap 0) */
    stream_write(work_in, i);
    assert(true);               /* marker: iteration end (tap 1) */
  }
}

process hw consumer(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 v;
    v = stream_read(work_in);
    /* an occasional slow path: a burst of extra work every 8th item */
    if ((v & 7) == 7) {
      int32 k; int32 acc;
      acc = v;
      for (k = 0; k < 40; k = k + 1) {
        acc = acc + k;
      }
      v = acc;
    }
    stream_write(work_out, v);
  }
}
|}

let () =
  let program = Front.Typecheck.parse_and_check ~file:"timed.c" source in
  let compiled = Core.Driver.compile ~strategy:Core.Driver.parallelized program in
  let n = 32 in
  let run ~budget =
    Core.Driver.simulate
      ~options:
        {
          Core.Driver.default_sim_options with
          Core.Driver.drains = [ "work_out" ];
          params = [ ("producer", [ ("n", Int64.of_int n) ]);
                     ("consumer", [ ("n", Int64.of_int n) ]) ];
          timing_checks =
            [ { Sim.Engine.tc_name = "producer-service-rate"; from_tap = 0; to_tap = 1;
                budget; soft = false } ];
          trace = true;
          max_cycles = 10_000;
        }
      compiled
  in
  print_endline "--- generous budget: 300 cycles per iteration ---";
  let r = run ~budget:300 in
  Printf.printf "outcome: %s (%d timing violations)\n"
    (match r.Core.Driver.engine.Sim.Engine.outcome with
    | Sim.Engine.Finished -> "finished"
    | Sim.Engine.Aborted m -> m
    | _ -> "other")
    (List.length r.Core.Driver.engine.Sim.Engine.timing_violations);

  print_endline "\n--- tight budget: 8 cycles per iteration ---";
  let r = run ~budget:8 in
  (match r.Core.Driver.engine.Sim.Engine.outcome with
  | Sim.Engine.Aborted m -> Printf.printf "outcome: %s\n" m
  | _ -> print_endline "outcome: unexpectedly met the budget");
  List.iter
    (fun (name, cycle) -> Printf.printf "  violation: %s at cycle %d\n" name cycle)
    r.Core.Driver.engine.Sim.Engine.timing_violations;

  (* the logic-analyzer view of the same run *)
  (match r.Core.Driver.engine.Sim.Engine.vcd with
  | Some vcd ->
      let path = Filename.temp_file "inca_timing" ".vcd" in
      let oc = open_out path in
      output_string oc vcd;
      close_out oc;
      Printf.printf "\nwaveform (SignalTap view) written to %s (%d bytes)\n" path
        (String.length vcd)
  | None -> ())
