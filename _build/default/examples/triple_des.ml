(* Triple-DES case study (paper Section 5.2, Table 1).

   Decrypts ciphertext on the synthesized FPGA design while two
   in-circuit assertions verify every decrypted byte lies within ASCII
   text bounds.  The run is validated against an independent OCaml
   Triple-DES oracle, and the assertion overhead (area, fmax) is
   reported in the paper's format.

   Run with: dune exec examples/triple_des.exe *)

let text = "The quick brown fox jumps over the lazy dog 0123456789."

let pct part whole = 100.0 *. float_of_int part /. float_of_int whole

let overhead_row name orig assert_ total =
  Printf.printf "  %-22s %9d %9d  %+6d (%+.2f%%)\n" name orig assert_ (assert_ - orig)
    (pct (assert_ - orig) total)

let () =
  let src = Apps.Des_src.demo_source () in
  let program = Front.Typecheck.parse_and_check ~file:"des3.c" src in
  let cipher = Apps.Des_src.demo_ciphertext text in
  let expected = Apps.Des_src.demo_plaintext_blocks text in
  let nblocks = List.length cipher in

  let original = Core.Driver.compile ~strategy:Core.Driver.baseline program in
  let with_asserts = Core.Driver.compile ~strategy:Core.Driver.parallelized program in

  print_endline "=== Triple-DES assertion overhead (EP2S180) ===";
  let a = original.Core.Driver.area and b = with_asserts.Core.Driver.area in
  let cap = Device.Stratix.ep2s180 in
  overhead_row "Logic used" a.Rtl.Area.logic b.Rtl.Area.logic cap.Device.Stratix.aluts;
  overhead_row "Comb. ALUT" a.Rtl.Area.aluts b.Rtl.Area.aluts cap.Device.Stratix.aluts;
  overhead_row "Registers" a.Rtl.Area.registers b.Rtl.Area.registers cap.Device.Stratix.registers;
  overhead_row "Block RAM bits" a.Rtl.Area.ram_bits b.Rtl.Area.ram_bits cap.Device.Stratix.bram_bits;
  overhead_row "Block interconnect" a.Rtl.Area.interconnect b.Rtl.Area.interconnect
    cap.Device.Stratix.interconnect;
  Printf.printf "  %-22s %9.1f %9.1f  (%.2f%%)\n" "Frequency (MHz)"
    original.Core.Driver.timing.Rtl.Timing.fmax_mhz
    with_asserts.Core.Driver.timing.Rtl.Timing.fmax_mhz
    (100.0
    *. (with_asserts.Core.Driver.timing.Rtl.Timing.fmax_mhz
        -. original.Core.Driver.timing.Rtl.Timing.fmax_mhz)
    /. original.Core.Driver.timing.Rtl.Timing.fmax_mhz);

  print_endline "\n=== in-circuit decryption ===";
  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.feeds = [ ("cipher_in", cipher) ];
      drains = [ "plain_out" ];
      params = [ ("des3", [ ("nblocks", Int64.of_int nblocks) ]) ];
    }
  in
  let run = Core.Driver.simulate ~options with_asserts in
  let engine = run.Core.Driver.engine in
  let blocks =
    try List.assoc "plain_out" engine.Sim.Engine.drained with Not_found -> []
  in
  Printf.printf "cycles: %d, blocks: %d, matches oracle: %b\n" engine.Sim.Engine.cycles
    (List.length blocks) (blocks = expected);
  print_string "decrypted: ";
  List.iter (fun b -> print_string (Apps.Des_ref.string_of_block b)) blocks;
  print_newline ();

  (* Corrupt one ciphertext block: the ASCII assertions catch it. *)
  print_endline "\n=== corrupted ciphertext ===";
  let corrupted =
    List.mapi (fun i b -> if i = 2 then Int64.logxor b 0x4242424242424242L else b) cipher
  in
  let run =
    Core.Driver.simulate
      ~options:{ options with Core.Driver.feeds = [ ("cipher_in", corrupted) ] }
      with_asserts
  in
  List.iter print_endline run.Core.Driver.messages;
  Printf.printf "outcome: %s\n"
    (match run.Core.Driver.engine.Sim.Engine.outcome with
    | Sim.Engine.Aborted _ -> "halted on first failed assertion"
    | Sim.Engine.Finished -> "finished (corruption decrypted to valid ASCII!)"
    | _ -> "other")
