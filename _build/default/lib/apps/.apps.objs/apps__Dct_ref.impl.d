lib/apps/dct_ref.ml: Array Float Int64 List
