lib/apps/dct_ref.mli:
