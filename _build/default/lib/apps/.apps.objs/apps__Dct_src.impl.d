lib/apps/dct_src.ml: Array Buffer Dct_ref Printf String
