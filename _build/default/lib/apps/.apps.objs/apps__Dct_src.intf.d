lib/apps/dct_src.mli:
