lib/apps/des_ref.ml: Array Char Int64 List String
