lib/apps/des_ref.mli:
