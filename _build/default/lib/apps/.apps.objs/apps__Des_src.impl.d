lib/apps/des_src.ml: Array Buffer Des_ref Int64 List Printf String
