lib/apps/des_src.mli:
