lib/apps/edge_ref.ml: Array Int64
