lib/apps/edge_ref.mli:
