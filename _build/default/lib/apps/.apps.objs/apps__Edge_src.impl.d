lib/apps/edge_src.ml: Buffer List Printf String
