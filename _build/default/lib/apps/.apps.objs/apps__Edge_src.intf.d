lib/apps/edge_src.mli:
