lib/apps/fir_ref.ml: Array Int64
