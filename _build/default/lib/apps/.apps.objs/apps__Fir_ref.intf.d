lib/apps/fir_ref.mli:
