lib/apps/fir_src.ml: Array Buffer Fir_ref List Printf String
