lib/apps/fir_src.mli:
