lib/apps/loopback_src.ml: Buffer Int64 List Printf
