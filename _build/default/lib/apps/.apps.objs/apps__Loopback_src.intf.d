lib/apps/loopback_src.mli:
