lib/apps/micro_src.ml: Int64 List
