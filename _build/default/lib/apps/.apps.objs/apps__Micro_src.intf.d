lib/apps/micro_src.mli:
