lib/apps/placeholder.ml:
