(** Reference 8-point DCT-II (OCaml oracle).

    Fixed-point: coefficients are [round(1024 * c(k) * cos((2n+1) k pi / 16))]
    and outputs are scaled back by an arithmetic shift of 10.  The DCT is
    the second of the two kernels (with the FIR) used by the related
    work the paper cites for in-circuit checker fault coverage. *)

let points = 8

let scale_shift = 10

(** Row-major coefficient table, [coeff.(k * points + n)]. *)
let coeff =
  Array.init (points * points) (fun i ->
      let k = i / points and n = i mod points in
      let ck = if k = 0 then sqrt (1.0 /. float_of_int points) else sqrt (2.0 /. float_of_int points) in
      let angle =
        float_of_int ((2 * n) + 1) *. float_of_int k *. Float.pi /. (2.0 *. float_of_int points)
      in
      int_of_float (Float.round (1024.0 *. ck *. cos angle)))

(** Output magnitude bound for 16-bit inputs: |y| <= 8 * 1024 * 32768 >> 10. *)
let output_bound = 8 * 32768

(** Transform one 8-sample block. *)
let transform (block : int array) : int array =
  Array.init points (fun k ->
      let acc = ref 0 in
      for n = 0 to points - 1 do
        acc := !acc + (coeff.((k * points) + n) * block.(n))
      done;
      !acc asr scale_shift)

(** Transform a sample stream block by block (length must be a multiple
    of 8). *)
let transform_stream (samples : int array) : int array =
  let nblocks = Array.length samples / points in
  Array.concat
    (List.init nblocks (fun b -> transform (Array.sub samples (b * points) points)))

let test_blocks n =
  Array.init (n * points) (fun i -> ((i * 97) mod 2048) - 1024 + (if i mod 8 = 0 then 512 else 0))

let to_stream (samples : int array) = Array.to_list (Array.map Int64.of_int samples)
