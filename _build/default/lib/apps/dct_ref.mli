(** Reference 8-point fixed-point DCT-II (OCaml oracle) matching
    {!Dct_src}'s ROM-driven hardware kernel. *)

val points : int
val scale_shift : int

(** Row-major coefficient ROM contents, [coeff.(k * points + n)]. *)
val coeff : int array

(** Output magnitude bound asserted in circuit. *)
val output_bound : int

(** Transform one 8-sample block. *)
val transform : int array -> int array

(** Transform block by block (length must be a multiple of 8). *)
val transform_stream : int array -> int array

val test_blocks : int -> int array
val to_stream : int array -> int64 list
