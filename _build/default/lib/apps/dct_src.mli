(** 8-point DCT-II in InCA-C: coefficient matrix in a block-RAM ROM,
    block buffering, nested multiply-accumulate loops, and output-bound
    assertions.  Reads [dct_in], writes [dct_out]; process [dct],
    parameter [nblocks]. *)

val source : unit -> string
