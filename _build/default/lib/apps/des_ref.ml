(** Reference DES / Triple-DES implementation (OCaml oracle).

    Used to validate the InCA-C Triple-DES case study (paper Section
    5.2, Table 1): the generated C program must produce bit-identical
    results under both the software interpreter and the cycle-accurate
    simulator.

    Two forms of the cipher are implemented:
    - a textbook table-driven form (IP/E/S/P/PC1/PC2), validated against
      the classic published test vector; and
    - the delta-swap + packed-subkey form that the generated hardware C
      uses (no 64-entry permutation tables in the datapath).  Their
      equivalence is established by property tests, and the subkey
      packing is *derived* programmatically from the E expansion rather
      than transcribed. *)

(* --- Standard DES tables (FIPS 46-3 numbering, 1-indexed from MSB) ------ *)

let ip =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let fp =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41;  9; 49; 17; 57; 25 |]

let e_table =
  [| 32; 1; 2; 3; 4; 5; 4; 5; 6; 7; 8; 9;
      8; 9; 10; 11; 12; 13; 12; 13; 14; 15; 16; 17;
     16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32; 1 |]

let p_table =
  [| 16; 7; 20; 21; 29; 12; 28; 17; 1; 15; 23; 26; 5; 18; 31; 10;
      2; 8; 24; 14; 32; 27; 3; 9; 19; 13; 30; 6; 22; 11; 4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17;  9;  1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27; 19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;  7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29; 21; 13;  5; 28; 20; 12;  4 |]

let pc2 =
  [| 14; 17; 11; 24;  1;  5;  3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8; 16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let rotations = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

(* S-boxes: s.(box).(row*16 + col). *)
let sboxes =
  [|
    [| 14;4;13;1;2;15;11;8;3;10;6;12;5;9;0;7;
       0;15;7;4;14;2;13;1;10;6;12;11;9;5;3;8;
       4;1;14;8;13;6;2;11;15;12;9;7;3;10;5;0;
       15;12;8;2;4;9;1;7;5;11;3;14;10;0;6;13 |];
    [| 15;1;8;14;6;11;3;4;9;7;2;13;12;0;5;10;
       3;13;4;7;15;2;8;14;12;0;1;10;6;9;11;5;
       0;14;7;11;10;4;13;1;5;8;12;6;9;3;2;15;
       13;8;10;1;3;15;4;2;11;6;7;12;0;5;14;9 |];
    [| 10;0;9;14;6;3;15;5;1;13;12;7;11;4;2;8;
       13;7;0;9;3;4;6;10;2;8;5;14;12;11;15;1;
       13;6;4;9;8;15;3;0;11;1;2;12;5;10;14;7;
       1;10;13;0;6;9;8;7;4;15;14;3;11;5;2;12 |];
    [| 7;13;14;3;0;6;9;10;1;2;8;5;11;12;4;15;
       13;8;11;5;6;15;0;3;4;7;2;12;1;10;14;9;
       10;6;9;0;12;11;7;13;15;1;3;14;5;2;8;4;
       3;15;0;6;10;1;13;8;9;4;5;11;12;7;2;14 |];
    [| 2;12;4;1;7;10;11;6;8;5;3;15;13;0;14;9;
       14;11;2;12;4;7;13;1;5;0;15;10;3;9;8;6;
       4;2;1;11;10;13;7;8;15;9;12;5;6;3;0;14;
       11;8;12;7;1;14;2;13;6;15;0;9;10;4;5;3 |];
    [| 12;1;10;15;9;2;6;8;0;13;3;4;14;7;5;11;
       10;15;4;2;7;12;9;5;6;1;13;14;0;11;3;8;
       9;14;15;5;2;8;12;3;7;0;4;10;1;13;11;6;
       4;3;2;12;9;5;15;10;11;14;1;7;6;0;8;13 |];
    [| 4;11;2;14;15;0;8;13;3;12;9;7;5;10;6;1;
       13;0;11;7;4;9;1;10;14;3;5;12;2;15;8;6;
       1;4;11;13;12;3;7;14;10;15;6;8;0;5;9;2;
       6;11;13;8;1;4;10;7;9;5;0;15;14;2;3;12 |];
    [| 13;2;8;4;6;15;11;1;10;9;3;14;5;0;12;7;
       1;15;13;8;10;3;7;4;12;5;6;11;0;14;9;2;
       7;11;4;1;9;12;14;2;0;6;10;13;15;3;5;8;
       2;1;14;7;4;10;8;13;15;12;9;0;3;5;6;11 |];
  |]

(* --- Bit helpers (1-indexed from MSB, as the tables are written) -------- *)

let get_bit_64 v i = Int64.to_int (Int64.logand (Int64.shift_right_logical v (64 - i)) 1L)

let permute_64 table width v =
  let r = ref 0L in
  Array.iteri
    (fun out_idx src ->
      let bit = get_bit_64 v src in
      if bit = 1 then r := Int64.logor !r (Int64.shift_left 1L (width - 1 - out_idx)))
    table;
  !r

(* permutation over a [w]-bit quantity held in an int (w <= 56) *)
let get_bit w v i = (v lsr (w - i)) land 1

let permute table in_width out_width v =
  let r = ref 0 in
  Array.iteri
    (fun out_idx src ->
      if get_bit in_width v src = 1 then r := !r lor (1 lsl (out_width - 1 - out_idx)))
    table;
  !r

(* --- Key schedule --------------------------------------------------------- *)

let mask28 = (1 lsl 28) - 1

let rotl28 v n = ((v lsl n) lor (v lsr (28 - n))) land mask28

(** 16 48-bit subkeys (as ints) for one 64-bit key. *)
let key_schedule (key : int64) : int array =
  (* [permute_64] right-aligns its [width]-bit result *)
  let v56 = Int64.to_int (permute_64 pc1 56 key) in
  let c = ref ((v56 lsr 28) land mask28) in
  let d = ref (v56 land mask28) in
  Array.map
    (fun rot ->
      c := rotl28 !c rot;
      d := rotl28 !d rot;
      let cd56 = (!c lsl 28) lor !d in
      permute pc2 56 48 cd56)
    rotations

(* --- Round function -------------------------------------------------------- *)

let mask32 = 0xFFFFFFFF

(** f(R, K48): expansion, key mix, S-boxes, permutation P. *)
let f_table (r : int) (k48 : int) : int =
  (* E expansion of the 32-bit half *)
  let e = ref 0 in
  Array.iteri
    (fun out_idx src ->
      if get_bit 32 r src = 1 then e := !e lor (1 lsl (48 - 1 - out_idx)))
    e_table;
  let x = !e lxor k48 in
  let s_out = ref 0 in
  for box = 0 to 7 do
    let chunk = (x lsr (42 - (6 * box))) land 0x3f in
    let row = ((chunk lsr 4) land 2) lor (chunk land 1) in
    let col = (chunk lsr 1) land 0xf in
    let v = sboxes.(box).((row * 16) + col) in
    s_out := !s_out lor (v lsl (28 - (4 * box)))
  done;
  permute p_table 32 32 !s_out

(** One DES block operation with the given subkey order. *)
let des_block (subkeys : int array) (block : int64) : int64 =
  let permuted = permute_64 ip 64 block in
  let l = ref (Int64.to_int (Int64.shift_right_logical permuted 32) land mask32) in
  let r = ref (Int64.to_int (Int64.logand permuted 0xFFFFFFFFL)) in
  Array.iter
    (fun k ->
      let nl = !r in
      let nr = !l lxor f_table !r k in
      l := nl;
      r := nr land mask32)
    subkeys;
  (* final swap then FP *)
  let preoutput =
    Int64.logor (Int64.shift_left (Int64.of_int (!r land mask32)) 32)
      (Int64.of_int (!l land mask32))
  in
  permute_64 fp 64 preoutput

let encrypt_subkeys key = key_schedule key

let decrypt_subkeys key =
  let ks = key_schedule key in
  Array.init 16 (fun i -> ks.(15 - i))

let encrypt key block = des_block (encrypt_subkeys key) block
let decrypt key block = des_block (decrypt_subkeys key) block

(* --- Triple DES (EDE) ------------------------------------------------------- *)

let encrypt3 ~k1 ~k2 ~k3 block = encrypt k3 (decrypt k2 (encrypt k1 block))
let decrypt3 ~k1 ~k2 ~k3 block = decrypt k1 (encrypt k2 (decrypt k3 block))

(* --- Packed-subkey / delta-swap form (what the hardware C uses) ----------- *)

(* Delta swap: exchange the bits of [v] selected by [mask] between
   positions i and i+delta.  The standard constant-time IP/FP kernels. *)
let delta_swap_pair (l, r) shift mask =
  (* work = ((l >> shift) ^ r) & mask; r ^= work; l ^= work << shift *)
  let work = ((l lsr shift) lxor r) land mask in
  ((l lxor (work lsl shift)) land mask32, (r lxor work) land mask32)

(* IP expressed as delta swaps (Hoey/Outerbridge form).  Produces the
   same (l, r) as the table IP; equivalence is property-tested. *)
let ip_twiddle (block : int64) : int * int =
  let l = Int64.to_int (Int64.shift_right_logical block 32) land mask32 in
  let r = Int64.to_int (Int64.logand block 0xFFFFFFFFL) in
  let l, r = delta_swap_pair (l, r) 4 0x0f0f0f0f in
  let l, r = delta_swap_pair (l, r) 16 0x0000ffff in
  let r, l = delta_swap_pair (r, l) 2 0x33333333 in
  let r, l = delta_swap_pair (r, l) 8 0x00ff00ff in
  let l, r = delta_swap_pair (l, r) 1 0x55555555 in
  (l, r)

(* Inverse of [ip_twiddle]. *)
let fp_twiddle (l, r) : int64 =
  let l, r = delta_swap_pair (l, r) 1 0x55555555 in
  let r, l = delta_swap_pair (r, l) 8 0x00ff00ff in
  let r, l = delta_swap_pair (r, l) 2 0x33333333 in
  let l, r = delta_swap_pair (l, r) 16 0x0000ffff in
  let l, r = delta_swap_pair (l, r) 4 0x0f0f0f0f in
  Int64.logor
    (Int64.shift_left (Int64.of_int (l land mask32)) 32)
    (Int64.of_int (r land mask32))

(* SP tables: S-box composed with P, with the 6-bit input taken directly
   (bit 5..0 = E-expansion field). *)
let sp_tables =
  Array.init 8 (fun box ->
      Array.init 64 (fun chunk ->
          let row = ((chunk lsr 4) land 2) lor (chunk land 1) in
          let col = (chunk lsr 1) land 0xf in
          let v = sboxes.(box).((row * 16) + col) in
          permute p_table 32 32 (v lsl (28 - (4 * box)))))

let rotr32 v n = if n = 0 then v land mask32 else ((v lsr n) lor (v lsl (32 - n))) land mask32
let rotl32 v n = rotr32 v ((32 - n) land 31)

(* The E-expansion groups are stride-4 sliding windows over R, so all
   eight 6-bit S-box inputs are byte-aligned fields of just two rotated
   copies of R: rotr(R,3) carries the even groups (S1,S3,S5,S7) and
   rotl(R,1) the odd ones, at offsets 24/16/8/0.  We *derive* this map
   (and therefore the subkey packing) by checking single-bit patterns
   against the E table rather than transcribing it. *)
type field_src = Rot_r3 | Rot_l1

let derive_field_map () =
  let e_group r g =
    (* 6-bit E field g of the 32-bit half r, MSB of the field first *)
    let x = ref 0 in
    for j = 0 to 5 do
      let src = e_table.((6 * g) + j) in
      if get_bit 32 r src = 1 then x := !x lor (1 lsl (5 - j))
    done;
    !x
  in
  let field src ofs v =
    let w = match src with Rot_r3 -> rotr32 v 3 | Rot_l1 -> rotl32 v 1 in
    (w lsr ofs) land 0x3f
  in
  let candidates =
    List.concat_map (fun src -> List.map (fun ofs -> (src, ofs)) [ 0; 8; 16; 24 ])
      [ Rot_r3; Rot_l1 ]
  in
  let matches g (src, ofs) =
    let ok = ref true in
    for bit = 0 to 31 do
      let r = 1 lsl bit in
      if field src ofs r <> e_group r g then ok := false
    done;
    !ok
  in
  Array.init 8 (fun g ->
      match List.find_opt (matches g) candidates with
      | Some c -> c
      | None -> raise Not_found)

let field_map = try Some (derive_field_map ()) with Not_found -> None

(** Pack 16 48-bit subkeys into 32 32-bit words for the rotation-based
    round function: word [2i] mixes with rotr(R,3) (even S-boxes), word
    [2i+1] with rotl(R,1) (odd S-boxes). *)
let pack_subkeys (subkeys : int array) : int array =
  match field_map with
  | None -> invalid_arg "pack_subkeys: field map underivable"
  | Some fm ->
      let packed = Array.make 32 0 in
      Array.iteri
        (fun i k48 ->
          let even = ref 0 and odd = ref 0 in
          Array.iteri
            (fun g (src, ofs) ->
              let group = (k48 lsr (42 - (6 * g))) land 0x3f in
              match src with
              | Rot_r3 -> even := !even lor (group lsl ofs)
              | Rot_l1 -> odd := !odd lor (group lsl ofs))
            fm;
          packed.(2 * i) <- !even;
          packed.((2 * i) + 1) <- !odd)
        subkeys;
      packed

(** Round function in packed form; equals [f_table r k48]. *)
let f_packed (r : int) (k_even : int) (k_odd : int) : int =
  match field_map with
  | None -> invalid_arg "f_packed: field map underivable"
  | Some fm ->
      let w_even = rotr32 r 3 lxor k_even in
      let w_odd = rotl32 r 1 lxor k_odd in
      let acc = ref 0 in
      Array.iteri
        (fun g (src, ofs) ->
          let work = match src with Rot_r3 -> w_even | Rot_l1 -> w_odd in
          acc := !acc lor sp_tables.(g).((work lsr ofs) land 0x3f))
        fm;
      !acc land mask32

(** DES block using the delta-swap + packed-subkey form. *)
let des_block_packed (packed : int array) (block : int64) : int64 =
  let l, r = ip_twiddle block in
  let l = ref l and r = ref r in
  for round = 0 to 15 do
    let fval = f_packed !r packed.(2 * round) packed.((2 * round) + 1) in
    let nl = !r and nr = (!l lxor fval) land mask32 in
    l := nl;
    r := nr
  done;
  fp_twiddle (!r, !l)

(** Packed subkeys for a whole 3DES decryption (three passes). *)
let decrypt3_packed_keys ~k1 ~k2 ~k3 =
  Array.concat
    [
      pack_subkeys (decrypt_subkeys k3);
      pack_subkeys (encrypt_subkeys k2);
      pack_subkeys (decrypt_subkeys k1);
    ]

let decrypt3_packed ~k1 ~k2 ~k3 block =
  let ks = decrypt3_packed_keys ~k1 ~k2 ~k3 in
  let pass i b = des_block_packed (Array.sub ks (32 * i) 32) b in
  pass 2 (pass 1 (pass 0 block))

(* --- Text helpers for the case study --------------------------------------- *)

(** Pack 8 bytes (padded with spaces) into a big-endian 64-bit block. *)
let block_of_string s =
  let b = ref 0L in
  for i = 0 to 7 do
    let c = if i < String.length s then Char.code s.[i] else 0x20 in
    b := Int64.logor (Int64.shift_left !b 8) (Int64.of_int c)
  done;
  !b

let string_of_block v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

(** Encrypt an ASCII string into 64-bit blocks (EDE 3DES). *)
let encrypt3_string ~k1 ~k2 ~k3 text =
  let nblocks = (String.length text + 7) / 8 in
  List.init nblocks (fun i ->
      let chunk = String.sub text (8 * i) (min 8 (String.length text - (8 * i))) in
      encrypt3 ~k1 ~k2 ~k3 (block_of_string chunk))
