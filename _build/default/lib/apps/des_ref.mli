(** Reference DES / Triple-DES (OCaml oracle).

    Two equivalent forms of the cipher:
    - a textbook table-driven form (IP/E/S/P/PC1/PC2), validated against
      the classic published test vector;
    - the delta-swap + packed-subkey form the generated hardware C uses,
      whose subkey packing is *derived* from the E-expansion table
      rather than transcribed.

    The Triple-DES case study (paper Section 5.2, Table 1) is validated
    against this module. *)

(** {1 Standard tables (FIPS 46-3 numbering)} *)

val ip : int array
val fp : int array
val e_table : int array
val p_table : int array
val pc1 : int array
val pc2 : int array
val rotations : int array
val sboxes : int array array

(** Generic bit permutation of a 64-bit quantity (1-indexed from MSB);
    the [width]-bit result is right-aligned. *)
val permute_64 : int array -> int -> int64 -> int64

(** {1 Single DES} *)

(** 16 48-bit subkeys for one 64-bit key. *)
val key_schedule : int64 -> int array

val encrypt_subkeys : int64 -> int array
val decrypt_subkeys : int64 -> int array

(** One block operation with an explicit subkey order. *)
val des_block : int array -> int64 -> int64

val encrypt : int64 -> int64 -> int64
val decrypt : int64 -> int64 -> int64

(** {1 Triple DES (EDE)} *)

val encrypt3 : k1:int64 -> k2:int64 -> k3:int64 -> int64 -> int64
val decrypt3 : k1:int64 -> k2:int64 -> k3:int64 -> int64 -> int64

(** {1 Delta-swap / packed-subkey form (hardware shape)} *)

(** IP as delta swaps; returns the (left, right) halves. *)
val ip_twiddle : int64 -> int * int

(** Inverse of {!ip_twiddle}. *)
val fp_twiddle : int * int -> int64

(** S-boxes composed with the P permutation. *)
val sp_tables : int array array

(** Which rotated copy of R ([rotr 3] or [rotl 1]) carries each S-box's
    E-expansion field. *)
type field_src = Rot_r3 | Rot_l1

(** Derived (S-box -> source, byte offset) map; [None] would mean the
    derivation failed (it cannot, for real DES tables). *)
val field_map : (field_src * int) array option

(** Pack 16 48-bit subkeys into 32 32-bit words for the rotation-based
    round function. *)
val pack_subkeys : int array -> int array

(** Round function in packed form; equals the table-driven [f]. *)
val f_packed : int -> int -> int -> int

val des_block_packed : int array -> int64 -> int64

(** 96 packed words for a full 3DES decryption (three passes, already in
    decryption order). *)
val decrypt3_packed_keys : k1:int64 -> k2:int64 -> k3:int64 -> int array

val decrypt3_packed : k1:int64 -> k2:int64 -> k3:int64 -> int64 -> int64

(** {1 Text helpers} *)

(** Pack up to 8 bytes (space padded) big-endian. *)
val block_of_string : string -> int64

val string_of_block : int64 -> string

(** Encrypt an ASCII string into 64-bit blocks. *)
val encrypt3_string : k1:int64 -> k2:int64 -> k3:int64 -> string -> int64 list
