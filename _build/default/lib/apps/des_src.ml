(** Triple-DES decryption in InCA-C (paper Section 5.2, Table 1).

    Generates the hardware process an Impulse-C user would write: S-P
    tables and packed round keys as block-RAM ROMs, the delta-swap
    initial/final permutations, and sixteen rotation-based rounds per
    pass.  The round-field layout is emitted from the *derived* map in
    {!Des_ref}, so the generated code is correct by construction against
    the table-driven reference.

    The paper's two verification assertions check that every decrypted
    byte lies within the bounds of an ASCII text file. *)

let spf = Printf.sprintf

let emit_const_table buf name (values : int array) =
  Buffer.add_string buf
    (spf "  const uint32 %s[%d] = { %s };\n" name (Array.length values)
       (String.concat ", "
          (Array.to_list (Array.map (fun v -> Int64.to_string (Int64.of_int v)) values))))

(* The 8 S-P lookups of one round, emitted from the derived field map. *)
let round_lookup_exprs () =
  match Des_ref.field_map with
  | None -> failwith "DES field map underivable"
  | Some fm ->
      let parts = ref [] in
      Array.iteri
        (fun g (src, ofs) ->
          let word = match src with Des_ref.Rot_r3 -> "we" | Des_ref.Rot_l1 -> "wo" in
          let field =
            if ofs = 0 then spf "%s & 63" word else spf "(%s >> %d) & 63" word ofs
          in
          parts := spf "sp%d[%s]" (g + 1) field :: !parts)
        fm;
      List.rev !parts

(** Generate the 3DES decryption program.  [k1 k2 k3] are the EDE keys;
    the subkey ROMs are emitted in decryption order so the hardware loop
    always runs forward. *)
let source ~k1 ~k2 ~k3 () =
  let packed = Des_ref.decrypt3_packed_keys ~k1 ~k2 ~k3 in
  let kse = Array.init 48 (fun i -> packed.(2 * i)) in
  let kso = Array.init 48 (fun i -> packed.((2 * i) + 1)) in
  let buf = Buffer.create 16384 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "stream int64 cipher_in depth 16;";
  p "stream int64 plain_out depth 16;";
  p "";
  p "process hw des3(int32 nblocks) {";
  Array.iteri
    (fun i tbl -> emit_const_table buf (spf "sp%d" (i + 1)) tbl)
    Des_ref.sp_tables;
  emit_const_table buf "kse" kse;
  emit_const_table buf "kso" kso;
  p "  int32 b;";
  p "  for (b = 0; b < nblocks; b = b + 1) {";
  p "    int64 blk;";
  p "    blk = stream_read(cipher_in);";
  p "    uint32 l; uint32 r; uint32 t;";
  p "    l = (uint32)(blk >> 32);";
  p "    r = (uint32)blk;";
  p "    int32 pass;";
  p "    for (pass = 0; pass < 3; pass = pass + 1) {";
  p "      /* initial permutation (delta swaps) */";
  p "      t = ((l >> 4) ^ r) & 252645135; r = r ^ t; l = l ^ (t << 4);";
  p "      t = ((l >> 16) ^ r) & 65535; r = r ^ t; l = l ^ (t << 16);";
  p "      t = ((r >> 2) ^ l) & 858993459; l = l ^ t; r = r ^ (t << 2);";
  p "      t = ((r >> 8) ^ l) & 16711935; l = l ^ t; r = r ^ (t << 8);";
  p "      t = ((l >> 1) ^ r) & 1431655765; r = r ^ t; l = l ^ (t << 1);";
  p "      int32 round;";
  p "      for (round = 0; round < 16; round = round + 1) {";
  p "        uint32 ke; uint32 ko;";
  p "        ke = kse[pass * 16 + round];";
  p "        ko = kso[pass * 16 + round];";
  p "        uint32 we; uint32 wo;";
  p "        we = ((r >> 3) | (r << 29)) ^ ke;";
  p "        wo = ((r << 1) | (r >> 31)) ^ ko;";
  p "        uint32 f;";
  p "        f = %s;" (String.concat "\n          | " (round_lookup_exprs ()));
  p "        uint32 nl;";
  p "        nl = r;";
  p "        r = l ^ f;";
  p "        l = nl;";
  p "      }";
  p "      /* undo the final swap, then final permutation */";
  p "      t = r; r = l; l = t;";
  p "      t = ((l >> 1) ^ r) & 1431655765; r = r ^ t; l = l ^ (t << 1);";
  p "      t = ((r >> 8) ^ l) & 16711935; l = l ^ t; r = r ^ (t << 8);";
  p "      t = ((r >> 2) ^ l) & 858993459; l = l ^ t; r = r ^ (t << 2);";
  p "      t = ((l >> 16) ^ r) & 65535; r = r ^ t; l = l ^ (t << 16);";
  p "      t = ((l >> 4) ^ r) & 252645135; r = r ^ t; l = l ^ (t << 4);";
  p "    }";
  p "    int64 res;";
  p "    res = ((int64)l << 32) | (int64)r;";
  p "    /* verification: decrypted bytes must look like ASCII text */";
  p "    int32 k;";
  p "    for (k = 0; k < 8; k = k + 1) {";
  p "      int32 c;";
  p "      c = (int32)((res >> ((7 - k) * 8)) & 255);";
  p "      assert(c < 127);";
  p "      assert(c >= 9);";
  p "    }";
  p "    stream_write(plain_out, res);";
  p "  }";
  p "}";
  Buffer.contents buf

(** Demo keys used throughout tests and benches. *)
let demo_keys = (0x133457799BBCDFF1L, 0x0123456789ABCDEFL, 0xFEDCBA9876543210L)

let demo_source () =
  let k1, k2, k3 = demo_keys in
  source ~k1 ~k2 ~k3 ()

(** Ciphertext blocks for [text] under the demo keys. *)
let demo_ciphertext text =
  let k1, k2, k3 = demo_keys in
  Des_ref.encrypt3_string ~k1 ~k2 ~k3 text

(** Expected plaintext blocks (the oracle). *)
let demo_plaintext_blocks text =
  let nblocks = (String.length text + 7) / 8 in
  List.init nblocks (fun i ->
      let chunk = String.sub text (8 * i) (min 8 (String.length text - (8 * i))) in
      Des_ref.block_of_string chunk)
