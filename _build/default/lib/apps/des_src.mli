(** Triple-DES decryption in InCA-C (paper Section 5.2, Table 1).

    Generates the hardware process an Impulse-C user would write: S-P
    tables and packed round keys as block-RAM ROMs, delta-swap
    initial/final permutations, sixteen rotation-based rounds per pass,
    and the paper's two ASCII-bounds verification assertions on every
    decrypted byte. *)

(** Generate the program for EDE keys (subkey ROMs are emitted in
    decryption order so the hardware loop always runs forward). *)
val source : k1:int64 -> k2:int64 -> k3:int64 -> unit -> string

(** Fixed keys used by tests and benches. *)
val demo_keys : int64 * int64 * int64

val demo_source : unit -> string

(** Ciphertext blocks for [text] under the demo keys. *)
val demo_ciphertext : string -> int64 list

(** Expected plaintext blocks (the oracle). *)
val demo_plaintext_blocks : string -> int64 list
