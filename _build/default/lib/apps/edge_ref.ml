(** Reference edge-detection filter (OCaml oracle).

    Matches the streaming hardware implementation in {!Edge_src}: a 5x5
    Laplacian-style kernel (center weight 24, others -1, i.e.
    |25*center - window sum|) over a row-major pixel stream, with the
    first four rows and columns emitting zero while the line buffers and
    window warm up. *)

let window = 5

(** [filter ~w ~h pixels] where [pixels.(y * w + x)] is the input image.
    Returns the output image in the same layout. *)
let filter ~w ~h (pixels : int array) : int array =
  let out = Array.make (w * h) 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if y >= window - 1 && x >= window - 1 then begin
        let sum = ref 0 in
        for dy = 0 to window - 1 do
          for dx = 0 to window - 1 do
            sum := !sum + pixels.(((y - (window - 1) + dy) * w) + (x - (window - 1) + dx))
          done
        done;
        let center = pixels.(((y - 2) * w) + (x - 2)) in
        let v = (25 * center) - !sum in
        out.((y * w) + x) <- abs v
      end
    done
  done;
  out

(** Deterministic synthetic test image: a bright square on a gradient
    (16-bit grayscale, as in the paper's bitmap input). *)
let test_image ~w ~h : int array =
  Array.init (w * h) (fun i ->
      let y = i / w and x = i mod w in
      let base = (x * 37) + (y * 11) in
      let square = if x > w / 4 && x < w / 2 && y > h / 4 && y < h / 2 then 20000 else 0 in
      (base + square) land 0xFFFF)

let to_stream (img : int array) = Array.to_list (Array.map Int64.of_int img)
