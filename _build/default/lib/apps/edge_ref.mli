(** Reference edge-detection filter (OCaml oracle) for the paper's
    Section 5.2 / Table 2 case study: a 5x5 Laplacian-style kernel
    (|25*center - window sum|) over a row-major 16-bit pixel stream,
    with zero output while the line buffers warm up. *)

val window : int

(** [filter ~w ~h pixels] with [pixels.(y * w + x)]; returns the output
    image in the same layout. *)
val filter : w:int -> h:int -> int array -> int array

(** Deterministic synthetic image: a bright square on a gradient. *)
val test_image : w:int -> h:int -> int array

val to_stream : int array -> int64 list
