(** Edge-detection in InCA-C (paper Section 5.2, Table 2).

    The hardware is configured for a fixed image geometry; pixels stream
    in row-major order through four line buffers and a 5x5 register
    window, and the filtered image streams back.  The paper's two
    assertions check that the image size sent by the host matches the
    hardware configuration — the exact bug class (host/FPGA
    configuration mismatch) that software simulation shares and
    therefore never exposes. *)

let spf = Printf.sprintf

(** Generate the program for a [width] x [height] configuration. *)
let source ~width () =
  let buf = Buffer.create 8192 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "stream int32 pixels_in depth 16;";
  p "stream int32 pixels_out depth 16;";
  p "";
  p "process hw edge(int32 width, int32 height) {";
  p "  /* the FPGA bitstream is built for one geometry (Section 5.2) */";
  p "  assert(width == %d);" width;
  p "  assert(height > 4);";
  for r = 0 to 3 do
    p "  int32 lb%d[%d];" r width
  done;
  (* the 5x5 window registers *)
  for r = 0 to 4 do
    for c = 0 to 4 do
      p "  int32 w%d%d;" r c
    done
  done;
  p "  int32 x; int32 y;";
  p "  for (y = 0; y < height; y = y + 1) {";
  p "    #pragma pipeline";
  p "    for (x = 0; x < width; x = x + 1) {";
  p "      int32 pix;";
  p "      pix = stream_read(pixels_in);";
  (* column y-4..y-1 from the line buffers *)
  for r = 0 to 3 do
    p "      int32 c%d;" r;
    p "      c%d = lb%d[x];" r r
  done;
  (* shift the line buffers up one row *)
  for r = 0 to 2 do
    p "      lb%d[x] = c%d;" r (r + 1)
  done;
  p "      lb3[x] = pix;";
  (* shift the window left *)
  for r = 0 to 4 do
    for c = 0 to 3 do
      p "      w%d%d = w%d%d;" r c r (c + 1)
    done
  done;
  for r = 0 to 3 do
    p "      w%d4 = c%d;" r r
  done;
  p "      w44 = pix;";
  (* 5x5 kernel: |25*center - sum| *)
  let terms =
    List.concat_map (fun r -> List.init 5 (fun c -> spf "w%d%d" r c)) [ 0; 1; 2; 3; 4 ]
  in
  p "      int32 total;";
  p "      total = %s;" (String.concat " + " terms);
  p "      int32 v;";
  p "      v = w22 * 25 - total;";
  p "      int32 mag;";
  p "      mag = v;";
  p "      if (v < 0) {";
  p "        mag = 0 - v;";
  p "      }";
  p "      int32 o;";
  p "      o = 0;";
  p "      if (y >= 4 && x >= 4) {";
  p "        o = mag;";
  p "      }";
  p "      stream_write(pixels_out, o);";
  p "    }";
  p "  }";
  p "}";
  Buffer.contents buf

let default_width = 32

let demo_source () = source ~width:default_width ()
