(** Edge-detection in InCA-C (paper Section 5.2, Table 2): a pipelined
    5x5 kernel over a row-major pixel stream with four line buffers and
    a register window; two assertions verify the host's image geometry
    matches the hardware configuration. *)

(** Generate the program for a fixed [width] (the height stays a runtime
    parameter checked only for plausibility). *)
val source : width:int -> unit -> string

val default_width : int

val demo_source : unit -> string
