(** Reference 16-tap FIR filter (OCaml oracle).

    Matches {!Fir_src}: a direct-form integer FIR with a register-window
    delay line (initialized to zero), accumulator clipping assertions,
    and a final arithmetic shift.  The classic DSP kernel for
    accelerator case studies — and a natural home for in-circuit
    overflow assertions. *)

(** Low-pass-ish integer coefficient set (sums to 512). *)
let coefficients =
  [| 2; 6; 13; 25; 41; 58; 72; 79; 79; 72; 58; 41; 25; 13; 6; 2 |]

let taps = Array.length coefficients

let output_shift = 9  (* divide by the coefficient sum's magnitude *)

(** Accumulator bound asserted in circuit: inputs are 16-bit audio-style
    samples, so |acc| <= 512 * 32768. *)
let acc_bound = 512 * 32768

(** [filter samples] returns the filtered stream (same length; the
    window starts zeroed). *)
let filter (samples : int array) : int array =
  let window = Array.make taps 0 in
  Array.map
    (fun x ->
      (* shift the delay line *)
      for k = taps - 1 downto 1 do
        window.(k) <- window.(k - 1)
      done;
      window.(0) <- x;
      let acc = ref 0 in
      for k = 0 to taps - 1 do
        acc := !acc + (coefficients.(k) * window.(k))
      done;
      !acc asr output_shift)
    samples

(** A synthetic test signal: two tones plus a step. *)
let test_signal n =
  Array.init n (fun i ->
      let t = float_of_int i in
      let tone =
        (8000.0 *. sin (t /. 3.0)) +. (3000.0 *. sin (t /. 17.0))
      in
      let step = if i > n / 2 then 4000 else 0 in
      int_of_float tone + step)

let to_stream (samples : int array) = Array.to_list (Array.map Int64.of_int samples)
