(** Reference 16-tap integer FIR filter (OCaml oracle), matching
    {!Fir_src}'s register-window hardware: zero-initialized delay line,
    accumulator bound assertions, arithmetic output shift. *)

val coefficients : int array
val taps : int
val output_shift : int

(** Accumulator bound asserted in circuit. *)
val acc_bound : int

val filter : int array -> int array

(** Synthetic test signal: two tones plus a step. *)
val test_signal : int -> int array

val to_stream : int array -> int64 list
