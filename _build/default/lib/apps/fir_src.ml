(** 16-tap FIR filter in InCA-C.

    A pipelined direct-form FIR with the delay line held in registers
    (shift every cycle, II = 1) and constant coefficients folded into
    the multiply tree.  Two in-circuit assertions guard the accumulator
    against overflow — the property a designer cannot check from the
    output alone once the final shift has discarded the high bits. *)

let spf = Printf.sprintf

let source () =
  let taps = Fir_ref.taps in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "stream int32 samples_in depth 16;";
  p "stream int32 samples_out depth 16;";
  p "";
  p "process hw fir(int32 n) {";
  for k = 0 to taps - 1 do
    p "  int32 w%d;" k
  done;
  p "  int32 i;";
  p "  #pragma pipeline";
  p "  for (i = 0; i < n; i = i + 1) {";
  p "    int32 x;";
  p "    x = stream_read(samples_in);";
  for k = taps - 1 downto 1 do
    p "    w%d = w%d;" k (k - 1)
  done;
  p "    w0 = x;";
  let products =
    List.init taps (fun k -> spf "w%d * %d" k Fir_ref.coefficients.(k))
  in
  p "    int32 acc;";
  p "    acc = %s;" (String.concat " + " products);
  p "    /* overflow guards: the output shift would hide a wrapped accumulator */";
  p "    assert(acc <= %d);" Fir_ref.acc_bound;
  p "    assert(acc >= %d);" (-Fir_ref.acc_bound);
  p "    stream_write(samples_out, acc >> %d);" Fir_ref.output_shift;
  p "  }";
  p "}";
  Buffer.contents buf
