(** 16-tap FIR filter in InCA-C: a pipelined direct-form filter (delay
    line in registers, II = 1) with two in-circuit assertions guarding
    the accumulator against overflow — the property the output shift
    hides.  Reads [samples_in], writes [samples_out]; process [fir],
    parameter [n]. *)

val source : unit -> string
