(** Streaming-loopback scalability application (paper Section 5.3,
    Figures 4 and 5).

    A chain of [n] identical hardware processes: each stage receives a
    value, stores it into a local block RAM, reads it back, asserts it
    is positive, and forwards it.  Every stage therefore adds one
    application stream — and, unoptimized, one assertion failure stream,
    which is exactly the channel pressure the resource-sharing
    optimization removes (one 32-bit channel per 32 assertions). *)

let spf = Printf.sprintf

let stage_stream k = if k = 0 then "feed_in" else spf "link%d" k

(** Generate the [n]-process loopback chain. *)
let source ~n () =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for k = 0 to n - 1 do
    p "stream int32 %s depth 16;" (stage_stream k)
  done;
  p "stream int32 loop_out depth 16;";
  p "";
  for k = 0 to n - 1 do
    let inp = stage_stream k in
    let out = if k = n - 1 then "loop_out" else stage_stream (k + 1) in
    p "process hw stage%d(int32 count) {" k;
    p "  int32 buf[4];";
    p "  int32 i;";
    p "  for (i = 0; i < count; i = i + 1) {";
    p "    int32 v;";
    p "    v = stream_read(%s);" inp;
    p "    buf[i & 3] = v;";
    p "    int32 w;";
    p "    w = buf[i & 3];";
    p "    assert(w > 0);";
    p "    stream_write(%s, w);" out;
    p "  }";
    p "}";
    p ""
  done;
  Buffer.contents buf

(** Simulation parameters: all stages run [count] iterations. *)
let params ~n ~count =
  List.init n (fun k -> (spf "stage%d" k, [ ("count", Int64.of_int count) ]))

let feed ~count = List.init count (fun i -> Int64.of_int (i + 1))
