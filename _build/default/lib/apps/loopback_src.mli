(** Streaming-loopback scalability application (paper Section 5.3,
    Figures 4-5): a chain of [n] identical processes, each storing,
    re-reading, asserting and forwarding every value — one application
    stream and (unoptimized) one failure stream per stage. *)

(** Input stream of stage [k] ([feed_in] for stage 0). *)
val stage_stream : int -> string

val source : n:int -> unit -> string

(** Parameter bindings running every stage for [count] iterations. *)
val params : n:int -> count:int -> (string * (string * int64) list) list

(** [count] strictly positive values (the stage assertions require > 0). *)
val feed : count:int -> int64 list
