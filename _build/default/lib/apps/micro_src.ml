(** Micro-kernels for the paper's Section 5.4 performance analysis
    (Tables 3 and 4): single-comparison assertions over scalars and
    arrays, in non-pipelined and pipelined loops.

    Each kernel is written so the *application's* schedule matches the
    paper's baseline (latency/rate before assertions), and the assertion
    exercises the exact contention scenario of its table row. *)

(* --- Table 3: non-pipelined loops --------------------------------------- *)

(** Scalar-variable assertion in a plain loop. *)
let scalar_nonpipelined =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw kernel(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(input);
    int32 y;
    y = x + 1;
    assert(x > 0);
    stream_write(output, y);
  }
}
|}

(** Array assertion, non-consecutive access: the application's only use
    of the block RAM is early in the iteration, so a later state has a
    free port for the assertion's read. *)
let array_nonconsecutive =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw kernel(int32 n) {
  int32 a[16];
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 j;
    j = i & 15;
    int32 x;
    x = stream_read(input);
    a[j] = x;
    int32 y;
    y = x + 5;
    int32 z;
    z = y * y;
    assert(a[j] > 0);
    stream_write(output, z);
  }
}
|}

(** Array assertion, consecutive access: the application occupies the
    RAM port in back-to-back states, so the assertion's read needs a
    state of its own. *)
let array_consecutive =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw kernel(int32 n) {
  int32 a[16];
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(input);
    a[i & 15] = x;
    int32 y;
    y = a[(i ^ 1) & 15];
    assert(a[(i + 4) & 15] >= 0);
    stream_write(output, y);
  }
}
|}

(* --- Table 4: pipelined loops -------------------------------------------- *)

(** Scalar assertion in a pipelined loop: baseline latency 2, rate 1. *)
let scalar_pipelined =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw kernel(int32 n) {
  int32 i;
  #pragma pipeline
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(input);
    assert(x > 0);
    stream_write(output, x);
  }
}
|}

(** Array assertion in a pipelined loop: the application performs one
    read and one write per iteration on a single-ported RAM (baseline
    latency 2, rate 2); the assertion adds a third access. *)
let array_pipelined =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw kernel(int32 n) {
  int32 a[16];
  int32 i;
  #pragma pipeline
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(input);
    int32 y;
    y = a[(i + 8) & 15];
    assert(a[(i + 4) & 15] >= 0);
    a[i & 15] = x;
    stream_write(output, y);
  }
}
|}

(** Inputs that keep every assertion true for [n] iterations. *)
let feed_positive n = List.init n (fun i -> Int64.of_int (i + 1))
