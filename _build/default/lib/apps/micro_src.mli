(** Micro-kernels for the paper's Section 5.4 performance analysis
    (Tables 3 and 4): single-comparison assertions over scalars and
    arrays, in non-pipelined and pipelined loops.  Each kernel's
    baseline schedule matches the paper's (latency/rate before
    assertions), and the assertion exercises the exact contention
    scenario of its table row.  All kernels read [input], write
    [output], and take an iteration-count parameter [n] on process
    [kernel]. *)

val scalar_nonpipelined : string

(** The application's only RAM use is early in the iteration: a later
    state has a free port for the assertion's read. *)
val array_nonconsecutive : string

(** The application occupies the RAM port in back-to-back states. *)
val array_consecutive : string

(** Baseline latency 2, rate 1. *)
val scalar_pipelined : string

(** One read + one write per iteration on a single-ported RAM: baseline
    latency 2, rate 2. *)
val array_pipelined : string

(** Inputs that keep every assertion true for [n] iterations. *)
val feed_positive : int -> int64 list
