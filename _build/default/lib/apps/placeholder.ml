(** Placeholder module so the library is non-empty while applications
    are being added. *)
let ready = true
