lib/core/assertion.ml: Array Front Interp List Printf String
