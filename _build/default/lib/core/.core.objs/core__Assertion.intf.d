lib/core/assertion.mli: Front
