lib/core/checker.ml: Assertion Front Hls List Mir Parallelize Printf Share Sim Stdlib
