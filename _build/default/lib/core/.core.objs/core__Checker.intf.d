lib/core/checker.mli: Front Hls Parallelize Share Sim
