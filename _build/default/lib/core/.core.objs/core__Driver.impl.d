lib/core/driver.ml: Assertion Checker Faults Front Hls Instrument Interp List Mir Notify Parallelize Replicate Rtl Share Sim Stdlib
