lib/core/driver.mli: Assertion Checker Faults Front Hls Interp Mir Rtl Share Sim
