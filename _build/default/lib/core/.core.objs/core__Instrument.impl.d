lib/core/instrument.ml: Front List Share
