lib/core/instrument.mli: Front Share
