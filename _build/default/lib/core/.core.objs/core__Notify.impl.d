lib/core/notify.ml: Assertion Buffer Front List Printf Sim String
