lib/core/notify.mli: Assertion Sim
