lib/core/parallelize.ml: Assertion Front List
