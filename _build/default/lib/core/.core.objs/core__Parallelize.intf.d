lib/core/parallelize.mli: Assertion Front
