lib/core/replicate.ml: Front List
