lib/core/replicate.mli: Front
