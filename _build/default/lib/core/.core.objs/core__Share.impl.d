lib/core/share.ml: Assertion Front Int64 List Printf Rtl Stdlib
