lib/core/share.mli: Assertion Front Rtl
