(** Assertion extraction and condition evaluation.

    Every ANSI-C [assert] in a hardware process receives a unique
    identifier (the paper's error code, derived from file name and line
    number) recorded in a code table used by the notification function
    to print the standard [file:line: function: Assertion `expr'
    failed.] message. *)

open Front.Ast
module Loc = Front.Loc
module Value = Interp.Value

type info = {
  id : int;
  aproc : string;       (** enclosing process *)
  aloc : Loc.t;
  text : string;        (** source text of the condition *)
  cond : expr;          (** elaborated condition *)
}

(** ANSI-C assert(3) failure message for a failed assertion. *)
let message (i : info) =
  Printf.sprintf "%s:%d: %s: Assertion `%s' failed." i.aloc.Loc.file i.aloc.Loc.line
    i.aproc i.text

(** Extract all assertions from the hardware processes of [prog], in
    process order then source order, numbering them from 0. *)
let extract (prog : program) : info list =
  let next = ref 0 in
  List.concat_map
    (fun (p : proc) ->
      if p.kind <> Hardware then []
      else
        List.map
          (fun (aloc, cond, text) ->
            let id = !next in
            incr next;
            { id; aproc = p.pname; aloc; text; cond })
          (assertions_of p.body))
    prog.procs

(** Name of the k-th data slot of a parallelized assertion checker. *)
let slot_name k = Printf.sprintf "__slot%d" k

let slot_index name =
  if String.length name > 6 && String.sub name 0 6 = "__slot" then
    int_of_string_opt (String.sub name 6 (String.length name - 6))
  else None

(** Pure evaluation of an elaborated expression whose only free
    variables are checker slots ([__slotN]).  Used as the behavioural
    model of a hardware assertion checker. *)
let rec eval_slots (slots : int64 array) (x : expr) : int64 =
  match x.e with
  | Int n -> Value.wrap_ty x.ety n
  | Bool b -> Value.of_bool b
  | Var name -> (
      match slot_index name with
      | Some k when k < Array.length slots -> slots.(k)
      | _ -> invalid_arg (Printf.sprintf "eval_slots: free variable %s" name))
  | Index _ -> invalid_arg "eval_slots: array access must be a slot"
  | Unop (op, a) -> Value.unop op a.ety (eval_slots slots a)
  | Binop (Land, a, b) ->
      if Value.to_bool (eval_slots slots a) then eval_slots slots b else 0L
  | Binop (Lor, a, b) ->
      if Value.to_bool (eval_slots slots a) then 1L else eval_slots slots b
  | Binop (op, a, b) -> (
      match Value.binop op a.ety (eval_slots slots a) (eval_slots slots b) with
      | v -> v
      | exception Value.Division_by_zero -> 0L)
  | Cast (ty, a) -> Value.cast ~from_ty:a.ety ~to_ty:ty (eval_slots slots a)
  | Call _ -> invalid_arg "eval_slots: external calls must be slots"

(** True when the assertion holds for the given slot values. *)
let holds (cond : expr) (slots : int64 array) = Value.to_bool (eval_slots slots cond)
