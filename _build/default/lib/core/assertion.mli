(** Assertion extraction and condition evaluation.

    Every ANSI-C [assert] in a hardware process receives a unique
    identifier (the paper's error code, derived from file name and line
    number) recorded in a code table used by the notification function
    to print the standard failure message. *)

type info = {
  id : int;                 (** error code *)
  aproc : string;           (** enclosing process *)
  aloc : Front.Loc.t;
  text : string;            (** source text of the condition *)
  cond : Front.Ast.expr;    (** elaborated condition *)
}

(** ANSI-C assert(3) failure message:
    [file:line: process: Assertion `text' failed.] *)
val message : info -> string

(** All assertions of the hardware processes, in process order then
    source order, numbered from 0. *)
val extract : Front.Ast.program -> info list

(** Name of the k-th data slot of a parallelized assertion checker. *)
val slot_name : int -> string

(** Inverse of {!slot_name}; [None] for other identifiers. *)
val slot_index : string -> int option

(** Pure evaluation of an elaborated expression whose only free
    variables are checker slots ([__slotN]).  The behavioural model of
    a hardware assertion checker.
    @raise Invalid_argument on non-slot free variables. *)
val eval_slots : int64 array -> Front.Ast.expr -> int64

(** True when the assertion holds for the given slot values. *)
val holds : Front.Ast.expr -> int64 array -> bool
