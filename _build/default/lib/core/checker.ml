(** Hardware assertion checkers for parallelized assertions.

    A checker is its own small process (paper Figure 1): it latches the
    tapped data, evaluates the condition as a pipeline that can accept a
    new assertion every cycle, and on failure sends its code on the
    failure channel.  We synthesize the checker like any other process
    to obtain its area and its notification latency — latency only
    delays failure reporting, never the application (Section 3.3). *)

open Front.Ast
module Ir = Mir.Ir
module Loc = Front.Loc

type t = {
  spec : Parallelize.checker_spec;
  proc_ast : proc;          (** the checker as generated HLS source *)
  fsmd : Hls.Fsmd.t;        (** synthesized checker (for area/latency) *)
  engine : Sim.Engine.checker;  (** behavioural model for the simulator *)
}

let checker_name id = Printf.sprintf "__chk%d" id

(** Build the checker process AST for [spec], writing [word] to
    [channel] on failure. *)
let build_ast (spec : Parallelize.checker_spec) ~(channel : string) ~(word : int64)
    ~(elem : ty) : proc =
  let id = spec.Parallelize.info.Assertion.id in
  let params =
    List.mapi (fun k (s : expr) -> (Assertion.slot_name k, s.ety)) spec.Parallelize.slots
  in
  let loc = spec.Parallelize.info.Assertion.aloc in
  let cond = spec.Parallelize.cond in
  let not_cond = { e = Unop (Lnot, cond); ety = Tbool; eloc = cond.eloc } in
  let code = { e = Int word; ety = elem; eloc = loc } in
  {
    pname = checker_name id;
    kind = Hardware;
    params;
    body =
      [
        {
          s = If (not_cond, [ { s = Stream_write (channel, code); sloc = loc } ], []);
          sloc = loc;
        };
      ];
    ploc = loc;
  }

(** Synthesize one checker. *)
let build ~(prog : program) ~(plan : Share.plan) ?(latency_override : int option)
    (spec : Parallelize.checker_spec) : t =
  let id = spec.Parallelize.info.Assertion.id in
  let channel, word = Share.route_of plan id in
  let elem =
    match List.find_opt (fun (s : stream_decl) -> s.sname = channel) plan.Share.streams with
    | Some s -> s.elem
    | None -> Tint (Unsigned, W32)
  in
  let proc_ast = build_ast spec ~channel ~word ~elem in
  let mini_prog = { streams = plan.Share.streams; externs = prog.externs; procs = [] } in
  let ir = Mir.Opt.optimize (Mir.Lower.lower_proc mini_prog proc_ast) in
  let fsmd = Hls.Schedule.compile_proc ir in
  let latency =
    match latency_override with
    | Some l -> l
    | None -> Stdlib.max 1 (Hls.Fsmd.num_states fsmd - 1)
  in
  let engine =
    {
      Sim.Engine.cid = id;
      latency;
      eval = Assertion.holds spec.Parallelize.cond;
      channel;
      code = word;
    }
  in
  { spec; proc_ast; fsmd; engine }
