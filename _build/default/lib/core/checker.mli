(** Hardware assertion checkers for parallelized assertions (paper
    Figure 1): each checker is its own small process that latches the
    tapped data, evaluates the condition as a pipeline accepting a new
    assertion every cycle, and reports failures on its channel.
    Synthesized like any other process to obtain area and notification
    latency — latency only delays reporting, never the application. *)

type t = {
  spec : Parallelize.checker_spec;
  proc_ast : Front.Ast.proc;    (** the checker as generated HLS source *)
  fsmd : Hls.Fsmd.t;            (** synthesized checker (area / latency) *)
  engine : Sim.Engine.checker;  (** behavioural model for the simulator *)
}

val checker_name : int -> string

(** The checker process AST for a spec: slot parameters, the rewritten
    condition, and the failure write of [word] to [channel]. *)
val build_ast :
  Parallelize.checker_spec ->
  channel:string ->
  word:int64 ->
  elem:Front.Ast.ty ->
  Front.Ast.proc

(** Synthesize one checker against the program's channel plan. *)
val build :
  prog:Front.Ast.program ->
  plan:Share.plan ->
  ?latency_override:int ->
  Parallelize.checker_spec ->
  t
