(** Unoptimized assertion instrumentation (paper Section 4.1, Figure 2).

    Each [assert(c)] becomes the equivalent HLS-compliant code:

    {v if (!(c)) { stream_write(err_stream, code); } v}

    — a direct if-conversion inside the application process.  The
    condition is evaluated in the process's own state machine, which is
    what gives this scheme its latency and rate overhead (Tables 3-4)
    and its per-process channel cost (Figures 4-5). *)

open Front.Ast
module Loc = Front.Loc

(** Remove every assertion (the paper's NDEBUG build, and the baseline
    "Original" configurations of Tables 1-2). *)
let strip_asserts (p : proc) : proc =
  {
    p with
    body =
      map_stmts
        (fun st -> match st.s with Assert _ -> [] | _ -> [ st ])
        p.body;
  }

let mk_not (c : expr) : expr = { e = Unop (Lnot, c); ety = Tbool; eloc = c.eloc }

(** Rewrite the assertions of one hardware process into failure-stream
    writes, using [plan] for channel routing.  [next_id] must enumerate
    assertions in the same order as {!Assertion.extract}. *)
let transform_proc (plan : Share.plan) (next_id : int ref) (p : proc) : proc =
  if p.kind <> Hardware then p
  else
    {
      p with
      body =
        map_stmts
          (fun st ->
            match st.s with
            | Assert (c, _) ->
                let id = !next_id in
                incr next_id;
                let stream, word = Share.route_of plan id in
                let code =
                  { e = Int word; ety = Tint (Unsigned, W32); eloc = st.sloc }
                in
                [
                  {
                    st with
                    s =
                      If
                        ( mk_not c,
                          [ { st with s = Stream_write (stream, code) } ],
                          [] );
                  };
                ]
            | _ -> [ st ])
          p.body;
    }

(** Apply the unoptimized transformation to a whole program: hardware
    processes are instrumented and the failure streams are added. *)
let transform (plan : Share.plan) (prog : program) : program =
  let next_id = ref 0 in
  {
    prog with
    streams = prog.streams @ plan.Share.streams;
    procs = List.map (transform_proc plan next_id) prog.procs;
  }
