(** Unoptimized assertion instrumentation (paper Section 4.1, Figure 2):
    each [assert(c)] becomes [if (!(c)) stream_write(err, code);] inside
    the application process — valid HLS input, at the cost of the
    latency/rate overheads of Tables 3-4. *)

(** Remove every assertion (the paper's NDEBUG build and the tables'
    "Original" configurations). *)
val strip_asserts : Front.Ast.proc -> Front.Ast.proc

(** Boolean negation node (elaborated). *)
val mk_not : Front.Ast.expr -> Front.Ast.expr

(** Rewrite one hardware process's assertions into failure-stream
    writes, using [plan] for channel routing.  [next_id] must enumerate
    assertions in {!Assertion.extract} order. *)
val transform_proc : Share.plan -> int ref -> Front.Ast.proc -> Front.Ast.proc

(** Instrument a whole program: hardware processes rewritten, failure
    streams appended. *)
val transform : Share.plan -> Front.Ast.program -> Front.Ast.program
