(** Assertion parallelization (paper Section 3.1).

    Each assertion is moved out of the application's state machine into
    a separate checker task.  The application only *extracts* the data
    the condition needs — scalars are register taps (free), array
    elements are block-RAM reads scheduled like any other load — and
    raises a fire pulse; the checker evaluates the condition in parallel
    and reports failures on its channel.  The application's control flow
    graph is unchanged, which is where the paper's zero-latency-overhead
    rows in Tables 3-4 come from. *)

open Front.Ast
module Loc = Front.Loc

type checker_spec = {
  info : Assertion.info;
  slots : expr list;   (** leaf expressions the application evaluates and taps *)
  cond : expr;         (** the condition rewritten over [__slotN] variables *)
}

(* Leaves are the data the checker needs from the application: variable
   reads, array reads, and external-call results.  Everything above a
   leaf is pure arithmetic the checker replicates on its own silicon.
   Structurally identical leaves share one slot. *)
let extract_slots (cond : expr) : expr * expr list =
  let table : (string * expr) list ref = ref [] in
  let originals : expr list ref = ref [] in
  let rec go (x : expr) : expr =
    match x.e with
    | Var _ | Index _ | Call _ ->
        let key = Front.Pretty.expr_to_string x ^ ":" ^ show_ty x.ety in
        (match List.assoc_opt key !table with
        | Some slot_var -> slot_var
        | None ->
            let k = List.length !table in
            let slot_var = { x with e = Var (Assertion.slot_name k) } in
            table := !table @ [ (key, slot_var) ];
            originals := !originals @ [ x ];
            slot_var)
    | Int _ | Bool _ -> x
    | Unop (op, a) -> { x with e = Unop (op, go a) }
    | Binop (op, a, b) ->
        (* evaluation order fixes slot numbering: left operand first *)
        let a' = go a in
        let b' = go b in
        { x with e = Binop (op, a', b') }
    | Cast (ty, a) -> { x with e = Cast (ty, go a) }
  in
  let cond' = go cond in
  (cond', !originals)

(** Rewrite the assertions of one hardware process into data-extraction
    taps, returning the modified process and the checker specifications.
    [next_id] must enumerate assertions as {!Assertion.extract} does. *)
let transform_proc (next_id : int ref) (p : proc) : proc * checker_spec list =
  if p.kind <> Hardware then (p, [])
  else begin
    let specs = ref [] in
    let body =
      map_stmts
        (fun st ->
          match st.s with
          | Assert (c, text) ->
              let id = !next_id in
              incr next_id;
              let cond, slots = extract_slots c in
              let info =
                { Assertion.id; aproc = p.pname; aloc = st.sloc; text; cond = c }
              in
              specs := { info; slots; cond } :: !specs;
              [ { st with s = Tapstmt (id, slots) } ]
          | _ -> [ st ])
        p.body
    in
    ({ p with body }, List.rev !specs)
  end

(** Apply parallelization to a whole program (failure streams are added
    separately from the channel [plan] by the driver). *)
let transform (prog : program) : program * checker_spec list =
  let next_id = ref 0 in
  let procs, specs =
    List.fold_left
      (fun (ps, ss) p ->
        let p', s = transform_proc next_id p in
        (p' :: ps, ss @ s))
      ([], []) prog.procs
  in
  ({ prog with procs = List.rev procs }, specs)
