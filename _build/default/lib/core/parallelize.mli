(** Assertion parallelization (paper Section 3.1): each assertion moves
    into a separate checker task; the application only *extracts* the
    condition's leaf data (register taps, block-RAM reads) and raises a
    fire pulse, leaving its control-flow graph unchanged. *)

type checker_spec = {
  info : Assertion.info;
  slots : Front.Ast.expr list;
      (** leaf expressions the application evaluates and taps, in slot
          order (structurally identical leaves share a slot) *)
  cond : Front.Ast.expr;
      (** the condition rewritten over [__slotN] variables *)
}

(** Rewrite one hardware process's assertions into taps; returns the
    checker specifications.  [next_id] must enumerate assertions in
    {!Assertion.extract} order. *)
val transform_proc : int ref -> Front.Ast.proc -> Front.Ast.proc * checker_spec list

(** Parallelize a whole program (failure streams are added separately by
    the driver from the channel plan). *)
val transform : Front.Ast.program -> Front.Ast.program * checker_spec list
