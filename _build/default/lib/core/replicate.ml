(** Resource replication (paper Section 3.2).

    When a parallelized assertion taps an array element, the extraction
    load competes with the application for the block RAM's ports
    (Table 3's "consecutive" row, Table 4's array rate loss).  This
    optimization gives every such array a replica: the application's
    stores are mirrored into the replica on its own write port (inserted
    by {!Mir.Lower} from the mirror table), and the tap reads the
    replica's dedicated read port — removing the contention at the cost
    of a second RAM. *)

open Front.Ast

let replica_name arr = arr ^ "__rep"

(* Arrays tapped by assertions in [p]'s body. *)
let tapped_arrays (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (fun st ->
      match st.s with
      | Tapstmt (_, args) ->
          List.iter
            (fun (a : expr) ->
              let rec scan (x : expr) =
                match x.e with
                | Index (arr, idx) ->
                    if not (List.mem arr !acc) then acc := arr :: !acc;
                    scan idx
                | Unop (_, y) | Cast (_, y) -> scan y
                | Binop (_, y, z) -> scan y; scan z
                | Call (_, args') -> List.iter scan args'
                | Int _ | Bool _ | Var _ -> ()
              in
              scan a)
            args
      | _ -> ())
    p.body;
  List.rev !acc

(* Redirect array reads inside tap arguments to the replica. *)
let rec redirect (arrays : string list) (x : expr) : expr =
  match x.e with
  | Index (arr, idx) when List.mem arr arrays ->
      { x with e = Index (replica_name arr, redirect arrays idx) }
  | Index (arr, idx) -> { x with e = Index (arr, redirect arrays idx) }
  | Unop (op, a) -> { x with e = Unop (op, redirect arrays a) }
  | Binop (op, a, b) -> { x with e = Binop (op, redirect arrays a, redirect arrays b) }
  | Cast (ty, a) -> { x with e = Cast (ty, redirect arrays a) }
  | Call (f, args) -> { x with e = Call (f, List.map (redirect arrays) args) }
  | Int _ | Bool _ | Var _ -> x

(** Apply replication to a parallelized process: tap reads move to the
    replicas; returns the process and the [(array, replica)] mirror
    table for {!Mir.Lower.lower_proc}. *)
let transform_proc (p : proc) : proc * (string * string) list =
  if p.kind <> Hardware then (p, [])
  else
    let arrays = tapped_arrays p in
    if arrays = [] then (p, [])
    else
      let body =
        map_stmts
          (fun st ->
            match st.s with
            | Tapstmt (id, args) ->
                [ { st with s = Tapstmt (id, List.map (redirect arrays) args) } ]
            | _ -> [ st ])
          p.body
      in
      ({ p with body }, List.map (fun a -> (a, replica_name a)) arrays)
