(** Resource replication (paper Section 3.2): arrays tapped by
    parallelized assertions get a replica block RAM — stores are
    mirrored onto the replica's own write port, the tap reads its
    dedicated read port — removing the port contention behind Table 3's
    "consecutive" overhead and Table 4's rate loss. *)

val replica_name : string -> string

(** Arrays referenced by tap arguments in the process body. *)
val tapped_arrays : Front.Ast.proc -> string list

(** Redirect tapped array reads to the replicas and return the
    [(array, replica)] mirror table for {!Mir.Lower.lower_proc}. *)
val transform_proc : Front.Ast.proc -> Front.Ast.proc * (string * string) list
