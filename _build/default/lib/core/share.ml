(** Failure-channel planning — the resource-sharing optimization of
    Sections 3.3 and 4.2 applied to communication channels.

    - [`Per_proc]: the baseline instrumentation — one streaming channel
      per process containing assertions; the failure word is the
      assertion's error code.
    - [`Shared n]: one n-bit channel carries failure *bits* for up to n
      assertions (32 in the paper); a small collector gathers the
      failure signals (HDL instrumentation in the paper's framework) and
      sends the bit mask.  This cut the 128-process ALUT overhead by
      more than 3x and recovered 18% fmax (Figures 4 and 5). *)

open Front.Ast

type mode = [ `Per_proc | `Shared of int | `Dma ]
(** [`Dma] is the Carte-C portability path (Section 4.3): instead of
    per-process Impulse-C streams, all failure codes funnel through one
    DMA mailbox that the CPU polls — the notification function monitors
    FPGA function calls rather than stream messages. *)

type plan = {
  streams : stream_decl list;             (** failure streams to create *)
  route : (int * (string * int64)) list;  (** assertion id -> (stream, word) *)
  decode : (string * (int64 -> int list)) list;
      (** per stream: failure word -> failing assertion ids *)
  collector_modules : Rtl.Netlist.module_ list;
      (** extra logic of shared collectors *)
}

let empty = { streams = []; route = []; decode = []; collector_modules = [] }

let err_stream_name proc = Printf.sprintf "__err_%s" proc

let shared_stream_name k = Printf.sprintf "__err_shared%d" k

let fifo_depth = 16  (* 32-bit x 16 = one M4K in x36 mode = 576 bits *)

let per_proc (asserts : Assertion.info list) : plan =
  let procs =
    List.sort_uniq compare (List.map (fun (a : Assertion.info) -> a.Assertion.aproc) asserts)
  in
  let streams =
    List.map
      (fun p -> { sname = err_stream_name p; elem = int32_t; depth = fifo_depth })
      procs
  in
  let route =
    List.map
      (fun (a : Assertion.info) ->
        (a.Assertion.id, (err_stream_name a.Assertion.aproc, Int64.of_int a.Assertion.id)))
      asserts
  in
  let decode =
    List.map
      (fun (s : stream_decl) -> (s.sname, fun (word : int64) -> [ Int64.to_int word ]))
      streams
  in
  { streams; route; decode; collector_modules = [] }

(* A collector: one small process worth of logic per shared channel —
   failure-signal synchronizers, a bit-OR accumulator, and the stream
   write FSM (the paper's "separate process ... can handle failure
   signals from up to 32 assertions"). *)
let collector_module k n_bits : Rtl.Netlist.module_ =
  {
    Rtl.Netlist.mod_name = Printf.sprintf "__err_collector%d" k;
    prims =
      [
        Rtl.Netlist.Regbank { width = 1; count = n_bits * 2; purpose = "failure sync" };
        Rtl.Netlist.Fu { fu_op = `Bin Bor; fu_width = n_bits; fu_count = 1 };
        Rtl.Netlist.Fsm { states = 3; transitions = 4 };
      ];
  }

let shared ~(bits : int) (asserts : Assertion.info list) : plan =
  if bits <= 0 || bits > 63 then invalid_arg "Share.shared: bits must be in [1,63]";
  let groups =
    List.mapi (fun i (a : Assertion.info) -> (i / bits, i mod bits, a)) asserts
  in
  let ngroups =
    List.fold_left (fun acc (g, _, _) -> Stdlib.max acc (g + 1)) 0 groups
  in
  let streams =
    List.init ngroups (fun k ->
        { sname = shared_stream_name k; elem = Tint (Unsigned, W32); depth = fifo_depth })
  in
  let route =
    List.map
      (fun (g, bit, (a : Assertion.info)) ->
        (a.Assertion.id, (shared_stream_name g, Int64.shift_left 1L bit)))
      groups
  in
  let decode =
    List.init ngroups (fun k ->
        let members =
          List.filter_map
            (fun (g, bit, (a : Assertion.info)) ->
              if g = k then Some (bit, a.Assertion.id) else None)
            groups
        in
        ( shared_stream_name k,
          fun (word : int64) ->
            List.filter_map
              (fun (bit, id) ->
                if Int64.logand word (Int64.shift_left 1L bit) <> 0L then Some id else None)
              members ))
  in
  let collector_modules = List.init ngroups (fun k -> collector_module k bits) in
  { streams; route; decode; collector_modules }

let dma_stream_name = "__err_dma"

(* The DMA engine: address generation, burst control, and the handshake
   into the host bridge — one instance regardless of assertion count. *)
let dma_engine_module : Rtl.Netlist.module_ =
  {
    Rtl.Netlist.mod_name = "__err_dma_engine";
    prims =
      [
        Rtl.Netlist.Regbank { width = 1; count = 96; purpose = "dma address/burst" };
        Rtl.Netlist.Fu { fu_op = `Bin Add; fu_width = 32; fu_count = 1 };
        Rtl.Netlist.Fsm { states = 6; transitions = 9 };
      ];
  }

(* Carte-C style transport: one mailbox channel for every assertion; the
   failure word is the error code itself. *)
let dma (asserts : Assertion.info list) : plan =
  let stream = { sname = dma_stream_name; elem = Tint (Unsigned, W32); depth = 64 } in
  {
    streams = [ stream ];
    route =
      List.map
        (fun (a : Assertion.info) ->
          (a.Assertion.id, (dma_stream_name, Int64.of_int a.Assertion.id)))
        asserts;
    decode = [ (dma_stream_name, fun word -> [ Int64.to_int word ]) ];
    collector_modules = [ dma_engine_module ];
  }

let plan (mode : mode) (asserts : Assertion.info list) : plan =
  if asserts = [] then empty
  else
    match mode with
    | `Per_proc -> per_proc asserts
    | `Shared bits -> shared ~bits asserts
    | `Dma -> dma asserts

(** Stream and word for assertion [id]. *)
let route_of (p : plan) id =
  match List.assoc_opt id p.route with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Share.route_of: unknown assertion %d" id)
