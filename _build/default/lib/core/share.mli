(** Failure-channel planning — the resource-sharing optimization of
    Sections 3.3 and 4.2 applied to communication channels.

    [`Per_proc] gives every process with assertions its own failure
    stream (the baseline instrumentation); [`Shared n] packs failure
    bits for up to [n] assertions onto one n-bit channel behind a small
    collector, the optimization that cut the paper's 128-process ALUT
    overhead by more than 3x (Figures 4-5). *)

type mode = [ `Per_proc | `Shared of int | `Dma ]
(** [`Dma] is the Carte-C portability path (Section 4.3): all failure
    codes funnel through one DMA mailbox that the CPU polls; the
    notification function monitors FPGA function calls rather than
    stream messages. *)

type plan = {
  streams : Front.Ast.stream_decl list;   (** failure streams to create *)
  route : (int * (string * int64)) list; (** assertion id -> (stream, word) *)
  decode : (string * (int64 -> int list)) list;
      (** per stream: failure word -> failing assertion ids *)
  collector_modules : Rtl.Netlist.module_ list;
      (** extra logic of shared collectors *)
}

(** The plan for zero assertions. *)
val empty : plan

val err_stream_name : string -> string
val shared_stream_name : int -> string

(** The DMA mailbox channel name used by [`Dma]. *)
val dma_stream_name : string

(** Failure-stream FIFO depth: 16 x 36 bits = one M4K (the paper's
    observed +576 RAM bits per channel). *)
val fifo_depth : int

(** Build the channel plan for the given assertions.
    @raise Invalid_argument when a shared width is outside [1, 63]. *)
val plan : mode -> Assertion.info list -> plan

(** Stream and failure word for one assertion id.
    @raise Invalid_argument for unknown ids. *)
val route_of : plan -> int -> string * int64
