lib/device/stratix.ml: Front Value_width
