lib/device/stratix.mli: Front
