lib/device/value_width.ml: Front
