(** Altera Stratix-II EP2S180 device model.

    Capacities are the figures the paper's Tables 1-2 are normalized
    against.  Operator delay and area tables are calibrated to
    publicly-documented Stratix-II characteristics (ALUT-based ALMs,
    M4K block RAMs, ~2.5 ns 32-bit carry chain); they drive both the
    scheduler's operator chaining and the area/fmax estimates. *)

open Front.Ast

(** Device capacities (EP2S180). *)
type capacity = {
  aluts : int;
  registers : int;
  bram_bits : int;
  interconnect : int;
  m4k_bits : int;  (** bits per M4K block (with parity) *)
  dsp_18x18 : int;
}

let ep2s180 =
  {
    aluts = 143_520;
    registers = 143_520;
    bram_bits = 9_383_040;
    interconnect = 536_440;
    m4k_bits = 4_608;
    dsp_18x18 = 384;
  }

(** Scheduling target: operator chains in one state must fit in
    [target_period_ns] minus register overhead. *)
let target_period_ns = 5.0

(** Register clock-to-out + setup margin consumed in every state. *)
let register_overhead_ns = 0.65

let chain_budget_ns = target_period_ns -. register_overhead_ns

(* --- Operator delay model (combinational, ns) --------------------------- *)

let bits ty = match ty with Tbool -> 1 | _ -> bits_of_width (Value_width.width_of ty)

(** Combinational delay of a binary operator at operand type [ty]. *)
let binop_delay_ns op ty =
  let w = float_of_int (bits ty) in
  match op with
  | Add | Sub -> 0.9 +. (0.045 *. w)          (* carry chain *)
  | Lt | Le | Gt | Ge -> 0.9 +. (0.045 *. w)  (* subtract-based compare *)
  | Eq | Ne -> 0.5 +. (0.02 *. w)             (* AND-tree compare *)
  | Band | Bor | Bxor | Land | Lor -> 0.38
  | Mul -> 2.6 +. (0.03 *. w)                 (* DSP block *)
  | Div | Mod -> 1.5 +. (0.35 *. w)           (* restoring divider array *)
  | Shl | Shr -> 0.7 +. (0.025 *. w)          (* barrel shifter *)

let binop_delay_const_shift = 0.0  (* constant shifts are wiring *)

let unop_delay_ns op ty =
  match op with
  | Neg -> binop_delay_ns Sub ty
  | Bnot -> 0.2
  | Lnot -> 0.2

(* --- Operator area model (ALUTs / DSPs) --------------------------------- *)

(** ALUTs of one functional unit for a binary operator. *)
let binop_aluts op ty =
  let w = bits ty in
  match op with
  | Add | Sub -> w
  | Lt | Le | Gt | Ge -> (w / 4) + 2   (* carry-chain compare packs 2 bits/ALUT pair *)
  | Eq | Ne -> (w / 4) + 1
  | Band | Bor | Bxor | Land | Lor -> (w + 1) / 2
  | Mul -> if w <= 18 then 0 else w / 4     (* mostly in DSP blocks *)
  | Div | Mod -> 3 * w
  | Shl | Shr -> w * 3 / 2                  (* barrel shifter *)

let binop_dsps op ty =
  let w = bits ty in
  match op with
  | Mul -> if w <= 9 then 1 else if w <= 18 then 1 else 4
  | _ -> 0

let unop_aluts op ty =
  let w = bits ty in
  match op with Neg -> w | Bnot -> (w + 1) / 2 | Lnot -> 1

(** ALUTs for a 2-input multiplexer of width [w]. *)
let mux2_aluts w = (w + 1) / 2

(* --- Stream FIFO cost ----------------------------------------------------
   A stream is an M4K-based FIFO.  M4K data widths are 9/18/36; a 32-bit
   stream at the default depth of 16 therefore costs 16 x 36 = 576 RAM
   bits — exactly the per-stream overhead visible in the paper's
   Tables 1 and 2. *)

let m4k_data_width w = if w <= 9 then 9 else if w <= 18 then 18 else 36

let stream_ram_bits ~width ~depth = depth * m4k_data_width width

(** FIFO control logic (pointers, full/empty flags, handshake, plus the
    Impulse-C stream wrapper glue). *)
let stream_ctrl_aluts = 36
let stream_ctrl_registers = 26

(** Interconnect lines used per resource (empirical fit to the paper's
    block-interconnect columns). *)
let interconnect_per_alut = 1.85
let interconnect_per_register = 0.55
let interconnect_per_stream = 160.0
let interconnect_per_m4k = 35.0

(* --- Memory geometry ------------------------------------------------------ *)

(** Block RAM bits consumed by a memory, padded to M4K data widths. *)
let mem_ram_bits ~width ~length = length * m4k_data_width width

let m4k_blocks_of_bits bits = (bits + ep2s180.m4k_bits - 1) / ep2s180.m4k_bits
