(** Altera Stratix-II EP2S180 device model.

    Capacities are the figures the paper's Tables 1-2 are normalized
    against.  Operator delay/area tables are calibrated to documented
    Stratix-II characteristics and drive both the scheduler's operator
    chaining and the area/fmax estimates. *)

type capacity = {
  aluts : int;
  registers : int;
  bram_bits : int;
  interconnect : int;
  m4k_bits : int;  (** bits per M4K block (with parity) *)
  dsp_18x18 : int;
}

val ep2s180 : capacity

(** Scheduling target clock period (ns). *)
val target_period_ns : float

(** Register clock-to-out + setup margin consumed in every state (ns). *)
val register_overhead_ns : float

(** Combinational chain budget per state:
    [target_period_ns - register_overhead_ns]. *)
val chain_budget_ns : float

(** Bit count of a scalar type. *)
val bits : Front.Ast.ty -> int

(** {1 Operator delays (combinational, ns)} *)

val binop_delay_ns : Front.Ast.binop -> Front.Ast.ty -> float

(** Constant shifts are wiring. *)
val binop_delay_const_shift : float

val unop_delay_ns : Front.Ast.unop -> Front.Ast.ty -> float

(** {1 Operator area (ALUTs / DSPs)} *)

val binop_aluts : Front.Ast.binop -> Front.Ast.ty -> int
val binop_dsps : Front.Ast.binop -> Front.Ast.ty -> int
val unop_aluts : Front.Ast.unop -> Front.Ast.ty -> int

(** ALUTs for a 2-input multiplexer of the given bit width. *)
val mux2_aluts : int -> int

(** {1 Stream FIFO and memory geometry} *)

(** M4K data widths are 9/18/36 bits. *)
val m4k_data_width : int -> int

(** RAM bits of a stream FIFO: a 32-bit stream, 16 deep = 576 bits — the
    paper's observed per-channel overhead. *)
val stream_ram_bits : width:int -> depth:int -> int

val stream_ctrl_aluts : int
val stream_ctrl_registers : int

val interconnect_per_alut : float
val interconnect_per_register : float
val interconnect_per_stream : float
val interconnect_per_m4k : float

(** Block RAM bits consumed by a memory, padded to M4K data widths. *)
val mem_ram_bits : width:int -> length:int -> int

val m4k_blocks_of_bits : int -> int
