(** Width helpers shared by the device tables. *)

open Front.Ast

let width_of = function
  | Tint (_, w) -> w
  | Tbool -> W1
  | Tarray (t, _) -> (
      match t with Tint (_, w) -> w | _ -> W32)
  | Tvoid -> W32
