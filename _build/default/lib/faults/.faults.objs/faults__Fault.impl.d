lib/faults/fault.ml: Front Int64 List Mir Stdlib
