lib/faults/fault.mli: Mir
