(** Fault injection: reproduce the hardware-translation bugs of the
    paper's Section 5.1 as IR-to-IR rewrites applied between lowering
    and scheduling.

    The software-simulation path ({!Interp}) interprets the *source*, so
    it never sees these faults — recreating the paper's headline
    scenario: assertions pass in software simulation and fail (or expose
    a hang) only in circuit.

    - {!narrow_compare} reproduces the erroneous narrow comparison of
      Figure 3: Impulse-C compiled a 64-bit comparison of two counters
      as a 5-bit comparison, turning [4294967286 > 4294967296] (false)
      into [22 > 0] (true).
    - {!read_for_write} reproduces the Triple-DES hang: a memory write
      is translated as a read, so a flag never lands in block RAM and a
      dependent loop spins forever in hardware. *)

module Ir = Mir.Ir
open Front.Ast

type selector = All | Nth of int  (** which matching site to corrupt (0-based) *)

type t =
  | Narrow_compare of { fproc : string; select : selector; mask_bits : int }
  | Read_for_write of { fproc : string; select : selector }

(* Rewrite instruction streams with a stateful site counter and a fresh
   register allocator. *)
type rewriter = {
  mutable counter : int;
  mutable next_reg : int;
  mutable new_regs : (Ir.reg * Ir.reg_info) list;
  select : selector;
}

let selected rw =
  let n = rw.counter in
  rw.counter <- n + 1;
  match rw.select with All -> true | Nth k -> n = k

let fresh rw rty =
  let r = rw.next_reg in
  rw.next_reg <- r + 1;
  rw.new_regs <- (r, { Ir.rty; origin = None }) :: rw.new_regs;
  r

let rec map_segments f (body : Ir.body) : Ir.body =
  List.map
    (function
      | Ir.Straight insts -> Ir.Straight (f insts)
      | Ir.If_else r ->
          Ir.If_else
            {
              r with
              cond_insts = f r.cond_insts;
              then_ = map_segments f r.then_;
              else_ = map_segments f r.else_;
            }
      | Ir.Loop r ->
          Ir.Loop
            {
              r with
              cond_insts = f r.cond_insts;
              body = map_segments f r.body;
              step_insts = f r.step_insts;
            })
    body

let apply_to_proc (p : Ir.proc_ir) rewrite : Ir.proc_ir =
  let next_reg = List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 p.Ir.regs in
  let rw = { counter = 0; next_reg; new_regs = []; select = All } in
  let rw, f = rewrite rw in
  let body = map_segments f p.Ir.body in
  { p with Ir.body; regs = p.Ir.regs @ List.rev rw.new_regs }

let is_wide_compare (i : Ir.inst) =
  match i with
  | Ir.Bin { op = (Lt | Le | Gt | Ge); ty = Tint (_, W64); _ } -> true
  | _ -> false

(* 4294967286 & 31 = 22 and 4294967296 & 31 = 0: the Figure 3 numbers. *)
let narrow_compare_proc ~select ~mask_bits (p : Ir.proc_ir) : Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let mask = Int64.sub (Int64.shift_left 1L mask_bits) 1L in
      let narrow_ty = Tint (Unsigned, W64) in
      let f insts =
        List.concat_map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Bin { dst; op; a; b; ty = _ } when is_wide_compare g.Ir.i && selected rw ->
                let ta = fresh rw narrow_ty and tb = fresh rw narrow_ty in
                [
                  { g with Ir.i = Ir.Bin { dst = ta; op = Band; a; b = Ir.Imm mask; ty = narrow_ty } };
                  { g with Ir.i = Ir.Bin { dst = tb; op = Band; a = b; b = Ir.Imm mask; ty = narrow_ty } };
                  { g with Ir.i = Ir.Bin { dst; op; a = Ir.Reg ta; b = Ir.Reg tb; ty = narrow_ty } };
                ]
            | _ -> [ g ])
          insts
      in
      (rw, f))

let read_for_write_proc ~select (p : Ir.proc_ir) : Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let f insts =
        List.map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Store { mem; addr; v = _ } when selected rw ->
                let dst =
                  let elem =
                    match Ir.find_mem p mem with Some m -> m.Ir.elem | None -> int32_t
                  in
                  fresh rw elem
                in
                { g with Ir.i = Ir.Load { dst; mem; addr } }
            | _ -> g)
          insts
      in
      (rw, f))

(** Apply one fault to a whole program IR. *)
let apply (fault : t) (prog : Ir.program_ir) : Ir.program_ir =
  let on_proc name f =
    {
      prog with
      Ir.procs =
        List.map (fun (p : Ir.proc_ir) -> if p.Ir.name = name then f p else p) prog.Ir.procs;
    }
  in
  match fault with
  | Narrow_compare { fproc; select; mask_bits } ->
      on_proc fproc (narrow_compare_proc ~select ~mask_bits)
  | Read_for_write { fproc; select } -> on_proc fproc (read_for_write_proc ~select)

let apply_all faults prog = List.fold_left (fun p f -> apply f p) prog faults
