(** Fault injection: the hardware-translation bugs of the paper's
    Section 5.1 as IR-to-IR rewrites applied between lowering and
    scheduling.  The software-simulation path interprets the *source*,
    so it never sees these faults — recreating the paper's headline
    scenario: assertions pass in software simulation and fail (or expose
    a hang) only in circuit. *)

(** Which matching site to corrupt (0-based occurrence index). *)
type selector = All | Nth of int

type t =
  | Narrow_compare of { fproc : string; select : selector; mask_bits : int }
      (** Figure 3: a 64-bit comparison compiled as a [mask_bits]-bit
          comparison, so 4294967286 > 4294967296 becomes 22 > 0 *)
  | Read_for_write of { fproc : string; select : selector }
      (** the Triple-DES hang: a block-RAM store translated as a read *)

(** Apply one fault to a program IR (processes other than the target are
    untouched). *)
val apply : t -> Mir.Ir.program_ir -> Mir.Ir.program_ir

val apply_all : t list -> Mir.Ir.program_ir -> Mir.Ir.program_ir
