lib/front/ast.pp.ml: List Loc Ppx_deriving_runtime Printf
