lib/front/lexer.pp.ml: Int64 List Loc Ppx_deriving_runtime Printf String
