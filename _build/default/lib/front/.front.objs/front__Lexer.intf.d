lib/front/lexer.pp.mli: Format Loc
