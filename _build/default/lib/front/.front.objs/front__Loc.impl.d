lib/front/loc.pp.ml: Fmt Ppx_deriving_runtime
