lib/front/loc.pp.mli: Format
