lib/front/parser.pp.ml: Array Ast Int64 Lexer List Loc Printf String
