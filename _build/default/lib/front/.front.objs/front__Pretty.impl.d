lib/front/pretty.pp.ml: Ast Fmt Int64 List String
