lib/front/pretty.pp.mli: Ast Format
