lib/front/typecheck.pp.ml: Ast Format Int32 Int64 List Loc Parser
