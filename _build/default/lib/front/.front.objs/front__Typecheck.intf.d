lib/front/typecheck.pp.mli: Ast Loc
