(** Hand-written lexer for the InCA C subset.

    Tokens carry their location and byte span so the parser can recover
    the exact source text of assertion conditions — the ANSI-C [assert]
    failure message quotes the original expression text. *)

type token =
  | IDENT of string
  | INT of int64
  | KW of string            (** keyword, see [keywords] *)
  | PRAGMA of string        (** [#pragma <text>] up to end of line *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR
  | LT | LE | GT | GE | EQ | NE
  | AMP | PIPE | CARET | AMPAMP | PIPEPIPE | BANG | TILDE
  | EOF
[@@deriving show, eq]

type lexed = {
  tok : token;
  loc : Loc.t;
  start_ofs : int;  (** byte offset of first char *)
  end_ofs : int;    (** byte offset one past last char *)
}

exception Error of string * Loc.t

let keywords =
  [ "process"; "hw"; "sw"; "stream"; "extern"; "latency"; "depth"; "const";
    "int8"; "int16"; "int32"; "int64"; "uint8"; "uint16"; "uint32"; "uint64";
    "bool"; "void"; "true"; "false";
    "if"; "else"; "while"; "for"; "return"; "assert";
    "stream_read"; "stream_write" ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let loc_of st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do advance st done;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      let start = loc_of st in
      advance st; advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' -> advance st; advance st
        | Some _, _ -> advance st; close ()
        | None, _ -> raise (Error ("unterminated comment", start))
      in
      close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let loc = loc_of st in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st; advance st;
    while (match peek st with Some c -> is_hex_digit c | None -> false) do advance st done;
    let text = String.sub st.src start (st.pos - start) in
    match Int64.of_string_opt text with
    | Some n -> (INT n, loc, start)
    | None -> raise (Error ("bad hex literal " ^ text, loc))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do advance st done;
    let text = String.sub st.src start (st.pos - start) in
    (* [Int64.of_string] handles values up to 2^63-1; literals such as
       4294967296 from the paper's Figure 3 must lex. *)
    match Int64.of_string_opt text with
    | Some n -> (INT n, loc, start)
    | None ->
        (* Values in [2^63, 2^64) wrap like C unsigned constants. *)
        (match Int64.of_string_opt ("0u" ^ text) with
        | Some n -> (INT n, loc, start)
        | None -> raise (Error ("integer literal out of range: " ^ text, loc)))
  end

let lex_ident st =
  let start = st.pos in
  let loc = loc_of st in
  while (match peek st with Some c -> is_ident_char c | None -> false) do advance st done;
  let text = String.sub st.src start (st.pos - start) in
  let tok = if is_keyword text then KW text else IDENT text in
  (tok, loc, start)

let lex_pragma st =
  let loc = loc_of st in
  let start = st.pos in
  advance st (* '#' *);
  while peek st <> None && peek st <> Some '\n' do advance st done;
  let text = String.sub st.src start (st.pos - start) in
  let text =
    if String.length text > 7 && String.sub text 0 7 = "#pragma" then
      String.trim (String.sub text 7 (String.length text - 7))
    else raise (Error ("unknown directive " ^ text, loc))
  in
  (PRAGMA text, loc, start)

let next_token st =
  skip_ws_and_comments st;
  let loc = loc_of st in
  let start = st.pos in
  let simple tok n =
    for _ = 1 to n do advance st done;
    (tok, loc, start)
  in
  match peek st with
  | None -> (EOF, loc, start)
  | Some c ->
      if is_ident_start c then lex_ident st
      else if is_digit c then lex_number st
      else if c = '#' then lex_pragma st
      else
        let two = peek2 st in
        (match (c, two) with
        | '<', Some '<' -> simple SHL 2
        | '>', Some '>' -> simple SHR 2
        | '<', Some '=' -> simple LE 2
        | '>', Some '=' -> simple GE 2
        | '=', Some '=' -> simple EQ 2
        | '!', Some '=' -> simple NE 2
        | '&', Some '&' -> simple AMPAMP 2
        | '|', Some '|' -> simple PIPEPIPE 2
        | '<', _ -> simple LT 1
        | '>', _ -> simple GT 1
        | '=', _ -> simple ASSIGN 1
        | '!', _ -> simple BANG 1
        | '&', _ -> simple AMP 1
        | '|', _ -> simple PIPE 1
        | '^', _ -> simple CARET 1
        | '~', _ -> simple TILDE 1
        | '+', _ -> simple PLUS 1
        | '-', _ -> simple MINUS 1
        | '*', _ -> simple STAR 1
        | '/', _ -> simple SLASH 1
        | '%', _ -> simple PERCENT 1
        | '(', _ -> simple LPAREN 1
        | ')', _ -> simple RPAREN 1
        | '{', _ -> simple LBRACE 1
        | '}', _ -> simple RBRACE 1
        | '[', _ -> simple LBRACK 1
        | ']', _ -> simple RBRACK 1
        | ';', _ -> simple SEMI 1
        | ',', _ -> simple COMMA 1
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, loc)))

(** Tokenize the whole [src].  The result always ends with [EOF]. *)
let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok, loc, start = next_token st in
    let lexed = { tok; loc; start_ofs = start; end_ofs = st.pos } in
    if tok = EOF then List.rev (lexed :: acc) else go (lexed :: acc)
  in
  go []
