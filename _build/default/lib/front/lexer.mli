(** Hand-written lexer for the InCA C subset.

    Tokens carry their location and byte span so the parser can recover
    the exact source text of assertion conditions — the ANSI-C [assert]
    failure message quotes the original expression text. *)

type token =
  | IDENT of string
  | INT of int64
  | KW of string            (** keyword, see {!keywords} *)
  | PRAGMA of string        (** [#pragma <text>] up to end of line *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR
  | LT | LE | GT | GE | EQ | NE
  | AMP | PIPE | CARET | AMPAMP | PIPEPIPE | BANG | TILDE
  | EOF

val equal_token : token -> token -> bool
val show_token : token -> string
val pp_token : Format.formatter -> token -> unit

type lexed = {
  tok : token;
  loc : Loc.t;
  start_ofs : int;  (** byte offset of first char *)
  end_ofs : int;    (** byte offset one past last char *)
}

exception Error of string * Loc.t

val keywords : string list
val is_keyword : string -> bool

(** Tokenize [src]; the result always ends with [EOF].
    @raise Error on lexical errors. *)
val tokenize : ?file:string -> string -> lexed list
