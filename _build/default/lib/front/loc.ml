(** Source locations for error reporting and ANSI-C assertion messages. *)

type t = {
  file : string;  (** source file name *)
  line : int;     (** 1-based line number *)
  col : int;      (** 1-based column number *)
}
[@@deriving show, eq]

let none = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string l = Fmt.str "%a" pp l
