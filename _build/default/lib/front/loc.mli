(** Source locations for error reporting and ANSI-C assertion messages. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 1-based *)
}

val equal : t -> t -> bool
val show : t -> string
val pp : Format.formatter -> t -> unit

val none : t
val make : file:string -> line:int -> col:int -> t

(** [file:line:col]. *)
val to_string : t -> string
