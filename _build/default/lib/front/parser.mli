(** Recursive-descent parser for the InCA C subset.

    Produces an untyped {!Ast.program} (every expression carries
    [Tvoid]); {!Typecheck.elaborate} fills in types and inserts casts.
    Assertion conditions keep their raw source text for the ANSI-C
    failure message. *)

exception Error of string * Loc.t

(** Parse a whole program.
    @raise Error on syntax errors.
    @raise Lexer.Error on lexical errors. *)
val parse : ?file:string -> string -> Ast.program
