(** Pretty-printer producing parseable InCA-C source.

    Used to emit the instrumented HLL code (paper, Figure 2) and in
    round-trip property tests: [parse (print p)] re-yields [p] up to
    types and locations. *)

val string_of_ty : Ast.ty -> string
val string_of_binop : Ast.binop -> string
val string_of_unop : Ast.unop -> string

val pp_expr : ?prec:int -> Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string

val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_stmts : indent:int -> Format.formatter -> Ast.stmt list -> unit
val pp_proc : Format.formatter -> Ast.proc -> unit
val pp_stream : Format.formatter -> Ast.stream_decl -> unit
val pp_extern : Format.formatter -> Ast.extern_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
