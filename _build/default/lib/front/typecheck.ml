(** Type checking and elaboration.

    Elaboration rewrites the untyped parse tree into a fully typed AST:
    every expression carries its type, and explicit {!Ast.Cast} nodes are
    inserted so that each binary operation has operands of identical
    type.  This single source of width truth is what both the software
    interpreter (C semantics) and the hardware datapath obey — the
    paper's Section 5.1 bug is an injected *divergence* from it. *)

open Ast

exception Error of string * Loc.t

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (msg, loc))) fmt

type env = {
  vars : (string * ty) list;          (** in-scope scalars and arrays *)
  streams : stream_decl list;
  externs : extern_decl list;
  proc : string;                      (** enclosing process name *)
}

let lookup_var env loc name =
  match List.assoc_opt name env.vars with
  | Some ty -> ty
  | None -> error loc "unbound variable %s" name

let lookup_stream env loc name =
  match List.find_opt (fun s -> s.sname = name) env.streams with
  | Some s -> s
  | None -> error loc "unbound stream %s" name

let lookup_extern env loc name =
  match List.find_opt (fun x -> x.xname = name) env.externs with
  | Some x -> x
  | None -> error loc "unknown external function %s" name

(* Usual arithmetic conversions, restricted to our width lattice: the
   wider width wins; at equal width, unsigned wins. *)
let common_type loc a b =
  match (a, b) with
  | Tint (sa, wa), Tint (sb, wb) ->
      let w = if compare_width wa wb >= 0 then wa else wb in
      let s =
        if wa = wb then (if sa = Unsigned || sb = Unsigned then Unsigned else Signed)
        else if compare_width wa wb > 0 then sa
        else sb
      in
      Tint (s, w)
  | Tbool, Tbool -> Tbool
  | Tbool, (Tint _ as t) | (Tint _ as t), Tbool -> t
  | _ -> error loc "cannot combine %s and %s" (show_ty a) (show_ty b)

let is_scalar = function Tint _ | Tbool -> true | Tarray _ | Tvoid -> false

(* Insert a cast only when needed. *)
let cast_to ty e =
  if equal_ty e.ety ty then e
  else
    match (e.ety, ty) with
    | (Tint _ | Tbool), (Tint _ | Tbool) -> { e = Cast (ty, e); ety = ty; eloc = e.eloc }
    | _ -> error e.eloc "cannot cast %s to %s" (show_ty e.ety) (show_ty ty)

(* Coerce an expression to bool, C-style: nonzero means true. *)
let boolify e =
  match e.ety with
  | Tbool -> e
  | Tint _ ->
      let zero = { e = Int 0L; ety = e.ety; eloc = e.eloc } in
      { e = Binop (Ne, e, zero); ety = Tbool; eloc = e.eloc }
  | _ -> error e.eloc "expected scalar condition, got %s" (show_ty e.ety)

let literal_type n =
  if Int64.compare n (Int64.of_int32 Int32.min_int) >= 0
     && Int64.compare n (Int64.of_int32 Int32.max_int) <= 0
  then int32_t
  else int64_t

let rec elab_expr env (x : expr) : expr =
  let loc = x.eloc in
  match x.e with
  | Int n -> { x with ety = literal_type n }
  | Bool _ -> { x with ety = Tbool }
  | Var name ->
      let ty = lookup_var env loc name in
      if not (is_scalar ty) then error loc "array %s used as a scalar" name;
      { x with ety = ty }
  | Index (name, idx) -> (
      match lookup_var env loc name with
      | Tarray (elt, _) ->
          let idx = elab_expr env idx in
          let idx =
            match idx.ety with
            | Tint _ -> idx
            | Tbool -> cast_to int32_t idx
            | _ -> error loc "array index must be an integer"
          in
          { x with e = Index (name, idx); ety = elt }
      | _ -> error loc "%s is not an array" name)
  | Unop (Neg, a) ->
      let a = elab_expr env a in
      let a = match a.ety with Tbool -> cast_to int32_t a | _ -> a in
      (match a.ety with
      | Tint _ -> { x with e = Unop (Neg, a); ety = a.ety }
      | _ -> error loc "cannot negate %s" (show_ty a.ety))
  | Unop (Bnot, a) ->
      let a = elab_expr env a in
      (match a.ety with
      | Tint _ -> { x with e = Unop (Bnot, a); ety = a.ety }
      | _ -> error loc "cannot complement %s" (show_ty a.ety))
  | Unop (Lnot, a) ->
      let a = boolify (elab_expr env a) in
      { x with e = Unop (Lnot, a); ety = Tbool }
  | Binop (op, a, b) when is_logical op ->
      let a = boolify (elab_expr env a) in
      let b = boolify (elab_expr env b) in
      { x with e = Binop (op, a, b); ety = Tbool }
  | Binop ((Shl | Shr) as op, a, b) ->
      let a = elab_expr env a in
      let a = match a.ety with Tbool -> cast_to int32_t a | _ -> a in
      let b = cast_to a.ety (elab_expr env b) in
      (match a.ety with
      | Tint _ -> { x with e = Binop (op, a, b); ety = a.ety }
      | _ -> error loc "cannot shift %s" (show_ty a.ety))
  | Binop (op, a, b) ->
      let a = elab_expr env a in
      let b = elab_expr env b in
      let t = common_type loc a.ety b.ety in
      let t = match t with Tbool -> Tint (Unsigned, W8) | _ -> t in
      let a = cast_to t a and b = cast_to t b in
      let ety = if is_comparison op then Tbool else t in
      { x with e = Binop (op, a, b); ety }
  | Cast (ty, a) ->
      if not (is_scalar ty) then error loc "cannot cast to %s" (show_ty ty);
      cast_to ty { (elab_expr env a) with eloc = loc }
  | Call (name, args) ->
      let x' = lookup_extern env loc name in
      if List.length args <> List.length x'.xargs then
        error loc "%s expects %d arguments, got %d" name (List.length x'.xargs)
          (List.length args);
      let args = List.map2 (fun t a -> cast_to t (elab_expr env a)) x'.xargs args in
      { x with e = Call (name, args); ety = x'.xret }

let elab_lvalue env loc lv =
  match lv with
  | Lvar name ->
      let ty = lookup_var env loc name in
      if not (is_scalar ty) then error loc "cannot assign to array %s as a whole" name;
      (lv, ty)
  | Lindex (name, idx) -> (
      match lookup_var env loc name with
      | Tarray (elt, _) ->
          let idx = elab_expr env idx in
          (Lindex (name, idx), elt)
      | _ -> error loc "%s is not an array" name)

let rec elab_stmts env stmts =
  match stmts with
  | [] -> (env, [])
  | st :: rest ->
      let env, st = elab_stmt env st in
      let env, rest = elab_stmts env rest in
      (env, st :: rest)

and elab_stmt env st =
  let loc = st.sloc in
  match st.s with
  | Decl (ty, name, init) ->
      (match ty with
      | Tvoid -> error loc "cannot declare void variable %s" name
      | Tarray ((Tarray _ | Tvoid | Tbool), _) -> error loc "unsupported array element type"
      | Tarray (_, n) when n <= 0 -> error loc "array %s must have positive size" name
      | _ -> ());
      let init =
        match init with
        | None -> None
        | Some e ->
            if not (is_scalar ty) then error loc "cannot initialize array %s inline" name;
            Some (cast_to ty (elab_expr env e))
      in
      let env = { env with vars = (name, ty) :: env.vars } in
      (env, { st with s = Decl (ty, name, init) })
  | Assign (lv, e) ->
      let lv, ty = elab_lvalue env loc lv in
      let e = cast_to ty (elab_expr env e) in
      (env, { st with s = Assign (lv, e) })
  | If (c, t, f) ->
      let c = boolify (elab_expr env c) in
      let _, t = elab_stmts env t in
      let _, f = elab_stmts env f in
      (env, { st with s = If (c, t, f) })
  | While (c, b) ->
      let c = boolify (elab_expr env c) in
      let _, b = elab_stmts env b in
      (env, { st with s = While (c, b) })
  | For (h, b) ->
      let env_for, init =
        match h.init with
        | None -> (env, None)
        | Some s ->
            let env', s' = elab_stmt env s in
            (env', Some s')
      in
      let cond = boolify (elab_expr env_for h.cond) in
      let step =
        match h.step with
        | None -> None
        | Some s ->
            let _, s' = elab_stmt env_for s in
            Some s'
      in
      let _, b = elab_stmts env_for b in
      (env, { st with s = For ({ h with init; cond; step }, b) })
  | Assert (c, txt) ->
      let c = boolify (elab_expr env c) in
      (env, { st with s = Assert (c, txt) })
  | Stream_read (lv, s) ->
      let sd = lookup_stream env loc s in
      let lv, ty = elab_lvalue env loc lv in
      if not (is_scalar ty) then error loc "stream_read target must be scalar";
      ignore sd;
      (env, { st with s = Stream_read (lv, s) })
  | Stream_write (s, e) ->
      let sd = lookup_stream env loc s in
      let e = cast_to sd.elem (elab_expr env e) in
      (env, { st with s = Stream_write (s, e) })
  | Return None -> (env, st)
  | Return (Some _) -> error loc "processes cannot return a value"
  | Block b ->
      let _, b = elab_stmts env b in
      (env, { st with s = Block b })
  | Tapstmt (id, args) ->
      let args = List.map (elab_expr env) args in
      List.iter
        (fun (a : expr) ->
          if not (is_scalar a.ety) then error loc "tap arguments must be scalar")
        args;
      (env, { st with s = Tapstmt (id, args) })
  | Const_array (elem, name, values) ->
      if not (is_scalar elem) || elem = Tvoid then
        error loc "const array %s must have scalar elements" name;
      if values = [] then error loc "const array %s must not be empty" name;
      let env = { env with vars = (name, Tarray (elem, List.length values)) :: env.vars } in
      (env, st)

let elab_proc ~streams ~externs (p : proc) =
  List.iter
    (fun (name, ty) ->
      if not (is_scalar ty) then
        error p.ploc "parameter %s of %s must be scalar" name p.pname)
    p.params;
  let env = { vars = p.params; streams; externs; proc = p.pname } in
  let _, body = elab_stmts env p.body in
  { p with body }

(** Elaborate a whole program.  Checks stream and process name
    uniqueness, elaborates every process body, and returns the typed
    program. *)
let elaborate (prog : program) : program =
  let check_unique what names =
    let sorted = List.sort compare names in
    let rec dup = function
      | a :: b :: _ when a = b -> error Loc.none "duplicate %s %s" what a
      | _ :: rest -> dup rest
      | [] -> ()
    in
    dup sorted
  in
  check_unique "stream" (List.map (fun s -> s.sname) prog.streams);
  check_unique "process" (List.map (fun p -> p.pname) prog.procs);
  check_unique "extern" (List.map (fun x -> x.xname) prog.externs);
  List.iter
    (fun s ->
      if not (is_scalar s.elem) then
        error Loc.none "stream %s element type must be scalar" s.sname;
      if s.depth <= 0 then error Loc.none "stream %s depth must be positive" s.sname)
    prog.streams;
  let procs =
    List.map (elab_proc ~streams:prog.streams ~externs:prog.externs) prog.procs
  in
  { prog with procs }

(** Convenience: parse then elaborate. *)
let parse_and_check ?file src = elaborate (Parser.parse ?file src)
