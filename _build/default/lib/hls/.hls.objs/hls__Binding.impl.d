lib/hls/binding.ml: Array Front Fsmd List Map Mir Stdlib
