lib/hls/binding.mli: Front Fsmd Mir
