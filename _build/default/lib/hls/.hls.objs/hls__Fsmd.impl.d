lib/hls/fsmd.ml: Array Format Hashtbl List Mir Stdlib
