lib/hls/fsmd.mli: Mir
