lib/hls/pipeline.ml: Array Device Front Hashtbl List Mir Stdlib
