lib/hls/pipeline.mli: Mir
