lib/hls/schedule.ml: Array Device Fsmd Hashtbl List Logs Mir Pipeline Stdlib
