lib/hls/schedule.mli: Fsmd Mir
