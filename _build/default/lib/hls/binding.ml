(** Functional-unit binding: map scheduled operations onto shared
    hardware units (Section 3.3's "resource sharing is a common
    high-level synthesis optimization [16]").

    Two operations can share a unit when they never execute in the same
    state (or, inside a pipelined loop, in the same cycle class modulo
    the II).  Sharing trades multiplexers for functional units; the
    returned statistics feed the RTL generator and the area model, and
    the diminishing-returns ablation bench sweeps the sharing policy. *)

module Ir = Mir.Ir
open Front.Ast

(** Functional-unit class: operator kind at a given operand type. *)
type fu_class =
  | Fbin of binop * width
  | Fun_ of unop * width

let compare_fu_class (a : fu_class) (b : fu_class) = Stdlib.compare a b

let width_of_ty = function
  | Tint (_, w) -> w
  | Tbool -> W1
  | Tarray (Tint (_, w), _) -> w
  | Tarray _ | Tvoid -> W32

(* Copies, casts and constant shifts are wiring, not functional units. *)
let fu_of_inst (i : Ir.inst) : fu_class option =
  match i with
  | Ir.Bin { op = (Shl | Shr); b = Ir.Imm _; _ } -> None
  | Ir.Bin { op; ty; _ } -> Some (Fbin (op, width_of_ty ty))
  | Ir.Un { op = Lnot; _ } -> None
  | Ir.Un { op; ty; _ } -> Some (Fun_ (op, width_of_ty ty))
  | Ir.Copy _ | Ir.Castop _ | Ir.Load _ | Ir.Store _ | Ir.Sread _ | Ir.Swrite _
  | Ir.Extcall _ | Ir.Tap _ ->
      None

(** Sharing policy: [`Shared] is the normal HLS behaviour (units are
    reused across states); [`Flat] instantiates one unit per operation
    (used by the ablation bench to show what sharing buys). *)
type policy = [ `Shared | `Flat ]

type fu_usage = {
  cls : fu_class;
  units : int;      (** hardware units instantiated *)
  ops : int;        (** operations mapped onto them *)
  mux_ways : int;   (** total operand-mux ways added by sharing *)
}

type t = {
  fus : fu_usage list;
  total_ops : int;
  total_units : int;
}

module ClassMap = Map.Make (struct
  type t = fu_class

  let compare = compare_fu_class
end)

(* Count concurrent uses of each class per state / per pipe cycle class. *)
let concurrency_profile (f : Fsmd.t) =
  let bump map cls =
    ClassMap.update cls (function None -> Some 1 | Some n -> Some (n + 1)) map
  in
  let per_state ops =
    List.fold_left
      (fun map (g : Ir.ginst) ->
        match fu_of_inst g.Ir.i with Some cls -> bump map cls | None -> map)
      ClassMap.empty ops
  in
  let profiles =
    Array.to_list (Array.map (fun (s : Fsmd.state) -> per_state s.Fsmd.ops) f.Fsmd.states)
    @ (Array.to_list f.Fsmd.pipes
      |> List.concat_map (fun (p : Fsmd.pipe) ->
             (* cycle classes modulo II execute concurrently *)
             let classes = Array.make p.Fsmd.ii [] in
             Array.iteri
               (fun c ops -> classes.(c mod p.Fsmd.ii) <- classes.(c mod p.Fsmd.ii) @ ops)
               p.Fsmd.cycle_ops;
             per_state (p.Fsmd.cond_insts @ p.Fsmd.step_insts)
             :: Array.to_list (Array.map per_state classes)))
  in
  (* max concurrency and total ops per class *)
  List.fold_left
    (fun (maxes, totals) profile ->
      ClassMap.fold
        (fun cls n (maxes, totals) ->
          let maxes =
            ClassMap.update cls
              (function None -> Some n | Some m -> Some (Stdlib.max m n))
              maxes
          in
          let totals =
            ClassMap.update cls (function None -> Some n | Some t -> Some (t + n)) totals
          in
          (maxes, totals))
        profile (maxes, totals))
    (ClassMap.empty, ClassMap.empty) profiles

(** Bind the FSMD's operations to functional units under [policy]. *)
let bind ?(policy : policy = `Shared) (f : Fsmd.t) : t =
  let maxes, totals = concurrency_profile f in
  let fus =
    ClassMap.fold
      (fun cls total acc ->
        let concurrent = try ClassMap.find cls maxes with Not_found -> total in
        let units = match policy with `Shared -> concurrent | `Flat -> total in
        let mux_ways =
          (* each shared unit muxes the operand sources of the ops mapped
             to it: ops beyond one per unit add a mux way on both inputs *)
          if units >= total then 0 else 2 * (total - units)
        in
        { cls; units; ops = total; mux_ways } :: acc)
      totals []
  in
  {
    fus;
    total_ops = List.fold_left (fun a u -> a + u.ops) 0 fus;
    total_units = List.fold_left (fun a u -> a + u.units) 0 fus;
  }
