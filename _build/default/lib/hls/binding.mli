(** Functional-unit binding: map scheduled operations onto shared
    hardware units (the classic HLS resource-sharing optimization the
    paper's Section 3.3 builds on).

    Two operations can share a unit when they never execute in the same
    state (or, inside a pipelined loop, the same cycle class modulo the
    II).  Sharing trades multiplexers for functional units; the
    statistics feed the RTL generator and the area model. *)

(** Functional-unit class: operator kind at a given operand width. *)
type fu_class =
  | Fbin of Front.Ast.binop * Front.Ast.width
  | Fun_ of Front.Ast.unop * Front.Ast.width

val compare_fu_class : fu_class -> fu_class -> int

(** Copies, casts and constant shifts are wiring, not functional units. *)
val fu_of_inst : Mir.Ir.inst -> fu_class option

(** [`Shared] reuses units across states (normal HLS behaviour);
    [`Flat] instantiates one unit per operation (ablation baseline). *)
type policy = [ `Flat | `Shared ]

type fu_usage = {
  cls : fu_class;
  units : int;      (** hardware units instantiated *)
  ops : int;        (** operations mapped onto them *)
  mux_ways : int;   (** operand-mux ways added by sharing *)
}

type t = {
  fus : fu_usage list;
  total_ops : int;
  total_units : int;
}

val bind : ?policy:policy -> Fsmd.t -> t
