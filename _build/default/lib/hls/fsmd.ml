(** Finite-state machine with datapath (FSMD): the output of scheduling.

    Semantics (shared with the cycle-accurate simulator):
    - all register writes of a state commit at the end of its cycle;
    - block-RAM loads issue in a state and deliver their data for use in
      strictly later states (synchronous read) — guaranteed by the
      scheduler, so the simulator may commit them like other writes;
    - a state containing a stream operation is exclusive to it (the
      Impulse-C handshake state) and may block;
    - [Branch] consumes a condition register computed in that state or
      earlier and selects the next state;
    - a pipelined loop is a special construct executed with overlapped
      iterations at a fixed initiation interval. *)

module Ir = Mir.Ir

type next =
  | Goto of int
  | Branch of Ir.reg * int * int  (** if cond then first else second *)
  | Enter_pipe of int             (** start pipelined loop [pipe id] *)
  | Done

type state = {
  ops : Ir.ginst list;
  next : next;
  chain_ns : float;  (** worst combinational chain in this state *)
}

(** A modulo-scheduled loop.  Per iteration: the condition instructions
    evaluate combinationally at issue; if the condition holds, the
    iteration's context is snapshotted, the body operations execute at
    their cycle offsets, and the step instructions update the issue
    registers for the next iteration, launched [ii] cycles later. *)
type pipe = {
  ii : int;                           (** initiation interval (the paper's "rate") *)
  depth : int;                        (** iteration latency in cycles *)
  cond_insts : Ir.ginst list;
  cond : Ir.reg;
  step_insts : Ir.ginst list;
  cycle_ops : Ir.ginst list array;    (** body ops by cycle offset; length [depth] *)
  exit_to : int;
  pipe_chain_ns : float;
}

type t = {
  proc : Ir.proc_ir;
  states : state array;
  pipes : pipe array;
  entry : int;
  max_chain_ns : float;
}

let num_states f = Array.length f.states

(** All instructions of the FSMD (states and pipes). *)
let all_ops (f : t) : Ir.ginst list =
  let from_states = Array.to_list f.states |> List.concat_map (fun s -> s.ops) in
  let from_pipes =
    Array.to_list f.pipes
    |> List.concat_map (fun p ->
           p.cond_insts @ p.step_insts @ List.concat (Array.to_list p.cycle_ops))
  in
  from_states @ from_pipes

(** Longest acyclic path length (in states) through the FSM, treating a
    pipe as [depth] cycles — an upper bound used only in reports. *)
let static_path_bound (f : t) =
  Array.length f.states
  + Array.fold_left (fun acc p -> acc + p.depth) 0 f.pipes

(* --- Invariant checking (used by tests and the driver) ------------------- *)

type violation = string

let check (f : t) : violation list =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let n = Array.length f.states in
  let valid_target ?(what = "state") i =
    if i < 0 || i >= n then err "%s target %d out of range [0,%d)" what i n
  in
  Array.iteri
    (fun si st ->
      (* stream ops are exclusive *)
      let has_stream = List.exists (fun g -> Ir.is_stream_op g.Ir.i) st.ops in
      let non_tap_ops =
        List.filter (fun (g : Ir.ginst) -> match g.Ir.i with Ir.Tap _ -> false | _ -> true) st.ops
      in
      if has_stream && List.length non_tap_ops > 1 then
        err "state %d mixes a stream op with other ops" si;
      (* port limits *)
      let port_use = Hashtbl.create 4 in
      List.iter
        (fun g ->
          match Ir.mem_access g.Ir.i with
          | Some m ->
              let c = try Hashtbl.find port_use m with Not_found -> 0 in
              Hashtbl.replace port_use m (c + 1)
          | None -> ())
        st.ops;
      Hashtbl.iter
        (fun m c ->
          match Ir.find_mem f.proc m with
          | Some mem when c > mem.Ir.ports ->
              err "state %d uses %d ports of %s (has %d)" si c m mem.Ir.ports
          | Some _ -> ()
          | None -> err "state %d accesses unknown memory %s" si m)
        port_use;
      (* a load's result must not feed a program-later op in the same
         state (same-state reads *before* the load legally see the old
         register value) *)
      let loaded_so_far = ref [] in
      List.iter
        (fun g ->
          List.iter
            (fun r ->
              if List.mem r !loaded_so_far then
                err "state %d uses load result r%d in the load's own state" si r)
            (Ir.uses_of_g g);
          match g.Ir.i with
          | Ir.Load { dst; _ } -> loaded_so_far := dst :: !loaded_so_far
          | _ -> ())
        st.ops;
      match st.next with
      | Goto t -> valid_target t
      | Branch (_, a, b) -> valid_target a; valid_target b
      | Enter_pipe p ->
          if p < 0 || p >= Array.length f.pipes then err "bad pipe id %d" p
      | Done -> ())
    f.states;
  Array.iteri
    (fun pi p ->
      if p.ii < 1 then err "pipe %d has ii < 1" pi;
      if Array.length p.cycle_ops <> p.depth then
        err "pipe %d depth %d but %d cycle slots" pi p.depth (Array.length p.cycle_ops);
      if p.exit_to < 0 || p.exit_to >= n then err "pipe %d exit out of range" pi;
      (* modulo resource check: memory ports per cycle class *)
      let classes = Hashtbl.create 8 in
      Array.iteri
        (fun c ops ->
          List.iter
            (fun g ->
              match Ir.mem_access g.Ir.i with
              | Some m ->
                  let key = (m, c mod p.ii) in
                  let cnt = try Hashtbl.find classes key with Not_found -> 0 in
                  Hashtbl.replace classes key (cnt + 1)
              | None -> ())
            ops)
        p.cycle_ops;
      Hashtbl.iter
        (fun (m, _) c ->
          match Ir.find_mem f.proc m with
          | Some mem when c > mem.Ir.ports ->
              err "pipe %d over-subscribes %s modulo ii" pi m
          | _ -> ())
        classes;
      (* one handshake per stream per cycle class *)
      let stream_classes = Hashtbl.create 8 in
      Array.iteri
        (fun c ops ->
          List.iter
            (fun (g : Ir.ginst) ->
              match g.Ir.i with
              | Ir.Sread { stream; _ } | Ir.Swrite { stream; _ } ->
                  let key = (stream, c mod p.ii) in
                  let cnt = try Hashtbl.find stream_classes key with Not_found -> 0 in
                  Hashtbl.replace stream_classes key (cnt + 1)
              | _ -> ())
            ops)
        p.cycle_ops;
      Hashtbl.iter
        (fun (s, _) c ->
          if c > 1 then err "pipe %d schedules %d handshakes on %s in one cycle class" pi c s)
        stream_classes;
      (* written memories must confine their accesses to one ii window
         (cross-iteration program order) *)
      let spans = Hashtbl.create 8 in
      Array.iteri
        (fun c ops ->
          List.iter
            (fun (g : Ir.ginst) ->
              match g.Ir.i with
              | Ir.Load { mem; _ } | Ir.Store { mem; _ } ->
                  let lo, hi, written =
                    try Hashtbl.find spans mem with Not_found -> (max_int, min_int, false)
                  in
                  let is_store = match g.Ir.i with Ir.Store _ -> true | _ -> false in
                  Hashtbl.replace spans mem
                    (Stdlib.min lo c, Stdlib.max hi c, written || is_store)
              | _ -> ())
            ops)
        p.cycle_ops;
      Hashtbl.iter
        (fun m (lo, hi, written) ->
          if written && hi - lo >= p.ii then
            err "pipe %d spreads accesses to written memory %s across ii windows" pi m)
        spans)
    f.pipes;
  List.rev !errs
