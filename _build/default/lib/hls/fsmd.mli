(** Finite-state machine with datapath (FSMD): the output of scheduling.

    Semantics (shared with the cycle-accurate simulator):
    - all register writes of a state commit at the end of its cycle;
    - block-RAM loads issue in a state and deliver their data for use in
      strictly later states (synchronous read) — guaranteed by the
      scheduler;
    - a state containing a stream operation is exclusive to it (the
      Impulse-C handshake state) and may block; pure tap latches may
      share it;
    - [Branch] consumes a condition register computed in that state or
      earlier;
    - a pipelined loop is a special construct executed with overlapped
      iterations at a fixed initiation interval. *)

module Ir = Mir.Ir

type next =
  | Goto of int
  | Branch of Ir.reg * int * int  (** if cond then first else second *)
  | Enter_pipe of int             (** start pipelined loop [pipe id] *)
  | Done

type state = {
  ops : Ir.ginst list;
  next : next;
  chain_ns : float;  (** worst combinational chain in this state *)
}

(** A modulo-scheduled loop.  Per iteration: the condition instructions
    evaluate combinationally at issue; if the condition holds, the
    iteration's context is snapshotted, the body operations execute at
    their cycle offsets, and the step instructions update the issue
    registers for the next iteration, launched [ii] cycles later. *)
type pipe = {
  ii : int;                         (** initiation interval (the paper's "rate") *)
  depth : int;                      (** iteration latency in cycles *)
  cond_insts : Ir.ginst list;
  cond : Ir.reg;
  step_insts : Ir.ginst list;
  cycle_ops : Ir.ginst list array;  (** body ops by cycle offset; length [depth] *)
  exit_to : int;
  pipe_chain_ns : float;
}

type t = {
  proc : Ir.proc_ir;
  states : state array;
  pipes : pipe array;
  entry : int;
  max_chain_ns : float;
}

val num_states : t -> int

(** All instructions (states and pipes). *)
val all_ops : t -> Ir.ginst list

(** Upper bound on acyclic path length in cycles (reports only). *)
val static_path_bound : t -> int

type violation = string

(** Check the scheduler's invariants: stream-state exclusivity, memory
    port limits (including modulo the II inside pipes), load-use
    separation, branch-target validity.  Returns all violations; the
    empty list means the FSMD is well formed. *)
val check : t -> violation list
