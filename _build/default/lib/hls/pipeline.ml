(** Modulo scheduling of pipelined loops ([#pragma pipeline]).

    The loop body is if-converted into a single predicated instruction
    stream, then scheduled at the smallest feasible initiation interval
    (II, the paper's "rate").  Constraints:

    - block-RAM ports and stream handshakes are rationed per cycle class
      (cycle mod II);
    - loop-carried registers must be written by cycle II-1 so the next
      iteration's issue sees them;
    - consecutive operations on the same stream must fall within one II
      window so FIFO order is preserved across overlapped iterations;
    - a *guarded* (conditional) stream operation adds one to the II —
      the Impulse-C blocking-handshake-under-control-divergence effect
      that the paper identifies as the source of its pipelined assertion
      rate overhead (Section 5.4, Table 4). *)

module Ir = Mir.Ir
module Stratix = Device.Stratix
open Front.Ast

type schedule = {
  ii : int;
  depth : int;
  cycle_ops : Ir.ginst list array;
  chain_ns : float;
  insts : (Ir.ginst * int) list;  (** each instruction with its cycle *)
}

(* --- If-conversion -------------------------------------------------------- *)

(* Flatten a loop body into one guarded instruction list.  Returns None
   when the body contains nested loops or nested conditionals (we only
   predicate one level, which covers assertion failure branches). *)
let rec if_convert (body : Ir.body) ~(guard : (Ir.reg * bool) option) :
    Ir.ginst list option =
  let convert_insts insts =
    match guard with
    | None -> Some insts
    | Some _ ->
        if List.exists (fun g -> g.Ir.guard <> None) insts then None
        else Some (List.map (fun g -> { g with Ir.guard }) insts)
  in
  List.fold_left
    (fun acc item ->
      match acc with
      | None -> None
      | Some sofar -> (
          match item with
          | Ir.Straight insts -> (
              match convert_insts insts with
              | Some gs -> Some (sofar @ gs)
              | None -> None)
          | Ir.If_else { cond_insts; cond; then_; else_ } ->
              if guard <> None then None  (* one predication level only *)
              else
                let ci = cond_insts in
                (match
                   ( if_convert then_ ~guard:(Some (cond, true)),
                     if_convert else_ ~guard:(Some (cond, false)) )
                 with
                | Some t, Some e -> Some (sofar @ ci @ t @ e)
                | _ -> None)
          | Ir.Loop _ -> None))
    (Some []) body

let is_pure_alu (g : Ir.ginst) =
  match g.Ir.i with
  | Ir.Bin _ | Ir.Un _ | Ir.Copy _ | Ir.Castop _ -> true
  | Ir.Load _ | Ir.Store _ | Ir.Sread _ | Ir.Swrite _ | Ir.Extcall _ | Ir.Tap _ -> false

(* --- Delay model ----------------------------------------------------------- *)

let inst_delay (i : Ir.inst) =
  match i with
  | Ir.Bin { op = (Shl | Shr); b = Ir.Imm _; _ } -> Stratix.binop_delay_const_shift
  | Ir.Bin { op; ty; _ } -> Stratix.binop_delay_ns op ty
  | Ir.Un { op; ty; _ } -> Stratix.unop_delay_ns op ty
  | Ir.Copy _ | Ir.Castop _ | Ir.Tap _ -> 0.0
  | Ir.Load _ | Ir.Store _ -> 1.0  (* address/data port path *)
  | Ir.Sread _ | Ir.Swrite _ -> 1.0
  | Ir.Extcall _ -> 1.0

(* --- Modulo scheduling ------------------------------------------------------ *)

exception Infeasible

let budget = Stratix.chain_budget_ns

(* Attempt to schedule [insts] at initiation interval [ii].  [proc]
   supplies memory port counts.  Raises [Infeasible] if constraints
   cannot be met at this ii. *)
let try_schedule (proc : Ir.proc_ir) (insts : Ir.ginst list) ~ii =
  let avail : (Ir.reg, int * float) Hashtbl.t = Hashtbl.create 32 in
  let mem_slots : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
  let stream_slots : (string * int, bool) Hashtbl.t = Hashtbl.create 16 in
  let ext_slots : (string * int, bool) Hashtbl.t = Hashtbl.create 16 in
  let chain : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let last_read : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
  let last_write : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
  let last_stream_cycle : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let mem_loads : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let mem_stores : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let placed = ref [] in
  let note_chain c t =
    let cur = try Hashtbl.find chain c with Not_found -> 0.0 in
    if t > cur then Hashtbl.replace chain c t
  in
  let ports_of m =
    match Ir.find_mem proc m with Some mem -> mem.Ir.ports | None -> 1
  in
  let mem_free m c =
    let used = try Hashtbl.find mem_slots (m, c mod ii) with Not_found -> 0 in
    used < ports_of m
  in
  let take_mem m c =
    let k = (m, c mod ii) in
    Hashtbl.replace mem_slots k (1 + (try Hashtbl.find mem_slots k with Not_found -> 0))
  in
  let operand_ready op =
    match op with
    | Ir.Imm _ -> (0, 0.0)
    | Ir.Reg r -> ( try Hashtbl.find avail r with Not_found -> (0, 0.0))
  in
  let deps_of (g : Ir.ginst) =
    let guard_dep = match g.Ir.guard with Some (r, _) -> [ Ir.Reg r ] | None -> [] in
    guard_dep @ List.map (fun r -> Ir.Reg r) (Ir.uses_of g.Ir.i)
  in
  let ready_cycle g =
    List.fold_left
      (fun (c, t) op ->
        let c', t' = operand_ready op in
        if c' > c then (c', t') else if c' = c then (c, Stdlib.max t t') else (c, t))
      (0, 0.0) (deps_of g)
  in
  let registered_cycle g =
    (* earliest cycle at which all operands are in registers *)
    let c, t = ready_cycle g in
    if t > 0.0 then c + 1 else c
  in
  (* anti-dependences: a register write must not land before a
     program-earlier read (same cycle is fine: in-cycle execution is in
     program order) nor at/before a program-earlier write *)
  let war_floor dst =
    let r = try Hashtbl.find last_read dst with Not_found -> -1 in
    let w = try Hashtbl.find last_write dst with Not_found -> -1 in
    Stdlib.max r (w + 1)
  in
  let note_reads g c =
    List.iter
      (function
        | Ir.Reg r ->
            let cur = try Hashtbl.find last_read r with Not_found -> -1 in
            if c > cur then Hashtbl.replace last_read r c
        | Ir.Imm _ -> ())
      (deps_of g)
  in
  let note_write dst c = Hashtbl.replace last_write dst c in
  let place g c =
    note_reads g c;
    (match Ir.dst_of g.Ir.i with Some d -> note_write d c | None -> ());
    placed := (g, c) :: !placed
  in
  let limit = 4096 in
  List.iter
    (fun (g : Ir.ginst) ->
      match g.Ir.i with
      | Ir.Bin _ | Ir.Un _ | Ir.Copy _ | Ir.Castop _ ->
          let d = inst_delay g.Ir.i in
          let c, t = ready_cycle g in
          let c, t =
            let floor =
              match Ir.dst_of g.Ir.i with Some dst -> war_floor dst | None -> 0
            in
            if floor > c then (floor, 0.0) else (c, t)
          in
          let c, t_end =
            if t +. d <= budget then (c, t +. d)
            else (c + 1, d)
          in
          note_chain c t_end;
          (match Ir.dst_of g.Ir.i with
          | Some dst -> Hashtbl.replace avail dst (c, t_end)
          | None -> ());
          place g c
      | Ir.Load { dst; mem; _ } ->
          let c0 =
            let c, t = ready_cycle g in
            if t +. 1.0 <= budget then c else c + 1
          in
          let c0 = Stdlib.max c0 (war_floor dst) in
          let c0 =
            match Hashtbl.find_opt mem_stores mem with
            | Some stores -> List.fold_left (fun acc s -> Stdlib.max acc (s + 1)) c0 stores
            | None -> c0
          in
          let rec find c =
            if c > limit then raise Infeasible
            else if mem_free mem c then c
            else find (c + 1)
          in
          let c = find c0 in
          take_mem mem c;
          Hashtbl.replace mem_loads mem (c :: (try Hashtbl.find mem_loads mem with Not_found -> []));
          note_chain c 1.0;
          Hashtbl.replace avail dst (c + 1, 0.0);
          place g c
      | Ir.Store { mem; _ } ->
          let c0 =
            let c, t = ready_cycle g in
            if t +. 1.0 <= budget then c else c + 1
          in
          let c0 =
            match Hashtbl.find_opt mem_stores mem with
            | Some stores -> List.fold_left (fun acc s -> Stdlib.max acc (s + 1)) c0 stores
            | None -> c0
          in
          let c0 =
            (* stores must not pass program-earlier loads of the same mem *)
            match Hashtbl.find_opt mem_loads mem with
            | Some loads -> List.fold_left Stdlib.max c0 loads
            | None -> c0
          in
          let rec find c =
            if c > limit then raise Infeasible
            else if mem_free mem c then c
            else find (c + 1)
          in
          let c = find c0 in
          take_mem mem c;
          Hashtbl.replace mem_stores mem (c :: (try Hashtbl.find mem_stores mem with Not_found -> []));
          note_chain c 1.0;
          place g c
      | Ir.Sread { stream; _ } | Ir.Swrite { stream; _ } ->
          let c0 = registered_cycle g in
          let c0 =
            match g.Ir.i with
            | Ir.Sread { dst; _ } -> Stdlib.max c0 (war_floor dst)
            | _ -> c0
          in
          let c0 =
            match Hashtbl.find_opt last_stream_cycle stream with
            | Some prev -> Stdlib.max c0 (prev + 1)
            | None -> c0
          in
          let rec find c =
            if c > limit then raise Infeasible
            else if not (Hashtbl.mem stream_slots (stream, c mod ii)) then c
            else find (c + 1)
          in
          let c = find c0 in
          (* FIFO order across overlapped iterations: consecutive ops on
             one stream must fit within one II window *)
          (match Hashtbl.find_opt last_stream_cycle stream with
          | Some prev when c - prev >= ii + 1 -> raise Infeasible
          | _ -> ());
          Hashtbl.replace stream_slots (stream, c mod ii) true;
          Hashtbl.replace last_stream_cycle stream c;
          note_chain c 1.0;
          (match g.Ir.i with
          | Ir.Sread { dst; _ } ->
              (* show-ahead FIFO: the head of the queue is combinationally
                 valid during the handshake cycle (after the output mux
                 delay), so cheap consumers — e.g. a FIR delay-line load —
                 can chain in the same cycle and keep II = 1 *)
              Hashtbl.replace avail dst (c, 2.5)
          | _ -> ());
          place g c
      | Ir.Extcall { dst; func; latency; _ } ->
          let c0 = Stdlib.max (registered_cycle g) (war_floor dst) in
          let rec find c =
            if c > limit then raise Infeasible
            else if not (Hashtbl.mem ext_slots (func, c mod ii)) then c
            else find (c + 1)
          in
          let c = find c0 in
          Hashtbl.replace ext_slots (func, c mod ii) true;
          note_chain c 1.0;
          Hashtbl.replace avail dst (c + latency, 0.0);
          place g c
      | Ir.Tap _ ->
          (* latch-enable: fires on the edge where its last operand
             commits; operand-less markers anchor to the current point *)
          let c =
            if deps_of g = [] then
              List.fold_left (fun acc (_, c) -> Stdlib.max acc c) 0 !placed
            else
              List.fold_left
                (fun acc op ->
                  let c', t' = operand_ready op in
                  let commit = if t' > 0.0 then c' else Stdlib.max 0 (c' - 1) in
                  Stdlib.max acc commit)
                0 (deps_of g)
          in
          place g c)
    insts;
  let placed = List.rev !placed in
  (* Cross-iteration memory ordering: when a memory is written, all of
     one iteration's accesses must fit inside a single II window,
     otherwise a trailing store of iteration k lands after iteration
     k+1's leading access and program order breaks.  Read-only memories
     (ROMs) are exempt. *)
  let mem_spans : (string, int * int * bool) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun ((g : Ir.ginst), c) ->
      match g.Ir.i with
      | Ir.Load { mem; _ } | Ir.Store { mem; _ } ->
          let lo, hi, written =
            try Hashtbl.find mem_spans mem with Not_found -> (max_int, min_int, false)
          in
          let is_store = match g.Ir.i with Ir.Store _ -> true | _ -> false in
          Hashtbl.replace mem_spans mem
            (Stdlib.min lo c, Stdlib.max hi c, written || is_store)
      | _ -> ())
    placed;
  Hashtbl.iter
    (fun _ (lo, hi, written) -> if written && hi - lo >= ii then raise Infeasible)
    mem_spans;
  (* loop-carried constraint: any register written in the body must be
     committed before the next issue (cycle <= ii-1) if some read of it
     is not satisfied by an in-iteration earlier write.  Conservatively
     we require it for every body-written register that is also read by
     the loop (cond/step reads are checked by the caller). *)
  let depth =
    List.fold_left
      (fun acc (g, c) ->
        let fin =
          match g.Ir.i with Ir.Extcall { latency; _ } -> c + latency | _ -> c + 1
        in
        Stdlib.max acc fin)
      1 placed
  in
  let max_chain = Hashtbl.fold (fun _ t acc -> Stdlib.max acc t) chain 0.0 in
  (placed, depth, max_chain)

(** Registers that carry values across iterations: written somewhere in
    [body_insts] and read either by [issue_insts] (cond/step) or by a
    body instruction at or before the writing instruction's position. *)
let loop_carried ~(body_insts : Ir.ginst list) ~(issue_insts : Ir.ginst list) =
  let issue_reads =
    List.concat_map (fun g -> Ir.uses_of_g g) issue_insts
  in
  let carried = ref [] in
  List.iteri
    (fun wi (w : Ir.ginst) ->
      match Ir.dst_of w.Ir.i with
      | None -> ()
      | Some d ->
          let read_early =
            List.exists (fun r -> r = d) issue_reads
            || List.exists
                 (fun (ri, (rg : Ir.ginst)) -> ri <= wi && List.mem d (Ir.uses_of_g rg))
                 (List.mapi (fun i g -> (i, g)) body_insts)
          in
          if read_early && not (List.mem d !carried) then carried := d :: !carried)
    body_insts;
  !carried

type t = {
  sched : schedule;
  cond_insts : Ir.ginst list;
  cond : Ir.reg;
  step_insts : Ir.ginst list;
}

(** Attempt to pipeline a loop.  Returns [None] (caller falls back to a
    sequential schedule) when the body cannot be if-converted, when the
    condition or step needs memory or stream access, or when no feasible
    II up to a generous bound exists. *)
let make (proc : Ir.proc_ir) ~(cond_insts : Ir.ginst list) ~(cond : Ir.reg)
    ~(body : Ir.body) ~(step_insts : Ir.ginst list) : t option =
  match if_convert body ~guard:None with
  | None -> None
  | Some insts ->
      if not (List.for_all is_pure_alu cond_insts && List.for_all is_pure_alu step_insts)
      then None
      else begin
        (* resource-derived minimum II *)
        let count tbl k n = Hashtbl.replace tbl k (n + (try Hashtbl.find tbl k with Not_found -> 0)) in
        let mem_uses = Hashtbl.create 4 and stream_uses = Hashtbl.create 4 in
        List.iter
          (fun (g : Ir.ginst) ->
            (match Ir.mem_access g.Ir.i with Some m -> count mem_uses m 1 | None -> ());
            match g.Ir.i with
            | Ir.Sread { stream; _ } | Ir.Swrite { stream; _ } ->
                (* a *guarded* (conditional) stream operation costs a
                   second handshake slot: the blocking protocol must
                   resolve under control divergence before the next
                   iteration can issue — the paper's observed rate loss
                   for unoptimized in-loop assertions (Table 4) *)
                count stream_uses stream (if g.Ir.guard <> None then 2 else 1)
            | _ -> ())
          insts;
        let res_mii = ref 1 in
        Hashtbl.iter
          (fun m c ->
            let ports = match Ir.find_mem proc m with Some mm -> mm.Ir.ports | None -> 1 in
            res_mii := Stdlib.max !res_mii ((c + ports - 1) / ports))
          mem_uses;
        Hashtbl.iter (fun _ c -> res_mii := Stdlib.max !res_mii c) stream_uses;
        let ii_start = !res_mii in
        let carried = loop_carried ~body_insts:insts ~issue_insts:(cond_insts @ step_insts) in
        let rec search ii =
          if ii > ii_start + 32 then None
          else
            match try_schedule proc insts ~ii with
            | exception Infeasible -> search (ii + 1)
            | placed, depth, chain ->
                (* loop-carried writes must commit before the next issue *)
                let ok =
                  List.for_all
                    (fun (g, c) ->
                      match Ir.dst_of g.Ir.i with
                      | Some d when List.mem d carried ->
                          let fin =
                            match g.Ir.i with
                            | Ir.Extcall { latency; _ } -> c + latency
                            | Ir.Load _ -> c + 1
                            | _ -> c
                          in
                          fin <= ii - 1
                      | _ -> true)
                    placed
                in
                if not ok then search (ii + 1)
                else begin
                  let cycle_ops = Array.make depth [] in
                  List.iter (fun (g, c) -> cycle_ops.(c) <- cycle_ops.(c) @ [ g ]) placed;
                  Some
                    {
                      sched = { ii; depth; cycle_ops; chain_ns = chain; insts = placed };
                      cond_insts;
                      cond;
                      step_insts;
                    }
                end
        in
        search (Stdlib.max 1 ii_start)
      end
