(** Modulo scheduling of pipelined loops ([#pragma pipeline]).

    The loop body is if-converted into a single predicated instruction
    stream, then scheduled at the smallest feasible initiation interval
    (II, the paper's "rate") subject to: block-RAM ports and stream
    handshakes per cycle class; loop-carried registers committing before
    the next issue; FIFO order across overlapped iterations; one-window
    memory access spans for written memories; and one extra handshake
    slot for every *guarded* (conditional) stream operation — the
    Impulse-C behaviour behind the paper's unoptimized in-loop assertion
    rate loss (Section 5.4, Table 4). *)

module Ir = Mir.Ir

type schedule = {
  ii : int;
  depth : int;
  cycle_ops : Ir.ginst list array;
  chain_ns : float;
  insts : (Ir.ginst * int) list;  (** each instruction with its cycle *)
}

(** Flatten a loop body into one guarded instruction list; [None] when
    it contains nested loops or nested conditionals (one predication
    level is supported — enough for assertion failure branches). *)
val if_convert :
  Mir.Ir.body -> guard:(Ir.reg * bool) option -> Ir.ginst list option

val is_pure_alu : Ir.ginst -> bool

(** Combinational delay model used by both schedulers. *)
val inst_delay : Ir.inst -> float

(** Registers carrying values across iterations: written in the body and
    read at issue (cond/step) or read at-or-before the writing position. *)
val loop_carried :
  body_insts:Ir.ginst list -> issue_insts:Ir.ginst list -> Ir.reg list

type t = {
  sched : schedule;
  cond_insts : Ir.ginst list;
  cond : Ir.reg;
  step_insts : Ir.ginst list;
}

(** Attempt to pipeline a loop; [None] (caller falls back to a
    sequential schedule) when the body cannot be if-converted, the
    condition or step needs memory or stream access, or no feasible II
    exists within a generous bound. *)
val make :
  Ir.proc_ir ->
  cond_insts:Ir.ginst list ->
  cond:Ir.reg ->
  body:Mir.Ir.body ->
  step_insts:Ir.ginst list ->
  t option
