(** List scheduling of straight-line segments and FSMD assembly.

    The scheduler models the Impulse-C code generator's observable
    behaviour:
    - independent ALU operations chain within a state up to the target
      clock period;
    - synchronous block-RAM reads deliver data one state later and
      compete for a bounded number of ports;
    - stream handshakes occupy exclusive states and stay in program
      order;
    - an [if] evaluates its condition in dedicated state(s) — at least
      one extra cycle on every path, which is exactly the unoptimized
      assertion overhead of the paper's Table 3;
    - external HDL calls have a fixed latency with wait states. *)

module Ir = Mir.Ir
module Stratix = Device.Stratix

let budget = Stratix.chain_budget_ns

let inst_delay = Pipeline.inst_delay

(* --- Segment scheduling ---------------------------------------------------- *)

type seg_schedule = {
  state_ops : Ir.ginst list array;
  state_chain : float array;
}

(* Greedy in-order list scheduling with operator chaining.  Later
   instructions may still land in earlier states when dependences and
   resources allow (e.g. an assertion tap load slotting into a free
   memory port — Table 3's "non-consecutive" row). *)
let schedule_segment (proc : Ir.proc_ir) (seg : Ir.ginst list) : seg_schedule =
  let avail : (Ir.reg, int * float) Hashtbl.t = Hashtbl.create 32 in
  let ops_at : (int, Ir.ginst list) Hashtbl.t = Hashtbl.create 16 in
  let chain_at : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let exclusive : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let port_use : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
  let ext_use : (string * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let last_read : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
  let last_write : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
  let last_mem_store : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let last_mem_load : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let last_stream_state = ref (-1) in
  let max_state = ref (-1) in
  let note_state s = if s > !max_state then max_state := s in
  let add_op s g =
    Hashtbl.replace ops_at s (g :: (try Hashtbl.find ops_at s with Not_found -> []));
    note_state s
  in
  let note_chain s t =
    let cur = try Hashtbl.find chain_at s with Not_found -> 0.0 in
    if t > cur then Hashtbl.replace chain_at s t
  in
  let ports_of m = match Ir.find_mem proc m with Some mm -> mm.Ir.ports | None -> 1 in
  let port_free m s =
    (not (Hashtbl.mem exclusive s))
    && (try Hashtbl.find port_use (m, s) with Not_found -> 0) < ports_of m
  in
  let take_port m s =
    Hashtbl.replace port_use (m, s)
      (1 + (try Hashtbl.find port_use (m, s) with Not_found -> 0))
  in
  let operand_avail = function
    | Ir.Imm _ -> (0, 0.0)
    | Ir.Reg r -> ( try Hashtbl.find avail r with Not_found -> (0, 0.0))
  in
  let deps g =
    let guard = match g.Ir.guard with Some (r, _) -> [ Ir.Reg r ] | None -> [] in
    guard @ List.map (fun r -> Ir.Reg r) (Ir.uses_of g.Ir.i)
  in
  let ready g =
    List.fold_left
      (fun (s, t) op ->
        let s', t' = operand_avail op in
        if s' > s then (s', t') else if s' = s then (s, Stdlib.max t t') else (s, t))
      (0, 0.0) (deps g)
  in
  (* anti-dependences: a write to r must not land before a state where r
     was read or written; reads note their state for later writers *)
  let war_floor dst =
    let r = try Hashtbl.find last_read dst with Not_found -> -1 in
    let w = try Hashtbl.find last_write dst with Not_found -> -1 in
    Stdlib.max r (w + 1)
  in
  let note_reads g s =
    List.iter
      (fun op ->
        match op with
        | Ir.Reg r ->
            let cur = try Hashtbl.find last_read r with Not_found -> -1 in
            if s > cur then Hashtbl.replace last_read r s
        | Ir.Imm _ -> ())
      (deps g)
  in
  let note_write dst s = Hashtbl.replace last_write dst s in
  let registered g =
    let s, t = ready g in
    if t > 0.0 then s + 1 else s
  in
  let rec first_free_state pred s = if pred s then s else first_free_state pred (s + 1) in
  let not_exclusive s = not (Hashtbl.mem exclusive s) in
  (* taps are pure wire latches: they may share any state, including
     stream handshake states, and never make a state "occupied" *)
  let state_empty s =
    match Hashtbl.find_opt ops_at s with
    | None -> true
    | Some ops -> List.for_all (fun (g : Ir.ginst) -> match g.Ir.i with Ir.Tap _ -> true | _ -> false) ops
  in
  List.iter
    (fun (g : Ir.ginst) ->
      match g.Ir.i with
      | Ir.Bin _ | Ir.Un _ | Ir.Copy _ | Ir.Castop _ ->
          let d = inst_delay g.Ir.i in
          let s, t = ready g in
          let dst = match Ir.dst_of g.Ir.i with Some d' -> d' | None -> assert false in
          let floor = war_floor dst in
          let s, t = if floor > s then (floor, 0.0) else (s, t) in
          let s = first_free_state not_exclusive s in
          let s, t_end =
            if t +. d <= budget then (s, t +. d)
            else (first_free_state not_exclusive (s + 1), d)
          in
          add_op s g;
          note_chain s t_end;
          note_reads g s;
          note_write dst s;
          Hashtbl.replace avail dst (s, t_end)
      | Ir.Load { dst; mem; _ } ->
          (* the M4K registers its address at the clock edge, so address
             computation may chain into the load's state *)
          let s0 =
            let s, t = ready g in
            if t +. 1.0 <= budget then s else s + 1
          in
          let s0 = Stdlib.max s0 (war_floor dst) in
          let s0 =
            match Hashtbl.find_opt last_mem_store mem with
            | Some st -> Stdlib.max s0 (st + 1)
            | None -> s0
          in
          let s = first_free_state (port_free mem) s0 in
          take_port mem s;
          Hashtbl.replace last_mem_load mem
            (Stdlib.max s (try Hashtbl.find last_mem_load mem with Not_found -> -1));
          add_op s g;
          note_chain s 1.0;
          note_reads g s;
          note_write dst s;
          Hashtbl.replace avail dst (s + 1, 0.0)
      | Ir.Store { mem; _ } ->
          let s0 =
            let s, t = ready g in
            if t +. 1.0 <= budget then s else s + 1
          in
          let s0 =
            match Hashtbl.find_opt last_mem_store mem with
            | Some st -> Stdlib.max s0 (st + 1)
            | None -> s0
          in
          let s0 =
            match Hashtbl.find_opt last_mem_load mem with
            | Some ld -> Stdlib.max s0 ld
            | None -> s0
          in
          let s = first_free_state (port_free mem) s0 in
          take_port mem s;
          Hashtbl.replace last_mem_store mem s;
          add_op s g;
          note_chain s 1.0;
          note_reads g s
      | Ir.Sread { dst; stream = _ } ->
          let s0 = Stdlib.max (registered g) (!last_stream_state + 1) in
          let s0 = Stdlib.max s0 (war_floor dst) in
          let s = first_free_state (fun s -> state_empty s && not_exclusive s) s0 in
          Hashtbl.replace exclusive s ();
          last_stream_state := s;
          add_op s g;
          note_chain s 1.0;
          note_write dst s;
          Hashtbl.replace avail dst (s + 1, 0.0)
      | Ir.Swrite _ ->
          let s0 = Stdlib.max (registered g) (!last_stream_state + 1) in
          let s = first_free_state (fun s -> state_empty s && not_exclusive s) s0 in
          Hashtbl.replace exclusive s ();
          last_stream_state := s;
          add_op s g;
          note_chain s 1.0;
          note_reads g s
      | Ir.Extcall { dst; func; latency; _ } ->
          let s0 = Stdlib.max (registered g) (war_floor dst) in
          let s =
            first_free_state
              (fun s -> not_exclusive s && not (Hashtbl.mem ext_use (func, s)))
              s0
          in
          Hashtbl.replace ext_use (func, s) ();
          add_op s g;
          note_chain s 1.0;
          note_reads g s;
          note_write dst s;
          Hashtbl.replace avail dst (s + latency, 0.0);
          note_state (s + latency - 1)  (* wait states *)
      | Ir.Tap _ ->
          (* a tap is a latch-enable on existing registers: it fires on
             the clock edge where its last operand commits, so it never
             needs a state of its own.  An operand-less tap (a pure code
             marker, e.g. for timing assertions) anchors to the current
             program point instead. *)
          let s =
            if deps g = [] then Stdlib.max 0 !max_state
            else
              List.fold_left
                (fun acc op ->
                  let s', t' = operand_avail op in
                  let commit = if t' > 0.0 then s' else Stdlib.max 0 (s' - 1) in
                  Stdlib.max acc commit)
                0 (deps g)
          in
          add_op s g;
          note_reads g s)
    seg;
  let n = !max_state + 1 in
  let state_ops = Array.make (Stdlib.max n 0) [] in
  let state_chain = Array.make (Stdlib.max n 0) 0.0 in
  for s = 0 to n - 1 do
    state_ops.(s) <- List.rev (try Hashtbl.find ops_at s with Not_found -> []);
    state_chain.(s) <- (try Hashtbl.find chain_at s with Not_found -> 0.0)
  done;
  { state_ops; state_chain }

(* --- FSMD assembly ----------------------------------------------------------- *)

type builder = {
  mutable slots : (Ir.ginst list * Fsmd.next * float) option array;
  mutable n : int;
  mutable pipes : Fsmd.pipe list;  (* reverse order *)
  mutable npipes : int;
}

let new_builder () = { slots = Array.make 64 None; n = 0; pipes = []; npipes = 0 }

let alloc b =
  if b.n = Array.length b.slots then begin
    let bigger = Array.make (2 * b.n) None in
    Array.blit b.slots 0 bigger 0 b.n;
    b.slots <- bigger
  end;
  let id = b.n in
  b.n <- b.n + 1;
  id

let set b id ops next chain = b.slots.(id) <- Some (ops, next, chain)

let add_pipe b pipe =
  let id = b.npipes in
  b.pipes <- pipe :: b.pipes;
  b.npipes <- id + 1;
  id

(* Emit a scheduled segment as a chain of states ending in [follow].
   Returns the entry state (or [follow] when the segment is empty). *)
let emit_segment b (sched : seg_schedule) ~follow =
  let n = Array.length sched.state_ops in
  if n = 0 then follow
  else begin
    let ids = Array.init n (fun _ -> alloc b) in
    Array.iteri
      (fun i id ->
        let next = if i = n - 1 then Fsmd.Goto follow else Fsmd.Goto ids.(i + 1) in
        set b id sched.state_ops.(i) next sched.state_chain.(i))
      ids;
    ids.(0)
  end

(* Emit a segment whose LAST state branches on [cond]. *)
let emit_cond_segment b proc (cond_insts : Ir.ginst list) ~cond ~on_true ~on_false =
  let sched = schedule_segment proc cond_insts in
  let n = Array.length sched.state_ops in
  if n = 0 then begin
    (* no work: a bare branch state (the if still costs its cycle) *)
    let id = alloc b in
    set b id [] (Fsmd.Branch (cond, on_true, on_false)) 0.0;
    id
  end
  else begin
    let ids = Array.init n (fun _ -> alloc b) in
    Array.iteri
      (fun i id ->
        let next =
          if i = n - 1 then Fsmd.Branch (cond, on_true, on_false)
          else Fsmd.Goto ids.(i + 1)
        in
        set b id sched.state_ops.(i) next sched.state_chain.(i))
      ids;
    ids.(0)
  end

let rec emit_body b (proc : Ir.proc_ir) (body : Ir.body) ~follow =
  match body with
  | [] -> follow
  | item :: rest ->
      let rest_entry = emit_body b proc rest ~follow in
      emit_item b proc item ~follow:rest_entry

and emit_item b proc item ~follow =
  match item with
  | Ir.Straight seg -> emit_segment b (schedule_segment proc seg) ~follow
  | Ir.If_else { cond_insts; cond; then_; else_ } ->
      let then_entry = emit_body b proc then_ ~follow in
      let else_entry = emit_body b proc else_ ~follow in
      emit_cond_segment b proc cond_insts ~cond ~on_true:then_entry ~on_false:else_entry
  | Ir.Loop { cond_insts; cond; body; step_insts; pipelined } -> (
      let pipe_attempt =
        if pipelined then Pipeline.make proc ~cond_insts ~cond ~body ~step_insts
        else None
      in
      match pipe_attempt with
      | Some p ->
          let pipe : Fsmd.pipe =
            {
              Fsmd.ii = p.Pipeline.sched.Pipeline.ii;
              depth = p.Pipeline.sched.Pipeline.depth;
              cond_insts = p.Pipeline.cond_insts;
              cond = p.Pipeline.cond;
              step_insts = p.Pipeline.step_insts;
              cycle_ops = p.Pipeline.sched.Pipeline.cycle_ops;
              exit_to = follow;
              pipe_chain_ns = p.Pipeline.sched.Pipeline.chain_ns;
            }
          in
          let pid = add_pipe b pipe in
          let id = alloc b in
          set b id [] (Fsmd.Enter_pipe pid) 0.0;
          id
      | None ->
          if pipelined then
            Logs.warn (fun m ->
                m "loop in %s could not be pipelined; falling back to sequential schedule"
                  proc.Ir.name);
          (* sequential loop: cond states host the exit branch *)
          (* allocate the cond entry lazily via a forward reference *)
          let cond_sched = schedule_segment proc cond_insts in
          let ncond = Array.length cond_sched.state_ops in
          let cond_ids = Array.init (Stdlib.max ncond 1) (fun _ -> alloc b) in
          let cond_entry = cond_ids.(0) in
          let step_entry =
            if step_insts = [] then cond_entry
            else emit_segment b (schedule_segment proc step_insts) ~follow:cond_entry
          in
          let body_entry = emit_body b proc body ~follow:step_entry in
          if ncond = 0 then
            set b cond_ids.(0) [] (Fsmd.Branch (cond, body_entry, follow)) 0.0
          else
            Array.iteri
              (fun i id ->
                let next =
                  if i = ncond - 1 then Fsmd.Branch (cond, body_entry, follow)
                  else Fsmd.Goto cond_ids.(i + 1)
                in
                set b id cond_sched.state_ops.(i) next cond_sched.state_chain.(i))
              cond_ids;
          cond_entry)

(** Compile one process to an FSMD. *)
let compile_proc (proc : Ir.proc_ir) : Fsmd.t =
  let b = new_builder () in
  let done_id = alloc b in
  set b done_id [] Fsmd.Done 0.0;
  let entry = emit_body b proc proc.Ir.body ~follow:done_id in
  let states =
    Array.init b.n (fun i ->
        match b.slots.(i) with
        | Some (ops, next, chain_ns) -> { Fsmd.ops; next; chain_ns }
        | None -> { Fsmd.ops = []; next = Fsmd.Done; chain_ns = 0.0 })
  in
  let pipes = Array.of_list (List.rev b.pipes) in
  let max_chain_ns =
    Array.fold_left (fun acc (s : Fsmd.state) -> Stdlib.max acc s.Fsmd.chain_ns)
      (Array.fold_left (fun acc (p : Fsmd.pipe) -> Stdlib.max acc p.Fsmd.pipe_chain_ns) 0.0 pipes)
      states
  in
  { Fsmd.proc; states; pipes; entry; max_chain_ns }
