(** List scheduling of straight-line segments and FSMD assembly.

    Models the Impulse-C code generator's observable behaviour:
    independent ALU operations chain within a state up to the target
    clock period; synchronous block-RAM reads deliver data one state
    later and compete for a bounded number of ports; stream handshakes
    occupy exclusive states in program order; an [if] evaluates its
    condition in dedicated state(s) — at least one extra cycle on every
    path, the unoptimized assertion overhead of Table 3; external HDL
    calls have fixed latency with wait states. *)

module Ir = Mir.Ir

(** Chain budget per state (ns). *)
val budget : float

(** Combinational delay model of one instruction (re-exported from
    {!Pipeline}). *)
val inst_delay : Ir.inst -> float

type seg_schedule = {
  state_ops : Ir.ginst list array;
  state_chain : float array;
}

(** Greedy in-order list scheduling with operator chaining.  Later
    instructions may land in earlier states when dependences and
    resources allow (e.g. an assertion tap load slotting into a free
    memory port — Table 3's "non-consecutive" row). *)
val schedule_segment : Ir.proc_ir -> Ir.ginst list -> seg_schedule

(** Compile one process to an FSMD (sequential states plus
    modulo-scheduled pipes for [#pragma pipeline] loops; loops that
    cannot be pipelined fall back to sequential schedules with a
    warning). *)
val compile_proc : Ir.proc_ir -> Fsmd.t
