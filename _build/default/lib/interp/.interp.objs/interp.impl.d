lib/interp/interp.ml: Array Effect Filename Front Hashtbl Int64 List Printf Queue Value
