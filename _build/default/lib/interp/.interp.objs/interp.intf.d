lib/interp/interp.mli: Front Value
