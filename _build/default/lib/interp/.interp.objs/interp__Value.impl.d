lib/interp/value.ml: Front Int64
