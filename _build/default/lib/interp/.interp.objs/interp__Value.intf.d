lib/interp/value.mli: Front
