(** Fixed-width two's-complement arithmetic.

    A value of type [Tint (s, w)] is represented as an [int64] in
    canonical form: truncated to [w] bits, then sign-extended when [s] is
    [Signed] and zero-extended when [s] is [Unsigned].  All operations
    re-canonicalize, so C's wrapping semantics hold at every width.
    This module is the single definition of scalar semantics shared by
    the software interpreter and the hardware simulator — except where a
    fault is injected (paper, Section 5.1). *)

open Front.Ast

exception Division_by_zero

(* Mask of the low [n] bits, n in [1,64]. *)
let low_mask n =
  if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

(** Canonicalize [v] as a value of signedness [s] and width [w]. *)
let wrap s w v =
  let n = bits_of_width w in
  if n = 64 then v
  else
    let t = Int64.logand v (low_mask n) in
    match s with
    | Unsigned -> t
    | Signed ->
        let sign_bit = Int64.shift_left 1L (n - 1) in
        if Int64.logand t sign_bit = 0L then t
        else Int64.logor t (Int64.lognot (low_mask n))

let wrap_ty ty v =
  match ty with
  | Tint (s, w) -> wrap s w v
  | Tbool -> if v = 0L then 0L else 1L
  | Tarray _ | Tvoid -> invalid_arg "Value.wrap_ty: not a scalar type"

let of_bool b = if b then 1L else 0L
let to_bool v = v <> 0L

let signedness_of = function
  | Tint (s, _) -> s
  | Tbool -> Unsigned
  | Tarray _ | Tvoid -> invalid_arg "Value.signedness_of"

let width_of = function
  | Tint (_, w) -> w
  | Tbool -> W1
  | Tarray _ | Tvoid -> invalid_arg "Value.width_of"

(* Comparison viewing canonical values per signedness.  Canonical
   unsigned sub-64-bit values are non-negative, so plain compare works;
   only unsigned 64-bit needs [unsigned_compare]. *)
let compare_v s a b =
  match s with
  | Signed -> Int64.compare a b
  | Unsigned -> Int64.unsigned_compare a b

(** Evaluate a binary operation at type [ty] (the common operand type
    produced by elaboration).  Comparison results are booleans (0/1). *)
let binop op ty a b =
  let s = signedness_of ty and w = width_of ty in
  let arith f = wrap s w (f a b) in
  match op with
  | Add -> arith Int64.add
  | Sub -> arith Int64.sub
  | Mul -> arith Int64.mul
  | Div ->
      if b = 0L then raise Division_by_zero
      else
        let q = match s with Signed -> Int64.div a b | Unsigned -> Int64.unsigned_div a b in
        wrap s w q
  | Mod ->
      if b = 0L then raise Division_by_zero
      else
        let r = match s with Signed -> Int64.rem a b | Unsigned -> Int64.unsigned_rem a b in
        wrap s w r
  | Band -> arith Int64.logand
  | Bor -> arith Int64.logor
  | Bxor -> arith Int64.logxor
  | Shl ->
      let amount = Int64.to_int (Int64.logand b 63L) in
      wrap s w (Int64.shift_left a amount)
  | Shr ->
      let amount = Int64.to_int (Int64.logand b 63L) in
      let shifted =
        match s with
        | Signed -> Int64.shift_right a amount
        | Unsigned ->
            (* canonical unsigned values are zero-extended already *)
            Int64.shift_right_logical
              (Int64.logand a (low_mask (bits_of_width w)))
              amount
      in
      wrap s w shifted
  | Lt -> of_bool (compare_v s a b < 0)
  | Le -> of_bool (compare_v s a b <= 0)
  | Gt -> of_bool (compare_v s a b > 0)
  | Ge -> of_bool (compare_v s a b >= 0)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Land -> of_bool (to_bool a && to_bool b)
  | Lor -> of_bool (to_bool a || to_bool b)

let unop op ty a =
  match op with
  | Neg -> wrap_ty ty (Int64.neg a)
  | Bnot -> wrap_ty ty (Int64.lognot a)
  | Lnot -> of_bool (not (to_bool a))

(** Reinterpret canonical value [v] of type [from_ty] as type [to_ty]
    (C cast: truncate or extend the bit pattern). *)
let cast ~from_ty ~to_ty v =
  match (from_ty, to_ty) with
  | _, Tbool -> if v = 0L then 0L else 1L
  | Tbool, Tint (s, w) -> wrap s w v
  | Tint (s_from, w_from), Tint (s, w) ->
      (* First view the source bits zero- or sign-extended per the source
         type (canonical form already does this), then truncate/extend to
         the destination. *)
      ignore s_from;
      ignore w_from;
      wrap s w v
  | _ -> invalid_arg "Value.cast: not a scalar cast"
