(** Fixed-width two's-complement arithmetic.

    A value of type [Tint (s, w)] is represented as an [int64] in
    canonical form: truncated to [w] bits, then sign-extended when [s]
    is [Signed] and zero-extended when [s] is [Unsigned].  Every
    operation re-canonicalizes, so C's wrapping semantics hold at every
    width.  This module is the single definition of scalar semantics
    shared by the software interpreter and the hardware simulator —
    except where a fault is injected (paper, Section 5.1). *)

exception Division_by_zero

(** [wrap s w v] canonicalizes [v] as a value of signedness [s] and
    width [w]. *)
val wrap : Front.Ast.signedness -> Front.Ast.width -> int64 -> int64

(** [wrap_ty ty v] canonicalizes [v] at scalar type [ty].
    @raise Invalid_argument on array or void types. *)
val wrap_ty : Front.Ast.ty -> int64 -> int64

val of_bool : bool -> int64
val to_bool : int64 -> bool

(** Signedness of a scalar type ([Tbool] counts as unsigned). *)
val signedness_of : Front.Ast.ty -> Front.Ast.signedness

val width_of : Front.Ast.ty -> Front.Ast.width

(** [binop op ty a b] evaluates [a op b] where both operands have the
    common type [ty] produced by elaboration.  Comparison and logical
    results are booleans (0/1).
    @raise Division_by_zero on zero divisors of [Div]/[Mod]. *)
val binop : Front.Ast.binop -> Front.Ast.ty -> int64 -> int64 -> int64

val unop : Front.Ast.unop -> Front.Ast.ty -> int64 -> int64

(** [cast ~from_ty ~to_ty v] reinterprets [v] (C cast: truncate or
    extend the bit pattern). *)
val cast : from_ty:Front.Ast.ty -> to_ty:Front.Ast.ty -> int64 -> int64
