lib/ir/ir.pp.ml: Fmt Front List Ppx_deriving_runtime Printf String
