lib/ir/lower.pp.ml: Front Hashtbl Interp Ir List Printf
