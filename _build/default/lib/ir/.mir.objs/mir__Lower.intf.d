lib/ir/lower.pp.mli: Front Ir
