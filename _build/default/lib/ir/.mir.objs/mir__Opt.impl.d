lib/ir/opt.pp.ml: Front Hashtbl Interp Ir List
