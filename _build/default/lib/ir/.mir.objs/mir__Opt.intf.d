lib/ir/opt.pp.mli: Ir
