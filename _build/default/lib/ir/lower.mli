(** Lowering from the typed AST to the structured IR.

    Every source variable gets a dedicated virtual register (a datapath
    register in the FSMD); expression trees allocate temporaries;
    arrays become memories.  Logical [&&]/[||] evaluate eagerly as
    1-bit bitwise operations (hardware evaluates both sides; the
    language's expressions are pure, so only timing differs from C's
    short-circuit).

    Assertions must have been synthesized (or stripped) before lowering:
    an [assert] reaching this pass raises {!Unsupported}. *)

exception Unsupported of string * Front.Loc.t

(** Lower one process.

    [mirrors] implements resource replication (Section 3.2): for each
    [(array, replica)] pair a replica memory is declared next to the
    original — with one extra (hidden) write port — and every store to
    the original is duplicated into it.

    [mem_ports] is the number of block-RAM ports the application's
    accesses compete for (default 1, the Impulse-C-like behaviour behind
    the paper's Tables 3-4). *)
val lower_proc :
  ?mirrors:(string * string) list ->
  ?mem_ports:int ->
  Front.Ast.program ->
  Front.Ast.proc ->
  Ir.proc_ir

(** Lower every hardware process of a program. *)
val lower_program : ?mem_ports:int -> Front.Ast.program -> Ir.program_ir
