(** Classic HLS front-end cleanups on the structured IR: constant
    folding, per-segment copy propagation, and dead-code elimination.
    These run before scheduling so that assertion instrumentation does
    not pay for temporaries the original application would not have. *)

module Value = Interp.Value
open Front.Ast

(* --- Constant folding ---------------------------------------------------- *)

(* Fold instructions whose operands are immediates.  Division keeps its
   trap semantics: a constant zero divisor is left in place so the
   hardware (and simulator) still traps. *)
let fold_inst (i : Ir.inst) : Ir.inst =
  match i with
  | Ir.Bin { dst; op; a = Imm na; b = Imm nb; ty }
    when (op <> Div && op <> Mod) || nb <> 0L ->
      let v = Value.binop op ty na nb in
      let result_ty = if is_comparison op then Tbool else ty in
      Ir.Copy { dst; src = Imm v; ty = result_ty }
  | Ir.Un { dst; op; a = Imm n; ty } ->
      Ir.Copy { dst; src = Imm (Value.unop op ty n); ty }
  | Ir.Castop { dst; src = Imm n; from_ty; to_ty } ->
      Ir.Copy { dst; src = Imm (Value.cast ~from_ty ~to_ty n); ty = to_ty }
  | other -> other

let rec map_body f (body : Ir.body) : Ir.body =
  List.map
    (function
      | Ir.Straight insts -> Ir.Straight (f insts)
      | Ir.If_else r ->
          Ir.If_else
            {
              r with
              cond_insts = f r.cond_insts;
              then_ = map_body f r.then_;
              else_ = map_body f r.else_;
            }
      | Ir.Loop r ->
          Ir.Loop
            {
              r with
              cond_insts = f r.cond_insts;
              body = map_body f r.body;
              step_insts = f r.step_insts;
            })
    body

let const_fold (p : Ir.proc_ir) : Ir.proc_ir =
  let fold_seg insts = List.map (fun g -> { g with Ir.i = fold_inst g.Ir.i }) insts in
  { p with Ir.body = map_body fold_seg p.body }

(* --- Copy propagation (within straight segments) ------------------------- *)

(* Within one segment, after [r = src] every later use of [r] can read
   [src] instead, until either side is redefined.  Registers written by
   guarded instructions are never propagated (the write may not happen). *)
let propagate_segment (insts : Ir.ginst list) : Ir.ginst list =
  let env : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 8 in
  let invalidate r =
    Hashtbl.remove env r;
    (* drop any mapping whose source was r *)
    let stale =
      Hashtbl.fold (fun k v acc -> if v = Ir.Reg r then k :: acc else acc) env []
    in
    List.iter (Hashtbl.remove env) stale
  in
  let subst op = match op with Ir.Reg r -> (try Hashtbl.find env r with Not_found -> op) | Ir.Imm _ -> op in
  let rewrite (i : Ir.inst) : Ir.inst =
    match i with
    | Ir.Bin b -> Ir.Bin { b with a = subst b.a; b = subst b.b }
    | Ir.Un u -> Ir.Un { u with a = subst u.a }
    | Ir.Copy c -> Ir.Copy { c with src = subst c.src }
    | Ir.Castop c -> Ir.Castop { c with src = subst c.src }
    | Ir.Load l -> Ir.Load { l with addr = subst l.addr }
    | Ir.Store s -> Ir.Store { s with addr = subst s.addr; v = subst s.v }
    | Ir.Sread _ -> i
    | Ir.Swrite w -> Ir.Swrite { w with v = subst w.v }
    | Ir.Extcall e -> Ir.Extcall { e with args = List.map subst e.args }
    | Ir.Tap t -> Ir.Tap { t with args = List.map subst t.args }
  in
  List.map
    (fun (g : Ir.ginst) ->
      let i = rewrite g.Ir.i in
      (match Ir.dst_of i with
      | Some d ->
          invalidate d;
          (match (i, g.Ir.guard) with
          | Ir.Copy { dst; src; _ }, None -> Hashtbl.replace env dst src
          | _ -> ())
      | None -> ());
      { g with Ir.i })
    insts

let copy_prop (p : Ir.proc_ir) : Ir.proc_ir =
  { p with Ir.body = map_body propagate_segment p.body }

(* --- Dead code elimination ------------------------------------------------ *)

(* A pure instruction whose destination register is never read anywhere
   in the process (registers are global to the FSMD) is dead.  Iterates
   to a fixpoint. *)
let has_side_effect = function
  | Ir.Store _ | Ir.Swrite _ | Ir.Sread _ | Ir.Tap _ | Ir.Extcall _ -> true
  | Ir.Bin { op = Div; b = Imm 0L; _ } | Ir.Bin { op = Mod; b = Imm 0L; _ } -> true
  | Ir.Bin { op = Div | Mod; b = Reg _; _ } -> true  (* may trap *)
  | Ir.Bin _ | Ir.Un _ | Ir.Copy _ | Ir.Castop _ | Ir.Load _ -> false

let dce (p : Ir.proc_ir) : Ir.proc_ir =
  let live_regs body =
    let live = Hashtbl.create 32 in
    Ir.iter_segments
      (fun insts -> List.iter (fun g -> List.iter (fun r -> Hashtbl.replace live r ()) (Ir.uses_of_g g)) insts)
      body;
    (* loop conditions are always live *)
    let rec conds (b : Ir.body) =
      List.iter
        (function
          | Ir.Straight _ -> ()
          | Ir.If_else { cond; then_; else_; _ } ->
              Hashtbl.replace live cond ();
              conds then_;
              conds else_
          | Ir.Loop { cond; body; _ } ->
              Hashtbl.replace live cond ();
              conds body)
        b
    in
    conds body;
    live
  in
  let sweep live body =
    map_body
      (List.filter (fun (g : Ir.ginst) ->
           has_side_effect g.Ir.i
           ||
           match Ir.dst_of g.Ir.i with
           | Some d -> Hashtbl.mem live d
           | None -> true))
      body
  in
  let rec fix body n =
    if n = 0 then body
    else
      let live = live_regs body in
      let body' = sweep live body in
      if body' = body then body else fix body' (n - 1)
  in
  { p with Ir.body = fix p.body 10 }

(** Standard pass pipeline. *)
let optimize (p : Ir.proc_ir) : Ir.proc_ir = dce (copy_prop (const_fold p))

let optimize_program (p : Ir.program_ir) : Ir.program_ir =
  { p with Ir.procs = List.map optimize p.procs }
