(** Classic HLS front-end cleanups on the structured IR: constant
    folding, per-segment copy propagation, and dead-code elimination.
    They run before scheduling so assertion instrumentation does not pay
    for temporaries the original application would not have.

    Correctness contract: the passes never change observable behaviour
    (stream traffic, memory contents, trap behaviour) — property-tested
    against the cycle-accurate simulator. *)

(** Fold instructions whose operands are immediates (division keeps its
    trap semantics: constant zero divisors are left in place). *)
val fold_inst : Ir.inst -> Ir.inst

val const_fold : Ir.proc_ir -> Ir.proc_ir

(** Propagate copies within straight-line segments. *)
val copy_prop : Ir.proc_ir -> Ir.proc_ir

(** Remove pure instructions whose results are never read. *)
val dce : Ir.proc_ir -> Ir.proc_ir

(** The standard pipeline: [dce (copy_prop (const_fold p))]. *)
val optimize : Ir.proc_ir -> Ir.proc_ir

val optimize_program : Ir.program_ir -> Ir.program_ir
