lib/rtl/area.ml: Device Front Netlist Stdlib
