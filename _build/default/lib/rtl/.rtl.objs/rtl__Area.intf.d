lib/rtl/area.mli: Netlist
