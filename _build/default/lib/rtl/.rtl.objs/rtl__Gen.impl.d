lib/rtl/gen.ml: Array Device Front Hls List Mir Netlist
