lib/rtl/gen.mli: Front Hls Netlist
