lib/rtl/netlist.ml: Front List
