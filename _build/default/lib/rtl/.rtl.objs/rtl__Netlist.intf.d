lib/rtl/netlist.mli: Front
