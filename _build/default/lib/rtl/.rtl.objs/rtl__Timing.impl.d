lib/rtl/timing.ml: Area Device Hashtbl
