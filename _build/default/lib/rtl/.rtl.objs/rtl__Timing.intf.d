lib/rtl/timing.mli: Area
