lib/rtl/vhdl.ml: Array Buffer Front Hls List Mir Printf String
