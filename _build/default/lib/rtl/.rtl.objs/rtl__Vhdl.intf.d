lib/rtl/vhdl.mli: Buffer Front Hls
