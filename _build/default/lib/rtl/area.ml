(** Area estimation: map the structural netlist onto EP2S180 resources.

    The output columns are the ones in the paper's Tables 1 and 2:
    logic (ALMs expressed as "logic used"), combinational ALUTs,
    dedicated registers, block-RAM bits, and block interconnect. *)

module Stratix = Device.Stratix
open Front.Ast

type usage = {
  logic : int;          (** "Logic Used" (ALUT/register pairing) *)
  aluts : int;          (** combinational ALUTs *)
  registers : int;
  ram_bits : int;
  interconnect : int;
  dsps : int;
  m4k_blocks : int;
  streams : int;        (** stream FIFOs in the design (for timing) *)
}

let zero =
  { logic = 0; aluts = 0; registers = 0; ram_bits = 0; interconnect = 0; dsps = 0;
    m4k_blocks = 0; streams = 0 }

(* Representative scalar type for the width, to index the device tables. *)
let ty_of_width w : ty =
  let width =
    if w <= 1 then W1 else if w <= 8 then W8 else if w <= 16 then W16
    else if w <= 32 then W32 else W64
  in
  if w <= 1 then Tbool else Tint (Signed, width)

let of_prim (p : Netlist.prim) =
  match p with
  | Netlist.Fu { fu_op; fu_width; fu_count } ->
      let ty = ty_of_width fu_width in
      let aluts, dsps =
        match fu_op with
        | `Bin op -> (Stratix.binop_aluts op ty, Stratix.binop_dsps op ty)
        | `Un op -> (Stratix.unop_aluts op ty, 0)
      in
      { zero with aluts = aluts * fu_count; dsps = dsps * fu_count }
  | Netlist.Regbank { width; count; _ } -> { zero with registers = width * count }
  | Netlist.Mux { width; ways; count } ->
      { zero with aluts = Stratix.mux2_aluts width * ways * count }
  | Netlist.Fsm { states; transitions } ->
      (* one-hot state register + next-state decode *)
      { zero with registers = states; aluts = transitions }
  | Netlist.Bram { width; depth; ports; _ } ->
      let bits = Stratix.mem_ram_bits ~width ~length:depth in
      {
        zero with
        ram_bits = bits;
        m4k_blocks = Stratix.m4k_blocks_of_bits bits;
        aluts = 3 * ports;      (* address/write-enable steering *)
        registers = 2 * ports;  (* registered address/data *)
      }
  | Netlist.Fifo { width; depth; _ } ->
      let bits = Stratix.stream_ram_bits ~width ~depth in
      {
        zero with
        ram_bits = bits;
        m4k_blocks = Stratix.m4k_blocks_of_bits bits;
        aluts = Stratix.stream_ctrl_aluts;
        registers = Stratix.stream_ctrl_registers;
        streams = 1;
      }
  | Netlist.Pipe_ctrl { ii; depth } ->
      { zero with aluts = 6 + (2 * depth) + ii; registers = 4 + depth }

let add a b =
  {
    logic = a.logic + b.logic;
    aluts = a.aluts + b.aluts;
    registers = a.registers + b.registers;
    ram_bits = a.ram_bits + b.ram_bits;
    interconnect = a.interconnect + b.interconnect;
    dsps = a.dsps + b.dsps;
    m4k_blocks = a.m4k_blocks + b.m4k_blocks;
    streams = a.streams + b.streams;
  }

(** Estimate the whole design.  Interconnect and "logic used" are
    derived from the raw counts with empirical Stratix-II factors
    (see DESIGN.md). *)
let of_design (d : Netlist.t) : usage =
  let raw = Netlist.fold (fun acc p -> add acc (of_prim p)) zero d in
  let interconnect =
    int_of_float
      ((Stratix.interconnect_per_alut *. float_of_int raw.aluts)
      +. (Stratix.interconnect_per_register *. float_of_int raw.registers)
      +. (Stratix.interconnect_per_stream *. float_of_int raw.streams)
      +. (Stratix.interconnect_per_m4k *. float_of_int raw.m4k_blocks))
  in
  let logic =
    (* ALUT/register pairing into ALMs: unpaired majority + partial pairs *)
    let hi = Stdlib.max raw.aluts raw.registers
    and lo = Stdlib.min raw.aluts raw.registers in
    hi + int_of_float (0.45 *. float_of_int lo)
  in
  { raw with interconnect; logic }

(** Percentage of the EP2S180 consumed, for the paper-style columns. *)
let pct_of_device (u : usage) =
  let c = Stratix.ep2s180 in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  [
    ("Logic", pct u.logic c.Stratix.aluts);
    ("ALUT", pct u.aluts c.Stratix.aluts);
    ("Registers", pct u.registers c.Stratix.registers);
    ("RAM bits", pct u.ram_bits c.Stratix.bram_bits);
    ("Interconnect", pct u.interconnect c.Stratix.interconnect);
  ]
