(** Area estimation: map the structural netlist onto EP2S180 resources.

    The output columns are the ones in the paper's Tables 1 and 2:
    logic (ALUT/register pairing), combinational ALUTs, dedicated
    registers, block-RAM bits, and block interconnect. *)

type usage = {
  logic : int;          (** "Logic Used" (ALM pairing estimate) *)
  aluts : int;          (** combinational ALUTs *)
  registers : int;
  ram_bits : int;
  interconnect : int;
  dsps : int;
  m4k_blocks : int;
  streams : int;        (** stream FIFOs in the design (drives timing) *)
}

val zero : usage

(** Resources of one primitive. *)
val of_prim : Netlist.prim -> usage

val add : usage -> usage -> usage

(** Estimate a whole design; interconnect and logic pairing are derived
    with empirical Stratix-II factors (see DESIGN.md). *)
val of_design : Netlist.t -> usage

(** Paper-style percentage columns against the EP2S180 capacities. *)
val pct_of_device : usage -> (string * float) list
