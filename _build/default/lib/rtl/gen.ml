(** Netlist generation: lower an FSMD (plus its binding) to structural
    primitives.  One module per hardware process; stream FIFOs are
    program-level and added by the driver via {!design}. *)

module Ir = Mir.Ir
module Stratix = Device.Stratix
open Front.Ast

let bits_of_ty = function
  | Tint (_, w) -> bits_of_width w
  | Tbool -> 1
  | Tarray (Tint (_, w), _) -> bits_of_width w
  | Tarray _ | Tvoid -> 32

(* Architectural + pipeline staging registers of an FSMD. *)
let register_prims (f : Hls.Fsmd.t) : Netlist.prim list =
  let arch_bits =
    List.fold_left (fun acc (_, info) -> acc + bits_of_ty info.Ir.rty) 0 f.Hls.Fsmd.proc.Ir.regs
  in
  let arch =
    Netlist.Regbank { width = 1; count = arch_bits; purpose = "datapath" }
  in
  (* each value produced inside a pipelined loop gets one stage register *)
  let pipe_bits =
    Array.fold_left
      (fun acc (p : Hls.Fsmd.pipe) ->
        Array.fold_left
          (fun acc ops ->
            List.fold_left
              (fun acc (g : Ir.ginst) ->
                match Ir.dst_of g.Ir.i with
                | Some r -> acc + bits_of_ty (Ir.reg_type f.Hls.Fsmd.proc r)
                | None -> acc)
              acc ops)
          acc p.Hls.Fsmd.cycle_ops)
      0 f.Hls.Fsmd.pipes
  in
  if pipe_bits = 0 then [ arch ]
  else [ arch; Netlist.Regbank { width = 1; count = pipe_bits; purpose = "pipeline" } ]

let fu_prims (binding : Hls.Binding.t) : Netlist.prim list =
  List.concat_map
    (fun (u : Hls.Binding.fu_usage) ->
      let fu_op, width =
        match u.Hls.Binding.cls with
        | Hls.Binding.Fbin (op, w) -> (`Bin op, bits_of_width w)
        | Hls.Binding.Fun_ (op, w) -> (`Un op, bits_of_width w)
      in
      let fu = Netlist.Fu { fu_op; fu_width = width; fu_count = u.Hls.Binding.units } in
      if u.Hls.Binding.mux_ways = 0 then [ fu ]
      else [ fu; Netlist.Mux { width; ways = u.Hls.Binding.mux_ways; count = 1 } ])
    binding.Hls.Binding.fus

let fsm_prim (f : Hls.Fsmd.t) : Netlist.prim =
  let states = Array.length f.Hls.Fsmd.states in
  let transitions =
    Array.fold_left
      (fun acc (s : Hls.Fsmd.state) ->
        acc + match s.Hls.Fsmd.next with Hls.Fsmd.Branch _ -> 2 | _ -> 1)
      0 f.Hls.Fsmd.states
  in
  Netlist.Fsm { states; transitions }

let bram_prims (f : Hls.Fsmd.t) : Netlist.prim list =
  List.map
    (fun (m : Ir.mem) ->
      Netlist.Bram
        {
          width = bits_of_ty m.Ir.elem;
          depth = m.Ir.length;
          ports = m.Ir.ports;
          name = m.Ir.mname;
        })
    f.Hls.Fsmd.proc.Ir.mems

let pipe_prims (f : Hls.Fsmd.t) : Netlist.prim list =
  Array.to_list
    (Array.map
       (fun (p : Hls.Fsmd.pipe) -> Netlist.Pipe_ctrl { ii = p.Hls.Fsmd.ii; depth = p.Hls.Fsmd.depth })
       f.Hls.Fsmd.pipes)

(** Lower one process FSMD to a netlist module. *)
let of_fsmd ?(policy = `Shared) (f : Hls.Fsmd.t) : Netlist.module_ =
  let binding = Hls.Binding.bind ~policy f in
  {
    Netlist.mod_name = f.Hls.Fsmd.proc.Ir.name;
    prims =
      fu_prims binding @ register_prims f @ [ fsm_prim f ] @ bram_prims f @ pipe_prims f;
  }

(** A stream FIFO primitive for one stream declaration. *)
let fifo_of_stream (s : stream_decl) : Netlist.prim =
  Netlist.Fifo { width = bits_of_ty s.elem; depth = s.depth; name = s.sname }

(** Assemble the whole design: process modules + the stream FIFOs. *)
let design ?(policy = `Shared) ~top_name (fsmds : Hls.Fsmd.t list)
    (streams : stream_decl list) ?(extra_modules : Netlist.module_ list = []) () :
    Netlist.t =
  {
    Netlist.top_name;
    modules = List.map (fun f -> of_fsmd ~policy f) fsmds @ extra_modules;
    fifos = List.map fifo_of_stream streams;
  }
