(** Netlist generation: lower an FSMD (with its functional-unit binding)
    to structural primitives.  One module per hardware process; stream
    FIFOs are program-level. *)

(** Lower one process FSMD. *)
val of_fsmd : ?policy:Hls.Binding.policy -> Hls.Fsmd.t -> Netlist.module_

(** The FIFO primitive for one stream declaration. *)
val fifo_of_stream : Front.Ast.stream_decl -> Netlist.prim

(** Assemble a whole design: process modules, extra modules (assertion
    checkers, collectors), and the stream FIFOs. *)
val design :
  ?policy:Hls.Binding.policy ->
  top_name:string ->
  Hls.Fsmd.t list ->
  Front.Ast.stream_decl list ->
  ?extra_modules:Netlist.module_ list ->
  unit ->
  Netlist.t
