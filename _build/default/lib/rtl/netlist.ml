(** Structural register-transfer netlist.

    The netlist is the contract between high-level synthesis and the
    device model: {!Gen} lowers an FSMD into these primitives, and
    {!Device}'s area/timing estimators count them.  It is deliberately
    coarse (one primitive per functional unit, register bank, RAM, FIFO,
    FSM) — the granularity Quartus' fitter report aggregates to in the
    paper's Tables 1 and 2. *)

open Front.Ast

type fu_prim = {
  fu_op : [ `Bin of binop | `Un of unop ];
  fu_width : int;
  fu_count : int;       (** identical units instantiated *)
}

type prim =
  | Fu of fu_prim
  | Regbank of { width : int; count : int; purpose : string }
  | Mux of { width : int; ways : int; count : int }
  | Fsm of { states : int; transitions : int }
  | Bram of { width : int; depth : int; ports : int; name : string }
  | Fifo of { width : int; depth : int; name : string }
  | Pipe_ctrl of { ii : int; depth : int }
      (** issue counter, stage-valid chain, stall logic of one pipelined loop *)

type module_ = {
  mod_name : string;
  prims : prim list;
}

type t = {
  top_name : string;
  modules : module_ list;   (** one per hardware process (+ checkers) *)
  fifos : prim list;        (** program-level stream FIFOs *)
}

let count_prims (m : module_) = List.length m.prims

(** Fold over every primitive in the design, FIFOs included. *)
let fold f acc (d : t) =
  let acc = List.fold_left (fun acc m -> List.fold_left f acc m.prims) acc d.modules in
  List.fold_left f acc d.fifos
