(** Maximum clock frequency estimation.

    The achieved period is the worst combinational chain the scheduler
    produced, plus register overhead, plus a routing term that grows
    with interconnect utilization and — dominantly, for the paper's
    scalability study (Figure 4) — with the number of stream FIFOs
    competing for M4K columns and global routing.  A small deterministic
    jitter models place-and-route variance: the paper observes
    non-monotone fmax below 32 processes.

    Model (ns):
      period = max_chain + t_reg
             + route_base
             + a * streams + b * streams^2
             + c * interconnect_utilization^2
      fmax = 1000 / period * (1 + jitter),   jitter in [-2%, +2%]. *)

module Stratix = Device.Stratix

let route_base_ns = 1.6
let stream_linear_ns = 0.003
let stream_quadratic_ns = 0.00002
let congestion_ns = 6.0

(* Deterministic pseudo-jitter from a design fingerprint. *)
let jitter ~seed =
  let h = Hashtbl.hash seed in
  let unit = float_of_int (h mod 1000) /. 1000.0 in
  (unit -. 0.5) *. 0.04

type estimate = {
  fmax_mhz : float;
  period_ns : float;
  logic_ns : float;
  route_ns : float;
}

(** Estimate fmax for a design with worst chain [max_chain_ns] and area
    [usage].  [name] seeds the place-and-route jitter. *)
let estimate ~name ~(max_chain_ns : float) (usage : Area.usage) : estimate =
  let streams = float_of_int usage.Area.streams in
  let util =
    float_of_int usage.Area.interconnect
    /. float_of_int Stratix.ep2s180.Stratix.interconnect
  in
  let route_ns =
    route_base_ns
    +. (stream_linear_ns *. streams)
    +. (stream_quadratic_ns *. streams *. streams)
    +. (congestion_ns *. util *. util)
  in
  let logic_ns = max_chain_ns +. Stratix.register_overhead_ns in
  let period_ns = logic_ns +. route_ns in
  let j = jitter ~seed:(name, usage.Area.aluts, usage.Area.registers) in
  let fmax_mhz = 1000.0 /. period_ns *. (1.0 +. j) in
  { fmax_mhz; period_ns; logic_ns; route_ns }
