(** Maximum clock frequency estimation.

    The achieved period is the worst combinational chain the scheduler
    produced, plus register overhead, plus a routing term that grows
    with interconnect utilization and — dominantly, for the paper's
    Figure 4 — with the number of stream FIFOs competing for M4K columns
    and global routing.  A deterministic hash-seeded jitter of up to
    ±2% models place-and-route variance (the paper's fmax is
    non-monotone below 32 processes). *)

val route_base_ns : float
val stream_linear_ns : float
val stream_quadratic_ns : float
val congestion_ns : float

type estimate = {
  fmax_mhz : float;
  period_ns : float;
  logic_ns : float;   (** worst chain + register overhead *)
  route_ns : float;   (** routing model contribution *)
}

(** [estimate ~name ~max_chain_ns usage]: [name] seeds the jitter, so
    equal designs get equal estimates. *)
val estimate : name:string -> max_chain_ns:float -> Area.usage -> estimate
