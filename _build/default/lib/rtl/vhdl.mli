(** VHDL emission: a readable, synthesizable-style rendering of each
    process FSMD — entity with clock/reset and stream handshake ports, a
    state machine with one [when] arm per FSMD state, registered
    datapath assignments, and tap latch-enables for assertion checkers.
    This is the artifact a developer would hand to Quartus. *)

(** Emit one process. *)
val emit_fsmd : Buffer.t -> Hls.Fsmd.t -> unit

(** Emit the whole design (stream FIFO summaries + one entity per
    process) as a single VHDL string. *)
val emit_design : Hls.Fsmd.t list -> Front.Ast.stream_decl list -> string
