lib/sim/bram.ml: Array Int64 List
