lib/sim/bram.mli:
