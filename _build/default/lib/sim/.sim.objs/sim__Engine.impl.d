lib/sim/engine.ml: Array Bram Fifo Front Hashtbl Hls Int64 Interp List Mir Option Printf Stdlib Trace
