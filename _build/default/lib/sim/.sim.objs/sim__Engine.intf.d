lib/sim/engine.mli: Front Hls Mir
