lib/sim/fifo.ml: List Printf Queue
