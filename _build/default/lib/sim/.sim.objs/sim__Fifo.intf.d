lib/sim/fifo.mli: Queue
