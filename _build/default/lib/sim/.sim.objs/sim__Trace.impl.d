lib/sim/trace.ml: Buffer Bytes Char Int64 List Printf String
