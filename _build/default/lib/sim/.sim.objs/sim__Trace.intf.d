lib/sim/trace.mli:
