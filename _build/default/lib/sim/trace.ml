(** Waveform capture — the embedded-logic-analyzer view.

    The paper positions in-circuit assertions against vendor logic
    analyzers (Xilinx ChipScope, Altera SignalTap): those capture raw
    HDL signal values, which are not at the source level.  This module
    provides that baseline: it samples every process's FSM state and
    every source-named register each cycle and renders a standard VCD
    file, so a reproduction user can *see* exactly what a logic analyzer
    would show them — and how much further the source-level assertion
    messages go.

    Change-compressed: a value is emitted only on the cycle it changes. *)

type signal = {
  sname : string;
  width : int;
  code : string;          (** VCD identifier code *)
  mutable last : int64 option;
}

type t = {
  mutable signals : signal list;  (** declaration order *)
  body : Buffer.t;
  mutable current_cycle : int;
  mutable header_written : bool;
  mutable samples : int;
}

let create () =
  { signals = []; body = Buffer.create 4096; current_cycle = -1; header_written = false;
    samples = 0 }

(* VCD identifier codes: printable ASCII 33..126, little-endian digits. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = acc ^ String.make 1 c in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

(** Declare a signal; call for every signal before the first sample. *)
let declare t ~name ~width =
  let code = code_of_index (List.length t.signals) in
  let s = { sname = name; width; code; last = None } in
  t.signals <- t.signals @ [ s ];
  s

let binary_of_value width (v : int64) =
  if width = 1 then (if Int64.logand v 1L = 0L then "0" else "1")
  else begin
    let b = Bytes.create width in
    for i = 0 to width - 1 do
      let bit = Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L in
      Bytes.set b i (if bit = 0L then '0' else '1')
    done;
    Bytes.to_string b
  end

let emit_value t (s : signal) v =
  if s.width = 1 then Buffer.add_string t.body (binary_of_value 1 v ^ s.code ^ "\n")
  else Buffer.add_string t.body ("b" ^ binary_of_value s.width v ^ " " ^ s.code ^ "\n")

(** Record [v] on [s] at [cycle]; only changes are written. *)
let sample t (s : signal) ~cycle (v : int64) =
  if s.last <> Some v then begin
    if cycle <> t.current_cycle then begin
      Buffer.add_string t.body (Printf.sprintf "#%d\n" cycle);
      t.current_cycle <- cycle
    end;
    emit_value t s v;
    s.last <- Some v;
    t.samples <- t.samples + 1
  end

(** Render the complete VCD file. *)
let to_vcd ?(timescale = "1 ns") t =
  let header = Buffer.create 1024 in
  Buffer.add_string header "$date inca cycle-accurate simulation $end\n";
  Buffer.add_string header "$version inca 1.0 $end\n";
  Buffer.add_string header (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string header "$scope module design $end\n";
  List.iter
    (fun s ->
      Buffer.add_string header
        (Printf.sprintf "$var wire %d %s %s $end\n" s.width s.code s.sname))
    t.signals;
  Buffer.add_string header "$upscope $end\n$enddefinitions $end\n";
  Buffer.contents header ^ Buffer.contents t.body

let num_signals t = List.length t.signals
let num_samples t = t.samples
