(** Waveform capture — the embedded-logic-analyzer (SignalTap/ChipScope)
    view of a simulation, rendered as a standard change-compressed VCD
    file.  The paper positions in-circuit assertions against exactly
    these tools: they show raw signals, not source-level messages. *)

type signal

type t

val create : unit -> t

(** Declare a signal; all declarations must precede the first sample. *)
val declare : t -> name:string -> width:int -> signal

(** Record a value at a cycle; only changes are stored. *)
val sample : t -> signal -> cycle:int -> int64 -> unit

(** Render the complete VCD file (header + events). *)
val to_vcd : ?timescale:string -> t -> string

val num_signals : t -> int

(** Number of change events recorded. *)
val num_samples : t -> int
