test/test_apps.ml: Alcotest Apps Array Core Device Float Fmt Front Int64 Interp Lazy List QCheck QCheck_alcotest Rtl Sim String Typecheck
