test/test_core.ml: Alcotest Apps Ast Core Device Faults Front Hls Int64 Interp List Loc Mir Pretty Printf QCheck QCheck_alcotest Rtl Sim String Typecheck
