test/test_front.ml: Alcotest Ast Front Int64 Lexer List Loc Option Parser Pretty Printf QCheck QCheck_alcotest String Typecheck
