test/test_hls.ml: Alcotest Array Ast Device Front Hls List Mir Printf QCheck QCheck_alcotest Stdlib String Typecheck
