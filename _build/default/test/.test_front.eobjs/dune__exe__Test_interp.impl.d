test/test_interp.ml: Alcotest Ast Fmt Front Int32 Int64 Interp List Loc Printf QCheck QCheck_alcotest String Typecheck
