test/test_mir.ml: Alcotest Ast Core Faults Front Hls List Mir Printf QCheck QCheck_alcotest Sim String Typecheck
