test/test_rtl.ml: Alcotest Ast Core Device Float Front Hls Int64 List Mir Printf Rtl String Typecheck
