test/test_scalability.ml: Alcotest Apps Core Float Front Lazy List Rtl Sim Typecheck
