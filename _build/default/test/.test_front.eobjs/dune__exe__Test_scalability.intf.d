test/test_scalability.mli:
