test/test_sim.ml: Alcotest Core Front Int64 Interp List Mir Printf QCheck QCheck_alcotest Sim String Typecheck
