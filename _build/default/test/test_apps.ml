(* Application tests: DES/3DES reference and generated hardware, edge
   detection, the loopback chain — software simulation, cycle-accurate
   circuit, and the OCaml oracles must all agree. *)

open Front
module Des = Apps.Des_ref
module Engine = Sim.Engine
module Driver = Core.Driver

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let ti64 = Alcotest.testable (fun ppf v -> Fmt.pf ppf "%Lx" v) Int64.equal

let elab = Typecheck.parse_and_check

(* --- DES reference ------------------------------------------------------------ *)

let test_des_known_vector () =
  (* the classic textbook vector *)
  check ti64 "encrypt" 0x85E813540F0AB405L (Des.encrypt 0x133457799BBCDFF1L 0x0123456789ABCDEFL);
  check ti64 "decrypt" 0x0123456789ABCDEFL (Des.decrypt 0x133457799BBCDFF1L 0x85E813540F0AB405L)

let test_des_weak_key_palindrome () =
  (* with an all-zero key, double encryption is identity (weak key) *)
  let k = 0L in
  let p = 0xDEADBEEF01234567L in
  check ti64 "weak key" p (Des.encrypt k (Des.encrypt k p))

let des_roundtrip =
  QCheck.Test.make ~count:100 ~name:"DES decrypt inverts encrypt"
    QCheck.(pair int64 int64)
    (fun (key, block) -> Des.decrypt key (Des.encrypt key block) = block)

let des_packed_equivalence =
  QCheck.Test.make ~count:100 ~name:"packed/delta-swap DES equals table DES"
    QCheck.(pair int64 int64)
    (fun (key, block) ->
      let table = Des.des_block (Des.encrypt_subkeys key) block in
      let packed = Des.des_block_packed (Des.pack_subkeys (Des.encrypt_subkeys key)) block in
      table = packed)

let ip_twiddle_equiv =
  QCheck.Test.make ~count:200 ~name:"delta-swap IP equals table IP"
    QCheck.int64
    (fun block ->
      let table = Des.permute_64 Des.ip 64 block in
      let tl = Int64.to_int (Int64.shift_right_logical table 32) land 0xFFFFFFFF in
      let tr = Int64.to_int (Int64.logand table 0xFFFFFFFFL) in
      Des.ip_twiddle block = (tl, tr))

let fp_inverts_ip =
  QCheck.Test.make ~count:200 ~name:"FP twiddle inverts IP twiddle"
    QCheck.int64
    (fun block -> Des.fp_twiddle (Des.ip_twiddle block) = block)

let test_field_map_derived () =
  match Des.field_map with
  | Some fm -> check tint "eight groups mapped" 8 (Array.length fm)
  | None -> Alcotest.fail "field map underivable"

let des3_roundtrip =
  QCheck.Test.make ~count:50 ~name:"3DES EDE decrypt inverts encrypt"
    QCheck.(pair int64 int64)
    (fun (k, block) ->
      let k1 = k and k2 = Int64.add k 7L and k3 = Int64.mul k 31L in
      Des.decrypt3 ~k1 ~k2 ~k3 (Des.encrypt3 ~k1 ~k2 ~k3 block) = block)

let des3_packed_equivalence =
  QCheck.Test.make ~count:50 ~name:"packed 3DES equals table 3DES"
    QCheck.(pair int64 int64)
    (fun (k, cipher) ->
      let k1 = k and k2 = Int64.add k 99L and k3 = Int64.logxor k 0x5555AAAAL in
      Des.decrypt3_packed ~k1 ~k2 ~k3 cipher = Des.decrypt3 ~k1 ~k2 ~k3 cipher)

let test_block_string_roundtrip () =
  let s = "OCamlHLS" in
  check tbool "roundtrip" true (Des.string_of_block (Des.block_of_string s) = s)

(* --- Generated 3DES program ------------------------------------------------------ *)

let des_program = lazy (elab ~file:"des3.c" (Apps.Des_src.demo_source ()))

let run_des_circuit ?(strategy = Driver.parallelized) text =
  let cipher = Apps.Des_src.demo_ciphertext text in
  let c = Driver.compile ~strategy (Lazy.force des_program) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("cipher_in", cipher) ];
          drains = [ "plain_out" ];
          params = [ ("des3", [ ("nblocks", Int64.of_int (List.length cipher)) ]) ];
        }
      c
  in
  r

let test_des_circuit_decrypts () =
  let text = "hardware assertions in DES" in
  let r = run_des_circuit text in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  let blocks = List.assoc "plain_out" r.Driver.engine.Engine.drained in
  check tbool "oracle blocks" true (blocks = Apps.Des_src.demo_plaintext_blocks text)

let test_des_interp_matches_circuit () =
  let text = "interp vs circuit agree" in
  let cipher = Apps.Des_src.demo_ciphertext text in
  let prog = Lazy.force des_program in
  let sw =
    Interp.run
      ~cfg:
        {
          Interp.default_config with
          Interp.feeds = [ ("cipher_in", cipher) ];
          drains = [ "plain_out" ];
          params = [ ("des3", [ ("nblocks", Int64.of_int (List.length cipher)) ]) ];
        }
      prog
  in
  check tbool "software simulation completes" true (sw.Interp.outcome = Interp.Completed);
  let r = run_des_circuit text in
  check tbool "same blocks" true
    (sw.Interp.drained = r.Driver.engine.Engine.drained)

let test_des_ascii_assertions_catch_corruption () =
  let text = "plaintext that is pure ASCII" in
  let cipher = Apps.Des_src.demo_ciphertext text in
  let corrupted = List.mapi (fun i b -> if i = 0 then Int64.lognot b else b) cipher in
  let c = Driver.compile ~strategy:Driver.parallelized (Lazy.force des_program) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("cipher_in", corrupted) ];
          drains = [ "plain_out" ];
          params = [ ("des3", [ ("nblocks", Int64.of_int (List.length corrupted)) ]) ];
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted _ -> ()
  | _ -> Alcotest.fail "garbage plaintext must trip the ASCII assertions"

let des_circuit_random_text =
  QCheck.Test.make ~count:5 ~name:"3DES circuit decrypts random printable text"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 8 24) QCheck.Gen.printable)
    (fun text ->
      (* printable strings keep the ASCII assertions quiet *)
      let text = String.map (fun c -> if c = '\n' then ' ' else c) text in
      let r = run_des_circuit text in
      r.Driver.engine.Engine.outcome = Engine.Finished
      && List.assoc "plain_out" r.Driver.engine.Engine.drained
         = Apps.Des_src.demo_plaintext_blocks text)

let test_des_table1_overheads_small () =
  let prog = Lazy.force des_program in
  let orig = Driver.compile ~strategy:Driver.baseline prog in
  let opt = Driver.compile ~strategy:Driver.parallelized prog in
  let cap = Device.Stratix.ep2s180 in
  let alut_pct =
    100.0
    *. float_of_int (opt.Driver.area.Rtl.Area.aluts - orig.Driver.area.Rtl.Area.aluts)
    /. float_of_int cap.Device.Stratix.aluts
  in
  check tbool "ALUT overhead below 0.5%" true (alut_pct < 0.5 && alut_pct > 0.0);
  check tint "one failure stream = 576 RAM bits" 576
    (opt.Driver.area.Rtl.Area.ram_bits - orig.Driver.area.Rtl.Area.ram_bits);
  let df =
    (opt.Driver.timing.Rtl.Timing.fmax_mhz -. orig.Driver.timing.Rtl.Timing.fmax_mhz)
    /. orig.Driver.timing.Rtl.Timing.fmax_mhz
  in
  check tbool "fmax within 5%" true (Float.abs df < 0.05)

(* --- Edge detection ------------------------------------------------------------------ *)

let test_edge_reference_properties () =
  let w = 16 and h = 12 in
  let flat = Array.make (w * h) 777 in
  let out = Apps.Edge_ref.filter ~w ~h flat in
  (* a constant image has zero response everywhere *)
  check tbool "flat image -> zeros" true (Array.for_all (fun v -> v = 0) out)

let test_edge_linear_gradient_zero () =
  let w = 16 and h = 12 in
  let grad = Array.init (w * h) (fun i -> (i mod w * 3) + (i / w * 5)) in
  let out = Apps.Edge_ref.filter ~w ~h grad in
  check tbool "linear gradient -> zeros" true (Array.for_all (fun v -> v = 0) out)

let edge_program = lazy (elab ~file:"edge.c" (Apps.Edge_src.demo_source ()))

let run_edge strategy img ~w:_ ~h =
  let c = Driver.compile ~strategy (Lazy.force edge_program) in
  Driver.simulate
    ~options:
      {
        Driver.default_sim_options with
        Driver.feeds = [ ("pixels_in", Apps.Edge_ref.to_stream img) ];
        drains = [ "pixels_out" ];
        params =
          [ ("edge", [ ("width", Int64.of_int Apps.Edge_src.default_width);
                       ("height", Int64.of_int h) ]) ];
      }
    c

let test_edge_circuit_matches_reference () =
  let w = Apps.Edge_src.default_width and h = 12 in
  let img = Apps.Edge_ref.test_image ~w ~h in
  let expected = Array.to_list (Array.map Int64.of_int (Apps.Edge_ref.filter ~w ~h img)) in
  let r = run_edge Driver.parallelized img ~w ~h in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "pixels match oracle" true
    (List.assoc "pixels_out" r.Driver.engine.Engine.drained = expected)

let test_edge_geometry_assertion () =
  let w = Apps.Edge_src.default_width and h = 12 in
  let img = Apps.Edge_ref.test_image ~w ~h in
  let c = Driver.compile ~strategy:Driver.parallelized (Lazy.force edge_program) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("pixels_in", Apps.Edge_ref.to_stream img) ];
          drains = [ "pixels_out" ];
          params = [ ("edge", [ ("width", 99L); ("height", Int64.of_int h) ]) ];
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted _ ->
      check tbool "message names the geometry check" true
        (List.exists
           (fun m ->
             let has sub s =
               let n = String.length sub and l = String.length s in
               let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
               go 0
             in
             has "width ==" m)
           r.Driver.messages)
  | _ -> Alcotest.fail "geometry mismatch must abort"

let test_edge_pipelined () =
  let w = Apps.Edge_src.default_width and h = 10 in
  let img = Apps.Edge_ref.test_image ~w ~h in
  let r = run_edge Driver.baseline img ~w ~h in
  let active =
    List.filter (fun (p : Engine.pipe_stats) -> p.Engine.issues > 0) r.Driver.engine.Engine.pipes
  in
  check tbool "inner loop pipelined" true (active <> []);
  List.iter
    (fun (p : Engine.pipe_stats) -> check tint "line-buffer bound II" 2 p.Engine.ii_static)
    active

(* --- DCT ----------------------------------------------------------------------------- *)

let dct_program = lazy (elab ~file:"dct.c" (Apps.Dct_src.source ()))

let run_dct ?(strategy = Driver.parallelized) samples =
  let c = Driver.compile ~strategy (Lazy.force dct_program) in
  Driver.simulate
    ~options:
      {
        Driver.default_sim_options with
        Driver.feeds = [ ("dct_in", samples) ];
        drains = [ "dct_out" ];
        params =
          [ ("dct", [ ("nblocks", Int64.of_int (List.length samples / Apps.Dct_ref.points)) ]) ];
      }
    c

let test_dct_circuit_matches_reference () =
  let blocks = 6 in
  let samples = Apps.Dct_ref.test_blocks blocks in
  let expected =
    Array.to_list (Array.map Int64.of_int (Apps.Dct_ref.transform_stream samples))
  in
  let r = run_dct (Apps.Dct_ref.to_stream samples) in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "coefficients match oracle" true
    (List.assoc "dct_out" r.Driver.engine.Engine.drained = expected)

let test_dct_dc_component () =
  (* a constant block concentrates all energy in coefficient 0 *)
  let block = Array.make 8 1000 in
  let out = Apps.Dct_ref.transform block in
  check tbool "DC dominant" true (abs out.(0) > 2000);
  check tbool "ACs near zero" true
    (Array.for_all (fun v -> abs v <= 2) (Array.sub out 1 7))

let test_dct_bound_assertion_fires () =
  (* out-of-range inputs overflow the accumulator bound *)
  let samples = List.init 8 (fun _ -> 2_000_000L) in
  let r = run_dct samples in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted _ -> ()
  | _ -> Alcotest.fail "bound assertion should fire"

let dct_linear_prop =
  QCheck.Test.make ~count:60 ~name:"reference DCT is linear"
    QCheck.(pair (array_of_size (QCheck.Gen.pure 8) (int_range (-1000) 1000)) (int_range 1 4))
    (fun (block, s) ->
      let scaled = Array.map (fun v -> v * s) block in
      let y1 = Apps.Dct_ref.transform block in
      let ys = Apps.Dct_ref.transform scaled in
      (* integer truncation allows +-s of slack per coefficient *)
      Array.for_all2 (fun a b -> abs ((a * s) - b) <= s + 1) y1 ys)

(* --- Loopback ---------------------------------------------------------------------------- *)

let test_loopback_dataflow () =
  let n = 4 and count = 12 in
  let prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n ()) in
  let c = Driver.compile ~strategy:{ Driver.optimized with Driver.share = `Shared 32 } prog in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("feed_in", Apps.Loopback_src.feed ~count) ];
          drains = [ "loop_out" ];
          params = Apps.Loopback_src.params ~n ~count;
        }
      c
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "values loop through unchanged" true
    (List.assoc "loop_out" r.Driver.engine.Engine.drained = Apps.Loopback_src.feed ~count)

let test_loopback_shared_failure_identified () =
  (* with 2 stages sharing one channel, a failure in stage 1 decodes to
     the right assertion *)
  let n = 2 and count = 3 in
  let prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n ()) in
  let c = Driver.compile ~strategy:{ Driver.optimized with Driver.share = `Shared 32 } prog in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("feed_in", [ 5L; 0L; 7L ]) ];
          drains = [ "loop_out" ];
          params = Apps.Loopback_src.params ~n ~count;
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted msg ->
      let has sub s =
        let m = String.length sub and l = String.length s in
        let rec go i = i + m <= l && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check tbool "stage0's assertion" true (has "stage0" msg)
  | _ -> Alcotest.fail "zero must trip a stage assertion"

(* --- FIR filter ---------------------------------------------------------------------- *)

let fir_program = lazy (elab ~file:"fir.c" (Apps.Fir_src.source ()))

let run_fir ?(strategy = Driver.parallelized) samples =
  let c = Driver.compile ~strategy (Lazy.force fir_program) in
  Driver.simulate
    ~options:
      {
        Driver.default_sim_options with
        Driver.feeds = [ ("samples_in", samples) ];
        drains = [ "samples_out" ];
        params = [ ("fir", [ ("n", Int64.of_int (List.length samples)) ]) ];
      }
    c

let test_fir_circuit_matches_reference () =
  let n = 96 in
  let signal = Apps.Fir_ref.test_signal n in
  let expected = Array.to_list (Array.map Int64.of_int (Apps.Fir_ref.filter signal)) in
  let r = run_fir (Apps.Fir_ref.to_stream signal) in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "filtered output matches oracle" true
    (List.assoc "samples_out" r.Driver.engine.Engine.drained = expected)

let test_fir_pipelines_at_ii1 () =
  let r = run_fir ~strategy:Driver.baseline (List.init 32 (fun i -> Int64.of_int i)) in
  match List.filter (fun (p : Engine.pipe_stats) -> p.Engine.issues > 0) r.Driver.engine.Engine.pipes with
  | [ p ] ->
      check tint "II = 1" 1 p.Engine.ii_static;
      check tbool "measured II = 1" true (p.Engine.ii_measured < 1.05)
  | _ -> Alcotest.fail "expected one pipe"

let test_fir_overflow_assertion_fires () =
  (* a huge sample wraps the 32-bit accumulator; the sign guard trips *)
  let samples = List.init 32 (fun _ -> 5_000_000L) in
  let r = run_fir samples in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted msg ->
      let has sub s =
        let m = String.length sub and l = String.length s in
        let rec go i = i + m <= l && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check tbool "overflow guard named" true (has "acc" msg)
  | _ -> Alcotest.fail "accumulator overflow must trip an assertion"

let test_fir_interp_matches_circuit () =
  let n = 48 in
  let signal = Apps.Fir_ref.test_signal n in
  let prog = Lazy.force fir_program in
  let sw =
    Interp.run
      ~cfg:
        {
          Interp.default_config with
          Interp.feeds = [ ("samples_in", Apps.Fir_ref.to_stream signal) ];
          drains = [ "samples_out" ];
          params = [ ("fir", [ ("n", Int64.of_int n) ]) ];
        }
      prog
  in
  let hw = run_fir (Apps.Fir_ref.to_stream signal) in
  check tbool "interp = circuit" true (sw.Interp.drained = hw.Driver.engine.Engine.drained)

let test_loopback_stream_counts () =
  (* figure 4/5 mechanics: unoptimized adds n failure streams, shared
     adds ceil(n/32) *)
  let n = 64 in
  let prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n ()) in
  let count strategy =
    (Driver.compile ~strategy prog).Driver.area.Rtl.Area.streams
  in
  let base = count Driver.baseline in
  check tint "unoptimized adds one stream per process" (base + 64) (count Driver.unoptimized);
  check tint "shared adds one per 32 assertions" (base + 2)
    (count { Driver.unoptimized with Driver.share = `Shared 32 })

let () =
  Alcotest.run "apps"
    [
      ( "des-reference",
        [
          Alcotest.test_case "known vector" `Quick test_des_known_vector;
          Alcotest.test_case "weak key" `Quick test_des_weak_key_palindrome;
          Alcotest.test_case "field map derived" `Quick test_field_map_derived;
          Alcotest.test_case "block/string roundtrip" `Quick test_block_string_roundtrip;
          QCheck_alcotest.to_alcotest des_roundtrip;
          QCheck_alcotest.to_alcotest des_packed_equivalence;
          QCheck_alcotest.to_alcotest ip_twiddle_equiv;
          QCheck_alcotest.to_alcotest fp_inverts_ip;
          QCheck_alcotest.to_alcotest des3_roundtrip;
          QCheck_alcotest.to_alcotest des3_packed_equivalence;
        ] );
      ( "des-circuit",
        [
          Alcotest.test_case "circuit decrypts" `Slow test_des_circuit_decrypts;
          Alcotest.test_case "interp matches circuit" `Slow test_des_interp_matches_circuit;
          Alcotest.test_case "ASCII assertions" `Slow test_des_ascii_assertions_catch_corruption;
          Alcotest.test_case "table 1 overheads" `Quick test_des_table1_overheads_small;
          QCheck_alcotest.to_alcotest des_circuit_random_text;
        ] );
      ( "edge",
        [
          Alcotest.test_case "flat image" `Quick test_edge_reference_properties;
          Alcotest.test_case "linear gradient" `Quick test_edge_linear_gradient_zero;
          Alcotest.test_case "circuit matches oracle" `Slow test_edge_circuit_matches_reference;
          Alcotest.test_case "geometry assertion" `Quick test_edge_geometry_assertion;
          Alcotest.test_case "pipelined inner loop" `Quick test_edge_pipelined;
        ] );
      ( "fir",
        [
          Alcotest.test_case "circuit matches oracle" `Quick test_fir_circuit_matches_reference;
          Alcotest.test_case "pipelines at II=1" `Quick test_fir_pipelines_at_ii1;
          Alcotest.test_case "overflow assertion" `Quick test_fir_overflow_assertion_fires;
          Alcotest.test_case "interp matches circuit" `Quick test_fir_interp_matches_circuit;
        ] );
      ( "dct",
        [
          Alcotest.test_case "circuit matches oracle" `Quick test_dct_circuit_matches_reference;
          Alcotest.test_case "DC component" `Quick test_dct_dc_component;
          Alcotest.test_case "bound assertion" `Quick test_dct_bound_assertion_fires;
          QCheck_alcotest.to_alcotest dct_linear_prop;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "dataflow" `Quick test_loopback_dataflow;
          Alcotest.test_case "shared failure decode" `Quick test_loopback_shared_failure_identified;
          Alcotest.test_case "stream counts" `Quick test_loopback_stream_counts;
        ] );
    ]
