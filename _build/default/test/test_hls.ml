(* HLS tests: list scheduling, FSMD invariants, modulo scheduling,
   functional-unit binding. *)

open Front
module Ir = Mir.Ir
module Fsmd = Hls.Fsmd

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let compile_first ?mem_ports src =
  let prog = elab src in
  Hls.Schedule.compile_proc
    (Mir.Opt.optimize (Mir.Lower.lower_proc ?mem_ports prog (List.hd prog.Ast.procs)))

let wrap body = Printf.sprintf "stream int32 inp depth 8; stream int32 out depth 8; process hw main() { %s }" body

let assert_valid fsmd =
  match Fsmd.check fsmd with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs)

(* --- Sequential scheduling --------------------------------------------------- *)

let test_chaining_packs_ops () =
  (* three cheap dependent logic ops chain into one state *)
  let f = compile_first (wrap "int32 x; int32 y; x = stream_read(inp); y = ((x & 3) | 4) ^ 1; stream_write(out, y);") in
  assert_valid f;
  (* states: sread, chained ALU, swrite, done *)
  check tint "chained states" 4 (Fsmd.num_states f)

let test_budget_splits_long_chains () =
  (* several dependent multiplies exceed one clock period *)
  let f = compile_first (wrap "int32 x; x = stream_read(inp); int32 y; y = x * x * x * x * x; stream_write(out, y);") in
  assert_valid f;
  check tbool "multiple ALU states" true (Fsmd.num_states f > 4);
  (* no state chain exceeds the budget by more than one operator *)
  Array.iter
    (fun (s : Fsmd.state) ->
      check tbool "chain below budget" true
        (s.Fsmd.chain_ns <= Device.Stratix.chain_budget_ns +. 0.001))
    f.Fsmd.states

let test_stream_states_exclusive () =
  let f = compile_first (wrap "int32 x; x = stream_read(inp); stream_write(out, x + 1);") in
  assert_valid f;
  Array.iter
    (fun (s : Fsmd.state) ->
      let has_stream = List.exists (fun g -> Ir.is_stream_op g.Ir.i) s.Fsmd.ops in
      if has_stream then
        check tint "stream op alone" 1
          (List.length
             (List.filter
                (fun (g : Ir.ginst) -> match g.Ir.i with Ir.Tap _ -> false | _ -> true)
                s.Fsmd.ops)))
    f.Fsmd.states

let test_load_result_next_state () =
  let f = compile_first (wrap "int32 a[4]; a[0] = 3; int32 v; v = a[0]; stream_write(out, v + 1);") in
  assert_valid f (* Fsmd.check verifies load/use separation *)

let test_port_limit_respected () =
  (* three loads from a single-ported RAM cannot share a state *)
  let f =
    compile_first ~mem_ports:1
      (wrap "int32 a[8]; a[0] = 1; int32 x; int32 y; int32 z; x = a[0]; y = a[1]; z = a[2]; stream_write(out, x + y + z);")
  in
  assert_valid f;
  let load_states =
    Array.to_list f.Fsmd.states
    |> List.filter (fun (s : Fsmd.state) ->
           List.exists (fun g -> match g.Ir.i with Ir.Load _ -> true | _ -> false) s.Fsmd.ops)
  in
  check tint "loads serialized" 3 (List.length load_states)

let test_dual_port_packs_loads () =
  let f =
    compile_first ~mem_ports:2
      (wrap "int32 a[8]; a[0] = 1; int32 x; int32 y; x = a[0]; y = a[1]; stream_write(out, x + y);")
  in
  assert_valid f;
  let max_loads_per_state =
    Array.fold_left
      (fun acc (s : Fsmd.state) ->
        Stdlib.max acc
          (List.length
             (List.filter (fun g -> match g.Ir.i with Ir.Load _ -> true | _ -> false) s.Fsmd.ops)))
      0 f.Fsmd.states
  in
  check tint "two loads in one state" 2 max_loads_per_state

let test_if_costs_a_state () =
  let base = compile_first (wrap "int32 x; x = stream_read(inp); stream_write(out, x);") in
  let with_if =
    compile_first (wrap "int32 x; x = stream_read(inp); if (x > 0) { x = x; } stream_write(out, x);")
  in
  assert_valid with_if;
  check tbool "if adds at least one state" true
    (Fsmd.num_states with_if > Fsmd.num_states base)

let test_extcall_wait_states () =
  let prog =
    elab
      "stream int32 out depth 8; extern int32 slow(int32) latency 4; process hw main() { int32 y; y = slow(3); stream_write(out, y); }"
  in
  let f = Hls.Schedule.compile_proc (Mir.Lower.lower_proc prog (List.hd prog.Ast.procs)) in
  assert_valid f;
  (* issue state + 3 wait states before the consumer *)
  check tbool "wait states exist" true (Fsmd.num_states f >= 6)

let test_branch_targets_valid () =
  let f =
    compile_first
      (wrap
         "int32 x; x = stream_read(inp); if (x > 2) { stream_write(out, 1); } else { stream_write(out, 0); } int32 i; for (i = 0; i < 3; i = i + 1) { x = x + 1; } stream_write(out, x);")
  in
  assert_valid f

(* Random programs always produce valid FSMDs. *)
let gen_body =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let atom = oneof [ map string_of_int (int_range 0 63); var ] in
  let expr = map3 (fun a o b -> Printf.sprintf "(%s %s %s)" a o b) atom (oneofl [ "+"; "*"; "&"; "^"; "-" ]) atom in
  let stmt =
    oneof
      [
        map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var expr;
        map (fun e -> Printf.sprintf "m[%s & 7] = a;" e) expr;
        map (fun e -> Printf.sprintf "b = m[%s & 7];" e) expr;
        map2 (fun e v -> Printf.sprintf "if (%s > 9) { %s = 1; }" e v) expr var;
        pure "stream_write(out, a);";
      ]
  in
  map (String.concat "\n") (list_size (int_range 1 12) stmt)

let random_fsmd_valid =
  QCheck.Test.make ~count:100 ~name:"random programs schedule to valid FSMDs"
    (QCheck.make gen_body ~print:(fun s -> s))
    (fun body ->
      let src = wrap (Printf.sprintf "int32 a; int32 b; int32 c; int32 m[8]; a = stream_read(inp); b = 2; c = 3; %s" body) in
      let f = compile_first src in
      Fsmd.check f = [])

(* --- Pipelining ----------------------------------------------------------------- *)

let pipe_of src =
  let f = compile_first src in
  assert_valid f;
  match Array.to_list f.Fsmd.pipes with
  | [ p ] -> p
  | l -> Alcotest.fail (Printf.sprintf "expected one pipe, got %d" (List.length l))

let test_pipeline_ii1 () =
  let p =
    pipe_of
      (wrap
         "int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); stream_write(out, x + 1); }")
  in
  check tint "ii" 1 p.Fsmd.ii;
  check tint "depth" 3 p.Fsmd.depth

let test_pipeline_port_bound_ii () =
  let p =
    pipe_of
      (wrap
         "int32 m[8]; int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); m[i & 7] = x; int32 y; y = m[(i + 1) & 7]; stream_write(out, y); }")
  in
  check tint "two RAM accesses over one port" 2 p.Fsmd.ii

let test_pipeline_guarded_stream_penalty () =
  let p =
    pipe_of
      (wrap
         "int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); if (x > 3) { stream_write(out, x); } stream_write(out, 0 - x); }")
  in
  (* conditional stream write costs one extra II slot *)
  check tbool "ii at least 3" true (p.Fsmd.ii >= 3)

let test_pipeline_loop_carried_accumulator () =
  let p =
    pipe_of
      (wrap
         "int32 acc; acc = 0; int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); acc = acc + x; stream_write(out, acc); }")
  in
  (* accumulator must commit before the next issue: feasible at ii=1
     because the add chains in cycle 1?  the write must be <= ii-1, so
     ii grows until the accumulator write fits *)
  check tbool "ii accommodates the carry" true (p.Fsmd.ii >= 1);
  check tbool "depth covers the chain" true (p.Fsmd.depth >= 2)

let test_pipeline_fallback_nested_loop () =
  (* a nested loop cannot be pipelined: falls back to sequential *)
  let f =
    compile_first
      (wrap
         "int32 i; int32 j; #pragma pipeline\nfor (i = 0; i < 4; i = i + 1) { for (j = 0; j < 4; j = j + 1) { int32 x; x = i + j; } }")
  in
  check tint "no pipes" 0 (Array.length f.Fsmd.pipes)

let test_pipeline_if_converted_guards () =
  let p =
    pipe_of
      (wrap
         "int32 m[8]; int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); int32 v; v = x; if (x > 5) { v = x * 2; } m[i & 7] = v; stream_write(out, v); }")
  in
  let guarded =
    Array.to_list p.Fsmd.cycle_ops
    |> List.concat |> List.filter (fun (g : Ir.ginst) -> g.Ir.guard <> None)
  in
  check tbool "guarded ops present" true (guarded <> [])

let test_schedule_deterministic () =
  let src =
    wrap
      "int32 m[8]; int32 x; x = stream_read(inp); m[x & 7] = x; int32 y; y = m[(x + 1) & 7]; stream_write(out, y * x);"
  in
  let f1 = compile_first src and f2 = compile_first src in
  check tint "same state count" (Fsmd.num_states f1) (Fsmd.num_states f2);
  check tbool "same chains" true (f1.Fsmd.max_chain_ns = f2.Fsmd.max_chain_ns)

let test_constant_shift_is_free () =
  (* a constant shift is wiring: it chains with anything *)
  let f =
    compile_first
      (wrap "int32 x; x = stream_read(inp); int32 y; y = ((x << 3) ^ (x >> 2)) & 255; stream_write(out, y);")
  in
  assert_valid f;
  (* shift + xor + and all chain into a single ALU state *)
  check tint "states" 4 (Fsmd.num_states f)

let test_rom_feeds_datapath () =
  let f =
    compile_first
      (wrap
         "const int32 t[4] = { 10, 20, 30, 40 }; int32 x; x = stream_read(inp); int32 y; y = t[x & 3]; stream_write(out, y);")
  in
  assert_valid f;
  check tbool "rom memory present" true
    (List.exists (fun (m : Ir.mem) -> m.Ir.rom_init <> None) f.Fsmd.proc.Ir.mems)

(* --- Binding ----------------------------------------------------------------------- *)

let test_binding_shares_units () =
  let f =
    compile_first
      (wrap
         "int32 x; x = stream_read(inp); int32 a; int32 b; int32 c; a = x * 3; b = a * 5; c = b * 7; stream_write(out, c);")
  in
  let shared = Hls.Binding.bind ~policy:`Shared f in
  let flat = Hls.Binding.bind ~policy:`Flat f in
  check tbool "sharing reduces units" true (shared.Hls.Binding.total_units < flat.Hls.Binding.total_units);
  check tint "same op count" flat.Hls.Binding.total_ops shared.Hls.Binding.total_ops

let test_binding_concurrent_ops_not_shared () =
  (* independent same-state ops need separate units *)
  let f =
    compile_first
      (wrap "int32 x; x = stream_read(inp); int32 a; int32 b; a = x + 1; b = x + 2; int32 c; c = a + b; stream_write(out, c);")
  in
  let b = Hls.Binding.bind ~policy:`Shared f in
  let adds =
    List.find_opt
      (fun (u : Hls.Binding.fu_usage) ->
        match u.Hls.Binding.cls with Hls.Binding.Fbin (Ast.Add, _) -> true | _ -> false)
      b.Hls.Binding.fus
  in
  match adds with
  | Some u -> check tbool "at least 2 adders" true (u.Hls.Binding.units >= 2)
  | None -> Alcotest.fail "no adders found"

let binding_invariant =
  QCheck.Test.make ~count:60 ~name:"binding: units <= ops and ops conserved"
    (QCheck.make gen_body ~print:(fun s -> s))
    (fun body ->
      let src = wrap (Printf.sprintf "int32 a; int32 b; int32 c; int32 m[8]; a = stream_read(inp); b = 2; c = 3; %s" body) in
      let f = compile_first src in
      let shared = Hls.Binding.bind ~policy:`Shared f in
      List.for_all
        (fun (u : Hls.Binding.fu_usage) -> u.Hls.Binding.units <= u.Hls.Binding.ops && u.Hls.Binding.units > 0)
        shared.Hls.Binding.fus)

let () =
  Alcotest.run "hls"
    [
      ( "schedule",
        [
          Alcotest.test_case "operator chaining" `Quick test_chaining_packs_ops;
          Alcotest.test_case "chain budget" `Quick test_budget_splits_long_chains;
          Alcotest.test_case "stream exclusivity" `Quick test_stream_states_exclusive;
          Alcotest.test_case "load latency" `Quick test_load_result_next_state;
          Alcotest.test_case "port limits" `Quick test_port_limit_respected;
          Alcotest.test_case "dual-port packing" `Quick test_dual_port_packs_loads;
          Alcotest.test_case "if costs a state" `Quick test_if_costs_a_state;
          Alcotest.test_case "extcall wait states" `Quick test_extcall_wait_states;
          Alcotest.test_case "branch targets" `Quick test_branch_targets_valid;
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "constant shifts free" `Quick test_constant_shift_is_free;
          Alcotest.test_case "ROM in datapath" `Quick test_rom_feeds_datapath;
          QCheck_alcotest.to_alcotest random_fsmd_valid;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "ii=1 streaming" `Quick test_pipeline_ii1;
          Alcotest.test_case "port-bound ii" `Quick test_pipeline_port_bound_ii;
          Alcotest.test_case "guarded stream penalty" `Quick test_pipeline_guarded_stream_penalty;
          Alcotest.test_case "loop-carried accumulator" `Quick test_pipeline_loop_carried_accumulator;
          Alcotest.test_case "nested loop fallback" `Quick test_pipeline_fallback_nested_loop;
          Alcotest.test_case "if-conversion guards" `Quick test_pipeline_if_converted_guards;
        ] );
      ( "binding",
        [
          Alcotest.test_case "sharing reduces units" `Quick test_binding_shares_units;
          Alcotest.test_case "concurrency forces units" `Quick test_binding_concurrent_ops_not_shared;
          QCheck_alcotest.to_alcotest binding_invariant;
        ] );
    ]
