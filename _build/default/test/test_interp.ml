(* Software-simulation interpreter tests: C semantics, streams,
   assertions (NABORT/NDEBUG), deadlock detection, extern models. *)

open Front
module I = Interp
module V = Interp.Value

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let ti64 = Alcotest.testable (fun ppf v -> Fmt.pf ppf "%Ld" v) Int64.equal

let elab = Typecheck.parse_and_check ~file:"test.c"

let run ?cfg src = I.run ?cfg (elab src)

(* --- Value module ------------------------------------------------------- *)

let test_wrap () =
  check ti64 "u8 wrap" 44L (V.wrap Ast.Unsigned Ast.W8 300L);
  check ti64 "i8 wrap" (-56L) (V.wrap Ast.Signed Ast.W8 200L);
  check ti64 "i32 wrap" Int64.(of_int32 Int32.min_int) (V.wrap Ast.Signed Ast.W32 2147483648L);
  check ti64 "w64 identity" (-1L) (V.wrap Ast.Signed Ast.W64 (-1L))

let test_value_div_unsigned () =
  let u32 = Ast.uint32_t in
  (* 4294967286 / 2 as u32 *)
  let a = V.wrap_ty u32 4294967286L in
  check ti64 "unsigned div" 2147483643L (V.binop Ast.Div u32 a 2L)

let test_value_shr () =
  check ti64 "arith shr" (-1L) (V.binop Ast.Shr Ast.int32_t (-2L) 1L);
  check ti64 "logical shr" 2147483647L (V.binop Ast.Shr Ast.uint32_t (V.wrap_ty Ast.uint32_t 0xFFFFFFFFL) 1L)

let test_value_compare_signedness () =
  (* the paper's Figure 3: 4294967286 > 4294967296 must be false at 64 bits *)
  check ti64 "64-bit compare" 0L (V.binop Ast.Gt Ast.int64_t 4294967286L 4294967296L);
  (* but is true if bits are truncated to 5 bits: 22 > 0 *)
  let t5 a = V.wrap Ast.Unsigned Ast.W8 (Int64.logand a 31L) in
  check tbool "5-bit truncation inverts it" true (Int64.compare (t5 4294967286L) (t5 4294967296L) > 0)

let wrap_prop =
  QCheck.Test.make ~count:500 ~name:"wrap is idempotent and in range"
    QCheck.(pair int64 (oneofl Ast.[ W8; W16; W32; W64 ]))
    (fun (v, w) ->
      let u = V.wrap Ast.Unsigned w v in
      let s = V.wrap Ast.Signed w v in
      let n = Ast.bits_of_width w in
      V.wrap Ast.Unsigned w u = u && V.wrap Ast.Signed w s = s
      && (n = 64 || (Int64.compare u 0L >= 0 && Int64.compare u (Int64.shift_left 1L n) < 0)))

let add_assoc_prop =
  QCheck.Test.make ~count:500 ~name:"wrapped add matches Int64 add at W64"
    QCheck.(pair int64 int64)
    (fun (a, b) -> V.binop Ast.Add Ast.int64_t a b = Int64.add a b)

let cast_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"widening then narrowing cast is identity"
    QCheck.(int64)
    (fun v ->
      let v8 = V.wrap Ast.Signed Ast.W8 v in
      let wide = V.cast ~from_ty:(Ast.Tint (Ast.Signed, Ast.W8)) ~to_ty:Ast.int64_t v8 in
      V.cast ~from_ty:Ast.int64_t ~to_ty:(Ast.Tint (Ast.Signed, Ast.W8)) wide = v8)

(* --- Basic interpretation ----------------------------------------------- *)

let test_straightline () =
  let r =
    run
      {| stream int32 o depth 64;
         process hw m() {
           int32 x; int32 y;
           x = 6; y = 7;
           stream_write(o, x * y);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "completed" true (r.I.outcome = I.Completed);
  check tbool "output" true (r.I.drained = [ ("o", [ 42L ]) ])

let test_loop_sum () =
  let r =
    run
      {| stream int64 o depth 4;
         process hw m() {
           int32 i; int64 acc;
           acc = 0;
           for (i = 1; i <= 100; i = i + 1) { acc = acc + i; }
           stream_write(o, acc);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "sum 1..100" true (r.I.drained = [ ("o", [ 5050L ]) ])

let test_while_and_arrays () =
  let r =
    run
      {| stream int32 o depth 64;
         process hw m() {
           int32 a[10]; int32 i;
           i = 0;
           while (i < 10) { a[i] = i * i; i = i + 1; }
           stream_write(o, a[7]);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "a[7]=49" true (r.I.drained = [ ("o", [ 49L ]) ])

let test_producer_consumer () =
  let r =
    run
      {| stream int32 c depth 2;
         stream int32 o depth 64;
         process hw producer() {
           int32 i;
           for (i = 0; i < 5; i = i + 1) { stream_write(c, i * 10); }
         }
         process hw consumer() {
           int32 i; int32 v;
           for (i = 0; i < 5; i = i + 1) { v = stream_read(c); stream_write(o, v + 1); }
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "completed" true (r.I.outcome = I.Completed);
  check tbool "pipeline data" true (r.I.drained = [ ("o", [ 1L; 11L; 21L; 31L; 41L ]) ])

let test_feeds () =
  let r =
    run
      {| stream int32 i depth 8; stream int32 o depth 8;
         process hw m() {
           int32 k; int32 v;
           for (k = 0; k < 3; k = k + 1) { v = stream_read(i); stream_write(o, v * v); }
         } |}
      ~cfg:{ I.default_config with feeds = [ ("i", [ 2L; 3L; 4L ]) ]; drains = [ "o" ] }
  in
  check tbool "squares" true (r.I.drained = [ ("o", [ 4L; 9L; 16L ]) ])

let test_params () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m(int32 n) { stream_write(o, n + 1); } |}
      ~cfg:{ I.default_config with params = [ ("m", [ ("n", 41L) ]) ]; drains = [ "o" ] }
  in
  check tbool "param" true (r.I.drained = [ ("o", [ 42L ]) ])

let test_c_semantics_wrap () =
  (* int8 overflow wraps *)
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() { int8 x; x = 127; x = x + 1; stream_write(o, (int32)x); } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "int8 overflow wraps to -128" true (r.I.drained = [ ("o", [ -128L ]) ])

let test_figure3_compare_is_correct_in_software () =
  (* Paper Figure 3: the comparison is correct in software simulation. *)
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int64 c1; int64 c2; int32 addr;
           c1 = 4294967296;
           c2 = 4294967286;
           addr = 0;
           if (c2 > c1) { addr = addr - 10; }
           assert(addr >= 0);
           stream_write(o, addr);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "no failure in software" true (I.ok r);
  check tbool "addr stays 0" true (r.I.drained = [ ("o", [ 0L ]) ])

let test_const_array () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           const int32 t[5] = { 3, 1, 4, 1, 5 };
           int32 i; int32 s;
           s = 0;
           for (i = 0; i < 5; i = i + 1) { s = s + t[i]; }
           stream_write(o, s);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "sum of ROM" true (r.I.drained = [ ("o", [ 14L ]) ])

let test_short_circuit_guards_division () =
  (* C's && must not evaluate the division when the guard is false *)
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int32 d; int32 x; bool ok;
           d = 0; x = 10;
           ok = d != 0 && x / d > 1;
           if (ok) { stream_write(o, 1); } else { stream_write(o, 0); }
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "no division trap" true (r.I.drained = [ ("o", [ 0L ]) ])

let test_nested_loops () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int32 i; int32 j; int32 s;
           s = 0;
           for (i = 0; i < 5; i = i + 1) {
             for (j = 0; j < i; j = j + 1) { s = s + 1; }
           }
           stream_write(o, s);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "triangular count" true (r.I.drained = [ ("o", [ 10L ]) ])

let test_shadowing_scopes () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int32 x;
           x = 1;
           {
             int32 x;
             x = 99;
           }
           stream_write(o, x);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  check tbool "outer x unchanged" true (r.I.drained = [ ("o", [ 1L ]) ])

(* --- Assertions --------------------------------------------------------- *)

let test_assert_failure_aborts () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int32 x;
           x = 3;
           assert(x > 5);
           stream_write(o, x);
         } |}
      ~cfg:{ I.default_config with drains = [ "o" ] }
  in
  (match r.I.outcome with
  | I.Aborted f ->
      check tstr "failed text" "x > 5" f.I.ftext;
      check tstr "proc" "m" f.I.fproc
  | _ -> Alcotest.fail "expected abort");
  check tbool "no output after abort" true (r.I.drained = [ ("o", []) ]);
  match r.I.log with
  | [ msg ] ->
      check tbool "ANSI message format" true
        (msg = Printf.sprintf "test.c:%d: m: Assertion `x > 5' failed." 5)
  | _ -> Alcotest.fail "expected one log line"

let test_assert_nabort_continues () =
  let r =
    run
      {| stream int32 o depth 8;
         process hw m() {
           int32 i;
           for (i = 0; i < 4; i = i + 1) { assert(i % 2 == 0); }
           stream_write(o, 1);
         } |}
      ~cfg:{ I.default_config with nabort = true; drains = [ "o" ] }
  in
  check tbool "completed under NABORT" true (r.I.outcome = I.Completed);
  check tint "two failures recorded" 2 (List.length r.I.failures);
  check tbool "program ran to the end" true (r.I.drained = [ ("o", [ 1L ]) ])

let test_assert_ndebug_disables () =
  let r =
    run {| process hw m() { assert(false); } |}
      ~cfg:{ I.default_config with ndebug = true }
  in
  check tbool "NDEBUG disables assertions" true (I.ok r)

let test_assert_zero_trace () =
  (* Section 5.1: assert(0) as positive execution indicator under NABORT. *)
  let r =
    run
      {| stream int32 c depth 8;
         process hw a() { assert(0); stream_write(c, 1); assert(0); }
         process hw b() { int32 v; v = stream_read(c); assert(0); } |}
      ~cfg:{ I.default_config with nabort = true }
  in
  check tint "three trace points hit" 3 (List.length r.I.failures);
  let lines = List.map (fun f -> (f.I.fproc, f.I.floc.Loc.line)) r.I.failures in
  check tbool "trace identifies processes" true
    (List.mem ("a", 2) lines && List.mem ("b", 3) lines)

(* --- Deadlock / hang detection ------------------------------------------ *)

let test_deadlock_detected () =
  let r =
    run
      {| stream int32 c depth 2;
         process hw m() { int32 v; v = stream_read(c); } |}
  in
  match r.I.outcome with
  | I.Deadlocked [ ("m", loc) ] -> check tint "blocked at read line" 2 loc.Loc.line
  | _ -> Alcotest.fail "expected deadlock"

let test_bounded_fifo_can_hang_where_unbounded_completes () =
  (* The software-sim vs hardware discrepancy in miniature: a producer
     writing 8 values into a depth-2 FIFO with no consumer completes when
     FIFOs are unbounded (software simulation) but hangs when bounded. *)
  let src =
    {| stream int32 c depth 2;
       process hw producer() {
         int32 i;
         for (i = 0; i < 8; i = i + 1) { stream_write(c, i); }
       } |}
  in
  let soft = run src in
  check tbool "unbounded completes" true (soft.I.outcome = I.Completed);
  let hard = run src ~cfg:{ I.default_config with unbounded_fifos = false } in
  match hard.I.outcome with
  | I.Deadlocked [ ("producer", _) ] -> ()
  | _ -> Alcotest.fail "expected bounded-FIFO hang"

let test_fuel_exhaustion () =
  let r =
    run {| process hw m() { int32 x; x = 0; while (x == 0) { x = 0; } } |}
      ~cfg:{ I.default_config with max_steps = 1000 }
  in
  check tbool "fuel exhausted" true
    (match r.I.outcome with I.Fuel_exhausted | I.Runtime_error _ -> true | _ -> false)

(* --- Runtime errors ------------------------------------------------------ *)

let test_out_of_bounds_reported () =
  let r = run {| process hw m() { int32 a[4]; int32 i; i = 9; a[i] = 1; } |} in
  match r.I.outcome with
  | I.Runtime_error msg -> check tbool "mentions bounds" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected runtime error"

let test_division_by_zero_reported () =
  let r = run {| process hw m() { int32 x; int32 y; y = 0; x = 5 / y; } |} in
  match r.I.outcome with
  | I.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected division error"

(* --- External functions -------------------------------------------------- *)

let test_extern_model () =
  let cfg =
    {
      I.default_config with
      extern_models = [ ("triple", fun vs -> Int64.mul 3L (List.hd vs)) ];
      drains = [ "o" ];
    }
  in
  let r =
    run ~cfg
      {| stream int32 o depth 8;
         extern int32 triple(int32) latency 2;
         process hw m() { int32 y; y = triple(14); stream_write(o, y); } |}
  in
  check tbool "extern model used" true (r.I.drained = [ ("o", [ 42L ]) ])

let test_extern_missing_model () =
  let r =
    run
      {| extern int32 f(int32) latency 1;
         process hw m() { int32 y; y = f(1); } |}
  in
  match r.I.outcome with
  | I.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected missing-model error"

(* Interpreter agrees with a native OCaml oracle on random arithmetic. *)
let interp_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"interp arithmetic matches OCaml int32 oracle"
    QCheck.(triple int32 int32 (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ]))
    (fun (a, b, op) ->
      let src =
        Printf.sprintf
          {| stream int64 o depth 4;
             process hw m() {
               int32 x; int32 y; int32 z;
               x = (%ld); y = (%ld); z = x %s y;
               stream_write(o, (int64)z);
             } |}
          a b op
      in
      let r = run src ~cfg:{ I.default_config with drains = [ "o" ] } in
      let expected =
        let f =
          match op with
          | "+" -> Int32.add
          | "-" -> Int32.sub
          | "*" -> Int32.mul
          | "&" -> Int32.logand
          | "|" -> Int32.logor
          | _ -> Int32.logxor
        in
        Int64.of_int32 (f a b)
      in
      r.I.drained = [ ("o", [ expected ]) ])

let () =
  Alcotest.run "interp"
    [
      ( "value",
        [
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "unsigned div" `Quick test_value_div_unsigned;
          Alcotest.test_case "shift right" `Quick test_value_shr;
          Alcotest.test_case "figure 3 comparison" `Quick test_value_compare_signedness;
          QCheck_alcotest.to_alcotest wrap_prop;
          QCheck_alcotest.to_alcotest add_assoc_prop;
          QCheck_alcotest.to_alcotest cast_roundtrip_prop;
        ] );
      ( "exec",
        [
          Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "while + arrays" `Quick test_while_and_arrays;
          Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
          Alcotest.test_case "feeds" `Quick test_feeds;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "C wrap semantics" `Quick test_c_semantics_wrap;
          Alcotest.test_case "figure 3 software run" `Quick test_figure3_compare_is_correct_in_software;
          Alcotest.test_case "const arrays" `Quick test_const_array;
          Alcotest.test_case "short-circuit guards" `Quick test_short_circuit_guards_division;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "scope shadowing" `Quick test_shadowing_scopes;
          QCheck_alcotest.to_alcotest interp_matches_oracle;
        ] );
      ( "assertions",
        [
          Alcotest.test_case "failure aborts" `Quick test_assert_failure_aborts;
          Alcotest.test_case "NABORT continues" `Quick test_assert_nabort_continues;
          Alcotest.test_case "NDEBUG disables" `Quick test_assert_ndebug_disables;
          Alcotest.test_case "assert(0) tracing" `Quick test_assert_zero_trace;
        ] );
      ( "hangs",
        [
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "bounded vs unbounded FIFO" `Quick test_bounded_fifo_can_hang_where_unbounded_completes;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        ] );
      ( "errors",
        [
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_reported;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_reported;
        ] );
      ( "externs",
        [
          Alcotest.test_case "model used" `Quick test_extern_model;
          Alcotest.test_case "missing model" `Quick test_extern_missing_model;
        ] );
    ]
