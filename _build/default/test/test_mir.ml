(* Middle-IR tests: lowering, optimization passes, fault injection. *)

open Front
module Ir = Mir.Ir
module Lower = Mir.Lower
module Opt = Mir.Opt

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let lower_first ?mirrors ?mem_ports src =
  let prog = elab src in
  Lower.lower_proc ?mirrors ?mem_ports prog (List.hd prog.Ast.procs)

let proc_body body = Printf.sprintf "process hw main() { %s }" body

(* --- Lowering ------------------------------------------------------------- *)

let test_lower_straightline () =
  let p = lower_first (proc_body "int32 x; int32 y; x = 1; y = x + 2;") in
  let insts = Ir.all_insts p.Ir.body in
  check tbool "has instructions" true (insts <> []);
  (* variables got registers with origins *)
  let origins = List.filter_map (fun (_, i) -> i.Ir.origin) p.Ir.regs in
  check tbool "x and y named" true (List.mem "x" origins && List.mem "y" origins)

let test_lower_array () =
  let p = lower_first (proc_body "int32 a[8]; a[0] = 5; int32 v; v = a[0];") in
  (match p.Ir.mems with
  | [ m ] ->
      check tbool "array name" true (m.Ir.mname = "a");
      check tint "length" 8 m.Ir.length
  | _ -> Alcotest.fail "expected one memory");
  let insts = Ir.all_insts p.Ir.body in
  let stores = List.filter (fun g -> match g.Ir.i with Ir.Store _ -> true | _ -> false) insts in
  let loads = List.filter (fun g -> match g.Ir.i with Ir.Load _ -> true | _ -> false) insts in
  check tint "one store" 1 (List.length stores);
  check tint "one load" 1 (List.length loads)

let test_lower_const_array () =
  let p = lower_first (proc_body "const int32 t[4] = { 10, 20, 30, 40 }; int32 v; v = t[2];") in
  match p.Ir.mems with
  | [ m ] -> (
      match m.Ir.rom_init with
      | Some vals -> check tbool "rom contents" true (vals = [ 10L; 20L; 30L; 40L ])
      | None -> Alcotest.fail "expected ROM init")
  | _ -> Alcotest.fail "expected one memory"

let test_lower_shadowed_arrays_unique () =
  let p =
    lower_first
      (proc_body "int32 a[4]; a[0] = 1; { int32 a[8]; a[0] = 2; } a[1] = 3;")
  in
  check tint "two memories" 2 (List.length p.Ir.mems);
  let names = List.map (fun m -> m.Ir.mname) p.Ir.mems in
  check tbool "unique names" true (List.sort_uniq compare names = List.sort compare names)

let test_lower_mirror () =
  let p =
    lower_first
      ~mirrors:[ ("a", "a__rep") ]
      (proc_body "int32 a[4]; a[0] = 1; int32 v; v = a[0];")
  in
  check tint "original + replica" 2 (List.length p.Ir.mems);
  (match Ir.find_mem p "a__rep" with
  | Some m ->
      check tbool "marked as mirror" true (m.Ir.mirror_of = Some "a");
      check tint "replica has an extra write port" 2 m.Ir.ports
  | None -> Alcotest.fail "replica not declared");
  (* every store to a is mirrored *)
  let stores mem =
    List.length
      (List.filter
         (fun g -> match g.Ir.i with Ir.Store { mem = m; _ } -> m = mem | _ -> false)
         (Ir.all_insts p.Ir.body))
  in
  check tint "store mirrored" (stores "a") (stores "a__rep")

let test_lower_if_hoists_loads () =
  let p =
    lower_first (proc_body "int32 a[4]; a[0] = 1; if (a[0] > 0) { a[1] = 2; }")
  in
  (* the load feeding the condition must be in the straight segment, not
     in the branch's cond_insts *)
  let rec find_if = function
    | [] -> None
    | Ir.If_else { cond_insts; _ } :: _ -> Some cond_insts
    | _ :: rest -> find_if rest
  in
  match find_if p.Ir.body with
  | Some cond_insts ->
      check tbool "no loads in cond_insts" true
        (List.for_all
           (fun g -> match g.Ir.i with Ir.Load _ -> false | _ -> true)
           cond_insts)
  | None -> Alcotest.fail "expected an if"

let test_lower_loop_structure () =
  let p = lower_first (proc_body "int32 i; int32 s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; }") in
  let rec find_loop = function
    | [] -> None
    | Ir.Loop { cond_insts; step_insts; pipelined; _ } :: _ ->
        Some (cond_insts, step_insts, pipelined)
    | _ :: rest -> find_loop rest
  in
  match find_loop p.Ir.body with
  | Some (cond_insts, step_insts, pipelined) ->
      check tbool "has condition insts" true (cond_insts <> []);
      check tbool "has step insts" true (step_insts <> []);
      check tbool "not pipelined" true (not pipelined)
  | None -> Alcotest.fail "expected a loop"

let test_lower_pipelined_flag () =
  let p =
    lower_first
      (proc_body "int32 i; #pragma pipeline\nfor (i = 0; i < 10; i = i + 1) { int32 x; x = i; }")
  in
  let rec find_loop = function
    | [] -> None
    | Ir.Loop { pipelined; _ } :: _ -> Some pipelined
    | _ :: rest -> find_loop rest
  in
  match find_loop p.Ir.body with
  | Some pipelined -> check tbool "pipelined" true pipelined
  | None -> Alcotest.fail "expected a loop"

let test_lower_rejects_assert () =
  try
    ignore (lower_first (proc_body "assert(true);"));
    Alcotest.fail "assert must not reach lowering"
  with Lower.Unsupported _ -> ()

let test_lower_tap () =
  let prog = elab (proc_body "int32 x; x = 3; assert(x > 0);") in
  let prog', specs = Core.Parallelize.transform prog in
  check tint "one checker" 1 (List.length specs);
  let p = Lower.lower_proc prog' (List.hd prog'.Ast.procs) in
  let taps =
    List.filter (fun g -> match g.Ir.i with Ir.Tap _ -> true | _ -> false)
      (Ir.all_insts p.Ir.body)
  in
  check tint "one tap" 1 (List.length taps)

let test_lower_folds_constants () =
  let p = lower_first (proc_body "int32 x; x = 2 + 3 * 4;") in
  let insts = Ir.all_insts p.Ir.body in
  (* all arithmetic folded: only a copy of the immediate remains *)
  check tbool "folded to immediate" true
    (List.exists
       (fun g -> match g.Ir.i with Ir.Copy { src = Ir.Imm 14L; _ } -> true | _ -> false)
       insts)

(* --- Optimization passes ---------------------------------------------------- *)

let test_opt_copy_prop_dce () =
  let prog = elab "stream int32 out depth 4; process hw main() { int32 x; int32 y; int32 z; x = 7; y = x; z = y; stream_write(out, z); }" in
  let p = Lower.lower_proc prog (List.hd prog.Ast.procs) in
  let opt = Opt.optimize p in
  let insts = Ir.all_insts opt.Ir.body in
  (* after copy-prop + dce the chain collapses to the stream write *)
  let swrites =
    List.filter (fun g -> match g.Ir.i with Ir.Swrite _ -> true | _ -> false) insts
  in
  check tint "swrite kept" 1 (List.length swrites);
  check tbool "chain shrunk" true (List.length insts <= 2)

let test_opt_preserves_side_effects () =
  let prog =
    elab
      "stream int32 out depth 4; process hw main() { int32 a[4]; a[0] = 1; int32 dead; dead = 5; stream_write(out, 1); }"
  in
  let p = Opt.optimize (Lower.lower_proc prog (List.hd prog.Ast.procs)) in
  let insts = Ir.all_insts p.Ir.body in
  check tbool "store kept" true
    (List.exists (fun g -> match g.Ir.i with Ir.Store _ -> true | _ -> false) insts);
  check tbool "dead value removed" true
    (not
       (List.exists
          (fun g -> match g.Ir.i with Ir.Copy { src = Ir.Imm 5L; _ } -> true | _ -> false)
          insts))

let test_opt_keeps_loop_condition () =
  let prog = elab (proc_body "int32 i; for (i = 0; i < 3; i = i + 1) { int32 x; x = i; }") in
  let p = Opt.optimize (Lower.lower_proc prog (List.hd prog.Ast.procs)) in
  let rec find_loop = function
    | [] -> None
    | Ir.Loop { cond_insts; _ } :: _ -> Some cond_insts
    | _ :: rest -> find_loop rest
  in
  match find_loop p.Ir.body with
  | Some cond_insts -> check tbool "condition computed" true (cond_insts <> [])
  | None -> Alcotest.fail "loop disappeared"

(* Optimization must preserve behaviour: run random programs through the
   simulator with and without Opt and compare outputs. *)
let gen_prog_src =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
  let atom = oneof [ map (Printf.sprintf "%d") (int_range 0 100); var ] in
  let expr2 =
    map3 (fun a o b -> Printf.sprintf "(%s %s %s)" a o b) atom op atom
  in
  let stmt =
    oneof
      [
        map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var expr2;
        map2 (fun v e -> Printf.sprintf "%s = %s; m[%s & 7] = %s;" v e v v) var expr2;
        map (fun e -> Printf.sprintf "if (%s > 20) { a = a + 1; } else { b = b - 1; }" e) expr2;
      ]
  in
  let stmts = list_size (int_range 1 8) stmt in
  map
    (fun body ->
      Printf.sprintf
        {| stream int32 inp depth 8; stream int32 out depth 64;
           process hw main() {
             int32 a; int32 b; int32 c; int32 m[8];
             a = stream_read(inp); b = stream_read(inp); c = 3;
             %s
             stream_write(out, a); stream_write(out, b);
             stream_write(out, c + m[0]);
           } |}
        (String.concat "\n" body))
    stmts

let run_sim_ir (ir : Ir.proc_ir) prog feeds =
  let fsmd = Hls.Schedule.compile_proc ir in
  let cfg =
    {
      Sim.Engine.default_config with
      Sim.Engine.feeds;
      drains = [ "out" ];
      max_cycles = 50_000;
    }
  in
  let r = Sim.Engine.simulate ~cfg ~streams:prog.Ast.streams ~fsmds:[ fsmd ] () in
  (r.Sim.Engine.outcome, r.Sim.Engine.drained)

let opt_equivalence =
  QCheck.Test.make ~count:60 ~name:"Opt passes preserve simulated behaviour"
    (QCheck.make gen_prog_src ~print:(fun s -> s))
    (fun src ->
      let prog = elab src in
      let p = Lower.lower_proc prog (List.hd prog.Ast.procs) in
      let feeds = [ ("inp", [ 17L; 42L ]) ] in
      let r1 = run_sim_ir p prog feeds in
      let r2 = run_sim_ir (Opt.optimize p) prog feeds in
      r1 = r2)

(* --- Fault injection --------------------------------------------------------- *)

let test_fault_narrow_compare () =
  let prog = elab (proc_body "int64 a; int64 b; bool r; a = 4294967286; b = 4294967296; r = a > b;") in
  let ir = Lower.lower_proc prog (List.hd prog.Ast.procs) in
  let faulted =
    Faults.Fault.apply
      (Faults.Fault.Narrow_compare
         { fproc = "main"; select = Faults.Fault.All; mask_bits = 5 })
      { Ir.streams = []; externs = []; procs = [ ir ] }
  in
  let p = List.hd faulted.Ir.procs in
  let masks =
    List.filter
      (fun g ->
        match g.Ir.i with Ir.Bin { op = Ast.Band; b = Ir.Imm 31L; _ } -> true | _ -> false)
      (Ir.all_insts p.Ir.body)
  in
  check tint "two mask instructions" 2 (List.length masks)

let test_fault_read_for_write () =
  let prog = elab (proc_body "int32 a[4]; a[0] = 1; a[1] = 2;") in
  let ir = Lower.lower_proc prog (List.hd prog.Ast.procs) in
  let faulted =
    Faults.Fault.apply
      (Faults.Fault.Read_for_write { fproc = "main"; select = Faults.Fault.Nth 1 })
      { Ir.streams = []; externs = []; procs = [ ir ] }
  in
  let p = List.hd faulted.Ir.procs in
  let insts = Ir.all_insts p.Ir.body in
  let stores = List.filter (fun g -> match g.Ir.i with Ir.Store _ -> true | _ -> false) insts in
  let loads = List.filter (fun g -> match g.Ir.i with Ir.Load _ -> true | _ -> false) insts in
  check tint "one store left" 1 (List.length stores);
  check tint "one store became a load" 1 (List.length loads)

let test_fault_only_targets_named_proc () =
  let prog =
    elab
      "process hw first() { int32 a[2]; a[0] = 1; } process hw second() { int32 b[2]; b[0] = 1; }"
  in
  let ir =
    {
      Ir.streams = [];
      externs = [];
      procs = List.map (fun p -> Lower.lower_proc prog p) prog.Ast.procs;
    }
  in
  let faulted =
    Faults.Fault.apply
      (Faults.Fault.Read_for_write { fproc = "second"; select = Faults.Fault.All })
      ir
  in
  let stores name =
    let p = List.find (fun (p : Ir.proc_ir) -> p.Ir.name = name) faulted.Ir.procs in
    List.length
      (List.filter (fun g -> match g.Ir.i with Ir.Store _ -> true | _ -> false)
         (Ir.all_insts p.Ir.body))
  in
  check tint "first untouched" 1 (stores "first");
  check tint "second faulted" 0 (stores "second")

let () =
  Alcotest.run "mir"
    [
      ( "lowering",
        [
          Alcotest.test_case "straight line" `Quick test_lower_straightline;
          Alcotest.test_case "arrays" `Quick test_lower_array;
          Alcotest.test_case "const arrays (ROM)" `Quick test_lower_const_array;
          Alcotest.test_case "shadowed arrays" `Quick test_lower_shadowed_arrays_unique;
          Alcotest.test_case "replication mirrors" `Quick test_lower_mirror;
          Alcotest.test_case "if hoists loads" `Quick test_lower_if_hoists_loads;
          Alcotest.test_case "loop structure" `Quick test_lower_loop_structure;
          Alcotest.test_case "pipeline flag" `Quick test_lower_pipelined_flag;
          Alcotest.test_case "rejects assert" `Quick test_lower_rejects_assert;
          Alcotest.test_case "taps" `Quick test_lower_tap;
          Alcotest.test_case "constant folding at lowering" `Quick test_lower_folds_constants;
        ] );
      ( "opt",
        [
          Alcotest.test_case "copy-prop + dce" `Quick test_opt_copy_prop_dce;
          Alcotest.test_case "keeps side effects" `Quick test_opt_preserves_side_effects;
          Alcotest.test_case "keeps loop condition" `Quick test_opt_keeps_loop_condition;
          QCheck_alcotest.to_alcotest opt_equivalence;
        ] );
      ( "faults",
        [
          Alcotest.test_case "narrow compare" `Quick test_fault_narrow_compare;
          Alcotest.test_case "read for write" `Quick test_fault_read_for_write;
          Alcotest.test_case "targets named proc" `Quick test_fault_only_targets_named_proc;
        ] );
    ]
