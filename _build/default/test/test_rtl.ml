(* RTL layer tests: netlist generation, EP2S180 area estimation, fmax
   model, VHDL emission. *)

open Front
module Ir = Mir.Ir
module Netlist = Rtl.Netlist
module Area = Rtl.Area
module Timing = Rtl.Timing
module Stratix = Device.Stratix

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let fsmd_of src =
  let prog = elab src in
  Hls.Schedule.compile_proc
    (Mir.Opt.optimize (Mir.Lower.lower_proc prog (List.hd prog.Ast.procs)))

let wrap body =
  Printf.sprintf
    "stream int32 inp depth 16; stream int32 out depth 16; process hw main() { %s }" body

(* --- Netlist generation -------------------------------------------------------- *)

let test_gen_module_parts () =
  let f = fsmd_of (wrap "int32 a[8]; int32 x; x = stream_read(inp); a[0] = x; stream_write(out, x * 3);") in
  let m = Rtl.Gen.of_fsmd f in
  let has pred = List.exists pred m.Netlist.prims in
  check tbool "has FSM" true (has (function Netlist.Fsm _ -> true | _ -> false));
  check tbool "has BRAM" true (has (function Netlist.Bram _ -> true | _ -> false));
  check tbool "has registers" true (has (function Netlist.Regbank _ -> true | _ -> false));
  check tbool "has multiplier FU" true
    (has (function Netlist.Fu { fu_op = `Bin Ast.Mul; _ } -> true | _ -> false))

let test_gen_fifo_per_stream () =
  let prog = elab (wrap "int32 x; x = stream_read(inp); stream_write(out, x);") in
  let fsmd =
    Hls.Schedule.compile_proc (Mir.Lower.lower_proc prog (List.hd prog.Ast.procs))
  in
  let d = Rtl.Gen.design ~top_name:"t" [ fsmd ] prog.Ast.streams () in
  check tint "two fifos" 2 (List.length d.Netlist.fifos)

let test_gen_pipe_ctrl () =
  let f =
    fsmd_of
      (wrap
         "int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { int32 x; x = stream_read(inp); stream_write(out, x); }")
  in
  let m = Rtl.Gen.of_fsmd f in
  check tbool "pipeline control logic" true
    (List.exists (function Netlist.Pipe_ctrl _ -> true | _ -> false) m.Netlist.prims)

(* --- Area model ------------------------------------------------------------------ *)

let test_area_stream_is_576_bits () =
  check tint "32-bit stream, 16 deep" 576 (Stratix.stream_ram_bits ~width:32 ~depth:16);
  check tint "16-bit stream packs x18" 288 (Stratix.stream_ram_bits ~width:16 ~depth:16)

let test_area_monotone_in_design_size () =
  let small = fsmd_of (wrap "int32 x; x = stream_read(inp); stream_write(out, x + 1);") in
  let big =
    fsmd_of
      (wrap
         "int32 x; x = stream_read(inp); int32 a; int32 b; int32 c; a = x * 3; b = a * x; c = (b ^ a) + (x & a) - (b | x); int32 m[64]; m[x & 63] = c; stream_write(out, c);")
  in
  let usage f = Area.of_design (Rtl.Gen.design ~top_name:"t" [ f ] [] ()) in
  let us = usage small and ub = usage big in
  check tbool "bigger design, more ALUTs" true (ub.Area.aluts > us.Area.aluts);
  check tbool "bigger design, more interconnect" true (ub.Area.interconnect > us.Area.interconnect)

let test_area_rom_counts_ram_bits () =
  let f = fsmd_of (wrap "const int32 t[64] = { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63 }; int32 x; x = stream_read(inp); stream_write(out, t[x & 63]);") in
  let u = Area.of_design (Rtl.Gen.design ~top_name:"t" [ f ] [] ()) in
  check tbool "ROM bits counted" true (u.Area.ram_bits >= 64 * 36)

let test_area_percentages () =
  let f = fsmd_of (wrap "int32 x; x = stream_read(inp); stream_write(out, x);") in
  let u = Area.of_design (Rtl.Gen.design ~top_name:"t" [ f ] [] ()) in
  List.iter
    (fun (_, pct) -> check tbool "tiny design under 1%" true (pct < 1.0))
    (Area.pct_of_device u)

(* --- Timing model ------------------------------------------------------------------ *)

let base_usage = { Area.zero with Area.aluts = 5000; registers = 6000; interconnect = 15000 }

let test_timing_monotone_in_chain () =
  let t1 = Timing.estimate ~name:"a" ~max_chain_ns:2.0 base_usage in
  let t2 = Timing.estimate ~name:"a" ~max_chain_ns:4.0 base_usage in
  check tbool "longer chain, lower fmax" true (t2.Timing.fmax_mhz < t1.Timing.fmax_mhz)

let test_timing_stream_pressure () =
  let few = Timing.estimate ~name:"a" ~max_chain_ns:2.5 { base_usage with Area.streams = 10 } in
  let many = Timing.estimate ~name:"a" ~max_chain_ns:2.5 { base_usage with Area.streams = 260 } in
  check tbool "many streams, slower clock" true
    (many.Timing.fmax_mhz < few.Timing.fmax_mhz);
  check tbool "matters by >5%" true
    (many.Timing.fmax_mhz /. few.Timing.fmax_mhz < 0.95)

let test_timing_jitter_deterministic () =
  let t1 = Timing.estimate ~name:"same" ~max_chain_ns:3.0 base_usage in
  let t2 = Timing.estimate ~name:"same" ~max_chain_ns:3.0 base_usage in
  check tbool "deterministic" true (t1.Timing.fmax_mhz = t2.Timing.fmax_mhz)

let test_timing_jitter_bounded () =
  (* jitter is within +/-2% of the deterministic period *)
  let t = Timing.estimate ~name:"x" ~max_chain_ns:3.0 base_usage in
  let nominal = 1000.0 /. t.Timing.period_ns in
  check tbool "within 2%" true (Float.abs (t.Timing.fmax_mhz -. nominal) /. nominal <= 0.021)

(* --- Device tables --------------------------------------------------------------------- *)

let test_device_delay_monotone_in_width () =
  let open Front.Ast in
  List.iter
    (fun op ->
      let d w = Stratix.binop_delay_ns op (Tint (Signed, w)) in
      check tbool "wider is slower" true (d W8 <= d W16 && d W16 <= d W32 && d W32 <= d W64))
    [ Add; Sub; Lt; Mul; Div; Shl ]

let test_device_area_monotone_in_width () =
  let open Front.Ast in
  List.iter
    (fun op ->
      let a w = Stratix.binop_aluts op (Tint (Signed, w)) in
      check tbool "wider is bigger" true (a W8 <= a W16 && a W16 <= a W32 && a W32 <= a W64))
    [ Add; Sub; Lt; Band; Div; Shl ]

let test_device_chain_budget_consistent () =
  check tbool "budget below period" true
    (Stratix.chain_budget_ns < Stratix.target_period_ns);
  check tbool "two 16-bit adds chain" true
    (2.0 *. Stratix.binop_delay_ns Front.Ast.Add (Front.Ast.Tint (Front.Ast.Signed, Front.Ast.W16))
    <= Stratix.chain_budget_ns);
  check tbool "one 32-bit add chains" true
    (Stratix.binop_delay_ns Front.Ast.Add Front.Ast.int32_t <= Stratix.chain_budget_ns)

let test_device_m4k_padding () =
  check tint "x9 mode" 9 (Stratix.m4k_data_width 8);
  check tint "x18 mode" 18 (Stratix.m4k_data_width 16);
  check tint "x36 mode" 36 (Stratix.m4k_data_width 32);
  check tint "one M4K block" 1 (Stratix.m4k_blocks_of_bits 576)

(* --- Notify (decode robustness) ---------------------------------------------------------- *)

let test_notify_unknown_code () =
  let notify = Core.Notify.make ~table:[] ~decode:[ ("err", fun w -> [ Int64.to_int w ]) ] ~nabort:true in
  let handler = List.assoc "err" notify.Core.Notify.handlers in
  check tbool "unknown code tolerated" true (handler 99L = `Ok);
  let has needle s =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  match Core.Notify.messages notify with
  | [ msg ] -> check tbool "reported as unknown" true (has "unknown assertion code" msg)
  | _ -> Alcotest.fail "expected one message"

(* --- VHDL ----------------------------------------------------------------------------- *)

let contains needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_vhdl_structure () =
  let prog = elab (wrap "int32 x; x = stream_read(inp); if (x > 0) { stream_write(out, x); } stream_write(out, 0 - x);") in
  let fsmd = Hls.Schedule.compile_proc (Mir.Lower.lower_proc prog (List.hd prog.Ast.procs)) in
  let v = Rtl.Vhdl.emit_design [ fsmd ] prog.Ast.streams in
  check tbool "entity" true (contains "entity main is" v);
  check tbool "architecture" true (contains "architecture fsmd of main is" v);
  check tbool "clock port" true (contains "clk   : in std_logic;" v);
  check tbool "stream handshake ports" true (contains "inp_rdreq : out std_logic;" v);
  check tbool "case dispatch" true (contains "case state is" v);
  check tbool "one when per state" true
    (Hls.Fsmd.num_states fsmd
    = List.length
        (String.split_on_char '\n' v |> List.filter (fun l -> contains "when S" l)))

let test_vhdl_tap_signals () =
  let prog = elab (wrap "int32 x; x = stream_read(inp); assert(x > 0); stream_write(out, x);") in
  let c = Core.Driver.compile ~strategy:Core.Driver.parallelized prog in
  check tbool "tap latch enables emitted" true (contains "tap0_fire <= '1';" c.Core.Driver.vhdl)

let () =
  Alcotest.run "rtl"
    [
      ( "gen",
        [
          Alcotest.test_case "module parts" `Quick test_gen_module_parts;
          Alcotest.test_case "fifo per stream" `Quick test_gen_fifo_per_stream;
          Alcotest.test_case "pipe control" `Quick test_gen_pipe_ctrl;
        ] );
      ( "area",
        [
          Alcotest.test_case "M4K stream bits" `Quick test_area_stream_is_576_bits;
          Alcotest.test_case "monotone" `Quick test_area_monotone_in_design_size;
          Alcotest.test_case "ROM bits" `Quick test_area_rom_counts_ram_bits;
          Alcotest.test_case "percent columns" `Quick test_area_percentages;
        ] );
      ( "timing",
        [
          Alcotest.test_case "chain monotone" `Quick test_timing_monotone_in_chain;
          Alcotest.test_case "stream pressure" `Quick test_timing_stream_pressure;
          Alcotest.test_case "deterministic" `Quick test_timing_jitter_deterministic;
          Alcotest.test_case "jitter bounded" `Quick test_timing_jitter_bounded;
        ] );
      ( "device",
        [
          Alcotest.test_case "delay monotone" `Quick test_device_delay_monotone_in_width;
          Alcotest.test_case "area monotone" `Quick test_device_area_monotone_in_width;
          Alcotest.test_case "chain budget" `Quick test_device_chain_budget_consistent;
          Alcotest.test_case "M4K padding" `Quick test_device_m4k_padding;
        ] );
      ( "notify", [ Alcotest.test_case "unknown code" `Quick test_notify_unknown_code ] );
      ( "vhdl",
        [
          Alcotest.test_case "structure" `Quick test_vhdl_structure;
          Alcotest.test_case "tap signals" `Quick test_vhdl_tap_signals;
        ] );
    ]
