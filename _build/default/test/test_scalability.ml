(* Headline-claim guards: the Section 5.3 scalability results (Figures
   4-5) as regression tests, at N=64 to keep runtime reasonable. *)

open Front
module Driver = Core.Driver
module Area = Rtl.Area
module Timing = Rtl.Timing

let check = Alcotest.check
let tbool = Alcotest.bool

let n = 64

let compiled =
  lazy
    (let prog =
       Typecheck.parse_and_check ~file:"loopback.c" (Apps.Loopback_src.source ~n ())
     in
     let orig = Driver.compile ~strategy:Driver.baseline prog in
     let unopt = Driver.compile ~strategy:Driver.unoptimized prog in
     let shared =
       Driver.compile ~strategy:{ Driver.unoptimized with Driver.share = `Shared 32 } prog
     in
     (orig, unopt, shared))

let test_figure5_ratio () =
  let orig, unopt, shared = Lazy.force compiled in
  let ovh (c : Driver.compiled) = c.Driver.area.Area.aluts - orig.Driver.area.Area.aluts in
  check tbool "sharing reduces ALUT overhead by at least 3x" true
    (float_of_int (ovh unopt) /. float_of_int (ovh shared) >= 3.0)

let test_figure4_ordering () =
  let orig, unopt, shared = Lazy.force compiled in
  let f (c : Driver.compiled) = c.Driver.timing.Timing.fmax_mhz in
  check tbool "unoptimized is the slowest" true (f unopt < f shared);
  check tbool "unoptimized drops well below original" true (f unopt < 0.95 *. f orig);
  check tbool "sharing recovers a substantial part of the loss" true
    (f shared > f unopt +. (0.4 *. (f orig -. f unopt)))

let test_overhead_grows_linearly () =
  (* unoptimized overhead per process is constant: one assertion + one
     stream per stage *)
  let ovh k =
    let prog =
      Typecheck.parse_and_check ~file:"loopback.c" (Apps.Loopback_src.source ~n:k ())
    in
    let orig = Driver.compile ~strategy:Driver.baseline prog in
    let unopt = Driver.compile ~strategy:Driver.unoptimized prog in
    float_of_int (unopt.Driver.area.Area.aluts - orig.Driver.area.Area.aluts)
  in
  let per8 = ovh 8 /. 8.0 and per32 = ovh 32 /. 32.0 in
  check tbool "linear within 10%" true (Float.abs (per8 -. per32) /. per8 < 0.1)

let test_end_to_end_dataflow_at_scale () =
  (* the 64-stage chain still moves data correctly with shared assertions *)
  let prog =
    Typecheck.parse_and_check ~file:"loopback.c" (Apps.Loopback_src.source ~n ())
  in
  let c = Driver.compile ~strategy:{ Driver.optimized with Driver.share = `Shared 32 } prog in
  let count = 8 in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("feed_in", Apps.Loopback_src.feed ~count) ];
          drains = [ "loop_out" ];
          params = Apps.Loopback_src.params ~n ~count;
        }
      c
  in
  check tbool "finished" true (r.Driver.engine.Sim.Engine.outcome = Sim.Engine.Finished);
  check tbool "data intact through 64 stages" true
    (List.assoc "loop_out" r.Driver.engine.Sim.Engine.drained
    = Apps.Loopback_src.feed ~count)

let () =
  Alcotest.run "scalability"
    [
      ( "figures",
        [
          Alcotest.test_case "figure 5 ratio >= 3x" `Slow test_figure5_ratio;
          Alcotest.test_case "figure 4 ordering" `Slow test_figure4_ordering;
          Alcotest.test_case "linear overhead" `Slow test_overhead_grows_linearly;
          Alcotest.test_case "64-stage dataflow" `Slow test_end_to_end_dataflow_at_scale;
        ] );
    ]
