(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the ablations called out in DESIGN.md,
   and runs bechamel micro-benchmarks of the compiler itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # one artifact
     dune exec bench/main.exe -- --help  # list artifacts

   Paper reference numbers are printed next to measured values; see
   EXPERIMENTS.md for the comparison discussion. *)

module Driver = Core.Driver
module Engine = Sim.Engine
module Area = Rtl.Area
module Timing = Rtl.Timing
module Stratix = Device.Stratix

let elab = Front.Typecheck.parse_and_check

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct part whole = 100.0 *. float_of_int part /. float_of_int whole

(* --- Tables 1 and 2: case-study overheads ---------------------------------- *)

type paper_row = {
  p_logic : int * int;
  p_alut : int * int;
  p_regs : int * int;
  p_ram : int * int;
  p_ic : int * int;
  p_fmax : float * float;
}

let paper_table1 =
  {
    p_logic = (13677, 13851);
    p_alut = (7929, 8025);
    p_regs = (10019, 10055);
    p_ram = (222912, 223488);
    p_ic = (24657, 24878);
    p_fmax = (145.7, 142.0);
  }

let paper_table2 =
  {
    p_logic = (12250, 12273);
    p_alut = (6726, 6809);
    p_regs = (9371, 9417);
    p_ram = (141120, 141696);
    p_ic = (19904, 19994);
    p_fmax = (77.5, 79.3);
  }

let overhead_table ~title ~paper (orig : Driver.compiled) (opt : Driver.compiled) =
  section title;
  let cap = Stratix.ep2s180 in
  let row name total (o, a) (po, pa) =
    Printf.printf "  %-18s %9d %9d  %+6d (%+.2f%%)   [paper: %d -> %d, %+.2f%%]\n" name o a
      (a - o)
      (pct (a - o) total)
      po pa
      (pct (pa - po) total)
  in
  let ao = orig.Driver.area and aa = opt.Driver.area in
  Printf.printf "  %-18s %9s %9s  %-16s %s\n" "" "Original" "Assert" "Overhead" "";
  row "Logic used" cap.Stratix.aluts (ao.Area.logic, aa.Area.logic) paper.p_logic;
  row "Comb. ALUT" cap.Stratix.aluts (ao.Area.aluts, aa.Area.aluts) paper.p_alut;
  row "Registers" cap.Stratix.registers (ao.Area.registers, aa.Area.registers) paper.p_regs;
  row "Block RAM bits" cap.Stratix.bram_bits (ao.Area.ram_bits, aa.Area.ram_bits) paper.p_ram;
  row "Block interconnect" cap.Stratix.interconnect (ao.Area.interconnect, aa.Area.interconnect)
    paper.p_ic;
  let fo = orig.Driver.timing.Timing.fmax_mhz and fa = opt.Driver.timing.Timing.fmax_mhz in
  let po, pa = paper.p_fmax in
  Printf.printf "  %-18s %9.1f %9.1f  %+6.1f (%+.2f%%)   [paper: %.1f -> %.1f, %+.2f%%]\n"
    "Frequency (MHz)" fo fa (fa -. fo)
    (100.0 *. (fa -. fo) /. fo)
    po pa
    (100.0 *. (pa -. po) /. po)

let table1 () =
  let prog = elab ~file:"des3.c" (Apps.Des_src.demo_source ()) in
  let orig = Driver.compile ~strategy:Driver.baseline prog in
  let opt = Driver.compile ~strategy:Driver.parallelized prog in
  overhead_table ~title:"Table 1: Triple-DES assertion overhead (EP2S180)"
    ~paper:paper_table1 orig opt;
  (* Section 5.2 also compares against unoptimized assertions: the
     optimized checkers move the comparisons out of the nested loop *)
  let unopt = Driver.compile ~strategy:Driver.unoptimized prog in
  Printf.printf
    "  (unoptimized assertions: %+d ALUTs and %d states vs %+d ALUTs and %d states optimized)\n"
    (unopt.Driver.area.Area.aluts - orig.Driver.area.Area.aluts)
    (Hls.Fsmd.num_states (List.hd unopt.Driver.fsmds))
    (opt.Driver.area.Area.aluts - orig.Driver.area.Area.aluts)
    (Hls.Fsmd.num_states (List.hd opt.Driver.fsmds));
  (* prove the design still decrypts in circuit *)
  let text = "Table one validation run." in
  let cipher = Apps.Des_src.demo_ciphertext text in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("cipher_in", cipher) ];
          drains = [ "plain_out" ];
          params = [ ("des3", [ ("nblocks", Int64.of_int (List.length cipher)) ]) ];
        }
      opt
  in
  Printf.printf "  (validated: %d blocks decrypted to the oracle plaintext in %d cycles)\n"
    (List.length cipher)
    r.Driver.engine.Engine.cycles

let table2 () =
  let prog = elab ~file:"edge.c" (Apps.Edge_src.demo_source ()) in
  let orig = Driver.compile ~strategy:Driver.baseline prog in
  let opt = Driver.compile ~strategy:Driver.parallelized prog in
  overhead_table ~title:"Table 2: Edge-detection assertion overhead (EP2S180)"
    ~paper:paper_table2 orig opt;
  let w = Apps.Edge_src.default_width and h = 16 in
  let img = Apps.Edge_ref.test_image ~w ~h in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("pixels_in", Apps.Edge_ref.to_stream img) ];
          drains = [ "pixels_out" ];
          params = [ ("edge", [ ("width", Int64.of_int w); ("height", Int64.of_int h) ]) ];
        }
      opt
  in
  let ok =
    List.assoc "pixels_out" r.Driver.engine.Engine.drained
    = Array.to_list (Array.map Int64.of_int (Apps.Edge_ref.filter ~w ~h img))
  in
  Printf.printf "  (validated: %dx%d image filtered, matches reference: %b)\n" w h ok

(* --- Tables 3 and 4: latency/rate overhead --------------------------------- *)

let t3_strategy = { Driver.optimized with Driver.replicate = false; share = `Per_proc }
let t4_strategy = { Driver.optimized with Driver.share = `Per_proc }

let kernel_cycles src strategy =
  let n = 64 in
  let c = Driver.compile ~strategy (elab ~file:"kernel.c" src) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("input", Apps.Micro_src.feed_positive n) ];
          drains = [ "output" ];
          params = [ ("kernel", [ ("n", Int64.of_int n) ]) ];
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Finished -> (r.Driver.engine.Engine.cycles, r.Driver.engine.Engine.pipes)
  | _ -> failwith "kernel did not finish"

let table3 () =
  section "Table 3: non-pipelined single-comparison assertion latency overhead";
  Printf.printf "  %-24s %12s %12s   %s\n" "Assertion data" "Unoptimized" "Optimized"
    "[paper]";
  let row name src (paper_u, paper_o) =
    let per strategy =
      let total, _ = kernel_cycles src strategy in
      total / 64
    in
    let base = per Driver.baseline in
    let u = per Driver.unoptimized - base in
    let o = per t3_strategy - base in
    Printf.printf "  %-24s %12d %12d   [%d / %d]\n" name u o paper_u paper_o
  in
  row "Scalar variable" Apps.Micro_src.scalar_nonpipelined (1, 0);
  row "Array (non-consecutive)" Apps.Micro_src.array_nonconsecutive (1, 0);
  row "Array (consecutive)" Apps.Micro_src.array_consecutive (2, 1)

let table4 () =
  section "Table 4: pipelined single-comparison assertion overhead (latency, rate)";
  Printf.printf "  %-16s %-18s %-18s %-18s\n" "Assertion data" "Original" "Unoptimized"
    "Optimized";
  let stats src strategy =
    let _, pipes = kernel_cycles src strategy in
    match List.filter (fun (p : Engine.pipe_stats) -> p.Engine.issues > 0) pipes with
    | [ p ] -> (p.Engine.latency_measured, p.Engine.ii_measured)
    | _ -> failwith "expected one pipe"
  in
  let row name src paper =
    let bl, br = stats src Driver.baseline in
    let ul, ur = stats src Driver.unoptimized in
    let ol, or_ = stats src t4_strategy in
    Printf.printf "  %-16s lat %d rate %-6.2f lat %d rate %-6.2f lat %d rate %-6.2f %s\n" name
      bl br ul ur ol or_ paper
  in
  row "Scalar variable" Apps.Micro_src.scalar_pipelined
    "[paper: (2,1) -> (3,2) -> (2,1)]";
  row "Array" Apps.Micro_src.array_pipelined
    "[paper: (2,2) -> (4,3) -> (3,2); replication hides the extract read here]"

(* --- Figures 4 and 5: scalability ------------------------------------------- *)

let sweep_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let loopback_compile n strategy =
  Driver.compile ~strategy (elab ~file:"loopback.c" (Apps.Loopback_src.source ~n ()))

let figure4 () =
  section "Figure 4: assertion frequency scalability (fmax in MHz vs processes)";
  Printf.printf "  %4s %10s %12s %12s\n" "N" "original" "unoptimized" "optimized";
  List.iter
    (fun n ->
      let f s = (loopback_compile n s).Driver.timing.Timing.fmax_mhz in
      Printf.printf "  %4d %10.1f %12.1f %12.1f\n" n (f Driver.baseline)
        (f Driver.unoptimized)
        (f { Driver.unoptimized with Driver.share = `Shared 32 }))
    sweep_sizes;
  print_endline
    "  [paper at N=128: original 190.6, unoptimized 154 (-18.8%), optimized 189.3]"

let figure5 () =
  section "Figure 5: assertion resource scalability (ALUT overhead % of EP2S180)";
  Printf.printf "  %4s %12s %12s %9s\n" "N" "unoptimized" "optimized" "ratio";
  List.iter
    (fun n ->
      let aluts s = (loopback_compile n s).Driver.area.Area.aluts in
      let base = aluts Driver.baseline in
      let u = pct (aluts Driver.unoptimized - base) Stratix.ep2s180.Stratix.aluts in
      let o =
        pct
          (aluts { Driver.unoptimized with Driver.share = `Shared 32 } - base)
          Stratix.ep2s180.Stratix.aluts
      in
      Printf.printf "  %4d %11.2f%% %11.2f%% %8.1fx\n" n u o (u /. o))
    sweep_sizes;
  print_endline "  [paper at N=128: unoptimized 4.07%, optimized 1.34% (>3x reduction)]"

(* --- Section 5.1: in-circuit verification and debugging ------------------------ *)

let sec51 () =
  section "Section 5.1: bugs invisible to software simulation";
  (* example 1: narrowed comparison (Figure 3) *)
  let fig3 =
    {| stream int32 out depth 4;
       process hw check() {
         int64 c1; int64 c2; int32 addr;
         c1 = 4294967296; c2 = 4294967286; addr = 0;
         if (c2 > c1) { addr = addr - 10; }
         assert(addr >= 0);
         stream_write(out, addr);
       } |}
  in
  let faults =
    [ Faults.Fault.Narrow_compare
        { fproc = "check"; select = Faults.Fault.All; mask_bits = 5 } ]
  in
  let c = Driver.compile ~strategy:Driver.parallelized ~faults (elab ~file:"fig3.c" fig3) in
  let sw = Driver.software_sim c in
  let hw = Driver.simulate c in
  Printf.printf "  Figure 3 (5-bit comparison fault):  software %s   in-circuit %s\n"
    (if Interp.ok sw then "PASS" else "FAIL")
    (match hw.Driver.engine.Engine.outcome with
    | Engine.Aborted _ -> "CAUGHT"
    | _ -> "missed");
  (* example 2: hang located by assert(0) tracing *)
  let hang_src =
    {| stream int32 din depth 16; stream int32 dout depth 16;
       process hw worker(int32 n) {
         int32 flags[4]; int32 i;
         assert(0);
         flags[0] = 0;
         for (i = 0; i < n; i = i + 1) {
           int32 v; v = stream_read(din); stream_write(dout, v + 1);
         }
         assert(0);
         flags[0] = 1;
         int32 done; done = flags[0];
         while (done == 0) { done = flags[0]; }
         assert(0);
       } |}
  in
  let faults = [ Faults.Fault.Read_for_write { fproc = "worker"; select = Faults.Fault.Nth 1 } ] in
  let strategy = { Driver.unoptimized with Driver.nabort = true } in
  let c = Driver.compile ~strategy ~faults (elab ~file:"worker.c" hang_src) in
  let options =
    {
      Driver.default_sim_options with
      Driver.feeds = [ ("din", [ 1L; 2L; 3L; 4L ]) ];
      drains = [ "dout" ];
      params = [ ("worker", [ ("n", 4L) ]) ];
      max_cycles = 3_000;
    }
  in
  let sw = Driver.software_sim ~options ~nabort:true c in
  let hw = Driver.simulate ~options c in
  Printf.printf
    "  DES-style hang (write became read): software trace %d points, in-circuit trace %d \
     points -> hang localized between points %d and %d\n"
    (List.length sw.Interp.failures)
    (List.length hw.Driver.failed_assertions)
    (List.length hw.Driver.failed_assertions)
    (List.length hw.Driver.failed_assertions + 1)

(* --- Ablations ------------------------------------------------------------------- *)

let ablation_sharing_width () =
  section "Ablation: failure-channel sharing width (128-process loopback)";
  Printf.printf "  %6s %10s %14s\n" "width" "streams" "ALUT overhead";
  let prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n:128 ()) in
  let base = (Driver.compile ~strategy:Driver.baseline prog).Driver.area.Area.aluts in
  List.iter
    (fun bits ->
      let c =
        Driver.compile ~strategy:{ Driver.unoptimized with Driver.share = `Shared bits } prog
      in
      Printf.printf "  %6d %10d %13.2f%%\n" bits
        (c.Driver.area.Area.streams)
        (pct (c.Driver.area.Area.aluts - base) Stratix.ep2s180.Stratix.aluts))
    [ 1; 2; 4; 8; 16; 32; 63 ]

let ablation_replication () =
  section "Ablation: resource replication on the pipelined array kernel";
  let stats strategy =
    let _, pipes = kernel_cycles Apps.Micro_src.array_pipelined strategy in
    match List.filter (fun (p : Engine.pipe_stats) -> p.Engine.issues > 0) pipes with
    | [ p ] -> (p.Engine.latency_measured, p.Engine.ii_measured)
    | _ -> failwith "expected one pipe"
  in
  let area strategy =
    let c = Driver.compile ~strategy (elab ~file:"kernel.c" Apps.Micro_src.array_pipelined) in
    c.Driver.area.Area.ram_bits
  in
  let l1, r1 = stats { t4_strategy with Driver.replicate = false } in
  let l2, r2 = stats t4_strategy in
  Printf.printf "  without replication: latency %d rate %.2f (RAM %d bits)\n" l1 r1
    (area { t4_strategy with Driver.replicate = false });
  Printf.printf "  with replication:    latency %d rate %.2f (RAM %d bits)\n" l2 r2
    (area t4_strategy);
  Printf.printf "  [paper: replication traded one extra RAM for a 33%% rate improvement]\n"

let ablation_binding () =
  section "Ablation: functional-unit sharing (Triple-DES datapath)";
  let prog = elab ~file:"des3.c" (Apps.Des_src.demo_source ()) in
  let c = Driver.compile ~strategy:Driver.baseline prog in
  let fsmd = List.hd c.Driver.fsmds in
  let shared = Hls.Binding.bind ~policy:`Shared fsmd in
  let flat = Hls.Binding.bind ~policy:`Flat fsmd in
  Printf.printf "  operations: %d, units with sharing: %d, without: %d (%.1fx reduction)\n"
    shared.Hls.Binding.total_ops shared.Hls.Binding.total_units flat.Hls.Binding.total_units
    (float_of_int flat.Hls.Binding.total_units /. float_of_int shared.Hls.Binding.total_units)

let ablation_checker_latency () =
  section "Ablation: checker pipeline latency vs notification delay";
  let src =
    {| stream int32 input depth 16; stream int32 output depth 16;
       process hw kernel(int32 n) {
         int32 i;
         #pragma pipeline
         for (i = 0; i < n; i = i + 1) {
           int32 x; x = stream_read(input);
           assert(x < 1000);
           stream_write(output, x);
         }
       } |}
  in
  Printf.printf "  %8s %16s %18s\n" "latency" "total cycles" "failure reported at";
  List.iter
    (fun lat ->
      let strategy =
        { Driver.parallelized with Driver.checker_latency = Some lat; nabort = true }
      in
      let c = Driver.compile ~strategy (elab ~file:"k.c" src) in
      let n = 32 in
      let feeds = List.init n (fun i -> if i = 10 then 5000L else Int64.of_int i) in
      let r =
        Driver.simulate
          ~options:
            {
              Driver.default_sim_options with
              Driver.feeds = [ ("input", feeds) ];
              drains = [ "output" ];
              params = [ ("kernel", [ ("n", Int64.of_int n) ]) ];
            }
          c
      in
      Printf.printf "  %8d %16d %18s\n" lat r.Driver.engine.Engine.cycles
        (if r.Driver.failed_assertions <> [] then "yes (application unaffected)" else "MISSED"))
    [ 1; 4; 16; 64 ]

let ablation_transport () =
  section "Ablation: failure transport (Impulse-C streams vs Carte-C DMA, Section 4.3)";
  let prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n:32 ()) in
  let base = Driver.compile ~strategy:Driver.baseline prog in
  Printf.printf "  %-28s %8s %14s %10s\n" "transport" "channels" "ALUT overhead" "fmax";
  List.iter
    (fun (name, strategy) ->
      let c = Driver.compile ~strategy prog in
      Printf.printf "  %-28s %8d %13.2f%% %9.1f\n" name
        (List.length c.Driver.plan.Core.Share.streams)
        (pct (c.Driver.area.Area.aluts - base.Driver.area.Area.aluts)
           Stratix.ep2s180.Stratix.aluts)
        c.Driver.timing.Timing.fmax_mhz)
    [
      ("stream per process", Driver.parallelized);
      ("shared 32-bit streams", Driver.optimized);
      ("DMA mailbox (Carte-C)", Driver.carte);
    ];
  print_endline
    "  (DMA batches notification: the CPU polls every 32 cycles instead of per message)"

(* --- Future work: timing assertions (Section 6) -------------------------------------- *)

let timing_demo () =
  section "Section 6 future work: timing assertions (cycle budgets between code points)";
  let src =
    {| stream int32 inp depth 4; stream int32 out depth 4;
       process hw producer(int32 n) {
         int32 i;
         for (i = 0; i < n; i = i + 1) {
           assert(true);
           stream_write(inp, i);
           assert(true);
         }
       }
       process hw consumer(int32 n) {
         int32 i;
         for (i = 0; i < n; i = i + 1) {
           int32 v; v = stream_read(inp);
           if ((v & 7) == 7) {
             int32 k; int32 acc; acc = v;
             for (k = 0; k < 40; k = k + 1) { acc = acc + k; }
             v = acc;
           }
           stream_write(out, v);
         }
       } |}
  in
  let c = Driver.compile ~strategy:Driver.parallelized (elab ~file:"timed.c" src) in
  Printf.printf "  %8s %30s\n" "budget" "outcome";
  List.iter
    (fun budget ->
      let r =
        Driver.simulate
          ~options:
            {
              Driver.default_sim_options with
              Driver.drains = [ "out" ];
              params = [ ("producer", [ ("n", 32L) ]); ("consumer", [ ("n", 32L) ]) ];
              timing_checks =
                [ { Sim.Engine.tc_name = "service-rate"; from_tap = 0; to_tap = 1;
                    budget; soft = true } ];
              max_cycles = 10_000;
            }
          c
      in
      Printf.printf "  %8d %30s\n" budget
        (match r.Driver.engine.Engine.timing_violations with
        | [] -> "met"
        | vs -> Printf.sprintf "%d violations (first at cycle %d)" (List.length vs) (snd (List.hd vs))))
    [ 4; 8; 16; 64; 300 ]

(* --- Fault-injection campaign -------------------------------------------------------- *)

(* One timed sweep at a given job count and evaluation mode, from a
   cold in-memory compile cache so the hit/miss split is a property of
   the sweep and not of whoever ran before us.  The disk tier (when
   INCA_CACHE_DIR is set) is deliberately left alone: its cross-run
   hits are exactly what the artifact reports. *)
let timed_campaign ?(prune_hangs = true) ~mode ~jobs workloads =
  Exec.Cache.reset_memory ();
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let config =
    { Campaign.default_config with Campaign.mode; jobs = Some jobs; prune_hangs }
  in
  let report = Campaign.run ~config ~progress:(fun _ -> incr n) workloads in
  let dt = Unix.gettimeofday () -. t0 in
  (report, !n, dt, Exec.Cache.stats ())

let campaign_bench () =
  section "Fault-injection campaign: assertion coverage and sweep throughput";
  let workloads = Campaign.bundled () in
  let jobs = Exec.Pool.default_jobs () in
  (* A/B at the same job count: from-reset (compile + simulate every
     mutant from cycle zero) vs fork-point (restore the pre-activation
     snapshot).  Classification must agree exactly. *)
  let reset_report, n, reset_dt, _ =
    timed_campaign ~mode:Campaign.From_reset ~jobs workloads
  in
  let serial_report, _, serial_dt, _ =
    timed_campaign ~mode:Campaign.Fork ~jobs:1 workloads
  in
  let report, _, dt, stats = timed_campaign ~mode:Campaign.Fork ~jobs workloads in
  (* Hang pruning A/B: the same sweep with the liveness prefilter off
     must simulate every provably hanging mutant to the same class.
     Pruning may only change *how* a hang is established, never what
     the campaign concludes. *)
  let noprune_report, _, noprune_dt, _ =
    timed_campaign ~prune_hangs:false ~mode:Campaign.Fork ~jobs workloads
  in
  print_endline (Campaign.render report);
  if Json.to_string (Campaign.json_of report) <> Json.to_string (Campaign.json_of serial_report) then begin
    Printf.eprintf "  DETERMINISM VIOLATION: %d-domain report differs from serial\n" jobs;
    exit 1
  end;
  if Campaign.render_classes report <> Campaign.render_classes reset_report then begin
    prerr_endline
      "  INVARIANT VIOLATION: fork-point classification differs from from-reset";
    exit 1
  end;
  if Campaign.render_classes report <> Campaign.render_classes noprune_report then begin
    prerr_endline
      "  INVARIANT VIOLATION: hang pruning changed the classification map";
    exit 1
  end;
  if report.Campaign.pruned_hang = 0 then begin
    prerr_endline
      "  FAIL: liveness prefilter proved no bundled mutant certainly hanging";
    exit 1
  end;
  if noprune_report.Campaign.pruned_hang <> 0 then begin
    prerr_endline "  INVARIANT VIOLATION: --no-prune sweep still pruned mutants";
    exit 1
  end;
  let mps = float_of_int n /. dt in
  let reset_mps = float_of_int n /. reset_dt in
  let speedup = serial_dt /. dt in
  let fork_speedup = reset_dt /. dt in
  Printf.printf
    "  %d mutant runs: serial %.2fs, %d domain(s) %.2fs (%.2fx), %.1f mutants/sec\n"
    n serial_dt jobs dt speedup mps;
  Printf.printf
    "  from-reset: %.2fs (%.1f mutants/sec); fork-point is %.2fx faster \
     (classifications identical)\n"
    reset_dt reset_mps fork_speedup;
  Printf.printf
    "  liveness prefilter: %d hang-class mutant runs pruned (sweep %.2fs vs %.2fs \
     unpruned; classifications identical)\n"
    report.Campaign.pruned_hang dt noprune_dt;
  Printf.printf "  compile cache: %d hits / %d misses per sweep (reports byte-identical)\n"
    stats.Exec.Cache.hits stats.Exec.Cache.misses;
  (match Exec.Cache.dir () with
  | Some dir ->
      Printf.printf "  disk store (%s): %d hits / %d misses this sweep\n" dir
        stats.Exec.Cache.disk_hits stats.Exec.Cache.disk_misses
  | None -> ());
  (* machine-readable artifact: throughput, parallel speedup, the
     fork-vs-reset split and cache effectiveness (memory and disk
     tiers) plus the full report (per-strategy detection counts and
     mean cycles-to-detection) *)
  let oc = open_out "BENCH_campaign.json" in
  Printf.fprintf oc
    "{\"mutant_runs\": %d, \"elapsed_seconds\": %.3f, \"serial_wall_seconds\": %.3f, \
     \"wall_seconds\": %.3f, \"jobs\": %d, \"speedup\": %.3f, \"mutants_per_second\": %.1f, \
     \"from_reset_wall_seconds\": %.3f, \"from_reset_mutants_per_second\": %.1f, \
     \"fork_speedup_vs_reset\": %.3f, \"pruned_static\": %d, \"pruned_hang\": %d, \
     \"no_prune_wall_seconds\": %.3f, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"disk_hits\": %d, \"disk_misses\": %d, \
     \"report\": %s}\n"
    n dt serial_dt dt jobs speedup mps reset_dt reset_mps fork_speedup
    report.Campaign.pruned_static report.Campaign.pruned_hang noprune_dt
    stats.Exec.Cache.hits stats.Exec.Cache.misses
    stats.Exec.Cache.disk_hits stats.Exec.Cache.disk_misses
    (Json.to_string (Campaign.json_of report));
  close_out oc;
  print_endline "  wrote BENCH_campaign.json"

(* CI smoke: a single bundled workload, capped, asserting the compile
   cache actually absorbed the per-mutant front-end work. *)
let campaign_smoke () =
  section "Campaign smoke: FIR sweep, compile-cache effectiveness";
  let workloads =
    List.filter (fun (w : Campaign.workload) -> w.Campaign.wname = "fir")
      (Campaign.bundled ())
  in
  if workloads = [] then begin
    prerr_endline "  no bundled FIR workload";
    exit 1
  end;
  Exec.Cache.reset_memory ();
  let config =
    { Campaign.default_config with Campaign.max_mutants = Some 8; jobs = None }
  in
  let report = Campaign.run ~config workloads in
  let stats = Exec.Cache.stats () in
  Printf.printf "  %d mutants swept, cache: %d hits / %d misses\n"
    (List.length report.Campaign.runs) stats.Exec.Cache.hits stats.Exec.Cache.misses;
  if stats.Exec.Cache.hits = 0 then begin
    prerr_endline "  FAIL: compile cache recorded no hits across a mutant sweep";
    exit 1
  end;
  print_endline "  ok: cache_hits > 0"

(* --- Assertion mining ---------------------------------------------------------------- *)

(* Sweep the miner over the four bundled case studies with the bundled
   campaign stimuli as base, capped so the artifact stays interactive:
   each workload traces 5 stimuli, keeps at most 8 candidates, and
   ranks each against at most 10 mutants. *)
let mine_bench () =
  section "Assertion mining: invariants ranked by mutant kills";
  Exec.Cache.reset_memory ();
  let jobs = Exec.Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  let config =
    {
      Mine.Rank.default_config with
      Mine.Rank.max_candidates = 8;
      max_mutants = Some 10;
      jobs = Some jobs;
    }
  in
  let results =
    List.map
      (fun (w : Campaign.workload) ->
        let r =
          Mine.Rank.mine ~config ~name:w.Campaign.wname ~options:w.Campaign.options
            w.Campaign.program
        in
        print_string (Mine.Rank.render ~top:5 r);
        print_newline ();
        r)
      (Campaign.bundled ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  let total_survivors = List.fold_left (fun acc r -> acc + r.Mine.Rank.survivors) 0 results in
  let total_marginal =
    List.fold_left
      (fun acc (r : Mine.Rank.result) ->
        acc + List.fold_left (fun a s -> a + s.Mine.Rank.marginal) 0 r.Mine.Rank.scored)
      0 results
  in
  let stats = Exec.Cache.stats () in
  Printf.printf "  %d survivors across %d workloads, %d marginal detections, %.2fs\n"
    total_survivors (List.length results) total_marginal dt;
  Printf.printf "  compile cache: %d hits / %d misses (%d sweep domain(s))\n"
    stats.Exec.Cache.hits stats.Exec.Cache.misses jobs;
  let oc = open_out "BENCH_mine.json" in
  Printf.fprintf oc
    "{\"elapsed_seconds\": %.3f, \"survivors\": %d, \"marginal_detections\": %d, \
     \"jobs\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \"workloads\": [%s]}\n"
    dt total_survivors total_marginal jobs stats.Exec.Cache.hits stats.Exec.Cache.misses
    (String.concat ", "
       (List.map (fun r -> Json.to_string (Mine.Rank.json_of ~top:5 r)) results));
  close_out oc;
  print_endline "  wrote BENCH_mine.json"

(* --- Static assertion verification --------------------------------------------------- *)

(* Classify every bundled app's assertions with the abstract
   interpreter and price the --prune-proved dividend: the area and fmax
   a design gives back when checkers for statically proved assertions
   are not synthesized.  Self-gating: at least one assertion must be
   proved across the bundle and pruning it must save both ALUTs and
   registers, else the artifact exits 1. *)
let check_bench () =
  section "Static verification: assertion classes and the --prune-proved dividend";
  let strategy = Driver.parallelized in
  Printf.printf "  %-8s %9s %7s %9s %8s %7s %7s %7s %11s %13s\n" "app" "asserts" "proved"
    "violated" "unknown" "pruned" "aluts" "regs" "fmax(MHz)" "liveness";
  let rows =
    List.map
      (fun (w : Campaign.workload) ->
        let name = w.Campaign.wname and prog = w.Campaign.program in
        let opts = w.Campaign.options in
        let live =
          Analysis.Live.analyze ~params:opts.Driver.params
            ~feeds:(List.map (fun (s, vs) -> (s, List.length vs)) opts.Driver.feeds)
            ~drains:opts.Driver.drains prog
        in
        let r = Analysis.Absint.analyze prog in
        let p, v, u =
          List.fold_left
            (fun (p, v, u) (vd : Analysis.Absint.verdict) ->
              match vd.Analysis.Absint.vclass with
              | Analysis.Absint.Proved -> (p + 1, v, u)
              | Analysis.Absint.Violated _ -> (p, v + 1, u)
              | Analysis.Absint.Unknown -> (p, v, u + 1))
            (0, 0, 0) r.Analysis.Absint.verdicts
        in
        let base = Driver.compile ~strategy prog in
        let pruned = Driver.compile ~strategy ~prune_proved:true prog in
        let alut_d = base.Driver.area.Area.aluts - pruned.Driver.area.Area.aluts in
        let reg_d = base.Driver.area.Area.registers - pruned.Driver.area.Area.registers in
        let fmax_d =
          pruned.Driver.timing.Timing.fmax_mhz -. base.Driver.timing.Timing.fmax_mhz
        in
        let ps = pruned.Driver.pruned in
        Printf.printf "  %-8s %9d %7d %9d %8d %7d %+7d %+7d %+11.1f %13s\n" name
          (p + v + u) p v u ps.Driver.absint_pruned alut_d reg_d fmax_d
          (Analysis.Live.class_name live);
        (name, p + v + u, p, v, u, alut_d, reg_d, fmax_d, ps, live))
      (Campaign.bundled ())
  in
  let total_proved =
    List.fold_left (fun acc (_, _, p, _, _, _, _, _, _, _) -> acc + p) 0 rows
  in
  let dividend =
    List.exists (fun (_, _, p, _, _, a, rg, _, _, _) -> p > 0 && a > 0 && rg > 0) rows
  in
  let liveness_proved =
    List.length
      (List.filter
         (fun (_, _, _, _, _, _, _, _, _, l) ->
           match l with Analysis.Live.Deadlock_free _ -> true | _ -> false)
         rows)
  in
  let false_deadlocks =
    List.filter_map
      (fun (name, _, _, _, _, _, _, _, _, l) ->
        match l with Analysis.Live.Deadlock _ -> Some name | _ -> None)
      rows
  in
  let oc = open_out "BENCH_check.json" in
  Printf.fprintf oc
    "{\"strategy\": \"parallelized\", \"total_proved\": %d, \"liveness_proved\": %d, \
     \"apps\": [%s]}\n"
    total_proved liveness_proved
    (String.concat ", "
       (List.map
          (fun (name, n, p, v, u, a, rg, f, (ps : Driver.prune_stats), live) ->
            Printf.sprintf
              "{\"name\": \"%s\", \"assertions\": %d, \"proved\": %d, \"violated\": %d, \
               \"unknown\": %d, \"pruned_absint\": %d, \"pruned_induction\": %d, \
               \"alut_delta\": %d, \"reg_delta\": %d, \"fmax_delta_mhz\": %.2f, \
               \"liveness\": \"%s\"}"
              name n p v u ps.Driver.absint_pruned ps.Driver.induction_pruned a rg f
              (Analysis.Live.class_name live))
          rows));
  close_out oc;
  print_endline "  wrote BENCH_check.json";
  if total_proved = 0 then begin
    prerr_endline "  FAIL: no bundled assertion was statically proved";
    exit 1
  end;
  if not dividend then begin
    prerr_endline "  FAIL: pruning the proved assertions saved no ALUTs/registers";
    exit 1
  end;
  if false_deadlocks <> [] then begin
    Printf.eprintf "  FAIL: liveness analyzer claims a false deadlock on: %s\n"
      (String.concat ", " false_deadlocks);
    exit 1
  end;
  if liveness_proved = 0 then begin
    prerr_endline "  FAIL: no bundled app was proved deadlock-free";
    exit 1
  end;
  Printf.printf
    "  ok: %d proved, pruning pays a positive ALUT and register dividend; \
     %d/%d apps proved deadlock-free\n"
    total_proved liveness_proved (List.length rows)

(* --- Bounded model checking ----------------------------------------------------------- *)

(* Prove the examples corpus with the netlist-level BMC: bounded search
   to depth 8 plus 4-induction, every counterexample replayed through
   the cycle-accurate simulator before it counts.  Self-gating: the
   sweep must confirm at least one genuine violation (mine_demo's
   negative-feed underflow) and prove at least one assertion by
   induction that the abstract interpreter leaves Unknown (prove_demo's
   masked nibble), and pruning the induction-proved checkers must save
   both ALUTs and registers.  The JSON artifact carries counts and
   solver statistics only — no wall-clock — and is asserted
   byte-identical serial vs parallel. *)
let prove_bench () =
  section "BMC: bounded proofs, k-induction, counterexample replay";
  let read_file path =
    if not (Sys.file_exists path) then
      failwith (path ^ " not found (run from the project root)");
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let depth = 8 and induction = 4 in
  let files = [ "mine_demo.c"; "prove_demo.c"; "dct.c"; "fir.c" ] in
  let jobs = Exec.Pool.default_jobs () in
  let prove_file ~jobs name =
    let prog = elab ~file:name (read_file (Filename.concat "examples" name)) in
    let f = Core.Verify.front_of prog in
    let absint = Analysis.Absint.analyze prog in
    let results =
      List.map
        (fun (o : _ Exec.Pool.outcome) ->
          match o.Exec.Pool.value with
          | Ok r -> r
          | Error m -> failwith (name ^ ": prove worker failed: " ^ m))
        (Exec.Pool.map ~jobs
           (fun id ->
             fst (Core.Verify.check_target ~depth ~induction f ~absint id))
           (Core.Verify.target_ids f))
    in
    {
      Analysis.Verdict.p_depth = depth;
      p_induction = induction;
      p_results = results;
    }
  in
  let t0 = Unix.gettimeofday () in
  let reports = List.map (fun n -> (n, prove_file ~jobs n)) files in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (name, r) ->
      let serial = prove_file ~jobs:1 name in
      if
        Json.to_string (Analysis.Verdict.json_of ~file:name r)
        <> Json.to_string (Analysis.Verdict.json_of ~file:name serial)
      then begin
        Printf.eprintf
          "  DETERMINISM VIOLATION: %s prove report differs from serial\n" name;
        exit 1
      end)
    reports;
  Printf.printf "  %-14s %7s %9s %8s %8s %10s\n" "file" "proved" "violated"
    "bounded" "unknown" "conflicts";
  List.iter
    (fun (name, r) ->
      let p, v, b, u = Analysis.Verdict.tally r in
      Printf.printf "  %-14s %7d %9d %8d %8d %10d\n" name p v b u
        (Analysis.Verdict.conflicts r))
    reports;
  let tp, tv, tb, tu =
    List.fold_left
      (fun (p, v, b, u) (_, r) ->
        let p', v', b', u' = Analysis.Verdict.tally r in
        (p + p', v + v', b + b', u + u'))
      (0, 0, 0, 0) reports
  in
  let sum f =
    List.fold_left
      (fun acc (_, r) ->
        List.fold_left (fun a pr -> a + f pr) acc r.Analysis.Verdict.p_results)
      0 reports
  in
  let conflicts = sum (fun pr -> pr.Analysis.Verdict.pr_conflicts) in
  let decisions = sum (fun pr -> pr.Analysis.Verdict.pr_decisions) in
  let propagations = sum (fun pr -> pr.Analysis.Verdict.pr_propagations) in
  Printf.printf
    "  %d assertions: %d proved, %d violated, %d bounded, %d unknown\n"
    (tp + tv + tb + tu) tp tv tb tu;
  Printf.printf "  solver: %d conflicts, %d decisions in %.2fs (%.0f conflicts/sec)\n"
    conflicts decisions dt
    (float_of_int conflicts /. dt);
  let has cls r =
    List.exists (fun pr -> cls pr.Analysis.Verdict.pr_class) r.Analysis.Verdict.p_results
  in
  if
    not
      (has (function Analysis.Verdict.Bviolated _ -> true | _ -> false)
         (List.assoc "mine_demo.c" reports))
  then begin
    prerr_endline "  FAIL: mine_demo's underflow was not confirmed Violated";
    exit 1
  end;
  if
    not
      (has (function Analysis.Verdict.Bproved _ -> true | _ -> false)
         (List.assoc "prove_demo.c" reports))
  then begin
    prerr_endline "  FAIL: no prove_demo assertion was proved by induction";
    exit 1
  end;
  (* the induction dividend: prune what induction proved and price it *)
  let demo =
    elab ~file:"prove_demo.c" (read_file "examples/prove_demo.c")
  in
  let rep, _ = Core.Verify.prove ~depth ~induction demo in
  let keys = Core.Verify.induction_proved_keys rep in
  let base = Driver.compile ~strategy:Driver.parallelized demo in
  let pruned =
    Driver.compile ~strategy:Driver.parallelized ~induction_proved:keys demo
  in
  let alut_d = base.Driver.area.Area.aluts - pruned.Driver.area.Area.aluts in
  let reg_d =
    base.Driver.area.Area.registers - pruned.Driver.area.Area.registers
  in
  Printf.printf
    "  induction dividend: %d checker(s) pruned, %+d ALUTs, %+d registers\n"
    (List.length keys) (-alut_d) (-reg_d);
  if keys = [] || alut_d <= 0 || reg_d <= 0 then begin
    prerr_endline
      "  FAIL: pruning the induction-proved checkers saved no ALUTs/registers";
    exit 1
  end;
  let oc = open_out "BENCH_prove.json" in
  Printf.fprintf oc
    "{\"depth\": %d, \"induction\": %d, \"proved\": %d, \"violated\": %d, \
     \"bounded\": %d, \"unknown\": %d, \"conflicts\": %d, \"decisions\": %d, \
     \"propagations\": %d, \"induction_pruned\": %d, \"alut_delta\": %d, \
     \"reg_delta\": %d, \"files\": [%s]}\n"
    depth induction tp tv tb tu conflicts decisions propagations
    (List.length keys) alut_d reg_d
    (String.concat ", "
       (List.map
          (fun (name, r) ->
            Printf.sprintf "{\"name\": \"%s\", \"report\": %s}" name
              (String.trim (Json.to_string (Analysis.Verdict.json_of ~file:name r))))
          reports));
  close_out oc;
  print_endline "  wrote BENCH_prove.json"

(* --- Torture harness ----------------------------------------------------------------- *)

(* Two legs.  The clean leg times generator + oracle throughput over the
   default 200-program campaign and asserts the run agrees everywhere
   and is byte-identical serial vs parallel.  The fault leg injects a
   known translation fault so the oracle has real divergences to
   classify and the shrinker real work to do, giving the artifact
   non-trivial class counts and shrink ratios. *)
let torture_bench () =
  section "Torture harness: co-simulation throughput, divergences, shrink ratios";
  let jobs = Exec.Pool.default_jobs () in
  let count = Torture.Fuzz.default_count in
  let t0 = Unix.gettimeofday () in
  let serial = Torture.Fuzz.run ~jobs:1 ~seed:42L ~count () in
  let serial_dt = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let clean = Torture.Fuzz.run ~jobs ~seed:42L ~count () in
  let dt = Unix.gettimeofday () -. t0 in
  if Json.to_string (Torture.Fuzz.json_of clean) <> Json.to_string (Torture.Fuzz.json_of serial) then begin
    Printf.eprintf "  DETERMINISM VIOLATION: %d-domain fuzz report differs from serial\n" jobs;
    exit 1
  end;
  if clean.Torture.Fuzz.r_findings <> [] then begin
    prerr_endline "  FAIL: clean torture run diverged; see `inca fuzz --seed 42`";
    exit 1
  end;
  let pps = float_of_int count /. dt in
  Printf.printf
    "  clean: %d programs, serial %.2fs, %d domain(s) %.2fs (%.2fx), %.1f programs/sec\n"
    count serial_dt jobs dt (serial_dt /. dt) pps;
  Printf.printf "  clean: all strategies agree (%d baseline cycles simulated)\n"
    clean.Torture.Fuzz.r_baseline_cycles;
  (* fault leg: drop p0's first write to chan1 — a deterministic
     translation bug the differential oracle must catch.  A/B'd
     between from-reset (inject the fault into a separate compile and
     simulate every leg from cycle zero) and the fork-point path
     (padded design, arm the pad at its first activation, trimmed
     budget); the divergence classes must agree. *)
  let faults =
    [ Faults.Fault.Drop_stream_write
        { fproc = "p0"; stream = "chan1"; select = Faults.Fault.Nth 0 } ]
  in
  let fcount = 12 in
  let t0 = Unix.gettimeofday () in
  let faulty_reset =
    Torture.Fuzz.run ~jobs ~seed:42L ~count:fcount ~faults ~from_reset:true ()
  in
  let frdt = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let faulty = Torture.Fuzz.run ~jobs ~seed:42L ~count:fcount ~faults () in
  let fdt = Unix.gettimeofday () -. t0 in
  print_string (Torture.Fuzz.render faulty);
  if faulty.Torture.Fuzz.r_findings = [] then begin
    prerr_endline "  FAIL: injected fault produced no divergence";
    exit 1
  end;
  let classes_of (r : Torture.Fuzz.report) =
    List.map
      (fun (f : Torture.Fuzz.finding) -> (f.Torture.Fuzz.f_index, f.Torture.Fuzz.f_classes))
      r.Torture.Fuzz.r_findings
  in
  if classes_of faulty <> classes_of faulty_reset then begin
    prerr_endline
      "  INVARIANT VIOLATION: fork-point fault classes differ from from-reset";
    exit 1
  end;
  let ratios =
    List.map
      (fun (f : Torture.Fuzz.finding) ->
        let s = f.Torture.Fuzz.f_stats in
        ( s.Torture.Shrink.orig_lines,
          s.Torture.Shrink.min_lines,
          float_of_int s.Torture.Shrink.orig_lines
          /. float_of_int (max 1 s.Torture.Shrink.min_lines) ))
      faulty.Torture.Fuzz.r_findings
  in
  let mean_ratio =
    List.fold_left (fun a (_, _, r) -> a +. r) 0.0 ratios
    /. float_of_int (List.length ratios)
  in
  Printf.printf
    "  fault leg: %d/%d divergent in %.2fs (from-reset %.2fs, fork-point %.2fx \
     faster, classes identical), mean shrink ratio %.1fx\n"
    (List.length faulty.Torture.Fuzz.r_findings)
    fcount fdt frdt (frdt /. fdt) mean_ratio;
  let oc = open_out "BENCH_torture.json" in
  Printf.fprintf oc
    "{\"count\": %d, \"jobs\": %d, \"serial_wall_seconds\": %.3f, \
     \"wall_seconds\": %.3f, \"programs_per_second\": %.1f, \
     \"baseline_cycles\": %d, \"fault_count\": %d, \"fault_wall_seconds\": %.3f, \
     \"fault_from_reset_wall_seconds\": %.3f, \"fault_fork_speedup\": %.3f, \
     \"mean_shrink_ratio\": %.2f, \"shrinks\": [%s], \"clean_report\": %s, \
     \"fault_report\": %s}\n"
    count jobs serial_dt dt pps clean.Torture.Fuzz.r_baseline_cycles fcount fdt
    frdt (frdt /. fdt) mean_ratio
    (String.concat ", "
       (List.map
          (fun (o, m, r) ->
            Printf.sprintf
              "{\"orig_lines\": %d, \"min_lines\": %d, \"ratio\": %.2f}" o m r)
          ratios))
    (Json.to_string (Torture.Fuzz.json_of clean))
    (Json.to_string (Torture.Fuzz.json_of faulty));
  close_out oc;
  print_endline "  wrote BENCH_torture.json"

(* --- Serve daemon: job throughput, shard-merge determinism, warm cache ------------- *)

let serve_bench () =
  section "Serve daemon: jobs/sec warm vs cold, shard determinism, cache reuse";
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "inca-bench-%d.sock" (Unix.getpid ()))
  in
  Exec.Cache.reset_memory ();
  let t = Serve.Server.start ~socket () in
  let submit job =
    match Serve.Server.request ~socket job with
    | Ok (report, cache) -> (report, cache)
    | Error e ->
        Printf.eprintf "  SERVE FAILURE: %s\n" e;
        Serve.Server.stop t;
        exit 1
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* check-job throughput: the first request compiles cold, repeats hit
     the daemon's in-process cache *)
  let check_job =
    Core.Job.Check
      {
        Core.Job.k_sources =
          [ Core.Job.Text { name = "fir.c"; text = Apps.Fir_src.source () } ];
        k_strategy = "optimized";
        k_nabort = false;
        k_ndebug = false;
        k_only = None;
        k_ignore = None;
        k_watchdog = None;
      }
  in
  let (cold_rep, _), cold_dt = timed (fun () -> submit check_job) in
  let warm_n = 5 in
  let warm_reps, warm_dt =
    timed (fun () -> List.init warm_n (fun _ -> submit check_job))
  in
  List.iter
    (fun (r, _) ->
      if Core.Report.to_string r <> Core.Report.to_string cold_rep then begin
        prerr_endline "  DETERMINISM VIOLATION: warm check report differs from cold";
        Serve.Server.stop t;
        exit 1
      end)
    warm_reps;
  let warm_jps = float_of_int warm_n /. warm_dt in
  let warm_speedup = cold_dt /. (warm_dt /. float_of_int warm_n) in
  Printf.printf "  check job: cold %.3fs, warm %.1f jobs/sec (%.1fx)\n" cold_dt
    warm_jps warm_speedup;
  (* shard-merge determinism over the socket: the same campaign sharded
     across the pool and forced serial must serialize identically *)
  let campaign_job jobs =
    Core.Job.Campaign
      {
        Core.Job.a_source =
          Some (Core.Job.Text { name = "fir.c"; text = Apps.Fir_src.source () });
        a_stimulus = Core.Job.empty_stimulus;
        a_budget = None;
        a_watchdog = None;
        a_max_mutants = Some 8;
        a_jobs = jobs;
        a_from_reset = false;
        a_max_cycles = 1_000_000;
        a_prune_hangs = true;
      }
  in
  let (par_rep, _), par_dt = timed (fun () -> submit (campaign_job None)) in
  let (ser_rep, _), _ = timed (fun () -> submit (campaign_job (Some 1))) in
  if Core.Report.to_string par_rep <> Core.Report.to_string ser_rep then begin
    prerr_endline
      "  DETERMINISM VIOLATION: sharded campaign report differs from --jobs 1";
    Serve.Server.stop t;
    exit 1
  end;
  print_endline "  sharded campaign report is byte-identical to --jobs 1";
  (* cache reuse: resubmitting the same campaign must hit the warm store *)
  let (_, cache), _ = timed (fun () -> submit (campaign_job None)) in
  if cache.Serve.Proto.cd_memory_hits + cache.Serve.Proto.cd_disk_hits = 0 then begin
    prerr_endline "  CACHE VIOLATION: resubmitted campaign hit the cache zero times";
    Serve.Server.stop t;
    exit 1
  end;
  Printf.printf "  resubmitted campaign: %d memory hit(s), %d disk hit(s)\n"
    cache.Serve.Proto.cd_memory_hits cache.Serve.Proto.cd_disk_hits;
  Serve.Server.stop t;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\"check_cold_seconds\": %.3f, \"check_warm_jobs_per_second\": %.1f, \
     \"check_warm_speedup\": %.3f, \"campaign_seconds\": %.3f, \
     \"shard_determinism\": \"ok\", \"campaign_memory_hits\": %d, \
     \"campaign_disk_hits\": %d}\n"
    cold_dt warm_jps warm_speedup par_dt cache.Serve.Proto.cd_memory_hits
    cache.Serve.Proto.cd_disk_hits;
  close_out oc;
  print_endline "  wrote BENCH_serve.json"

(* --- Bechamel micro-benchmarks ------------------------------------------------------ *)

let bechamel () =
  section "Bechamel: compiler and simulator throughput";
  let open Bechamel in
  let des_prog = elab ~file:"des3.c" (Apps.Des_src.demo_source ()) in
  let edge_prog = elab ~file:"edge.c" (Apps.Edge_src.demo_source ()) in
  let loop_prog = elab ~file:"loopback.c" (Apps.Loopback_src.source ~n:8 ()) in
  let micro = elab ~file:"k.c" Apps.Micro_src.array_pipelined in
  (* lowering requires assertion synthesis (or stripping) to have run *)
  let des_stripped = Core.Instrument.strip_asserts (List.hd des_prog.Front.Ast.procs) in
  let des_ir = Mir.Opt.optimize (Mir.Lower.lower_proc des_prog des_stripped) in
  let tests =
    [
      Test.make ~name:"parse+typecheck edge-detect"
        (Staged.stage (fun () -> ignore (elab ~file:"edge.c" (Apps.Edge_src.demo_source ()))));
      Test.make ~name:"lower+optimize 3DES"
        (Staged.stage (fun () ->
             ignore (Mir.Opt.optimize (Mir.Lower.lower_proc des_prog des_stripped))));
      Test.make ~name:"schedule 3DES FSMD"
        (Staged.stage (fun () -> ignore (Hls.Schedule.compile_proc des_ir)));
      Test.make ~name:"full compile (edge, optimized)"
        (Staged.stage (fun () ->
             ignore (Driver.compile ~strategy:Driver.parallelized edge_prog)));
      Test.make ~name:"modulo-schedule micro kernel"
        (Staged.stage (fun () ->
             ignore (Driver.compile ~strategy:Driver.baseline micro)));
      Test.make ~name:"simulate 8-stage loopback (64 values)"
        (Staged.stage
           (let c = Driver.compile ~strategy:Driver.optimized loop_prog in
            fun () ->
              ignore
                (Driver.simulate
                   ~options:
                     {
                       Driver.default_sim_options with
                       Driver.feeds = [ ("feed_in", Apps.Loopback_src.feed ~count:64) ];
                       drains = [ "loop_out" ];
                       params = Apps.Loopback_src.params ~n:8 ~count:64;
                     }
                   c)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "  %-40s %12.1f ns/run\n"
              (match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name)
              est
        | _ -> Printf.printf "  %-40s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* --- Driver ----------------------------------------------------------------------- *)

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("figure4", figure4);
    ("figure5", figure5);
    ("sec51", sec51);
    ("ablation-sharing", ablation_sharing_width);
    ("ablation-replication", ablation_replication);
    ("ablation-binding", ablation_binding);
    ("ablation-checker", ablation_checker_latency);
    ("ablation-transport", ablation_transport);
    ("timing", timing_demo);
    ("campaign", campaign_bench);
    ("campaign-smoke", campaign_smoke);
    ("mine", mine_bench);
    ("check", check_bench);
    ("prove", prove_bench);
    ("torture", torture_bench);
    ("serve", serve_bench);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] | [ "all" ] ->
      List.iter (fun (_, f) -> f ()) artifacts;
      print_newline ()
  | [ "--help" ] | [ "help" ] ->
      print_endline "artifacts:";
      List.iter (fun (n, _) -> Printf.printf "  %s\n" n) artifacts
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n artifacts with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown artifact %s (try --help)\n" n)
        names
