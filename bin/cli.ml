(* Shared command-line plumbing for the inca subcommands.

   Every subcommand used to carry its own copy of the feed/drain/param
   parsing and the strategy/NABORT/NDEBUG flags; they live here once so
   [simulate], [swsim], [campaign] and [mine] cannot drift apart.  The
   strategy converter is driven by {!Core.Driver.all_strategies}, so a
   new strategy registered there is accepted everywhere at once. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- strategy selection --------------------------------------------------- *)

(* "none" is a scripting-friendly alias for the canonical "baseline". *)
let strategy_of_string = function
  | "none" -> Ok ("baseline", Core.Driver.baseline)
  | s -> (
      match List.assoc_opt s Core.Driver.all_strategies with
      | Some st -> Ok (s, st)
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown strategy %s (expected one of %s)" s
                 (String.concat ", " (List.map fst Core.Driver.all_strategies)))))

let strategy_conv : (string * Core.Driver.strategy) Arg.conv =
  Arg.conv (strategy_of_string, fun ppf (name, _) -> Format.pp_print_string ppf name)

let strategy_doc =
  "Assertion synthesis strategy: baseline (assertions stripped), unoptimized \
   (if-conversion, Section 4.1), parallelized (checker tasks, Sections 3.1+3.2), \
   optimized (parallelized + 32-way channel sharing, Section 3.3), or carte \
   (DMA-mailbox transport, Section 4.3)."

let strategy_opt ?(default = ("optimized", Core.Driver.optimized)) ?(doc = strategy_doc) () =
  Arg.(value & opt strategy_conv default & info [ "s"; "strategy" ] ~doc)

type strategy_sel = {
  sname : string;
  strategy : Core.Driver.strategy;
  nabort : bool;
  ndebug : bool;
}

let strategy_args ?default () =
  let nabort_arg =
    Arg.(
      value & flag & info [ "nabort" ] ~doc:"Keep running after assertion failures (NABORT).")
  in
  let ndebug_arg =
    Arg.(value & flag & info [ "ndebug" ] ~doc:"Strip all assertions (NDEBUG).")
  in
  let mk (sname, strategy) nabort ndebug = { sname; strategy; nabort; ndebug } in
  Term.(const mk $ strategy_opt ?default () $ nabort_arg $ ndebug_arg)

(* NDEBUG wins over everything; NABORT is folded into the strategy. *)
let apply_sel sel =
  if sel.ndebug then ("baseline", Core.Driver.baseline)
  else (sel.sname, { sel.strategy with Core.Driver.nabort = sel.nabort })

let prune_arg =
  Arg.(
    value
    & flag
    & info [ "prune-proved" ]
        ~doc:
          "Run the static assertion verifier first and drop every statically proved \
           assertion before instrumentation, so no checker hardware is synthesized for \
           it.  A statically violated assertion aborts the compile with a witness.")

let load ?(prune_proved = false) sel path =
  let src = read_file path in
  let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename path) src in
  let _, strategy = apply_sel sel in
  Core.Driver.compile ~strategy ~prune_proved prog

(* Shared wrapper for subcommands that compile under [--prune-proved]:
   a statically violated assertion becomes a readable witness trace and
   exit code 1 instead of an unhandled exception. *)
let or_static_violation f =
  match f () with
  | r -> r
  | exception Core.Driver.Static_violation vs ->
      List.iter
        (fun v ->
          match Analysis.Check.diag_of_verdict v with
          | Some d -> prerr_endline (Analysis.Diag.to_string d)
          | None -> ())
        vs;
      `Error (false, "statically violated assertion(s); compile aborted")

(* --- testbench stimulus --------------------------------------------------- *)

let parse_feed s =
  match String.index_opt s '=' with
  | Some i ->
      let stream = String.sub s 0 i in
      let vals =
        String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1))
        |> List.filter (fun x -> x <> "")
        |> List.map Int64.of_string
      in
      (stream, vals)
  | None -> invalid_arg (Printf.sprintf "bad feed %S (expected stream=v1,v2,...)" s)

let parse_param s =
  match String.index_opt s ':' with
  | Some i -> (
      let proc = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest '=' with
      | Some j ->
          let name = String.sub rest 0 j in
          let v = Int64.of_string (String.sub rest (j + 1) (String.length rest - j - 1)) in
          (proc, (name, v))
      | None -> invalid_arg (Printf.sprintf "bad param %S" s))
  | None -> invalid_arg (Printf.sprintf "bad param %S (expected proc:name=value)" s)

let collect_params raw =
  List.fold_left
    (fun acc p ->
      let proc, kv = parse_param p in
      let cur = try List.assoc proc acc with Not_found -> [] in
      (proc, kv :: cur) :: List.remove_assoc proc acc)
    [] raw

type stimulus = {
  feeds : (string * int64 list) list;
  drains : string list;
  params : (string * (string * int64) list) list;
}

let stimulus_args =
  let feeds_arg =
    Arg.(value & opt_all string [] & info [ "feed" ] ~doc:"Testbench input: stream=v1,v2,...")
  in
  let drains_arg =
    Arg.(value & opt_all string [] & info [ "drain" ] ~doc:"Stream to collect output from.")
  in
  let params_arg =
    Arg.(
      value & opt_all string [] & info [ "param" ] ~doc:"Process parameter: proc:name=value")
  in
  let mk feeds drains params =
    { feeds = List.map parse_feed feeds; drains; params = collect_params params }
  in
  Term.(const mk $ feeds_arg $ drains_arg $ params_arg)

(* [--watchdog] accepts a cycle count or "auto", which resolves to the
   liveness analyzer's proved completion bound after the program is
   loaded (see {!resolve_watchdog}). *)
type watchdog_spec = Cycles of int | Auto

let watchdog_conv : watchdog_spec Arg.conv =
  let parse = function
    | "auto" -> Ok Auto
    | s -> (
        match int_of_string_opt s with
        | Some n -> Ok (Cycles n)
        | None ->
            Error
              (`Msg (Printf.sprintf "bad watchdog %S (expected a cycle count or \"auto\")" s)))
  in
  let print ppf = function
    | Auto -> Format.pp_print_string ppf "auto"
    | Cycles n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

type testbench = {
  stimulus : stimulus;
  max_cycles : int;
  vcd : string option;
  watchdog : watchdog_spec option;
}

(* The engine's cycle budget, overridable per-invocation or fleet-wide
   through the environment (CI sets INCA_MAX_CYCLES to keep wedged runs
   bounded).  Shared by simulate, campaign and fuzz so the knob cannot
   drift between subcommands. *)
let max_cycles_arg ?(default = 1_000_000) () =
  Arg.(
    value
    & opt int default
    & info [ "max-cycles" ]
        ~env:(Cmd.Env.info "INCA_MAX_CYCLES")
        ~doc:"Cycle budget for every simulated run.")

let testbench_args =
  let cycles_arg = max_cycles_arg () in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ]
          ~doc:"Dump a VCD waveform of every FSM state and named register (SignalTap view).")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some watchdog_conv) None
      & info [ "watchdog" ] ~docv:"N|auto"
          ~doc:
            "Live-lock watchdog window: stop after N cycles without forward progress \
             (stream push/pop, tap event, or a register/memory value change).  \
             $(b,auto) uses the liveness analyzer's proved completion bound as the \
             window, or leaves the watchdog off when liveness is not proved.")
  in
  let mk stimulus max_cycles vcd watchdog = { stimulus; max_cycles; vcd; watchdog } in
  Term.(const mk $ stimulus_args $ cycles_arg $ vcd_arg $ watchdog_arg)

let sim_options_of (tb : testbench) =
  {
    Core.Driver.feeds = tb.stimulus.feeds;
    drains = tb.stimulus.drains;
    params = tb.stimulus.params;
    hw_models = [];
    max_cycles = tb.max_cycles;
    timing_checks = [];
    trace = tb.vcd <> None;
    watchdog = (match tb.watchdog with Some (Cycles n) -> Some n | Some Auto | None -> None);
  }

(* Resolve [--watchdog auto] against the statically proved completion
   bound of [prog] ([Cycles n] passes through).  Returns the window plus
   whether the analyzer chose it, so the caller can report the bound. *)
let resolve_watchdog (tb : testbench) (prog : Front.Ast.program) : int option * bool =
  match tb.watchdog with
  | Some Auto -> (Core.Driver.auto_watchdog ~options:(sim_options_of tb) prog, true)
  | Some (Cycles n) -> (Some n, false)
  | None -> (None, false)

(* --- sweep flags shared by campaign and mine ------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"InCA-C source file")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ]
        ~doc:"Per-mutant cycle budget (default: 4x the unfaulted run, plus slack).")

let sweep_watchdog_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog" ]
        ~doc:"Live-lock watchdog window in cycles (default: budget / 20, floor 200).")

let max_mutants_arg ~doc = Arg.(value & opt (some int) None & info [ "max-mutants" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the mutant sweep ($(docv)=1 runs serially without spawning \
     any domain).  Defaults to $(env) or every core.  The report is byte-identical \
     for every job count."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~env:(Cmd.Env.info "INCA_JOBS") ~docv:"N" ~doc)

(* --- diagnostic-code filters (check) --------------------------------------- *)

(* Shared by [inca check] and any future lint-bearing subcommand, so a
   CI leg can gate on exactly one code family:
     inca check --only INCA-L106,INCA-L107 examples/ *)
let code_filter_args =
  let only_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "only" ] ~docv:"CODE,..."
          ~doc:
            "Keep only diagnostics with these comma-separated codes (e.g. \
             INCA-L106,INCA-L107).  Assertion verdict lines are unaffected; the \
             summary and exit status follow the filtered set.")
  in
  let ignore_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "ignore" ] ~docv:"CODE,..."
          ~doc:"Drop diagnostics with these comma-separated codes.")
  in
  Term.(const (fun only ignore -> (only, ignore)) $ only_arg $ ignore_arg)

let check_watchdog_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog" ] ~docv:"N"
        ~doc:
          "Watchdog window to measure against the proved completion bound: warns \
           (INCA-L109) when the window is below the bound, notes (INCA-L110) when the \
           design provably finishes inside it.")
