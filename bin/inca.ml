(* inca — In-Circuit Assertions for high-level synthesis.

   Command-line driver around {!Core.Driver}:

     inca compile app.c --strategy optimized
     inca instrument app.c            # print the instrumented HLL (Figure 2)
     inca vhdl app.c -o out.vhdl
     inca simulate app.c --feed input=1,2,3 --drain output --param main:n=3
     inca campaign [app.c] --jobs 4   # fault-injection sweep + coverage report
     inca mine app.c --top 5          # mine invariants, rank by mutant kills
     inca check app.c                 # scheduler invariant lint
     inca fuzz --seed 42 --count 200  # differential torture test + auto-shrink

   Flag plumbing shared between subcommands (strategy selection,
   testbench stimulus, sweep caps, --jobs) lives in {!Cli}.

   Exit status is meaningful for scripting: [simulate] exits 1 when the
   run fails (assertion failure, hang, or budget), [campaign] exits 1
   when any mutant silently escapes a non-baseline strategy. *)

open Cmdliner

let report (c : Core.Driver.compiled) =
  let a = c.Core.Driver.area in
  let t = c.Core.Driver.timing in
  Printf.printf "assertions: %d\n" (List.length c.Core.Driver.asserts);
  List.iter
    (fun (id, (info : Core.Assertion.info)) ->
      Printf.printf "  #%d %s:%d in %s: %s\n" id info.Core.Assertion.aloc.Front.Loc.file
        info.Core.Assertion.aloc.Front.Loc.line info.Core.Assertion.aproc
        info.Core.Assertion.text)
    c.Core.Driver.table;
  Printf.printf "failure channels: %d\n" (List.length c.Core.Driver.plan.Core.Share.streams);
  (let pr = c.Core.Driver.pruned in
   if pr.Core.Driver.absint_pruned > 0 || pr.Core.Driver.induction_pruned > 0 then
     Printf.printf "pruned checkers: %d (%d absint-proved, %d induction-proved)\n"
       (pr.Core.Driver.absint_pruned + pr.Core.Driver.induction_pruned)
       pr.Core.Driver.absint_pruned pr.Core.Driver.induction_pruned);
  Printf.printf "\nEP2S180 utilization:\n";
  Printf.printf "  ALUTs        %7d (%.2f%%)\n" a.Rtl.Area.aluts
    (100.0 *. float_of_int a.Rtl.Area.aluts /. 143520.0);
  Printf.printf "  registers    %7d (%.2f%%)\n" a.Rtl.Area.registers
    (100.0 *. float_of_int a.Rtl.Area.registers /. 143520.0);
  Printf.printf "  RAM bits     %7d (%.2f%%)\n" a.Rtl.Area.ram_bits
    (100.0 *. float_of_int a.Rtl.Area.ram_bits /. 9383040.0);
  Printf.printf "  interconnect %7d (%.2f%%)\n" a.Rtl.Area.interconnect
    (100.0 *. float_of_int a.Rtl.Area.interconnect /. 536440.0);
  Printf.printf "  DSP 18x18    %7d\n" a.Rtl.Area.dsps;
  Printf.printf "\ntiming: fmax %.1f MHz (logic %.2f ns + routing %.2f ns)\n"
    t.Rtl.Timing.fmax_mhz t.Rtl.Timing.logic_ns t.Rtl.Timing.route_ns;
  List.iter
    (fun (f : Hls.Fsmd.t) ->
      Printf.printf "process %s: %d states, %d pipelined loop(s)\n"
        f.Hls.Fsmd.proc.Mir.Ir.name (Hls.Fsmd.num_states f)
        (Array.length f.Hls.Fsmd.pipes);
      Array.iter
        (fun (p : Hls.Fsmd.pipe) ->
          Printf.printf "  pipeline: II=%d, depth=%d\n" p.Hls.Fsmd.ii p.Hls.Fsmd.depth)
        f.Hls.Fsmd.pipes)
    c.Core.Driver.fsmds

(* --- compile ------------------------------------------------------------------- *)

let compile_cmd =
  let prune_induction_arg =
    Arg.(
      value
      & opt int 0
      & info [ "prune-induction" ]
          ~doc:
            "Also run the bounded model checker and prune every assertion proved by \
             k-induction up to $(docv) (0 disables).  Reported separately from the \
             absint-proved count."
          ~docv:"K")
  in
  let run file sel prune prune_ind =
    Cli.or_static_violation @@ fun () ->
    let src = Cli.read_file file in
    let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename file) src in
    let _, strategy = Cli.apply_sel sel in
    let induction_proved =
      if prune_ind <= 0 then []
      else
        let rep, _ = Core.Verify.prove ~induction:prune_ind prog in
        Core.Verify.induction_proved_keys rep
    in
    let c = Core.Driver.compile ~strategy ~prune_proved:prune ~induction_proved prog in
    report c;
    match Core.Driver.static_diags c with
    | [] -> `Ok 0
    | diags ->
        List.iter (fun d -> prerr_endline (Analysis.Diag.to_string d)) diags;
        `Error (false, "scheduler invariant violations")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and print an area/timing report")
    Term.(
      ret
        (const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg
        $ prune_induction_arg))

(* --- instrument ---------------------------------------------------------------- *)

let instrument_cmd =
  let run file sel =
    let c = Cli.load sel file in
    print_endline (Front.Pretty.program_to_string c.Core.Driver.instrumented);
    print_endline "/* --- generated notification function --- */";
    print_endline c.Core.Driver.notification_source;
    0
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Print the instrumented HLL source and the generated notification function")
    Term.(const run $ Cli.file_arg $ Cli.strategy_args ())

(* --- vhdl ------------------------------------------------------------------------ *)

let vhdl_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run file sel prune out =
    Cli.or_static_violation @@ fun () ->
    let c = Cli.load ~prune_proved:prune sel file in
    (match out with
    | None -> print_string c.Core.Driver.vhdl
    | Some path ->
        let oc = open_out path in
        output_string oc c.Core.Driver.vhdl;
        close_out oc;
        Printf.printf "wrote %s\n" path);
    `Ok 0
  in
  Cmd.v
    (Cmd.info "vhdl" ~doc:"Emit VHDL for the synthesized design")
    Term.(ret (const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg $ out_arg))

(* --- simulate -------------------------------------------------------------------- *)

let simulate_cmd =
  let run file sel prune (tb : Cli.testbench) =
    Cli.or_static_violation @@ fun () ->
    let c = Cli.load ~prune_proved:prune sel file in
    let r = Core.Driver.simulate ~options:(Cli.sim_options_of tb) c in
    let e = r.Core.Driver.engine in
    (match (tb.Cli.vcd, e.Sim.Engine.vcd) with
    | Some path, Some contents ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote waveform to %s\n" path
    | _ -> ());
    List.iter print_endline r.Core.Driver.messages;
    (match e.Sim.Engine.outcome with
    | Sim.Engine.Finished -> Printf.printf "finished in %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Aborted m -> Printf.printf "aborted after %d cycles: %s\n" e.Sim.Engine.cycles m
    | Sim.Engine.Hang blocked ->
        Printf.printf "HANG after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter (fun (p, s) -> Printf.printf "  %s blocked in state %d\n" p s) blocked
    | Sim.Engine.Livelock spinning ->
        Printf.printf "LIVELOCK detected by watchdog after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter (fun (p, s) -> Printf.printf "  %s spinning in state %d\n" p s) spinning;
        (* scripting contract: a watchdog trip names the livelocked
           processes on stderr alongside the nonzero exit *)
        Printf.eprintf "watchdog: livelocked process(es): %s\n"
          (String.concat ", " (List.map fst spinning))
    | Sim.Engine.Out_of_cycles ->
        Printf.printf "still running after %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Sim_error m -> Printf.printf "simulation error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      e.Sim.Engine.drained;
    List.iter
      (fun (p : Sim.Engine.pipe_stats) ->
        if p.Sim.Engine.issues > 0 then
          Printf.printf "pipeline in %s: II=%d (measured %.2f), latency %d, %d iterations\n"
            p.Sim.Engine.ps_proc p.Sim.Engine.ii_static p.Sim.Engine.ii_measured
            p.Sim.Engine.latency_measured p.Sim.Engine.issues)
      e.Sim.Engine.pipes;
    (* scripting contract: nonzero when the run raised any flag — an
       assertion failure (even under NABORT), a hang, or the budget *)
    match (e.Sim.Engine.outcome, r.Core.Driver.failed_assertions) with
    | Sim.Engine.Finished, [] -> `Ok 0
    | _ -> `Ok 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the design in the cycle-accurate simulator.  Exits 1 when the run fails: \
          an assertion fires, the design hangs, or the cycle budget is exceeded.")
    Term.(
      ret (const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg $ Cli.testbench_args))

(* --- swsim ------------------------------------------------------------------------ *)

let swsim_cmd =
  let nabort_arg =
    Arg.(
      value & flag & info [ "nabort" ] ~doc:"Keep running after assertion failures (NABORT).")
  in
  let ndebug_arg =
    Arg.(value & flag & info [ "ndebug" ] ~doc:"Strip all assertions (NDEBUG).")
  in
  let run file nabort ndebug (st : Cli.stimulus) =
    let sel =
      { Cli.sname = "baseline"; strategy = Core.Driver.baseline; nabort; ndebug }
    in
    let c = Cli.load sel file in
    let r =
      Core.Driver.software_sim
        ~options:
          {
            Core.Driver.default_sim_options with
            Core.Driver.feeds = st.Cli.feeds;
            drains = st.Cli.drains;
            params = st.Cli.params;
          }
        ~nabort c
    in
    List.iter print_endline r.Interp.log;
    (match r.Interp.outcome with
    | Interp.Completed -> print_endline "software simulation completed"
    | Interp.Aborted f -> Printf.printf "aborted: %s\n" (Interp.failure_message f)
    | Interp.Deadlocked blocked ->
        print_endline "DEADLOCK:";
        List.iter
          (fun (p, loc) -> Printf.printf "  %s blocked at %s\n" p (Front.Loc.to_string loc))
          blocked
    | Interp.Fuel_exhausted -> print_endline "step budget exhausted (runaway loop?)"
    | Interp.Runtime_error m -> Printf.printf "runtime error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      r.Interp.drained;
    if Interp.ok r then 0 else 1
  in
  Cmd.v
    (Cmd.info "swsim"
       ~doc:
         "Run the program under software simulation (untimed C semantics, the Impulse-C \
          desktop path the paper contrasts against)")
    Term.(const run $ Cli.file_arg $ nabort_arg $ ndebug_arg $ Cli.stimulus_args)

(* --- campaign --------------------------------------------------------------------- *)

(* Derive a usable testbench when the user gives none: feed every
   purely-read stream a ramp, drain every purely-written stream, and
   default every unset process parameter to 32 (sized to the ramp).
   The policy lives in {!Mine.Trace} so mining and campaigning share
   the same default stimulus. *)
let auto_stimulus prog (st : Cli.stimulus) =
  let o =
    Mine.Trace.auto_options ~feeds:st.Cli.feeds ~drains:st.Cli.drains ~params:st.Cli.params
      prog
  in
  (o.Core.Driver.feeds, o.Core.Driver.drains, o.Core.Driver.params)

let campaign_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "InCA-C source file to campaign.  Omit to sweep the bundled case-study \
             applications (FIR, DCT, Triple-DES, edge detection).")
  in
  let max_mutants_arg =
    Cli.max_mutants_arg
      ~doc:
        "Per-workload mutant cap, taken round-robin across fault kinds; the report \
         counts dropped sites."
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Also write the report as JSON to $(docv)." ~docv:"PATH")
  in
  let runs_arg =
    Arg.(value & flag & info [ "runs" ] ~doc:"Print the classification of every mutant run.")
  in
  let from_reset_arg =
    Arg.(
      value
      & flag
      & info [ "from-reset" ]
          ~doc:
            "Compile and simulate every mutant from cycle zero instead of restoring the \
             fork-point snapshot taken just before its fault site first activates (the \
             split-simulation fast path).  Classification is identical in both modes; \
             use for A/B timing or as an escape hatch.")
  in
  let classes_arg =
    Arg.(
      value
      & flag
      & info [ "classes" ]
          ~doc:
            "Print the per-mutant classification map (one tab-separated \
             workload/strategy/fault/class line per mutant).  Byte-identical between \
             fork-point and --from-reset evaluation; CI diffs the two to gate the \
             invariant.")
  in
  let run file stimulus budget watchdog max_mutants jobs json_out show_runs from_reset
      show_classes max_cycles =
    let workloads =
      match file with
      | None -> Campaign.bundled ()
      | Some path ->
          let src = Cli.read_file path in
          let name = Filename.remove_extension (Filename.basename path) in
          let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename path) src in
          let feeds, drains, params = auto_stimulus prog stimulus in
          [
            {
              Campaign.wname = name;
              program = prog;
              options =
                { Core.Driver.default_sim_options with Core.Driver.feeds; drains; params };
            };
          ]
    in
    (* --max-cycles / INCA_MAX_CYCLES bounds the unfaulted reference run
       of every workload (mutant budgets are derived from it by
       [config.budget]) *)
    let workloads =
      List.map
        (fun (w : Campaign.workload) ->
          { w with Campaign.options = { w.Campaign.options with Core.Driver.max_cycles } })
        workloads
    in
    let config =
      {
        Campaign.default_config with
        Campaign.mode = (if from_reset then Campaign.From_reset else Campaign.Fork);
        budget;
        watchdog;
        max_mutants;
        jobs;
      }
    in
    let r =
      try Campaign.run ~config workloads
      with Invalid_argument msg ->
        (* e.g. a --max-cycles budget the unfaulted reference run cannot
           finish in — a usage error, not an internal one *)
        prerr_endline msg;
        exit 1
    in
    if show_classes then print_string (Campaign.render_classes r)
    else print_endline (Campaign.render r);
    if show_runs then begin
      print_endline "\nper-mutant classification:";
      List.iter
        (fun (run : Campaign.run) ->
          let detail = Campaign.detail_string run.Campaign.detail in
          Printf.printf "  %-10s %-13s %-42s %-9s %6d cyc%s%s\n" run.Campaign.workload
            run.Campaign.strategy
            (Faults.Fault.describe run.Campaign.fault)
            (Campaign.class_name run.Campaign.outcome)
            run.Campaign.cycles
            (if detail <> "" then "  " ^ detail else "")
            (if run.Campaign.retried then "  [retried]" else ""))
        r.Campaign.runs
    end;
    (match json_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Campaign.render_json r);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (* disk-store effectiveness on stderr, so scripted report diffs
       (stdout) stay byte-identical between cold and warm runs *)
    (match Exec.Cache.dir () with
    | Some dir ->
        let s = Exec.Cache.stats () in
        Printf.eprintf "cache: %d disk hit(s), %d disk miss(es) (%s)\n"
          s.Exec.Cache.disk_hits s.Exec.Cache.disk_misses dir
    | None -> ());
    (* scripting contract: nonzero when a mutant silently escaped an
       instrumented strategy (the baseline control has no assertions, so
       its silent corruptions are expected and don't count) *)
    let escapes =
      List.filter
        (fun (run : Campaign.run) ->
          run.Campaign.strategy <> "baseline"
          && run.Campaign.outcome = Campaign.Silent_corruption)
        r.Campaign.runs
    in
    if escapes = [] then 0
    else begin
      Printf.eprintf "%d mutant(s) silently escaped an instrumented strategy\n"
        (List.length escapes);
      1
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-injection campaign: enumerate every candidate fault site, run one mutant \
          per site under each assertion-synthesis strategy, and print the \
          assertion-coverage report.  Exits 1 when any mutant silently escapes an \
          instrumented (non-baseline) strategy.")
    Term.(
      const run $ file_arg $ Cli.stimulus_args $ Cli.budget_arg $ Cli.sweep_watchdog_arg
      $ max_mutants_arg $ Cli.jobs_arg $ json_arg $ runs_arg $ from_reset_arg
      $ classes_arg $ Cli.max_cycles_arg ())

(* --- mine ------------------------------------------------------------------------- *)

let mine_cmd =
  let strategy_arg =
    Cli.strategy_opt
      ~default:("parallelized", Core.Driver.parallelized)
      ~doc:
        "Synthesis strategy the mined assertions are compiled and ranked under: \
         baseline, unoptimized, parallelized, optimized, or carte."
      ()
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Report the $(docv) best candidates." ~docv:"N")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the ranking as JSON instead of text.")
  in
  let emit_arg =
    Arg.(
      value
      & flag
      & info [ "emit" ]
          ~doc:
            "Print the InCA-C source instrumented with the top candidates (after the \
             report).")
  in
  let max_candidates_arg =
    Arg.(
      value
      & opt int 12
      & info [ "max-candidates" ]
          ~doc:"Candidate cap after inference, taken round-robin across template kinds.")
  in
  let max_mutants_arg = Cli.max_mutants_arg ~doc:"Fault-site cap per ranking sweep." in
  let run file strategy top json emit stimulus max_candidates max_mutants budget jobs =
    let src = Cli.read_file file in
    let name = Filename.remove_extension (Filename.basename file) in
    let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename file) src in
    let options =
      Mine.Trace.auto_options ~feeds:stimulus.Cli.feeds ~drains:stimulus.Cli.drains
        ~params:stimulus.Cli.params prog
    in
    let config =
      { Mine.Rank.strategy; max_candidates; max_mutants; budget; watchdog = None; jobs }
    in
    match Mine.Rank.mine ~config ~name ~options prog with
    | r ->
        if json then print_endline (Mine.Rank.render_json ~top r)
        else print_string (Mine.Rank.render ~top r);
        if emit then begin
          match Mine.Infer.inject prog (Mine.Rank.top_candidates ~top r) with
          | Some (instrumented, _) ->
              print_endline "\n/* --- source instrumented with mined assertions --- */";
              print_string instrumented
          | None -> prerr_endline "could not inject the top candidates together"
        end;
        `Ok 0
    | exception Invalid_argument m ->
        (* keep the --json contract on the failure path too: scripted
           consumers always get a parseable document on stdout *)
        if json then begin
          Printf.printf "{\"name\": \"%s\", \"error\": \"%s\"}\n"
            (Analysis.Diag.json_escape name) (Analysis.Diag.json_escape m);
          `Ok 1
        end
        else `Error (false, m)
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine candidate invariants from software-simulation traces (Daikon-style \
          templates over multiple derived stimuli), inject the survivors as in-circuit \
          assertions, and rank them by fault-detection power with area/fmax cost")
    Term.(
      ret
        (const run $ Cli.file_arg $ strategy_arg $ top_arg $ json_arg $ emit_arg
       $ Cli.stimulus_args $ max_candidates_arg $ max_mutants_arg $ Cli.budget_arg
       $ Cli.jobs_arg))

(* --- fuzz ------------------------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int64 42L & info [ "seed" ] ~doc:"Run seed; every program derives from it.")
  in
  let count_arg =
    Arg.(
      value
      & opt int Torture.Fuzz.default_count
      & info [ "count" ] ~doc:"Number of programs to generate and check.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt int Torture.Fuzz.default_fuel
      & info [ "fuel" ] ~doc:"Generator size budget per program.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Torture.Corpus.default_dir
      & info [ "corpus-dir" ]
          ~doc:"Directory shrunk reproducers are written to (one per divergence class).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Also write the report as JSON to $(docv)." ~docv:"PATH")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt int Torture.Oracle.default_watchdog
      & info [ "watchdog" ]
          ~doc:"Live-lock watchdog window for every circuit run, in cycles.")
  in
  let bmc_depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bmc-depth" ]
          ~doc:
            "Cross-check every statically proved assertion against the bounded model \
             checker to this depth; a replay-confirmed counterexample for a proved \
             assertion is a proved-fired:bmc divergence."
          ~docv:"K")
  in
  let run seed count fuel jobs max_cycles watchdog bmc_depth corpus_dir json_out =
    let r =
      Torture.Fuzz.run ?jobs ~seed ~count ~fuel ~max_cycles ~watchdog ?bmc_depth
        ~corpus_dir ()
    in
    print_string (Torture.Fuzz.render r);
    (match json_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Torture.Fuzz.render_json r);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (* scripting contract: any divergence fails the run; each one has
       already been shrunk and written to the corpus directory *)
    if r.Torture.Fuzz.r_findings = [] then 0
    else begin
      Printf.eprintf "%d divergent program(s); shrunk reproducer(s) in %s\n"
        (List.length r.Torture.Fuzz.r_findings)
        corpus_dir;
      1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Torture-test the whole toolchain: generate seeded random InCA-C programs, run \
          each through software simulation (golden) and the cycle-accurate circuit under \
          every assertion-synthesis strategy, and compare outputs, assertion fires, \
          static-analysis verdicts and cycle ratios.  Every divergence is delta-debugged \
          to a minimal reproducer.  The report is byte-identical across runs and --jobs \
          values.  Exits 1 when any divergence is found.")
    Term.(
      const run $ seed_arg $ count_arg $ fuel_arg $ Cli.jobs_arg
      $ Cli.max_cycles_arg ~default:Torture.Oracle.default_max_cycles ()
      $ watchdog_arg $ bmc_depth_arg $ corpus_arg $ json_arg)

(* --- cache ------------------------------------------------------------------------ *)

let cache_cmd =
  let stats_arg =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:"Print store entry count, total bytes and this process's hit counters \
                (the default action).")
  in
  let gc_arg =
    Arg.(
      value
      & flag
      & info [ "gc" ]
          ~doc:"Evict least-recently-used entries until at most $(b,--max-bytes) remain.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~doc:"Size bound for $(b,--gc), in bytes." ~docv:"N")
  in
  let clear_arg =
    Arg.(value & flag & info [ "clear" ] ~doc:"Delete every entry in the store.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ]
          ~doc:"Operate on this store directory instead of $(b,INCA_CACHE_DIR)."
          ~docv:"DIR")
  in
  let print_stats () =
    match Exec.Cache.disk_stats () with
    | None -> ()
    | Some d ->
        Printf.printf "store: %s\n"
          (match Exec.Cache.dir () with Some p -> p | None -> "?");
        Printf.printf "entries: %d\n" d.Exec.Cache.entries;
        Printf.printf "bytes: %d\n" d.Exec.Cache.bytes;
        let s = Exec.Cache.stats () in
        Printf.printf
          "this process: %d memory hits, %d misses; %d disk hits, %d disk misses\n"
          s.Exec.Cache.hits s.Exec.Cache.misses s.Exec.Cache.disk_hits
          s.Exec.Cache.disk_misses
  in
  let run dir _stats gc max_bytes clear =
    (match dir with Some _ -> Exec.Cache.set_dir dir | None -> ());
    match Exec.Cache.dir () with
    | None ->
        `Error
          ( false,
            "no cache directory configured; set INCA_CACHE_DIR or pass --dir" )
    | Some _ ->
        if clear then begin
          Exec.Cache.clear_disk ();
          print_endline "cleared"
        end;
        (match (gc, max_bytes) with
        | true, Some n -> Printf.printf "evicted %d entr(ies)\n" (Exec.Cache.gc ~max_bytes:n)
        | true, None ->
            prerr_endline "cache: --gc requires --max-bytes";
            exit 1
        | false, _ -> ());
        print_stats ();
        `Ok 0
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect and manage the on-disk compile/snapshot store.  The store is enabled \
          by the $(b,INCA_CACHE_DIR) environment variable (or $(b,--dir)) and persists \
          compiled fronts and campaign baseline snapshots across processes; entries are \
          keyed by content digest and bound to the producing binary, so a stale or \
          corrupt entry reads as a miss, never an error.")
    Term.(ret (const run $ dir_arg $ stats_arg $ gc_arg $ max_bytes_arg $ clear_arg))

(* --- check ------------------------------------------------------------------------ *)

let check_cmd =
  let paths_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"PATH"
          ~doc:
            "InCA-C source files or directories (a directory expands to its *.c files, \
             sorted).")
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Emit each report as a JSON document (one line per file).  The output is \
             valid JSON even when parsing or compilation fails.")
  in
  let run paths sel json =
    let files =
      List.concat_map
        (fun p ->
          if Sys.is_directory p then
            Sys.readdir p |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".c")
            |> List.sort compare
            |> List.map (Filename.concat p)
          else [ p ])
        paths
    in
    let _, strategy = Cli.apply_sel sel in
    let share_bits =
      match strategy.Core.Driver.share with
      | `Shared n -> Some n
      | `Per_proc | `Dma -> None
    in
    let check_file path =
      let file = Filename.basename path in
      let rep =
        match Front.Typecheck.parse_and_check ~file (Cli.read_file path) with
        | prog -> (
            let rep =
              Analysis.Check.report_of ?share_bits
                ~replicate:strategy.Core.Driver.replicate prog
            in
            (* the compiler-side half: FSMD scheduler invariants and
               lowered-IR well-formedness under the selected strategy *)
            match Core.Driver.compile ~strategy prog with
            | c -> Analysis.Check.add_diags rep (Core.Driver.static_diags c)
            | exception e ->
                Analysis.Check.add_diags rep
                  [
                    Analysis.Diag.error ~code:"INCA-S003" Front.Loc.none
                      ("compilation failed: " ^ Printexc.to_string e);
                  ])
        | exception Front.Typecheck.Error (m, loc) ->
            Analysis.Check.failure_report ~code:"INCA-P002" loc m
        | exception Front.Parser.Error (m, loc) ->
            Analysis.Check.failure_report ~code:"INCA-P001" loc m
        | exception Front.Lexer.Error (m, loc) ->
            Analysis.Check.failure_report ~code:"INCA-P001" loc m
        | exception Sys_error m ->
            Analysis.Check.failure_report ~code:"INCA-P001" Front.Loc.none m
      in
      if json then print_endline (Analysis.Check.render_json ~file rep)
      else print_string (Analysis.Check.render ~file rep);
      Analysis.Check.failed rep
    in
    let failed = List.fold_left (fun acc f -> check_file f || acc) false files in
    `Ok (if failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify and lint the program: classify every assertion as \
          proved/violated/unknown by abstract interpretation, run the InCA-C lint suite \
          (BRAM port contention, status-channel overflow, uninitialized reads, undrained \
          streams, dead assertions), and check the scheduled design against FSMD and IR \
          invariants.  Exits 1 when any error-severity finding is reported.")
    Term.(ret (const run $ paths_arg $ Cli.strategy_args () $ json_arg))

(* --- prove ------------------------------------------------------------------------ *)

let prove_cmd =
  let paths_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"PATH"
          ~doc:
            "InCA-C source files or directories (a directory expands to its *.c files, \
             sorted).")
  in
  let depth_arg =
    Arg.(
      value
      & opt int 12
      & info [ "depth" ] ~doc:"Cycles to unroll the design (the bound of the search).")
  in
  let induction_arg =
    Arg.(
      value
      & opt int 4
      & info [ "induction" ]
          ~doc:
            "Maximum k tried for the k-induction unbounded proof of assertions the \
             bounded search could not violate; 0 disables induction.")
  in
  let assertion_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "assertion" ] ~doc:"Check only the assertion with this id." ~docv:"ID")
  in
  let conflict_arg =
    Arg.(
      value
      & opt int 200_000
      & info [ "conflict-limit" ]
          ~doc:"Solver conflict budget per SAT query; exhausted queries report unknown.")
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Emit each report as a deterministic JSON document (one line per file), \
             byte-identical across --jobs values.")
  in
  let run paths depth induction assertion conflict_limit jobs json =
    let files =
      List.concat_map
        (fun p ->
          if Sys.is_directory p then
            Sys.readdir p |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".c")
            |> List.sort compare
            |> List.map (Filename.concat p)
          else [ p ])
        paths
    in
    let prove_file path =
      let file = Filename.basename path in
      match Front.Typecheck.parse_and_check ~file (Cli.read_file path) with
      | exception Front.Typecheck.Error (m, loc) | (exception Front.Parser.Error (m, loc))
      | (exception Front.Lexer.Error (m, loc)) ->
          Printf.eprintf "%s:%d:%d: %s\n" file loc.Front.Loc.line loc.Front.Loc.col m;
          `Error
      | prog -> (
          match Core.Verify.front_of prog with
          | exception e ->
              Printf.eprintf "%s: compilation failed: %s\n" file (Printexc.to_string e);
              `Error
          | f ->
              let absint = Analysis.Absint.analyze prog in
              let ids = Core.Verify.target_ids f in
              let ids =
                match assertion with
                | Some a -> List.filter (( = ) a) ids
                | None -> ids
              in
              let outcomes =
                Exec.Pool.map ?jobs
                  (fun id ->
                    Core.Verify.check_target ~depth ~induction ~conflict_limit f
                      ~absint id)
                  ids
              in
              let results, extra =
                List.fold_left2
                  (fun (rs, ds) id (o : _ Exec.Pool.outcome) ->
                    match o.Exec.Pool.value with
                    | Ok (r, d) ->
                        (r :: rs, match d with Some d -> d :: ds | None -> ds)
                    | Error m ->
                        let info = List.assoc id f.Core.Driver.f_table in
                        ( {
                            Analysis.Verdict.pr_id = id;
                            pr_proc = info.Core.Assertion.aproc;
                            pr_loc = info.Core.Assertion.aloc;
                            pr_text = info.Core.Assertion.text;
                            pr_class =
                              Analysis.Verdict.Bunknown ("worker failed: " ^ m);
                            pr_reach = Analysis.Verdict.Breach_unknown m;
                            pr_dead_lint = false;
                            pr_conflicts = 0;
                            pr_decisions = 0;
                            pr_propagations = 0;
                          }
                          :: rs,
                          ds ))
                  ([], []) ids outcomes
              in
              let results = List.rev results in
              let rep =
                { Analysis.Verdict.p_depth = depth; p_induction = induction;
                  p_results = results }
              in
              let diags =
                Analysis.Diag.order
                  (List.filter_map Analysis.Verdict.diag_of results @ List.rev extra)
              in
              if json then print_endline (Analysis.Verdict.render_json ~file rep)
              else begin
                let s = Rtl.Netlist.summarize (Core.Driver.finish f).Core.Driver.netlist in
                Printf.printf
                  "%s: %d modules, %d primitives, %d sequential state bits\n" file
                  s.Rtl.Netlist.n_modules s.Rtl.Netlist.n_prims
                  (Rtl.Netlist.state_bits (Core.Driver.finish f).Core.Driver.netlist);
                print_string (Analysis.Verdict.render ~file rep);
                List.iter (fun d -> print_endline (Analysis.Diag.to_string d)) diags
              end;
              if
                List.exists
                  (fun (r : Analysis.Verdict.presult) ->
                    match r.Analysis.Verdict.pr_class with
                    | Analysis.Verdict.Bviolated _ -> true
                    | _ -> false)
                  results
              then `Violated
              else `Ok)
    in
    let statuses = List.map prove_file files in
    if List.mem `Error statuses then 2
    else if List.mem `Violated statuses then 1
    else 0
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Bounded model checking of the synthesized design: bit-blast the scheduled \
          FSMDs, stream FIFOs and block RAMs into an AIG, unroll to --depth cycles and \
          classify every assertion as proved (k-induction), violated (with a \
          cycle-accurate counterexample replayed through the simulator), bounded, or \
          unknown.  Also reports checker reachability (cover).  Exits 1 when any \
          replay-confirmed violation is found, 2 on compile errors.")
    Term.(
      const run $ paths_arg $ depth_arg $ induction_arg $ assertion_arg $ conflict_arg
      $ Cli.jobs_arg $ json_arg)

let main =
  let doc = "in-circuit assertion synthesis for high-level synthesis" in
  Cmd.group
    (Cmd.info "inca" ~version:"1.0.0" ~doc)
    [
      compile_cmd; instrument_cmd; vhdl_cmd; simulate_cmd; swsim_cmd; campaign_cmd;
      mine_cmd; check_cmd; fuzz_cmd; prove_cmd; cache_cmd;
    ]

let () = exit (Cmd.eval' main)
