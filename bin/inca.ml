(* inca — In-Circuit Assertions for high-level synthesis.

   Command-line driver around {!Core.Driver}:

     inca compile app.c --strategy optimized
     inca instrument app.c            # print the instrumented HLL (Figure 2)
     inca vhdl app.c -o out.vhdl
     inca simulate app.c --feed input=1,2,3 --drain output --param main:n=3
     inca campaign [app.c] --jobs 4   # fault-injection sweep + coverage report
     inca mine app.c --top 5          # mine invariants, rank by mutant kills
     inca check app.c                 # scheduler invariant lint
     inca fuzz --seed 42 --count 200  # differential torture test + auto-shrink
     inca serve --socket inca.sock    # batch verification daemon
     inca submit --socket inca.sock job.json
     inca jobs                        # print the job/report protocol schema

   The verification subcommands (compile, check, prove, campaign, mine,
   fuzz) are thin adapters: each builds a {!Core.Job}, hands it to
   {!Serve.Sched.run}, and renders the resulting {!Core.Report} — the
   same path every daemon request takes, so [--json] output and a
   served job's report are the same bytes.

   Flag plumbing shared between subcommands (strategy selection,
   testbench stimulus, sweep caps, --jobs) lives in {!Cli}.

   Exit status is meaningful for scripting: [simulate] exits 1 when the
   run fails (assertion failure, hang, or budget), [campaign] exits 1
   when any mutant silently escapes a non-baseline strategy. *)

open Cmdliner

let stimulus_of (st : Cli.stimulus) =
  { Core.Job.feeds = st.Cli.feeds; drains = st.Cli.drains; params = st.Cli.params }

let expand_dirs paths =
  List.concat_map
    (fun p ->
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".c")
        |> List.sort compare
        |> List.map (Filename.concat p)
      else [ p ])
    paths

(* The standard rendering of a scheduled job: the full report envelope
   on stdout under --json (valid JSON with "error" set even on
   failure), the human text plus an stderr error line otherwise. *)
let finish ~json (o : Serve.Sched.outcome) =
  let rep = o.Serve.Sched.sc_report in
  if json then print_endline (Core.Report.to_string rep)
  else begin
    print_string o.Serve.Sched.sc_text;
    match rep.Core.Report.error with Some m -> prerr_endline m | None -> ()
  end;
  rep.Core.Report.exit_code

let write_report path (rep : Core.Report.t) =
  let oc = open_out path in
  output_string oc (Core.Report.to_string rep);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- compile ------------------------------------------------------------------- *)

let compile_cmd =
  let prune_induction_arg =
    Arg.(
      value
      & opt int 0
      & info [ "prune-induction" ]
          ~doc:
            "Also run the bounded model checker and prune every assertion proved by \
             k-induction up to $(docv) (0 disables).  Reported separately from the \
             absint-proved count."
          ~docv:"K")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the area/timing report as a JSON report envelope.")
  in
  let run file (sel : Cli.strategy_sel) prune prune_ind json =
    finish ~json
      (Serve.Sched.run
         (Core.Job.Compile
            {
              Core.Job.c_source = Core.Job.Path file;
              c_strategy = sel.Cli.sname;
              c_nabort = sel.Cli.nabort;
              c_ndebug = sel.Cli.ndebug;
              c_prune_proved = prune;
              c_prune_induction = prune_ind;
            }))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and print an area/timing report")
    Term.(
      const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg
      $ prune_induction_arg $ json_arg)

(* --- instrument ---------------------------------------------------------------- *)

let instrument_cmd =
  let run file sel =
    let c = Cli.load sel file in
    print_endline (Front.Pretty.program_to_string c.Core.Driver.instrumented);
    print_endline "/* --- generated notification function --- */";
    print_endline c.Core.Driver.notification_source;
    0
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Print the instrumented HLL source and the generated notification function")
    Term.(const run $ Cli.file_arg $ Cli.strategy_args ())

(* --- vhdl ------------------------------------------------------------------------ *)

let vhdl_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run file sel prune out =
    Cli.or_static_violation @@ fun () ->
    let c = Cli.load ~prune_proved:prune sel file in
    (match out with
    | None -> print_string c.Core.Driver.vhdl
    | Some path ->
        let oc = open_out path in
        output_string oc c.Core.Driver.vhdl;
        close_out oc;
        Printf.printf "wrote %s\n" path);
    `Ok 0
  in
  Cmd.v
    (Cmd.info "vhdl" ~doc:"Emit VHDL for the synthesized design")
    Term.(ret (const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg $ out_arg))

(* --- simulate -------------------------------------------------------------------- *)

let simulate_cmd =
  let run file sel prune (tb : Cli.testbench) =
    Cli.or_static_violation @@ fun () ->
    let c = Cli.load ~prune_proved:prune sel file in
    let options = Cli.sim_options_of tb in
    let wd, from_auto = Cli.resolve_watchdog tb c.Core.Driver.source in
    if from_auto then
      (* stderr, so scripted stdout comparisons stay stable *)
      (match wd with
      | Some k -> Printf.eprintf "watchdog: auto window %d cycles (proved completion bound)\n" k
      | None -> Printf.eprintf "watchdog: auto requested but liveness not proved; watchdog off\n");
    let options = { options with Core.Driver.watchdog = wd } in
    let r = Core.Driver.simulate ~options c in
    let e = r.Core.Driver.engine in
    (match (tb.Cli.vcd, e.Sim.Engine.vcd) with
    | Some path, Some contents ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote waveform to %s\n" path
    | _ -> ());
    List.iter print_endline r.Core.Driver.messages;
    (match e.Sim.Engine.outcome with
    | Sim.Engine.Finished -> Printf.printf "finished in %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Aborted m -> Printf.printf "aborted after %d cycles: %s\n" e.Sim.Engine.cycles m
    | Sim.Engine.Hang blocked ->
        Printf.printf "HANG after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter
          (fun line -> Printf.printf "  %s\n" line)
          (Sim.Engine.describe_blocked c.Core.Driver.fsmds blocked)
    | Sim.Engine.Livelock spinning ->
        Printf.printf "LIVELOCK detected by watchdog after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter (fun (p, s) -> Printf.printf "  %s spinning in state %d\n" p s) spinning;
        (* scripting contract: a watchdog trip names the livelocked
           processes on stderr alongside the nonzero exit *)
        Printf.eprintf "watchdog: livelocked process(es): %s\n"
          (String.concat ", " (List.map fst spinning))
    | Sim.Engine.Out_of_cycles ->
        Printf.printf "still running after %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Sim_error m -> Printf.printf "simulation error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      e.Sim.Engine.drained;
    List.iter
      (fun (p : Sim.Engine.pipe_stats) ->
        if p.Sim.Engine.issues > 0 then
          Printf.printf "pipeline in %s: II=%d (measured %.2f), latency %d, %d iterations\n"
            p.Sim.Engine.ps_proc p.Sim.Engine.ii_static p.Sim.Engine.ii_measured
            p.Sim.Engine.latency_measured p.Sim.Engine.issues)
      e.Sim.Engine.pipes;
    (* scripting contract: nonzero when the run raised any flag — an
       assertion failure (even under NABORT), a hang, or the budget *)
    match (e.Sim.Engine.outcome, r.Core.Driver.failed_assertions) with
    | Sim.Engine.Finished, [] -> `Ok 0
    | _ -> `Ok 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the design in the cycle-accurate simulator.  Exits 1 when the run fails: \
          an assertion fires, the design hangs, or the cycle budget is exceeded.")
    Term.(
      ret (const run $ Cli.file_arg $ Cli.strategy_args () $ Cli.prune_arg $ Cli.testbench_args))

(* --- swsim ------------------------------------------------------------------------ *)

let swsim_cmd =
  let nabort_arg =
    Arg.(
      value & flag & info [ "nabort" ] ~doc:"Keep running after assertion failures (NABORT).")
  in
  let ndebug_arg =
    Arg.(value & flag & info [ "ndebug" ] ~doc:"Strip all assertions (NDEBUG).")
  in
  let run file nabort ndebug (st : Cli.stimulus) =
    let sel =
      { Cli.sname = "baseline"; strategy = Core.Driver.baseline; nabort; ndebug }
    in
    let c = Cli.load sel file in
    let r =
      Core.Driver.software_sim
        ~options:
          {
            Core.Driver.default_sim_options with
            Core.Driver.feeds = st.Cli.feeds;
            drains = st.Cli.drains;
            params = st.Cli.params;
          }
        ~nabort c
    in
    List.iter print_endline r.Interp.log;
    (match r.Interp.outcome with
    | Interp.Completed -> print_endline "software simulation completed"
    | Interp.Aborted f -> Printf.printf "aborted: %s\n" (Interp.failure_message f)
    | Interp.Deadlocked blocked ->
        print_endline "DEADLOCK:";
        List.iter
          (fun (p, loc) -> Printf.printf "  %s blocked at %s\n" p (Front.Loc.to_string loc))
          blocked
    | Interp.Fuel_exhausted -> print_endline "step budget exhausted (runaway loop?)"
    | Interp.Runtime_error m -> Printf.printf "runtime error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      r.Interp.drained;
    if Interp.ok r then 0 else 1
  in
  Cmd.v
    (Cmd.info "swsim"
       ~doc:
         "Run the program under software simulation (untimed C semantics, the Impulse-C \
          desktop path the paper contrasts against)")
    Term.(const run $ Cli.file_arg $ nabort_arg $ ndebug_arg $ Cli.stimulus_args)

(* --- campaign --------------------------------------------------------------------- *)

let campaign_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "InCA-C source file to campaign.  Omit to sweep the bundled case-study \
             applications (FIR, DCT, Triple-DES, edge detection).")
  in
  let max_mutants_arg =
    Cli.max_mutants_arg
      ~doc:
        "Per-workload mutant cap, taken round-robin across fault kinds; the report \
         counts dropped sites."
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Also write the report envelope as JSON to $(docv)." ~docv:"PATH")
  in
  let runs_arg =
    Arg.(value & flag & info [ "runs" ] ~doc:"Print the classification of every mutant run.")
  in
  let from_reset_arg =
    Arg.(
      value
      & flag
      & info [ "from-reset" ]
          ~doc:
            "Compile and simulate every mutant from cycle zero instead of restoring the \
             fork-point snapshot taken just before its fault site first activates (the \
             split-simulation fast path).  Classification is identical in both modes; \
             use for A/B timing or as an escape hatch.")
  in
  let classes_arg =
    Arg.(
      value
      & flag
      & info [ "classes" ]
          ~doc:
            "Print the per-mutant classification map (one tab-separated \
             workload/strategy/fault/class line per mutant).  Byte-identical between \
             fork-point and --from-reset evaluation; CI diffs the two to gate the \
             invariant.")
  in
  let no_prune_arg =
    Arg.(
      value
      & flag
      & info [ "no-prune" ]
          ~doc:
            "Simulate mutants the liveness pre-filter proves certainly blocking instead \
             of classifying them hang statically.  The classification map is \
             byte-identical either way; CI diffs the two to gate the invariant.")
  in
  let run file stimulus budget watchdog max_mutants jobs json_out show_runs from_reset
      show_classes max_cycles no_prune =
    let o =
      Serve.Sched.run
        (Core.Job.Campaign
           {
             Core.Job.a_source = Option.map (fun p -> Core.Job.Path p) file;
             a_stimulus = stimulus_of stimulus;
             a_budget = budget;
             a_watchdog = watchdog;
             a_max_mutants = max_mutants;
             a_jobs = jobs;
             a_from_reset = from_reset;
             a_max_cycles = max_cycles;
             a_prune_hangs = not no_prune;
           })
    in
    let rep = o.Serve.Sched.sc_report in
    (match o.Serve.Sched.sc_result with
    | Some (Serve.Sched.R_campaign r) ->
        if show_classes then print_string (Campaign.render_classes r)
        else print_endline (Campaign.render r);
        if show_runs then begin
          print_endline "\nper-mutant classification:";
          List.iter
            (fun (run : Campaign.run) ->
              let detail = Campaign.detail_string run.Campaign.detail in
              Printf.printf "  %-10s %-13s %-42s %-9s %6d cyc%s%s\n" run.Campaign.workload
                run.Campaign.strategy
                (Faults.Fault.describe run.Campaign.fault)
                (Campaign.class_name run.Campaign.outcome)
                run.Campaign.cycles
                (if detail <> "" then "  " ^ detail else "")
                (if run.Campaign.retried then "  [retried]" else ""))
            r.Campaign.runs
        end
    | _ -> ());
    (* the report envelope on disk even on failure, so scripted --json
       consumers always get {"schema_version": …, "error": …} *)
    (match json_out with Some path -> write_report path rep | None -> ());
    (* disk-store effectiveness on stderr, so scripted report diffs
       (stdout) stay byte-identical between cold and warm runs *)
    (match Exec.Cache.dir () with
    | Some dir ->
        let s = Exec.Cache.stats () in
        Printf.eprintf "cache: %d disk hit(s), %d disk miss(es) (%s)\n"
          s.Exec.Cache.disk_hits s.Exec.Cache.disk_misses dir
    | None -> ());
    (* scripting contract: nonzero when a mutant silently escaped an
       instrumented strategy (the baseline control has no assertions, so
       its silent corruptions are expected and don't count) *)
    (match rep.Core.Report.error with Some m -> prerr_endline m | None -> ());
    rep.Core.Report.exit_code
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-injection campaign: enumerate every candidate fault site, run one mutant \
          per site under each assertion-synthesis strategy, and print the \
          assertion-coverage report.  Exits 1 when any mutant silently escapes an \
          instrumented (non-baseline) strategy.")
    Term.(
      const run $ file_arg $ Cli.stimulus_args $ Cli.budget_arg $ Cli.sweep_watchdog_arg
      $ max_mutants_arg $ Cli.jobs_arg $ json_arg $ runs_arg $ from_reset_arg
      $ classes_arg $ Cli.max_cycles_arg () $ no_prune_arg)

(* --- mine ------------------------------------------------------------------------- *)

let mine_cmd =
  let strategy_arg =
    Cli.strategy_opt
      ~default:("parallelized", Core.Driver.parallelized)
      ~doc:
        "Synthesis strategy the mined assertions are compiled and ranked under: \
         baseline, unoptimized, parallelized, optimized, or carte."
      ()
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Report the $(docv) best candidates." ~docv:"N")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the ranking as a JSON report envelope instead of text.")
  in
  let emit_arg =
    Arg.(
      value
      & flag
      & info [ "emit" ]
          ~doc:
            "Print the InCA-C source instrumented with the top candidates (after the \
             report).")
  in
  let max_candidates_arg =
    Arg.(
      value
      & opt int 12
      & info [ "max-candidates" ]
          ~doc:"Candidate cap after inference, taken round-robin across template kinds.")
  in
  let max_mutants_arg = Cli.max_mutants_arg ~doc:"Fault-site cap per ranking sweep." in
  let run file strategy top json emit stimulus max_candidates max_mutants budget jobs =
    finish ~json
      (Serve.Sched.run
         (Core.Job.Mine
            {
              Core.Job.m_source = Core.Job.Path file;
              m_strategy = fst strategy;
              m_stimulus = stimulus_of stimulus;
              m_top = top;
              m_max_candidates = max_candidates;
              m_max_mutants = max_mutants;
              m_budget = budget;
              m_jobs = jobs;
              m_emit = emit;
            }))
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine candidate invariants from software-simulation traces (Daikon-style \
          templates over multiple derived stimuli), inject the survivors as in-circuit \
          assertions, and rank them by fault-detection power with area/fmax cost")
    Term.(
      const run $ Cli.file_arg $ strategy_arg $ top_arg $ json_arg $ emit_arg
      $ Cli.stimulus_args $ max_candidates_arg $ max_mutants_arg $ Cli.budget_arg
      $ Cli.jobs_arg)

(* --- fuzz ------------------------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int64 42L & info [ "seed" ] ~doc:"Run seed; every program derives from it.")
  in
  let count_arg =
    Arg.(
      value
      & opt int Torture.Fuzz.default_count
      & info [ "count" ] ~doc:"Number of programs to generate and check.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt int Torture.Fuzz.default_fuel
      & info [ "fuel" ] ~doc:"Generator size budget per program.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Torture.Corpus.default_dir
      & info [ "corpus-dir" ]
          ~doc:"Directory shrunk reproducers are written to (one per divergence class).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Also write the report envelope as JSON to $(docv)." ~docv:"PATH")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt int Torture.Oracle.default_watchdog
      & info [ "watchdog" ]
          ~doc:"Live-lock watchdog window for every circuit run, in cycles.")
  in
  let bmc_depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bmc-depth" ]
          ~doc:
            "Cross-check every statically proved assertion against the bounded model \
             checker to this depth; a replay-confirmed counterexample for a proved \
             assertion is a proved-fired:bmc divergence."
          ~docv:"K")
  in
  let run seed count fuel jobs max_cycles watchdog bmc_depth corpus_dir json_out =
    let o =
      Serve.Sched.run
        (Core.Job.Fuzz
           {
             Core.Job.z_seed = seed;
             z_count = Some count;
             z_fuel = Some fuel;
             z_max_cycles = Some max_cycles;
             z_watchdog = Some watchdog;
             z_bmc_depth = bmc_depth;
             z_corpus_dir = Some corpus_dir;
             z_jobs = jobs;
           })
    in
    let rep = o.Serve.Sched.sc_report in
    print_string o.Serve.Sched.sc_text;
    (match json_out with Some path -> write_report path rep | None -> ());
    (* scripting contract: any divergence fails the run; each one has
       already been shrunk and written to the corpus directory *)
    (match rep.Core.Report.error with Some m -> prerr_endline m | None -> ());
    rep.Core.Report.exit_code
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Torture-test the whole toolchain: generate seeded random InCA-C programs, run \
          each through software simulation (golden) and the cycle-accurate circuit under \
          every assertion-synthesis strategy, and compare outputs, assertion fires, \
          static-analysis verdicts and cycle ratios.  Every divergence is delta-debugged \
          to a minimal reproducer.  The report is byte-identical across runs and --jobs \
          values.  Exits 1 when any divergence is found.")
    Term.(
      const run $ seed_arg $ count_arg $ fuel_arg $ Cli.jobs_arg
      $ Cli.max_cycles_arg ~default:Torture.Oracle.default_max_cycles ()
      $ watchdog_arg $ bmc_depth_arg $ corpus_arg $ json_arg)

(* --- cache ------------------------------------------------------------------------ *)

let cache_cmd =
  let stats_arg =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:"Print store entry count, total bytes and this process's hit counters \
                (the default action).")
  in
  let gc_arg =
    Arg.(
      value
      & flag
      & info [ "gc" ]
          ~doc:"Evict least-recently-used entries until at most $(b,--max-bytes) remain.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~doc:"Size bound for $(b,--gc), in bytes." ~docv:"N")
  in
  let clear_arg =
    Arg.(value & flag & info [ "clear" ] ~doc:"Delete every entry in the store.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ]
          ~doc:"Operate on this store directory instead of $(b,INCA_CACHE_DIR)."
          ~docv:"DIR")
  in
  let print_stats () =
    match Exec.Cache.disk_stats () with
    | None -> ()
    | Some d ->
        Printf.printf "store: %s\n"
          (match Exec.Cache.dir () with Some p -> p | None -> "?");
        Printf.printf "entries: %d\n" d.Exec.Cache.entries;
        Printf.printf "bytes: %d\n" d.Exec.Cache.bytes;
        let s = Exec.Cache.stats () in
        Printf.printf
          "this process: %d memory hits, %d misses; %d disk hits, %d disk misses\n"
          s.Exec.Cache.hits s.Exec.Cache.misses s.Exec.Cache.disk_hits
          s.Exec.Cache.disk_misses
  in
  let run dir _stats gc max_bytes clear =
    (match dir with Some _ -> Exec.Cache.set_dir dir | None -> ());
    match Exec.Cache.dir () with
    | None ->
        `Error
          ( false,
            "no cache directory configured; set INCA_CACHE_DIR or pass --dir" )
    | Some _ ->
        if clear then begin
          Exec.Cache.clear_disk ();
          print_endline "cleared"
        end;
        (match (gc, max_bytes) with
        | true, Some n -> Printf.printf "evicted %d entr(ies)\n" (Exec.Cache.gc ~max_bytes:n)
        | true, None ->
            prerr_endline "cache: --gc requires --max-bytes";
            exit 1
        | false, _ -> ());
        print_stats ();
        `Ok 0
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect and manage the on-disk compile/snapshot store.  The store is enabled \
          by the $(b,INCA_CACHE_DIR) environment variable (or $(b,--dir)) and persists \
          compiled fronts and campaign baseline snapshots across processes; entries are \
          keyed by content digest and bound to the producing binary, so a stale or \
          corrupt entry reads as a miss, never an error.")
    Term.(ret (const run $ dir_arg $ stats_arg $ gc_arg $ max_bytes_arg $ clear_arg))

(* --- check ------------------------------------------------------------------------ *)

let check_cmd =
  let paths_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"PATH"
          ~doc:
            "InCA-C source files or directories (a directory expands to its *.c files, \
             sorted).")
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON report envelope covering every file.  The output is valid \
             JSON even when parsing or compilation fails.")
  in
  let run paths (sel : Cli.strategy_sel) json (only, ignore_) watchdog =
    finish ~json
      (Serve.Sched.run
         (Core.Job.Check
            {
              Core.Job.k_sources =
                List.map (fun p -> Core.Job.Path p) (expand_dirs paths);
              k_strategy = sel.Cli.sname;
              k_nabort = sel.Cli.nabort;
              k_ndebug = sel.Cli.ndebug;
              k_only = only;
              k_ignore = ignore_;
              k_watchdog = watchdog;
            }))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify and lint the program: classify every assertion as \
          proved/violated/unknown by abstract interpretation, run the InCA-C lint suite \
          (BRAM port contention, status-channel overflow, uninitialized reads, undrained \
          streams, dead assertions), and check the scheduled design against FSMD and IR \
          invariants.  Exits 1 when any error-severity finding is reported.")
    Term.(
      const run $ paths_arg $ Cli.strategy_args () $ json_arg $ Cli.code_filter_args
      $ Cli.check_watchdog_arg)

(* --- prove ------------------------------------------------------------------------ *)

let prove_cmd =
  let paths_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"PATH"
          ~doc:
            "InCA-C source files or directories (a directory expands to its *.c files, \
             sorted).")
  in
  let depth_arg =
    Arg.(
      value
      & opt int 12
      & info [ "depth" ] ~doc:"Cycles to unroll the design (the bound of the search).")
  in
  let induction_arg =
    Arg.(
      value
      & opt int 4
      & info [ "induction" ]
          ~doc:
            "Maximum k tried for the k-induction unbounded proof of assertions the \
             bounded search could not violate; 0 disables induction.")
  in
  let assertion_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "assertion" ] ~doc:"Check only the assertion with this id." ~docv:"ID")
  in
  let conflict_arg =
    Arg.(
      value
      & opt int 200_000
      & info [ "conflict-limit" ]
          ~doc:"Solver conflict budget per SAT query; exhausted queries report unknown.")
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Emit one deterministic JSON report envelope covering every file, \
             byte-identical across --jobs values.")
  in
  let run paths depth induction assertion conflict_limit jobs json =
    finish ~json
      (Serve.Sched.run
         (Core.Job.Prove
            {
              Core.Job.p_sources =
                List.map (fun p -> Core.Job.Path p) (expand_dirs paths);
              p_depth = depth;
              p_induction = induction;
              p_assertion = assertion;
              p_conflict_limit = conflict_limit;
              p_jobs = jobs;
            }))
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Bounded model checking of the synthesized design: bit-blast the scheduled \
          FSMDs, stream FIFOs and block RAMs into an AIG, unroll to --depth cycles and \
          classify every assertion as proved (k-induction), violated (with a \
          cycle-accurate counterexample replayed through the simulator), bounded, or \
          unknown.  Also reports checker reachability (cover).  Exits 1 when any \
          replay-confirmed violation is found, 2 on compile errors.")
    Term.(
      const run $ paths_arg $ depth_arg $ induction_arg $ assertion_arg $ conflict_arg
      $ Cli.jobs_arg $ json_arg)

(* --- serve ------------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~doc:"Unix socket path." ~docv:"PATH")

let serve_cmd =
  let run socket jobs =
    match Serve.Server.start ~socket ?jobs () with
    | exception Failure m ->
        prerr_endline m;
        1
    | t ->
        let stop _ = Serve.Server.signal_stop t in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        Printf.eprintf "inca serve: listening on %s\n%!" socket;
        (* idle interruptibly: a signal wakes the sleep and its handler
           runs here, on the main thread, before we join the accept loop *)
        while not (Serve.Server.stopping t) do
          try Unix.sleepf 0.5 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        Serve.Server.wait t;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch verification daemon: accept newline-delimited JSON jobs \
          (compile, check, prove, campaign, mine, fuzz) over a Unix socket, schedule \
          them on the shared worker pool — campaign and mine jobs are sharded by \
          workload x strategy x fault site and merged deterministically — and stream \
          progress events followed by the report envelope.  The in-process and on-disk \
          compile caches stay warm across jobs; stop with SIGINT/SIGTERM.  See \
          $(b,inca jobs) for the protocol schema.")
    Term.(const run $ socket_arg $ Cli.jobs_arg)

let jobs_cmd =
  let run () =
    print_endline (Json.to_string (Serve.Proto.describe ()));
    0
  in
  Cmd.v
    (Cmd.info "jobs"
       ~doc:
         "Print the machine-readable protocol schema of $(b,inca serve): the request \
          and event envelopes, the report envelope, and the fields of every job kind.")
    Term.(const run $ const ())

let submit_cmd =
  let job_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"JOBFILE"
          ~doc:"Job JSON (an envelope or a bare job object); reads stdin when omitted.")
  in
  let run socket jobfile =
    let text =
      match jobfile with
      | Some p -> Cli.read_file p
      | None -> In_channel.input_all stdin
    in
    match Json.parse text with
    | Error e ->
        prerr_endline e;
        3
    | Ok j -> (
        match Serve.Proto.decode_request j with
        | Error e ->
            prerr_endline e;
            3
        | Ok req -> (
            let on_progress ~seq ~label ~data:_ =
              Printf.eprintf "[%d] %s\n%!" seq label
            in
            match
              Serve.Server.request ~socket ~id:req.Serve.Proto.req_id ~on_progress
                req.Serve.Proto.req_job
            with
            | Error e ->
                prerr_endline e;
                3
            | Ok (report, cache) ->
                (* stderr so the stdout envelope diffs clean against a
                   cold CLI run *)
                Printf.eprintf "cache: %d memory hit(s), %d disk hit(s)\n"
                  cache.Serve.Proto.cd_memory_hits cache.Serve.Proto.cd_disk_hits;
                print_endline (Core.Report.to_string report);
                report.Core.Report.exit_code))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one job to a running $(b,inca serve) daemon and print the report \
          envelope on stdout (progress events and cache counters go to stderr).  Exits \
          with the report's exit code, or 3 on connection/protocol errors.")
    Term.(const run $ socket_arg $ job_arg)

let main =
  let doc = "in-circuit assertion synthesis for high-level synthesis" in
  Cmd.group
    (Cmd.info "inca" ~version:"1.0.0" ~doc)
    [
      compile_cmd; instrument_cmd; vhdl_cmd; simulate_cmd; swsim_cmd; campaign_cmd;
      mine_cmd; check_cmd; fuzz_cmd; prove_cmd; cache_cmd; serve_cmd; jobs_cmd;
      submit_cmd;
    ]

let () = exit (Cmd.eval' main)
