(* inca — In-Circuit Assertions for high-level synthesis.

   Command-line driver around {!Core.Driver}:

     inca compile app.c --strategy optimized
     inca instrument app.c            # print the instrumented HLL (Figure 2)
     inca vhdl app.c -o out.vhdl
     inca simulate app.c --feed input=1,2,3 --drain output --param main:n=3
     inca campaign [app.c]            # fault-injection sweep + coverage report
     inca mine app.c --top 5          # mine invariants, rank by mutant kills
     inca check app.c                 # scheduler invariant lint

   Exit status is meaningful for scripting: [simulate] exits 1 when the
   run fails (assertion failure, hang, or budget), [campaign] exits 1
   when any mutant silently escapes a non-baseline strategy. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let strategy_of_string = function
  | "baseline" | "none" -> Ok Core.Driver.baseline
  | "unoptimized" -> Ok Core.Driver.unoptimized
  | "parallelized" -> Ok Core.Driver.parallelized
  | "optimized" -> Ok Core.Driver.optimized
  | "carte" -> Ok Core.Driver.carte
  | s -> Error (`Msg (Printf.sprintf "unknown strategy %s" s))

let strategy_conv =
  Arg.conv (strategy_of_string, fun ppf _ -> Format.fprintf ppf "<strategy>")

let strategy_arg =
  let doc =
    "Assertion synthesis strategy: baseline (assertions stripped), unoptimized \
     (if-conversion, Section 4.1), parallelized (checker tasks, Sections 3.1+3.2), or \
     optimized (parallelized + 32-way channel sharing, Section 3.3), or carte \
     (DMA-mailbox transport, Section 4.3)."
  in
  Arg.(value & opt strategy_conv Core.Driver.optimized & info [ "s"; "strategy" ] ~doc)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"InCA-C source file")

let nabort_arg =
  Arg.(value & flag & info [ "nabort" ] ~doc:"Keep running after assertion failures (NABORT).")

let ndebug_arg =
  Arg.(value & flag & info [ "ndebug" ] ~doc:"Strip all assertions (NDEBUG).")

let load ~ndebug ~nabort ~strategy path =
  let src = read_file path in
  let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename path) src in
  let strategy =
    if ndebug then Core.Driver.baseline else { strategy with Core.Driver.nabort }
  in
  Core.Driver.compile ~strategy prog

let report (c : Core.Driver.compiled) =
  let a = c.Core.Driver.area in
  let t = c.Core.Driver.timing in
  Printf.printf "assertions: %d\n" (List.length c.Core.Driver.asserts);
  List.iter
    (fun (id, (info : Core.Assertion.info)) ->
      Printf.printf "  #%d %s:%d in %s: %s\n" id info.Core.Assertion.aloc.Front.Loc.file
        info.Core.Assertion.aloc.Front.Loc.line info.Core.Assertion.aproc
        info.Core.Assertion.text)
    c.Core.Driver.table;
  Printf.printf "failure channels: %d\n" (List.length c.Core.Driver.plan.Core.Share.streams);
  Printf.printf "\nEP2S180 utilization:\n";
  Printf.printf "  ALUTs        %7d (%.2f%%)\n" a.Rtl.Area.aluts
    (100.0 *. float_of_int a.Rtl.Area.aluts /. 143520.0);
  Printf.printf "  registers    %7d (%.2f%%)\n" a.Rtl.Area.registers
    (100.0 *. float_of_int a.Rtl.Area.registers /. 143520.0);
  Printf.printf "  RAM bits     %7d (%.2f%%)\n" a.Rtl.Area.ram_bits
    (100.0 *. float_of_int a.Rtl.Area.ram_bits /. 9383040.0);
  Printf.printf "  interconnect %7d (%.2f%%)\n" a.Rtl.Area.interconnect
    (100.0 *. float_of_int a.Rtl.Area.interconnect /. 536440.0);
  Printf.printf "  DSP 18x18    %7d\n" a.Rtl.Area.dsps;
  Printf.printf "\ntiming: fmax %.1f MHz (logic %.2f ns + routing %.2f ns)\n"
    t.Rtl.Timing.fmax_mhz t.Rtl.Timing.logic_ns t.Rtl.Timing.route_ns;
  List.iter
    (fun (f : Hls.Fsmd.t) ->
      Printf.printf "process %s: %d states, %d pipelined loop(s)\n"
        f.Hls.Fsmd.proc.Mir.Ir.name (Hls.Fsmd.num_states f)
        (Array.length f.Hls.Fsmd.pipes);
      Array.iter
        (fun (p : Hls.Fsmd.pipe) ->
          Printf.printf "  pipeline: II=%d, depth=%d\n" p.Hls.Fsmd.ii p.Hls.Fsmd.depth)
        f.Hls.Fsmd.pipes)
    c.Core.Driver.fsmds

(* --- compile ------------------------------------------------------------------- *)

let compile_cmd =
  let run file strategy nabort ndebug =
    let c = load ~ndebug ~nabort ~strategy file in
    report c;
    match Core.Driver.check_invariants c with
    | [] -> `Ok 0
    | errs ->
        List.iter prerr_endline errs;
        `Error (false, "scheduler invariant violations")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and print an area/timing report")
    Term.(ret (const run $ file_arg $ strategy_arg $ nabort_arg $ ndebug_arg))

(* --- instrument ---------------------------------------------------------------- *)

let instrument_cmd =
  let run file strategy nabort ndebug =
    let c = load ~ndebug ~nabort ~strategy file in
    print_endline (Front.Pretty.program_to_string c.Core.Driver.instrumented);
    print_endline "/* --- generated notification function --- */";
    print_endline c.Core.Driver.notification_source;
    0
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Print the instrumented HLL source and the generated notification function")
    Term.(const run $ file_arg $ strategy_arg $ nabort_arg $ ndebug_arg)

(* --- vhdl ------------------------------------------------------------------------ *)

let vhdl_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run file strategy nabort ndebug out =
    let c = load ~ndebug ~nabort ~strategy file in
    (match out with
    | None -> print_string c.Core.Driver.vhdl
    | Some path ->
        let oc = open_out path in
        output_string oc c.Core.Driver.vhdl;
        close_out oc;
        Printf.printf "wrote %s\n" path);
    0
  in
  Cmd.v
    (Cmd.info "vhdl" ~doc:"Emit VHDL for the synthesized design")
    Term.(const run $ file_arg $ strategy_arg $ nabort_arg $ ndebug_arg $ out_arg)

(* --- simulate -------------------------------------------------------------------- *)

let parse_feed s =
  match String.index_opt s '=' with
  | Some i ->
      let stream = String.sub s 0 i in
      let vals =
        String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1))
        |> List.filter (fun x -> x <> "")
        |> List.map Int64.of_string
      in
      (stream, vals)
  | None -> invalid_arg (Printf.sprintf "bad feed %S (expected stream=v1,v2,...)" s)

let parse_param s =
  match String.index_opt s ':' with
  | Some i -> (
      let proc = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest '=' with
      | Some j ->
          let name = String.sub rest 0 j in
          let v = Int64.of_string (String.sub rest (j + 1) (String.length rest - j - 1)) in
          (proc, (name, v))
      | None -> invalid_arg (Printf.sprintf "bad param %S" s))
  | None -> invalid_arg (Printf.sprintf "bad param %S (expected proc:name=value)" s)

let simulate_cmd =
  let feeds_arg =
    Arg.(value & opt_all string [] & info [ "feed" ] ~doc:"Testbench input: stream=v1,v2,...")
  in
  let drains_arg =
    Arg.(value & opt_all string [] & info [ "drain" ] ~doc:"Stream to collect output from.")
  in
  let params_arg =
    Arg.(value & opt_all string [] & info [ "param" ] ~doc:"Process parameter: proc:name=value")
  in
  let cycles_arg =
    Arg.(value & opt int 1_000_000 & info [ "max-cycles" ] ~doc:"Cycle budget.")
  in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ]
          ~doc:"Dump a VCD waveform of every FSM state and named register (SignalTap view).")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog" ]
          ~doc:
            "Live-lock watchdog window: stop after N cycles without forward progress \
             (stream push/pop, tap event, or a register/memory value change).")
  in
  let run file strategy nabort ndebug feeds drains params max_cycles vcd watchdog =
    let c = load ~ndebug ~nabort ~strategy file in
    let feeds = List.map parse_feed feeds in
    let params =
      List.fold_left
        (fun acc p ->
          let proc, kv = parse_param p in
          let cur = try List.assoc proc acc with Not_found -> [] in
          (proc, kv :: cur) :: List.remove_assoc proc acc)
        [] params
    in
    let r =
      Core.Driver.simulate
        ~options:
          { Core.Driver.feeds; drains; params; hw_models = []; max_cycles;
            timing_checks = []; trace = vcd <> None; watchdog }
        c
    in
    let e = r.Core.Driver.engine in
    (match (vcd, e.Sim.Engine.vcd) with
    | Some path, Some contents ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote waveform to %s\n" path
    | _ -> ());
    List.iter print_endline r.Core.Driver.messages;
    (match e.Sim.Engine.outcome with
    | Sim.Engine.Finished -> Printf.printf "finished in %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Aborted m -> Printf.printf "aborted after %d cycles: %s\n" e.Sim.Engine.cycles m
    | Sim.Engine.Hang blocked ->
        Printf.printf "HANG after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter (fun (p, s) -> Printf.printf "  %s blocked in state %d\n" p s) blocked
    | Sim.Engine.Livelock spinning ->
        Printf.printf "LIVELOCK detected by watchdog after %d cycles:\n" e.Sim.Engine.cycles;
        List.iter (fun (p, s) -> Printf.printf "  %s spinning in state %d\n" p s) spinning
    | Sim.Engine.Out_of_cycles ->
        Printf.printf "still running after %d cycles\n" e.Sim.Engine.cycles
    | Sim.Engine.Sim_error m -> Printf.printf "simulation error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      e.Sim.Engine.drained;
    List.iter
      (fun (p : Sim.Engine.pipe_stats) ->
        if p.Sim.Engine.issues > 0 then
          Printf.printf "pipeline in %s: II=%d (measured %.2f), latency %d, %d iterations\n"
            p.Sim.Engine.ps_proc p.Sim.Engine.ii_static p.Sim.Engine.ii_measured
            p.Sim.Engine.latency_measured p.Sim.Engine.issues)
      e.Sim.Engine.pipes;
    (* scripting contract: nonzero when the run raised any flag — an
       assertion failure (even under NABORT), a hang, or the budget *)
    match (e.Sim.Engine.outcome, r.Core.Driver.failed_assertions) with
    | Sim.Engine.Finished, [] -> 0
    | _ -> 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the design in the cycle-accurate simulator.  Exits 1 when the run fails: \
          an assertion fires, the design hangs, or the cycle budget is exceeded.")
    Term.(
      const run $ file_arg $ strategy_arg $ nabort_arg $ ndebug_arg $ feeds_arg $ drains_arg
      $ params_arg $ cycles_arg $ vcd_arg $ watchdog_arg)

(* --- swsim ------------------------------------------------------------------------ *)

let swsim_cmd =
  let feeds_arg =
    Arg.(value & opt_all string [] & info [ "feed" ] ~doc:"Testbench input: stream=v1,v2,...")
  in
  let drains_arg =
    Arg.(value & opt_all string [] & info [ "drain" ] ~doc:"Stream to collect output from.")
  in
  let params_arg =
    Arg.(value & opt_all string [] & info [ "param" ] ~doc:"Process parameter: proc:name=value")
  in
  let run file nabort ndebug feeds drains params =
    let c = load ~ndebug ~nabort ~strategy:Core.Driver.baseline file in
    let feeds = List.map parse_feed feeds in
    let params =
      List.fold_left
        (fun acc p ->
          let proc, kv = parse_param p in
          let cur = try List.assoc proc acc with Not_found -> [] in
          (proc, kv :: cur) :: List.remove_assoc proc acc)
        [] params
    in
    let r =
      Core.Driver.software_sim
        ~options:
          { Core.Driver.default_sim_options with Core.Driver.feeds; drains; params }
        ~nabort c
    in
    List.iter print_endline r.Interp.log;
    (match r.Interp.outcome with
    | Interp.Completed -> print_endline "software simulation completed"
    | Interp.Aborted f -> Printf.printf "aborted: %s\n" (Interp.failure_message f)
    | Interp.Deadlocked blocked ->
        print_endline "DEADLOCK:";
        List.iter
          (fun (p, loc) -> Printf.printf "  %s blocked at %s\n" p (Front.Loc.to_string loc))
          blocked
    | Interp.Fuel_exhausted -> print_endline "step budget exhausted (runaway loop?)"
    | Interp.Runtime_error m -> Printf.printf "runtime error: %s\n" m);
    List.iter
      (fun (s, vs) ->
        Printf.printf "%s: %s\n" s (String.concat " " (List.map Int64.to_string vs)))
      r.Interp.drained;
    if Interp.ok r then 0 else 1
  in
  Cmd.v
    (Cmd.info "swsim"
       ~doc:
         "Run the program under software simulation (untimed C semantics, the Impulse-C \
          desktop path the paper contrasts against)")
    Term.(const run $ file_arg $ nabort_arg $ ndebug_arg $ feeds_arg $ drains_arg $ params_arg)

(* --- campaign --------------------------------------------------------------------- *)

(* Derive a usable testbench when the user gives none: feed every
   purely-read stream a ramp, drain every purely-written stream, and
   default every unset process parameter to 32 (sized to the ramp).
   The policy lives in {!Mine.Trace} so mining and campaigning share
   the same default stimulus. *)
let auto_stimulus prog feeds drains params =
  let o = Mine.Trace.auto_options ~feeds ~drains ~params prog in
  (o.Core.Driver.feeds, o.Core.Driver.drains, o.Core.Driver.params)

let collect_params raw =
  List.fold_left
    (fun acc p ->
      let proc, kv = parse_param p in
      let cur = try List.assoc proc acc with Not_found -> [] in
      (proc, kv :: cur) :: List.remove_assoc proc acc)
    [] raw

let campaign_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "InCA-C source file to campaign.  Omit to sweep the bundled case-study \
             applications (FIR, DCT, Triple-DES, edge detection).")
  in
  let feeds_arg =
    Arg.(value & opt_all string [] & info [ "feed" ] ~doc:"Testbench input: stream=v1,v2,...")
  in
  let drains_arg =
    Arg.(value & opt_all string [] & info [ "drain" ] ~doc:"Stream to collect output from.")
  in
  let params_arg =
    Arg.(value & opt_all string [] & info [ "param" ] ~doc:"Process parameter: proc:name=value")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ]
          ~doc:"Per-mutant cycle budget (default: 4x the unfaulted run, plus slack).")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog" ]
          ~doc:"Live-lock watchdog window in cycles (default: budget / 20, floor 200).")
  in
  let max_mutants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-mutants" ]
          ~doc:
            "Per-workload mutant cap, taken round-robin across fault kinds; the report \
             counts dropped sites.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Also write the report as JSON to $(docv)." ~docv:"PATH")
  in
  let runs_arg =
    Arg.(value & flag & info [ "runs" ] ~doc:"Print the classification of every mutant run.")
  in
  let run file feeds drains params budget watchdog max_mutants json_out show_runs =
    let workloads =
      match file with
      | None -> Campaign.bundled ()
      | Some path ->
          let src = read_file path in
          let name = Filename.remove_extension (Filename.basename path) in
          let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename path) src in
          let feeds = List.map parse_feed feeds in
          let params = collect_params params in
          let feeds, drains, params = auto_stimulus prog feeds drains params in
          [
            {
              Campaign.wname = name;
              program = prog;
              options =
                { Core.Driver.default_sim_options with Core.Driver.feeds; drains; params };
            };
          ]
    in
    let config =
      { Campaign.default_config with Campaign.budget; watchdog; max_mutants }
    in
    let r = Campaign.run ~config workloads in
    print_endline (Campaign.render r);
    if show_runs then begin
      print_endline "\nper-mutant classification:";
      List.iter
        (fun (run : Campaign.run) ->
          Printf.printf "  %-10s %-13s %-42s %-9s %6d cyc%s%s\n" run.Campaign.workload
            run.Campaign.strategy
            (Faults.Fault.describe run.Campaign.fault)
            (Campaign.class_name run.Campaign.outcome)
            run.Campaign.cycles
            (if run.Campaign.detail <> "" then "  " ^ run.Campaign.detail else "")
            (if run.Campaign.retried then "  [retried]" else ""))
        r.Campaign.runs
    end;
    (match json_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Campaign.render_json r);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (* scripting contract: nonzero when a mutant silently escaped an
       instrumented strategy (the baseline control has no assertions, so
       its silent corruptions are expected and don't count) *)
    let escapes =
      List.filter
        (fun (run : Campaign.run) ->
          run.Campaign.strategy <> "baseline"
          && run.Campaign.outcome = Campaign.Silent_corruption)
        r.Campaign.runs
    in
    if escapes = [] then 0
    else begin
      Printf.eprintf "%d mutant(s) silently escaped an instrumented strategy\n"
        (List.length escapes);
      1
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-injection campaign: enumerate every candidate fault site, run one mutant \
          per site under each assertion-synthesis strategy, and print the \
          assertion-coverage report.  Exits 1 when any mutant silently escapes an \
          instrumented (non-baseline) strategy.")
    Term.(
      const run $ file_arg $ feeds_arg $ drains_arg $ params_arg $ budget_arg $ watchdog_arg
      $ max_mutants_arg $ json_arg $ runs_arg)

(* --- mine ------------------------------------------------------------------------- *)

let mine_cmd =
  let strategy_name_arg =
    let doc =
      "Synthesis strategy the mined assertions are compiled and ranked under: \
       unoptimized, parallelized, optimized, or carte."
    in
    Arg.(value & opt string "parallelized" & info [ "s"; "strategy" ] ~doc)
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Report the $(docv) best candidates." ~docv:"N")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the ranking as JSON instead of text.")
  in
  let emit_arg =
    Arg.(
      value
      & flag
      & info [ "emit" ]
          ~doc:
            "Print the InCA-C source instrumented with the top candidates (after the \
             report).")
  in
  let feeds_arg =
    Arg.(value & opt_all string [] & info [ "feed" ] ~doc:"Testbench input: stream=v1,v2,...")
  in
  let drains_arg =
    Arg.(value & opt_all string [] & info [ "drain" ] ~doc:"Stream to collect output from.")
  in
  let params_arg =
    Arg.(value & opt_all string [] & info [ "param" ] ~doc:"Process parameter: proc:name=value")
  in
  let max_candidates_arg =
    Arg.(
      value
      & opt int 12
      & info [ "max-candidates" ]
          ~doc:"Candidate cap after inference, taken round-robin across template kinds.")
  in
  let max_mutants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-mutants" ] ~doc:"Fault-site cap per ranking sweep.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~doc:"Per-mutant cycle budget (default: auto).")
  in
  let run file sname top json emit feeds drains params max_candidates max_mutants budget =
    match strategy_of_string sname with
    | Error (`Msg m) -> `Error (false, m)
    | Ok strategy -> (
        let src = read_file file in
        let name = Filename.remove_extension (Filename.basename file) in
        let prog = Front.Typecheck.parse_and_check ~file:(Filename.basename file) src in
        let options =
          Mine.Trace.auto_options ~feeds:(List.map parse_feed feeds) ~drains
            ~params:(collect_params params) prog
        in
        let config =
          {
            Mine.Rank.strategy = (sname, strategy);
            max_candidates;
            max_mutants;
            budget;
            watchdog = None;
          }
        in
        match Mine.Rank.mine ~config ~name ~options prog with
        | r ->
            if json then print_endline (Mine.Rank.render_json ~top r)
            else print_string (Mine.Rank.render ~top r);
            if emit then begin
              match Mine.Infer.inject prog (Mine.Rank.top_candidates ~top r) with
              | Some (instrumented, _) ->
                  print_endline "\n/* --- source instrumented with mined assertions --- */";
                  print_string instrumented
              | None ->
                  prerr_endline "could not inject the top candidates together"
            end;
            `Ok 0
        | exception Invalid_argument m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine candidate invariants from software-simulation traces (Daikon-style \
          templates over multiple derived stimuli), inject the survivors as in-circuit \
          assertions, and rank them by fault-detection power with area/fmax cost")
    Term.(
      ret
        (const run $ file_arg $ strategy_name_arg $ top_arg $ json_arg $ emit_arg
       $ feeds_arg $ drains_arg $ params_arg $ max_candidates_arg $ max_mutants_arg
       $ budget_arg))

(* --- check ------------------------------------------------------------------------ *)

let check_cmd =
  let run file strategy =
    let c = load ~ndebug:false ~nabort:false ~strategy file in
    match Core.Driver.check_invariants c with
    | [] ->
        print_endline "ok: all scheduler invariants hold";
        `Ok 0
    | errs ->
        List.iter prerr_endline errs;
        `Error (false, "invariant violations")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Lint the scheduled design against FSMD invariants")
    Term.(ret (const run $ file_arg $ strategy_arg))

let main =
  let doc = "in-circuit assertion synthesis for high-level synthesis" in
  Cmd.group
    (Cmd.info "inca" ~version:"1.0.0" ~doc)
    [
      compile_cmd; instrument_cmd; vhdl_cmd; simulate_cmd; swsim_cmd; campaign_cmd;
      mine_cmd; check_cmd;
    ]

let () = exit (Cmd.eval' main)
