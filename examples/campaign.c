/* Fault-injection campaign demo: a two-stage smoothing pipeline
   deliberately rich in fault sites — block-RAM stores, 64-bit
   comparisons, several loops, and five output-stream write sites — so
   the campaign engine has every fault kind to mutate:

     narrow-compare      each 64-bit comparison compiled too narrow
     read-for-write      each block-RAM store translated as a read
     stuck-stream-bit    each stream write with a datapath bit stuck
     drop-stream-write   each stream write whose enable never asserts
     loop-off-by-one     each loop bound off by one, both directions

   Run with:

     dune exec bin/inca.exe -- campaign examples/campaign.c

   With no --feed/--param flags the campaign feeds every input stream
   the ramp 1,2,...,48 and sets every process parameter to 32. */

stream int32 raw_in depth 16;
stream int32 mid depth 16;
stream int32 peaks depth 16;
stream int32 packed depth 16;
stream int32 stats depth 16;

process hw smooth(int32 n) {
  int32 hist[8];
  int32 i;
  int64 total;
  total = 0;
  for (i = 0; i < 8; i = i + 1) {
    hist[i] = 0;
  }
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(raw_in);
    assert(x > 0);
    hist[i % 8] = x;
    total = total + x;
    if (total > 1000000) {      /* 64-bit compare: a narrow-compare site */
      total = 0;
    }
    int32 y;
    y = (hist[i % 8] + x) / 2;
    assert(y < 100);            /* range check: catches stuck datapath bits */
    if (y > 24) {
      stream_write(peaks, y);
    }
    stream_write(mid, y);
  }
  assert(total >= 0);
}

process hw pack(int32 n) {
  int32 win[4];
  int32 j;
  int64 sum;
  sum = 0;
  for (j = 0; j < 4; j = j + 1) {
    win[j] = 0;
  }
  for (j = 0; j < n; j = j + 1) {
    int32 v;
    v = stream_read(mid);
    assert(v >= 0);
    assert(v < 100);            /* corrupted upstream values trip here */
    win[j % 4] = v;
    sum = sum + v;
    if (sum > 2000000) {        /* 64-bit compare: a narrow-compare site */
      sum = 0;
    }
    stream_write(packed, win[j % 4] + 1);
  }
  stream_write(stats, j);
  stream_write(stats, 7);
  stream_write(stats, 99);
}
