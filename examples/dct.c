stream int32 dct_in depth 16;
stream int32 dct_out depth 16;

process hw dct(int32 nblocks) {
  const int32 dctc[64] = { 362, 362, 362, 362, 362, 362, 362, 362, 502, 426, 284, 100, -100, -284, -426, -502, 473, 196, -196, -473, -473, -196, 196, 473, 426, -100, -502, -284, 284, 502, 100, -426, 362, -362, -362, 362, 362, -362, -362, 362, 284, -502, 100, 426, -426, -100, 502, -284, 196, -473, 473, -196, -196, 473, -473, 196, 100, -284, 426, -502, 502, -426, 284, -100 };
  int32 x[8];
  int32 b;
  for (b = 0; b < nblocks; b = b + 1) {
    int32 n;
    for (n = 0; n < 8; n = n + 1) {
      x[n] = stream_read(dct_in);
    }
    int32 k;
    for (k = 0; k < 8; k = k + 1) {
      int32 acc;
      acc = 0;
      int32 m;
      for (m = 0; m < 8; m = m + 1) {
        /* ROM-index guard: statically true, so --prune-proved drops it */
        assert(k * 8 + m < 64);
        acc = acc + dctc[k * 8 + m] * x[m];
      }
      int32 y;
      y = acc >> 10;
      assert(y <= 262144);
      assert(y >= -262144);
      stream_write(dct_out, y);
    }
  }
}
