/* A provably deadlocking two-stage pipeline, kept in the tree as the
   liveness analyzer's canary: the producer pushes 8 tokens but the
   consumer pops 9, so the consumer's last stream_read blocks forever
   on every execution.  `inca check` flags it:

     dune exec bin/inca.exe -- check examples/deadlock.c
       error INCA-L106: the design deadlocks on every execution ...

   CI runs `check --only INCA-L106,INCA-L107` over examples/ and
   requires exactly this file to fail; a bundled app being flagged (a
   false deadlock claim) or this file passing (a missed certain
   deadlock) both break the leg. */

stream int32 work depth 4;
stream int32 done depth 4;

process hw producer() {
  int32 i;
  for (i = 0; i < 8; i = i + 1) {
    stream_write(work, i * 3);
  }
}

process hw consumer() {
  int32 i;
  int32 acc;
  acc = 0;
  /* off-by-one against the producer: reads one token too many */
  for (i = 0; i < 9; i = i + 1) {
    int32 x;
    x = stream_read(work);
    acc = acc + x;
    stream_write(done, acc);
  }
}
