(* Debugging a hang with assert(0) tracing (paper Section 5.1).

   A translation fault turns a block-RAM write into a read, so a
   completion flag is never stored and the process spins forever — but
   only in hardware: software simulation interprets the source (no
   fault) and completes.

   Following the paper's methodology, assert(0) statements are placed at
   interesting points and NABORT keeps the application running: the set
   of trace assertions that fired in hardware vs. software pinpoints the
   line where the hang begins.

   Run with: dune exec examples/debug_hang.exe *)

let source =
  {|
stream int32 data_in depth 16;
stream int32 data_out depth 16;

process hw worker(int32 n) {
  int32 flags[4];
  int32 i;
  assert(0);            /* trace point 1: process started */
  flags[0] = 0;
  for (i = 0; i < n; i = i + 1) {
    int32 v;
    v = stream_read(data_in);
    stream_write(data_out, v + 1);
  }
  assert(0);            /* trace point 2: loop finished */
  flags[0] = 1;         /* the completion flag write becomes a READ in hardware */
  int32 done;
  done = flags[0];
  while (done == 0) {
    done = flags[0];    /* spins forever when the store was dropped */
  }
  assert(0);            /* trace point 3: completion observed */
}
|}

let () =
  let program = Front.Typecheck.parse_and_check ~file:"worker.c" source in
  let faults =
    (* the second store in the process (flags[0] = 1) becomes a read *)
    [ Faults.Fault.Read_for_write { fproc = "worker"; select = Faults.Fault.Nth 1 } ]
  in
  let strategy = { Core.Driver.unoptimized with Core.Driver.nabort = true } in
  let compiled = Core.Driver.compile ~strategy ~faults program in
  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.feeds = [ ("data_in", [ 1L; 2L; 3L; 4L ]) ];
      drains = [ "data_out" ];
      params = [ ("worker", [ ("n", 4L) ]) ];
      max_cycles = 5_000;
    }
  in

  print_endline "--- software simulation (NABORT trace) ---";
  let sw = Core.Driver.software_sim ~options ~nabort:true compiled in
  List.iter print_endline sw.Interp.log;
  Printf.printf "outcome: %s\n"
    (match sw.Interp.outcome with
    | Interp.Completed -> "completed"
    | _ -> "did not complete");

  print_endline "\n--- in-circuit execution (NABORT trace) ---";
  let hw = Core.Driver.simulate ~options compiled in
  List.iter print_endline hw.Core.Driver.messages;
  (match hw.Core.Driver.engine.Sim.Engine.outcome with
  | Sim.Engine.Hang blocked ->
      print_endline "outcome: HANG";
      List.iter
        (fun (proc, state) -> Printf.printf "  %s stuck in state %d\n" proc state)
        blocked
  | Sim.Engine.Out_of_cycles -> print_endline "outcome: still spinning after max cycles"
  | o ->
      print_endline
        (match o with
        | Sim.Engine.Finished -> "outcome: finished"
        | Sim.Engine.Aborted m -> "outcome: aborted " ^ m
        | _ -> "outcome: other"));

  (* The spin keeps the FSM busy, so the no-activity hang detector never
     fires and the run above burns the whole cycle budget.  The live-lock
     watchdog spots the lack of forward progress in a few hundred cycles
     and names the spinning process and state. *)
  print_endline "\n--- in-circuit execution with live-lock watchdog (window 200) ---";
  let wd =
    Core.Driver.simulate
      ~options:{ options with Core.Driver.watchdog = Some 200 }
      compiled
  in
  (match wd.Core.Driver.engine.Sim.Engine.outcome with
  | Sim.Engine.Livelock spinning ->
      Printf.printf "outcome: LIVELOCK after only %d cycles (budget was %d)\n"
        wd.Core.Driver.engine.Sim.Engine.cycles options.Core.Driver.max_cycles;
      List.iter
        (fun (proc, state) -> Printf.printf "  %s spinning in state %d\n" proc state)
        spinning
  | _ -> print_endline "outcome: watchdog did not trip (unexpected)");

  print_endline
    "\nTrace points 1 and 2 fired in both runs; trace point 3 fired only in\n\
     software simulation — the hang is between them, at the flags[0] readback."
