(* Dump a bundled application's InCA-C source to stdout:
     dune exec examples/dump_src.exe -- dct > dct.c
   Handy for pointing `inca check` / `inca mine` at the case-study
   programs without copying their generators. *)
let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "" with
  | "fir" -> print_string (Apps.Fir_src.source ())
  | "dct" -> print_string (Apps.Dct_src.source ())
  | "des" -> print_string (Apps.Des_src.demo_source ())
  | "edge" -> print_string (Apps.Edge_src.demo_source ())
  | a ->
      prerr_endline ("usage: dump_src (fir|dct|des|edge); got " ^ a);
      exit 2
