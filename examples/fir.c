/* The paper's 16-tap FIR filter (the bundled Apps.Fir_src program,
   written out so the CLI can chew on it).  Its hand-written assertions
   are overflow guards on the accumulator -- good against stuck-at and
   narrowed-compare faults, blind to trip-count bugs.  Mine it:

     dune exec bin/inca.exe -- mine examples/fir.c --top 5
*/

stream int32 samples_in depth 16;
stream int32 samples_out depth 16;

process hw fir(int32 n) {
  int32 w0;
  int32 w1;
  int32 w2;
  int32 w3;
  int32 w4;
  int32 w5;
  int32 w6;
  int32 w7;
  int32 w8;
  int32 w9;
  int32 w10;
  int32 w11;
  int32 w12;
  int32 w13;
  int32 w14;
  int32 w15;
  int32 i;
  #pragma pipeline
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(samples_in);
    w15 = w14;
    w14 = w13;
    w13 = w12;
    w12 = w11;
    w11 = w10;
    w10 = w9;
    w9 = w8;
    w8 = w7;
    w7 = w6;
    w6 = w5;
    w5 = w4;
    w4 = w3;
    w3 = w2;
    w2 = w1;
    w1 = w0;
    w0 = x;
    int32 acc;
    acc = w0 * 2 + w1 * 6 + w2 * 13 + w3 * 25 + w4 * 41 + w5 * 58 + w6 * 72 + w7 * 79 + w8 * 79 + w9 * 72 + w10 * 58 + w11 * 41 + w12 * 25 + w13 * 13 + w14 * 6 + w15 * 2;
    /* overflow guards: the output shift would hide a wrapped accumulator */
    assert(acc <= 16777216);
    assert(acc >= -16777216);
    stream_write(samples_out, acc >> 9);
  }
}
