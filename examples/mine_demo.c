/* Assertion-mining demo: a windowed accumulator whose hand-written
   assertion is too weak to notice a trip-count bug.

   The only assertion the developer wrote — assert(acc >= 0) — holds no
   matter how many samples the loop consumes, so a loop-off-by-one
   translation fault (the campaign's loop-off-by-one mutants, paper
   Section 5.1) is SILENT: the circuit finishes with 31 or 33 outputs
   instead of 32 and nobody is told.

   Mining fixes that.  The software-simulation traces pin down the
   structure the developer never asserted:

     i in [0, 31]              (value-range on the induction variable)
     trip count == 32          (loop-bound, checked by injected counter)
     writes to win_out == 32   (stream-length, checked at process end)
     writes to win_out nondecreasing  (the ramp keeps acc growing)

   Rank any of those and the off-by-one mutants move from "silent" to
   "detected by assertion".  Try it:

     dune exec bin/inca.exe -- mine examples/mine_demo.c --top 5

   With no --feed/--param flags the miner feeds win_in the ramp
   1,2,...,48 and sets n to 32 — so the +1 mutant silently reads a
   spare 33rd sample rather than hanging, exactly the case the
   hand-written assertion cannot see. */

stream int32 win_in depth 16;
stream int32 win_out depth 16;

process hw window(int32 n) {
  int32 acc;
  int32 i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int32 v;
    v = stream_read(win_in);
    acc = acc + v;
    if (acc > 9000) {
      acc = 9000;
    }
    assert(acc >= 0);
    stream_write(win_out, acc);
  }
}
