/* Model-checking demo: an assertion the abstract interpreter cannot
   prove but k-induction can.

   The masked nibble obviously satisfies nib <= 15 — but the interval
   domain only bounds a bitwise AND when both operands are known
   non-negative, and x comes straight off a stream, so it may be any
   int32.  `inca check` therefore reports the assertion UNKNOWN and
   --prune-proved keeps its checker in silicon.

   The bounded model checker sees through the bit mask: after blasting,
   bits 4..63 of nib are structurally zero, so the checker's fire
   literal is constant false in every reachable (indeed, every
   syntactic) state and the 1-induction step discharges it.  Try:

     dune exec bin/inca.exe -- check examples/prove_demo.c     # unknown
     dune exec bin/inca.exe -- prove examples/prove_demo.c    # proved
     dune exec bin/inca.exe -- compile examples/prove_demo.c --prune-induction 2

   The last command shows the area dividend: the induction proof
   removes the checker hardware exactly like an absint proof would,
   and the compile report accounts the two prune sources separately.

   The second assertion keeps an honest checker in the design: the
   bounded search can reach it (the tap executes from cycle one) but
   neither verifier can prove it for all inputs, because it is simply
   false for large enough feeds — yet no violation exists within small
   depths since the accumulator needs many samples to overflow the
   bound.  It documents the three-way split: proved / bounded /
   violated are different claims. */

stream int32 nib_in depth 16;
stream int32 nib_out depth 16;

process hw nibble(int32 rounds) {
  int32 i;
  int32 total;
  total = 0;
  for (i = 0; i < rounds; i = i + 1) {
    int32 x;
    int32 nib;
    x = stream_read(nib_in);
    nib = x & 15;
    /* absint: unknown (x may be negative); BMC: proved by 1-induction */
    assert(nib <= 15);
    total = total + nib;
    /* holds to any small depth, but not inductively: total grows */
    assert(total <= 1000000);
    stream_write(nib_out, nib);
  }
}
