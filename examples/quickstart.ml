(* Quickstart: compile a small streaming kernel with an in-circuit
   assertion, look at the overhead report, and watch the assertion fire
   in the cycle-accurate simulator.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
stream int32 input depth 16;
stream int32 output depth 16;

process hw scale(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(input);
    assert(x > 0);
    stream_write(output, x * 3);
  }
}
|}

let () =
  (* 1. Compile three ways: no assertions, unoptimized, optimized. *)
  let program = Front.Typecheck.parse_and_check ~file:"scale.c" source in
  let original = Core.Driver.compile ~strategy:Core.Driver.baseline program in
  let unopt = Core.Driver.compile ~strategy:Core.Driver.unoptimized program in
  let opt = Core.Driver.compile ~strategy:Core.Driver.optimized program in
  let report name (c : Core.Driver.compiled) =
    Printf.printf "%-12s ALUTs %5d  regs %5d  RAM bits %6d  fmax %6.1f MHz\n" name
      c.Core.Driver.area.Rtl.Area.aluts c.Core.Driver.area.Rtl.Area.registers
      c.Core.Driver.area.Rtl.Area.ram_bits c.Core.Driver.timing.Rtl.Timing.fmax_mhz
  in
  print_endline "=== area / fmax ===";
  report "original" original;
  report "unoptimized" unopt;
  report "optimized" opt;

  (* 2. The instrumented HLL source (what the framework would hand back
        to the Impulse-C flow, Figure 2 of the paper). *)
  print_endline "\n=== instrumented source (unoptimized assertions) ===";
  print_endline (Front.Pretty.program_to_string unopt.Core.Driver.instrumented);

  (* 3. Run in circuit with a bad input: the assertion fires and the
        notification function prints the ANSI assert message. *)
  print_endline "=== in-circuit run (input contains a zero) ===";
  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.feeds = [ ("input", [ 5L; 9L; 0L; 7L ]) ];
      drains = [ "output" ];
      params = [ ("scale", [ ("n", 4L) ]) ];
    }
  in
  let result = Core.Driver.simulate ~options opt in
  List.iter print_endline result.Core.Driver.messages;
  (match result.Core.Driver.engine.Sim.Engine.outcome with
  | Sim.Engine.Aborted msg -> Printf.printf "application halted: %s\n" msg
  | Sim.Engine.Finished -> print_endline "application finished"
  | Sim.Engine.Hang _ -> print_endline "application hung"
  | Sim.Engine.Livelock _ -> print_endline "application live-locked"
  | Sim.Engine.Out_of_cycles -> print_endline "out of cycles"
  | Sim.Engine.Sim_error e -> Printf.printf "simulation error: %s\n" e);
  Printf.printf "cycles: %d\n" result.Core.Driver.engine.Sim.Engine.cycles;

  (* 4. The same program under software simulation passes with good
        input and catches the failure with C semantics. *)
  print_endline "\n=== software simulation (same bad input) ===";
  let sw =
    Core.Driver.software_sim
      ~options:{ options with Core.Driver.max_cycles = 100_000 }
      opt
  in
  (match sw.Interp.outcome with
  | Interp.Aborted f -> print_endline (Interp.failure_message f)
  | _ -> print_endline "software simulation completed");

  (* 5. Generated artifacts. *)
  print_endline "\n=== generated notification function (C) ===";
  print_endline opt.Core.Driver.notification_source
