(* In-circuit verification (paper Section 5.1, Figure 3).

   Two bugs that software simulation cannot see:

   1. A hardware translation fault: the HLS tool compiles a 64-bit
      comparison as a 5-bit comparison, so 4294967286 > 4294967296
      (false in C) evaluates true in circuit and a negative array index
      escapes.  The in-circuit assertion catches it; software simulation
      passes.

   2. An external HDL function whose C model (used by software
      simulation) disagrees with its hardware behaviour.  Again only the
      in-circuit assertion sees the failure.

   Run with: dune exec examples/verify_bug.exe *)

let source =
  {|
stream int32 data_out depth 16;
extern int32 scale2(int32) latency 2;

process hw check(int32 n) {
  int32 frame[32];
  int64 c1;
  int64 c2;
  int32 addr;
  c1 = 4294967296;
  c2 = 4294967286;
  addr = 0;
  if (c2 > c1) {
    addr = addr - 10;
  }
  assert(addr >= 0);
  frame[addr] = n;
  int32 y;
  y = scale2(n);
  assert(y == n * 2);
  stream_write(data_out, y);
}
|}

let outcome_to_string = function
  | Sim.Engine.Finished -> "finished"
  | Sim.Engine.Aborted m -> "ABORTED: " ^ m
  | Sim.Engine.Hang _ -> "hang"
  | Sim.Engine.Livelock _ -> "livelock"
  | Sim.Engine.Out_of_cycles -> "out of cycles"
  | Sim.Engine.Sim_error m -> "error: " ^ m

let () =
  let program = Front.Typecheck.parse_and_check ~file:"verify.c" source in
  (* the C model of the external HDL function is correct... *)
  let c_model = [ ("scale2", fun vs -> Int64.mul 2L (List.hd vs)) ] in
  (* ...but the hardware implementation has an off-by-one bug *)
  let hw_model = [ ("scale2", fun vs -> Int64.add 1L (Int64.mul 2L (List.hd vs))) ] in
  let params = [ ("check", [ ("n", 21L) ]) ] in

  print_endline "--- bug 1: narrowed comparison (Figure 3) ---";
  let faults =
    [ Faults.Fault.Narrow_compare
        { fproc = "check"; select = Faults.Fault.All; mask_bits = 5 } ]
  in
  let compiled = Core.Driver.compile ~strategy:Core.Driver.parallelized ~faults program in
  let options =
    {
      Core.Driver.default_sim_options with
      Core.Driver.params;
      drains = [ "data_out" ];
      hw_models = c_model (* hardware model correct for this part *);
    }
  in
  let sw = Core.Driver.software_sim ~options compiled in
  Printf.printf "software simulation: %s\n"
    (match sw.Interp.outcome with
    | Interp.Completed -> "passes (the bug is invisible)"
    | Interp.Aborted f -> Interp.failure_message f
    | _ -> "unexpected outcome");
  let hw = Core.Driver.simulate ~options compiled in
  Printf.printf "in-circuit execution: %s\n"
    (outcome_to_string hw.Core.Driver.engine.Sim.Engine.outcome);

  print_endline "\n--- bug 2: external HDL function mismatch ---";
  let compiled = Core.Driver.compile ~strategy:Core.Driver.parallelized program in
  let sw =
    Core.Driver.software_sim
      ~options:{ options with Core.Driver.hw_models = c_model }
      compiled
  in
  Printf.printf "software simulation (C model): %s\n"
    (match sw.Interp.outcome with
    | Interp.Completed -> "passes"
    | Interp.Aborted f -> Interp.failure_message f
    | _ -> "unexpected outcome");
  let hw =
    Core.Driver.simulate
      ~options:{ options with Core.Driver.hw_models = hw_model }
      compiled
  in
  Printf.printf "in-circuit execution (HDL): %s\n"
    (outcome_to_string hw.Core.Driver.engine.Sim.Engine.outcome)
