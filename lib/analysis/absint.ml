(** Forward abstract interpretation over {!Domain} (see absint.mli for
    the soundness contract against {!Interp}). *)

open Front.Ast
module Loc = Front.Loc
module Pretty = Front.Pretty
module SM = Map.Make (String)

type klass =
  | Proved
  | Violated of (string * int64) list
  | Unknown

type verdict = { vproc : string; vloc : Loc.t; vtext : string; vclass : klass }

type result = {
  verdicts : verdict list;
  uninit_reads : (string * string * Loc.t) list;
  dead : (string * Loc.t * string * string) list;
}

let class_name = function
  | Proved -> "proved"
  | Violated _ -> "violated"
  | Unknown -> "unknown"

let free_vars = Front.Ast.free_vars

(* --- environments --------------------------------------------------------- *)

type scalar = { dom : Domain.t; sty : ty; uninit : bool }
type arr = { adom : Domain.t; alen : int }

type env = {
  scalars : scalar SM.t;
  arrays : arr SM.t;
  facts : (string * Loc.t * expr) list;
      (** asserted conditions still active on every path to here (the
          dead-assertion lint; never used to refine the domain) *)
}

type state = env option (* None = unreachable *)

let fact_mem text facts = List.exists (fun (t, _, _) -> t = text) facts

let env_join a b =
  {
    scalars =
      SM.merge
        (fun _ l r ->
          match (l, r) with
          | Some l, Some r ->
              Some { dom = Domain.join l.dom r.dom; sty = l.sty; uninit = l.uninit || r.uninit }
          | _ -> None (* declared in only one branch: out of scope after *))
        a.scalars b.scalars;
    arrays =
      SM.merge
        (fun _ l r ->
          match (l, r) with
          | Some l, Some r -> Some { adom = Domain.join l.adom r.adom; alen = l.alen }
          | _ -> None)
        a.arrays b.arrays;
    facts = List.filter (fun (t, _, _) -> fact_mem t b.facts) a.facts;
  }

let env_widen old_ next =
  {
    scalars =
      SM.merge
        (fun _ l r ->
          match (l, r) with
          | Some l, Some r ->
              Some
                { dom = Domain.widen l.sty l.dom r.dom; sty = l.sty; uninit = l.uninit || r.uninit }
          | _ -> None)
        old_.scalars next.scalars;
    arrays =
      SM.merge
        (fun _ l r ->
          match (l, r) with
          | Some l, Some r ->
              Some { adom = Domain.widen (Tint (Signed, W64)) l.adom r.adom; alen = l.alen }
          | _ -> None)
        old_.arrays next.arrays;
    facts = List.filter (fun (t, _, _) -> fact_mem t next.facts) old_.facts;
  }

let env_leq a b =
  SM.for_all
    (fun k (l : scalar) ->
      match SM.find_opt k b.scalars with
      | Some r -> Domain.leq l.dom r.dom && ((not l.uninit) || r.uninit)
      | None -> false)
    a.scalars
  && SM.cardinal a.scalars = SM.cardinal b.scalars
  && SM.for_all
       (fun k (l : arr) ->
         match SM.find_opt k b.arrays with
         | Some r -> Domain.leq l.adom r.adom
         | None -> false)
       a.arrays
  && SM.cardinal a.arrays = SM.cardinal b.arrays
  && List.for_all (fun (t, _, _) -> fact_mem t a.facts) b.facts

let join_state a b =
  match (a, b) with
  | None, s | s, None -> s
  | Some a, Some b -> Some (env_join a b)

let ( >>= ) st f = match st with None -> None | Some env -> f env

(* --- analysis context ----------------------------------------------------- *)

type ctx = {
  proc : string;
  poisoned : string list;
      (** names declared more than once in the process (or colliding
          with a parameter): a flat environment cannot scope them, so
          they are pinned to the unconstrained top value *)
  verdict_tbl : (string * string * int, klass) Hashtbl.t;
      (** (proc, text, line/col key) -> last-visit classification; the
          final visit of any statement happens under the stable
          narrowed loop environments, so it both over-approximates
          every concrete visit and is the most precise sound answer *)
  dead_tbl : (string * string * int, string option) Hashtbl.t;
  uninit_tbl : (string * string, Loc.t) Hashtbl.t;
}

let loc_key (l : Loc.t) = (l.Loc.line * 4096) + l.Loc.col

let poisoned ctx x = List.mem x ctx.poisoned

(* --- expression evaluation ------------------------------------------------ *)

let rec eval ctx env (x : expr) : Domain.t =
  match x.e with
  | Int n -> Domain.const_of x.ety n
  | Bool b -> Domain.const (Interp.Value.of_bool b)
  | Var name ->
      if poisoned ctx name then Domain.top
      else (
        match SM.find_opt name env.scalars with
        | Some cell ->
            if cell.uninit && not (Hashtbl.mem ctx.uninit_tbl (ctx.proc, name)) then
              Hashtbl.replace ctx.uninit_tbl (ctx.proc, name) x.eloc;
            cell.dom
        | None -> Domain.top)
  | Index (name, idx) ->
      ignore (eval ctx env idx);
      if poisoned ctx name then Domain.top
      else (
        match SM.find_opt name env.arrays with
        | Some a -> a.adom
        | None -> Domain.top)
  | Unop (op, a) -> Domain.unop op a.ety (eval ctx env a)
  | Binop (op, a, b) -> Domain.binop op a.ety (eval ctx env a) (eval ctx env b)
  | Cast (ty, a) -> Domain.cast ~to_ty:ty (eval ctx env a)
  | Call (_, args) ->
      List.iter (fun a -> ignore (eval ctx env a)) args;
      Domain.top_of_ty x.ety

(* --- condition refinement ------------------------------------------------- *)

let set_scalar ctx env x dom : state =
  if poisoned ctx x || Domain.is_bot dom then
    if Domain.is_bot dom then None else Some env
  else
    match SM.find_opt x env.scalars with
    | Some cell -> Some { env with scalars = SM.add x { cell with dom } env.scalars }
    | None -> Some env

let swap_cmp = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | o -> o

let rec assume ctx env (c : expr) keep : state =
  match (Domain.truth (eval ctx env c), keep) with
  | Domain.False, true | Domain.True, false -> None
  | _ -> (
      match c.e with
      | Bool b -> if b = keep then Some env else None
      | Unop (Lnot, e) -> assume ctx env e (not keep)
      | Binop (Land, a, b) when keep ->
          assume ctx env a true >>= fun env -> assume ctx env b true
      | Binop (Land, a, b) ->
          join_state
            (assume ctx env a false)
            (assume ctx env a true >>= fun env' -> assume ctx env' b false)
      | Binop (Lor, a, b) when not keep ->
          assume ctx env a false >>= fun env -> assume ctx env b false
      | Binop (Lor, a, b) ->
          join_state
            (assume ctx env a true)
            (assume ctx env a false >>= fun env' -> assume ctx env' b true)
      | Binop (op, a, b) when is_comparison op ->
          let da = eval ctx env a and db = eval ctx env b in
          let ty = a.ety in
          let st =
            match a.e with
            | Var x -> set_scalar ctx env x (Domain.refine_cmp op ty keep da db)
            | _ -> Some env
          in
          st >>= fun env ->
          (match b.e with
          | Var y ->
              set_scalar ctx env y (Domain.refine_cmp (swap_cmp op) ty keep db da)
          | _ -> Some env)
      | _ -> Some env)

(* --- violation witnesses -------------------------------------------------- *)

let witness ctx env (c : expr) =
  List.filter_map
    (fun x ->
      if poisoned ctx x then None
      else
        match SM.find_opt x env.scalars with
        | Some cell -> Option.map (fun v -> (x, v)) (Domain.representative cell.dom)
        | None -> None)
    (free_vars c)

(* --- dead-assertion implication ------------------------------------------- *)

(* Constant value of a closed (variable-free) expression. *)
let rec closed_const (e : expr) : int64 option =
  match e.e with
  | Int n -> Some (Interp.Value.wrap_ty e.ety n)
  | Bool b -> Some (Interp.Value.of_bool b)
  | Unop (op, a) ->
      Option.map (fun v -> Interp.Value.unop op a.ety v) (closed_const a)
  | Binop (op, a, b) -> (
      match (closed_const a, closed_const b) with
      | Some va, Some vb -> (
          try Some (Interp.Value.binop op a.ety va vb)
          with Interp.Value.Division_by_zero -> None)
      | _ -> None)
  | Cast (ty, a) ->
      Option.map (fun v -> Interp.Value.cast ~from_ty:a.ety ~to_ty:ty v) (closed_const a)
  | Var _ | Index _ | Call _ -> None

(* [implies f c]: does the earlier asserted fact [f] logically imply
   [c]?  Textual identity, or both are comparisons of the same subject
   expression against constants and [f]'s solution set is contained in
   [c]'s. *)
let implies (f : expr) (c : expr) =
  Pretty.expr_to_string f = Pretty.expr_to_string c
  ||
  match (f.e, c.e) with
  | Binop (opf, lf, rf), Binop (opc, lc, rc)
    when is_comparison opf && is_comparison opc
         && Pretty.expr_to_string lf = Pretty.expr_to_string lc
         && equal_ty lf.ety lc.ety -> (
      match (closed_const rf, closed_const rc) with
      | Some vf, Some vc ->
          let ty = lf.ety in
          let df = Domain.refine_cmp opf ty true Domain.top (Domain.const vf) in
          let dc = Domain.refine_cmp opc ty true Domain.top (Domain.const vc) in
          (not (Domain.equal dc Domain.top)) && Domain.leq df dc
      | _ -> false)
  | _ -> false

(* --- statement execution -------------------------------------------------- *)

let rec exec ctx (st : state) (stmt : stmt) : state =
  match st with
  | None -> None
  | Some env -> (
      match stmt.s with
      | Decl (Tarray (_, n), x, _) ->
          (* Interp zero-fills fresh arrays *)
          if poisoned ctx x then Some env
          else Some { env with arrays = SM.add x { adom = Domain.const 0L; alen = n } env.arrays }
      | Const_array (elem, x, vals) ->
          if poisoned ctx x then Some env
          else
            let adom =
              List.fold_left
                (fun acc v -> Domain.join acc (Domain.const_of elem v))
                Domain.Bot vals
            in
            Some { env with arrays = SM.add x { adom; alen = List.length vals } env.arrays }
      | Decl (ty, x, init) ->
          let dom, uninit =
            match init with
            | Some e -> (eval ctx env e, false)
            | None -> (Domain.const 0L, true) (* Interp zero-initializes *)
          in
          if poisoned ctx x then Some env
          else Some { env with scalars = SM.add x { dom; sty = ty; uninit } env.scalars }
      | Assign (Lvar x, e) ->
          let dom = eval ctx env e in
          let facts = List.filter (fun (_, _, f) -> not (List.mem x (free_vars f))) env.facts in
          if poisoned ctx x then Some { env with facts }
          else (
            match SM.find_opt x env.scalars with
            | Some cell ->
                Some
                  {
                    env with
                    scalars = SM.add x { cell with dom; uninit = false } env.scalars;
                    facts;
                  }
            | None ->
                Some
                  {
                    env with
                    scalars = SM.add x { dom; sty = e.ety; uninit = false } env.scalars;
                    facts;
                  })
      | Assign (Lindex (a, i), e) ->
          ignore (eval ctx env i);
          let dom = eval ctx env e in
          let facts =
            List.filter
              (fun (_, _, f) ->
                not (List.exists (fun n -> n = a) (arrays_read f)))
              env.facts
          in
          if poisoned ctx a then Some { env with facts }
          else (
            match SM.find_opt a env.arrays with
            | Some cell ->
                (* weak update: the element summary absorbs the store *)
                Some
                  {
                    env with
                    arrays = SM.add a { cell with adom = Domain.join cell.adom dom } env.arrays;
                    facts;
                  }
            | None -> Some { env with facts })
      | If (c, t, f) ->
          let st_t = exec_list ctx (assume ctx env c true) t in
          let st_f = exec_list ctx (assume ctx env c false) f in
          join_state st_t st_f
      | While (c, body) -> loop ctx env c body None
      | For (h, body) ->
          let st = match h.init with Some s -> exec ctx (Some env) s | None -> Some env in
          st >>= fun env -> loop ctx env h.cond body h.step
      | Assert (c, text) ->
          let d = eval ctx env c in
          let k =
            match Domain.truth d with
            | Domain.True -> Proved
            | Domain.False -> Violated (witness ctx env c)
            | Domain.Maybe -> Unknown
          in
          let key = (ctx.proc, text, loc_key stmt.sloc) in
          Hashtbl.replace ctx.verdict_tbl key k;
          Hashtbl.replace ctx.dead_tbl key
            (Option.map
               (fun (t, _, _) -> t)
               (List.find_opt (fun (_, _, f) -> implies f c) env.facts));
          (* record the fact for the dead-assert lint, but never refine
             the domain: NABORT executions continue past a failure *)
          let facts =
            if k <> Violated [] && not (fact_mem text env.facts) then
              (text, stmt.sloc, c) :: env.facts
            else env.facts
          in
          Some { env with facts }
      | Stream_read (lv, _) -> (
          (* feed data reaches the reader without canonicalization *)
          match lv with
          | Lvar x ->
              let facts =
                List.filter (fun (_, _, f) -> not (List.mem x (free_vars f))) env.facts
              in
              if poisoned ctx x then Some { env with facts }
              else (
                match SM.find_opt x env.scalars with
                | Some cell ->
                    Some
                      {
                        env with
                        scalars =
                          SM.add x { cell with dom = Domain.top; uninit = false } env.scalars;
                        facts;
                      }
                | None -> Some { env with facts })
          | Lindex (a, i) ->
              ignore (eval ctx env i);
              let facts =
                List.filter
                  (fun (_, _, f) -> not (List.exists (fun n -> n = a) (arrays_read f)))
                  env.facts
              in
              if poisoned ctx a then Some { env with facts }
              else (
                match SM.find_opt a env.arrays with
                | Some cell ->
                    Some
                      {
                        env with
                        arrays =
                          SM.add a { cell with adom = Domain.join cell.adom Domain.top } env.arrays;
                        facts;
                      }
                | None -> Some { env with facts }))
      | Stream_write (_, e) ->
          ignore (eval ctx env e);
          Some env
      | Return _ -> None
      | Block b -> exec_list ctx (Some env) b
      | Tapstmt (_, args) ->
          List.iter (fun a -> ignore (eval ctx env a)) args;
          Some env)

and exec_list ctx st stmts = List.fold_left (exec ctx) st stmts

(* Loop-head fixpoint: Kleene iteration with a widening delay of 2,
   then two narrowing passes (re-applying the monotone loop functional
   from a post-fixpoint descends but stays above the least fixpoint).
   The exit state re-applies the negated condition. *)
and loop ctx env0 cond body step : state =
  let f (head : env) : env =
    let entry = assume ctx head cond true in
    let out = exec_list ctx entry body in
    let out = match step with Some s -> exec ctx out s | None -> out in
    match join_state (Some env0) out with
    | Some e -> e
    | None -> env0 (* unreachable: join with env0 is always Some *)
  in
  let rec iterate head n =
    let next = f head in
    if env_leq next head then head
    else
      let grown = env_join head next in
      let head' = if n >= 2 then env_widen head grown else grown in
      if n > 64 then head' (* termination backstop; widening converges long before *)
      else iterate head' (n + 1)
  in
  let stable = iterate env0 0 in
  let narrowed = f (f stable) in
  assume ctx narrowed cond false

(* --- trip counts ---------------------------------------------------------- *)

let loop_trips (h : for_header) : int option =
  let init_of = function
    | Some { s = Decl (_, v, Some e); _ } | Some { s = Assign (Lvar v, e); _ } ->
        Option.map (fun c -> (v, c)) (closed_const e)
    | _ -> None
  in
  let step_of = function
    | Some { s = Assign (Lvar v, { e = Binop (Add, { e = Var v'; _ }, k); _ }); _ }
      when v = v' ->
        Option.map (fun c -> (v, c)) (closed_const k)
    | Some { s = Assign (Lvar v, { e = Binop (Add, k, { e = Var v'; _ }); _ }); _ }
      when v = v' ->
        Option.map (fun c -> (v, c)) (closed_const k)
    | _ -> None
  in
  match (init_of h.init, h.cond.e, step_of h.step) with
  | Some (v, c0), Binop ((Lt | Le) as op, { e = Var v'; _ }, bound), Some (v'', k)
    when v = v' && v = v'' && Int64.compare k 0L > 0 -> (
      match closed_const bound with
      | Some b ->
          let upper = if op = Le then Int64.add b 1L else b in
          let span = Int64.sub upper c0 in
          if Int64.compare span 0L <= 0 then Some 0
          else
            let trips = Int64.div (Int64.add span (Int64.sub k 1L)) k in
            if Int64.compare trips (Int64.of_int max_int) > 0 then None
            else Some (Int64.to_int trips)
      | None -> None)
  | _ -> None

(* --- whole-program analysis ----------------------------------------------- *)

let duplicates_of (p : proc) =
  let declared = ref (List.map fst p.params) in
  let dups = ref [] in
  iter_stmts
    (fun st ->
      match st.s with
      | Decl (_, x, _) | Const_array (_, x, _) ->
          if List.mem x !declared then (
            if not (List.mem x !dups) then dups := x :: !dups)
          else declared := x :: !declared
      | _ -> ())
    p.body;
  !dups

let analyze (prog : program) : result =
  let verdict_tbl = Hashtbl.create 64 in
  let dead_tbl = Hashtbl.create 64 in
  let uninit_tbl = Hashtbl.create 64 in
  let hw = List.filter (fun p -> p.kind = Hardware) prog.procs in
  List.iter
    (fun (p : proc) ->
      let ctx =
        { proc = p.pname; poisoned = duplicates_of p; verdict_tbl; dead_tbl; uninit_tbl }
      in
      let env0 =
        List.fold_left
          (fun env (x, ty) ->
            match ty with
            | Tarray (_, n) ->
                { env with arrays = SM.add x { adom = Domain.top; alen = n } env.arrays }
            | _ ->
                {
                  env with
                  scalars =
                    SM.add x { dom = Domain.top_of_ty ty; sty = ty; uninit = false } env.scalars;
                })
          { scalars = SM.empty; arrays = SM.empty; facts = [] }
          p.params
      in
      ignore (exec_list ctx (Some env0) p.body))
    hw;
  let verdicts =
    List.concat_map
      (fun (p : proc) ->
        List.map
          (fun (loc, _, text) ->
            let k =
              match Hashtbl.find_opt verdict_tbl (p.pname, text, loc_key loc) with
              | Some k -> k
              | None -> Unknown (* never reached: conservatively unknown *)
            in
            { vproc = p.pname; vloc = loc; vtext = text; vclass = k })
          (assertions_of p.body))
      hw
  in
  let dead =
    List.concat_map
      (fun (p : proc) ->
        List.filter_map
          (fun (loc, _, text) ->
            match Hashtbl.find_opt dead_tbl (p.pname, text, loc_key loc) with
            | Some (Some by) -> Some (p.pname, loc, text, by)
            | _ -> None)
          (assertions_of p.body))
      hw
  in
  let uninit_reads =
    Hashtbl.fold (fun (pr, v) loc acc -> (pr, v, loc) :: acc) uninit_tbl []
    |> List.sort (fun (p1, v1, l1) (p2, v2, l2) ->
           compare
             (p1, l1.Loc.file, l1.Loc.line, l1.Loc.col, v1)
             (p2, l2.Loc.file, l2.Loc.line, l2.Loc.col, v2))
  in
  { verdicts; uninit_reads; dead }
