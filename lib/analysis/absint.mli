(** Forward abstract interpretation of elaborated InCA-C over
    {!Domain} (interval x constant x parity), with widening/narrowing
    at loop heads.

    The concrete semantics being over-approximated is {!Interp}:
    declarations zero-initialize, arrays are element-summarized, stream
    reads are unconstrained (testbench feeds bypass canonicalization),
    process parameters are unconstrained.  The environment is *not*
    refined after an assertion: under NABORT execution continues past a
    failed assert, so a [Proved] classification may never lean on an
    earlier (possibly failing) assertion — pruned assertions stay
    sound under every strategy. *)

type klass =
  | Proved                               (** can never fire *)
  | Violated of (string * int64) list
      (** fires on every reaching execution; the witness gives one
          falsifying valuation of the condition's free variables *)
  | Unknown

type verdict = {
  vproc : string;
  vloc : Front.Loc.t;
  vtext : string;         (** source text of the condition *)
  vclass : klass;
}

type result = {
  verdicts : verdict list;
      (** hardware-process assertions, process order then source order
          (the {!Core.Assertion.extract} order) *)
  uninit_reads : (string * string * Front.Loc.t) list;
      (** (process, variable, first read location) read before any
          assignment *)
  dead : (string * Front.Loc.t * string * string) list;
      (** (process, location, text, subsuming earlier text) assertions
          implied by an earlier active assertion on every path *)
}

val analyze : Front.Ast.program -> result

val class_name : klass -> string

(** Trip count of a canonical counted for-loop (constant init, [<]/[<=]
    constant bound, constant positive additive step) — the static twin
    of the mining subsystem's [Loop_bound] template.  [None] when the
    header is not in that shape. *)
val loop_trips : Front.Ast.for_header -> int option

(** Scalar variables read by an expression (array names excluded). *)
val free_vars : Front.Ast.expr -> string list
