(** Loop iteration bounds — see {!Bound} interface. *)

open Front.Ast

type t = Exact of int | At_most of int | Unknown

let to_string = function
  | Exact n -> Printf.sprintf "exactly %d" n
  | At_most n -> Printf.sprintf "at most %d" n
  | Unknown -> "unknown"

(* Constant value of an expression that is closed under [env]: literals,
   casts, arithmetic, and variables bound in [env].  This generalizes
   {!Absint.closed_const} with a parameter environment so testbench
   parameters ([fir:n=32]) make data-dependent trip counts concrete. *)
let rec closed_const ?(env = []) (e : expr) : int64 option =
  match e.e with
  | Int n -> Some (Interp.Value.wrap_ty e.ety n)
  | Bool b -> Some (Interp.Value.of_bool b)
  | Var x ->
      Option.map (fun v -> Interp.Value.wrap_ty e.ety v) (List.assoc_opt x env)
  | Unop (op, a) ->
      Option.map (fun v -> Interp.Value.unop op a.ety v) (closed_const ~env a)
  | Binop (op, a, b) -> (
      match (closed_const ~env a, closed_const ~env b) with
      | Some va, Some vb -> (
          try Some (Interp.Value.binop op a.ety va vb)
          with Interp.Value.Division_by_zero -> None)
      | _ -> None)
  | Cast (ty, a) ->
      Option.map
        (fun v -> Interp.Value.cast ~from_ty:a.ety ~to_ty:ty v)
        (closed_const ~env a)
  | Index _ | Call _ -> None

(* Interval of an expression under [env]: env-bound variables are
   singletons, every other variable (and array read, and extern call)
   is the full canonical range of its type. *)
let rec interval ?(env = []) (e : expr) : Domain.t =
  match e.e with
  | Int n -> Domain.const_of e.ety n
  | Bool b -> Domain.const (Interp.Value.of_bool b)
  | Var x -> (
      match List.assoc_opt x env with
      | Some v -> Domain.const (Interp.Value.wrap_ty e.ety v)
      | None -> Domain.top_of_ty e.ety)
  | Index _ | Call _ -> Domain.top_of_ty e.ety
  | Unop (op, a) -> Domain.unop op a.ety (interval ~env a)
  | Binop (op, a, b) -> Domain.binop op a.ety (interval ~env a) (interval ~env b)
  | Cast (ty, a) -> Domain.cast ~to_ty:ty (interval ~env a)

(* [v] is written inside [body] (assigned, re-declared, or stream-read
   into): the closed-form trip count no longer describes the loop. *)
let tampers_with v body =
  let hit = ref false in
  iter_stmts
    (fun st ->
      match st.s with
      | Assign (Lvar x, _) | Decl (_, x, _) | Stream_read (Lvar x, _) ->
          if x = v then hit := true
      | _ -> ())
    body;
  !hit

let trips_of ~upper ~c0 ~k =
  let span = Int64.sub upper c0 in
  if Int64.compare span 0L <= 0 then Some 0
  else
    let trips = Int64.div (Int64.add span (Int64.sub k 1L)) k in
    if Int64.compare trips (Int64.of_int max_int) > 0 then None
    else Some (Int64.to_int trips)

(* The (init, cond, step) pattern shared by [of_for] and
   [shifted_trips]: a closed init [v = c0], a [v < bound] / [v <= bound]
   condition, a closed positive step, and an untampered induction
   variable. *)
let counted_for ?(env = []) (h : for_header) (body : stmt list) :
    (int64 * binop * expr * int64) option =
  let init_of = function
    | Some { s = Decl (_, v, Some e); _ } | Some { s = Assign (Lvar v, e); _ } ->
        Option.map (fun c -> (v, c)) (closed_const ~env e)
    | _ -> None
  in
  let step_of = function
    | Some { s = Assign (Lvar v, { e = Binop (Add, { e = Var v'; _ }, k); _ }); _ }
      when v = v' ->
        Option.map (fun c -> (v, c)) (closed_const ~env k)
    | Some { s = Assign (Lvar v, { e = Binop (Add, k, { e = Var v'; _ }); _ }); _ }
      when v = v' ->
        Option.map (fun c -> (v, c)) (closed_const ~env k)
    | _ -> None
  in
  match (init_of h.init, h.cond.e, step_of h.step) with
  | Some (v, c0), Binop ((Lt | Le) as op, { e = Var v'; _ }, bound), Some (v'', k)
    when v = v' && v = v'' && Int64.compare k 0L > 0 ->
      if tampers_with v body then None else Some (c0, op, bound, k)
  | _ -> None

let of_for ?(env = []) (h : for_header) (body : stmt list) : t =
  match counted_for ~env h body with
  | None -> Unknown
  | Some (c0, op, bound, k) -> (
      match closed_const ~env bound with
      | Some b ->
          let upper = if op = Le then Int64.add b 1L else b in
          (match trips_of ~upper ~c0 ~k with
          | Some n -> Exact n
          | None -> Unknown)
      | None -> (
          (* data-dependent bound: fall back to its interval upper end *)
          match interval ~env bound with
          | Domain.Itv { hi; _ } ->
              let upper = if op = Le then Int64.add hi 1L else hi in
              (match trips_of ~upper ~c0 ~k with
              | Some n -> At_most n
              | None -> Unknown)
          | Domain.Bot -> Unknown))

(* Trip count of the same loop when the bound operand of its compare is
   shifted by [delta] — the exact rewrite the loop-off-by-one fault
   applies to the lowered compare.  [Some] only in the fully closed
   case; the shifted bound must also stay inside the compare operand's
   type (the fault's adder wraps on the wire, and a wrapped bound is
   beyond this model). *)
let shifted_trips ?(env = []) ~(delta : int64) (h : for_header)
    (body : stmt list) : int option =
  match counted_for ~env h body with
  | None -> None
  | Some (c0, op, bound, k) -> (
      match closed_const ~env bound with
      | None -> None
      | Some b ->
          let b' = Int64.add b delta in
          if not (Int64.equal (Interp.Value.wrap_ty bound.ety b') b') then None
          else
            let upper = if op = Le then Int64.add b' 1L else b' in
            trips_of ~upper ~c0 ~k)
