(** Static loop iteration bounds.

    [of_for] classifies a [for] loop's trip count as [Exact n] (closed
    constant induction under an optional parameter environment),
    [At_most n] (the bound expression is data-dependent but its interval
    upper end is finite), or [Unknown].  A bound is only claimed when
    the induction variable is not assigned, re-declared, or stream-read
    into inside the loop body, so an [Exact n] is a true execution
    count, usable by {!Chan} to expand loops into exact channel-op
    traces and by {!Live} to derive cycle budgets. *)

type t = Exact of int | At_most of int | Unknown

val to_string : t -> string

(** Constant value of an expression closed under [env] (variable name ->
    value); generalizes the variable-free constant folder of {!Absint}
    with testbench parameters. *)
val closed_const : ?env:(string * int64) list -> Front.Ast.expr -> int64 option

(** Interval of an expression with [env]-bound variables as singletons
    and everything else at the canonical range of its type. *)
val interval : ?env:(string * int64) list -> Front.Ast.expr -> Domain.t

(** [of_for ?env header body] — the loop's trip-count class. *)
val of_for :
  ?env:(string * int64) list ->
  Front.Ast.for_header ->
  Front.Ast.stmt list ->
  t

(** Trip count of the loop when the bound operand of its compare is
    shifted by [delta] — the rewrite the loop-off-by-one fault applies
    to the lowered compare.  [Some] only when the shifted count is as
    provable as the baseline's [Exact]. *)
val shifted_trips :
  ?env:(string * int64) list ->
  delta:int64 ->
  Front.Ast.for_header ->
  Front.Ast.stmt list ->
  int option
