(** Process–stream channel graph — see {!Chan} interface. *)

open Front.Ast

(* --- token-rate summaries ------------------------------------------------- *)

type rate = { rmin : int; rmax : int option }

let zero_rate = { rmin = 0; rmax = Some 0 }

let rate_add a b =
  {
    rmin = a.rmin + b.rmin;
    rmax =
      (match (a.rmax, b.rmax) with
      | Some x, Some y -> Some (x + y)
      | _ -> None);
  }

let rate_branch a b =
  {
    rmin = min a.rmin b.rmin;
    rmax =
      (match (a.rmax, b.rmax) with
      | Some x, Some y -> Some (max x y)
      | _ -> None);
  }

let rate_scale (b : Bound.t) r =
  match b with
  | Bound.Exact n -> { rmin = r.rmin * n; rmax = Option.map (fun x -> x * n) r.rmax }
  | Bound.At_most n -> { rmin = 0; rmax = Option.map (fun x -> x * n) r.rmax }
  | Bound.Unknown ->
      { rmin = 0; rmax = (if r.rmax = Some 0 then Some 0 else None) }

let rate_to_string r =
  match r.rmax with
  | Some x when x = r.rmin -> string_of_int x
  | Some x -> Printf.sprintf "%d..%d" r.rmin x
  | None -> Printf.sprintf "%d..*" r.rmin

module SM = Map.Make (String)

type dir = R | W

(* reads/writes per stream over one full activation of [body] *)
let rates_of ?(env = []) body =
  let rec of_list stmts =
    List.fold_left (fun acc st -> merge_add acc (of_stmt st)) SM.empty stmts
  and merge_add a b =
    SM.merge
      (fun _ l r ->
        match (l, r) with
        | Some (lr, lw), Some (rr, rw) -> Some (rate_add lr rr, rate_add lw rw)
        | Some v, None | None, Some v -> Some v
        | None, None -> None)
      a b
  and merge_branch a b =
    SM.merge
      (fun _ l r ->
        let def = (zero_rate, zero_rate) in
        let lr, lw = Option.value ~default:def l in
        let rr, rw = Option.value ~default:def r in
        Some (rate_branch lr rr, rate_branch lw rw))
      a b
  and scale b m = SM.map (fun (r, w) -> (rate_scale b r, rate_scale b w)) m
  and one dir s =
    let r = { rmin = 1; rmax = Some 1 } in
    SM.singleton s (match dir with R -> (r, zero_rate) | W -> (zero_rate, r))
  and of_stmt st =
    match st.s with
    | Stream_read (_, s) -> one R s
    | Stream_write (s, _) -> one W s
    | If (_, t, f) -> merge_branch (of_list t) (of_list f)
    | While (_, b) -> scale Bound.Unknown (of_list b)
    | For (h, b) -> scale (Bound.of_for ~env h b) (of_list b)
    | Block b -> of_list b
    | Decl _ | Assign _ | Assert _ | Return _ | Tapstmt _ | Const_array _ ->
        SM.empty
  in
  of_list body

type summary = {
  cstream : string;
  cdepth : int;
  writers : (string * rate) list;  (** producing process, writes per activation *)
  readers : (string * rate) list;  (** consuming process, reads per activation *)
}

let summarize ?(params = []) (prog : program) : summary list =
  let per_proc =
    List.map
      (fun (p : proc) ->
        let env = Option.value ~default:[] (List.assoc_opt p.pname params) in
        let m = rates_of ~env p.body in
        (* a [return] can cut any suffix of the activation short: the
           guaranteed minimum drops to zero, the maximum stands *)
        let has_return = ref false in
        iter_stmts
          (fun st -> match st.s with Return _ -> has_return := true | _ -> ())
          p.body;
        let m =
          if !has_return then
            SM.map (fun (r, w) -> ({ r with rmin = 0 }, { w with rmin = 0 })) m
          else m
        in
        (p.pname, m))
      prog.procs
  in
  List.map
    (fun (sd : stream_decl) ->
      let writers, readers =
        List.fold_left
          (fun (ws, rs) (pname, m) ->
            match SM.find_opt sd.sname m with
            | None -> (ws, rs)
            | Some (r, w) ->
                ( (if w <> zero_rate then (pname, w) :: ws else ws),
                  if r <> zero_rate then (pname, r) :: rs else rs ))
          ([], []) per_proc
      in
      {
        cstream = sd.sname;
        cdepth = sd.depth;
        writers = List.rev writers;
        readers = List.rev readers;
      })
    prog.streams

(* --- exact channel-op traces ---------------------------------------------- *)

type op =
  | Read of string * int   (** stream, per-stream syntactic read-site index *)
  | Write of string * int  (** stream, per-stream syntactic write-site index *)
  | Assert_op
  | Trap  (** a statement that might abort (division, array indexing)
              before the next channel op *)

type trace = { t_ops : op list; t_work : int }

type loop_info =
  | For_loop of for_header * stmt list
  | While_loop of expr * stmt list

(* all loops of [p], in the same pre-order the IR-level fault rewriters
   count them *)
let loop_headers (p : proc) : loop_info list =
  let acc = ref [] in
  iter_stmts
    (fun st ->
      match st.s with
      | For (h, b) -> acc := For_loop (h, b) :: !acc
      | While (c, b) -> acc := While_loop (c, b) :: !acc
      | _ -> ())
    p.body;
  List.rev !acc

exception Not_exact of string

let not_exact fmt = Printf.ksprintf (fun m -> raise (Not_exact m)) fmt

exception Returned

let max_trace_ops = 1 lsl 17

let rec expr_nodes (e : expr) =
  match e.e with
  | Int _ | Bool _ | Var _ -> 1
  | Index (_, i) -> 1 + expr_nodes i
  | Unop (_, a) | Cast (_, a) -> 1 + expr_nodes a
  | Binop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Call (_, args) -> 1 + List.fold_left (fun n a -> n + expr_nodes a) 0 args

(* does evaluating [e] risk an abort the trace must flag?  Division by a
   divisor not provably nonzero, or an array index not provably in
   bounds of a known-length array. *)
let rec trap_risk ~env ~lens (e : expr) =
  let sub = trap_risk ~env ~lens in
  match e.e with
  | Int _ | Bool _ | Var _ -> false
  | Index (a, i) ->
      sub i
      ||
      (match (Bound.closed_const ~env i, List.assoc_opt a lens) with
      | Some v, Some len ->
          Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int len) >= 0
      | _ -> true)
  | Unop (_, a) | Cast (_, a) -> sub a
  | Binop ((Div | Mod), a, b) -> (
      sub a || sub b
      ||
      match Bound.closed_const ~env b with
      | Some v -> Int64.equal v 0L
      | None -> true)
  | Binop (_, a, b) -> sub a || sub b
  | Call (_, args) -> List.exists sub args

let trace ?(env = []) ?trips_override (prog : program) (p : proc) :
    (trace, string) result =
  (* syntactic numbering pre-passes: per-stream read/write site indices
     and the global pre-order loop index, keyed by physical statement *)
  let wsites = ref [] and rsites = ref [] and loops = ref [] in
  let wcount : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let rcount : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let nloops = ref 0 in
  iter_stmts
    (fun st ->
      match st.s with
      | Stream_write (s, _) ->
          let n = Option.value ~default:0 (Hashtbl.find_opt wcount s) in
          Hashtbl.replace wcount s (n + 1);
          wsites := (st, n) :: !wsites
      | Stream_read (_, s) ->
          let n = Option.value ~default:0 (Hashtbl.find_opt rcount s) in
          Hashtbl.replace rcount s (n + 1);
          rsites := (st, n) :: !rsites
      | For _ | While _ ->
          loops := (st, !nloops) :: !loops;
          incr nloops
      | _ -> ())
    p.body;
  let lens =
    List.map (fun (a, _, n) -> (a, n)) (arrays_declared p.body)
    @ List.filter_map
        (fun (x, ty) ->
          match ty with Tarray (_, n) -> Some (x, n) | _ -> None)
        p.params
    @ List.filter_map
        (fun st ->
          match st.s with
          | Const_array (_, x, vs) -> Some (x, List.length vs)
          | _ -> None)
        (let acc = ref [] in
         iter_stmts (fun st -> acc := st :: !acc) p.body;
         List.rev !acc)
  in
  let latency name =
    match find_extern prog name with Some x -> x.xlatency | None -> 0
  in
  let rec call_latency (e : expr) =
    match e.e with
    | Int _ | Bool _ | Var _ -> 0
    | Index (_, i) -> call_latency i
    | Unop (_, a) | Cast (_, a) -> call_latency a
    | Binop (_, a, b) -> call_latency a + call_latency b
    | Call (f, args) ->
        latency f + List.fold_left (fun n a -> n + call_latency a) 0 args
  in
  let ops = ref [] and nops = ref 0 and work = ref 0 in
  let emit op =
    incr nops;
    if !nops > max_trace_ops then not_exact "trace exceeds %d ops" max_trace_ops;
    ops := op :: !ops
  in
  let charge (e : expr) = work := !work + (3 * expr_nodes e) + call_latency e in
  let trap e = if trap_risk ~env ~lens e then emit Trap in
  let has_ops body =
    let hit = ref false in
    iter_stmts
      (fun st ->
        match st.s with
        | Stream_read _ | Stream_write _ | Assert _ | Return _ -> hit := true
        | _ -> ())
      body;
    !hit
  in
  let rec exec_list stmts = List.iter exec stmts
  and exec st =
    work := !work + 6;
    match st.s with
    | Decl (_, _, init) -> Option.iter (fun e -> charge e; trap e) init
    | Const_array _ -> ()
    | Assign (lv, e) ->
        charge e;
        trap e;
        (match lv with Lindex (_, i) -> (charge i; trap i) | Lvar _ -> ())
    | Assert (c, _) ->
        charge c;
        trap c;
        emit Assert_op
    | Stream_read (lv, s) ->
        (match lv with Lindex (_, i) -> (charge i; trap i) | Lvar _ -> ());
        emit (Read (s, List.assq st !rsites))
    | Stream_write (s, e) ->
        charge e;
        trap e;
        emit (Write (s, List.assq st !wsites))
    | Tapstmt (_, args) -> List.iter charge args
    | Return _ -> raise Returned
    | Block b -> exec_list b
    | If (c, t, f) ->
        charge c;
        trap c;
        if has_ops t || has_ops f then
          not_exact "channel op under a data-dependent branch";
        (* op-free: execution order is irrelevant, charge the larger side *)
        let w0 = !work in
        exec_list t;
        let wt = !work in
        work := w0;
        exec_list f;
        work := max wt !work
    | While (c, _) ->
        charge c;
        not_exact "while loop (no static trip count)"
    | For (h, body) -> (
        charge h.cond;
        let trips =
          match Bound.of_for ~env h body with
          | Bound.Exact n -> n
          | (Bound.At_most _ | Bound.Unknown) as b ->
              not_exact "loop bound is %s" (Bound.to_string b)
        in
        let trips =
          match trips_override with
          | Some (idx, forced) when List.assq st !loops = idx -> max 0 forced
          | _ -> trips
        in
        Option.iter exec h.init;
        for _ = 1 to trips do
          exec_list body;
          Option.iter exec h.step;
          work := !work + (3 * expr_nodes h.cond)
        done)
  in
  match exec_list p.body with
  | () -> Ok { t_ops = List.rev !ops; t_work = !work }
  | exception Returned -> Ok { t_ops = List.rev !ops; t_work = !work }
  | exception Not_exact m -> Error (Printf.sprintf "%s: %s" p.pname m)
