(** The process–stream channel graph with SDF-style token-rate
    summaries and, when every loop bound is proved, exact per-process
    channel-op traces.

    Rates count stream reads/writes per full activation of a process,
    folded structurally: branches take the min/max envelope, [for]
    loops multiply by their {!Bound}, [while] loops force the pessimal
    [0..*] range.  Traces expand the same AST into the exact sequence
    of channel operations one activation performs — the input {!Live}
    feeds to its token network and {!Faults.Prefilter} perturbs to
    prove hang-class mutants hang. *)

(** [rmin] guaranteed, [rmax] possible ([None] = unbounded). *)
type rate = { rmin : int; rmax : int option }

val rate_to_string : rate -> string

type summary = {
  cstream : string;
  cdepth : int;
  writers : (string * rate) list;  (** producing process, writes per activation *)
  readers : (string * rate) list;  (** consuming process, reads per activation *)
}

(** One summary per declared stream, in declaration order.  [params]
    maps process names to parameter bindings used for trip counts. *)
val summarize :
  ?params:(string * (string * int64) list) list ->
  Front.Ast.program ->
  summary list

(** One channel operation.  Site indices are per-stream {e syntactic}
    occurrence numbers in pre-order — the same numbering the fault
    rewriters use — so a trace op can be matched against a fault site.
    [Trap] flags a statement that might abort (division, array index)
    and is only consulted by divergence-region soundness checks. *)
type op =
  | Read of string * int
  | Write of string * int
  | Assert_op
  | Trap

type trace = {
  t_ops : op list;
  t_work : int;  (** generous statement-cycle estimate, see {!Live} *)
}

type loop_info =
  | For_loop of Front.Ast.for_header * Front.Ast.stmt list
  | While_loop of Front.Ast.expr * Front.Ast.stmt list

(** All loops of the process in fault-site pre-order. *)
val loop_headers : Front.Ast.proc -> loop_info list

(** Exact trace of one activation, or [Error why] when any loop bound,
    branch, or op count prevents exactness.  [trips_override] forces
    the pre-order [idx]-th loop to run exactly [n] iterations (the
    off-by-one mutant's trip count). *)
val trace :
  ?env:(string * int64) list ->
  ?trips_override:int * int ->
  Front.Ast.program ->
  Front.Ast.proc ->
  (trace, string) result
