module Loc = Front.Loc

type report = {
  verdicts : Absint.verdict list;
  diags : Diag.t list;
}

let witness_string w =
  String.concat ", " (List.map (fun (x, v) -> Printf.sprintf "%s = %Ld" x v) w)

let diag_of_verdict (v : Absint.verdict) =
  match v.Absint.vclass with
  | Absint.Violated w ->
      let suffix = if w = [] then "" else Printf.sprintf " (witness: %s)" (witness_string w) in
      Some
        (Diag.error ~code:"INCA-A001" ~proc:v.Absint.vproc v.Absint.vloc
           (Printf.sprintf "assertion \"%s\" fails on every reaching execution%s"
              v.Absint.vtext suffix))
  | Absint.Proved ->
      Some
        (Diag.info ~code:"INCA-A002" ~proc:v.Absint.vproc v.Absint.vloc
           (Printf.sprintf "assertion \"%s\" always holds; --prune-proved removes its checker"
              v.Absint.vtext))
  | Absint.Unknown -> None

let report_of ?share_bits ?replicate prog =
  let r = Absint.analyze prog in
  let diags =
    List.filter_map diag_of_verdict r.Absint.verdicts @ Lint.run ?share_bits ?replicate prog r
  in
  { verdicts = r.Absint.verdicts; diags = Diag.order diags }

let add_diags rep diags = { rep with diags = Diag.order (rep.diags @ diags) }

let tally rep =
  List.fold_left
    (fun (p, v, u) (vd : Absint.verdict) ->
      match vd.Absint.vclass with
      | Absint.Proved -> (p + 1, v, u)
      | Absint.Violated _ -> (p, v + 1, u)
      | Absint.Unknown -> (p, v, u + 1))
    (0, 0, 0) rep.verdicts

let failed rep = Diag.has_errors rep.diags

let render ~file rep =
  let b = Buffer.create 512 in
  let p, v, u = tally rep in
  List.iter
    (fun (vd : Absint.verdict) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: %s [%s]: assert(%s)\n" vd.Absint.vloc.Loc.file
           vd.Absint.vloc.Loc.line vd.Absint.vloc.Loc.col
           (Absint.class_name vd.Absint.vclass)
           vd.Absint.vproc vd.Absint.vtext))
    rep.verdicts;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n")) rep.diags;
  Buffer.add_string b
    (Printf.sprintf "%s: %d assertion%s: %d proved, %d violated, %d unknown; %s\n" file
       (p + v + u)
       (if p + v + u = 1 then "" else "s")
       p v u
       (if failed rep then "check FAILED" else "check passed"));
  Buffer.contents b

let json_of ~file rep : Json.t =
  let assertion (vd : Absint.verdict) =
    let loc = vd.Absint.vloc in
    (* "text" directly followed by "class" is a documented (and
       CI-grepped) stability point of the assertion object. *)
    let base =
      [
        ("proc", Json.Str vd.Absint.vproc);
        ("line", Json.int loc.Loc.line);
        ("col", Json.int loc.Loc.col);
        ("text", Json.Str vd.Absint.vtext);
        ("class", Json.Str (Absint.class_name vd.Absint.vclass));
      ]
    in
    let witness =
      match vd.Absint.vclass with
      | Absint.Violated ((_ :: _) as w) ->
          [
            ( "witness",
              Json.Obj (List.map (fun (x, v) -> (x, Json.Str (Int64.to_string v))) w) );
          ]
      | _ -> []
    in
    Json.Obj (base @ witness)
  in
  let p, v, u = tally rep in
  let errors = List.length (List.filter (fun d -> d.Diag.severity = Diag.Error) rep.diags) in
  let warnings =
    List.length (List.filter (fun d -> d.Diag.severity = Diag.Warning) rep.diags)
  in
  Json.Obj
    [
      ("file", Json.Str file);
      ("ok", Json.Bool (not (failed rep)));
      ("assertions", Json.list assertion rep.verdicts);
      ("diagnostics", Json.list Diag.json_of rep.diags);
      ( "summary",
        Json.Obj
          [
            ("proved", Json.int p);
            ("violated", Json.int v);
            ("unknown", Json.int u);
            ("errors", Json.int errors);
            ("warnings", Json.int warnings);
          ] );
    ]

let failure_report ~code loc message =
  { verdicts = []; diags = [ Diag.error ~code loc message ] }
