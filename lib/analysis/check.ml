module Loc = Front.Loc

type report = {
  verdicts : Absint.verdict list;
  liveness : Live.verdict;
  diags : Diag.t list;
}

let witness_string w =
  String.concat ", " (List.map (fun (x, v) -> Printf.sprintf "%s = %Ld" x v) w)

let diag_of_verdict (v : Absint.verdict) =
  match v.Absint.vclass with
  | Absint.Violated w ->
      let suffix = if w = [] then "" else Printf.sprintf " (witness: %s)" (witness_string w) in
      Some
        (Diag.error ~code:"INCA-A001" ~proc:v.Absint.vproc v.Absint.vloc
           (Printf.sprintf "assertion \"%s\" fails on every reaching execution%s"
              v.Absint.vtext suffix))
  | Absint.Proved ->
      Some
        (Diag.info ~code:"INCA-A002" ~proc:v.Absint.vproc v.Absint.vloc
           (Printf.sprintf "assertion \"%s\" always holds; --prune-proved removes its checker"
              v.Absint.vtext))
  | Absint.Unknown -> None

let report_of ?share_bits ?replicate ?watchdog prog =
  let r = Absint.analyze prog in
  let summaries = Chan.summarize prog in
  (* [check] has no testbench, so model the standard harness: a stream
     written in-design but read by no process is assumed externally
     drained (its absence is INCA-L104's finding, not a certain
     deadlock).  Streams read but never written still make the verdict
     [Unknown] — never a false [Deadlock]. *)
  let drains =
    List.filter_map
      (fun (s : Chan.summary) ->
        if s.Chan.writers <> [] && s.Chan.readers = [] then Some s.Chan.cstream
        else None)
      summaries
  in
  let liveness = Live.analyze ~drains prog in
  let diags =
    List.filter_map diag_of_verdict r.Absint.verdicts
    @ Lint.run ?share_bits ?replicate prog r
    @ Lint.liveness ?watchdog liveness summaries
  in
  { verdicts = r.Absint.verdicts; liveness; diags = Diag.order diags }

let add_diags rep diags = { rep with diags = Diag.order (rep.diags @ diags) }

(* Keep a diagnostic when its code passes both filters; [only = None]
   and [ignore = None] are the identity.  Verdict lines are not
   diagnostics and always survive. *)
let filter_codes ?only ?ignore rep =
  let keep (d : Diag.t) =
    (match only with Some cs -> List.mem d.Diag.code cs | None -> true)
    && match ignore with Some cs -> not (List.mem d.Diag.code cs) | None -> true
  in
  { rep with diags = List.filter keep rep.diags }

let tally rep =
  List.fold_left
    (fun (p, v, u) (vd : Absint.verdict) ->
      match vd.Absint.vclass with
      | Absint.Proved -> (p + 1, v, u)
      | Absint.Violated _ -> (p, v + 1, u)
      | Absint.Unknown -> (p, v, u + 1))
    (0, 0, 0) rep.verdicts

let failed rep = Diag.has_errors rep.diags

let render ~file rep =
  let b = Buffer.create 512 in
  let p, v, u = tally rep in
  List.iter
    (fun (vd : Absint.verdict) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: %s [%s]: assert(%s)\n" vd.Absint.vloc.Loc.file
           vd.Absint.vloc.Loc.line vd.Absint.vloc.Loc.col
           (Absint.class_name vd.Absint.vclass)
           vd.Absint.vproc vd.Absint.vtext))
    rep.verdicts;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n")) rep.diags;
  Buffer.add_string b
    (Printf.sprintf "%s: liveness: %s\n" file (Live.verdict_to_string rep.liveness));
  Buffer.add_string b
    (Printf.sprintf "%s: %d assertion%s: %d proved, %d violated, %d unknown; %s\n" file
       (p + v + u)
       (if p + v + u = 1 then "" else "s")
       p v u
       (if failed rep then "check FAILED" else "check passed"));
  Buffer.contents b

let json_of ~file rep : Json.t =
  let assertion (vd : Absint.verdict) =
    let loc = vd.Absint.vloc in
    (* "text" directly followed by "class" is a documented (and
       CI-grepped) stability point of the assertion object. *)
    let base =
      [
        ("proc", Json.Str vd.Absint.vproc);
        ("line", Json.int loc.Loc.line);
        ("col", Json.int loc.Loc.col);
        ("text", Json.Str vd.Absint.vtext);
        ("class", Json.Str (Absint.class_name vd.Absint.vclass));
      ]
    in
    let witness =
      match vd.Absint.vclass with
      | Absint.Violated ((_ :: _) as w) ->
          [
            ( "witness",
              Json.Obj (List.map (fun (x, v) -> (x, Json.Str (Int64.to_string v))) w) );
          ]
      | _ -> []
    in
    Json.Obj (base @ witness)
  in
  let p, v, u = tally rep in
  let errors = List.length (List.filter (fun d -> d.Diag.severity = Diag.Error) rep.diags) in
  let warnings =
    List.length (List.filter (fun d -> d.Diag.severity = Diag.Warning) rep.diags)
  in
  Json.Obj
    [
      ("file", Json.Str file);
      ("ok", Json.Bool (not (failed rep)));
      ("assertions", Json.list assertion rep.verdicts);
      ( "liveness",
        Json.Obj
          ([ ("class", Json.Str (Live.class_name rep.liveness)) ]
          @ (match rep.liveness with
            | Live.Deadlock_free k -> [ ("cycle_bound", Json.int k) ]
            | Live.Deadlock w -> [ ("witness", Json.Str (Live.witness_to_string w)) ]
            | Live.Unknown why -> [ ("why", Json.Str why) ])) );
      ("diagnostics", Json.list Diag.json_of rep.diags);
      ( "summary",
        Json.Obj
          [
            ("proved", Json.int p);
            ("violated", Json.int v);
            ("unknown", Json.int u);
            ("errors", Json.int errors);
            ("warnings", Json.int warnings);
          ] );
    ]

let failure_report ~code loc message =
  {
    verdicts = [];
    liveness = Live.Unknown "source failed to parse or typecheck";
    diags = [ Diag.error ~code loc message ];
  }
