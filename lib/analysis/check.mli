(** The [inca check] report: assertion verdicts from {!Absint} plus the
    {!Lint} findings, rendered as text or JSON.  Callers with extra
    diagnostics (e.g. the compiler's FSMD invariant checks) append them
    to [diags] before rendering. *)

type report = {
  verdicts : Absint.verdict list;
  diags : Diag.t list;
}

(** Analyze and lint one program.  [share_bits]/[replicate] describe the
    instrumentation strategy (see {!Lint.run}). *)
val report_of : ?share_bits:int -> ?replicate:bool -> Front.Ast.program -> report

val add_diags : report -> Diag.t list -> report

(** INCA-A001 (error) for a violated verdict with its witness, INCA-A002
    (info) for a proved one, [None] for unknown. *)
val diag_of_verdict : Absint.verdict -> Diag.t option

(** Verdict counts: proved, violated, unknown. *)
val tally : report -> int * int * int

(** [true] when the report contains an error-severity diagnostic (a
    violated assertion always does). *)
val failed : report -> bool

val render : file:string -> report -> string

(** The report as a JSON payload (the [inca check] entry in a
    {!Core.Report} envelope).  Valid whatever the report contents;
    assertion objects carry ["text"] directly followed by ["class"]. *)
val json_of : file:string -> report -> Json.t

(** A report for a source that failed to parse or typecheck: one
    error-severity diagnostic with [code] (INCA-P001 / INCA-P002). *)
val failure_report : code:string -> Front.Loc.t -> string -> report
