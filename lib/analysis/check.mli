(** The [inca check] report: assertion verdicts from {!Absint} plus the
    {!Lint} findings, rendered as text or JSON.  Callers with extra
    diagnostics (e.g. the compiler's FSMD invariant checks) append them
    to [diags] before rendering. *)

type report = {
  verdicts : Absint.verdict list;
  liveness : Live.verdict;
  diags : Diag.t list;
}

(** Analyze and lint one program.  [share_bits]/[replicate] describe the
    instrumentation strategy (see {!Lint.run}); [watchdog] is the
    configured watchdog window for the INCA-L109/L110 budget lints.
    The {!Live} verdict is computed without testbench feeds, so a
    design with externally fed streams reports liveness [Unknown]. *)
val report_of :
  ?share_bits:int ->
  ?replicate:bool ->
  ?watchdog:int ->
  Front.Ast.program ->
  report

val add_diags : report -> Diag.t list -> report

(** Restrict the report's diagnostics to [only] (when given) minus
    [ignore]; assertion verdicts are unaffected.  [failed] and the
    rendered summary follow the filtered set, so a CI leg can gate on
    exactly one code family. *)
val filter_codes :
  ?only:string list -> ?ignore:string list -> report -> report

(** INCA-A001 (error) for a violated verdict with its witness, INCA-A002
    (info) for a proved one, [None] for unknown. *)
val diag_of_verdict : Absint.verdict -> Diag.t option

(** Verdict counts: proved, violated, unknown. *)
val tally : report -> int * int * int

(** [true] when the report contains an error-severity diagnostic (a
    violated assertion always does). *)
val failed : report -> bool

val render : file:string -> report -> string

(** The report as a JSON payload (the [inca check] entry in a
    {!Core.Report} envelope).  Valid whatever the report contents;
    assertion objects carry ["text"] directly followed by ["class"]. *)
val json_of : file:string -> report -> Json.t

(** A report for a source that failed to parse or typecheck: one
    error-severity diagnostic with [code] (INCA-P001 / INCA-P002). *)
val failure_report : code:string -> Front.Loc.t -> string -> report
