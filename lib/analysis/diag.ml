module Loc = Front.Loc

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  loc : Loc.t;
  dproc : string option;
  message : string;
}

let mk severity ~code ?proc loc message =
  { severity; code; loc; dproc = proc; message }

let error = mk Error
let warning = mk Warning
let info = mk Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let order diags =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.loc.Loc.file b.loc.Loc.file in
        if c <> 0 then c
        else
          let c = compare (a.loc.Loc.line, a.loc.Loc.col) (b.loc.Loc.line, b.loc.Loc.col) in
          if c <> 0 then c else compare a.code b.code)
    diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let to_string d =
  let proc = match d.dproc with Some p -> Printf.sprintf " [%s]" p | None -> "" in
  if d.loc = Loc.none then
    Printf.sprintf "%s %s%s: %s" (severity_name d.severity) d.code proc d.message
  else
    Printf.sprintf "%s:%d:%d: %s %s%s: %s" d.loc.Loc.file d.loc.Loc.line d.loc.Loc.col
      (severity_name d.severity) d.code proc d.message

let json_of d : Json.t =
  Json.Obj
    ([
       ("severity", Json.Str (severity_name d.severity));
       ("code", Json.Str d.code);
     ]
    @ (if d.loc = Loc.none then []
       else
         [
           ("file", Json.Str d.loc.Loc.file);
           ("line", Json.int d.loc.Loc.line);
           ("col", Json.int d.loc.Loc.col);
         ])
    @ (match d.dproc with Some p -> [ ("proc", Json.Str p) ] | None -> [])
    @ [ ("message", Json.Str d.message) ])
