(** Diagnostics shared by the abstract interpreter, the lint suite and
    the post-compile invariant checks.

    Every finding carries a stable code so scripts can filter on it:

    - [INCA-A001]  assertion statically violated (with a value witness)
    - [INCA-A002]  assertion statically proved (prunable hardware)
    - [INCA-L101]  assertion taps a block RAM through the application port
    - [INCA-L102]  shared failure channel overflow (Section 3.3 capacity)
    - [INCA-L103]  variable read before initialization
    - [INCA-L104]  stream written but never read by any process
    - [INCA-L105]  dead assertion (subsumed by an earlier one)
    - [INCA-L106]  proved deadlock: rate mismatch / read past last write
    - [INCA-L107]  proved deadlock: circular wait between processes
    - [INCA-L108]  unbounded producer feeding bounded-rate consumers
    - [INCA-L109]  watchdog window below the proved completion bound
    - [INCA-L110]  watchdog window provably redundant (design completes)
    - [INCA-S001]  FSMD invariant violation (post-schedule)
    - [INCA-S002]  IR well-formedness violation (post-lowering)
    - [INCA-P001]  parse/lex error
    - [INCA-P002]  type error *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;          (** stable code, e.g. ["INCA-L103"] *)
  loc : Front.Loc.t;      (** [Loc.none] for design-wide findings *)
  dproc : string option;  (** enclosing process, when known *)
  message : string;
}

val error : code:string -> ?proc:string -> Front.Loc.t -> string -> t
val warning : code:string -> ?proc:string -> Front.Loc.t -> string -> t
val info : code:string -> ?proc:string -> Front.Loc.t -> string -> t

val severity_name : severity -> string

(** Errors first, then warnings, then infos; same severity sorts by
    file/line/column then code.  Stable across job counts. *)
val order : t list -> t list

val has_errors : t list -> bool

(** [file:line:col: severity CODE [proc]: message] — [Loc.none]
    renders as the design-wide form [severity CODE: message]. *)
val to_string : t -> string

(** One finding as a JSON object. *)
val json_of : t -> Json.t
