(** Interval x constant x parity reduced product over canonical [int64]
    scalars (see domain.mli for the soundness contract). *)

open Front.Ast
module Value = Interp.Value

type parity = Peven | Podd | Ptop

type itv = { lo : int64; hi : int64; parity : parity }

type t = Bot | Itv of itv

type truth = True | False | Maybe

(* --- parity helpers ------------------------------------------------------- *)

let parity_of_int64 v = if Int64.logand v 1L = 0L then Peven else Podd

let parity_join a b = if a = b then a else Ptop

let parity_meet a b =
  match (a, b) with
  | Ptop, p | p, Ptop -> Some p
  | Peven, Peven -> Some Peven
  | Podd, Podd -> Some Podd
  | Peven, Podd | Podd, Peven -> None

let parity_leq a b = b = Ptop || a = b

let matches_parity p v = p = Ptop || parity_of_int64 v = p

(* --- construction --------------------------------------------------------- *)

(* Normalize: clip endpoints inward to the parity, empty interval = Bot.
   Reduction between the components lives here: a singleton refines the
   parity, a parity tightens the bounds. *)
let mk lo hi parity =
  if Int64.compare lo hi > 0 then Bot
  else
    let lo = if matches_parity parity lo then lo else Int64.add lo 1L in
    let hi = if matches_parity parity hi then hi else Int64.sub hi 1L in
    if Int64.compare lo hi > 0 then Bot
    else
      let parity = if lo = hi then parity_of_int64 lo else parity in
      Itv { lo; hi; parity }

let top = Itv { lo = Int64.min_int; hi = Int64.max_int; parity = Ptop }

(* Canonical range of a scalar type as a signed-int64 pair.  Canonical
   unsigned 64-bit values occupy the whole [int64] bit-pattern space. *)
let range_of_ty = function
  | Tbool -> (0L, 1L)
  | Tint (_, W64) -> (Int64.min_int, Int64.max_int)
  | Tint (Unsigned, w) -> (0L, Int64.sub (Int64.shift_left 1L (bits_of_width w)) 1L)
  | Tint (Signed, w) ->
      let h = Int64.shift_left 1L (bits_of_width w - 1) in
      (Int64.neg h, Int64.sub h 1L)
  | Tarray _ | Tvoid -> (Int64.min_int, Int64.max_int)

let top_of_ty ty =
  let lo, hi = range_of_ty ty in
  Itv { lo; hi; parity = Ptop }

let const v = Itv { lo = v; hi = v; parity = parity_of_int64 v }

let const_of ty v = const (Value.wrap_ty ty v)

let is_bot d = d = Bot

let const_value = function
  | Itv { lo; hi; _ } when lo = hi -> Some lo
  | Itv _ | Bot -> None

(* --- lattice -------------------------------------------------------------- *)

let join a b =
  match (a, b) with
  | Bot, d | d, Bot -> d
  | Itv a, Itv b ->
      Itv
        {
          lo = (if Int64.compare a.lo b.lo <= 0 then a.lo else b.lo);
          hi = (if Int64.compare a.hi b.hi >= 0 then a.hi else b.hi);
          parity = parity_join a.parity b.parity;
        }

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> (
      match parity_meet a.parity b.parity with
      | None -> Bot
      | Some p ->
          mk
            (if Int64.compare a.lo b.lo >= 0 then a.lo else b.lo)
            (if Int64.compare a.hi b.hi <= 0 then a.hi else b.hi)
            p)

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv a, Itv b ->
      Int64.compare b.lo a.lo <= 0
      && Int64.compare a.hi b.hi <= 0
      && parity_leq a.parity b.parity

let equal a b = leq a b && leq b a

(* Threshold widening: an unstable bound jumps to the nearest of 0, the
   type's canonical bound, or the int64 bound (feed data can exceed the
   canonical range), so loop-head iteration terminates in a few steps. *)
let widen ty old_ next =
  match (old_, next) with
  | Bot, d | d, Bot -> d
  | Itv o, Itv n ->
      let rlo, rhi = range_of_ty ty in
      let lo =
        if Int64.compare n.lo o.lo >= 0 then o.lo
        else if Int64.compare n.lo 0L >= 0 then 0L
        else if Int64.compare n.lo rlo >= 0 then rlo
        else Int64.min_int
      in
      let hi =
        if Int64.compare n.hi o.hi <= 0 then o.hi
        else if Int64.compare n.hi 0L <= 0 then 0L
        else if Int64.compare n.hi rhi <= 0 then rhi
        else Int64.max_int
      in
      Itv { lo; hi; parity = parity_join o.parity n.parity }

(* --- checked int64 arithmetic --------------------------------------------- *)

let add_exact a b =
  let s = Int64.add a b in
  (* overflow iff operands share a sign the sum lacks *)
  if Int64.logand (Int64.logxor a s) (Int64.logxor b s) < 0L then None else Some s

let sub_exact a b =
  let s = Int64.sub a b in
  if Int64.logand (Int64.logxor a b) (Int64.logxor a s) < 0L then None else Some s

let mul_exact a b =
  if a = 0L || b = 0L then Some 0L
  else
    let p = Int64.mul a b in
    if Int64.div p b = a && not (a = Int64.min_int && b = -1L) then Some p else None

(* Hull of [f x y] over the four endpoint combinations; [None] when any
   combination overflows int64. *)
let hull4 f (alo, ahi) (blo, bhi) =
  let cs = [ f alo blo; f alo bhi; f ahi blo; f ahi bhi ] in
  List.fold_left
    (fun acc c ->
      match (acc, c) with
      | Some (lo, hi), Some v ->
          Some
            ( (if Int64.compare v lo < 0 then v else lo),
              if Int64.compare v hi > 0 then v else hi )
      | _ -> None)
    (match cs with Some v :: _ -> Some (v, v) | _ -> None)
    cs

(* Keep an exact-arithmetic hull only when it fits the canonical range
   of the operation type — then [Value.wrap] was the identity on every
   concrete result.  Otherwise fall back to the type's full range; the
   parity is kept regardless because wrapping preserves bit 0. *)
let clamp ty parity = function
  | None -> (
      match top_of_ty ty with Itv i -> mk i.lo i.hi parity | Bot -> Bot)
  | Some (lo, hi) ->
      let rlo, rhi = range_of_ty ty in
      if Int64.compare rlo lo <= 0 && Int64.compare hi rhi <= 0 then mk lo hi parity
      else match top_of_ty ty with Itv i -> mk i.lo i.hi parity | Bot -> Bot

(* --- truth ---------------------------------------------------------------- *)

let truth = function
  | Bot -> Maybe (* unreachable; caller handles Bot before trusting this *)
  | Itv { lo; hi; parity } ->
      if lo = 0L && hi = 0L then False
      else if Int64.compare lo 0L > 0 || Int64.compare hi 0L < 0 then True
      else if parity = Podd then True (* odd values are never 0 *)
      else Maybe

let of_truth = function
  | True -> const 1L
  | False -> const 0L
  | Maybe -> Itv { lo = 0L; hi = 1L; parity = Ptop }

let truth_not = function True -> False | False -> True | Maybe -> Maybe

(* --- comparisons ---------------------------------------------------------- *)

(* Signed interval order is only meaningful for unsigned operands when
   every bit pattern involved is non-negative (where the two orders
   agree); otherwise refuse to decide. *)
let order_usable ty a b =
  match Value.signedness_of ty with
  | Signed -> true
  | Unsigned -> Int64.compare a.lo 0L >= 0 && Int64.compare b.lo 0L >= 0
  | exception Invalid_argument _ -> false

let compare_truth op ty (a : itv) (b : itv) =
  (* Eq/Ne are raw bit-pattern (dis)equality: signedness-independent. *)
  let disjoint =
    Int64.compare a.hi b.lo < 0
    || Int64.compare b.hi a.lo < 0
    || (a.parity <> Ptop && b.parity <> Ptop && a.parity <> b.parity)
  in
  let same_singleton = a.lo = a.hi && b.lo = b.hi && a.lo = b.lo in
  match op with
  | Eq -> if same_singleton then True else if disjoint then False else Maybe
  | Ne -> if same_singleton then False else if disjoint then True else Maybe
  | Lt | Le | Gt | Ge ->
      if not (order_usable ty a b) then Maybe
      else (
        match op with
        | Lt ->
            if Int64.compare a.hi b.lo < 0 then True
            else if Int64.compare a.lo b.hi >= 0 then False
            else Maybe
        | Le ->
            if Int64.compare a.hi b.lo <= 0 then True
            else if Int64.compare a.lo b.hi > 0 then False
            else Maybe
        | Gt ->
            if Int64.compare a.lo b.hi > 0 then True
            else if Int64.compare a.hi b.lo <= 0 then False
            else Maybe
        | Ge ->
            if Int64.compare a.lo b.hi >= 0 then True
            else if Int64.compare a.hi b.lo < 0 then False
            else Maybe
        | _ -> Maybe)
  | _ -> Maybe

(* --- transfer functions --------------------------------------------------- *)

let parity_add a b =
  match (a, b) with
  | Ptop, _ | _, Ptop -> Ptop
  | Peven, Peven | Podd, Podd -> Peven
  | Peven, Podd | Podd, Peven -> Podd

let parity_mul a b =
  match (a, b) with
  | Peven, _ | _, Peven -> Peven
  | Podd, Podd -> Podd
  | _ -> Ptop

let parity_and a b =
  match (a, b) with
  | Peven, _ | _, Peven -> Peven
  | Podd, Podd -> Podd
  | _ -> Ptop

let parity_or a b =
  match (a, b) with
  | Podd, _ | _, Podd -> Podd
  | Peven, Peven -> Peven
  | _ -> Ptop

let nonneg a = Int64.compare a.lo 0L >= 0

let in_range ty a =
  let rlo, rhi = range_of_ty ty in
  Int64.compare rlo a.lo <= 0 && Int64.compare a.hi rhi <= 0

let binop op ty da db =
  match (da, db) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> (
      match (const_value da, const_value db) with
      | Some va, Some vb -> (
          (* exact fold; a zero divisor concretely aborts the run, so
             any abstraction of the "result" is sound *)
          try const (Value.binop op ty va vb)
          with Value.Division_by_zero | Invalid_argument _ -> top_of_ty ty)
      | _ -> (
          match op with
          | Add -> clamp ty (parity_add a.parity b.parity) (hull4 add_exact (a.lo, a.hi) (b.lo, b.hi))
          | Sub -> clamp ty (parity_add a.parity b.parity) (hull4 sub_exact (a.lo, a.hi) (b.lo, b.hi))
          | Mul -> clamp ty (parity_mul a.parity b.parity) (hull4 mul_exact (a.lo, a.hi) (b.lo, b.hi))
          | Div ->
              (* monotone for a constant positive divisor; unsigned
                 division matches signed on non-negative bit patterns *)
              (match const_value db with
              | Some k
                when Int64.compare k 0L > 0
                     && (Value.signedness_of ty = Signed || nonneg a) ->
                  clamp ty Ptop (Some (Int64.div a.lo k, Int64.div a.hi k))
              | _ -> top_of_ty ty)
          | Mod ->
              (* non-negative dividend, strictly positive divisor:
                 the result lies in [0, max divisor - 1] *)
              if nonneg a && Int64.compare b.lo 0L > 0 then
                clamp ty Ptop (Some (0L, Int64.sub b.hi 1L))
              else top_of_ty ty
          | Band ->
              if nonneg a && nonneg b then
                clamp ty
                  (parity_and a.parity b.parity)
                  (Some (0L, if Int64.compare a.hi b.hi <= 0 then a.hi else b.hi))
              else clamp ty (parity_and a.parity b.parity) None
          | Bor ->
              (* for non-negative x, y: max(x,y) <= x|y <= x+y *)
              if nonneg a && nonneg b then
                let lo = if Int64.compare a.lo b.lo >= 0 then a.lo else b.lo in
                clamp ty (parity_or a.parity b.parity)
                  (match add_exact a.hi b.hi with Some hi -> Some (lo, hi) | None -> None)
              else clamp ty (parity_or a.parity b.parity) None
          | Bxor ->
              if nonneg a && nonneg b then
                clamp ty (parity_add a.parity b.parity)
                  (match add_exact a.hi b.hi with Some hi -> Some (0L, hi) | None -> None)
              else clamp ty (parity_add a.parity b.parity) None
          | Shl -> (
              match const_value db with
              | Some k ->
                  let k = Int64.to_int (Int64.logand k 63L) in
                  let parity = if k >= 1 then Peven else a.parity in
                  if nonneg a && Int64.compare a.hi (Int64.shift_right Int64.max_int k) <= 0
                  then clamp ty parity (Some (Int64.shift_left a.lo k, Int64.shift_left a.hi k))
                  else clamp ty parity None
              | None -> top_of_ty ty)
          | Shr -> (
              match const_value db with
              | Some k ->
                  let k = Int64.to_int (Int64.logand k 63L) in
                  let ok =
                    match Value.signedness_of ty with
                    | Signed -> true (* arithmetic shift of the raw value: monotone *)
                    | Unsigned -> nonneg a && in_range ty a
                    | exception Invalid_argument _ -> false
                  in
                  if ok then
                    clamp ty Ptop
                      (Some (Int64.shift_right a.lo k, Int64.shift_right a.hi k))
                  else top_of_ty ty
              | None -> top_of_ty ty)
          | Lt | Le | Gt | Ge | Eq | Ne -> of_truth (compare_truth op ty a b)
          | Land -> (
              match (truth da, truth db) with
              | False, _ | _, False -> const 0L
              | True, True -> const 1L
              | _ -> of_truth Maybe)
          | Lor -> (
              match (truth da, truth db) with
              | True, _ | _, True -> const 1L
              | False, False -> const 0L
              | _ -> of_truth Maybe)))

let unop op ty d =
  match d with
  | Bot -> Bot
  | Itv a -> (
      match const_value d with
      | Some v -> ( try const (Value.unop op ty v) with Invalid_argument _ -> top_of_ty ty)
      | None -> (
          match op with
          | Neg ->
              (* -x = 0 - x; negation preserves parity *)
              clamp ty a.parity (hull4 sub_exact (0L, 0L) (a.lo, a.hi))
          | Bnot ->
              (* lognot x = -x - 1 exactly: anti-monotone *)
              let p =
                match a.parity with Peven -> Podd | Podd -> Peven | Ptop -> Ptop
              in
              clamp ty p
                (match (sub_exact (-1L) a.hi, sub_exact (-1L) a.lo) with
                | Some lo, Some hi -> Some (lo, hi)
                | _ -> None)
          | Lnot -> of_truth (truth_not (truth d))))

let cast ~to_ty d =
  match d with
  | Bot -> Bot
  | Itv a -> (
      match const_value d with
      | Some v -> (
          (* [cast] ignores the source type of canonical values *)
          try const (Value.cast ~from_ty:(Tint (Signed, W64)) ~to_ty v)
          with Invalid_argument _ -> top_of_ty to_ty)
      | None -> (
          match to_ty with
          | Tbool -> of_truth (truth d)
          | _ ->
              (* wrap is the identity on values already canonical at the
                 target type; bit 0 survives truncation/extension *)
              if in_range to_ty a then d
              else (
                match top_of_ty to_ty with
                | Itv i -> mk i.lo i.hi a.parity
                | Bot -> Bot)))

(* --- condition refinement ------------------------------------------------- *)

let refine_cmp op ty keep lhs rhs =
  match (lhs, rhs) with
  | Bot, _ -> Bot
  | _, Bot -> lhs
  | Itv a, Itv b ->
      let op =
        if keep then op
        else
          match op with
          | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt | Eq -> Ne | Ne -> Eq
          | o -> o
      in
      let ok = order_usable ty a b in
      let refined =
        match op with
        | Eq -> meet lhs rhs
        | Ne -> (
            match const_value rhs with
            | Some v when a.lo = v && a.hi = v -> Bot
            | Some v when a.lo = v -> mk (Int64.add a.lo 1L) a.hi a.parity
            | Some v when a.hi = v -> mk a.lo (Int64.sub a.hi 1L) a.parity
            | _ -> lhs)
        | Lt when ok && Int64.compare b.hi Int64.min_int > 0 ->
            meet lhs (Itv { lo = Int64.min_int; hi = Int64.sub b.hi 1L; parity = Ptop })
        | Le when ok -> meet lhs (Itv { lo = Int64.min_int; hi = b.hi; parity = Ptop })
        | Gt when ok && Int64.compare b.lo Int64.max_int < 0 ->
            meet lhs (Itv { lo = Int64.add b.lo 1L; hi = Int64.max_int; parity = Ptop })
        | Ge when ok -> meet lhs (Itv { lo = b.lo; hi = Int64.max_int; parity = Ptop })
        | _ -> lhs
      in
      refined

(* --- witnesses ------------------------------------------------------------ *)

let representative = function
  | Bot -> None
  | Itv { lo; hi; parity } ->
      if
        Int64.compare lo 0L <= 0
        && Int64.compare 0L hi <= 0
        && matches_parity parity 0L
      then Some 0L
      else Some lo (* mk keeps endpoints on the parity *)

let to_string = function
  | Bot -> "_|_"
  | Itv { lo; hi; parity } ->
      let p = match parity with Peven -> " even" | Podd -> " odd" | Ptop -> "" in
      if lo = hi then Printf.sprintf "{%Ld}" lo
      else if lo = Int64.min_int && hi = Int64.max_int && parity = Ptop then "T"
      else Printf.sprintf "[%Ld, %Ld]%s" lo hi p
