(** The abstract value domain: a reduced product of intervals, constants
    and parity over the canonical [int64] scalar representation of
    {!Interp.Value}.

    A constant is a singleton interval, so the constant component is the
    [lo = hi] case of the interval; parity tracks bit 0, which every
    [Value.wrap] preserves (truncation and sign/zero-extension never
    touch the low bit).  All transfer functions over-approximate the
    concrete semantics of {!Interp.Value} — including C wrapping: a
    result interval is kept only when the exact-arithmetic hull fits the
    canonical range of the operation type, otherwise the result widens
    to the type's full range. *)

type parity = Peven | Podd | Ptop

type itv = { lo : int64; hi : int64; parity : parity }

type t =
  | Bot          (** unreachable / empty *)
  | Itv of itv
      (** all values v with lo <= v <= hi (signed [int64] order) and
          matching parity *)

type truth = True | False | Maybe

(** The unconstrained value: the full [int64] range.  Used for testbench
    feed data, which enters streams without canonicalization. *)
val top : t

(** The full canonical range of a scalar type ([Tbool] is [0, 1]). *)
val top_of_ty : Front.Ast.ty -> t

(** Singleton (exact) value. *)
val const : int64 -> t

(** Singleton of [Value.wrap_ty ty v] — an [Int] literal's semantics. *)
val const_of : Front.Ast.ty -> int64 -> t

val is_bot : t -> bool

(** [Some v] when the domain element is the singleton [v]. *)
val const_value : t -> int64 option

val join : t -> t -> t
val meet : t -> t -> t
val leq : t -> t -> bool
val equal : t -> t -> bool

(** Widening with thresholds at 0 and the canonical range bounds of
    [ty]; guarantees termination of loop-head iteration. *)
val widen : Front.Ast.ty -> t -> t -> t

(** Abstract {!Interp.Value.binop} at operation type [ty] (the common
    operand type produced by elaboration).  Division by a possibly-zero
    divisor concretely raises, so any over-approximation is sound there.
    [Land]/[Lor] follow the interpreter's short-circuit truth tables. *)
val binop : Front.Ast.binop -> Front.Ast.ty -> t -> t -> t

(** Abstract {!Interp.Value.unop} at operand type [ty]. *)
val unop : Front.Ast.unop -> Front.Ast.ty -> t -> t

(** Abstract {!Interp.Value.cast}. *)
val cast : to_ty:Front.Ast.ty -> t -> t

(** Three-valued truthiness ([v <> 0]). *)
val truth : t -> truth

(** [refine_cmp op ty keep lhs rhs] shrinks [lhs] assuming the
    comparison [lhs op rhs] evaluated to [keep] at operand type [ty].
    Conservative: returns [lhs] unchanged whenever the ordering cannot
    be reasoned about soundly (e.g. possibly-negative unsigned bit
    patterns). *)
val refine_cmp : Front.Ast.binop -> Front.Ast.ty -> bool -> t -> t -> t

(** A concrete representative contained in the domain element (used to
    build violation witnesses); [None] for [Bot]. *)
val representative : t -> int64 option

val to_string : t -> string
