open Front.Ast
module Loc = Front.Loc

(* L101: with a non-replicating strategy, an assertion reading a
   process-local array shares the BRAM's read port with the datapath
   (paper section 3.2). *)
let bram_contention ~replicate (prog : program) =
  if replicate then []
  else
    List.concat_map
      (fun (p : proc) ->
        if p.kind <> Hardware then []
        else
          let local = List.map (fun (n, _, _) -> n) (arrays_declared p.body) in
          List.concat_map
            (fun (loc, cond, text) ->
              List.filter_map
                (fun a ->
                  if List.mem a local then
                    Some
                      (Diag.warning ~code:"INCA-L101" ~proc:p.pname loc
                         (Printf.sprintf
                            "assertion \"%s\" reads array \"%s\" through the datapath's \
                             BRAM port; the strategy does not replicate tapped arrays, so \
                             the checker update contends with the computation"
                            text a))
                  else None)
                (arrays_read cond))
            (assertions_of p.body))
      prog.procs

(* L102: more hardware assertions than the shared status channel has
   flag bits (paper section 3.3). *)
let channel_overflow ~share_bits (prog : program) =
  match share_bits with
  | None -> []
  | Some bits ->
      let asserts =
        List.concat_map
          (fun (p : proc) ->
            if p.kind <> Hardware then []
            else List.map (fun (loc, _, text) -> (p.pname, loc, text)) (assertions_of p.body))
          prog.procs
      in
      let n = List.length asserts in
      if n <= bits then []
      else
        let pname, loc, text = List.nth asserts bits in
        [
          Diag.error ~code:"INCA-L102" ~proc:pname loc
            (Printf.sprintf
               "%d hardware assertions share a %d-bit status channel; assertion \"%s\" \
                (number %d) has no flag bit of its own, so a firing assertion cannot be \
                attributed — raise the channel width, split processes, or use per-process \
                channels"
               n bits text (bits + 1));
        ]

(* L103: scalar read before any assignment (from the abstract run). *)
let uninit_reads (r : Absint.result) =
  List.map
    (fun (pname, var, loc) ->
      Diag.warning ~code:"INCA-L103" ~proc:pname loc
        (Printf.sprintf
           "\"%s\" may be read before it is assigned; simulation zero-fills it but \
            synthesized hardware need not"
           var))
    r.Absint.uninit_reads

(* Guaranteed (every-execution) number of writes each stream receives
   from [body]: counted loops multiply by their static trip count,
   branches take the branch minimum, unbounded loops contribute their
   minimum of zero trips. *)
let write_lower_bounds (body : stmt list) : (string * int) list =
  let add s n counts =
    (s, n + Option.value ~default:0 (List.assoc_opt s counts)) :: List.remove_assoc s counts
  in
  let rec go mult counts st =
    match st.s with
    | Stream_write (s, _) -> add s mult counts
    | Block b -> List.fold_left (go mult) counts b
    | If (_, t, f) ->
        let ct = List.fold_left (go mult) [] t and cf = List.fold_left (go mult) [] f in
        List.fold_left
          (fun acc (s, n) ->
            let m = min n (Option.value ~default:0 (List.assoc_opt s cf)) in
            if m > 0 then add s m acc else acc)
          counts ct
    | While (_, b) -> List.fold_left (go 0) counts b
    | For (h, b) ->
        let trips = Option.value ~default:0 (Absint.loop_trips h) in
        let counts = match h.init with Some s -> go mult counts s | None -> counts in
        List.fold_left (go (mult * trips)) counts b
    | Decl _ | Const_array _ | Assign _ | Assert _ | Stream_read _ | Return _ | Tapstmt _ ->
        counts
  in
  List.fold_left (go 1) [] body

(* L104: streams with no consuming process.  A stream whose guaranteed
   write count exceeds the FIFO depth blocks its producer unless an
   external testbench drains it; one that is merely written-not-read is
   reported informationally (it may be a design output). *)
let undrained_streams (prog : program) =
  let reads = ref [] and writes = ref [] in
  List.iter
    (fun (p : proc) ->
      iter_stmts
        (fun st ->
          match st.s with
          | Stream_read (_, s) -> reads := s :: !reads
          | Stream_write (s, _) -> writes := s :: !writes
          | _ -> ())
        p.body)
    prog.procs;
  let lower =
    List.concat_map (fun (p : proc) -> write_lower_bounds p.body) prog.procs
  in
  List.filter_map
    (fun (sd : stream_decl) ->
      let written = List.mem sd.sname !writes and read = List.mem sd.sname !reads in
      if read then None
      else if not written then
        Some
          (Diag.info ~code:"INCA-L104" Loc.none
             (Printf.sprintf "stream \"%s\" is declared but never written or read" sd.sname))
      else
        let guaranteed =
          List.fold_left
            (fun acc (s, n) -> if s = sd.sname then acc + n else acc)
            0 lower
        in
        if guaranteed > sd.depth then
          Some
            (Diag.warning ~code:"INCA-L104" Loc.none
               (Printf.sprintf
                  "stream \"%s\" receives at least %d writes but no process reads it and \
                   its FIFO holds %d elements; without an external drain the producer \
                   blocks"
                  sd.sname guaranteed sd.depth))
        else
          Some
            (Diag.info ~code:"INCA-L104" Loc.none
               (Printf.sprintf
                  "stream \"%s\" is written but read by no process; it relies on an \
                   external (testbench) drain"
                  sd.sname)))
    prog.streams

(* L105: assertion subsumed by an earlier still-active one. *)
let dead_assertions (r : Absint.result) =
  List.map
    (fun (pname, loc, text, by) ->
      Diag.warning ~code:"INCA-L105" ~proc:pname loc
        (Printf.sprintf
           "assertion \"%s\" is implied by the earlier assertion \"%s\" on every path; it \
            can never be the first to fire"
           text by))
    r.Absint.dead

(* L106/L107: the liveness verdict found a deadlock witness — a rate
   mismatch or starved reader (L106) or a circular wait (L107). *)
let deadlock_verdict (verdict : Live.verdict) =
  match verdict with
  | Live.Deadlock_free _ | Live.Unknown _ -> []
  | Live.Deadlock w ->
      let code, what =
        match w.Live.w_reason with
        | Live.Circular_wait -> ("INCA-L107", "circular wait")
        | Live.Rate_mismatch -> ("INCA-L106", "token-rate mismatch")
        | Live.Read_past_last_write -> ("INCA-L106", "read past the last write")
      in
      [
        Diag.error ~code Loc.none
          (Printf.sprintf
             "the design deadlocks on every execution (%s): %s" what
             (String.concat ", "
                (List.map
                   (fun (b : Live.blocked) ->
                     Printf.sprintf "%s blocks %s stream \"%s\"" b.Live.b_proc
                       (match b.Live.b_dir with
                       | `Read -> "reading"
                       | `Write -> "writing")
                       b.Live.b_stream)
                   w.Live.w_blocked)));
      ]

(* L108: a producer whose write rate is unbounded (an uncounted loop)
   feeds a stream whose every consumer has a bounded read rate: the
   bounded-depth FIFO must eventually fill and block the producer. *)
let unbounded_producers (summaries : Chan.summary list) =
  List.concat_map
    (fun (s : Chan.summary) ->
      if
        s.Chan.readers <> []
        && List.for_all (fun (_, r) -> r.Chan.rmax <> None) s.Chan.readers
      then
        List.filter_map
          (fun (w, r) ->
            if r.Chan.rmax = None then
              Some
                (Diag.warning ~code:"INCA-L108" ~proc:w Loc.none
                   (Printf.sprintf
                      "process \"%s\" writes stream \"%s\" from an unbounded loop \
                       (%s writes per activation) but its consumers read at most %s; \
                       the %d-deep FIFO will fill and block the producer"
                      w s.Chan.cstream
                      (Chan.rate_to_string r)
                      (String.concat "+"
                         (List.map (fun (_, r) -> Chan.rate_to_string r) s.Chan.readers))
                      s.Chan.cdepth))
            else None)
          s.Chan.writers
      else [])
    summaries

(* L109/L110: a configured watchdog window measured against the proved
   completion bound.  A window shorter than the bound can expire while
   the design is still legitimately making (slow) progress; a window at
   least the bound can never fire on this design at all. *)
let watchdog_budget ~watchdog (verdict : Live.verdict) =
  match (watchdog, verdict) with
  | Some w, Live.Deadlock_free k when w < k ->
      [
        Diag.warning ~code:"INCA-L109" Loc.none
          (Printf.sprintf
             "watchdog window %d is provably insufficient: the design is \
              deadlock-free but only proved to finish within %d cycles, so the \
              watchdog may report a live-lock on a healthy run"
             w k);
      ]
  | Some w, Live.Deadlock_free k ->
      [
        Diag.info ~code:"INCA-L110" Loc.none
          (Printf.sprintf
             "watchdog window %d is provably redundant: the design finishes \
              within %d cycles on every execution, so the watchdog can never fire"
             w k);
      ]
  | _ -> []

let liveness ?watchdog (verdict : Live.verdict) (summaries : Chan.summary list) =
  Diag.order
    (deadlock_verdict verdict
    @ unbounded_producers summaries
    @ watchdog_budget ~watchdog verdict)

let run ?share_bits ?(replicate = true) (prog : program) (r : Absint.result) =
  Diag.order
    (bram_contention ~replicate prog
    @ channel_overflow ~share_bits prog
    @ uninit_reads r
    @ undrained_streams prog
    @ dead_assertions r)
