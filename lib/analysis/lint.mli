(** InCA-C lint suite: structural checks on the elaborated program,
    informed by the abstract-interpretation {!Absint.result}.

    Codes (stable; see DESIGN.md section 8):
    - [INCA-L101] (warning) — an assertion condition reads an array held
      in a process-local block RAM while the chosen strategy shares the
      RAM with the datapath instead of replicating it: the checker
      update steals a read port from the computation (paper section 3.2).
    - [INCA-L102] (error) — more hardware assertions than the shared
      status channel has bits, so flag words alias and a firing
      assertion becomes unattributable (paper section 3.3).
    - [INCA-L103] (warning) — a scalar is read before any assignment on
      some path; the interpreter zero-fills, synthesized hardware may
      not.
    - [INCA-L104] — a stream is written but never read by any process
      (info), escalated to a warning when a static bound on the number
      of writes exceeds the FIFO depth, which deadlocks the producer.
    - [INCA-L105] (warning) — an assertion is implied by an earlier
      still-active assertion on every path, so it can never be the
      first to fire.

    Liveness codes (from {!Live} and {!Chan}, see [liveness]):
    - [INCA-L106] (error) — the liveness verdict is a proved deadlock
      from a token-rate mismatch or a read past the last write.
    - [INCA-L107] (error) — a proved deadlock whose blocked processes
      wait on each other in a cycle.
    - [INCA-L108] (warning) — an unbounded-rate producer feeds a stream
      whose consumers all have bounded read rates; the FIFO must fill.
    - [INCA-L109] (warning) — the configured watchdog window is smaller
      than the proved completion bound (a false live-lock is possible).
    - [INCA-L110] (info) — the watchdog window is at least the proved
      completion bound, so it can never fire on this design.

    [share_bits] is the width of the shared status stream when the
    compile strategy shares one channel across assertions ([None]
    disables L102).  [replicate] states whether the strategy replicates
    checker BRAMs ([true] silences L101). *)

val run :
  ?share_bits:int ->
  ?replicate:bool ->
  Front.Ast.program ->
  Absint.result ->
  Diag.t list

(** The INCA-L106..L110 family over a {!Live} verdict and the {!Chan}
    channel-graph summaries; [watchdog] is the configured window, when
    one is known. *)
val liveness :
  ?watchdog:int -> Live.verdict -> Chan.summary list -> Diag.t list
