(** InCA-C lint suite: structural checks on the elaborated program,
    informed by the abstract-interpretation {!Absint.result}.

    Codes (stable; see DESIGN.md section 8):
    - [INCA-L101] (warning) — an assertion condition reads an array held
      in a process-local block RAM while the chosen strategy shares the
      RAM with the datapath instead of replicating it: the checker
      update steals a read port from the computation (paper section 3.2).
    - [INCA-L102] (error) — more hardware assertions than the shared
      status channel has bits, so flag words alias and a firing
      assertion becomes unattributable (paper section 3.3).
    - [INCA-L103] (warning) — a scalar is read before any assignment on
      some path; the interpreter zero-fills, synthesized hardware may
      not.
    - [INCA-L104] — a stream is written but never read by any process
      (info), escalated to a warning when a static bound on the number
      of writes exceeds the FIFO depth, which deadlocks the producer.
    - [INCA-L105] (warning) — an assertion is implied by an earlier
      still-active assertion on every path, so it can never be the
      first to fire.

    [share_bits] is the width of the shared status stream when the
    compile strategy shares one channel across assertions ([None]
    disables L102).  [replicate] states whether the strategy replicates
    checker BRAMs ([true] silences L101). *)

val run :
  ?share_bits:int ->
  ?replicate:bool ->
  Front.Ast.program ->
  Absint.result ->
  Diag.t list
