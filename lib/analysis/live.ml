(** Static liveness verdicts — see {!Live} interface. *)

open Front.Ast

type blocked = { b_proc : string; b_dir : [ `Read | `Write ]; b_stream : string }

type reason = Rate_mismatch | Circular_wait | Read_past_last_write

type witness = { w_blocked : blocked list; w_reason : reason }

type verdict = Deadlock_free of int | Deadlock of witness | Unknown of string

let reason_to_string = function
  | Rate_mismatch -> "rate mismatch"
  | Circular_wait -> "circular wait"
  | Read_past_last_write -> "read past last write"

let witness_to_string w =
  Printf.sprintf "%s: %s"
    (reason_to_string w.w_reason)
    (String.concat ", "
       (List.map
          (fun b ->
            Printf.sprintf "%s blocked %s %s" b.b_proc
              (match b.b_dir with `Read -> "reading" | `Write -> "writing")
              b.b_stream)
          w.w_blocked))

let verdict_to_string = function
  | Deadlock_free k -> Printf.sprintf "deadlock-free within %d cycles" k
  | Deadlock w -> "deadlock: " ^ witness_to_string w
  | Unknown why -> "unknown: " ^ why

let class_name = function
  | Deadlock_free _ -> "deadlock_free"
  | Deadlock _ -> "deadlock"
  | Unknown _ -> "unknown"

(* --- the token network ---------------------------------------------------- *)

type proc_state = { ps_proc : string; ps_pos : int; ps_done : bool }

type net_outcome = Completed | Stuck of witness

(* Exact token-counting execution of the channel network.  Values are
   irrelevant to progress, and with at most one in-design writer and
   one in-design reader per stream the network is a Kahn network over
   bounded FIFOs: its final stuck-or-finished state is independent of
   the schedule, so one round-robin run decides liveness for every
   interleaving the engine could produce. *)
let run_network ~(streams : stream_decl list) ~(feeds : (string * int) list)
    ~(drains : string list) (traces : (string * Chan.op list) list) :
    (net_outcome * proc_state list, string) result =
  let exception Refuse of string in
  try
    let writer_of : (string, string) Hashtbl.t = Hashtbl.create 8 in
    let reader_of : (string, string) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (pname, ops) ->
        List.iter
          (fun (op : Chan.op) ->
            match op with
            | Chan.Write (s, _) -> (
                match Hashtbl.find_opt writer_of s with
                | Some p when p <> pname ->
                    raise (Refuse (Printf.sprintf "stream %s has two writers" s))
                | _ -> Hashtbl.replace writer_of s pname)
            | Chan.Read (s, _) -> (
                match Hashtbl.find_opt reader_of s with
                | Some p when p <> pname ->
                    raise (Refuse (Printf.sprintf "stream %s has two readers" s))
                | _ -> Hashtbl.replace reader_of s pname)
            | Chan.Assert_op | Chan.Trap -> ())
          ops)
      traces;
    List.iter
      (fun (sd : stream_decl) ->
        let s = sd.sname in
        let fed = List.mem_assoc s feeds and drained = List.mem s drains in
        if fed && Hashtbl.mem writer_of s then
          raise (Refuse (Printf.sprintf "stream %s is both fed and written" s));
        if drained && Hashtbl.mem reader_of s then
          raise (Refuse (Printf.sprintf "stream %s is both drained and read" s));
        if Hashtbl.mem reader_of s && (not fed) && not (Hashtbl.mem writer_of s)
        then
          raise
            (Refuse (Printf.sprintf "stream %s is read but fed externally" s)))
      streams;
    let depth_of = List.map (fun (sd : stream_decl) -> (sd.sname, sd.depth)) streams in
    let fifo : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let feed_rem : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun (s, n) -> Hashtbl.replace feed_rem s n) feeds;
    let level s = Option.value ~default:0 (Hashtbl.find_opt fifo s) in
    let procs =
      Array.of_list (List.map (fun (p, ops) -> (p, Array.of_list ops)) traces)
    in
    let pos = Array.make (Array.length procs) 0 in
    let is_done i = pos.(i) >= Array.length (snd procs.(i)) in
    let can_fire (op : Chan.op) =
      match op with
      | Chan.Assert_op | Chan.Trap -> true
      | Chan.Read (s, _) ->
          level s > 0 || Option.value ~default:0 (Hashtbl.find_opt feed_rem s) > 0
      | Chan.Write (s, _) ->
          List.mem s drains
          || level s < Option.value ~default:0 (List.assoc_opt s depth_of)
    in
    let fire (op : Chan.op) =
      match op with
      | Chan.Assert_op | Chan.Trap -> ()
      | Chan.Read (s, _) ->
          if level s > 0 then Hashtbl.replace fifo s (level s - 1)
          else
            Hashtbl.replace feed_rem s
              (Option.value ~default:0 (Hashtbl.find_opt feed_rem s) - 1)
      | Chan.Write (s, _) ->
          if not (List.mem s drains) then Hashtbl.replace fifo s (level s + 1)
    in
    let progressed = ref true in
    while !progressed do
      progressed := false;
      Array.iteri
        (fun i (_, ops) ->
          (* drain every currently-fireable op of this process before
             moving on; the final state is schedule-independent *)
          let continue = ref true in
          while (not (is_done i)) && !continue do
            let op = ops.(pos.(i)) in
            if can_fire op then (
              fire op;
              pos.(i) <- pos.(i) + 1;
              progressed := true)
            else continue := false
          done)
        procs
    done;
    let states =
      Array.to_list
        (Array.mapi
           (fun i (p, _) -> { ps_proc = p; ps_pos = pos.(i); ps_done = is_done i })
           procs)
    in
    if List.for_all (fun ps -> ps.ps_done) states then Ok (Completed, states)
    else
      let blocked =
        Array.to_list
          (Array.mapi
             (fun i (p, ops) ->
               if is_done i then None
               else
                 match ops.(pos.(i)) with
                 | Chan.Read (s, _) -> Some { b_proc = p; b_dir = `Read; b_stream = s }
                 | Chan.Write (s, _) -> Some { b_proc = p; b_dir = `Write; b_stream = s }
                 | Chan.Assert_op | Chan.Trap -> None)
             procs)
        |> List.filter_map Fun.id
      in
      let blocked_names = List.map (fun b -> b.b_proc) blocked in
      let done_proc p =
        List.exists (fun ps -> ps.ps_proc = p && ps.ps_done) states
      in
      (* wait-for edges among the blocked processes *)
      let waits_on b =
        match b.b_dir with
        | `Read -> (
            match Hashtbl.find_opt writer_of b.b_stream with
            | Some w when List.mem w blocked_names -> Some w
            | _ -> None)
        | `Write -> (
            match Hashtbl.find_opt reader_of b.b_stream with
            | Some r when List.mem r blocked_names -> Some r
            | _ -> None)
      in
      let edges = List.filter_map (fun b -> Option.map (fun t -> (b.b_proc, t)) (waits_on b)) blocked in
      let rec on_cycle seen p =
        match List.assoc_opt p edges with
        | None -> false
        | Some q -> List.mem q seen || on_cycle (p :: seen) q
      in
      let circular = List.exists (fun (p, _) -> on_cycle [ p ] p) edges in
      let starved =
        List.exists
          (fun b ->
            b.b_dir = `Read
            &&
            let supply_gone =
              Option.value ~default:0 (Hashtbl.find_opt feed_rem b.b_stream) = 0
            in
            supply_gone
            &&
            match Hashtbl.find_opt writer_of b.b_stream with
            | Some w -> done_proc w
            | None -> not (List.mem_assoc b.b_stream feeds))
          blocked
      in
      let reason =
        if circular then Circular_wait
        else if starved then Read_past_last_write
        else Rate_mismatch
      in
      Ok (Stuck { w_blocked = blocked; w_reason = reason }, states)
  with Refuse m -> Error m

(* --- whole-design analysis ------------------------------------------------ *)

(* Cycle budget for a proved-complete design: every cycle of a live run
   makes progress on some process's statement work, so the sum of the
   per-process work estimates (each statement generously priced at
   [6 + 3*nodes] cycles plus extern latencies in Chan) bounds the
   run length; feed pumping and host polling ride on the slack. *)
let cycle_bound (traces : (string * Chan.trace) list) ~(feeds : (string * int) list) =
  let work = List.fold_left (fun acc (_, t) -> acc + t.Chan.t_work) 0 traces in
  let tokens = List.fold_left (fun acc (_, n) -> acc + n) 0 feeds in
  (2 * work) + (8 * tokens) + (64 * List.length traces) + 4096

let analyze ?(params = []) ?(feeds = []) ?(drains = []) (prog : program) :
    verdict =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (p : proc) :: rest -> (
        let env = Option.value ~default:[] (List.assoc_opt p.pname params) in
        match Chan.trace ~env prog p with
        | Ok t -> collect ((p.pname, t) :: acc) rest
        | Error m -> Error m)
  in
  match collect [] prog.procs with
  | Error m -> Unknown m
  | Ok traces -> (
      let feeds = List.map (fun (s, n) -> (s, max 0 n)) feeds in
      match
        run_network ~streams:prog.streams ~feeds ~drains
          (List.map (fun (p, t) -> (p, t.Chan.t_ops)) traces)
      with
      | Error m -> Unknown m
      | Ok (Completed, _) -> Deadlock_free (cycle_bound traces ~feeds)
      | Ok (Stuck w, _) -> Deadlock w)
