(** Static liveness: deadlock-freedom and progress for the elaborated
    multi-process design.

    {!Chan} gives each process an exact channel-op trace (when every
    loop bound is proved by {!Bound}); this module runs the resulting
    token network — at most one in-design writer and one reader per
    stream, blocking reads and depth-bounded blocking writes, exactly
    the engine's FIFO discipline — to a schedule-independent final
    state (a Kahn network argument).  The verdict is NABORT-sound in
    the same sense as {!Absint}: [Deadlock_free] is only claimed when
    every loop bound, every rate, and the whole op schedule is proved,
    and the accompanying cycle bound [k] over-approximates the run
    length so a watchdog window of [k] can never falsely fire. *)

type blocked = {
  b_proc : string;
  b_dir : [ `Read | `Write ];
  b_stream : string;
}

type reason =
  | Rate_mismatch         (** produced and consumed token counts disagree *)
  | Circular_wait         (** blocked processes wait on each other in a cycle *)
  | Read_past_last_write  (** a reader outlives its channel's supply *)

type witness = { w_blocked : blocked list; w_reason : reason }

type verdict =
  | Deadlock_free of int  (** completes; the int is a sound cycle budget *)
  | Deadlock of witness
  | Unknown of string     (** why the analysis gave up *)

val reason_to_string : reason -> string
val witness_to_string : witness -> string
val verdict_to_string : verdict -> string

(** "deadlock_free" / "deadlock" / "unknown" (stable report surface). *)
val class_name : verdict -> string

(** Final state of one process in the token network. *)
type proc_state = { ps_proc : string; ps_pos : int; ps_done : bool }

type net_outcome = Completed | Stuck of witness

(** Run the token network over explicit per-process op traces.  [feeds]
    maps externally fed streams to their total token count; [drains]
    names externally drained streams (writes never block).  [Error]
    when the network shape puts the outcome beyond this analysis (two
    writers, fed-and-written, read-but-never-fed, ...). *)
val run_network :
  streams:Front.Ast.stream_decl list ->
  feeds:(string * int) list ->
  drains:string list ->
  (string * Chan.op list) list ->
  (net_outcome * proc_state list, string) result

(** Whole-design verdict.  [params] maps process names to parameter
    bindings (testbench [--param]); [feeds]/[drains] as above.  Without
    a feed entry, a stream that is read but never written in-design
    makes the verdict [Unknown] — never a false [Deadlock]. *)
val analyze :
  ?params:(string * (string * int64) list) list ->
  ?feeds:(string * int) list ->
  ?drains:string list ->
  Front.Ast.program ->
  verdict
