(** Netlist-level verification verdicts — the shared vocabulary between
    the BMC engine ({!Bmc.Prove}, which sits above this library), the
    [inca prove] CLI and the bench harness.

    The classification deliberately mirrors {!Absint}'s
    proved/violated/unknown triple so the two verifiers can be
    cross-checked mechanically, but it is richer: a bounded result
    carries its depth, a violation carries the replay status of its
    counterexample, and reachability of the checker's fire condition is
    reported separately (the cover-style dual of proving).

    Diagnostic codes (continuing {!Diag}'s INCA-A/L/S families):

    - [INCA-B001]  assertion violated; counterexample replayed in the
                   cycle-accurate simulator
    - [INCA-B002]  assertion proved for all executions by k-induction
                   (prunable hardware, like INCA-A002)
    - [INCA-B003]  assertion holds to the unrolled depth only
    - [INCA-B004]  checker unreachable to the unrolled depth (dead
                   hardware; cross-checked against lint L105)
    - [INCA-B005]  assertion outside the BMC fragment (pipelined loop,
                   extern call, non-scalar free value)
    - [INCA-B006]  solver found a candidate violation the simulator
                   replay did not confirm (a model/engine divergence —
                   report it as a bug) *)

module Loc = Front.Loc

type pclass =
  | Bviolated of int  (** fire cycle of the replayed counterexample *)
  | Bproved of int    (** inductive at this k *)
  | Bbounded of int   (** no violation within this many cycles *)
  | Bunknown of string

type breach =
  | Breachable of int      (** first cycle the tap can execute *)
  | Bunreachable of int    (** tap cannot execute within this depth *)
  | Breach_unknown of string

type presult = {
  pr_id : int;
  pr_proc : string;
  pr_loc : Loc.t;
  pr_text : string;        (** source text of the condition *)
  pr_class : pclass;
  pr_reach : breach;
  pr_dead_lint : bool;     (** also flagged dead by lint L105 *)
  pr_conflicts : int;
  pr_decisions : int;
  pr_propagations : int;
}

type report = {
  p_depth : int;
  p_induction : int;
  p_results : presult list;  (** assertion id order *)
}

let class_name = function
  | Bviolated _ -> "violated"
  | Bproved _ -> "proved"
  | Bbounded _ -> "bounded"
  | Bunknown _ -> "unknown"

let tally rep =
  List.fold_left
    (fun (p, v, b, u) r ->
      match r.pr_class with
      | Bproved _ -> (p + 1, v, b, u)
      | Bviolated _ -> (p, v + 1, b, u)
      | Bbounded _ -> (p, v, b + 1, u)
      | Bunknown _ -> (p, v, b, u + 1))
    (0, 0, 0, 0) rep.p_results

let conflicts rep = List.fold_left (fun a r -> a + r.pr_conflicts) 0 rep.p_results

let diag_of (r : presult) : Diag.t option =
  match r.pr_class with
  | Bviolated c ->
      Some
        (Diag.error ~code:"INCA-B001" ~proc:r.pr_proc r.pr_loc
           (Printf.sprintf
              "assertion \"%s\" violated: counterexample fires at cycle %d and replays \
               in the cycle-accurate simulator"
              r.pr_text c))
  | Bproved k ->
      Some
        (Diag.info ~code:"INCA-B002" ~proc:r.pr_proc r.pr_loc
           (Printf.sprintf
              "assertion \"%s\" proved by %d-induction; --prune-proved removes its checker"
              r.pr_text k))
  | Bbounded _ -> (
      match r.pr_reach with
      | Bunreachable d ->
          Some
            (Diag.warning ~code:"INCA-B004" ~proc:r.pr_proc r.pr_loc
               (Printf.sprintf
                  "checker for \"%s\" is unreachable to depth %d%s" r.pr_text d
                  (if r.pr_dead_lint then " (lint L105 agrees: dead assertion)" else "")))
      | _ -> None)
  | Bunknown msg ->
      let fragment =
        (* fragment exclusions carry their construct in the message *)
        let has s =
          let n = String.length s and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = s || go (i + 1)) in
          go 0
        in
        has "outside the BMC fragment" || has "free variable"
        || has "non-scalar"
      in
      if fragment then
        Some
          (Diag.info ~code:"INCA-B005" ~proc:r.pr_proc r.pr_loc
             (Printf.sprintf "assertion \"%s\" outside the BMC fragment: %s" r.pr_text msg))
      else None

(** The replay-divergence diagnostic: a SAT witness the engine refused.
    Kept separate from {!diag_of} because the caller downgrades the
    verdict to [Bunknown] when this happens. *)
let replay_divergence ~proc ~loc ~text msg =
  Diag.error ~code:"INCA-B006" ~proc loc
    (Printf.sprintf
       "counterexample for \"%s\" did not replay in the simulator (%s) — BMC model and \
        engine disagree; please report this"
       text msg)

let render ~file rep =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      let detail =
        match r.pr_class with
        | Bviolated c -> Printf.sprintf "violated at cycle %d (replayed)" c
        | Bproved k -> Printf.sprintf "proved by %d-induction" k
        | Bbounded d -> Printf.sprintf "holds to depth %d" d
        | Bunknown m -> "unknown: " ^ m
      in
      let reach =
        match r.pr_reach with
        | Breachable c -> Printf.sprintf "reachable at cycle %d" c
        | Bunreachable d ->
            Printf.sprintf "UNREACHABLE to depth %d%s" d
              (if r.pr_dead_lint then ", L105 dead" else "")
        | Breach_unknown _ -> "reachability unknown"
      in
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: #%d [%s]: assert(%s): %s; %s\n" r.pr_loc.Loc.file
           r.pr_loc.Loc.line r.pr_loc.Loc.col r.pr_id r.pr_proc r.pr_text detail reach))
    rep.p_results;
  let p, v, bd, u = tally rep in
  Buffer.add_string b
    (Printf.sprintf
       "%s: %d assertion%s to depth %d (induction %d): %d proved, %d violated, %d \
        bounded, %d unknown (%d conflicts)\n"
       file
       (List.length rep.p_results)
       (if List.length rep.p_results = 1 then "" else "s")
       rep.p_depth rep.p_induction p v bd u (conflicts rep));
  Buffer.contents b

let json_of ~file rep : Json.t =
  let result (r : presult) =
    (* "text" directly followed by "class" is a documented (and
       CI-grepped) stability point of the assertion object. *)
    let cls =
      match r.pr_class with
      | Bviolated c -> [ ("class", Json.Str "violated"); ("fire_cycle", Json.int c) ]
      | Bproved k -> [ ("class", Json.Str "proved"); ("induction_k", Json.int k) ]
      | Bbounded d -> [ ("class", Json.Str "bounded"); ("depth", Json.int d) ]
      | Bunknown m -> [ ("class", Json.Str "unknown"); ("reason", Json.Str m) ]
    in
    let reach =
      match r.pr_reach with
      | Breachable c -> Json.Obj [ ("reachable", Json.Bool true); ("cycle", Json.int c) ]
      | Bunreachable d ->
          Json.Obj
            [
              ("reachable", Json.Bool false);
              ("depth", Json.int d);
              ("l105_dead", Json.Bool r.pr_dead_lint);
            ]
      | Breach_unknown m -> Json.Obj [ ("reachable", Json.Null); ("reason", Json.Str m) ]
    in
    Json.Obj
      ([
         ("id", Json.int r.pr_id);
         ("proc", Json.Str r.pr_proc);
         ("line", Json.int r.pr_loc.Loc.line);
         ("col", Json.int r.pr_loc.Loc.col);
         ("text", Json.Str r.pr_text);
       ]
      @ cls
      @ [
          ("reach", reach);
          ("conflicts", Json.int r.pr_conflicts);
          ("decisions", Json.int r.pr_decisions);
          ("propagations", Json.int r.pr_propagations);
        ])
  in
  let p, v, bd, u = tally rep in
  Json.Obj
    [
      ("file", Json.Str file);
      ("depth", Json.int rep.p_depth);
      ("induction", Json.int rep.p_induction);
      ("assertions", Json.list result rep.p_results);
      ( "summary",
        Json.Obj
          [
            ("proved", Json.int p);
            ("violated", Json.int v);
            ("bounded", Json.int bd);
            ("unknown", Json.int u);
            ("conflicts", Json.int (conflicts rep));
          ] );
    ]
