(** Shared classification for netlist-level (BMC / k-induction) proof
    results: the INCA-B diagnostic family, plus text and JSON renderers
    used by [inca prove] and the bench harness.

    This module is pure data + rendering: the analysis library does not
    depend on the solver.  {!Bmc.Prove} results are mapped into
    {!presult} by [Core.Verify].

    Codes: INCA-B001 violated+replayed (error), B002 proved by
    k-induction (info), B003 bounded only, B004 unreachable to depth
    (warning, cross-referenced with lint L105), B005 outside the BMC
    fragment (info), B006 counterexample failed replay (error). *)

module Loc = Front.Loc

type pclass =
  | Bviolated of int  (** fire cycle of the replayed counterexample *)
  | Bproved of int    (** inductive at this k *)
  | Bbounded of int   (** no violation within this many cycles *)
  | Bunknown of string

type breach =
  | Breachable of int      (** first cycle the tap can execute *)
  | Bunreachable of int    (** tap cannot execute within this depth *)
  | Breach_unknown of string

type presult = {
  pr_id : int;
  pr_proc : string;
  pr_loc : Loc.t;
  pr_text : string;
  pr_class : pclass;
  pr_reach : breach;
  pr_dead_lint : bool;     (** also flagged dead by lint L105 *)
  pr_conflicts : int;
  pr_decisions : int;
  pr_propagations : int;
}

type report = {
  p_depth : int;
  p_induction : int;
  p_results : presult list;  (** assertion id order *)
}

val class_name : pclass -> string

(** (proved, violated, bounded, unknown) *)
val tally : report -> int * int * int * int

(** total solver conflicts across all assertions *)
val conflicts : report -> int

(** The INCA-B diagnostic for one result, when it warrants one
    (violations, induction proofs, unreachable checkers, fragment
    exclusions).  Plain bounded results produce none. *)
val diag_of : presult -> Diag.t option

(** INCA-B006: the solver produced a candidate violation that the
    cycle-accurate replay did not confirm. *)
val replay_divergence :
  proc:string -> loc:Loc.t -> text:string -> string -> Diag.t

(** Human-readable report, one line per assertion plus a summary. *)
val render : file:string -> report -> string

(** The report as a deterministic JSON payload (no timing data) — the
    [inca prove] entry in a {!Core.Report} envelope. *)
val json_of : file:string -> report -> Json.t
