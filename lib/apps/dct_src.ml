(** 8-point DCT-II in InCA-C.

    The coefficient matrix lives in a block-RAM ROM (one M4K); each
    block of eight samples is buffered into a dual-ported scratch RAM
    and transformed by a doubly-nested multiply-accumulate loop.  An
    in-circuit assertion bounds every output coefficient — a wrapped
    accumulator or a mis-indexed ROM row shows up immediately. *)

let source () =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "stream int32 dct_in depth 16;";
  p "stream int32 dct_out depth 16;";
  p "";
  p "process hw dct(int32 nblocks) {";
  p "  const int32 dctc[%d] = { %s };"
    (Dct_ref.points * Dct_ref.points)
    (String.concat ", " (Array.to_list (Array.map string_of_int Dct_ref.coeff)));
  p "  int32 x[8];";
  p "  int32 b;";
  p "  for (b = 0; b < nblocks; b = b + 1) {";
  p "    int32 n;";
  p "    for (n = 0; n < 8; n = n + 1) {";
  p "      x[n] = stream_read(dct_in);";
  p "    }";
  p "    int32 k;";
  p "    for (k = 0; k < 8; k = k + 1) {";
  p "      int32 acc;";
  p "      acc = 0;";
  p "      int32 m;";
  p "      for (m = 0; m < 8; m = m + 1) {";
  p "        /* ROM-index guard: statically true, so --prune-proved drops it */";
  p "        assert(k * 8 + m < 64);";
  p "        acc = acc + dctc[k * 8 + m] * x[m];";
  p "      }";
  p "      int32 y;";
  p "      y = acc >> %d;" Dct_ref.scale_shift;
  p "      assert(y <= %d);" Dct_ref.output_bound;
  p "      assert(y >= %d);" (-Dct_ref.output_bound);
  p "      stream_write(dct_out, y);";
  p "    }";
  p "  }";
  p "}";
  Buffer.contents buf
