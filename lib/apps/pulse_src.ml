(** Pulse-statistics monitor in InCA-C.

    The split-stream stress shape, and a realistic one: a long
    data-dependent scan over the input stream (thousands of shared
    prefix cycles, with the loop's own bound comparison as the only
    fault site), followed by a short site-rich summary block — BRAM
    band stores, stream writes, small loops — that first executes only
    after the scan completes, plus a saturation error path the nominal
    stimulus never takes.  Every summary-block mutant shares the whole
    scan as its simulation prefix, so fork-point evaluation replays a
    few hundred cycles where from-reset re-simulates the full run; the
    error-path mutants never activate at all and cost the fork path
    nothing.  This is the campaign shape the split-stream optimization
    exists for, and the bench A/B measures its dividend on it. *)

let source () =
  {|
stream int32 pulse_in depth 16;
stream int32 stats_out depth 16;

process hw pulse(int32 n) {
  int32 band[8];
  int32 i; int32 j; int32 k;
  int32 acc; int32 peak; int32 over; int32 energy;
  acc = 0; peak = 0; over = 0; energy = 0;
  /* phase 1: the long scan — no stores, no stream writes, one loop */
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(pulse_in);
    acc = acc + x;
    if (x > peak) {
      peak = x;
    }
    if (x > 3600) {
      over = over + 1;
    }
    energy = energy + ((x * x) >> 8);
    assert(acc >= 0);
  }
  /* phase 2: the summary block — every fault site below first
     activates only after the whole scan has run */
  assert(peak <= 4095);
  assert(over <= n);
  for (j = 0; j < 8; j = j + 1) {
    band[j] = acc + ((peak - energy) * j) + over;
  }
  for (k = 0; k < 8; k = k + 1) {
    int32 v;
    v = band[k] + (peak >> 1);
    stream_write(stats_out, v);
  }
  int32 csum[4];
  int32 t;
  for (t = 0; t < 4; t = t + 1) {
    int32 u; int32 u1;
    u = t + t;
    u1 = u + 1;
    csum[t] = band[u] - band[u1];
  }
  int32 c0; int32 c3;
  c0 = csum[0];
  c3 = csum[3];
  stream_write(stats_out, c0 + c3);
  stream_write(stats_out, (acc >> 4) + over);
  stream_write(stats_out, energy - peak);
  /* saturation report: input-dependent, never taken by the nominal
     12-bit stimulus — its mutants never activate */
  if (peak > 100000) {
    stream_write(stats_out, 0 - peak);
    stream_write(stats_out, 0 - over);
  }
}
|}

(** Nominal 12-bit sensor trace: a deterministic sawtooth with a sparse
    spike train (every 97th sample crosses the 3600 threshold), peak
    strictly below 4096 so the saturation path stays cold. *)
let test_signal n =
  Array.init n (fun i ->
      if i mod 97 = 0 then 3800 + (i mod 200) else (i * 37 + 11) mod 3400)

let to_stream (samples : int array) =
  Array.to_list (Array.map Int64.of_int samples)
