(** Pulse-statistics monitor in InCA-C: a long data-dependent scan over
    the input stream followed by a short site-rich summary block and a
    never-taken saturation path.  The bundled workload whose fault
    sites share a long simulation prefix — the shape fork-point mutant
    evaluation exists for.  Reads [pulse_in], writes [stats_out];
    process [pulse], parameter [n]. *)

val source : unit -> string

(** Deterministic nominal stimulus: [n] 12-bit samples, sawtooth plus a
    sparse spike train, peak < 4096. *)
val test_signal : int -> int array

val to_stream : int array -> int64 list
