(** Hash-consed and-inverter graph.

    The bit-blaster builds every combinational function of the unrolled
    design as a DAG of two-input AND nodes with optional inversion on
    every edge.  Structural hashing plus constant folding keep the graph
    small: unrolling from the concrete reset state folds most of the
    datapath away, leaving only the cone that actually depends on free
    inputs (stream values, process parameters, induction start state).

    A literal is [2*node + polarity]; node 0 is the constant TRUE, so
    literal 0 is true and literal 1 is false.  Nodes are created in
    topological order, which the evaluator and the CNF encoder rely
    on. *)

type lit = int

let tru : lit = 0
let fls : lit = 1
let neg (l : lit) : lit = l lxor 1
let node_of (l : lit) = l lsr 1
let compl_of (l : lit) = l land 1 = 1

(* Fanins of an AND node; a primary input has [fan0 = -1].  Node 0 is
   the constant-true node (also [fan0 = -1]). *)
type t = {
  mutable fan0 : int array;
  mutable fan1 : int array;
  mutable n : int;
  cache : (int, int) Hashtbl.t;  (* (fan0, fan1) packed -> node *)
}

let create () =
  let cap = 1024 in
  { fan0 = Array.make cap (-1); fan1 = Array.make cap (-1); n = 1;
    cache = Hashtbl.create 1024 }

let num_nodes t = t.n

let is_input t (l : lit) =
  let v = node_of l in
  v > 0 && t.fan0.(v) = -1

let grow t =
  let cap = Array.length t.fan0 in
  if t.n >= cap then begin
    let cap' = cap * 2 in
    let f0 = Array.make cap' (-1) and f1 = Array.make cap' (-1) in
    Array.blit t.fan0 0 f0 0 cap;
    Array.blit t.fan1 0 f1 0 cap;
    t.fan0 <- f0;
    t.fan1 <- f1
  end

let alloc t a b =
  grow t;
  let v = t.n in
  t.fan0.(v) <- a;
  t.fan1.(v) <- b;
  t.n <- v + 1;
  v

(** Fresh primary input; returns its (positive) literal. *)
let new_input t : lit = 2 * alloc t (-1) (-1)

(* Literal pairs fit one OCaml int comfortably: pack for the hash key. *)
let pack a b = (a lsl 31) lor b

let mk_and t (a : lit) (b : lit) : lit =
  if a = fls || b = fls then fls
  else if a = tru then b
  else if b = tru then a
  else if a = b then a
  else if a = neg b then fls
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = pack a b in
    match Hashtbl.find_opt t.cache key with
    | Some v -> 2 * v
    | None ->
        let v = alloc t a b in
        Hashtbl.add t.cache key v;
        2 * v
  end

let mk_or t a b = neg (mk_and t (neg a) (neg b))
let mk_xor t a b = mk_or t (mk_and t a (neg b)) (mk_and t (neg a) b)
let mk_iff t a b = neg (mk_xor t a b)

(** [mk_mux t c a b] is [if c then a else b]. *)
let mk_mux t c a b =
  if a = b then a
  else if c = tru then a
  else if c = fls then b
  else mk_or t (mk_and t c a) (mk_and t (neg c) b)

let mk_and_list t ls = List.fold_left (mk_and t) tru ls
let mk_or_list t ls = List.fold_left (mk_or t) fls ls

(** Concrete evaluation of the whole graph under an assignment of the
    primary inputs (by node id; unassigned inputs read false).  Returns
    a literal evaluator.  Nodes are in topological order, so one linear
    pass suffices; the result array is as large as the graph, so reuse
    the evaluator for every literal of interest. *)
let evaluator t (input : int -> bool) : lit -> bool =
  let vals = Bytes.make t.n '\000' in
  Bytes.set vals 0 '\001';
  for v = 1 to t.n - 1 do
    let x =
      if t.fan0.(v) = -1 then input v
      else
        let l0 = t.fan0.(v) and l1 = t.fan1.(v) in
        let e l = Bytes.get vals (node_of l) = '\001' <> compl_of l in
        e l0 && e l1
    in
    if x then Bytes.set vals v '\001'
  done;
  fun (l : lit) -> Bytes.get vals (node_of l) = '\001' <> compl_of l
