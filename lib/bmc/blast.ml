(** Bit-blasting of InCA-C scalar semantics into an AIG.

    Mirrors {!Interp.Value} exactly: every value is a 64-literal vector
    (LSB first) in *canonical form* — truncated to its type's width and
    then sign- or zero-extended, the same invariant Value maintains on
    [int64]s.  Operations take raw canonical operands (which, as in the
    engine, may be canonical at a *different* register type than the
    operation type) and re-canonicalize the result at the operation
    type, so the blasted circuit computes bit-for-bit what
    [Value.binop]/[unop]/[cast] compute.  Division runs at full 64-bit
    precision like [Int64.div]; the divisor-is-zero condition is
    reported to the caller, which either excludes those traces (the
    datapath raises [Sim_failure]) or muxes the result to zero (the
    checker's [eval_slots] catches the exception and yields 0). *)

open Front.Ast
module A = Aig

type vec = Aig.lit array  (* length 64, LSB first *)

let width = 64

let const (n : int64) : vec =
  Array.init width (fun i ->
      if Int64.logand (Int64.shift_right_logical n i) 1L = 1L then A.tru else A.fls)

let zero = const 0L
let one = const 1L

(** Fresh vector of [w] free input bits, canonicalized per [s]. *)
let inputs g s w : vec =
  let bits = Array.init w (fun _ -> A.new_input g) in
  Array.init width (fun i ->
      if i < w then bits.(i)
      else match s with Unsigned -> A.fls | Signed -> bits.(w - 1))

(** Concrete value of a vector under an AIG evaluator. *)
let eval_vec (e : Aig.lit -> bool) (v : vec) : int64 =
  let r = ref 0L in
  for i = width - 1 downto 0 do
    r := Int64.logor (Int64.shift_left !r 1) (if e v.(i) then 1L else 0L)
  done;
  !r

(* --- canonicalization ------------------------------------------------------ *)

(** [Value.wrap]: truncate to [w] bits, then sign/zero-extend. *)
let wrap _g s w (v : vec) : vec =
  if w >= width then Array.copy v
  else
    Array.init width (fun i ->
        if i < w then v.(i)
        else match s with Unsigned -> A.fls | Signed -> v.(w - 1))

let or_reduce g (v : vec) : Aig.lit = Array.fold_left (A.mk_or g) A.fls v

(** [Value.to_bool]: any nonzero bit. *)
let to_bool = or_reduce

let of_bool_lit (l : Aig.lit) : vec =
  Array.init width (fun i -> if i = 0 then l else A.fls)

(** [Value.wrap_ty]. *)
let wrap_ty g ty (v : vec) : vec =
  match ty with
  | Tint (s, w) -> wrap g s (bits_of_width w) v
  | Tbool -> of_bool_lit (to_bool g v)
  | Tarray _ | Tvoid -> invalid_arg "Blast.wrap_ty: not a scalar type"

let ite g (c : Aig.lit) (a : vec) (b : vec) : vec =
  Array.init width (fun i -> A.mk_mux g c a.(i) b.(i))

(* --- equality and comparison ----------------------------------------------- *)

let eq g (a : vec) (b : vec) : Aig.lit =
  let r = ref A.tru in
  for i = 0 to width - 1 do
    r := A.mk_and g !r (A.mk_iff g a.(i) b.(i))
  done;
  !r

(** [a] equals the constant [n]. *)
let eq_const g (a : vec) (n : int64) : Aig.lit = eq g a (const n)

let is_zero g (a : vec) : Aig.lit = A.neg (or_reduce g a)

(* Unsigned less-than over [n] bits: NOT carry-out of a + ~b + 1. *)
let ult_n g n (a : vec) (b : vec) : Aig.lit =
  let carry = ref A.tru in
  for i = 0 to n - 1 do
    let bi = A.neg b.(i) in
    (* carry' = (a & bi) | (carry & (a ^ bi)) *)
    carry :=
      A.mk_or g (A.mk_and g a.(i) bi) (A.mk_and g !carry (A.mk_xor g a.(i) bi))
  done;
  A.neg !carry

let ult g a b = ult_n g width a b

let slt g (a : vec) (b : vec) : Aig.lit =
  let sa = a.(width - 1) and sb = b.(width - 1) in
  A.mk_or g
    (A.mk_and g sa (A.neg sb))
    (A.mk_and g (A.mk_iff g sa sb) (ult g a b))

(* --- arithmetic ------------------------------------------------------------ *)

(* Ripple-carry a + b + cin over the low [n] bits; upper bits are
   whatever [fill] makes of them (callers re-wrap). *)
let add_n g n (a : vec) (b : vec) (cin : Aig.lit) : vec =
  let r = Array.make width A.fls in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let axb = A.mk_xor g a.(i) b.(i) in
    r.(i) <- A.mk_xor g axb !carry;
    carry := A.mk_or g (A.mk_and g a.(i) b.(i)) (A.mk_and g !carry axb)
  done;
  r

let add64 g a b = add_n g width a b A.fls

let not_vec g (a : vec) : vec =
  ignore g;
  Array.map A.neg a

let sub64 g a b = add_n g width a (not_vec g b) A.tru

let neg64 g a = add_n g width (not_vec g a) zero A.tru

(* Truncated multiply: only the low [n] bits of the product. *)
let mul_n g n (a : vec) (b : vec) : vec =
  let acc = ref (Array.make width A.fls) in
  for i = 0 to n - 1 do
    if b.(i) <> A.fls then begin
      (* (a << i) & b.(i), confined to the low n bits *)
      let addend = Array.make width A.fls in
      for j = i to n - 1 do
        addend.(j) <- A.mk_and g b.(i) a.(j - i)
      done;
      acc := add_n g n !acc addend A.fls
    end
  done;
  !acc

(* Unsigned 64/64 restoring division.  The remainder accumulator needs
   65 bits ((r << 1) | bit can reach 2^65 - 1 before the subtract). *)
let udivrem g (a : vec) (b : vec) : vec * vec =
  let n = width + 1 in
  let r = Array.make n A.fls in
  let b' = Array.append (Array.copy b) [| A.fls |] in
  let q = Array.make width A.fls in
  let rr = ref r in
  for i = width - 1 downto 0 do
    (* r = (r << 1) | a.(i) *)
    let shifted = Array.make n A.fls in
    for j = 1 to n - 1 do
      shifted.(j) <- !rr.(j - 1)
    done;
    shifted.(0) <- a.(i);
    (* ge = shifted >= b' (n-bit unsigned) *)
    let ge = A.neg (ult_n g n shifted b') in
    (* r = ge ? shifted - b' : shifted *)
    let diff =
      let carry = ref A.tru in
      Array.init n (fun j ->
          let bj = A.neg b'.(j) in
          let s = A.mk_xor g (A.mk_xor g shifted.(j) bj) !carry in
          carry :=
            A.mk_or g
              (A.mk_and g shifted.(j) bj)
              (A.mk_and g !carry (A.mk_xor g shifted.(j) bj));
          s)
    in
    rr := Array.init n (fun j -> A.mk_mux g ge diff.(j) shifted.(j));
    q.(i) <- ge
  done;
  (q, Array.sub !rr 0 width)

(* Signed division/remainder with C semantics (truncation toward zero,
   remainder takes the dividend's sign) — what Int64.div/rem do. *)
let sdivrem g (a : vec) (b : vec) : vec * vec =
  let na = a.(width - 1) and nb = b.(width - 1) in
  let abs_a = ite g na (neg64 g a) a and abs_b = ite g nb (neg64 g b) b in
  let q_u, r_u = udivrem g abs_a abs_b in
  let q = ite g (A.mk_xor g na nb) (neg64 g q_u) q_u in
  let r = ite g na (neg64 g r_u) r_u in
  (q, r)

(* --- shifts ---------------------------------------------------------------- *)

(* The engine masks the shift amount with 63 (Value.binop), so six
   amount bits drive a barrel shifter. *)
let shift_left_64 g (a : vec) (amt : vec) : vec =
  let cur = ref (Array.copy a) in
  for k = 0 to 5 do
    let sh = 1 lsl k in
    cur :=
      Array.init width (fun i ->
          let shifted = if i >= sh then !cur.(i - sh) else A.fls in
          A.mk_mux g amt.(k) shifted !cur.(i))
  done;
  !cur

let shift_right_64 g ~(fill : Aig.lit) (a : vec) (amt : vec) : vec =
  let cur = ref (Array.copy a) in
  for k = 0 to 5 do
    let sh = 1 lsl k in
    cur :=
      Array.init width (fun i ->
          let shifted = if i + sh < width then !cur.(i + sh) else fill in
          A.mk_mux g amt.(k) shifted !cur.(i))
  done;
  !cur

(* --- Value.binop / unop / cast --------------------------------------------- *)

let of_bool_ v = of_bool_lit v

(** [binop g ~div_zero op ty a b] blasts [Value.binop op ty a b] on
    canonical operand vectors.  For [Div]/[Mod] the result is muxed to
    zero when the divisor is zero — the checker's [eval_slots] semantics
    — and [div_zero] (if given) receives the divisor-is-zero literal so
    the datapath caller can exclude those traces (where the engine
    raises instead). *)
let binop g ?(div_zero : (Aig.lit -> unit) option) (op : binop) (ty : ty) (a : vec)
    (b : vec) : vec =
  let s =
    match ty with Tint (s, _) -> s | Tbool -> Unsigned
    | _ -> invalid_arg "Blast.binop: not a scalar type"
  in
  let w =
    match ty with Tint (_, w) -> bits_of_width w | Tbool -> 1
    | _ -> invalid_arg "Blast.binop"
  in
  let arith v = wrap g s w v in
  match op with
  | Add -> arith (add_n g (min w width) a b A.fls)
  | Sub -> arith (add_n g (min w width) a (not_vec g b) A.tru)
  | Mul -> arith (mul_n g (min w width) a b)
  | Div | Mod ->
      let z = is_zero g b in
      (match div_zero with Some f -> f z | None -> ());
      let q, r = match s with Signed -> sdivrem g a b | Unsigned -> udivrem g a b in
      let res = arith (if op = Div then q else r) in
      ite g z zero res
  | Band -> arith (Array.init width (fun i -> A.mk_and g a.(i) b.(i)))
  | Bor -> arith (Array.init width (fun i -> A.mk_or g a.(i) b.(i)))
  | Bxor -> arith (Array.init width (fun i -> A.mk_xor g a.(i) b.(i)))
  | Shl ->
      let amt = Array.sub b 0 6 in
      arith (shift_left_64 g a amt)
  | Shr ->
      let amt = Array.sub b 0 6 in
      let shifted =
        match s with
        | Signed -> shift_right_64 g ~fill:a.(width - 1) a amt
        | Unsigned ->
            (* Value masks the operand to the operation width first *)
            let masked =
              Array.init width (fun i -> if i < w then a.(i) else A.fls)
            in
            shift_right_64 g ~fill:A.fls masked amt
      in
      arith shifted
  | Lt -> of_bool_ (match s with Signed -> slt g a b | Unsigned -> ult g a b)
  | Le -> of_bool_ (A.neg (match s with Signed -> slt g b a | Unsigned -> ult g b a))
  | Gt -> of_bool_ (match s with Signed -> slt g b a | Unsigned -> ult g b a)
  | Ge -> of_bool_ (A.neg (match s with Signed -> slt g a b | Unsigned -> ult g a b))
  | Eq -> of_bool_ (eq g a b)
  | Ne -> of_bool_ (A.neg (eq g a b))
  | Land -> of_bool_ (A.mk_and g (to_bool g a) (to_bool g b))
  | Lor -> of_bool_ (A.mk_or g (to_bool g a) (to_bool g b))

let unop g (op : unop) (ty : ty) (a : vec) : vec =
  match op with
  | Neg -> wrap_ty g ty (neg64 g a)
  | Bnot -> wrap_ty g ty (not_vec g a)
  | Lnot -> of_bool_lit (A.neg (to_bool g a))

(** [Value.cast]: re-wrap the canonical bits at the destination type
    (the source type only mattered for producing canonical form). *)
let cast g ~(from_ty : ty) ~(to_ty : ty) (a : vec) : vec =
  ignore from_ty;
  match to_ty with
  | Tbool -> of_bool_lit (to_bool g a)
  | Tint (s, w) -> wrap g s (bits_of_width w) a
  | _ -> invalid_arg "Blast.cast: not a scalar cast"
