(** Tseitin encoding of AIG cones into a {!Sat} solver.

    One SAT variable per AIG node, created lazily: only the cone of the
    literals the caller actually asserts or assumes is encoded, and new
    AIG nodes built after a [solve] call are encoded on demand — this is
    what makes depth-by-depth BMC unrolling incremental.  The encoding
    is the standard three-clause AND gate:

      v <-> a /\ b   ~~>   (~v \/ a) (~v \/ b) (v \/ ~a \/ ~b)

    with a single pinned variable for the constant-true node. *)

type t = {
  aig : Aig.t;
  solver : Sat.t;
  mutable map : int array;  (* AIG node -> SAT var, -1 if not yet encoded *)
}

let create aig solver =
  let map = Array.make (max 16 (Aig.num_nodes aig)) (-1) in
  (* pin the constant node *)
  let v = Sat.new_var solver in
  Sat.add_clause solver [ Sat.pos v ];
  map.(0) <- v;
  { aig; solver; map }

let ensure_map t n =
  let cap = Array.length t.map in
  if n > cap then begin
    let m = Array.make (max n (2 * cap)) (-1) in
    Array.blit t.map 0 m 0 cap;
    t.map <- m
  end

(* SAT literal of an already-encoded AIG literal. *)
let sat_lit_of t (l : Aig.lit) : Sat.lit =
  let v = t.map.(Aig.node_of l) in
  if Aig.compl_of l then Sat.negl v else Sat.pos v

(** SAT literal for AIG literal [l], encoding its cone as needed. *)
let lit t (l : Aig.lit) : Sat.lit =
  ensure_map t (Aig.num_nodes t.aig);
  let stack = ref [ Aig.node_of l ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
        if t.map.(n) <> -1 then stack := rest
        else if Aig.is_input t.aig (2 * n) then begin
          t.map.(n) <- Sat.new_var t.solver;
          stack := rest
        end
        else begin
          let f0 = t.aig.Aig.fan0.(n) and f1 = t.aig.Aig.fan1.(n) in
          let n0 = Aig.node_of f0 and n1 = Aig.node_of f1 in
          let missing = [] in
          let missing = if t.map.(n0) = -1 then n0 :: missing else missing in
          let missing = if t.map.(n1) = -1 then n1 :: missing else missing in
          if missing <> [] then stack := missing @ !stack
          else begin
            let v = Sat.new_var t.solver in
            t.map.(n) <- v;
            let a = sat_lit_of t f0 and b = sat_lit_of t f1 in
            Sat.add_clause t.solver [ Sat.negl v; a ];
            Sat.add_clause t.solver [ Sat.negl v; b ];
            Sat.add_clause t.solver [ Sat.pos v; Sat.neg a; Sat.neg b ];
            stack := rest
          end
        end
  done;
  sat_lit_of t l

(** Assert [l] as a unit clause (encoding its cone). *)
let assert_lit t (l : Aig.lit) = Sat.add_clause t.solver [ lit t l ]

(** Model value of an AIG literal after [Sat].  AIG inputs outside the
    encoded cone default to false, matching {!Sat.value}. *)
let model_value t (l : Aig.lit) : bool =
  let n = Aig.node_of l in
  let base =
    if n < Array.length t.map && t.map.(n) <> -1 then Sat.value t.solver t.map.(n)
    else if n = 0 then true
    else false
  in
  base <> Aig.compl_of l

(** Evaluator of the whole AIG under the SAT model's input values
    (inputs outside the solved cone read false).  Witness extraction
    uses this rather than {!model_value} so that literals outside the
    encoded cone — e.g. the push condition of a stream that never
    reaches the violated checker — still evaluate consistently with the
    inputs the solver chose: the witness is then exactly the trace the
    deterministic replay will follow. *)
let concrete_evaluator t : Aig.lit -> bool =
  Aig.evaluator t.aig (fun n ->
      n < Array.length t.map && t.map.(n) <> -1 && Sat.value t.solver t.map.(n))
