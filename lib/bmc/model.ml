(** Symbolic transition system over synthesized FSMDs.

    Unrolls the whole design — every hardware process, stream FIFO and
    block RAM — cycle by cycle into an AIG, mirroring {!Sim.Engine}'s
    phase order exactly: testbench feeds (staged), processes in list
    order, FIFO/BRAM commit, then testbench drains.  Every architectural
    value is a canonical 64-literal vector ({!Blast}); from the concrete
    reset state constant folding collapses everything that does not
    depend on a free input (feed values, process parameters, or — for
    k-induction — the whole start state).

    The observable outputs per unrolled cycle are, for each assertion
    tap: a *fire* literal (tap executed with a false condition — the
    event the in-circuit checker turns into a failure word) and a
    *reach* literal (tap executed at all, for cover-style reachability);
    plus one *crash* literal (a datapath division by zero, which aborts
    the simulation, so traces are only meaningful while crash-free).

    The environment model: each feed stream offers a fresh unconstrained
    value every cycle and pushes it whenever the FIFO accepts — this
    covers every finite feed list the testbench could supply, because a
    shorter list only freezes the consumer earlier (a stalled process
    fires no further data taps, and entry-marker taps fire identically
    on the first stalled cycle).  Parameter registers are free at reset.
    Pipelined loops and extern calls are outside the fragment and raise
    {!Unsupported}. *)

module Ir = Mir.Ir
module Fsmd = Hls.Fsmd
module Value = Interp.Value
module A = Aig
open Front.Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type config = {
  fsmds : Fsmd.t list;
  streams : stream_decl list;
  feeds : string list;   (** streams driven by free testbench values *)
  drains : string list;  (** streams emptied by the testbench each cycle *)
  free_regs : (string * (Ir.reg * string) list) list;
      (** per process: parameter registers (reg, origin name) left free
          at reset instead of the engine's zero/param init *)
  checkers : (int * expr) list;  (** tap id -> elaborated condition *)
}

(* --- Symbolic FIFO ---------------------------------------------------------

   Circular buffer of [depth] cells with head index [hd] (< depth), a
   committed count [ccnt] and a staged count [scnt].  Mirrors Sim.Fifo:
   pops take committed values immediately, pushes land at position
   hd + ccnt + scnt and become committed (poppable) only after the
   end-of-cycle commit. *)

type fifo_m = {
  fm_decl : stream_decl;
  mutable cells : Blast.vec array;
  mutable hd : Blast.vec;
  mutable ccnt : Blast.vec;
  mutable scnt : Blast.vec;
}

type bram_m = {
  bm_mem : Ir.mem;
  bm_phys : int;
  mutable bcells : Blast.vec array;  (* raw 64-bit contents, like Sim.Bram *)
  mutable bstaged : (Aig.lit * Blast.vec * Blast.vec) list;  (* en, addr, v; program order *)
}

type proc_m = {
  pm_fsmd : Fsmd.t;
  pm_rty : ty array;
  pm_brams : (string, bram_m) Hashtbl.t;
  mutable pm_regs : Blast.vec array;
  mutable pm_pc : Blast.vec;  (* state index; num_states = halted sentinel *)
  mutable pm_etf : Aig.lit;   (* entry-marker taps of the current state already fired *)
}

(** Observables of one unrolled cycle. *)
type cycle_io = {
  io_feeds : (string * Aig.lit * Blast.vec) list;
      (** per feed stream: the push-enable literal and the value vector *)
  io_fires : (int * Aig.lit) list;  (** tap id -> fired with false condition *)
  io_reach : (int * Aig.lit) list;  (** tap id -> tap executed *)
  io_crash : Aig.lit;
}

type t = {
  g : Aig.t;
  cfg : config;
  fifos : (string, fifo_m) Hashtbl.t;
  procs : proc_m list;
  params : (string * string * Blast.vec) list;  (** proc, origin, free vec *)
  init_constraints : Aig.lit list;
      (** must hold in the start state (free-start mode only) *)
  mutable cycles : cycle_io list;  (* newest first *)
  mutable n_cycles : int;
}

(* --- helpers --------------------------------------------------------------- *)

let free_of_ty g = function
  | Tint (s, w) -> Blast.inputs g s (bits_of_width w)
  | Tbool -> Blast.inputs g Unsigned 1
  | ty -> unsupported "free value of non-scalar type %s" (Front.Pretty.string_of_ty ty)

let iconst n = Blast.const (Int64.of_int n)

(* x mod d for 0 <= x < 2d, by conditional subtraction. *)
let wrap_mod g x d =
  let dv = iconst d in
  let ge = A.neg (Blast.ult g x dv) in
  Blast.ite g ge (Blast.sub64 g x dv) x

let fifo_can_push g f =
  Blast.ult g (Blast.add64 g f.ccnt f.scnt) (iconst f.fm_decl.depth)

let fifo_can_pop g f = A.neg (Blast.is_zero g f.ccnt)

(* Value at the committed head (garbage when ccnt = 0, but pops are
   always guarded by can_pop). *)
let fifo_front g f =
  let acc = ref f.cells.(0) in
  for i = 1 to Array.length f.cells - 1 do
    acc := Blast.ite g (Blast.eq_const g f.hd (Int64.of_int i)) f.cells.(i) !acc
  done;
  !acc

let fifo_push g f ~en v =
  if Array.length f.cells > 0 then begin
    let pos = wrap_mod g (Blast.add64 g f.hd (Blast.add64 g f.ccnt f.scnt)) f.fm_decl.depth in
    f.cells <-
      Array.mapi
        (fun i c ->
          Blast.ite g (A.mk_and g en (Blast.eq_const g pos (Int64.of_int i))) v c)
        f.cells;
    f.scnt <- Blast.ite g en (Blast.add64 g f.scnt (iconst 1)) f.scnt
  end

let fifo_pop g f ~en =
  f.hd <- Blast.ite g en (wrap_mod g (Blast.add64 g f.hd (iconst 1)) f.fm_decl.depth) f.hd;
  f.ccnt <- Blast.ite g en (Blast.sub64 g f.ccnt (iconst 1)) f.ccnt

let fifo_commit g f =
  f.ccnt <- Blast.add64 g f.ccnt f.scnt;
  f.scnt <- Blast.const 0L

let fifo_drain g f =
  f.hd <- wrap_mod g (Blast.add64 g f.hd f.ccnt) f.fm_decl.depth;
  f.ccnt <- Blast.const 0L

(* Address decode on the low address bits (the physical array is a power
   of two and the address bus wraps, as in Sim.Bram). *)
let bram_sel g (b : bram_m) (addr : Blast.vec) i =
  let nb =
    let rec bits n = if b.bm_phys <= 1 lsl n then n else bits (n + 1) in
    bits 0
  in
  let acc = ref A.tru in
  for j = 0 to nb - 1 do
    let want = (i lsr j) land 1 = 1 in
    acc := A.mk_and g !acc (if want then addr.(j) else A.neg addr.(j))
  done;
  !acc

let bram_read g b addr =
  let acc = ref (Blast.const 0L) in
  for i = 0 to b.bm_phys - 1 do
    acc := Blast.ite g (bram_sel g b addr i) b.bcells.(i) !acc
  done;
  !acc

let bram_write b ~en addr v = b.bstaged <- b.bstaged @ [ (en, addr, v) ]

let bram_commit g b =
  List.iter
    (fun (en, addr, v) ->
      b.bcells <-
        Array.mapi
          (fun i c -> Blast.ite g (A.mk_and g en (bram_sel g b addr i)) v c)
          b.bcells)
    b.bstaged;
  b.bstaged <- []

(* --- symbolic checker condition -------------------------------------------

   Mirrors Core.Assertion.eval_slots: operations at the operand's type,
   short-circuit Land/Lor keeping the raw right operand, division by
   zero caught to 0.  The [__slotN] naming scheme lives in
   Core.Assertion, which sits above this library; it is tiny and
   stable, so it is mirrored here (test_bmc pins the two together). *)

let slot_index name =
  if String.length name > 6 && String.sub name 0 6 = "__slot" then
    int_of_string_opt (String.sub name 6 (String.length name - 6))
  else None

let rec sym_slots g (slots : Blast.vec array) (x : expr) : Blast.vec =
  match x.e with
  | Int n -> Blast.const (Value.wrap_ty x.ety n)
  | Bool b -> Blast.const (Value.of_bool b)
  | Var name -> (
      match slot_index name with
      | Some k when k < Array.length slots -> slots.(k)
      | _ -> unsupported "checker condition has free variable %s" name)
  | Unop (op, a) -> Blast.unop g op a.ety (sym_slots g slots a)
  | Binop (Land, a, b) ->
      let av = sym_slots g slots a in
      Blast.ite g (Blast.to_bool g av) (sym_slots g slots b) (Blast.const 0L)
  | Binop (Lor, a, b) ->
      let av = sym_slots g slots a in
      Blast.ite g (Blast.to_bool g av) (Blast.const 1L) (sym_slots g slots b)
  | Binop (op, a, b) ->
      Blast.binop g op a.ety (sym_slots g slots a) (sym_slots g slots b)
  | Cast (ty, a) -> Blast.cast g ~from_ty:a.ety ~to_ty:ty (sym_slots g slots a)
  | Index _ -> unsupported "checker condition indexes an array"
  | Call _ -> unsupported "checker condition calls a function"

(** True when the assertion holds for the given slot vectors. *)
let cond_holds g cond slots = Blast.to_bool g (sym_slots g slots cond)

(* --- construction ----------------------------------------------------------- *)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let mem_written (f : Fsmd.t) (m : Ir.mem) =
  List.exists
    (fun (gi : Ir.ginst) ->
      match gi.Ir.i with Ir.Store { mem; _ } -> mem = m.Ir.mname | _ -> false)
    (Fsmd.all_ops f)

(** Build the model at its start state.  [free_start] replaces the
    concrete reset state with a fresh unconstrained state (for the
    k-induction step); the well-formedness side conditions are returned
    in [init_constraints] and must be asserted by the caller. *)
let create ?(free_start = false) (cfg : config) : t =
  let g = Aig.create () in
  let constraints = ref [] in
  let constrain l = constraints := l :: !constraints in
  let fifos = Hashtbl.create 16 in
  List.iter
    (fun (s : stream_decl) ->
      let depth = s.depth in
      let cells, hd, ccnt =
        if not free_start then
          (Array.make (max depth 1) (Blast.const 0L), Blast.const 0L, Blast.const 0L)
        else begin
          let cells = Array.init (max depth 1) (fun _ -> free_of_ty g s.elem) in
          let hd = Blast.inputs g Unsigned 64 in
          (* small free indices: constrain instead of building narrow vecs *)
          let ccnt = Blast.inputs g Unsigned 64 in
          constrain (Blast.ult g hd (iconst (max depth 1)));
          constrain (A.neg (Blast.ult g (iconst depth) ccnt));  (* ccnt <= depth *)
          (cells, hd, ccnt)
        end
      in
      Hashtbl.replace fifos s.sname
        { fm_decl = s; cells; hd; ccnt; scnt = Blast.const 0L })
    cfg.streams;
  let params = ref [] in
  let procs =
    List.map
      (fun (f : Fsmd.t) ->
        let proc = f.Fsmd.proc in
        if Array.length f.Fsmd.pipes > 0 then
          unsupported "%s: pipelined loops are outside the BMC fragment" proc.Ir.name;
        let nregs =
          List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 proc.Ir.regs
        in
        let rty = Array.make (Stdlib.max nregs 1) int32_t in
        List.iter (fun (r, info) -> rty.(r) <- info.Ir.rty) proc.Ir.regs;
        let regs = Array.make (Stdlib.max nregs 1) (Blast.const 0L) in
        if free_start then
          List.iter
            (fun (r, (info : Ir.reg_info)) ->
              match info.Ir.rty with
              | Tarray _ | Tvoid -> ()
              | ty -> regs.(r) <- free_of_ty g ty)
            proc.Ir.regs
        else begin
          (* reset: zeros, with parameter registers free *)
          match List.assoc_opt proc.Ir.name cfg.free_regs with
          | None -> ()
          | Some frs ->
              (* one free 64-bit value per parameter *name*: the engine
                 wraps a single testbench binding into every register
                 that shares the origin, so the model must too — else
                 the witness could demand two values for one parameter *)
              let by_origin = Hashtbl.create 4 in
              List.iter
                (fun (r, origin) ->
                  let p =
                    match Hashtbl.find_opt by_origin origin with
                    | Some p -> p
                    | None ->
                        let p = Blast.inputs g Signed 64 in
                        Hashtbl.add by_origin origin p;
                        params := (proc.Ir.name, origin, p) :: !params;
                        p
                  in
                  regs.(r) <- Blast.wrap_ty g rty.(r) p)
                frs
        end;
        let nstates = Fsmd.num_states f in
        let pc =
          if not free_start then iconst f.Fsmd.entry
          else begin
            let pc = Blast.inputs g Unsigned 64 in
            constrain (A.neg (Blast.ult g (iconst nstates) pc));  (* pc <= nstates *)
            pc
          end
        in
        let etf = if free_start then A.new_input g else A.fls in
        let brams = Hashtbl.create 4 in
        List.iter
          (fun (m : Ir.mem) ->
            let phys = next_pow2 (Stdlib.max m.Ir.length 1) in
            let init = match m.Ir.rom_init with Some l -> l | None -> [] in
            let concrete =
              Array.init phys (fun i ->
                  match List.nth_opt init i with
                  | Some v -> Blast.const v
                  | None -> Blast.const 0L)
            in
            let cells =
              if free_start && mem_written f m then
                (* raw 64-bit contents: any stored value is canonical at
                   *some* type, and 64 free bits over-approximate them all *)
                Array.init phys (fun _ -> Blast.inputs g Signed 64)
              else concrete
              (* pure ROMs keep their image even in the induction step *)
            in
            Hashtbl.replace brams m.Ir.mname
              { bm_mem = m; bm_phys = phys; bcells = cells; bstaged = [] })
          proc.Ir.mems;
        { pm_fsmd = f; pm_rty = rty; pm_brams = brams; pm_regs = regs; pm_pc = pc;
          pm_etf = etf })
      cfg.fsmds
  in
  { g; cfg; fifos; procs; params = List.rev !params;
    init_constraints = List.rev !constraints; cycles = []; n_cycles = 0 }

(* --- one cycle --------------------------------------------------------------- *)

type acc = {
  mutable fires : (int * Aig.lit) list;
  mutable reach : (int * Aig.lit) list;
  mutable crash : Aig.lit;
}

let fifo_of t name =
  match Hashtbl.find_opt t.fifos name with
  | Some f -> f
  | None -> unsupported "unknown stream %s" name

let elem_of t name =
  match Hashtbl.find_opt t.fifos name with
  | Some f -> f.fm_decl.elem
  | None -> unsupported "unknown stream %s" name

(* Fire/reach bookkeeping: literals OR-accumulate across states and
   processes within a cycle (a tap id appears in exactly one process,
   but may be replicated across states). *)
let add_event g events id l =
  match List.assoc_opt id !events with
  | Some prev -> events := (id, A.mk_or g prev l) :: List.remove_assoc id !events
  | None -> events := (id, l) :: !events

let step_proc t (p : proc_m) ~(fires : (int * Aig.lit) list ref)
    ~(reach : (int * Aig.lit) list ref) ~(crash : Aig.lit ref) =
  let g = t.g in
  let f = p.pm_fsmd in
  let regs0 = p.pm_regs and pc0 = p.pm_pc and etf0 = p.pm_etf in
  (* accumulators, updated conditionally per state (at most one active) *)
  let acc_regs = Array.copy regs0 in
  let acc_pc = ref pc0 in
  let acc_etf = ref etf0 in
  let bram m =
    match Hashtbl.find_opt p.pm_brams m with
    | Some b -> b
    | None -> unsupported "unknown memory %s" m
  in
  let checker id = List.assoc_opt id t.cfg.checkers in
  Array.iteri
    (fun si (st : Fsmd.state) ->
      let active = Blast.eq_const g pc0 (Int64.of_int si) in
      if active <> A.fls then begin
        let env = Array.copy regs0 in
        let ev = function Ir.Imm n -> Blast.const n | Ir.Reg r -> env.(r) in
        let guard_lit view (gi : Ir.ginst) =
          match gi.Ir.guard with
          | None -> A.tru
          | Some (r, want) ->
              let b = Blast.to_bool g view.(r) in
              if want then b else A.neg b
        in
        let next_pc () =
          match st.Fsmd.next with
          | Fsmd.Goto n -> iconst n
          | Fsmd.Done -> iconst (Fsmd.num_states f)
          | Fsmd.Branch (c, a, b) ->
              Blast.ite g (Blast.to_bool g env.(c)) (iconst a) (iconst b)
          | Fsmd.Enter_pipe _ ->
              unsupported "%s: pipelined loops are outside the BMC fragment"
                f.Fsmd.proc.Ir.name
        in
        let written = ref [] in
        let write dst ~en v =
          env.(dst) <- Blast.ite g en v env.(dst);
          if not (List.mem dst !written) then written := dst :: !written
        in
        (* a tap event: [en] = tap executes; fire = condition false *)
        let tap_event ~en (id : int) (args : Ir.operand list) =
          if en <> A.fls then begin
            add_event g reach id en;
            match checker id with
            | None -> ()
            | Some cond ->
                let slots = Array.of_list (List.map ev args) in
                let fire = A.mk_and g en (A.neg (cond_holds g cond slots)) in
                add_event g fires id fire
          end
        in
        let exec_plain ~en (gi : Ir.ginst) =
          let gl = A.mk_and g en (guard_lit env gi) in
          match gi.Ir.i with
          | Ir.Bin { dst; op; a; b; ty } ->
              let div_zero z = crash := A.mk_or g !crash (A.mk_and g gl z) in
              write dst ~en:gl (Blast.binop g ~div_zero op ty (ev a) (ev b))
          | Ir.Un { dst; op; a; ty } -> write dst ~en:gl (Blast.unop g op ty (ev a))
          | Ir.Copy { dst; src; ty } -> write dst ~en:gl (Blast.wrap_ty g ty (ev src))
          | Ir.Castop { dst; src; from_ty; to_ty } ->
              write dst ~en:gl (Blast.cast g ~from_ty ~to_ty (ev src))
          | Ir.Load { dst; mem; addr } ->
              write dst ~en:gl (bram_read g (bram mem) (ev addr))
          | Ir.Store { mem; addr; v } -> bram_write (bram mem) ~en:gl (ev addr) (ev v)
          | Ir.Tap { id; args } -> tap_event ~en:gl id args
          | Ir.Extcall { func; _ } ->
              unsupported "%s: extern call %s is outside the BMC fragment"
                f.Fsmd.proc.Ir.name func
          | Ir.Sread _ | Ir.Swrite _ -> assert false
        in
        let commit_written ~en =
          List.iter
            (fun r ->
              acc_regs.(r) <-
                Blast.ite g en (Blast.wrap_ty g p.pm_rty.(r) env.(r)) acc_regs.(r))
            !written
        in
        let stream_op =
          List.find_opt (fun (gi : Ir.ginst) -> Ir.is_stream_op gi.Ir.i) st.Fsmd.ops
        in
        match stream_op with
        | None ->
            (* plain state: ops in program order, overlay reads *)
            List.iter (exec_plain ~en:active) st.Fsmd.ops;
            commit_written ~en:active;
            acc_pc := Blast.ite g active (next_pc ()) !acc_pc
        | Some sg ->
            let stream_pos =
              let rec go i = function
                | [] -> max_int
                | (gi : Ir.ginst) :: rest ->
                    if Ir.is_stream_op gi.Ir.i then i else go (i + 1) rest
              in
              go 0 st.Fsmd.ops
            in
            let ok, succ =
              match sg.Ir.i with
              | Ir.Sread { dst; stream } ->
                  let fm = fifo_of t stream in
                  let ok = fifo_can_pop g fm in
                  let succ = A.mk_and g active ok in
                  let v = Blast.wrap_ty g p.pm_rty.(dst) (fifo_front g fm) in
                  fifo_pop g fm ~en:succ;
                  (* wrapped at the register type on write, like the
                     engine: same-state taps read the popped value *)
                  write dst ~en:succ v;
                  (ok, succ)
              | Ir.Swrite { stream; v } ->
                  let fm = fifo_of t stream in
                  let ok = fifo_can_push g fm in
                  let succ = A.mk_and g active ok in
                  (* the handshake waits for space regardless of the
                     guard; the guard controls only the push itself *)
                  let push = A.mk_and g succ (guard_lit env sg) in
                  fifo_push g fm ~en:push
                    (Blast.wrap_ty g (elem_of t stream) (ev v));
                  (ok, succ)
              | _ -> assert false
            in
            (* taps sharing the handshake state *)
            List.iteri
              (fun pos (gi : Ir.ginst) ->
                match gi.Ir.i with
                | Ir.Tap { id; args } ->
                    let entry_marker = args = [] && pos < stream_pos in
                    if entry_marker then begin
                      (* fires once per state visit: on the first stalled
                         cycle, or on success if it never stalled *)
                      let gl_succ = A.mk_and g succ (guard_lit env gi) in
                      let gl_stall =
                        A.mk_and g
                          (A.mk_and g active (A.neg ok))
                          (guard_lit regs0 gi)
                      in
                      let en =
                        A.mk_and g (A.neg etf0) (A.mk_or g gl_succ gl_stall)
                      in
                      tap_event ~en id args
                    end
                    else
                      (* data taps (and post-handshake markers) fire only
                         when the handshake succeeds *)
                      tap_event ~en:(A.mk_and g succ (guard_lit env gi)) id args
                | _ -> ())
              st.Fsmd.ops;
            commit_written ~en:active;
            acc_pc := Blast.ite g succ (next_pc ()) !acc_pc;
            (* stalled: remember the markers fired; success: reset *)
            acc_etf :=
              A.mk_or g
                (A.mk_and g active (A.neg ok))
                (A.mk_and g (A.neg active) !acc_etf)
      end)
    f.Fsmd.states;
  p.pm_regs <- acc_regs;
  p.pm_pc <- !acc_pc;
  p.pm_etf <- !acc_etf

(** Unroll one cycle; returns the cycle's observables. *)
let step (t : t) : cycle_io =
  let g = t.g in
  (* 1. testbench feeds: a fresh free value offered to each feed stream *)
  let io_feeds =
    List.map
      (fun s ->
        let fm = fifo_of t s in
        let v = free_of_ty g fm.fm_decl.elem in
        let en = fifo_can_push g fm in
        fifo_push g fm ~en v;
        (s, en, v))
      t.cfg.feeds
  in
  (* 2. hardware processes, in list order *)
  let fires = ref [] and reach = ref [] and crash = ref A.fls in
  List.iter (fun p -> step_proc t p ~fires ~reach ~crash) t.procs;
  (* 3. end of cycle: commit FIFOs and BRAMs *)
  Hashtbl.iter (fun _ fm -> fifo_commit g fm) t.fifos;
  List.iter
    (fun p -> Hashtbl.iter (fun _ b -> bram_commit g b) p.pm_brams)
    t.procs;
  (* 4. testbench drains empty their streams *)
  List.iter (fun s -> fifo_drain g (fifo_of t s)) t.cfg.drains;
  let io =
    { io_feeds; io_fires = List.rev !fires; io_reach = List.rev !reach;
      io_crash = !crash }
  in
  t.cycles <- io :: t.cycles;
  t.n_cycles <- t.n_cycles + 1;
  io

(** Observables of cycle [c] (must already be unrolled). *)
let cycle t c = List.nth t.cycles (t.n_cycles - 1 - c)

let fire_at t c id =
  match List.assoc_opt id (cycle t c).io_fires with Some l -> l | None -> A.fls

let reach_at t c id =
  match List.assoc_opt id (cycle t c).io_reach with Some l -> l | None -> A.fls

let crash_at t c = (cycle t c).io_crash

(** All tap ids that ever appear in the design (instrumented taps). *)
let tap_ids (cfg : config) : int list =
  List.concat_map
    (fun (f : Fsmd.t) ->
      List.filter_map
        (fun (gi : Ir.ginst) ->
          match gi.Ir.i with Ir.Tap { id; _ } -> Some id | _ -> None)
        (Fsmd.all_ops f))
    cfg.fsmds
  |> List.sort_uniq compare
