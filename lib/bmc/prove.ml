(** Bounded model checking, k-induction and cover reachability, one
    assertion at a time.

    Each assertion gets its own AIG + solver pair: the design is
    unrolled cycle by cycle, each depth's fire literal is solved under
    an assumption (earliest violation first), and the division-crash
    literal of a depth is permanently forbidden once the search moves
    past it — a counterexample therefore has a crash-free prefix, which
    is exactly the prefix {!Sim.Engine} will replay deterministically.

    A [Sat] answer yields a cycle-accurate witness: the feed values the
    solver chose (read back through {!Cnf.concrete_evaluator}, so the
    whole graph is evaluated consistently with the model) plus concrete
    process parameters.  The caller replays it through the engine; only
    a confirmed replay is reported as Violated.

    When the bounded search exhausts its depth without a violation, the
    k-induction step asks: from *any* well-formed state (free registers,
    pc, FIFO and BRAM contents), can [k] consecutive fire-free cycles be
    followed by a fire?  An UNSAT answer, combined with the bounded base
    case, proves the assertion can never fire — the same dividend as an
    Absint proof, usable by [--prune-proved]. *)

module A = Aig

type witness = {
  w_cycle : int;  (** cycle at which the tap fires with a false condition *)
  w_feeds : (string * int64 list) list;
      (** per feed stream: the values pushed, in push order — exactly a
          testbench feed list that reproduces the trace *)
  w_params : (string * (string * int64) list) list;
      (** per process: concrete parameter values *)
}

type verdict =
  | Violated of witness
  | Proved_induction of int  (** inductive at this k *)
  | Bounded of int           (** no violation within this many cycles *)
  | Unknown of string

type reach_info =
  | Reachable of int         (** first cycle at which the tap can execute *)
  | Unreachable_to of int
  | Reach_unknown of string

type result = {
  r_id : int;
  r_verdict : verdict;
  r_reach : reach_info;
  r_conflicts : int;
  r_decisions : int;
  r_propagations : int;
}

let eval_witness (model : Model.t) (cnf : Cnf.t) ~(cycle : int) : witness =
  let ev = Cnf.concrete_evaluator cnf in
  let feeds =
    List.map
      (fun s ->
        let vs = ref [] in
        for c = 0 to cycle do
          let io = Model.cycle model c in
          match List.find_opt (fun (s', _, _) -> s' = s) io.Model.io_feeds with
          | Some (_, en, v) -> if ev en then vs := Blast.eval_vec ev v :: !vs
          | None -> ()
        done;
        (s, List.rev !vs))
      model.Model.cfg.Model.feeds
  in
  let params =
    List.fold_left
      (fun acc (proc, origin, vec) ->
        let v = Blast.eval_vec ev vec in
        match List.assoc_opt proc acc with
        | Some bs -> (proc, bs @ [ (origin, v) ]) :: List.remove_assoc proc acc
        | None -> acc @ [ (proc, [ (origin, v) ]) ])
      [] model.Model.params
  in
  { w_cycle = cycle; w_feeds = feeds; w_params = params }

(* The induction step at a given k: free start state, k fire-free
   crash-free cycles, then a fire.  UNSAT = inductive. *)
let induction_step (cfg : Model.config) ~(id : int) ~(k : int) ~conflict_limit :
    [ `Inductive | `Cti | `Undecided ] * (int * int * int) =
  let model = Model.create ~free_start:true cfg in
  let solver = Sat.create () in
  let cnf = Cnf.create model.Model.g solver in
  List.iter (Cnf.assert_lit cnf) model.Model.init_constraints;
  for _ = 0 to k do
    ignore (Model.step model)
  done;
  for c = 0 to k - 1 do
    Cnf.assert_lit cnf (A.neg (Model.fire_at model c id));
    Cnf.assert_lit cnf (A.neg (Model.crash_at model c))
  done;
  let goal = Model.fire_at model k id in
  let verdict =
    if goal = A.fls then `Inductive
    else
      match Sat.solve ~assumptions:[ Cnf.lit cnf goal ] ~conflict_limit solver with
      | Sat.Unsat -> `Inductive
      | Sat.Sat -> `Cti
      | Sat.Undecided -> `Undecided
  in
  (verdict, (Sat.conflicts solver, Sat.decisions solver, Sat.propagations solver))

(** Classify one assertion.  [depth] is the number of cycles unrolled
    (fire checked at cycles 0..depth-1); [induction] is the maximum k
    tried for the unbounded proof, 0 to disable. *)
let check_assertion ?(depth = 12) ?(induction = 0) ?(conflict_limit = 200_000)
    (cfg : Model.config) (id : int) : result =
  try
    let model = Model.create cfg in
    let solver = Sat.create () in
    let cnf = Cnf.create model.Model.g solver in
    let violated = ref None in
    let reach_found = ref None in
    let first_undecided = ref None in
    let reach_undecided = ref false in
    let c = ref 0 in
    while !violated = None && !c < depth do
      let cyc = !c in
      ignore (Model.step model);
      let fire = Model.fire_at model cyc id in
      (if fire <> A.fls then
         match Sat.solve ~assumptions:[ Cnf.lit cnf fire ] ~conflict_limit solver with
         | Sat.Sat -> violated := Some (eval_witness model cnf ~cycle:cyc)
         | Sat.Unsat -> ()
         | Sat.Undecided ->
             if !first_undecided = None then first_undecided := Some cyc);
      (if !violated <> None && !reach_found = None then reach_found := Some cyc);
      (if !violated = None && !reach_found = None then
         let reach = Model.reach_at model cyc id in
         if reach <> A.fls then
           match Sat.solve ~assumptions:[ Cnf.lit cnf reach ] ~conflict_limit solver with
           | Sat.Sat -> reach_found := Some cyc
           | Sat.Unsat -> ()
           | Sat.Undecided -> reach_undecided := true);
      (* the search moves past this cycle: its traces must be crash-free *)
      Cnf.assert_lit cnf (A.neg (Model.crash_at model cyc));
      incr c
    done;
    let stats = ref (Sat.conflicts solver, Sat.decisions solver, Sat.propagations solver) in
    let add (a, b, c) (a', b', c') = (a + a', b + b', c + c') in
    let verdict =
      match !violated with
      | Some w -> Violated w
      | None -> (
          match !first_undecided with
          | Some cyc ->
              Unknown
                (Printf.sprintf "solver conflict budget exhausted at depth %d" cyc)
          | None ->
              (* bounded proof holds; try to make it unbounded *)
              let rec go k =
                if k > induction || k > depth then Bounded depth
                else begin
                  let v, s = induction_step cfg ~id ~k ~conflict_limit in
                  stats := add !stats s;
                  match v with
                  | `Inductive -> Proved_induction k
                  | `Cti -> go (k + 1)
                  | `Undecided -> Bounded depth
                end
              in
              go 1)
    in
    let reach =
      match (!reach_found, verdict) with
      | Some c, _ -> Reachable c
      | None, _ when !reach_undecided -> Reach_unknown "solver conflict budget exhausted"
      | None, _ -> (
          match !first_undecided with
          | Some c -> Reach_unknown (Printf.sprintf "bounded search undecided at depth %d" c)
          | None -> Unreachable_to depth)
    in
    let conflicts, decisions, propagations = !stats in
    { r_id = id; r_verdict = verdict; r_reach = reach; r_conflicts = conflicts;
      r_decisions = decisions; r_propagations = propagations }
  with Model.Unsupported msg ->
    { r_id = id; r_verdict = Unknown msg; r_reach = Reach_unknown msg;
      r_conflicts = 0; r_decisions = 0; r_propagations = 0 }

let verdict_class = function
  | Violated _ -> "violated"
  | Proved_induction _ -> "proved"
  | Bounded _ -> "bounded"
  | Unknown _ -> "unknown"
