(** A small incremental CDCL SAT solver.

    MiniSat-style architecture: two-watched-literal propagation, VSIDS
    decision ordering through an activity heap, first-UIP conflict
    analysis with non-chronological backjumping, phase saving, and Luby
    restarts.  Clauses and variables may be added between [solve] calls
    and assumptions are decided first, so BMC unrolling deepens one
    solver incrementally.  Everything is deterministic: no randomness,
    no clause deletion, no time-based heuristics — identical inputs
    yield identical models, which the byte-determinism CI gates rely
    on.

    Literal encoding: [2*var] is the positive literal of [var],
    [2*var+1] its negation. *)

type lit = int

let pos v : lit = 2 * v
let negl v : lit = (2 * v) + 1
let neg (l : lit) : lit = l lxor 1
let var_of (l : lit) = l lsr 1
let sign_of (l : lit) = l land 1 = 1  (* true = negated *)

type result = Sat | Unsat | Undecided  (** conflict budget exhausted *)

(* Truth values: 0 = unassigned, 1 = true, 2 = false (for the variable;
   a literal flips per its sign). *)
let l_undef = 0

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* per var: 0/1/2 *)
  mutable level : int array;        (* per var: decision level *)
  mutable reason : int array;       (* per var: clause index or -1 *)
  mutable activity : float array;   (* per var: VSIDS score *)
  mutable polarity : bool array;    (* per var: saved phase (true = last true) *)
  mutable heap : int array;         (* binary max-heap of vars *)
  mutable heap_n : int;
  mutable heap_pos : int array;     (* per var: index in heap, -1 if absent *)
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : int array array;  (* per lit: clause indices *)
  mutable watch_n : int array;        (* per lit: used length *)
  mutable trail : int array;          (* assigned literals in order *)
  mutable trail_n : int;
  mutable trail_lim : int array;      (* decision-level marks *)
  mutable trail_lim_n : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;                (* false once level-0 UNSAT *)
  mutable model : int array;        (* snapshot of assigns after Sat *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable seen : bool array;        (* scratch for analyze *)
}

let create () =
  {
    nvars = 0;
    assigns = Array.make 16 l_undef;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap = Array.make 16 0;
    heap_n = 0;
    heap_pos = Array.make 16 (-1);
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.make 32 [||];
    watch_n = Array.make 32 0;
    trail = Array.make 16 0;
    trail_n = 0;
    trail_lim = Array.make 16 0;
    trail_lim_n = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    model = [||];
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = Array.make 16 false;
  }

let conflicts t = t.conflicts
let decisions t = t.decisions
let propagations t = t.propagations
let is_ok t = t.ok

(* --- growable arrays ------------------------------------------------------- *)

let grow_int a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (cap * 2)) fill in
    Array.blit a 0 a' 0 cap;
    a'
  end

let grow_float a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (cap * 2)) fill in
    Array.blit a 0 a' 0 cap;
    a'
  end

let grow_bool a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (cap * 2)) fill in
    Array.blit a 0 a' 0 cap;
    a'
  end

let grow_arr a n =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (cap * 2)) [||] in
    Array.blit a 0 a' 0 cap;
    a'
  end

(* --- heap (max by activity) ------------------------------------------------ *)

let heap_lt t a b =
  (* deterministic tie-break on the var index *)
  t.activity.(a) > t.activity.(b) || (t.activity.(a) = t.activity.(b) && a < b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_n && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_n && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) = -1 then begin
    t.heap <- grow_int t.heap (t.heap_n + 1) 0;
    t.heap.(t.heap_n) <- v;
    t.heap_pos.(v) <- t.heap_n;
    t.heap_n <- t.heap_n + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_n <- t.heap_n - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_n > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_n);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  v

let heap_bump t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* --- variables ------------------------------------------------------------- *)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let n = t.nvars in
  t.assigns <- grow_int t.assigns n l_undef;
  t.level <- grow_int t.level n 0;
  t.reason <- grow_int t.reason n (-1);
  t.activity <- grow_float t.activity n 0.0;
  t.polarity <- grow_bool t.polarity n false;
  t.heap_pos <- grow_int t.heap_pos n (-1);
  t.seen <- grow_bool t.seen n false;
  t.trail <- grow_int t.trail n 0;
  t.watches <- grow_arr t.watches (2 * n);
  t.watch_n <- grow_int t.watch_n (2 * n) 0;
  t.assigns.(v) <- l_undef;
  t.heap_pos.(v) <- -1;
  t.seen.(v) <- false;
  heap_insert t v;
  v

(* Literal value: 0 undef, 1 true, 2 false. *)
let lit_value t (l : lit) =
  let a = t.assigns.(var_of l) in
  if a = l_undef then l_undef
  else if sign_of l then 3 - a
  else a

let decision_level t = t.trail_lim_n

(* --- watches --------------------------------------------------------------- *)

let watch_add t l ci =
  let w = t.watches.(l) in
  let n = t.watch_n.(l) in
  let w =
    if n < Array.length w then w
    else begin
      let w' = Array.make (max 4 (2 * max 1 (Array.length w))) 0 in
      Array.blit w 0 w' 0 n;
      t.watches.(l) <- w';
      w'
    end
  in
  w.(n) <- ci;
  t.watch_n.(l) <- n + 1

(* --- assignment ------------------------------------------------------------ *)

let enqueue t (l : lit) reason =
  let v = var_of l in
  t.assigns.(v) <- (if sign_of l then 2 else 1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.polarity.(v) <- not (sign_of l);
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_n - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.assigns.(v) <- l_undef;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_n <- bound;
    t.qhead <- bound;
    t.trail_lim_n <- lvl
  end

(* --- propagation ----------------------------------------------------------- *)

(* Propagate all enqueued assignments.  Returns the index of a
   conflicting clause, or -1.  Watch convention: [watches.(l)] holds the
   clauses in which literal [l] is one of the two watched literals
   (positions 0 and 1); when [neg l] is assigned (making [l] false) the
   clause must find a new watch, become unit, or conflict. *)
let propagate t =
  let confl = ref (-1) in
  while !confl = -1 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let false_lit = neg p in
    let ws = t.watches.(false_lit) in
    let wn = t.watch_n.(false_lit) in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < wn do
      let ci = ws.(!i) in
      incr i;
      let c = t.clauses.(ci) in
      (* normalize: the false literal goes to position 1 *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value t c.(0) = 1 then begin
        (* clause satisfied: keep watching *)
        ws.(!keep) <- ci;
        incr keep
      end
      else begin
        (* look for a new literal to watch *)
        let len = Array.length c in
        let found = ref 0 in
        let j = ref 2 in
        while !found = 0 && !j < len do
          if lit_value t c.(!j) <> 2 then found := !j;
          incr j
        done;
        if !found > 0 then begin
          let j = !found in
          c.(1) <- c.(j);
          c.(j) <- false_lit;
          watch_add t c.(1) ci
          (* watch on false_lit dropped *)
        end
        else if lit_value t c.(0) = 2 then begin
          (* conflict: keep the remaining watches, stop *)
          ws.(!keep) <- ci;
          incr keep;
          while !i < wn do
            ws.(!keep) <- ws.(!i);
            incr keep;
            incr i
          done;
          t.qhead <- t.trail_n;
          confl := ci
        end
        else begin
          (* unit clause *)
          ws.(!keep) <- ci;
          incr keep;
          enqueue t c.(0) ci
        end
      end
    done;
    t.watch_n.(false_lit) <- !keep
  done;
  !confl

(* --- clause addition ------------------------------------------------------- *)

let attach_clause t (c : int array) : int =
  t.clauses <- grow_arr t.clauses (t.nclauses + 1);
  let ci = t.nclauses in
  t.clauses.(ci) <- c;
  t.nclauses <- ci + 1;
  watch_add t c.(0) ci;
  watch_add t c.(1) ci;
  ci

(* Add a problem clause.  Must be called with the solver at decision
   level 0 (guaranteed between [solve] calls).  Simplifies against the
   level-0 assignment. *)
let add_clause t (lits : lit list) =
  if t.ok then begin
    assert (decision_level t = 0);
    (* dedupe, drop false literals, detect tautology / satisfied *)
    let sorted = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.mem (neg l) sorted) sorted
      || List.exists (fun l -> lit_value t l = 1) sorted
    in
    if not taut then begin
      let lits = List.filter (fun l -> lit_value t l <> 2) sorted in
      match lits with
      | [] -> t.ok <- false
      | [ l ] ->
          enqueue t l (-1);
          if propagate t <> -1 then t.ok <- false
      | l0 :: l1 :: _ ->
          let c = Array.of_list lits in
          (* ensure the watched positions hold the first two literals *)
          ignore l0;
          ignore l1;
          ignore (attach_clause t c)
    end
  end

(* --- conflict analysis ----------------------------------------------------- *)

let var_decay = 1.0 /. 0.95

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_bump t v

(* First-UIP learning.  Returns (learned clause with the asserting
   literal first, backtrack level). *)
let analyze t confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (t.trail_n - 1) in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = var_of q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump_var t v;
        if t.level.(v) >= decision_level t then incr path
        else learnt := q :: !learnt
      end
    done;
    (* pick the next seen literal on the trail *)
    while not t.seen.(var_of t.trail.(!index)) do
      decr index
    done;
    let q = t.trail.(!index) in
    decr index;
    p := q;
    t.seen.(var_of q) <- false;
    decr path;
    if !path > 0 then confl := t.reason.(var_of q) else continue := false
  done;
  let learnt = neg !p :: List.rev !learnt in
  List.iter (fun l -> t.seen.(var_of l) <- false) (List.tl learnt);
  let bt =
    match learnt with
    | [ _ ] -> 0
    | _ :: rest ->
        List.fold_left (fun acc l -> max acc (t.level.(var_of l))) 0 rest
    | [] -> 0
  in
  (learnt, bt)

let record_learnt t learnt =
  match learnt with
  | [ l ] ->
      cancel_until t 0;
      if lit_value t l = l_undef then begin
        enqueue t l (-1);
        if propagate t <> -1 then t.ok <- false
      end
      else if lit_value t l = 2 then t.ok <- false;
      t.ok
  | l :: rest ->
      (* backjump already done by the caller; place the asserting literal
         at 0 and a highest-level literal at 1 *)
      let c = Array.of_list learnt in
      let best = ref 1 in
      for j = 2 to Array.length c - 1 do
        if t.level.(var_of c.(j)) > t.level.(var_of c.(!best)) then best := j
      done;
      let tmp = c.(1) in
      c.(1) <- c.(!best);
      c.(!best) <- tmp;
      let ci = attach_clause t c in
      ignore rest;
      enqueue t l ci;
      true
  | [] ->
      t.ok <- false;
      false

(* --- restarts -------------------------------------------------------------- *)

(* the Luby sequence 1 1 2 1 1 2 4 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* --- solving --------------------------------------------------------------- *)

exception Done of result

let solve ?(assumptions : lit list = []) ?(conflict_limit = max_int) t : result =
  cancel_until t 0;
  if not t.ok then Unsat
  else begin
    let assumps = Array.of_list assumptions in
    t.model <- [||];
    let restart_no = ref 0 in
    let budget = ref (100 * luby !restart_no) in
    let conflicts_left = ref conflict_limit in
    let res =
      try
        if propagate t <> -1 then begin
          t.ok <- false;
          raise (Done Unsat)
        end;
        while true do
          let confl = propagate t in
          if confl <> -1 then begin
            t.conflicts <- t.conflicts + 1;
            decr budget;
            decr conflicts_left;
            if decision_level t = 0 then begin
              t.ok <- false;
              raise (Done Unsat)
            end;
            if !conflicts_left < 0 then raise (Done Undecided);
            let learnt, bt = analyze t confl in
            cancel_until t bt;
            if not (record_learnt t learnt) then raise (Done Unsat);
            t.var_inc <- t.var_inc *. var_decay
          end
          else if !budget <= 0 && decision_level t > Array.length assumps then begin
            (* Luby restart; assumption levels are replayed by the
               decision loop below *)
            incr restart_no;
            budget := 100 * luby !restart_no;
            cancel_until t 0
          end
          else begin
            (* pick the next decision: pending assumptions first *)
            let dl = decision_level t in
            if dl < Array.length assumps then begin
              let a = assumps.(dl) in
              match lit_value t a with
              | 1 ->
                  (* already true: open an empty level so indices align *)
                  t.trail_lim <- grow_int t.trail_lim (t.trail_lim_n + 1) 0;
                  t.trail_lim.(t.trail_lim_n) <- t.trail_n;
                  t.trail_lim_n <- t.trail_lim_n + 1
              | 2 -> raise (Done Unsat)  (* assumptions contradictory *)
              | _ ->
                  t.trail_lim <- grow_int t.trail_lim (t.trail_lim_n + 1) 0;
                  t.trail_lim.(t.trail_lim_n) <- t.trail_n;
                  t.trail_lim_n <- t.trail_lim_n + 1;
                  t.decisions <- t.decisions + 1;
                  enqueue t a (-1)
            end
            else begin
              (* VSIDS decision with saved phase *)
              let v = ref (-1) in
              while !v = -1 && t.heap_n > 0 do
                let c = heap_pop t in
                if t.assigns.(c) = l_undef then v := c
              done;
              if !v = -1 then begin
                t.model <- Array.copy t.assigns;
                raise (Done Sat)
              end;
              t.trail_lim <- grow_int t.trail_lim (t.trail_lim_n + 1) 0;
              t.trail_lim.(t.trail_lim_n) <- t.trail_n;
              t.trail_lim_n <- t.trail_lim_n + 1;
              t.decisions <- t.decisions + 1;
              enqueue t (if t.polarity.(!v) then pos !v else negl !v) (-1)
            end
          end
        done;
        Unsat (* unreachable *)
      with Done r -> r
    in
    cancel_until t 0;
    res
  end

(** Model value of [var] after a [Sat] answer (false when the variable
    was never touched by the search). *)
let value t v =
  if v < Array.length t.model then t.model.(v) = 1 else false

(** Model value of a literal. *)
let lit_holds t (l : lit) = value t (var_of l) <> sign_of l
