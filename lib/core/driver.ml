(** End-to-end compilation driver.

    Mirrors the paper's framework (Section 4): take an InCA-C program
    with ANSI-C assertions, pick an assertion synthesis strategy, and
    produce everything downstream — instrumented HLL source, IR, FSMDs,
    checker processes, a structural netlist with EP2S180 area and fmax
    estimates, VHDL, the generated notification function, and a
    ready-to-run cycle-accurate simulation. *)

open Front.Ast
module Ir = Mir.Ir
module Loc = Front.Loc

type mode =
  | Baseline     (** assertions stripped — the tables' "Original" column *)
  | Unoptimized  (** direct if-conversion in the application (Section 4.1) *)
  | Optimized    (** parallelized checkers (Section 3.1) + optional 3.2/3.3 *)

type strategy = {
  mode : mode;
  replicate : bool;        (** Section 3.2: replicate tapped arrays *)
  share : Share.mode;      (** Section 3.3/4.2: failure channel sharing *)
  nabort : bool;           (** continue after failures (assert(0) tracing) *)
  mem_ports : int;         (** block-RAM ports exposed to the application *)
  checker_latency : int option;
}

let baseline =
  { mode = Baseline; replicate = false; share = `Per_proc; nabort = false;
    mem_ports = 1; checker_latency = None }

let unoptimized = { baseline with mode = Unoptimized }

(** The paper's full optimization stack: parallelization + replication +
    32-way channel sharing. *)
let optimized = { baseline with mode = Optimized; replicate = true; share = `Shared 32 }

(** Parallelization only, with dedicated channels (the configuration of
    the Tables 1-2 case studies). *)
let parallelized = { baseline with mode = Optimized; replicate = true; share = `Per_proc }

(** The Carte-C portability flavour (Section 4.3): parallelized checkers
    reporting through one DMA mailbox the CPU polls. *)
let carte = { baseline with mode = Optimized; replicate = true; share = `Dma }

(** The canonical (name, strategy) table.  Every consumer that needs a
    strategy by name — the CLI converter, the campaign sweep, the
    mining ranker, the bench harness — reads this list, so names cannot
    drift between them. *)
let all_strategies =
  [
    ("baseline", baseline);
    ("unoptimized", unoptimized);
    ("parallelized", parallelized);
    ("optimized", optimized);
    ("carte", carte);
  ]

let mode_id = function
  | Baseline -> "baseline"
  | Unoptimized -> "unoptimized"
  | Optimized -> "optimized"

let share_id = function
  | `Per_proc -> "per-proc"
  | `Shared n -> "shared:" ^ string_of_int n
  | `Dma -> "dma"

(** A stable textual identity of a strategy covering every field —
    the strategy half of {!Exec.Cache}'s compile-cache key. *)
let strategy_id s =
  Printf.sprintf "%s;replicate=%b;share=%s;nabort=%b;ports=%d;latency=%s"
    (mode_id s.mode) s.replicate (share_id s.share) s.nabort s.mem_ports
    (match s.checker_latency with Some l -> string_of_int l | None -> "auto")

(** How many assertions each static verifier removed from the program
    before checker synthesis (the [--prune-proved] accounting).  The two
    numbers are disjoint: an assertion proved by both counts once, under
    the abstract interpreter. *)
type prune_stats = {
  absint_pruned : int;     (** proved by {!Analysis.Absint} *)
  induction_pruned : int;  (** proved by BMC k-induction *)
}

let no_pruning = { absint_pruned = 0; induction_pruned = 0 }

type compiled = {
  strategy : strategy;
  source : program;             (** the original (elaborated) program *)
  instrumented : program;       (** after assertion synthesis *)
  asserts : Assertion.info list;
  table : (int * Assertion.info) list;
  plan : Share.plan;
  ir : Ir.program_ir;
  fsmds : Hls.Fsmd.t list;
  checkers : Checker.t list;
  netlist : Rtl.Netlist.t;
  area : Rtl.Area.usage;
  timing : Rtl.Timing.estimate;
  vhdl : string;
  notification_source : string;
  pruned : prune_stats;
}

let hw_procs prog = List.filter (fun p -> p.kind = Hardware) prog.procs

(* The fault-independent prefix of a compile: everything from assertion
   extraction through lowering and checker synthesis.  Injected faults
   (Section 5.1) only rewrite the lowered IR, so a fault-injection sweep
   of hundreds of mutants shares one [front] per (program, strategy) —
   {!Exec.Cache} memoizes exactly this value. *)
type front = {
  f_strategy : strategy;
  f_source : program;
  f_instrumented : program;
  f_asserts : Assertion.info list;
  f_table : (int * Assertion.info) list;
  f_plan : Share.plan;
  f_ir : Ir.program_ir;  (* lowered + optimized, before fault injection *)
  f_checkers : Checker.t list;
  f_notification_source : string;
  f_pruned : prune_stats;
}

exception Static_violation of Analysis.Absint.verdict list

(* Remove the assertions identified by (proc, loc, text) keys; returns
   the rewritten program and how many assert statements were dropped. *)
let prune_asserts (prog : program) (keys : (string * Loc.t * string) list) :
    program * int =
  if keys = [] then (prog, 0)
  else begin
    let dropped = ref 0 in
    let prog' =
      {
        prog with
        procs =
          List.map
            (fun (p : proc) ->
              if p.kind <> Hardware then p
              else
                {
                  p with
                  body =
                    map_stmts
                      (fun st ->
                        match st.s with
                        | Assert (_, text)
                          when List.mem (p.pname, st.sloc, text) keys ->
                            incr dropped;
                            []
                        | _ -> [ st ])
                      p.body;
                })
            prog.procs;
      }
    in
    (prog', !dropped)
  end

(* Drop assertions the abstract interpreter proved can never fire, so
   no checker hardware is synthesized for them (the [--prune-proved]
   path).  Statically violated assertions abort the compile instead:
   building hardware whose checker fires on every execution is a source
   bug, and the verdict carries a concrete witness. *)
let prune_statically_proved (prog : program) : program * int =
  let r = Analysis.Absint.analyze prog in
  let violated =
    List.filter
      (fun (v : Analysis.Absint.verdict) ->
        match v.Analysis.Absint.vclass with Analysis.Absint.Violated _ -> true | _ -> false)
      r.Analysis.Absint.verdicts
  in
  if violated <> [] then raise (Static_violation violated);
  let proved =
    List.filter_map
      (fun (v : Analysis.Absint.verdict) ->
        match v.Analysis.Absint.vclass with
        | Analysis.Absint.Proved ->
            Some (v.Analysis.Absint.vproc, v.Analysis.Absint.vloc, v.Analysis.Absint.vtext)
        | _ -> None)
      r.Analysis.Absint.verdicts
  in
  prune_asserts prog proved

(** Run the fault-independent compile prefix: assertion synthesis,
    lowering, IR optimization, and checker synthesis.
    [induction_proved] names assertions (by proc, location and source
    text) that BMC k-induction proved can never fire; they are pruned
    like Absint-proved ones, after the Absint pass so an assertion both
    verifiers prove is accounted to Absint. *)
let front ?(strategy = optimized) ?(prune_proved = false)
    ?(induction_proved : (string * Loc.t * string) list = []) (prog : program) :
    front =
  let prog, nabs =
    if prune_proved then prune_statically_proved prog else (prog, 0)
  in
  let prog, nind = prune_asserts prog induction_proved in
  let pruned = { absint_pruned = nabs; induction_pruned = nind } in
  let asserts = Assertion.extract prog in
  let plan =
    match strategy.mode with
    | Baseline -> Share.empty
    | Unoptimized | Optimized -> Share.plan strategy.share asserts
  in
  let instrumented, specs, mirrors =
    match strategy.mode with
    | Baseline ->
        ( { prog with procs = List.map Instrument.strip_asserts prog.procs }, [], [] )
    | Unoptimized -> (Instrument.transform plan prog, [], [])
    | Optimized ->
        let prog', specs = Parallelize.transform prog in
        let procs, mirrors =
          List.fold_left
            (fun (ps, ms) p ->
              if strategy.replicate then
                let p', m = Replicate.transform_proc p in
                (p' :: ps, (p.pname, m) :: ms)
              else (p :: ps, ms))
            ([], []) prog'.procs
        in
        ( { prog' with procs = List.rev procs; streams = prog.streams @ plan.Share.streams },
          specs,
          mirrors )
  in
  let ir_procs =
    List.map
      (fun p ->
        let mirrors = try List.assoc p.pname mirrors with Not_found -> [] in
        Mir.Opt.optimize
          (Mir.Lower.lower_proc ~mirrors ~mem_ports:strategy.mem_ports instrumented p))
      (hw_procs instrumented)
  in
  let ir =
    { Ir.streams = instrumented.streams; externs = instrumented.externs; procs = ir_procs }
  in
  let checkers =
    List.map
      (fun spec ->
        Checker.build ~prog:instrumented ~plan ?latency_override:strategy.checker_latency
          spec)
      specs
  in
  let table = List.map (fun (a : Assertion.info) -> (a.Assertion.id, a)) asserts in
  let notification_source =
    Notify.c_source
      ~dma:(strategy.share = `Dma)
      ~route:plan.Share.route
      ~table
      ~streams:(List.map (fun (s : stream_decl) -> s.sname) plan.Share.streams)
      ~nabort:strategy.nabort
  in
  {
    f_strategy = strategy;
    f_source = prog;
    f_instrumented = instrumented;
    f_asserts = asserts;
    f_table = table;
    f_plan = plan;
    f_ir = ir;
    f_checkers = checkers;
    f_notification_source = notification_source;
    f_pruned = pruned;
  }

(** Finish a compile from a (possibly cached, possibly shared) [front]:
    inject [faults] into the lowered IR, then schedule, generate RTL and
    estimate area/timing.  Never mutates the front, so one front value
    is safely shared by concurrent mutant compiles across domains. *)
let finish ?(faults : Faults.Fault.t list = []) (f : front) : compiled =
  let strategy = f.f_strategy in
  let instrumented = f.f_instrumented in
  let plan = f.f_plan in
  let checkers = f.f_checkers in
  let ir = Faults.Fault.apply_all faults f.f_ir in
  let fsmds = List.map Hls.Schedule.compile_proc ir.Ir.procs in
  let checker_modules =
    List.map (fun (c : Checker.t) -> Rtl.Gen.of_fsmd c.Checker.fsmd) checkers
  in
  let top_name =
    match hw_procs f.f_source with p :: _ -> p.pname | [] -> "design"
  in
  let netlist =
    Rtl.Gen.design ~top_name fsmds instrumented.streams
      ~extra_modules:(checker_modules @ plan.Share.collector_modules)
      ()
  in
  let area = Rtl.Area.of_design netlist in
  let max_chain =
    List.fold_left
      (fun acc (fd : Hls.Fsmd.t) -> Stdlib.max acc fd.Hls.Fsmd.max_chain_ns)
      0.0
      (fsmds @ List.map (fun (c : Checker.t) -> c.Checker.fsmd) checkers)
  in
  let timing = Rtl.Timing.estimate ~name:top_name ~max_chain_ns:max_chain area in
  let vhdl =
    Rtl.Vhdl.emit_design
      (fsmds @ List.map (fun (c : Checker.t) -> c.Checker.fsmd) checkers)
      instrumented.streams
  in
  {
    strategy;
    source = f.f_source;
    instrumented;
    asserts = f.f_asserts;
    table = f.f_table;
    plan;
    ir;
    fsmds;
    checkers;
    netlist;
    area;
    timing;
    vhdl;
    notification_source = f.f_notification_source;
    pruned = f.f_pruned;
  }

(** Compile an elaborated program under [strategy], optionally injecting
    hardware-translation [faults] (Section 5.1). *)
let compile ?strategy ?prune_proved ?induction_proved ?faults (prog : program) :
    compiled =
  finish ?faults (front ?strategy ?prune_proved ?induction_proved prog)

(** Parse, type-check and compile from source text. *)
let compile_source ?strategy ?prune_proved ?induction_proved ?faults ?file src =
  compile ?strategy ?prune_proved ?induction_proved ?faults
    (Front.Typecheck.parse_and_check ?file src)

(* --- Simulation ------------------------------------------------------------- *)

type sim_options = {
  feeds : (string * int64 list) list;
  drains : string list;
  params : (string * (string * int64) list) list;
  hw_models : (string * (int64 list -> int64)) list;
  max_cycles : int;
  timing_checks : Sim.Engine.timing_check list;
      (** cycle-budget assertions between assertion-site taps (the
          paper's Section 6 future work); anchor code points with
          [assert(true)] markers under the Optimized strategy *)
  trace : bool;  (** capture a VCD waveform (the SignalTap view) *)
  watchdog : int option;
      (** live-lock watchdog window in cycles (see {!Sim.Engine.config});
          [None] disables it *)
}

let default_sim_options =
  { feeds = []; drains = []; params = []; hw_models = []; max_cycles = 1_000_000;
    timing_checks = []; trace = false; watchdog = None }

(* The window behind [--watchdog auto]: the liveness analyzer's proved
   completion bound under this stimulus, or [None] when nothing is
   proved (the watchdog then stays off rather than guessing).  The bound
   is in channel-op work units, not engine cycles, but it over-
   approximates both (every engine cycle makes progress or the engine's
   own deadlock detector fires first), so it is safe as a progress
   window. *)
let auto_watchdog ~(options : sim_options) (prog : program) : int option =
  let feeds = List.map (fun (s, vs) -> (s, List.length vs)) options.feeds in
  match
    Analysis.Live.analyze ~params:options.params ~feeds ~drains:options.drains prog
  with
  | Analysis.Live.Deadlock_free k -> Some k
  | Analysis.Live.Deadlock _ | Analysis.Live.Unknown _ -> None

type sim_result = {
  engine : Sim.Engine.result;
  messages : string list;        (** notification output, ANSI format *)
  failed_assertions : int list;  (** assertion ids in failure order *)
}

(** A prepared simulation: the engine plus the per-run notification
    state its failure channels feed.  Splitting {!simulate} this way
    lets the fault campaign drive the engine directly — [run_until] to a
    fork point, [snapshot], [restore] into a fresh session per mutant —
    and still collect messages through the normal notification path. *)
type session = {
  ses_engine : Sim.Engine.t;
  ses_notify : Notify.t;
}

let prepare ?(options = default_sim_options) ?on_tap ?on_site (c : compiled) :
    session =
  let notify =
    Notify.make ~table:c.table ~decode:c.plan.Share.decode ~nabort:c.strategy.nabort
  in
  let cfg =
    {
      Sim.Engine.max_cycles = options.max_cycles;
      feeds = options.feeds;
      drains = options.drains;
      handlers = notify.Notify.handlers;
      hw_models = options.hw_models;
      params = options.params;
      timing_checks = options.timing_checks;
      trace = options.trace;
      host_poll_interval =
        (match c.strategy.share with `Dma -> 32 | `Per_proc | `Shared _ -> 1);
      watchdog = options.watchdog;
      on_tap;
      on_site;
    }
  in
  let engine =
    Sim.Engine.create ~cfg ~streams:c.ir.Ir.streams ~fsmds:c.fsmds
      ~checkers:(List.map (fun (ck : Checker.t) -> ck.Checker.engine) c.checkers)
      ()
  in
  { ses_engine = engine; ses_notify = notify }

(** Package an engine result with the session's notification state. *)
let session_result (s : session) (engine : Sim.Engine.result) : sim_result =
  {
    engine;
    messages = Notify.messages s.ses_notify;
    failed_assertions = Notify.failures s.ses_notify;
  }

(** Run the compiled design in the cycle-accurate simulator with the
    notification function attached to the failure channels.  [on_tap]
    (if given) observes every tap execution as [f cycle id values] — the
    hook the BMC equivalence tests use to compare predicted and actual
    fire schedules. *)
let simulate ?(options = default_sim_options) ?on_tap (c : compiled) : sim_result =
  let s = prepare ~options ?on_tap c in
  session_result s (Sim.Engine.run s.ses_engine)

(** Software simulation of the *original* program (assertions run as
    plain ANSI-C asserts on the CPU) — the Impulse-C desktop-simulation
    path the paper contrasts against.  [observer] (if given) receives
    every {!Interp.obs_event}; the assertion-mining subsystem uses it to
    record per-statement traces. *)
let software_sim ?(options = default_sim_options) ?(nabort = false)
    ?(observer : (Interp.obs_event -> unit) option) (c : compiled) : Interp.result =
  let cfg =
    {
      Interp.default_config with
      Interp.params = options.params;
      feeds = options.feeds;
      drains = options.drains;
      nabort;
      extern_models = options.hw_models;
      observer;
    }
  in
  Interp.run ~cfg c.source

(** Check an FSMD set against the scheduler invariants; returns all
    violations (used by tests and the CLI's lint mode). *)
let check_invariants (c : compiled) : string list =
  List.concat_map Hls.Fsmd.check
    (c.fsmds @ List.map (fun (ck : Checker.t) -> ck.Checker.fsmd) c.checkers)

(** The compiler-side findings of [inca check], as diagnostics sharing
    the {!Analysis.Diag} codes: INCA-S001 for FSMD scheduler-invariant
    violations, INCA-S002 for lowered-IR well-formedness complaints. *)
let static_diags (c : compiled) : Analysis.Diag.t list =
  List.map
    (fun m -> Analysis.Diag.error ~code:"INCA-S001" Front.Loc.none m)
    (check_invariants c)
  @ List.map
      (fun m -> Analysis.Diag.error ~code:"INCA-S002" Front.Loc.none m)
      (Ir.validate c.ir)
