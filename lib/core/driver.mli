(** End-to-end compilation driver.

    Mirrors the paper's framework (Section 4): take an InCA-C program
    with ANSI-C assertions, pick an assertion synthesis strategy, and
    produce everything downstream — instrumented HLL source, IR, FSMDs,
    checker processes, a structural netlist with EP2S180 area and fmax
    estimates, VHDL, the generated notification function, and a
    ready-to-run cycle-accurate simulation. *)

module Ir = Mir.Ir

type mode =
  | Baseline     (** assertions stripped — the tables' "Original" column *)
  | Unoptimized  (** direct if-conversion in the application (Section 4.1) *)
  | Optimized    (** parallelized checkers (Section 3.1) + optional 3.2/3.3 *)

type strategy = {
  mode : mode;
  replicate : bool;        (** Section 3.2: replicate tapped arrays *)
  share : Share.mode;      (** Section 3.3/4.2: failure channel sharing *)
  nabort : bool;           (** continue after failures (assert(0) tracing) *)
  mem_ports : int;         (** block-RAM ports exposed to the application *)
  checker_latency : int option;  (** override the synthesized latency *)
}

(** Assertions stripped (NDEBUG). *)
val baseline : strategy

(** If-conversion in the application, one failure stream per process. *)
val unoptimized : strategy

(** Parallelization + replication, dedicated channels (the Tables 1-2
    case-study configuration). *)
val parallelized : strategy

(** The paper's full stack: parallelization + replication + 32-way
    channel sharing. *)
val optimized : strategy

(** The Carte-C portability flavour (Section 4.3): parallelized checkers
    reporting through one DMA mailbox the CPU polls every 32 cycles. *)
val carte : strategy

(** The canonical (name, strategy) table — baseline, unoptimized,
    parallelized, optimized, carte.  Every consumer that resolves a
    strategy by name (CLI converter, campaign, mining ranker, bench)
    reads this list, so names cannot drift. *)
val all_strategies : (string * strategy) list

(** A stable textual identity of a strategy covering every field; used
    as the strategy half of the {!Exec.Cache} compile-cache key. *)
val strategy_id : strategy -> string

(** How many assertions each static verifier removed before checker
    synthesis (the [--prune-proved] accounting).  Disjoint counts: an
    assertion proved by both is accounted to the abstract interpreter. *)
type prune_stats = {
  absint_pruned : int;     (** proved by {!Analysis.Absint} *)
  induction_pruned : int;  (** proved by BMC k-induction *)
}

val no_pruning : prune_stats

type compiled = {
  strategy : strategy;
  source : Front.Ast.program;        (** the original (elaborated) program *)
  instrumented : Front.Ast.program;  (** after assertion synthesis *)
  asserts : Assertion.info list;
  table : (int * Assertion.info) list;  (** the error code table *)
  plan : Share.plan;
  ir : Ir.program_ir;
  fsmds : Hls.Fsmd.t list;
  checkers : Checker.t list;
  netlist : Rtl.Netlist.t;
  area : Rtl.Area.usage;
  timing : Rtl.Timing.estimate;
  vhdl : string;
  notification_source : string;      (** generated C (Figure 2) *)
  pruned : prune_stats;
}

val hw_procs : Front.Ast.program -> Front.Ast.proc list

(** The fault-independent prefix of a compile: assertion synthesis,
    lowering, IR optimization and checker synthesis — everything before
    fault injection.  A fault-injection sweep shares one front per
    (program, strategy); {!Exec.Cache} memoizes exactly this value. *)
type front = {
  f_strategy : strategy;
  f_source : Front.Ast.program;
  f_instrumented : Front.Ast.program;
  f_asserts : Assertion.info list;
  f_table : (int * Assertion.info) list;
  f_plan : Share.plan;
  f_ir : Ir.program_ir;  (** lowered + optimized, before fault injection *)
  f_checkers : Checker.t list;
  f_notification_source : string;
  f_pruned : prune_stats;
}

(** Raised (only under [~prune_proved:true]) when the abstract
    interpreter classifies an assertion as failing on every reaching
    execution; the verdicts carry concrete witnesses. *)
exception Static_violation of Analysis.Absint.verdict list

(** Run the fault-independent compile prefix.  [prune_proved] (default
    [false]) first runs the {!Analysis.Absint} verifier and drops every
    statically proved assertion before instrumentation, so no checker
    hardware is synthesized for it; a statically violated assertion
    raises {!Static_violation} instead.  [induction_proved] names
    assertions (proc, location, source text) that BMC k-induction proved
    unreachable-to-fire; they are pruned the same way, accounted
    separately in [f_pruned].  {!Exec.Cache} keys on both knobs — a
    pruned front must not be served for an unpruned request. *)
val front :
  ?strategy:strategy ->
  ?prune_proved:bool ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  Front.Ast.program ->
  front

(** Finish a compile from a (possibly cached, possibly shared) front:
    inject [faults] into the lowered IR, then schedule, generate RTL and
    estimate area/timing.  Never mutates the front, so one front value
    is safely shared by concurrent mutant compiles across domains. *)
val finish : ?faults:Faults.Fault.t list -> front -> compiled

(** Compile an elaborated program, optionally injecting
    hardware-translation [faults] (Section 5.1).
    Equivalent to [finish ?faults (front ?strategy prog)]. *)
val compile :
  ?strategy:strategy ->
  ?prune_proved:bool ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  ?faults:Faults.Fault.t list ->
  Front.Ast.program ->
  compiled

(** Parse, type-check and compile from source text. *)
val compile_source :
  ?strategy:strategy ->
  ?prune_proved:bool ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  ?faults:Faults.Fault.t list ->
  ?file:string ->
  string ->
  compiled

type sim_options = {
  feeds : (string * int64 list) list;
  drains : string list;
  params : (string * (string * int64) list) list;
  hw_models : (string * (int64 list -> int64)) list;
  max_cycles : int;
  timing_checks : Sim.Engine.timing_check list;
      (** cycle-budget assertions between assertion-site taps (the
          paper's Section 6 future work); anchor code points with
          [assert(true)] markers *)
  trace : bool;  (** capture a VCD waveform *)
  watchdog : int option;
      (** live-lock watchdog window in cycles (see {!Sim.Engine.config});
          [None] disables it *)
}

val default_sim_options : sim_options

(** The window behind [--watchdog auto]: {!Analysis.Live.analyze}'s
    proved completion bound for [prog] under the stimulus in [options]
    ([feeds] taken as token counts), or [None] when liveness is not
    proved — the caller should then leave the watchdog off rather than
    guess a window. *)
val auto_watchdog : options:sim_options -> Front.Ast.program -> int option

type sim_result = {
  engine : Sim.Engine.result;
  messages : string list;        (** notification output, ANSI format *)
  failed_assertions : int list;  (** assertion ids in failure order *)
}

(** Run the compiled design in the cycle-accurate simulator with the
    notification function attached to the failure channels.  [on_tap]
    observes every tap execution as [f cycle id values] (see
    {!Sim.Engine.config}). *)
val simulate :
  ?options:sim_options ->
  ?on_tap:(int -> int -> int64 array -> unit) ->
  compiled ->
  sim_result

(** A prepared simulation: the engine plus the per-run notification
    state its failure channels feed.  The fault campaign drives the
    engine directly ({!Sim.Engine.run_until} / [snapshot] / [restore] /
    [arm]) and packages the result with {!session_result};
    {!simulate} is [prepare] + [Sim.Engine.run] + [session_result]. *)
type session = {
  ses_engine : Sim.Engine.t;
  ses_notify : Notify.t;
}

val prepare :
  ?options:sim_options ->
  ?on_tap:(int -> int -> int64 array -> unit) ->
  ?on_site:(int -> int -> unit) ->
  compiled ->
  session

val session_result : session -> Sim.Engine.result -> sim_result

(** Software simulation of the *original* program (assertions run as
    plain ANSI-C asserts on the CPU) — the Impulse-C desktop-simulation
    path the paper contrasts against.  [observer] (if given) receives
    every {!Interp.obs_event}; the assertion-mining subsystem uses it to
    record per-statement traces. *)
val software_sim :
  ?options:sim_options ->
  ?nabort:bool ->
  ?observer:(Interp.obs_event -> unit) ->
  compiled ->
  Interp.result

(** All FSMD invariant violations of the compiled design (empty = ok). *)
val check_invariants : compiled -> string list

(** The compiler-side findings of [inca check] as diagnostics:
    INCA-S001 wraps each {!check_invariants} violation, INCA-S002 each
    {!Mir.Ir.validate} complaint about the lowered IR. *)
val static_diags : compiled -> Analysis.Diag.t list
