type source =
  | Path of string
  | Text of { name : string; text : string }

type stimulus = {
  feeds : (string * int64 list) list;
  drains : string list;
  params : (string * (string * int64) list) list;
}

let empty_stimulus = { feeds = []; drains = []; params = [] }

type compile_params = {
  c_source : source;
  c_strategy : string;
  c_nabort : bool;
  c_ndebug : bool;
  c_prune_proved : bool;
  c_prune_induction : int;
}

type check_params = {
  k_sources : source list;
  k_strategy : string;
  k_nabort : bool;
  k_ndebug : bool;
  k_only : string list option;
  k_ignore : string list option;
  k_watchdog : int option;
}

type prove_params = {
  p_sources : source list;
  p_depth : int;
  p_induction : int;
  p_assertion : int option;
  p_conflict_limit : int;
  p_jobs : int option;
}

type campaign_params = {
  a_source : source option;
  a_stimulus : stimulus;
  a_budget : int option;
  a_watchdog : int option;
  a_max_mutants : int option;
  a_jobs : int option;
  a_from_reset : bool;
  a_max_cycles : int;
  a_prune_hangs : bool;
}

type mine_params = {
  m_source : source;
  m_strategy : string;
  m_stimulus : stimulus;
  m_top : int;
  m_max_candidates : int;
  m_max_mutants : int option;
  m_budget : int option;
  m_jobs : int option;
  m_emit : bool;
}

type fuzz_params = {
  z_seed : int64;
  z_count : int option;
  z_fuel : int option;
  z_max_cycles : int option;
  z_watchdog : int option;
  z_bmc_depth : int option;
  z_corpus_dir : string option;
  z_jobs : int option;
}

type t =
  | Compile of compile_params
  | Check of check_params
  | Prove of prove_params
  | Campaign of campaign_params
  | Mine of mine_params
  | Fuzz of fuzz_params

let kind = function
  | Compile _ -> "compile"
  | Check _ -> "check"
  | Prove _ -> "prove"
  | Campaign _ -> "campaign"
  | Mine _ -> "mine"
  | Fuzz _ -> "fuzz"

(* --- encoding ------------------------------------------------------------ *)

let source_json = function
  | Path p -> Json.Obj [ ("path", Json.Str p) ]
  | Text { name; text } -> Json.Obj [ ("name", Json.Str name); ("text", Json.Str text) ]

let stimulus_fields st =
  [
    ("feeds", Json.Obj (List.map (fun (s, vs) -> (s, Json.list Json.i64 vs)) st.feeds));
    ("drains", Json.list Json.str st.drains);
    ( "params",
      Json.Obj
        (List.map
           (fun (proc, kvs) ->
             (proc, Json.Obj (List.map (fun (k, v) -> (k, Json.i64 v)) kvs)))
           st.params) );
  ]

(* [None] encodes as an absent field; the decoders treat absent and
   null alike, so both round-trip. *)
let opt_field k f = function Some v -> [ (k, f v) ] | None -> []

let to_json t : Json.t =
  let kinded fields = Json.Obj (("kind", Json.Str (kind t)) :: fields) in
  match t with
  | Compile c ->
      kinded
        [
          ("source", source_json c.c_source);
          ("strategy", Json.Str c.c_strategy);
          ("nabort", Json.Bool c.c_nabort);
          ("ndebug", Json.Bool c.c_ndebug);
          ("prune_proved", Json.Bool c.c_prune_proved);
          ("prune_induction", Json.int c.c_prune_induction);
        ]
  | Check k ->
      kinded
        ([
           ("sources", Json.list source_json k.k_sources);
           ("strategy", Json.Str k.k_strategy);
           ("nabort", Json.Bool k.k_nabort);
           ("ndebug", Json.Bool k.k_ndebug);
         ]
        @ opt_field "only" (Json.list Json.str) k.k_only
        @ opt_field "ignore" (Json.list Json.str) k.k_ignore
        @ opt_field "watchdog" Json.int k.k_watchdog)
  | Prove p ->
      kinded
        ([
           ("sources", Json.list source_json p.p_sources);
           ("depth", Json.int p.p_depth);
           ("induction", Json.int p.p_induction);
         ]
        @ opt_field "assertion" Json.int p.p_assertion
        @ [ ("conflict_limit", Json.int p.p_conflict_limit) ]
        @ opt_field "jobs" Json.int p.p_jobs)
  | Campaign a ->
      kinded
        (opt_field "source" source_json a.a_source
        @ stimulus_fields a.a_stimulus
        @ opt_field "budget" Json.int a.a_budget
        @ opt_field "watchdog" Json.int a.a_watchdog
        @ opt_field "max_mutants" Json.int a.a_max_mutants
        @ opt_field "jobs" Json.int a.a_jobs
        @ [
            ("from_reset", Json.Bool a.a_from_reset);
            ("max_cycles", Json.int a.a_max_cycles);
            ("prune_hangs", Json.Bool a.a_prune_hangs);
          ])
  | Mine m ->
      kinded
        ([ ("source", source_json m.m_source); ("strategy", Json.Str m.m_strategy) ]
        @ stimulus_fields m.m_stimulus
        @ [ ("top", Json.int m.m_top); ("max_candidates", Json.int m.m_max_candidates) ]
        @ opt_field "max_mutants" Json.int m.m_max_mutants
        @ opt_field "budget" Json.int m.m_budget
        @ opt_field "jobs" Json.int m.m_jobs
        @ [ ("emit", Json.Bool m.m_emit) ])
  | Fuzz z ->
      kinded
        ([ ("seed", Json.i64 z.z_seed) ]
        @ opt_field "count" Json.int z.z_count
        @ opt_field "fuel" Json.int z.z_fuel
        @ opt_field "max_cycles" Json.int z.z_max_cycles
        @ opt_field "watchdog" Json.int z.z_watchdog
        @ opt_field "bmc_depth" Json.int z.z_bmc_depth
        @ opt_field "corpus_dir" Json.str z.z_corpus_dir
        @ opt_field "jobs" Json.int z.z_jobs)

(* --- decoding ------------------------------------------------------------ *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt

let field j k = match Json.member k j with Some Json.Null -> None | v -> v

let req j k = match field j k with Some v -> v | None -> fail "missing field %S" k

let dec_str k v = match Json.get_str v with Some s -> s | None -> fail "%S must be a string" k
let dec_int k v = match Json.get_int v with Some n -> n | None -> fail "%S must be an integer" k
let dec_i64 k v = match Json.get_i64 v with Some n -> n | None -> fail "%S must be an integer" k
let dec_bool k v = match Json.get_bool v with Some b -> b | None -> fail "%S must be a boolean" k
let dec_list k v = match Json.get_list v with Some l -> l | None -> fail "%S must be an array" k
let dec_obj k v = match Json.get_obj v with Some o -> o | None -> fail "%S must be an object" k

let get dec dflt j k = match field j k with Some v -> dec k v | None -> dflt
let get_opt dec j k = match field j k with Some v -> Some (dec k v) | None -> None

let dec_codes k v = List.map (dec_str k) (dec_list k v)

let dec_source k v =
  match (Json.member "path" v, Json.member "name" v, Json.member "text" v) with
  | Some p, _, _ -> Path (dec_str "path" p)
  | None, Some name, Some text -> Text { name = dec_str "name" name; text = dec_str "text" text }
  | _ -> fail "%S must be {\"path\": ...} or {\"name\": ..., \"text\": ...}" k

let dec_sources j k =
  match field j k with
  | None -> fail "missing field %S" k
  | Some v -> List.map (dec_source k) (dec_list k v)

let dec_stimulus j =
  let feeds =
    match field j "feeds" with
    | None -> []
    | Some v ->
        List.map
          (fun (s, vs) -> (s, List.map (dec_i64 s) (dec_list s vs)))
          (dec_obj "feeds" v)
  in
  let drains =
    match field j "drains" with
    | None -> []
    | Some v -> List.map (dec_str "drains") (dec_list "drains" v)
  in
  let params =
    match field j "params" with
    | None -> []
    | Some v ->
        List.map
          (fun (proc, kvs) ->
            (proc, List.map (fun (k, v) -> (k, dec_i64 k v)) (dec_obj proc kvs)))
          (dec_obj "params" v)
  in
  { feeds; drains; params }

let of_json j : (t, string) result =
  match
    match Json.get_obj j with
    | None -> fail "a job must be a JSON object"
    | Some _ -> (
        let kind = dec_str "kind" (req j "kind") in
        match kind with
        | "compile" ->
            Compile
              {
                c_source = dec_source "source" (req j "source");
                c_strategy = get dec_str "optimized" j "strategy";
                c_nabort = get dec_bool false j "nabort";
                c_ndebug = get dec_bool false j "ndebug";
                c_prune_proved = get dec_bool false j "prune_proved";
                c_prune_induction = get dec_int 0 j "prune_induction";
              }
        | "check" ->
            Check
              {
                k_sources = dec_sources j "sources";
                k_strategy = get dec_str "optimized" j "strategy";
                k_nabort = get dec_bool false j "nabort";
                k_ndebug = get dec_bool false j "ndebug";
                k_only = get_opt dec_codes j "only";
                k_ignore = get_opt dec_codes j "ignore";
                k_watchdog = get_opt dec_int j "watchdog";
              }
        | "prove" ->
            Prove
              {
                p_sources = dec_sources j "sources";
                p_depth = get dec_int 12 j "depth";
                p_induction = get dec_int 4 j "induction";
                p_assertion = get_opt dec_int j "assertion";
                p_conflict_limit = get dec_int 200_000 j "conflict_limit";
                p_jobs = get_opt dec_int j "jobs";
              }
        | "campaign" ->
            Campaign
              {
                a_source = Option.map (dec_source "source") (field j "source");
                a_stimulus = dec_stimulus j;
                a_budget = get_opt dec_int j "budget";
                a_watchdog = get_opt dec_int j "watchdog";
                a_max_mutants = get_opt dec_int j "max_mutants";
                a_jobs = get_opt dec_int j "jobs";
                a_from_reset = get dec_bool false j "from_reset";
                a_max_cycles = get dec_int 1_000_000 j "max_cycles";
                a_prune_hangs = get dec_bool true j "prune_hangs";
              }
        | "mine" ->
            Mine
              {
                m_source = dec_source "source" (req j "source");
                m_strategy = get dec_str "parallelized" j "strategy";
                m_stimulus = dec_stimulus j;
                m_top = get dec_int 10 j "top";
                m_max_candidates = get dec_int 12 j "max_candidates";
                m_max_mutants = get_opt dec_int j "max_mutants";
                m_budget = get_opt dec_int j "budget";
                m_jobs = get_opt dec_int j "jobs";
                m_emit = get dec_bool false j "emit";
              }
        | "fuzz" ->
            Fuzz
              {
                z_seed = get dec_i64 42L j "seed";
                z_count = get_opt dec_int j "count";
                z_fuel = get_opt dec_int j "fuel";
                z_max_cycles = get_opt dec_int j "max_cycles";
                z_watchdog = get_opt dec_int j "watchdog";
                z_bmc_depth = get_opt dec_int j "bmc_depth";
                z_corpus_dir = get_opt dec_str j "corpus_dir";
                z_jobs = get_opt dec_int j "jobs";
              }
        | k ->
            fail "unknown job kind %S (expected compile, check, prove, campaign, mine or fuzz)"
              k)
  with
  | t -> Ok t
  | exception Decode m -> Error m
