(** The unified job vocabulary: one typed description per verification
    task the toolchain can run, with a versioned JSON codec.

    Every entry point — the [inca] subcommands, the [inca serve]
    daemon, the bench harness — constructs a {!t} and hands it to the
    scheduler ([Serve.Sched]); the result always comes back as a
    {!Report.t}.  The codec is the wire format of the serve protocol,
    so it is round-trip tested ([of_json (to_json j) = Ok j]) and
    tolerant of unknown fields (decoders look up known keys and ignore
    the rest). *)

(** Where a job's InCA-C source comes from.  [Path] is resolved by the
    scheduler when the job runs (relative to its working directory);
    [Text] carries the source inline, the form a remote client uses. *)
type source =
  | Path of string
  | Text of { name : string; text : string }

(** Shared testbench stimulus (campaign/mine).  Empty lists mean
    "derive automatically" — ramp feeds for purely-read streams,
    drains for purely-written ones, parameters defaulted to 32. *)
type stimulus = {
  feeds : (string * int64 list) list;
  drains : string list;
  params : (string * (string * int64) list) list;
}

val empty_stimulus : stimulus

type compile_params = {
  c_source : source;
  c_strategy : string;  (** strategy name; resolved when the job runs *)
  c_nabort : bool;
  c_ndebug : bool;
  c_prune_proved : bool;
  c_prune_induction : int;  (** 0 disables *)
}

type check_params = {
  k_sources : source list;
  k_strategy : string;
  k_nabort : bool;
  k_ndebug : bool;
  k_only : string list option;
      (** keep only diagnostics with these codes ([--only]); [None] = all *)
  k_ignore : string list option;
      (** drop diagnostics with these codes ([--ignore]) *)
  k_watchdog : int option;
      (** configured watchdog window, measured against the proved
          completion bound (INCA-L109/L110) *)
}

type prove_params = {
  p_sources : source list;
  p_depth : int;
  p_induction : int;
  p_assertion : int option;
  p_conflict_limit : int;
  p_jobs : int option;
}

type campaign_params = {
  a_source : source option;  (** [None] sweeps the bundled workloads *)
  a_stimulus : stimulus;
  a_budget : int option;
  a_watchdog : int option;
  a_max_mutants : int option;
  a_jobs : int option;
  a_from_reset : bool;
  a_max_cycles : int;
  a_prune_hangs : bool;
      (** let the liveness pre-filter classify provably blocking
          mutants without simulating them (default [true]) *)
}

type mine_params = {
  m_source : source;
  m_strategy : string;
  m_stimulus : stimulus;
  m_top : int;
  m_max_candidates : int;
  m_max_mutants : int option;
  m_budget : int option;
  m_jobs : int option;
  m_emit : bool;  (** include the instrumented source in the report *)
}

type fuzz_params = {
  z_seed : int64;
  z_count : int option;  (** [None] = {!Torture.Fuzz.default_count} *)
  z_fuel : int option;
  z_max_cycles : int option;
  z_watchdog : int option;
  z_bmc_depth : int option;
  z_corpus_dir : string option;  (** [None] = don't write reproducers *)
  z_jobs : int option;
}

type t =
  | Compile of compile_params
  | Check of check_params
  | Prove of prove_params
  | Campaign of campaign_params
  | Mine of mine_params
  | Fuzz of fuzz_params

(** "compile" / "check" / "prove" / "campaign" / "mine" / "fuzz". *)
val kind : t -> string

val to_json : t -> Json.t

(** Decode a job object.  Unknown fields are ignored; missing optional
    fields take the CLI's defaults.  Errors name the offending field. *)
val of_json : Json.t -> (t, string) result
