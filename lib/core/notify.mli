(** The assertion notification function (paper Figure 1 / Section 4.1):
    the CPU-side task that receives failure words over the streaming
    channels, decodes the error code, prints the ANSI-C assertion
    message, and halts — unless NABORT. *)

type t = {
  handlers : (string * (int64 -> Sim.Engine.host_action)) list;
      (** one host handler per failure stream *)
  log : string list ref;        (** messages, newest first *)
  failed_ids : int list ref;    (** assertion ids, newest first *)
}

(** Build the executable notification function from the code [table]
    and the channel plan's [decode] map. *)
val make :
  table:(int * Assertion.info) list ->
  decode:(string * (int64 -> int list)) list ->
  nabort:bool ->
  t

(** Messages in arrival order. *)
val messages : t -> string list

(** Failed assertion ids in arrival order. *)
val failures : t -> int list

(** The generated C source of the notification function — the software
    side of the paper's Figure 2 instrumentation.  [route] (the channel
    plan's assertion id -> (stream, failure word) map) restricts each
    stream's drain loop to the failure words actually routed to it;
    without it every assertion appears in every loop, keyed by id. *)
val c_source :
  ?dma:bool ->
  ?route:(int * (string * int64)) list ->
  table:(int * Assertion.info) list ->
  streams:string list ->
  nabort:bool ->
  string
