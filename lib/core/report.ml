let schema_version = 1

type t = {
  kind : string;
  exit_code : int;
  payload : Json.t;
  error : string option;
}

let make ~kind ?(exit_code = 0) payload = { kind; exit_code; payload; error = None }

let fail ~kind ?(exit_code = 1) ?(payload = Json.Obj []) msg =
  { kind; exit_code; payload; error = Some msg }

let ok t = t.error = None && t.exit_code = 0

let to_json t : Json.t =
  Json.Obj
    ([
       ("schema_version", Json.int schema_version);
       ("kind", Json.Str t.kind);
       ("exit_code", Json.int t.exit_code);
     ]
    @ (match t.error with Some m -> [ ("error", Json.Str m) ] | None -> [])
    @ [ ("report", t.payload) ])

let of_json j : (t, string) result =
  match Json.get_obj j with
  | None -> Error "a report must be a JSON object"
  | Some _ -> (
      match Json.member "schema_version" j with
      | None -> Error "missing \"schema_version\" field"
      | Some v -> (
          match Json.get_int v with
          | None -> Error "\"schema_version\" must be an integer"
          | Some n when n <> schema_version ->
              Error
                (Printf.sprintf
                   "schema_version mismatch: peer speaks version %d, this build speaks \
                    version %d"
                   n schema_version)
          | Some _ -> (
              match Option.bind (Json.member "kind" j) Json.get_str with
              | None -> Error "missing or non-string \"kind\" field"
              | Some kind ->
                  let exit_code =
                    match Option.bind (Json.member "exit_code" j) Json.get_int with
                    | Some n -> n
                    | None -> 0
                  in
                  let payload =
                    match Json.member "report" j with Some p -> p | None -> Json.Obj []
                  in
                  let error = Option.bind (Json.member "error" j) Json.get_str in
                  Ok { kind; exit_code; payload; error })))

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j
