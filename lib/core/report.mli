(** The unified result envelope: every toolchain entry point — each
    [inca] subcommand's [--json] output, the serve daemon's responses,
    the bench artifacts — renders results as exactly one {!t}.

    The wire shape is versioned: [to_json] writes ["schema_version"]
    first, and [of_json] rejects an envelope whose version it does not
    speak with a clear diagnostic (never a parse crash).  Unknown
    fields are ignored, so the format can grow compatibly. *)

(** The version this build reads and writes. *)
val schema_version : int

type t = {
  kind : string;  (** the {!Job.kind} that produced the report *)
  exit_code : int;  (** what the CLI adapter exits with *)
  payload : Json.t;  (** the subcommand-specific report body *)
  error : string option;  (** set when the job failed outright *)
}

val make : kind:string -> ?exit_code:int -> Json.t -> t

(** A failure envelope: [exit_code] defaults to 1, [payload] to an
    empty object.  Renders as [{"schema_version":…, "error":…}]. *)
val fail : kind:string -> ?exit_code:int -> ?payload:Json.t -> string -> t

val ok : t -> bool

val to_json : t -> Json.t

(** Decode an envelope.  Requires ["schema_version"] to be present and
    equal to {!schema_version}; a mismatch is reported as such, not as
    a shape error.  Tolerates unknown fields. *)
val of_json : Json.t -> (t, string) result

(** [to_json] rendered on a single line (no trailing newline). *)
val to_string : t -> string

(** Parse then [of_json]. *)
val of_string : string -> (t, string) result
