(** Netlist-level assertion verification: bounded model checking and
    k-induction over the synthesized design, with counterexample replay
    through the cycle-accurate simulator.

    This module is the glue between three layers that must agree with
    each other exactly:

    - {!Bmc.Model} unrolls the scheduled FSMDs into an AIG under a free
      environment (unconstrained feed values, free parameters);
    - {!Driver.simulate} / {!Sim.Engine} replays a concrete trace;
    - {!Analysis.Verdict} carries the shared classification that
      [inca prove], the bench harness and the torture oracle consume.

    A solver witness is never trusted on its own: the feed values and
    parameters it chose are turned into a testbench and run through the
    engine, and only an assertion failure observed there is reported as
    Violated (INCA-B001).  A witness the engine refuses is a genuine
    model/engine divergence, downgraded to Unknown and flagged
    INCA-B006.

    The environment mirrors [inca simulate]'s auto-testbench shape
    ({!Mine.Trace.auto_options}, re-derived here because mine sits above
    core): feeds are the streams some process reads and none writes,
    drains the converse, and every process parameter is free. *)

open Front.Ast
module Ir = Mir.Ir
module Loc = Front.Loc
module Verdict = Analysis.Verdict

(** The strategy every BMC run compiles under: parallelized checkers
    with NABORT reporting, so one violated assertion cannot mask the
    others during replay, and checker latency never reorders failure
    words of independent assertions. *)
let strategy = { Driver.parallelized with Driver.nabort = true }

let front_of (prog : program) : Driver.front = Driver.front ~strategy prog

(* Streams read / written anywhere in the program, in first-occurrence
   order — the auto-testbench classification. *)
let stream_roles (prog : program) : string list * string list =
  let reads = ref [] and writes = ref [] in
  List.iter
    (fun (p : proc) ->
      iter_stmts
        (fun st ->
          match st.s with
          | Stream_read (_, s) -> if not (List.mem s !reads) then reads := s :: !reads
          | Stream_write (s, _) ->
              if not (List.mem s !writes) then writes := s :: !writes
          | _ -> ())
        p.body)
    prog.procs;
  (List.rev !reads, List.rev !writes)

(** The symbolic-model configuration for a compiled front: feed/drain
    roles from the source program, every parameter register free, tap
    conditions from the synthesized checkers. *)
let model_config (f : Driver.front) : Bmc.Model.config =
  let reads, writes = stream_roles f.Driver.f_source in
  let feeds = List.filter (fun s -> not (List.mem s writes)) reads in
  let drains = List.filter (fun s -> not (List.mem s reads)) writes in
  let free_regs =
    List.map
      (fun (p : Ir.proc_ir) ->
        let param_names =
          match
            List.find_opt (fun (a : proc) -> a.pname = p.Ir.name)
              f.Driver.f_source.procs
          with
          | Some a -> List.map fst a.params
          | None -> []
        in
        ( p.Ir.name,
          List.filter_map
            (fun (r, (info : Ir.reg_info)) ->
              match info.Ir.origin with
              | Some o when List.mem o param_names -> Some (r, o)
              | _ -> None)
            p.Ir.regs ))
      f.Driver.f_ir.Ir.procs
  in
  {
    Bmc.Model.fsmds = List.map Hls.Schedule.compile_proc f.Driver.f_ir.Ir.procs;
    streams = f.Driver.f_ir.Ir.streams;
    feeds;
    drains;
    free_regs;
    checkers =
      List.map
        (fun (c : Checker.t) ->
          ( c.Checker.spec.Parallelize.info.Assertion.id,
            c.Checker.spec.Parallelize.cond ))
        f.Driver.f_checkers;
  }

(* Latency slack so a fire at the last unrolled cycle still reaches the
   notification handler before the cycle budget runs out. *)
let replay_slack = 64

type replay_outcome =
  | Confirmed of int  (** fire cycle observed in the engine *)
  | Refuted of string

(** Replay a solver witness through the cycle-accurate simulator and
    report the cycle at which assertion [id]'s tap fired with a false
    condition (watched through the engine's tap observer, so the check
    does not depend on notification latency or channel sharing). *)
let replay (f : Driver.front) ~(id : int) (w : Bmc.Prove.witness) : replay_outcome =
  let c = Driver.finish f in
  let _, writes = stream_roles f.Driver.f_source in
  let reads, _ = stream_roles f.Driver.f_source in
  let drains = List.filter (fun s -> not (List.mem s reads)) writes in
  let options =
    {
      Driver.default_sim_options with
      Driver.feeds = w.Bmc.Prove.w_feeds;
      drains;
      params = w.Bmc.Prove.w_params;
      max_cycles = w.Bmc.Prove.w_cycle + replay_slack;
    }
  in
  let cond =
    match
      List.find_opt
        (fun (ck : Checker.t) -> ck.Checker.spec.Parallelize.info.Assertion.id = id)
        c.Driver.checkers
    with
    | Some ck -> Some ck.Checker.spec.Parallelize.cond
    | None -> None
  in
  let fired = ref None in
  let on_tap cycle tid values =
    if tid = id && !fired = None then
      match cond with
      | Some cond -> if not (Assertion.holds cond values) then fired := Some cycle
      | None -> ()
  in
  let res = Driver.simulate ~options ~on_tap c in
  match !fired with
  | Some cycle -> Confirmed cycle
  | None ->
      Refuted
        (Printf.sprintf
           "no failing tap within %d cycles (engine outcome: %s, %d failures \
            reported)"
           options.Driver.max_cycles
           (match res.Driver.engine.Sim.Engine.outcome with
           | Sim.Engine.Finished -> "finished"
           | Sim.Engine.Hang _ -> "hang"
           | Sim.Engine.Livelock _ -> "livelock"
           | Sim.Engine.Aborted m -> "aborted: " ^ m
           | Sim.Engine.Out_of_cycles -> "out of cycles")
           (List.length res.Driver.failed_assertions))

(* The lint-L105 cross-reference: assertions Absint's dead-assertion
   pass flagged, keyed like the prune lists. *)
let dead_keys (absint : Analysis.Absint.result) =
  List.map (fun (p, loc, text, _) -> (p, loc, text)) absint.Analysis.Absint.dead

(** Check one assertion of a compiled front end to end: BMC + optional
    k-induction, witness replay, L105 cross-reference.  Pure apart from
    solver allocation, so sweeps can run it per-assertion on a pool. *)
let check_target ?(depth = 12) ?(induction = 0) ?(conflict_limit = 200_000)
    (f : Driver.front) ~(absint : Analysis.Absint.result) (id : int) :
    Verdict.presult * Analysis.Diag.t option =
  let info = List.assoc id f.Driver.f_table in
  let cfg = model_config f in
  let r = Bmc.Prove.check_assertion ~depth ~induction ~conflict_limit cfg id in
  let dead_lint =
    List.mem (info.Assertion.aproc, info.Assertion.aloc, info.Assertion.text)
      (dead_keys absint)
  in
  let pclass, extra_diag =
    match r.Bmc.Prove.r_verdict with
    | Bmc.Prove.Violated w -> (
        match replay f ~id w with
        | Confirmed cycle -> (Verdict.Bviolated cycle, None)
        | Refuted msg ->
            ( Verdict.Bunknown ("counterexample failed replay: " ^ msg),
              Some
                (Verdict.replay_divergence ~proc:info.Assertion.aproc
                   ~loc:info.Assertion.aloc ~text:info.Assertion.text msg) ))
    | Bmc.Prove.Proved_induction k -> (Verdict.Bproved k, None)
    | Bmc.Prove.Bounded d -> (Verdict.Bbounded d, None)
    | Bmc.Prove.Unknown m -> (Verdict.Bunknown m, None)
  in
  let reach =
    match r.Bmc.Prove.r_reach with
    | Bmc.Prove.Reachable c -> Verdict.Breachable c
    | Bmc.Prove.Unreachable_to d -> Verdict.Bunreachable d
    | Bmc.Prove.Reach_unknown m -> Verdict.Breach_unknown m
  in
  ( {
      Verdict.pr_id = id;
      pr_proc = info.Assertion.aproc;
      pr_loc = info.Assertion.aloc;
      pr_text = info.Assertion.text;
      pr_class = pclass;
      pr_reach = reach;
      pr_dead_lint = dead_lint;
      pr_conflicts = r.Bmc.Prove.r_conflicts;
      pr_decisions = r.Bmc.Prove.r_decisions;
      pr_propagations = r.Bmc.Prove.r_propagations;
    },
    extra_diag )

(** All assertion ids of a front, in {!Assertion.extract} order. *)
let target_ids (f : Driver.front) : int list =
  List.map (fun (a : Assertion.info) -> a.Assertion.id) f.Driver.f_asserts

(** Prove every assertion of [prog] sequentially.  Parallel sweeps live
    above core (on {!Exec.Pool}); they call {!front_of} +
    {!check_target} per assertion and assemble the same report. *)
let prove ?depth ?induction ?conflict_limit (prog : program) :
    Verdict.report * Analysis.Diag.t list =
  let f = front_of prog in
  let absint = Analysis.Absint.analyze prog in
  let outcomes =
    List.map
      (fun id -> check_target ?depth ?induction ?conflict_limit f ~absint id)
      (target_ids f)
  in
  let results = List.map fst outcomes in
  let diags =
    List.filter_map Verdict.diag_of results
    @ List.filter_map snd outcomes
  in
  ( {
      Verdict.p_depth = (match depth with Some d -> d | None -> 12);
      p_induction = (match induction with Some k -> k | None -> 0);
      p_results = results;
    },
    Analysis.Diag.order diags )

(** The (proc, loc, text) keys of every induction-proved assertion in a
    report — the [?induction_proved] argument of {!Driver.front}. *)
let induction_proved_keys (rep : Verdict.report) : (string * Loc.t * string) list =
  List.filter_map
    (fun (r : Verdict.presult) ->
      match r.Verdict.pr_class with
      | Verdict.Bproved _ -> Some (r.Verdict.pr_proc, r.Verdict.pr_loc, r.Verdict.pr_text)
      | _ -> None)
    rep.Verdict.p_results
