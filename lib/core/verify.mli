(** Netlist-level assertion verification: BMC + k-induction over the
    synthesized design ({!Bmc}), with solver witnesses replayed through
    {!Sim.Engine} before anything is reported Violated.  Results use the
    shared {!Analysis.Verdict} classification (INCA-B codes). *)

module Loc = Front.Loc
module Verdict = Analysis.Verdict

(** The strategy BMC compiles under: parallelized checkers, NABORT. *)
val strategy : Driver.strategy

val front_of : Front.Ast.program -> Driver.front

(** (streams read, streams written) anywhere in the program, in
    first-occurrence order — the auto-testbench role classification. *)
val stream_roles : Front.Ast.program -> string list * string list

(** The symbolic-model configuration for a front: feeds/drains from the
    source's stream roles, every process parameter free, tap conditions
    from the synthesized checkers. *)
val model_config : Driver.front -> Bmc.Model.config

type replay_outcome =
  | Confirmed of int  (** fire cycle observed in the engine *)
  | Refuted of string

(** Replay a solver witness through the cycle-accurate simulator;
    [Confirmed c] means assertion [id]'s tap fired with a false
    condition at engine cycle [c]. *)
val replay : Driver.front -> id:int -> Bmc.Prove.witness -> replay_outcome

(** Check one assertion end to end (BMC, optional induction, replay,
    lint-L105 cross-reference).  The second component is the INCA-B006
    divergence diagnostic when a witness failed replay.  Pure apart from
    solver allocation: sweeps run it per-assertion on {!Exec.Pool}. *)
val check_target :
  ?depth:int ->
  ?induction:int ->
  ?conflict_limit:int ->
  Driver.front ->
  absint:Analysis.Absint.result ->
  int ->
  Verdict.presult * Analysis.Diag.t option

(** Assertion ids of a front, in {!Assertion.extract} order. *)
val target_ids : Driver.front -> int list

(** Prove every assertion sequentially; returns the report plus ordered
    diagnostics (INCA-B001/2/4/5/6 as applicable). *)
val prove :
  ?depth:int ->
  ?induction:int ->
  ?conflict_limit:int ->
  Front.Ast.program ->
  Verdict.report * Analysis.Diag.t list

(** (proc, loc, text) keys of the induction-proved assertions of a
    report — feed these to {!Driver.front}'s [?induction_proved]. *)
val induction_proved_keys : Verdict.report -> (string * Loc.t * string) list
