(** Two-tier content-hash compile cache.

    A fault-injection sweep compiles hundreds of mutants that differ
    only in the injected IR rewrite; everything before fault injection —
    assertion synthesis, lowering, IR optimization, checker synthesis —
    is identical per (program, strategy).  This cache memoizes exactly
    that prefix ({!Core.Driver.front}), keyed by a digest of the
    pretty-printed program and the strategy identity, so the ~5
    strategies x hundreds-of-mutants sweep stops recompiling identical
    baselines.

    The in-memory tier dies with the process; the optional on-disk tier
    (enabled by [INCA_CACHE_DIR] or {!set_dir}) is a content-addressed
    store that persists fronts — and, through the generic blob API,
    campaign baseline snapshots — across processes, so repeated [inca
    campaign]/[mine]/[bench] sessions start warm.  Disk entries are
    written atomically (temp file + rename) with a versioned header that
    includes a digest of the running executable: fronts contain
    closures, and [Marshal.Closures] images are only valid within the
    binary that produced them.  A corrupt, truncated or incompatible
    entry is treated as a miss, never an error.

    Concurrency: the table is mutex-guarded and safe to hit from every
    worker domain; fronts are immutable, so one cached value is shared
    by concurrent {!Core.Driver.finish} calls.  A compile on miss runs
    {e outside} the lock — two domains racing on the same key may
    duplicate work, but the first insert wins and both observe the same
    value.  {!Faults.Campaign.run} pre-warms the cache serially per
    (workload, strategy), which also keeps the hit/miss counters
    deterministic regardless of the worker count. *)

module Driver = Core.Driver

type stats = { hits : int; misses : int; disk_hits : int; disk_misses : int }

let lock = Mutex.create ()
let table : (string, Driver.front) Hashtbl.t = Hashtbl.create 64
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let disk_hit_count = Atomic.make 0
let disk_miss_count = Atomic.make 0

(* --- Disk tier -------------------------------------------------------------- *)

let magic = "INCA-CACHE"
let format_version = 1

(* Marshalled closures are only valid inside the binary that wrote
   them: stamp every entry with the executable's digest. *)
let exe_digest =
  lazy (try Digest.file Sys.executable_name with _ -> Digest.string "unknown")

let cache_dir : string option ref = ref (Sys.getenv_opt "INCA_CACHE_DIR")

let set_dir d = cache_dir := d
let dir () = !cache_dir

let header () =
  Printf.sprintf "%s\x01%d\x01%s\x01" magic format_version
    (Digest.to_hex (Lazy.force exe_digest))

(* Keys are hex digests and kinds are short identifiers, so a flat
   [dir/kind-key.bin] layout needs no subdirectories. *)
let entry_path dir ~kind ~key = Filename.concat dir (kind ^ "-" ^ key ^ ".bin")

let ensure_dir d =
  try
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    true
  with _ -> Sys.file_exists d && Sys.is_directory d

(* Atomic publish: write a private temp file, then rename into place.
   Readers either see the old entry, the new entry, or nothing. *)
let disk_store ~kind ~key (v : 'a) =
  match !cache_dir with
  | None -> ()
  | Some d -> (
      try
        if ensure_dir d then begin
          let path = entry_path d ~kind ~key in
          let tmp =
            Filename.concat d
              (Printf.sprintf ".tmp-%d-%s-%s" (Unix.getpid ()) kind key)
          in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (header ());
              Marshal.to_channel oc v [ Marshal.Closures ]);
          Sys.rename tmp path
        end
      with _ -> ())

(* Any failure — missing file, short read, bad header, marshal error —
   is a miss.  A hit refreshes the entry's mtime so GC is LRU-ish. *)
let disk_load ~kind ~key : 'a option =
  match !cache_dir with
  | None -> None
  | Some d -> (
      let path = entry_path d ~kind ~key in
      match open_in_bin path with
      | exception _ -> None
      | ic -> (
          let r =
            try
              let h = header () in
              let buf = really_input_string ic (String.length h) in
              if buf <> h then None else Some (Marshal.from_channel ic)
            with _ -> None
          in
          close_in_noerr ic;
          (try Unix.utimes path 0.0 0.0 with _ -> ());
          r))

let disk_enabled () = !cache_dir <> None

(* --- Keys ------------------------------------------------------------------- *)

(* The induction-pruned assertion set is part of the front's identity:
   a front compiled with checkers pruned by a k-induction proof must
   never be served for a request without that pruning (and vice versa),
   exactly like the strategy fields. *)
let pruned_id (induction_proved : (string * Front.Loc.t * string) list) =
  String.concat "\x01"
    (List.map
       (fun (p, (loc : Front.Loc.t), text) ->
         Printf.sprintf "%s:%d:%d:%s" p loc.Front.Loc.line loc.Front.Loc.col text)
       induction_proved)

(** The cache key: a digest of the pretty-printed program, the
    {!Core.Driver.strategy_id} and the induction-pruned assertion set —
    content identity, not physical identity, so re-parsed or
    re-instrumented copies of the same program still hit. *)
let key ?(induction_proved = []) ~(strategy : Driver.strategy)
    (prog : Front.Ast.program) =
  Digest.to_hex
    (Digest.string
       (Driver.strategy_id strategy ^ "\x00"
       ^ pruned_id induction_proved
       ^ "\x00"
       ^ Front.Pretty.program_to_string prog))

(* --- Fronts ----------------------------------------------------------------- *)

(** Memoized {!Core.Driver.front}: memory tier first, then the disk
    store, then a real compile (published to both tiers). *)
let front ?(strategy = Driver.optimized) ?(induction_proved = [])
    (prog : Front.Ast.program) : Driver.front =
  let k = key ~induction_proved ~strategy prog in
  let cached =
    Mutex.lock lock;
    let r = Hashtbl.find_opt table k in
    Mutex.unlock lock;
    r
  in
  match cached with
  | Some f ->
      Atomic.incr hit_count;
      f
  | None ->
      Atomic.incr miss_count;
      let from_disk =
        if not (disk_enabled ()) then None
        else begin
          let r = (disk_load ~kind:"front" ~key:k : Driver.front option) in
          (match r with
          | Some _ -> Atomic.incr disk_hit_count
          | None -> Atomic.incr disk_miss_count);
          r
        end
      in
      let f =
        match from_disk with
        | Some f -> f
        | None ->
            let f = Driver.front ~strategy ~induction_proved prog in
            if disk_enabled () then disk_store ~kind:"front" ~key:k f;
            f
      in
      Mutex.lock lock;
      let f =
        match Hashtbl.find_opt table k with
        | Some winner -> winner (* another domain inserted first *)
        | None ->
            Hashtbl.add table k f;
            f
      in
      Mutex.unlock lock;
      f

(** [Driver.compile] through the cache: the fault-independent prefix is
    memoized, fault injection and scheduling run per call. *)
let compile ?strategy ?induction_proved ?faults (prog : Front.Ast.program) :
    Driver.compiled =
  Driver.finish ?faults (front ?strategy ?induction_proved prog)

(* --- Generic blobs ---------------------------------------------------------- *)

(** Persist an arbitrary (closure-free or not) value under (kind, key).
    No-ops when the disk tier is disabled.  The campaign stores baseline
    engine snapshots this way. *)
let store_blob ~kind ~key (v : 'a) = disk_store ~kind ~key v

(** Fetch a blob; [None] on any miss (disabled tier, absent, corrupt,
    different binary).  Counted in the disk hit/miss statistics. *)
let load_blob ~kind ~key : 'a option =
  if not (disk_enabled ()) then None
  else begin
    let r = disk_load ~kind ~key in
    (match r with
    | Some _ -> Atomic.incr disk_hit_count
    | None -> Atomic.incr disk_miss_count);
    r
  end

(* --- Statistics and maintenance --------------------------------------------- *)

let stats () =
  {
    hits = Atomic.get hit_count;
    misses = Atomic.get miss_count;
    disk_hits = Atomic.get disk_hit_count;
    disk_misses = Atomic.get disk_miss_count;
  }

(** Drop every cached front from the in-memory tier and zero the
    counters.  The disk store is deliberately untouched — bench cold
    runs must not silently wipe a persistent artifact store. *)
let reset_memory () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock;
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set disk_hit_count 0;
  Atomic.set disk_miss_count 0

(** Backwards-compatible alias for {!reset_memory}. *)
let reset () = reset_memory ()

let is_entry name =
  Filename.check_suffix name ".bin" && not (String.length name > 0 && name.[0] = '.')

let entry_files d =
  match Sys.readdir d with
  | exception _ -> []
  | names ->
      Array.to_list names
      |> List.filter is_entry
      |> List.filter_map (fun n ->
             let path = Filename.concat d n in
             match Unix.stat path with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                 Some (path, st_size, st_mtime)
             | _ | (exception _) -> None)

type disk_stats = { entries : int; bytes : int }

(** Entry count and total size of the disk store ([None] when the disk
    tier is disabled). *)
let disk_stats () =
  match !cache_dir with
  | None -> None
  | Some d ->
      let files = entry_files d in
      Some
        {
          entries = List.length files;
          bytes = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 files;
        }

(** Delete every entry in the disk store (the store directory itself is
    kept).  Explicit by design: see {!reset_memory}. *)
let clear_disk () =
  match !cache_dir with
  | None -> ()
  | Some d ->
      List.iter (fun (path, _, _) -> try Sys.remove path with _ -> ()) (entry_files d)

(** LRU eviction: delete oldest-touched entries until the store holds at
    most [max_bytes].  Returns the number of entries removed. *)
let gc ~max_bytes =
  match !cache_dir with
  | None -> 0
  | Some d ->
      let files =
        entry_files d |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
        (* newest first *)
      in
      let removed = ref 0 in
      let total = ref 0 in
      List.iter
        (fun (path, sz, _) ->
          total := !total + sz;
          if !total > max_bytes then begin
            (try
               Sys.remove path;
               incr removed
             with _ -> ())
          end)
        files;
      !removed
