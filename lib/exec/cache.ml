(** Content-hash compile cache.

    A fault-injection sweep compiles hundreds of mutants that differ
    only in the injected IR rewrite; everything before fault injection —
    assertion synthesis, lowering, IR optimization, checker synthesis —
    is identical per (program, strategy).  This cache memoizes exactly
    that prefix ({!Core.Driver.front}), keyed by a digest of the
    pretty-printed program and the strategy identity, so the ~5
    strategies x hundreds-of-mutants sweep stops recompiling identical
    baselines.

    Concurrency: the table is mutex-guarded and safe to hit from every
    worker domain; fronts are immutable, so one cached value is shared
    by concurrent {!Core.Driver.finish} calls.  A compile on miss runs
    {e outside} the lock — two domains racing on the same key may
    duplicate work, but the first insert wins and both observe the same
    value.  {!Faults.Campaign.run} pre-warms the cache serially per
    (workload, strategy), which also keeps the hit/miss counters
    deterministic regardless of the worker count. *)

module Driver = Core.Driver

type stats = { hits : int; misses : int }

let lock = Mutex.create ()
let table : (string, Driver.front) Hashtbl.t = Hashtbl.create 64
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0

(* The induction-pruned assertion set is part of the front's identity:
   a front compiled with checkers pruned by a k-induction proof must
   never be served for a request without that pruning (and vice versa),
   exactly like the strategy fields. *)
let pruned_id (induction_proved : (string * Front.Loc.t * string) list) =
  String.concat "\x01"
    (List.map
       (fun (p, (loc : Front.Loc.t), text) ->
         Printf.sprintf "%s:%d:%d:%s" p loc.Front.Loc.line loc.Front.Loc.col text)
       induction_proved)

(** The cache key: a digest of the pretty-printed program, the
    {!Core.Driver.strategy_id} and the induction-pruned assertion set —
    content identity, not physical identity, so re-parsed or
    re-instrumented copies of the same program still hit. *)
let key ?(induction_proved = []) ~(strategy : Driver.strategy)
    (prog : Front.Ast.program) =
  Digest.to_hex
    (Digest.string
       (Driver.strategy_id strategy ^ "\x00"
       ^ pruned_id induction_proved
       ^ "\x00"
       ^ Front.Pretty.program_to_string prog))

(** Memoized {!Core.Driver.front}. *)
let front ?(strategy = Driver.optimized) ?(induction_proved = [])
    (prog : Front.Ast.program) : Driver.front =
  let k = key ~induction_proved ~strategy prog in
  let cached =
    Mutex.lock lock;
    let r = Hashtbl.find_opt table k in
    Mutex.unlock lock;
    r
  in
  match cached with
  | Some f ->
      Atomic.incr hit_count;
      f
  | None ->
      Atomic.incr miss_count;
      let f = Driver.front ~strategy ~induction_proved prog in
      Mutex.lock lock;
      let f =
        match Hashtbl.find_opt table k with
        | Some winner -> winner (* another domain inserted first *)
        | None ->
            Hashtbl.add table k f;
            f
      in
      Mutex.unlock lock;
      f

(** [Driver.compile] through the cache: the fault-independent prefix is
    memoized, fault injection and scheduling run per call. *)
let compile ?strategy ?induction_proved ?faults (prog : Front.Ast.program) :
    Driver.compiled =
  Driver.finish ?faults (front ?strategy ?induction_proved prog)

let stats () = { hits = Atomic.get hit_count; misses = Atomic.get miss_count }

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock;
  Atomic.set hit_count 0;
  Atomic.set miss_count 0
