(** Content-hash compile cache over {!Core.Driver.front}.

    Memoizes the fault-independent prefix of a compile, keyed by a
    digest of (pretty-printed program, strategy identity).  Safe to hit
    from every worker domain; cached fronts are immutable and shared.
    The process-wide instance deliberately spans campaign and mining
    sweeps — a ranking run re-evaluates the same base program dozens of
    times and hits across sweeps. *)

type stats = { hits : int; misses : int }

(** The cache key for a (program, strategy, induction-pruned set)
    triple (exposed for tests).  The pruned assertion keys are part of
    the front's identity: a front with checkers removed by a
    k-induction proof must never be served for an unpruned request. *)
val key :
  ?induction_proved:(string * Front.Loc.t * string) list ->
  strategy:Core.Driver.strategy ->
  Front.Ast.program ->
  string

(** Memoized {!Core.Driver.front}: physically the same front for equal
    (program, strategy, induction-pruned set) content. *)
val front :
  ?strategy:Core.Driver.strategy ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  Front.Ast.program ->
  Core.Driver.front

(** [Driver.compile] through the cache: the fault-independent prefix is
    memoized, fault injection and scheduling run per call. *)
val compile :
  ?strategy:Core.Driver.strategy ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  ?faults:Faults.Fault.t list ->
  Front.Ast.program ->
  Core.Driver.compiled

(** Cumulative hit/miss counters since start or the last {!reset}. *)
val stats : unit -> stats

(** Drop every cached front and zero the counters (bench harness
    resets between timed runs so each run is measured cold). *)
val reset : unit -> unit
