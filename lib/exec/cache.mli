(** Two-tier content-hash compile cache over {!Core.Driver.front}.

    Memoizes the fault-independent prefix of a compile, keyed by a
    digest of (pretty-printed program, strategy identity).  Safe to hit
    from every worker domain; cached fronts are immutable and shared.
    The process-wide instance deliberately spans campaign and mining
    sweeps — a ranking run re-evaluates the same base program dozens of
    times and hits across sweeps.

    The optional disk tier — enabled by the [INCA_CACHE_DIR] environment
    variable or {!set_dir} — is a content-addressed store that persists
    fronts and arbitrary blobs (campaign baseline snapshots) across
    processes.  Entries are written atomically with a versioned header
    bound to the running executable; corrupt or incompatible entries
    read as misses, never errors. *)

type stats = { hits : int; misses : int; disk_hits : int; disk_misses : int }

(** Point the disk tier at a directory ([None] disables it).  Initially
    taken from [INCA_CACHE_DIR] when set. *)
val set_dir : string option -> unit

(** The disk store directory currently in use, if any. *)
val dir : unit -> string option

(** The cache key for a (program, strategy, induction-pruned set)
    triple (exposed for tests).  The pruned assertion keys are part of
    the front's identity: a front with checkers removed by a
    k-induction proof must never be served for an unpruned request. *)
val key :
  ?induction_proved:(string * Front.Loc.t * string) list ->
  strategy:Core.Driver.strategy ->
  Front.Ast.program ->
  string

(** Memoized {!Core.Driver.front}: physically the same front for equal
    (program, strategy, induction-pruned set) content within a process;
    across processes the disk tier is consulted before compiling. *)
val front :
  ?strategy:Core.Driver.strategy ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  Front.Ast.program ->
  Core.Driver.front

(** [Driver.compile] through the cache: the fault-independent prefix is
    memoized, fault injection and scheduling run per call. *)
val compile :
  ?strategy:Core.Driver.strategy ->
  ?induction_proved:(string * Front.Loc.t * string) list ->
  ?faults:Faults.Fault.t list ->
  Front.Ast.program ->
  Core.Driver.compiled

(** Persist an arbitrary value under (kind, key) in the disk store.
    No-op when the disk tier is disabled. *)
val store_blob : kind:string -> key:string -> 'a -> unit

(** Fetch a blob; [None] on any miss (disabled tier, absent, corrupt,
    written by a different binary).  The caller guarantees the expected
    type matches what {!store_blob} stored under this (kind, key). *)
val load_blob : kind:string -> key:string -> 'a option

(** Cumulative counters since start or the last {!reset_memory}:
    [hits]/[misses] for the in-memory tier, [disk_hits]/[disk_misses]
    for disk-store consultations (front misses and blob loads). *)
val stats : unit -> stats

(** Drop every cached front from the in-memory tier and zero the
    counters (bench harness resets between timed runs so each run is
    measured cold).  The disk store is deliberately untouched. *)
val reset_memory : unit -> unit

(** Backwards-compatible alias for {!reset_memory}. *)
val reset : unit -> unit

type disk_stats = { entries : int; bytes : int }

(** Entry count and total size of the disk store ([None] when the disk
    tier is disabled). *)
val disk_stats : unit -> disk_stats option

(** Delete every entry in the disk store; the directory is kept. *)
val clear_disk : unit -> unit

(** LRU eviction by last-touch time: delete oldest entries until at most
    [max_bytes] remain.  Returns the number of entries removed. *)
val gc : max_bytes:int -> int
