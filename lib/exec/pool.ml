(** Work-stealing parallel job executor on OCaml 5 domains.

    The fault-injection campaign and the mining ranker evaluate hundreds
    of near-identical mutants whose runs are pure and independent — the
    textbook embarrassingly-parallel sweep.  This pool runs a fixed
    array of jobs over N worker domains with per-job crash isolation
    and bounded retry, and returns the outcomes {e indexed by job}, so
    parallel output is byte-identical to serial output regardless of
    completion order.

    Determinism rules (see DESIGN.md):
    - jobs must be pure up to their own allocations — no shared mutable
      state, no wall-clock reads, no ambient RNG (derive any seed from
      the job index the caller closes over);
    - results are collected by job index, never by completion order;
    - [jobs = 1] bypasses domains entirely and runs inline, so the
      serial fallback exercises the exact same code path as the caller
      would have written by hand.

    Timeouts are logical, not preemptive: a domain cannot be killed, so
    runaway jobs must bound themselves (the campaign's per-mutant cycle
    budget and live-lock watchdog do exactly that). *)

(** The result of one job: [value] is [Error msg] when every attempt
    raised ([msg] is the first attempt's exception, matching the
    diagnostics of an unretried run); [attempts] counts executions, so
    [attempts > 1] means the first attempt crashed and the job was
    retried. *)
type 'a outcome = { value : ('a, string) result; attempts : int }

let env_jobs () =
  match Sys.getenv_opt "INCA_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

(** Worker-domain count used when the caller does not pick one: the
    [INCA_JOBS] environment variable if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* One deque per worker, mutex-guarded: the owner pops from the front,
   thieves steal from the back.  Jobs are only ever enqueued once, before
   the workers start, so a worker that sees every deque empty is done. *)
type deque = {
  lock : Mutex.t;
  slots : int array;
  mutable head : int;  (* next index the owner pops *)
  mutable tail : int;  (* one past the last stealable index *)
}

let pop_front d =
  Mutex.lock d.lock;
  let r =
    if d.head < d.tail then (
      let j = d.slots.(d.head) in
      d.head <- d.head + 1;
      Some j)
    else None
  in
  Mutex.unlock d.lock;
  r

let steal_back d =
  Mutex.lock d.lock;
  let r =
    if d.head < d.tail then (
      let j = d.slots.(d.tail - 1) in
      d.tail <- d.tail - 1;
      Some j)
    else None
  in
  Mutex.unlock d.lock;
  r

(* Crash isolation: catch everything, retry up to [retries] extra times,
   and report the first exception when all attempts fail. *)
let run_attempts ~retries fn =
  let rec go attempt first_err =
    match fn () with
    | v -> { value = Ok v; attempts = attempt }
    | exception e ->
        let msg =
          match first_err with Some m -> m | None -> Printexc.to_string e
        in
        if attempt > retries then { value = Error msg; attempts = attempt }
        else go (attempt + 1) (Some msg)
  in
  go 1 None

(** Run every job of [fns] and return the outcomes in job order.
    [jobs] worker domains (default {!default_jobs}; clamped to the job
    count; [1] runs inline on the calling domain without spawning).
    [retries] is the number of extra attempts after a crash (default 1,
    the campaign's historical crash-isolation policy). *)
let run ?jobs ?(retries = 1) (fns : (unit -> 'a) array) : 'a outcome array =
  let n = Array.length fns in
  let jobs =
    let requested = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
    Stdlib.min requested (Stdlib.max 1 n)
  in
  if n = 0 then [||]
  else if jobs = 1 then Array.map (fun fn -> run_attempts ~retries fn) fns
  else begin
    let results : 'a outcome option array = Array.make n None in
    (* deal each worker a contiguous block; stealing rebalances the tail *)
    let deques =
      Array.init jobs (fun w ->
          let lo = w * n / jobs and hi = (w + 1) * n / jobs in
          {
            lock = Mutex.create ();
            slots = Array.init (hi - lo) (fun i -> lo + i);
            head = 0;
            tail = hi - lo;
          })
    in
    let exec j = results.(j) <- Some (run_attempts ~retries fns.(j)) in
    let worker w =
      let rec steal k =
        if k >= jobs then None
        else
          match steal_back deques.((w + k) mod jobs) with
          | Some j -> Some j
          | None -> steal (k + 1)
      in
      let rec loop () =
        match pop_front deques.(w) with
        | Some j ->
            exec j;
            loop ()
        | None -> (
            match steal 1 with
            | Some j ->
                exec j;
                loop ()
            | None -> ())
      in
      loop ()
    in
    let spawned =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some o -> o
        | None ->
            (* unreachable: every enqueued index is popped exactly once
               and executed before its worker exits *)
            assert false)
      results
  end

(** [map f items] = {!run} over [fun () -> f item], outcomes in input
    order. *)
let map ?jobs ?retries f items =
  Array.to_list
    (run ?jobs ?retries (Array.of_list (List.map (fun x () -> f x) items)))
