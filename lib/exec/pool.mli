(** Work-stealing parallel job executor on OCaml 5 domains.

    Runs a fixed array of pure, independent jobs over N worker domains
    with per-job crash isolation and bounded retry.  Outcomes are
    returned {e indexed by job}, never by completion order, so parallel
    output is byte-identical to serial output.

    Determinism contract for jobs: no shared mutable state, no
    wall-clock reads, no ambient RNG (derive seeds from the job index
    the closure captures).  Timeouts are logical, not preemptive — a
    domain cannot be killed, so jobs must bound themselves (the
    campaign's cycle budget and live-lock watchdog do exactly that). *)

(** The result of one job: [value] is [Error msg] when every attempt
    raised ([msg] reports the first attempt's exception); [attempts]
    counts executions, so [attempts > 1] means the first attempt
    crashed and the job was retried. *)
type 'a outcome = { value : ('a, string) result; attempts : int }

(** Worker-domain count used when the caller does not pick one: the
    [INCA_JOBS] environment variable if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** Run every job and return the outcomes in job order.  [jobs] worker
    domains (default {!default_jobs}, clamped to the job count); [1]
    runs inline on the calling domain without spawning any domain.
    [retries] extra attempts per crashed job (default 1). *)
val run : ?jobs:int -> ?retries:int -> (unit -> 'a) array -> 'a outcome array

(** [map f items]: {!run} over [fun () -> f item], outcomes in input
    order. *)
val map : ?jobs:int -> ?retries:int -> ('a -> 'b) -> 'a list -> 'b outcome list
