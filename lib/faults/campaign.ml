(** Fault-injection campaign engine (paper Section 5).

    The paper validates in-circuit assertions by injecting the
    hardware-translation bugs its authors met in practice and checking
    that the synthesized assertions catch them.  This module turns that
    spot check into a campaign: enumerate {e every} candidate fault site
    of a lowered program ({!Fault.sites}), compile one mutant per site
    under each assertion-synthesis strategy, run it in the cycle-accurate
    simulator under a per-mutant cycle budget with the live-lock watchdog
    armed, and classify the outcome against the software-simulation
    golden output.  The aggregated table is an {e assertion-coverage
    report}: which translation faults does each strategy actually
    detect, and how many cycles does detection take? *)

module Driver = Core.Driver
module Engine = Sim.Engine
module Fault = Faults.Fault
module Prefilter = Faults.Prefilter

(* --- workloads ---------------------------------------------------------- *)

type workload = {
  wname : string;
  program : Front.Ast.program;
  options : Driver.sim_options;  (** feeds / drains / params for one run *)
}

let workload ~name ?file ~feeds ~drains ~params source =
  let file = match file with Some f -> f | None -> name ^ ".c" in
  let program = Front.Typecheck.parse_and_check ~file source in
  {
    wname = name;
    program;
    options = { Driver.default_sim_options with Driver.feeds; drains; params };
  }

(** The five bundled case-study applications, sized so a full sweep
    stays interactive. *)
let bundled () =
  let fir =
    let n = 32 in
    let signal = Apps.Fir_ref.test_signal n in
    workload ~name:"fir"
      ~feeds:[ ("samples_in", Apps.Fir_ref.to_stream signal) ]
      ~drains:[ "samples_out" ]
      ~params:[ ("fir", [ ("n", Int64.of_int n) ]) ]
      (Apps.Fir_src.source ())
  in
  let dct =
    let blocks = 2 in
    let samples = Apps.Dct_ref.test_blocks blocks in
    workload ~name:"dct"
      ~feeds:[ ("dct_in", Apps.Dct_ref.to_stream samples) ]
      ~drains:[ "dct_out" ]
      ~params:[ ("dct", [ ("nblocks", Int64.of_int blocks) ]) ]
      (Apps.Dct_src.source ())
  in
  let des =
    let text = "IN-CIRCUIT ABV!!" in
    let cipher = Apps.Des_src.demo_ciphertext text in
    workload ~name:"des3"
      ~feeds:[ ("cipher_in", cipher) ]
      ~drains:[ "plain_out" ]
      ~params:[ ("des3", [ ("nblocks", Int64.of_int (List.length cipher)) ]) ]
      (Apps.Des_src.demo_source ())
  in
  let edge =
    let w = Apps.Edge_src.default_width and h = 8 in
    let img = Apps.Edge_ref.test_image ~w ~h in
    workload ~name:"edge"
      ~feeds:[ ("pixels_in", Apps.Edge_ref.to_stream img) ]
      ~drains:[ "pixels_out" ]
      ~params:
        [ ("edge", [ ("width", Int64.of_int w); ("height", Int64.of_int h) ]) ]
      (Apps.Edge_src.demo_source ())
  in
  let pulse =
    let n = 4096 in
    let signal = Apps.Pulse_src.test_signal n in
    workload ~name:"pulse"
      ~feeds:[ ("pulse_in", Apps.Pulse_src.to_stream signal) ]
      ~drains:[ "stats_out" ]
      ~params:[ ("pulse", [ ("n", Int64.of_int n) ]) ]
      (Apps.Pulse_src.source ())
  in
  [ fir; dct; des; edge; pulse ]

(* --- configuration ------------------------------------------------------ *)

(** How mutants are evaluated.  [Fork] (the default) compiles one
    padded design per (workload, strategy), runs the unfaulted baseline
    once to record when each fault site first activates, and evaluates
    each mutant by restoring the engine snapshot taken just before its
    site's first activation — skipping both the per-mutant compile and
    the shared simulation prefix.  [From_reset] is the escape hatch:
    compile and simulate every mutant from cycle zero, exactly the
    pre-split-stream behaviour.  Both modes produce the same
    classification for every mutant (CI diffs the {!render_classes}
    maps); cycle counts may legitimately differ because padding
    perturbs the schedule. *)
type mode = Fork | From_reset

type config = {
  mode : mode;
  strategies : (string * Driver.strategy) list;
  budget : int option;
      (** per-mutant cycle budget; [None] = 4x the unfaulted baseline
          cycle count of the workload, plus slack *)
  watchdog : int option;
      (** live-lock watchdog window; [None] = budget / 20, floor 200 *)
  max_mutants : int option;
      (** per-workload cap, taken round-robin across fault kinds so a
          truncated campaign still exercises every kind; the report
          records how many sites were dropped *)
  jobs : int option;
      (** worker domains for the mutant sweep; [None] =
          {!Exec.Pool.default_jobs} ([INCA_JOBS] or all cores);
          [Some 1] runs serially without spawning any domain.  The
          report is byte-identical for every job count. *)
  prune_hangs : bool;
      (** let the liveness pre-filter ({!Prefilter.hang_verdicts})
          classify provably blocking mutants [Hang_detected] without
          simulating them; [false] simulates every such mutant (the
          reference the CI classification-identity gate compares
          against) *)
}

(** Every canonical strategy except the carte transport flavour (the
    DMA mailbox changes reporting, not detection — the sweep covers it
    on demand). *)
let default_strategies =
  List.filter (fun (name, _) -> name <> "carte") Driver.all_strategies

let default_config =
  { mode = Fork; strategies = default_strategies; budget = None; watchdog = None;
    max_mutants = None; jobs = None; prune_hangs = true }

(* --- classification ----------------------------------------------------- *)

type outcome_class =
  | Detected_by_assertion  (** a synthesized assertion aborted the run *)
  | Hang_detected  (** deadlock detector or live-lock watchdog fired *)
  | Silent_corruption
      (** the run finished with wrong output, or crashed the toolchain *)
  | Benign  (** finished with output equal to the golden run *)
  | Budget_exceeded  (** still running at the cycle budget *)

let class_name = function
  | Detected_by_assertion -> "assertion"
  | Hang_detected -> "hang"
  | Silent_corruption -> "silent"
  | Benign -> "benign"
  | Budget_exceeded -> "budget"

(** Detection means the platform raised a flag the engineer can act on:
    an assertion notification or a hang/live-lock report. *)
let detected = function
  | Detected_by_assertion | Hang_detected -> true
  | Silent_corruption | Benign | Budget_exceeded -> false

(** Structured outcome diagnostics.  Runs keep the raw data (spin
    sites, differing drains) and the report renders it on demand —
    classification no longer formats strings inside the sweep's hot
    loop. *)
type detail =
  | No_detail
  | Message of string  (** assertion text, toolchain crash, sim error *)
  | Spin of { label : string; sites : (string * int) list }
      (** "live-lock" or "deadlock", with (process, state) spin sites *)
  | Output_diff of string list  (** drains whose output differs from golden *)

type run = {
  workload : string;
  strategy : string;
  fault : Fault.t;
  outcome : outcome_class;
  detail : detail;  (** assertion message, spin sites, or output diff *)
  cycles : int;  (** cycles consumed (cycles to detection when detected) *)
  retried : bool;  (** first attempt crashed; this is the retry's result *)
}

type strategy_summary = {
  strategy : string;
  mutants : int;
  by_assertion : int;
  by_hang : int;
  silent : int;
  benign : int;
  over_budget : int;
  mean_detection_cycles : float option;
      (** mean cycles-to-detection over detected mutants *)
}

type report = {
  workloads : string list;
  site_count : int;  (** mutants swept per strategy (after any cap) *)
  dropped : int;  (** sites dropped by [max_mutants] *)
  kind_counts : (string * int) list;  (** sites per fault kind *)
  pruned_static : int;
      (** mutant runs the static pre-filter proved equivalent or dead
          and classified [Benign] without simulating *)
  pruned_hang : int;
      (** mutant runs the liveness pre-filter proved certainly blocking
          and classified [Hang_detected] without simulating *)
  runs : run list;
  summaries : strategy_summary list;
}

(* --- campaign ----------------------------------------------------------- *)

let enumerate (w : workload) : Fault.t list =
  (* sites live in the pre-fault lowered IR, so the cached compile
     front is all that is needed *)
  Fault.sites (Exec.Cache.front ~strategy:Driver.baseline w.program).Driver.f_ir

(* Take [n] sites round-robin across fault kinds, preserving order
   within a kind, so a capped campaign still exercises every kind. *)
let cap_round_robin n faults =
  let kinds =
    List.fold_left
      (fun acc f ->
        let k = Fault.kind_name f in
        if List.mem_assoc k acc then acc else acc @ [ (k, ref []) ])
      [] faults
  in
  List.iter (fun f -> let q = List.assoc (Fault.kind_name f) kinds in q := f :: !q) faults;
  let queues = List.map (fun (k, q) -> (k, ref (List.rev !q))) kinds in
  let out = ref [] and left = ref n and progress = ref true in
  while !left > 0 && !progress do
    progress := false;
    List.iter
      (fun (_, q) ->
        if !left > 0 then
          match !q with
          | [] -> ()
          | f :: tl ->
              q := tl;
              out := f :: !out;
              decr left;
              progress := true)
      queues
  done;
  List.rev !out

(* Rendering of structured diagnostics, run once per displayed row (not
   inside the sweep's hot loop). *)
let detail_string = function
  | No_detail -> ""
  | Message m -> m
  | Spin { label; sites } ->
      let b = Buffer.create 64 in
      Buffer.add_string b label;
      Buffer.add_string b ": ";
      List.iteri
        (fun i (p, st) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b p;
          Buffer.add_char b '@';
          Buffer.add_string b (string_of_int st))
        sites;
      Buffer.contents b
  | Output_diff drains ->
      "output differs on " ^ String.concat ", " drains

let drained_equal ~drains golden actual =
  List.for_all
    (fun s ->
      let get l = try List.assoc s l with Not_found -> [] in
      get golden = get actual)
    drains

let differing_drains ~drains golden actual =
  List.filter
    (fun s ->
      let get l = try List.assoc s l with Not_found -> [] in
      get golden <> get actual)
    drains

(* The golden run: software simulation of the unfaulted program — the
   desktop-simulation path the paper contrasts against, which never sees
   translation faults. *)
let golden_drained (w : workload) =
  let c = Exec.Cache.compile ~strategy:Driver.baseline w.program in
  let r = Driver.software_sim ~options:w.options c in
  match r.Interp.outcome with
  | Interp.Completed -> r.Interp.drained
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Campaign: workload %s does not complete under software simulation \
            (check feeds/params)"
           w.wname)

let unfaulted_cycles (w : workload) =
  let c = Exec.Cache.compile ~strategy:Driver.baseline w.program in
  let r = Driver.simulate ~options:w.options c in
  match r.Driver.engine.Engine.outcome with
  | Engine.Finished -> r.Driver.engine.Engine.cycles
  | _ ->
      invalid_arg
        (Printf.sprintf "Campaign: unfaulted baseline of workload %s does not finish"
           w.wname)

(* One mutant attempt, run on a worker domain: compile through the
   shared front cache, then simulate under the cycle budget with the
   watchdog armed.  Crash isolation and the single retry live in
   {!Exec.Pool}. *)
let attempt_mutant ~budget ~watchdog (w : workload) strategy fault =
  let options =
    { w.options with Driver.max_cycles = budget; watchdog = Some watchdog }
  in
  let c = Exec.Cache.compile ~strategy ~faults:[ fault ] w.program in
  Driver.simulate ~options c

(* --- fork-point evaluation ---------------------------------------------- *)

(* Sentinel for "this site never activates under the workload". *)
let never = max_int

(* Fork-mode evaluation context for one (workload, strategy): the
   all-sites-padded design compiled once, the neutral-baseline result,
   the first-activation cycle of every site, and a snapshot taken just
   before each distinct activation cycle.  Immutable after
   construction; worker domains share it and only mutate their own
   freshly prepared engines. *)
type fork_ctx = {
  fc_compiled : Driver.compiled;
  fc_sites : Fault.site list;
  fc_options : Driver.sim_options;  (** per-mutant budget + watchdog *)
  fc_first_act : int array;  (** indexed by [Fault.s_index]; [never] = inactive *)
  fc_snaps : (int * Engine.snapshot) list;
  fc_base : Driver.sim_result;  (** the neutral padded baseline run *)
}

(* What the disk tier persists per (workload, strategy): everything
   derivable only by simulating.  The padded compile itself is covered
   by the front cache; re-running [Driver.finish] per process is cheap
   relative to the baseline replays this skips. *)
type base_bundle = {
  bb_first_act : int array;
  bb_snaps : (int * Engine.snapshot) list;
  bb_base : Driver.sim_result;
}

let bundle_key (w : workload) strategy ~budget ~watchdog =
  let b = Buffer.create 256 in
  Buffer.add_string b (Exec.Cache.key ~strategy w.program);
  Buffer.add_char b '\x00';
  Buffer.add_string b w.wname;
  List.iter
    (fun (s, vs) ->
      Printf.bprintf b "|f:%s" s;
      List.iter (fun v -> Printf.bprintf b ",%Ld" v) vs)
    w.options.Driver.feeds;
  List.iter (fun s -> Printf.bprintf b "|d:%s" s) w.options.Driver.drains;
  List.iter
    (fun (p, kvs) ->
      Printf.bprintf b "|p:%s" p;
      List.iter (fun (k, v) -> Printf.bprintf b ",%s=%Ld" k v) kvs)
    w.options.Driver.params;
  Printf.bprintf b "|b:%d|w:%d|v1" budget watchdog;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The activation cycles needing a snapshot: one per distinct
   first-activation cycle of any padded site (independent of the
   [max_mutants] cap, so a cached bundle serves every cap). *)
let snapshot_cycles (sites : Fault.site list) (first_act : int array) =
  List.sort_uniq compare
    (List.filter_map
       (fun (s : Fault.site) ->
         let c = first_act.(s.Fault.s_index) in
         if s.Fault.s_padded && c <> never then Some c else None)
       sites)

(* Build the fork context for one (workload, strategy) serially, before
   the pool starts.  [None] = fall back to the legacy from-reset path
   for every site of this pair: the padded neutral baseline must finish
   and match the golden output (it always should — every pad is an
   identity when unarmed — but a safety valve beats a wrong report). *)
let build_fork_ctx (w : workload) strategy ~budget ~watchdog ~cfg_budget
    ~cfg_watchdog ~golden : fork_ctx option =
  let front = Exec.Cache.front ~strategy w.program in
  let inst = Fault.instrument_all front.Driver.f_ir in
  let compiled = Driver.finish { front with Driver.f_ir = inst.Fault.ip_prog } in
  let nsites = List.length inst.Fault.ip_sites in
  (* Pass-1 cap: generous, derived from the *unpadded* baseline; the
     pads inflate the schedule but stay far inside 4x + slack. *)
  let probe_options =
    { w.options with Driver.max_cycles = budget; watchdog = Some watchdog }
  in
  let key = bundle_key w strategy ~budget ~watchdog in
  let valid (bb : base_bundle) =
    Array.length bb.bb_first_act = nsites
    && bb.bb_base.Driver.engine.Engine.outcome = Engine.Finished
    && List.for_all
         (fun c -> List.mem_assoc c bb.bb_snaps)
         (snapshot_cycles inst.Fault.ip_sites bb.bb_first_act)
  in
  let bundle =
    match (Exec.Cache.load_blob ~kind:"campaign-base" ~key : base_bundle option) with
    | Some bb when valid bb -> Some bb
    | _ ->
        (* pass 1: neutral baseline, recording first activations *)
        let first_act = Array.make nsites never in
        let on_site cycle idx =
          if idx >= 0 && idx < nsites && first_act.(idx) = never then
            first_act.(idx) <- cycle
        in
        let ses = Driver.prepare ~options:probe_options ~on_site compiled in
        let base = Driver.session_result ses (Engine.run ses.Driver.ses_engine) in
        if base.Driver.engine.Engine.outcome <> Engine.Finished then None
        else begin
          (* pass 2: replay once, snapshotting at each activation cycle *)
          let wanted = snapshot_cycles inst.Fault.ip_sites first_act in
          let ses2 = Driver.prepare ~options:probe_options compiled in
          let snaps =
            List.filter_map
              (fun c ->
                match Engine.run_until ses2.Driver.ses_engine ~cycle:c with
                | None -> Some (c, Engine.snapshot ses2.Driver.ses_engine)
                | Some _ -> None)
              wanted
          in
          if List.length snaps <> List.length wanted then None
          else begin
            let bb = { bb_first_act = first_act; bb_snaps = snaps; bb_base = base } in
            Exec.Cache.store_blob ~kind:"campaign-base" ~key bb;
            Some bb
          end
        end
  in
  match bundle with
  | None -> None
  | Some bb ->
      if
        not
          (drained_equal ~drains:w.options.Driver.drains golden
             bb.bb_base.Driver.engine.Engine.drained)
      then None
      else begin
        (* Budget for armed mutants: same 4x-the-baseline-plus-slack
           shape as the legacy path, but relative to the *padded*
           baseline, so the pads' schedule inflation cannot push a
           finishing mutant over the budget boundary.  An explicit
           [config.budget] is honoured as-is in both modes. *)
        let base_cycles = bb.bb_base.Driver.engine.Engine.cycles in
        let fork_budget =
          match cfg_budget with
          | Some b -> b
          | None -> (4 * base_cycles) + 2000
        in
        let fork_watchdog =
          match cfg_watchdog with
          | Some n -> n
          | None -> Stdlib.max 200 (fork_budget / 20)
        in
        let fc_options =
          {
            w.options with
            Driver.max_cycles = fork_budget;
            watchdog = Some fork_watchdog;
          }
        in
        Some
          {
            fc_compiled = compiled;
            fc_sites = inst.Fault.ip_sites;
            fc_options;
            fc_first_act = bb.bb_first_act;
            fc_snaps = bb.bb_snaps;
            fc_base = bb.bb_base;
          }
      end

(* One fork-point mutant run, on a worker domain: fresh engine and
   notification state, restore the pre-activation snapshot, arm exactly
   this site's pad registers, run to completion. *)
let fork_attempt (ctx : fork_ctx) (site : Fault.site) : Driver.sim_result =
  let c = ctx.fc_first_act.(site.Fault.s_index) in
  let snap = List.assoc c ctx.fc_snaps in
  let ses = Driver.prepare ~options:ctx.fc_options ctx.fc_compiled in
  Engine.restore ses.Driver.ses_engine snap;
  Engine.arm ses.Driver.ses_engine [ (site.Fault.s_proc, site.Fault.s_arm) ];
  Driver.session_result ses (Engine.run ses.Driver.ses_engine)

(* Classify a pool outcome against the golden output; pure bookkeeping,
   run on the coordinating domain in job order. *)
let classify ~golden (w : workload) sname fault
    (o : Driver.sim_result Exec.Pool.outcome) : run =
  let outcome, detail, cycles =
    match o.Exec.Pool.value with
    | Error msg -> (Silent_corruption, Message ("toolchain crash: " ^ msg), 0)
    | Ok r -> (
        let cycles = r.Driver.engine.Engine.cycles in
        match r.Driver.engine.Engine.outcome with
        | Engine.Aborted m -> (Detected_by_assertion, Message m, cycles)
        | Engine.Livelock spinning ->
            (Hang_detected, Spin { label = "live-lock"; sites = spinning }, cycles)
        | Engine.Hang blocked ->
            (Hang_detected, Spin { label = "deadlock"; sites = blocked }, cycles)
        | Engine.Out_of_cycles -> (Budget_exceeded, No_detail, cycles)
        | Engine.Sim_error m ->
            (Silent_corruption, Message ("simulator error: " ^ m), cycles)
        | Engine.Finished ->
            let actual = r.Driver.engine.Engine.drained in
            let drains = w.options.Driver.drains in
            if drained_equal ~drains golden actual then (Benign, No_detail, cycles)
            else
              ( Silent_corruption,
                Output_diff (differing_drains ~drains golden actual),
                cycles ))
  in
  {
    workload = w.wname;
    strategy = sname;
    fault;
    outcome;
    detail;
    cycles;
    retried = o.Exec.Pool.attempts > 1;
  }

let summarize strategies runs =
  List.map
    (fun (sname, _) ->
      let rs = List.filter (fun (r : run) -> r.strategy = sname) runs in
      let count c = List.length (List.filter (fun (r : run) -> r.outcome = c) rs) in
      let det = List.filter (fun (r : run) -> detected r.outcome) rs in
      let mean_detection_cycles =
        match det with
        | [] -> None
        | _ ->
            Some
              (List.fold_left (fun acc r -> acc +. float_of_int r.cycles) 0.0 det
              /. float_of_int (List.length det))
      in
      {
        strategy = sname;
        mutants = List.length rs;
        by_assertion = count Detected_by_assertion;
        by_hang = count Hang_detected;
        silent = count Silent_corruption;
        benign = count Benign;
        over_budget = count Budget_exceeded;
        mean_detection_cycles;
      })
    strategies

(* How one mutant gets its result.  [Pruned]: the static pre-filter
   proved it equivalent to the baseline (or its site dead) — no
   simulation, classified [Benign].  [Pruned_hang]: the liveness
   pre-filter proved the mutant blocks the channel network on every
   execution before any divergent write, assertion or trap — no
   simulation, classified [Hang_detected] with the static witness.
   [Baseline_equiv]: the site never activates under the workload, so
   the mutant's run *is* the recorded neutral-baseline run.
   [Simulate]: run it on a worker domain, via the fork-point restore or
   the legacy from-reset path. *)
type disposition =
  | Pruned
  | Pruned_hang of string
  | Baseline_equiv of Driver.sim_result
  | Simulate of (unit -> Driver.sim_result)

(* --- sharding ------------------------------------------------------------ *)

(* One schedulable unit of a campaign: a single (workload, strategy,
   fault site) mutant, carrying everything its evaluation needs so a
   shard can run on any worker domain — or any scheduler — without
   touching shared mutable state. *)
type shard = {
  sh_workload : workload;
  sh_strategy : string;
  sh_fault : Fault.t;
  sh_golden : (string * int64 list) list;
  sh_disp : disposition;
}

type plan = {
  pl_workloads : string list;
  pl_strategies : (string * Driver.strategy) list;
  pl_site_count : int;
  pl_dropped : int;
  pl_kind_counts : (string * int) list;
  pl_shards : shard array;
}

let plan ?(config = default_config) (workloads : workload list) : plan =
  let dropped = ref 0 in
  let site_count = ref 0 in
  let kind_tbl = Hashtbl.create 8 in
  (* Serial per-workload prep: warm the compile cache for every
     strategy (so worker domains only ever hit), enumerate and cap the
     fault sites, run the static pre-filter, record the golden output,
     derive the cycle budget, and (fork mode) build the padded design,
     site-activity record and pre-activation snapshots per strategy. *)
  let prepped =
    List.map
      (fun w ->
        List.iter
          (fun (_, strategy) -> ignore (Exec.Cache.front ~strategy w.program))
          config.strategies;
        let sites = enumerate w in
        let sites, d =
          match config.max_mutants with
          | Some n when List.length sites > n ->
              (cap_round_robin n sites, List.length sites - n)
          | _ -> (sites, 0)
        in
        dropped := !dropped + d;
        site_count := !site_count + List.length sites;
        List.iter
          (fun f ->
            let k = Fault.kind_name f in
            Hashtbl.replace kind_tbl k (1 + (try Hashtbl.find kind_tbl k with Not_found -> 0)))
          sites;
        (* The pre-filter analyzes the baseline IR the sites were
           enumerated on; its verdicts are input-independent, so they
           apply identically in both modes — the classification-
           identity gate depends on that. *)
        let verdicts =
          let base_front = Exec.Cache.front ~strategy:Driver.baseline w.program in
          Prefilter.verdicts base_front.Driver.f_ir sites
        in
        (* The liveness pre-filter works on the AST and the workload's
           stimulus (token counts, not values), so — like the value
           pre-filter — its verdicts are identical in both modes. *)
        let hangs =
          if config.prune_hangs then
            Prefilter.hang_verdicts ~params:w.options.Driver.params
              ~feeds:
                (List.map
                   (fun (s, vs) -> (s, List.length vs))
                   w.options.Driver.feeds)
              ~drains:w.options.Driver.drains w.program sites
          else List.map (fun _ -> Prefilter.Hang_unknown) sites
        in
        let golden = golden_drained w in
        let base_cycles = unfaulted_cycles w in
        let budget =
          match config.budget with Some b -> b | None -> (4 * base_cycles) + 2000
        in
        let watchdog =
          match config.watchdog with Some n -> n | None -> Stdlib.max 200 (budget / 20)
        in
        let fork_ctxs =
          match config.mode with
          | From_reset -> []
          | Fork ->
              List.filter_map
                (fun (sname, strategy) ->
                  match
                    build_fork_ctx w strategy ~budget ~watchdog
                      ~cfg_budget:config.budget ~cfg_watchdog:config.watchdog
                      ~golden
                  with
                  | Some ctx -> Some (sname, ctx)
                  | None -> None)
                config.strategies
        in
        (w, sites, verdicts, hangs, golden, budget, watchdog, fork_ctxs))
      workloads
  in
  (* One mutant per (workload, strategy, site), flattened in the serial
     sweep order: workload outermost, then strategy, then site.  Each
     carries its disposition; only [Simulate] ones go to the pool, so
     the result list stays in canonical order for every job count. *)
  let mutants =
    List.concat_map
      (fun (w, sites, verdicts, hangs, golden, budget, watchdog, fork_ctxs) ->
        List.concat_map
          (fun (sname, strategy) ->
            let ctx = List.assoc_opt sname fork_ctxs in
            List.map2
              (fun (fault, hang) verdict ->
                let legacy () =
                  Simulate (fun () -> attempt_mutant ~budget ~watchdog w strategy fault)
                in
                let disp =
                  match (verdict : Prefilter.verdict) with
                  | Prefilter.Equivalent | Prefilter.Dead -> Pruned
                  | Prefilter.Unknown -> (
                      match (hang : Prefilter.hang_verdict) with
                      | Prefilter.Certain_hang witness -> Pruned_hang witness
                      | Prefilter.Hang_unknown -> (
                          match ctx with
                          | None -> legacy ()
                          | Some ctx -> (
                              match
                                List.find_opt
                                  (fun (s : Fault.site) -> s.Fault.s_fault = fault)
                                  ctx.fc_sites
                              with
                              | Some site when site.Fault.s_padded ->
                                  let act = ctx.fc_first_act.(site.Fault.s_index) in
                                  if act = never then Baseline_equiv ctx.fc_base
                                  else if List.mem_assoc act ctx.fc_snaps then
                                    Simulate (fun () -> fork_attempt ctx site)
                                  else legacy ()
                              | _ -> legacy ())))
                in
                (w, sname, fault, golden, disp))
              (List.combine sites hangs) verdicts)
          config.strategies)
      prepped
  in
  let kind_counts =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt kind_tbl k with Some n -> Some (k, n) | None -> None)
      [ "narrow-compare"; "read-for-write"; "stuck-stream-bit"; "drop-stream-write";
        "loop-off-by-one" ]
  in
  {
    pl_workloads = List.map (fun w -> w.wname) workloads;
    pl_strategies = config.strategies;
    pl_site_count = !site_count;
    pl_dropped = !dropped;
    pl_kind_counts = kind_counts;
    pl_shards =
      Array.of_list
        (List.map
           (fun (w, sname, fault, golden, disp) ->
             {
               sh_workload = w;
               sh_strategy = sname;
               sh_fault = fault;
               sh_golden = golden;
               sh_disp = disp;
             })
           mutants);
  }

let shard_count (p : plan) = Array.length p.pl_shards

let shard_label (p : plan) i =
  let s = p.pl_shards.(i) in
  Printf.sprintf "%s/%s/%s" s.sh_workload.wname s.sh_strategy (Fault.describe s.sh_fault)

(* Evaluate one shard.  Safe to call from any worker domain: pruned
   shards classify [Benign] without simulating, baseline-equivalent
   shards reuse the recorded neutral run, and the rest simulate. *)
let eval_shard (p : plan) i : run =
  let s = p.pl_shards.(i) in
  match s.sh_disp with
  | Pruned ->
      {
        workload = s.sh_workload.wname;
        strategy = s.sh_strategy;
        fault = s.sh_fault;
        outcome = Benign;
        detail = No_detail;
        cycles = 0;
        retried = false;
      }
  | Pruned_hang witness ->
      {
        workload = s.sh_workload.wname;
        strategy = s.sh_strategy;
        fault = s.sh_fault;
        outcome = Hang_detected;
        detail = Message ("statically proved hang: " ^ witness);
        cycles = 0;
        retried = false;
      }
  | Baseline_equiv base ->
      classify ~golden:s.sh_golden s.sh_workload s.sh_strategy s.sh_fault
        { Exec.Pool.value = Ok base; attempts = 1 }
  | Simulate f ->
      classify ~golden:s.sh_golden s.sh_workload s.sh_strategy s.sh_fault
        { Exec.Pool.value = Ok (f ()); attempts = 1 }

(* The run for a shard whose evaluation crashed (after the pool's
   retry): same classification a crashed mutant got on the legacy
   path — silent corruption with the crash message. *)
let crash_run (p : plan) i msg : run =
  let s = p.pl_shards.(i) in
  classify ~golden:s.sh_golden s.sh_workload s.sh_strategy s.sh_fault
    { Exec.Pool.value = Error msg; attempts = 1 }

let with_retry (r : run) ~attempts = if attempts > 1 then { r with retried = true } else r

(* Merge shard results (in shard-index order) into the report.  The
   merge is pure bookkeeping, so a report assembled from any scheduler
   is byte-identical to the serial sweep's as long as [runs] is in
   index order. *)
let merge (p : plan) (runs : run list) : report =
  let pruned_static =
    Array.fold_left
      (fun n s -> match s.sh_disp with Pruned -> n + 1 | _ -> n)
      0 p.pl_shards
  in
  let pruned_hang =
    Array.fold_left
      (fun n s -> match s.sh_disp with Pruned_hang _ -> n + 1 | _ -> n)
      0 p.pl_shards
  in
  {
    workloads = p.pl_workloads;
    site_count = p.pl_site_count;
    dropped = p.pl_dropped;
    kind_counts = p.pl_kind_counts;
    pruned_static;
    pruned_hang;
    runs;
    summaries = summarize p.pl_strategies runs;
  }

(** Sweep every enumerated fault site of every workload under every
    strategy: plan, evaluate every shard on an {!Exec.Pool} of worker
    domains ([config.jobs]), merge in shard-index order — so the report
    is byte-identical for every job count.  [progress] (if given) is
    called once per classified mutant run, on the calling domain, in
    deterministic (shard-index) order. *)
let run ?(config = default_config) ?progress (workloads : workload list) : report =
  let p = plan ~config workloads in
  let fns = Array.init (shard_count p) (fun i () -> eval_shard p i) in
  let outcomes = Exec.Pool.run ?jobs:config.jobs ~retries:1 fns in
  let out = ref [] in
  for i = 0 to shard_count p - 1 do
    let o = outcomes.(i) in
    let r =
      match o.Exec.Pool.value with
      | Ok r -> with_retry r ~attempts:o.Exec.Pool.attempts
      | Error m -> with_retry (crash_run p i m) ~attempts:o.Exec.Pool.attempts
    in
    (match progress with Some f -> f r | None -> ());
    out := r :: !out
  done;
  merge p (List.rev !out)

(* --- rendering ---------------------------------------------------------- *)

let detected_of_summary s = s.by_assertion + s.by_hang

(** Per fault kind, detections per strategy (the coverage matrix). *)
let kind_matrix (r : report) =
  List.map
    (fun (kind, sites) ->
      let per_strategy =
        List.map
          (fun s ->
            let det =
              List.length
                (List.filter
                   (fun (run : run) ->
                     run.strategy = s.strategy
                     && Fault.kind_name run.fault = kind
                     && detected run.outcome)
                   r.runs)
            in
            (s.strategy, det))
          r.summaries
      in
      (kind, sites, per_strategy))
    r.kind_counts

let render (r : report) : string =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  p "=== fault-injection campaign: %s ===" (String.concat ", " r.workloads);
  p "sites: %d mutants per strategy (%s)%s" r.site_count
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) r.kind_counts))
    (if r.dropped > 0 then Printf.sprintf "; %d sites dropped by cap" r.dropped else "");
  if r.pruned_static > 0 then
    p "pruned: %d mutant runs proved equivalent/dead statically (not simulated)"
      r.pruned_static;
  if r.pruned_hang > 0 then
    p "pruned: %d mutant runs proved certainly hanging statically (classified hang, \
       not simulated)"
      r.pruned_hang;
  p "";
  p "%-14s %7s %7s %6s %7s %7s %7s %9s %14s" "strategy" "mutants" "assert" "hang"
    "silent" "benign" "budget" "detected" "mean-det-cyc";
  List.iter
    (fun s ->
      p "%-14s %7d %7d %6d %7d %7d %7d %9d %14s" s.strategy s.mutants s.by_assertion
        s.by_hang s.silent s.benign s.over_budget (detected_of_summary s)
        (match s.mean_detection_cycles with
        | Some m -> Printf.sprintf "%.1f" m
        | None -> "-"))
    r.summaries;
  p "";
  p "assertion coverage by fault kind (detected/sites):";
  let strategies = List.map (fun s -> s.strategy) r.summaries in
  p "%-18s %s" "kind"
    (String.concat " " (List.map (Printf.sprintf "%12s") strategies));
  List.iter
    (fun (kind, sites, per_strategy) ->
      p "%-18s %s" kind
        (String.concat " "
           (List.map
              (fun (_, det) -> Printf.sprintf "%12s" (Printf.sprintf "%d/%d" det sites))
              per_strategy)))
    (kind_matrix r);
  Buffer.contents b

(** The classification map: one line per mutant run, [workload TAB
    strategy TAB fault TAB class], in canonical sweep order.  This is
    the fork-vs-from-reset invariant surface: the two modes must
    produce byte-identical maps (cycle counts and details may differ —
    padding legitimately perturbs the schedule).  CI diffs this. *)
let render_classes (r : report) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun (run : run) ->
      Buffer.add_string b run.workload;
      Buffer.add_char b '\t';
      Buffer.add_string b run.strategy;
      Buffer.add_char b '\t';
      Buffer.add_string b (Fault.describe run.fault);
      Buffer.add_char b '\t';
      Buffer.add_string b (class_name run.outcome);
      Buffer.add_char b '\n')
    r.runs;
  Buffer.contents b

let json_of (r : report) : Json.t =
  Json.Obj
    [
      ("workloads", Json.list Json.str r.workloads);
      ("sites", Json.int r.site_count);
      ("dropped", Json.int r.dropped);
      ("pruned_static", Json.int r.pruned_static);
      ("pruned_hang", Json.int r.pruned_hang);
      ("kinds", Json.Obj (List.map (fun (k, n) -> (k, Json.int n)) r.kind_counts));
      ( "strategies",
        Json.list
          (fun s ->
            Json.Obj
              [
                ("strategy", Json.Str s.strategy);
                ("mutants", Json.int s.mutants);
                ("detected_by_assertion", Json.int s.by_assertion);
                ("hang_detected", Json.int s.by_hang);
                ("silent_corruption", Json.int s.silent);
                ("benign", Json.int s.benign);
                ("budget_exceeded", Json.int s.over_budget);
                ("detected", Json.int (detected_of_summary s));
                ("mean_detection_cycles", Json.opt Json.float s.mean_detection_cycles);
              ])
          r.summaries );
      ( "runs",
        Json.list
          (fun (run : run) ->
            Json.Obj
              [
                ("workload", Json.Str run.workload);
                ("strategy", Json.Str run.strategy);
                ("fault", Json.Str (Fault.describe run.fault));
                ("kind", Json.Str (Fault.kind_name run.fault));
                ("class", Json.Str (class_name run.outcome));
                ("detail", Json.Str (detail_string run.detail));
                ("cycles", Json.int run.cycles);
                ("retried", Json.Bool run.retried);
              ])
          r.runs );
    ]
