(** Fault-injection campaign engine (paper Section 5).

    The paper validates in-circuit assertions by injecting the
    hardware-translation bugs its authors met in practice and checking
    that the synthesized assertions catch them.  This module turns that
    spot check into a campaign: enumerate {e every} candidate fault site
    of a lowered program ({!Fault.sites}), compile one mutant per site
    under each assertion-synthesis strategy, run it in the cycle-accurate
    simulator under a per-mutant cycle budget with the live-lock watchdog
    armed, and classify the outcome against the software-simulation
    golden output.  The aggregated table is an {e assertion-coverage
    report}: which translation faults does each strategy actually
    detect, and how many cycles does detection take? *)

module Driver = Core.Driver
module Engine = Sim.Engine
module Fault = Faults.Fault

(* --- workloads ---------------------------------------------------------- *)

type workload = {
  wname : string;
  program : Front.Ast.program;
  options : Driver.sim_options;  (** feeds / drains / params for one run *)
}

let workload ~name ?file ~feeds ~drains ~params source =
  let file = match file with Some f -> f | None -> name ^ ".c" in
  let program = Front.Typecheck.parse_and_check ~file source in
  {
    wname = name;
    program;
    options = { Driver.default_sim_options with Driver.feeds; drains; params };
  }

(** The four bundled case-study applications, sized so a full sweep
    stays interactive. *)
let bundled () =
  let fir =
    let n = 32 in
    let signal = Apps.Fir_ref.test_signal n in
    workload ~name:"fir"
      ~feeds:[ ("samples_in", Apps.Fir_ref.to_stream signal) ]
      ~drains:[ "samples_out" ]
      ~params:[ ("fir", [ ("n", Int64.of_int n) ]) ]
      (Apps.Fir_src.source ())
  in
  let dct =
    let blocks = 2 in
    let samples = Apps.Dct_ref.test_blocks blocks in
    workload ~name:"dct"
      ~feeds:[ ("dct_in", Apps.Dct_ref.to_stream samples) ]
      ~drains:[ "dct_out" ]
      ~params:[ ("dct", [ ("nblocks", Int64.of_int blocks) ]) ]
      (Apps.Dct_src.source ())
  in
  let des =
    let text = "IN-CIRCUIT ABV!!" in
    let cipher = Apps.Des_src.demo_ciphertext text in
    workload ~name:"des3"
      ~feeds:[ ("cipher_in", cipher) ]
      ~drains:[ "plain_out" ]
      ~params:[ ("des3", [ ("nblocks", Int64.of_int (List.length cipher)) ]) ]
      (Apps.Des_src.demo_source ())
  in
  let edge =
    let w = Apps.Edge_src.default_width and h = 8 in
    let img = Apps.Edge_ref.test_image ~w ~h in
    workload ~name:"edge"
      ~feeds:[ ("pixels_in", Apps.Edge_ref.to_stream img) ]
      ~drains:[ "pixels_out" ]
      ~params:
        [ ("edge", [ ("width", Int64.of_int w); ("height", Int64.of_int h) ]) ]
      (Apps.Edge_src.demo_source ())
  in
  [ fir; dct; des; edge ]

(* --- configuration ------------------------------------------------------ *)

type config = {
  strategies : (string * Driver.strategy) list;
  budget : int option;
      (** per-mutant cycle budget; [None] = 4x the unfaulted baseline
          cycle count of the workload, plus slack *)
  watchdog : int option;
      (** live-lock watchdog window; [None] = budget / 20, floor 200 *)
  max_mutants : int option;
      (** per-workload cap, taken round-robin across fault kinds so a
          truncated campaign still exercises every kind; the report
          records how many sites were dropped *)
  jobs : int option;
      (** worker domains for the mutant sweep; [None] =
          {!Exec.Pool.default_jobs} ([INCA_JOBS] or all cores);
          [Some 1] runs serially without spawning any domain.  The
          report is byte-identical for every job count. *)
}

(** Every canonical strategy except the carte transport flavour (the
    DMA mailbox changes reporting, not detection — the sweep covers it
    on demand). *)
let default_strategies =
  List.filter (fun (name, _) -> name <> "carte") Driver.all_strategies

let default_config =
  { strategies = default_strategies; budget = None; watchdog = None;
    max_mutants = None; jobs = None }

(* --- classification ----------------------------------------------------- *)

type outcome_class =
  | Detected_by_assertion  (** a synthesized assertion aborted the run *)
  | Hang_detected  (** deadlock detector or live-lock watchdog fired *)
  | Silent_corruption
      (** the run finished with wrong output, or crashed the toolchain *)
  | Benign  (** finished with output equal to the golden run *)
  | Budget_exceeded  (** still running at the cycle budget *)

let class_name = function
  | Detected_by_assertion -> "assertion"
  | Hang_detected -> "hang"
  | Silent_corruption -> "silent"
  | Benign -> "benign"
  | Budget_exceeded -> "budget"

(** Detection means the platform raised a flag the engineer can act on:
    an assertion notification or a hang/live-lock report. *)
let detected = function
  | Detected_by_assertion | Hang_detected -> true
  | Silent_corruption | Benign | Budget_exceeded -> false

(** Structured outcome diagnostics.  Runs keep the raw data (spin
    sites, differing drains) and the report renders it on demand —
    classification no longer formats strings inside the sweep's hot
    loop. *)
type detail =
  | No_detail
  | Message of string  (** assertion text, toolchain crash, sim error *)
  | Spin of { label : string; sites : (string * int) list }
      (** "live-lock" or "deadlock", with (process, state) spin sites *)
  | Output_diff of string list  (** drains whose output differs from golden *)

type run = {
  workload : string;
  strategy : string;
  fault : Fault.t;
  outcome : outcome_class;
  detail : detail;  (** assertion message, spin sites, or output diff *)
  cycles : int;  (** cycles consumed (cycles to detection when detected) *)
  retried : bool;  (** first attempt crashed; this is the retry's result *)
}

type strategy_summary = {
  strategy : string;
  mutants : int;
  by_assertion : int;
  by_hang : int;
  silent : int;
  benign : int;
  over_budget : int;
  mean_detection_cycles : float option;
      (** mean cycles-to-detection over detected mutants *)
}

type report = {
  workloads : string list;
  site_count : int;  (** mutants swept per strategy (after any cap) *)
  dropped : int;  (** sites dropped by [max_mutants] *)
  kind_counts : (string * int) list;  (** sites per fault kind *)
  runs : run list;
  summaries : strategy_summary list;
}

(* --- campaign ----------------------------------------------------------- *)

let enumerate (w : workload) : Fault.t list =
  (* sites live in the pre-fault lowered IR, so the cached compile
     front is all that is needed *)
  Fault.sites (Exec.Cache.front ~strategy:Driver.baseline w.program).Driver.f_ir

(* Take [n] sites round-robin across fault kinds, preserving order
   within a kind, so a capped campaign still exercises every kind. *)
let cap_round_robin n faults =
  let kinds =
    List.fold_left
      (fun acc f ->
        let k = Fault.kind_name f in
        if List.mem_assoc k acc then acc else acc @ [ (k, ref []) ])
      [] faults
  in
  List.iter (fun f -> let q = List.assoc (Fault.kind_name f) kinds in q := f :: !q) faults;
  let queues = List.map (fun (k, q) -> (k, ref (List.rev !q))) kinds in
  let out = ref [] and left = ref n and progress = ref true in
  while !left > 0 && !progress do
    progress := false;
    List.iter
      (fun (_, q) ->
        if !left > 0 then
          match !q with
          | [] -> ()
          | f :: tl ->
              q := tl;
              out := f :: !out;
              decr left;
              progress := true)
      queues
  done;
  List.rev !out

(* Rendering of structured diagnostics, run once per displayed row (not
   inside the sweep's hot loop). *)
let detail_string = function
  | No_detail -> ""
  | Message m -> m
  | Spin { label; sites } ->
      let b = Buffer.create 64 in
      Buffer.add_string b label;
      Buffer.add_string b ": ";
      List.iteri
        (fun i (p, st) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b p;
          Buffer.add_char b '@';
          Buffer.add_string b (string_of_int st))
        sites;
      Buffer.contents b
  | Output_diff drains ->
      "output differs on " ^ String.concat ", " drains

let drained_equal ~drains golden actual =
  List.for_all
    (fun s ->
      let get l = try List.assoc s l with Not_found -> [] in
      get golden = get actual)
    drains

let differing_drains ~drains golden actual =
  List.filter
    (fun s ->
      let get l = try List.assoc s l with Not_found -> [] in
      get golden <> get actual)
    drains

(* The golden run: software simulation of the unfaulted program — the
   desktop-simulation path the paper contrasts against, which never sees
   translation faults. *)
let golden_drained (w : workload) =
  let c = Exec.Cache.compile ~strategy:Driver.baseline w.program in
  let r = Driver.software_sim ~options:w.options c in
  match r.Interp.outcome with
  | Interp.Completed -> r.Interp.drained
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Campaign: workload %s does not complete under software simulation \
            (check feeds/params)"
           w.wname)

let unfaulted_cycles (w : workload) =
  let c = Exec.Cache.compile ~strategy:Driver.baseline w.program in
  let r = Driver.simulate ~options:w.options c in
  match r.Driver.engine.Engine.outcome with
  | Engine.Finished -> r.Driver.engine.Engine.cycles
  | _ ->
      invalid_arg
        (Printf.sprintf "Campaign: unfaulted baseline of workload %s does not finish"
           w.wname)

(* One mutant attempt, run on a worker domain: compile through the
   shared front cache, then simulate under the cycle budget with the
   watchdog armed.  Crash isolation and the single retry live in
   {!Exec.Pool}. *)
let attempt_mutant ~budget ~watchdog (w : workload) strategy fault =
  let options =
    { w.options with Driver.max_cycles = budget; watchdog = Some watchdog }
  in
  let c = Exec.Cache.compile ~strategy ~faults:[ fault ] w.program in
  Driver.simulate ~options c

(* Classify a pool outcome against the golden output; pure bookkeeping,
   run on the coordinating domain in job order. *)
let classify ~golden (w : workload) sname fault
    (o : Driver.sim_result Exec.Pool.outcome) : run =
  let outcome, detail, cycles =
    match o.Exec.Pool.value with
    | Error msg -> (Silent_corruption, Message ("toolchain crash: " ^ msg), 0)
    | Ok r -> (
        let cycles = r.Driver.engine.Engine.cycles in
        match r.Driver.engine.Engine.outcome with
        | Engine.Aborted m -> (Detected_by_assertion, Message m, cycles)
        | Engine.Livelock spinning ->
            (Hang_detected, Spin { label = "live-lock"; sites = spinning }, cycles)
        | Engine.Hang blocked ->
            (Hang_detected, Spin { label = "deadlock"; sites = blocked }, cycles)
        | Engine.Out_of_cycles -> (Budget_exceeded, No_detail, cycles)
        | Engine.Sim_error m ->
            (Silent_corruption, Message ("simulator error: " ^ m), cycles)
        | Engine.Finished ->
            let actual = r.Driver.engine.Engine.drained in
            let drains = w.options.Driver.drains in
            if drained_equal ~drains golden actual then (Benign, No_detail, cycles)
            else
              ( Silent_corruption,
                Output_diff (differing_drains ~drains golden actual),
                cycles ))
  in
  {
    workload = w.wname;
    strategy = sname;
    fault;
    outcome;
    detail;
    cycles;
    retried = o.Exec.Pool.attempts > 1;
  }

let summarize strategies runs =
  List.map
    (fun (sname, _) ->
      let rs = List.filter (fun (r : run) -> r.strategy = sname) runs in
      let count c = List.length (List.filter (fun (r : run) -> r.outcome = c) rs) in
      let det = List.filter (fun (r : run) -> detected r.outcome) rs in
      let mean_detection_cycles =
        match det with
        | [] -> None
        | _ ->
            Some
              (List.fold_left (fun acc r -> acc +. float_of_int r.cycles) 0.0 det
              /. float_of_int (List.length det))
      in
      {
        strategy = sname;
        mutants = List.length rs;
        by_assertion = count Detected_by_assertion;
        by_hang = count Hang_detected;
        silent = count Silent_corruption;
        benign = count Benign;
        over_budget = count Budget_exceeded;
        mean_detection_cycles;
      })
    strategies

(** Sweep every enumerated fault site of every workload under every
    strategy.  Mutant runs execute on an {!Exec.Pool} of worker domains
    ([config.jobs]); results are collected by job index, so the report
    is byte-identical for every job count.  [progress] (if given) is
    called once per classified mutant run, on the calling domain, in
    deterministic (serial) order. *)
let run ?(config = default_config) ?progress (workloads : workload list) : report =
  let dropped = ref 0 in
  let site_count = ref 0 in
  let kind_tbl = Hashtbl.create 8 in
  (* Serial per-workload prep: warm the compile cache for every
     strategy (so worker domains only ever hit), enumerate and cap the
     fault sites, record the golden output and derive the cycle
     budget. *)
  let prepped =
    List.map
      (fun w ->
        List.iter
          (fun (_, strategy) -> ignore (Exec.Cache.front ~strategy w.program))
          config.strategies;
        let sites = enumerate w in
        let sites, d =
          match config.max_mutants with
          | Some n when List.length sites > n ->
              (cap_round_robin n sites, List.length sites - n)
          | _ -> (sites, 0)
        in
        dropped := !dropped + d;
        site_count := !site_count + List.length sites;
        List.iter
          (fun f ->
            let k = Fault.kind_name f in
            Hashtbl.replace kind_tbl k (1 + (try Hashtbl.find kind_tbl k with Not_found -> 0)))
          sites;
        let golden = golden_drained w in
        let base_cycles = unfaulted_cycles w in
        let budget =
          match config.budget with Some b -> b | None -> (4 * base_cycles) + 2000
        in
        let watchdog =
          match config.watchdog with Some n -> n | None -> Stdlib.max 200 (budget / 20)
        in
        (w, sites, golden, budget, watchdog))
      workloads
  in
  (* One job per (workload, strategy, site), flattened in the serial
     sweep order: workload outermost, then strategy, then site. *)
  let mutant_jobs =
    List.concat_map
      (fun (w, sites, golden, budget, watchdog) ->
        List.concat_map
          (fun (sname, strategy) ->
            List.map
              (fun fault -> (w, sname, strategy, fault, golden, budget, watchdog))
              sites)
          config.strategies)
      prepped
  in
  let fns =
    Array.of_list
      (List.map
         (fun (w, _, strategy, fault, _, budget, watchdog) () ->
           attempt_mutant ~budget ~watchdog w strategy fault)
         mutant_jobs)
  in
  let outcomes = Exec.Pool.run ?jobs:config.jobs ~retries:1 fns in
  let runs =
    List.mapi
      (fun i (w, sname, _, fault, golden, _, _) ->
        let r = classify ~golden w sname fault outcomes.(i) in
        (match progress with Some f -> f r | None -> ());
        r)
      mutant_jobs
  in
  let kind_counts =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt kind_tbl k with Some n -> Some (k, n) | None -> None)
      [ "narrow-compare"; "read-for-write"; "stuck-stream-bit"; "drop-stream-write";
        "loop-off-by-one" ]
  in
  {
    workloads = List.map (fun w -> w.wname) workloads;
    site_count = !site_count;
    dropped = !dropped;
    kind_counts;
    runs;
    summaries = summarize config.strategies runs;
  }

(* --- rendering ---------------------------------------------------------- *)

let detected_of_summary s = s.by_assertion + s.by_hang

(** Per fault kind, detections per strategy (the coverage matrix). *)
let kind_matrix (r : report) =
  List.map
    (fun (kind, sites) ->
      let per_strategy =
        List.map
          (fun s ->
            let det =
              List.length
                (List.filter
                   (fun (run : run) ->
                     run.strategy = s.strategy
                     && Fault.kind_name run.fault = kind
                     && detected run.outcome)
                   r.runs)
            in
            (s.strategy, det))
          r.summaries
      in
      (kind, sites, per_strategy))
    r.kind_counts

let render (r : report) : string =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  p "=== fault-injection campaign: %s ===" (String.concat ", " r.workloads);
  p "sites: %d mutants per strategy (%s)%s" r.site_count
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) r.kind_counts))
    (if r.dropped > 0 then Printf.sprintf "; %d sites dropped by cap" r.dropped else "");
  p "";
  p "%-14s %7s %7s %6s %7s %7s %7s %9s %14s" "strategy" "mutants" "assert" "hang"
    "silent" "benign" "budget" "detected" "mean-det-cyc";
  List.iter
    (fun s ->
      p "%-14s %7d %7d %6d %7d %7d %7d %9d %14s" s.strategy s.mutants s.by_assertion
        s.by_hang s.silent s.benign s.over_budget (detected_of_summary s)
        (match s.mean_detection_cycles with
        | Some m -> Printf.sprintf "%.1f" m
        | None -> "-"))
    r.summaries;
  p "";
  p "assertion coverage by fault kind (detected/sites):";
  let strategies = List.map (fun s -> s.strategy) r.summaries in
  p "%-18s %s" "kind"
    (String.concat " " (List.map (Printf.sprintf "%12s") strategies));
  List.iter
    (fun (kind, sites, per_strategy) ->
      p "%-18s %s" kind
        (String.concat " "
           (List.map
              (fun (_, det) -> Printf.sprintf "%12s" (Printf.sprintf "%d/%d" det sites))
              per_strategy)))
    (kind_matrix r);
  Buffer.contents b

(* Hand-rolled JSON (no JSON library in the dependency set). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json (r : report) : string =
  let b = Buffer.create 8192 in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let obj fields = "{" ^ String.concat ", " fields ^ "}" in
  let fld k v = Printf.sprintf "%s: %s" (str k) v in
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  Buffer.add_string b
    (obj
       [
         fld "workloads" (arr (List.map str r.workloads));
         fld "sites" (string_of_int r.site_count);
         fld "dropped" (string_of_int r.dropped);
         fld "kinds"
           (obj (List.map (fun (k, n) -> fld k (string_of_int n)) r.kind_counts));
         fld "strategies"
           (arr
              (List.map
                 (fun s ->
                   obj
                     [
                       fld "strategy" (str s.strategy);
                       fld "mutants" (string_of_int s.mutants);
                       fld "detected_by_assertion" (string_of_int s.by_assertion);
                       fld "hang_detected" (string_of_int s.by_hang);
                       fld "silent_corruption" (string_of_int s.silent);
                       fld "benign" (string_of_int s.benign);
                       fld "budget_exceeded" (string_of_int s.over_budget);
                       fld "detected" (string_of_int (detected_of_summary s));
                       fld "mean_detection_cycles"
                         (match s.mean_detection_cycles with
                         | Some m -> Printf.sprintf "%.1f" m
                         | None -> "null");
                     ])
                 r.summaries));
         fld "runs"
           (arr
              (List.map
                 (fun run ->
                   obj
                     [
                       fld "workload" (str run.workload);
                       fld "strategy" (str run.strategy);
                       fld "fault" (str (Fault.describe run.fault));
                       fld "kind" (str (Fault.kind_name run.fault));
                       fld "class" (str (class_name run.outcome));
                       fld "detail" (str (detail_string run.detail));
                       fld "cycles" (string_of_int run.cycles);
                       fld "retried" (if run.retried then "true" else "false");
                     ])
                 r.runs));
       ]);
  Buffer.contents b
