(** Fault-injection campaign engine (paper Section 5).

    Enumerate every candidate fault site of a lowered program
    ({!Faults.Fault.sites}), compile one mutant per site under each
    assertion-synthesis strategy, run it in the cycle-accurate simulator
    under a per-mutant cycle budget with the live-lock watchdog armed,
    and classify the outcome against the software-simulation golden
    output.  The aggregated table is an assertion-coverage report. *)

(** One application plus the stimulus needed to run it. *)
type workload = {
  wname : string;
  program : Front.Ast.program;
  options : Core.Driver.sim_options;
}

(** Build a workload from InCA-C source text. *)
val workload :
  name:string ->
  ?file:string ->
  feeds:(string * int64 list) list ->
  drains:string list ->
  params:(string * (string * int64) list) list ->
  string ->
  workload

(** The five bundled case-study applications (FIR, DCT, Triple-DES,
    edge detection, pulse statistics), sized so a full sweep stays
    interactive. *)
val bundled : unit -> workload list

(** How mutants are evaluated.  [Fork] (the default) compiles one
    padded design per (workload, strategy), records when each fault
    site first activates in a single unfaulted baseline run, and
    evaluates each mutant from the engine snapshot taken just before
    its site's first activation.  [From_reset] compiles and simulates
    every mutant from cycle zero (the escape hatch, and the reference
    the CI classification-identity gate compares against). *)
type mode = Fork | From_reset

type config = {
  mode : mode;
  strategies : (string * Core.Driver.strategy) list;
  budget : int option;
      (** per-mutant cycle budget; [None] = 4x the unfaulted baseline
          cycle count of the workload, plus slack *)
  watchdog : int option;
      (** live-lock watchdog window; [None] = budget / 20, floor 200 *)
  max_mutants : int option;
      (** per-workload site cap, taken round-robin across fault kinds;
          the report records how many sites were dropped *)
  jobs : int option;
      (** worker domains for the mutant sweep; [None] =
          {!Exec.Pool.default_jobs} ([INCA_JOBS] or all cores);
          [Some 1] runs serially without spawning any domain.  The
          report is byte-identical for every job count. *)
  prune_hangs : bool;
      (** let the liveness pre-filter ({!Faults.Prefilter.hang_verdicts})
          classify provably blocking mutants [Hang_detected] without
          simulating them; [false] simulates every such mutant.  The
          classification map is byte-identical either way (CI-gated). *)
}

(** Every strategy of {!Core.Driver.all_strategies} except the carte
    transport flavour: baseline / unoptimized / parallelized /
    optimized. *)
val default_strategies : (string * Core.Driver.strategy) list

val default_config : config

type outcome_class =
  | Detected_by_assertion  (** a synthesized assertion aborted the run *)
  | Hang_detected  (** deadlock detector or live-lock watchdog fired *)
  | Silent_corruption
      (** the run finished with wrong output, or crashed the toolchain *)
  | Benign  (** finished with output equal to the golden run *)
  | Budget_exceeded  (** still running at the cycle budget *)

val class_name : outcome_class -> string

(** Detection means the platform raised a flag the engineer can act on:
    an assertion notification or a hang/live-lock report. *)
val detected : outcome_class -> bool

(** Structured outcome diagnostics: runs keep the raw data and the
    report renders it on demand via {!detail_string}, so classification
    does not format strings inside the sweep's hot loop. *)
type detail =
  | No_detail
  | Message of string  (** assertion text, toolchain crash, sim error *)
  | Spin of { label : string; sites : (string * int) list }
      (** "live-lock" or "deadlock", with (process, state) spin sites *)
  | Output_diff of string list  (** drains whose output differs from golden *)

(** Human-readable rendering of a {!detail} ([""] for [No_detail]). *)
val detail_string : detail -> string

type run = {
  workload : string;
  strategy : string;
  fault : Faults.Fault.t;
  outcome : outcome_class;
  detail : detail;  (** assertion message, spin sites, or output diff *)
  cycles : int;  (** cycles consumed (cycles to detection when detected) *)
  retried : bool;  (** first attempt crashed; this is the retry's result *)
}

type strategy_summary = {
  strategy : string;
  mutants : int;
  by_assertion : int;
  by_hang : int;
  silent : int;
  benign : int;
  over_budget : int;
  mean_detection_cycles : float option;
}

type report = {
  workloads : string list;
  site_count : int;  (** mutants swept per strategy (after any cap) *)
  dropped : int;  (** sites dropped by [max_mutants] *)
  kind_counts : (string * int) list;  (** sites per fault kind *)
  pruned_static : int;
      (** mutant runs the static pre-filter ({!Faults.Prefilter})
          proved equivalent or dead and classified [Benign] without
          simulating *)
  pruned_hang : int;
      (** mutant runs the liveness pre-filter proved certainly blocking
          and classified [Hang_detected] without simulating *)
  runs : run list;
  summaries : strategy_summary list;
}

(** Fault sites of a workload's baseline-compiled IR. *)
val enumerate : workload -> Faults.Fault.t list

(** A planned campaign, split into shards: one shard per (workload,
    strategy, fault site), in canonical sweep order (workload
    outermost, then strategy, then site).  Planning does all the serial
    preparation — cache warming, site enumeration and capping, the
    static pre-filter, golden runs, budget derivation, fork-context
    construction — so shards evaluate independently on any worker
    domain, or under any external scheduler ([inca serve]). *)
type plan

val plan : ?config:config -> workload list -> plan

val shard_count : plan -> int

(** ["workload/strategy/fault"] — the progress label for one shard. *)
val shard_label : plan -> int -> string

(** Evaluate shard [i]: simulate (or reuse the recorded baseline /
    static verdict) and classify.  Pure with respect to the plan; safe
    to call concurrently for distinct shards. *)
val eval_shard : plan -> int -> run

(** The run recorded for a shard whose evaluation crashed (silent
    corruption with the crash message), mirroring the classification a
    crashed mutant receives from {!run}. *)
val crash_run : plan -> int -> string -> run

(** Mark a run as retried when its pool outcome took more than one
    attempt. *)
val with_retry : run -> attempts:int -> run

(** Assemble the report from shard results in shard-index order.  Pure
    bookkeeping: a report merged from any scheduler is byte-identical
    to {!run}'s as long as the results are in index order. *)
val merge : plan -> run list -> report

(** [plan] + evaluate every shard on an {!Exec.Pool} of worker domains
    ([config.jobs]) + [merge].  Compiles go through the shared
    {!Exec.Cache}, and results are collected by shard index, so the
    report is byte-identical for every job count.  [progress] (if
    given) is called once per classified mutant run, on the calling
    domain, in deterministic (shard-index) order. *)
val run : ?config:config -> ?progress:(run -> unit) -> workload list -> report

val detected_of_summary : strategy_summary -> int

(** Per fault kind: (kind, sites, detections per strategy). *)
val kind_matrix : report -> (string * int * (string * int) list) list

(** The human-readable coverage table. *)
val render : report -> string

(** The classification map: one [workload TAB strategy TAB fault TAB
    class] line per mutant run, in canonical sweep order.  Byte-
    identical between [Fork] and [From_reset] modes (CI-gated); cycle
    counts and details may legitimately differ. *)
val render_classes : report -> string

(** The report as a JSON payload (the [inca campaign] entry in a
    {!Core.Report} envelope). *)
val json_of : report -> Json.t
