(** Fault-injection campaign engine (paper Section 5).

    Enumerate every candidate fault site of a lowered program
    ({!Faults.Fault.sites}), compile one mutant per site under each
    assertion-synthesis strategy, run it in the cycle-accurate simulator
    under a per-mutant cycle budget with the live-lock watchdog armed,
    and classify the outcome against the software-simulation golden
    output.  The aggregated table is an assertion-coverage report. *)

(** One application plus the stimulus needed to run it. *)
type workload = {
  wname : string;
  program : Front.Ast.program;
  options : Core.Driver.sim_options;
}

(** Build a workload from InCA-C source text. *)
val workload :
  name:string ->
  ?file:string ->
  feeds:(string * int64 list) list ->
  drains:string list ->
  params:(string * (string * int64) list) list ->
  string ->
  workload

(** The four bundled case-study applications (FIR, DCT, Triple-DES,
    edge detection), sized so a full sweep stays interactive. *)
val bundled : unit -> workload list

type config = {
  strategies : (string * Core.Driver.strategy) list;
  budget : int option;
      (** per-mutant cycle budget; [None] = 4x the unfaulted baseline
          cycle count of the workload, plus slack *)
  watchdog : int option;
      (** live-lock watchdog window; [None] = budget / 20, floor 200 *)
  max_mutants : int option;
      (** per-workload site cap, taken round-robin across fault kinds;
          the report records how many sites were dropped *)
}

(** baseline / unoptimized / parallelized / optimized. *)
val default_strategies : (string * Core.Driver.strategy) list

val default_config : config

type outcome_class =
  | Detected_by_assertion  (** a synthesized assertion aborted the run *)
  | Hang_detected  (** deadlock detector or live-lock watchdog fired *)
  | Silent_corruption
      (** the run finished with wrong output, or crashed the toolchain *)
  | Benign  (** finished with output equal to the golden run *)
  | Budget_exceeded  (** still running at the cycle budget *)

val class_name : outcome_class -> string

(** Detection means the platform raised a flag the engineer can act on:
    an assertion notification or a hang/live-lock report. *)
val detected : outcome_class -> bool

type run = {
  workload : string;
  strategy : string;
  fault : Faults.Fault.t;
  outcome : outcome_class;
  detail : string;  (** assertion message, spin site, or output diff *)
  cycles : int;  (** cycles consumed (cycles to detection when detected) *)
  retried : bool;  (** first attempt crashed; this is the retry's result *)
}

type strategy_summary = {
  strategy : string;
  mutants : int;
  by_assertion : int;
  by_hang : int;
  silent : int;
  benign : int;
  over_budget : int;
  mean_detection_cycles : float option;
}

type report = {
  workloads : string list;
  site_count : int;  (** mutants swept per strategy (after any cap) *)
  dropped : int;  (** sites dropped by [max_mutants] *)
  kind_counts : (string * int) list;  (** sites per fault kind *)
  runs : run list;
  summaries : strategy_summary list;
}

(** Fault sites of a workload's baseline-compiled IR. *)
val enumerate : workload -> Faults.Fault.t list

(** Sweep every enumerated fault site of every workload under every
    strategy.  [progress] (if given) is called once per completed mutant
    run — hook for CLI progress output. *)
val run : ?config:config -> ?progress:(run -> unit) -> workload list -> report

val detected_of_summary : strategy_summary -> int

(** Per fault kind: (kind, sites, detections per strategy). *)
val kind_matrix : report -> (string * int * (string * int) list) list

(** The human-readable coverage table. *)
val render : report -> string

(** The same report as a JSON document (machine-readable). *)
val render_json : report -> string
