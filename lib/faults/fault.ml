(** Fault injection: reproduce the hardware-translation bugs of the
    paper's Section 5.1 as IR-to-IR rewrites applied between lowering
    and scheduling.

    The software-simulation path ({!Interp}) interprets the *source*, so
    it never sees these faults — recreating the paper's headline
    scenario: assertions pass in software simulation and fail (or expose
    a hang) only in circuit.

    - {!narrow_compare} reproduces the erroneous narrow comparison of
      Figure 3: Impulse-C compiled a 64-bit comparison of two counters
      as a 5-bit comparison, turning [4294967286 > 4294967296] (false)
      into [22 > 0] (true).
    - {!read_for_write} reproduces the Triple-DES hang: a memory write
      is translated as a read, so a flag never lands in block RAM and a
      dependent loop spins forever in hardware. *)

module Ir = Mir.Ir
open Front.Ast

type selector = All | Nth of int  (** which matching site to corrupt (0-based) *)

type t =
  | Narrow_compare of { fproc : string; select : selector; mask_bits : int }
  | Read_for_write of { fproc : string; select : selector }
  | Stuck_stream_bit of { fproc : string; stream : string; select : selector; bit : int; stuck_to : bool }
  | Drop_stream_write of { fproc : string; stream : string; select : selector }
  | Loop_bound_off_by_one of { fproc : string; select : selector; delta : int64 }

(** Human-readable fault-kind name (campaign report rows). *)
let kind_name = function
  | Narrow_compare _ -> "narrow-compare"
  | Read_for_write _ -> "read-for-write"
  | Stuck_stream_bit _ -> "stuck-stream-bit"
  | Drop_stream_write _ -> "drop-stream-write"
  | Loop_bound_off_by_one _ -> "loop-off-by-one"

let describe = function
  | Narrow_compare { fproc; select; mask_bits } ->
      Printf.sprintf "narrow-compare(%s%s, %d bits)" fproc
        (match select with All -> "" | Nth k -> Printf.sprintf "#%d" k)
        mask_bits
  | Read_for_write { fproc; select } ->
      Printf.sprintf "read-for-write(%s%s)" fproc
        (match select with All -> "" | Nth k -> Printf.sprintf "#%d" k)
  | Stuck_stream_bit { fproc; stream; select; bit; stuck_to } ->
      Printf.sprintf "stuck-bit(%s.%s%s, bit %d = %d)" fproc stream
        (match select with All -> "" | Nth k -> Printf.sprintf "#%d" k)
        bit
        (if stuck_to then 1 else 0)
  | Drop_stream_write { fproc; stream; select } ->
      Printf.sprintf "drop-write(%s.%s%s)" fproc stream
        (match select with All -> "" | Nth k -> Printf.sprintf "#%d" k)
  | Loop_bound_off_by_one { fproc; select; delta } ->
      Printf.sprintf "loop-off-by-one(%s%s, %+Ld)" fproc
        (match select with All -> "" | Nth k -> Printf.sprintf "#%d" k)
        delta

(* Rewrite instruction streams with a stateful site counter and a fresh
   register allocator. *)
type rewriter = {
  mutable counter : int;
  mutable next_reg : int;
  mutable new_regs : (Ir.reg * Ir.reg_info) list;
  select : selector;
}

let selected rw =
  let n = rw.counter in
  rw.counter <- n + 1;
  match rw.select with All -> true | Nth k -> n = k

let fresh rw rty =
  let r = rw.next_reg in
  rw.next_reg <- r + 1;
  rw.new_regs <- (r, { Ir.rty; origin = None }) :: rw.new_regs;
  r

let rec map_segments f (body : Ir.body) : Ir.body =
  List.map
    (function
      | Ir.Straight insts -> Ir.Straight (f insts)
      | Ir.If_else r ->
          Ir.If_else
            {
              r with
              cond_insts = f r.cond_insts;
              then_ = map_segments f r.then_;
              else_ = map_segments f r.else_;
            }
      | Ir.Loop r ->
          Ir.Loop
            {
              r with
              cond_insts = f r.cond_insts;
              body = map_segments f r.body;
              step_insts = f r.step_insts;
            })
    body

let apply_to_proc (p : Ir.proc_ir) rewrite : Ir.proc_ir =
  let next_reg = List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 p.Ir.regs in
  let rw = { counter = 0; next_reg; new_regs = []; select = All } in
  let rw, f = rewrite rw in
  let body = map_segments f p.Ir.body in
  { p with Ir.body; regs = p.Ir.regs @ List.rev rw.new_regs }

let is_wide_compare (i : Ir.inst) =
  match i with
  | Ir.Bin { op = (Lt | Le | Gt | Ge); ty = Tint (_, W64); _ } -> true
  | _ -> false

(* 4294967286 & 31 = 22 and 4294967296 & 31 = 0: the Figure 3 numbers. *)
let narrow_compare_proc ~select ~mask_bits (p : Ir.proc_ir) : Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let mask = Int64.sub (Int64.shift_left 1L mask_bits) 1L in
      let narrow_ty = Tint (Unsigned, W64) in
      let f insts =
        List.concat_map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Bin { dst; op; a; b; ty = _ } when is_wide_compare g.Ir.i && selected rw ->
                let ta = fresh rw narrow_ty and tb = fresh rw narrow_ty in
                [
                  { g with Ir.i = Ir.Bin { dst = ta; op = Band; a; b = Ir.Imm mask; ty = narrow_ty } };
                  { g with Ir.i = Ir.Bin { dst = tb; op = Band; a = b; b = Ir.Imm mask; ty = narrow_ty } };
                  { g with Ir.i = Ir.Bin { dst; op; a = Ir.Reg ta; b = Ir.Reg tb; ty = narrow_ty } };
                ]
            | _ -> [ g ])
          insts
      in
      (rw, f))

(* Stores into replica memories (Section 3.2 mirrors) are assertion
   plumbing added by the optimizer, not application stores: skip them
   without counting so [Nth k] names the same application store under
   every synthesis strategy. *)
let is_app_store p mem =
  match Ir.find_mem p mem with
  | Some m -> m.Ir.mirror_of = None
  | None -> true

let read_for_write_proc ~select (p : Ir.proc_ir) : Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let f insts =
        List.map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Store { mem; addr; v = _ } when is_app_store p mem && selected rw ->
                let dst =
                  let elem =
                    match Ir.find_mem p mem with Some m -> m.Ir.elem | None -> int32_t
                  in
                  fresh rw elem
                in
                { g with Ir.i = Ir.Load { dst; mem; addr } }
            | _ -> g)
          insts
      in
      (rw, f))

(* A stream-write datapath bit wired to a constant: the written value
   passes through an OR (stuck at 1) or AND (stuck at 0) with a one-hot
   mask — the classic routing/synthesis fault a software model of the
   same C never exhibits. *)
let stuck_stream_bit_proc ~stream ~select ~bit ~stuck_to ~elem (p : Ir.proc_ir) :
    Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let one_hot = Int64.shift_left 1L bit in
      let f insts =
        List.concat_map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Swrite { stream = s; v } when s = stream && selected rw ->
                let tv = fresh rw elem in
                let op, mask =
                  if stuck_to then (Bor, one_hot) else (Band, Int64.lognot one_hot)
                in
                [
                  { g with Ir.i = Ir.Bin { dst = tv; op; a = v; b = Ir.Imm mask; ty = elem } };
                  { g with Ir.i = Ir.Swrite { stream = s; v = Ir.Reg tv } };
                ]
            | _ -> [ g ])
          insts
      in
      (rw, f))

(* A dropped stream write: the FIFO write-enable never asserts (the
   handshake still advances), modelled by guarding the push on a fresh
   register that is never written and therefore stays 0. *)
let drop_stream_write_proc ~stream ~select (p : Ir.proc_ir) : Ir.proc_ir =
  apply_to_proc p (fun rw ->
      let rw = { rw with select } in
      let f insts =
        List.map
          (fun (g : Ir.ginst) ->
            match g.Ir.i with
            | Ir.Swrite { stream = s; v = _ } when s = stream && selected rw ->
                let never = fresh rw Tbool in
                { g with Ir.guard = Some (never, true) }
            | _ -> g)
          insts
      in
      (rw, f))

(* Pre-order traversal over loop nodes, rewriting each loop's condition
   instructions; shared counting order with {!sites} so [Nth k] names
   the same loop in both. *)
let rec map_loop_conds f (body : Ir.body) : Ir.body =
  List.map
    (function
      | Ir.Straight _ as it -> it
      | Ir.If_else r ->
          Ir.If_else
            { r with then_ = map_loop_conds f r.then_; else_ = map_loop_conds f r.else_ }
      | Ir.Loop r ->
          let cond_insts = f r.cond r.cond_insts in
          Ir.Loop { r with cond_insts; body = map_loop_conds f r.body })
    body

(* A mistranslated loop bound: the trip-count comparison sees a bound
   off by [delta] (one extra or one missing iteration in hardware). *)
let loop_bound_off_by_one_proc ~select ~delta (p : Ir.proc_ir) : Ir.proc_ir =
  let next_reg = List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 p.Ir.regs in
  let rw = { counter = 0; next_reg; new_regs = []; select } in
  let f cond cond_insts =
    if not (selected rw) then cond_insts
    else
      let rewritten = ref false in
      List.concat_map
        (fun (g : Ir.ginst) ->
          match g.Ir.i with
          | Ir.Bin { dst; op = (Lt | Le | Gt | Ge) as op; a; b; ty }
            when (not !rewritten) && dst = cond ->
              rewritten := true;
              let pre, b' =
                match b with
                | Ir.Imm n -> ([], Ir.Imm (Int64.add n delta))
                | Ir.Reg r ->
                    let tb = fresh rw ty in
                    ( [ { g with
                          Ir.i = Ir.Bin { dst = tb; op = Add; a = Ir.Reg r; b = Ir.Imm delta; ty } } ],
                      Ir.Reg tb )
              in
              pre @ [ { g with Ir.i = Ir.Bin { dst; op; a; b = b'; ty } } ]
          | _ -> [ g ])
        cond_insts
  in
  let body = map_loop_conds f p.Ir.body in
  { p with Ir.body; regs = p.Ir.regs @ List.rev rw.new_regs }

(** Apply one fault to a whole program IR. *)
let apply (fault : t) (prog : Ir.program_ir) : Ir.program_ir =
  let on_proc name f =
    {
      prog with
      Ir.procs =
        List.map (fun (p : Ir.proc_ir) -> if p.Ir.name = name then f p else p) prog.Ir.procs;
    }
  in
  match fault with
  | Narrow_compare { fproc; select; mask_bits } ->
      on_proc fproc (narrow_compare_proc ~select ~mask_bits)
  | Read_for_write { fproc; select } -> on_proc fproc (read_for_write_proc ~select)
  | Stuck_stream_bit { fproc; stream; select; bit; stuck_to } ->
      let elem =
        match List.find_opt (fun (d : stream_decl) -> d.sname = stream) prog.Ir.streams with
        | Some d -> d.elem
        | None -> int32_t
      in
      on_proc fproc (stuck_stream_bit_proc ~stream ~select ~bit ~stuck_to ~elem)
  | Drop_stream_write { fproc; stream; select } ->
      on_proc fproc (drop_stream_write_proc ~stream ~select)
  | Loop_bound_off_by_one { fproc; select; delta } ->
      on_proc fproc (loop_bound_off_by_one_proc ~select ~delta)

let apply_all faults prog = List.fold_left (fun p f -> apply f p) prog faults

(* Counting helpers reuse the exact rewrite traversals, so a site index
   found here is the same [Nth k] the rewriters select. *)
let count_matches (p : Ir.proc_ir) matches =
  let n = ref 0 in
  let f insts =
    List.iter (fun (g : Ir.ginst) -> if matches g then incr n) insts;
    insts
  in
  ignore (map_segments f p.Ir.body);
  !n

let rewriteable_loop_indices (p : Ir.proc_ir) =
  let acc = ref [] and n = ref 0 in
  let f cond cond_insts =
    let k = !n in
    incr n;
    if
      List.exists
        (fun (g : Ir.ginst) ->
          match g.Ir.i with
          | Ir.Bin { dst; op = Lt | Le | Gt | Ge; _ } -> dst = cond
          | _ -> false)
        cond_insts
    then acc := k :: !acc;
    cond_insts
  in
  ignore (map_loop_conds f p.Ir.body);
  List.rev !acc

let range n = List.init n (fun k -> k)

(** Enumerate every candidate fault site of a lowered program as a list
    of concrete single-site faults ([Nth]-selected), one per matching
    instruction or loop, across all hardware processes.

    Enumerate against the {e baseline}-strategy IR: the counting rules
    above (application stores only, per-stream anchoring, loops-only
    pre-order) keep each ordinal naming the same source construct under
    the instrumented strategies, so one site list drives the whole
    campaign. *)
let sites (prog : Ir.program_ir) : t list =
  let stream_width s =
    match List.find_opt (fun (d : stream_decl) -> d.sname = s) prog.Ir.streams with
    | Some { elem = Tint (_, w); _ } -> bits_of_width w
    | Some { elem = Tbool; _ } -> 1
    | Some _ | None -> 32
  in
  List.concat_map
    (fun (p : Ir.proc_ir) ->
      if p.Ir.kind <> Hardware then []
      else
        let fproc = p.Ir.name in
        let compares =
          count_matches p (fun g -> is_wide_compare g.Ir.i)
        in
        let app_stores =
          count_matches p (fun g ->
              match g.Ir.i with
              | Ir.Store { mem; _ } -> is_app_store p mem
              | _ -> false)
        in
        let narrow =
          List.map
            (fun k -> Narrow_compare { fproc; select = Nth k; mask_bits = 5 })
            (range compares)
        in
        let rfw =
          List.map (fun k -> Read_for_write { fproc; select = Nth k }) (range app_stores)
        in
        let stream_faults =
          List.concat_map
            (fun (d : stream_decl) ->
              let writes =
                count_matches p (fun g ->
                    match g.Ir.i with
                    | Ir.Swrite { stream; _ } -> stream = d.sname
                    | _ -> false)
              in
              List.concat_map
                (fun k ->
                  (* a mid-range bit stuck at 1 (corrupts any plausible
                     payload) and a low bit stuck at 0: the two stuck-at
                     polarities fail differently downstream *)
                  let bit = Stdlib.max 1 (stream_width d.sname / 2) - 1 in
                  [
                    Stuck_stream_bit
                      { fproc; stream = d.sname; select = Nth k; bit; stuck_to = true };
                    Stuck_stream_bit
                      { fproc; stream = d.sname; select = Nth k; bit = 0; stuck_to = false };
                    Drop_stream_write { fproc; stream = d.sname; select = Nth k };
                  ])
                (range writes))
            prog.Ir.streams
        in
        let loops =
          List.concat_map
            (fun k ->
              (* one extra and one missing iteration are distinct bugs:
                 the former over-reads (often a hang), the latter
                 silently truncates *)
              [
                Loop_bound_off_by_one { fproc; select = Nth k; delta = 1L };
                Loop_bound_off_by_one { fproc; select = Nth k; delta = -1L };
              ])
            (rewriteable_loop_indices p)
        in
        narrow @ rfw @ stream_faults @ loops)
    prog.Ir.procs

(* --- Padded instrumentation (split-stream evaluation) ---------------------- *)

(* For fork-point mutant evaluation the campaign compiles ONE design per
   (workload, strategy) with every fault site padded simultaneously,
   instead of one design per mutant.  Each pad is parameterized by fresh
   origin-named registers the program never writes; with all parameters
   at their reset value 0 every pad is an arithmetic identity, so the
   padded design behaves exactly like the original — and arming a single
   site (patching its registers) reproduces the corresponding legacy
   rewrite's semantics.  A marker tap (id [marker_base] + site index)
   placed ahead of each site reports first-activation cycles through
   {!Sim.Engine}'s [on_site] hook. *)

type site = {
  s_index : int;  (** global site index; marker id = base + index *)
  s_fault : t;    (** the equivalent legacy single-site fault *)
  s_proc : string;
  s_arm : (string * int64) list;
      (** origin-name register bindings (within [s_proc]) arming this
          mutant in the padded design *)
  s_padded : bool;
      (** false when the site could not be padded (e.g. an already-
          guarded instruction): evaluate it via the legacy path *)
}

type instrumented = {
  ip_prog : Ir.program_ir;  (** the padded program (all pads neutral) *)
  ip_sites : site list;     (** in {!sites} enumeration order *)
}

let default_marker_base = 1_000_000

let instrument_all ?(marker_base = default_marker_base) (prog : Ir.program_ir) :
    instrumented =
  let gidx = ref 0 in
  let sites_acc = ref [] in
  let stream_width s =
    match List.find_opt (fun (d : stream_decl) -> d.sname = s) prog.Ir.streams with
    | Some { elem = Tint (_, w); _ } -> bits_of_width w
    | Some { elem = Tbool; _ } -> 1
    | Some _ | None -> 32
  in
  let stream_elem s =
    match List.find_opt (fun (d : stream_decl) -> d.sname = s) prog.Ir.streams with
    | Some d -> d.elem
    | None -> int32_t
  in
  let procs =
    List.map
      (fun (p : Ir.proc_ir) ->
        if p.Ir.kind <> Hardware then p
        else begin
          let fproc = p.Ir.name in
          let next_reg =
            ref (List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 p.Ir.regs)
          in
          let new_regs = ref [] in
          let fresh ?origin rty =
            let r = !next_reg in
            incr next_reg;
            new_regs := (r, { Ir.rty; origin }) :: !new_regs;
            r
          in
          let add_site fault arm padded =
            let i = !gidx in
            incr gidx;
            sites_acc :=
              { s_index = i; s_fault = fault; s_proc = fproc; s_arm = arm;
                s_padded = padded }
              :: !sites_acc;
            i
          in
          let marker (g : Ir.ginst) idx =
            { g with Ir.i = Ir.Tap { id = marker_base + idx; args = [] } }
          in
          (* 1. narrow compares: dst = (a & ~fm) `op` (b & ~fm); fm = 0
             leaves both operands intact, fm = ~mask reproduces the
             mask_bits-bit comparison of Figure 3 (masked operands are
             non-negative, so the original signedness is equivalent to
             the legacy unsigned compare). *)
          let nc = ref 0 in
          let body =
            map_segments
              (fun insts ->
                List.concat_map
                  (fun (g : Ir.ginst) ->
                    match g.Ir.i with
                    | Ir.Bin { dst; op; a; b; ty } when is_wide_compare g.Ir.i ->
                        let k = !nc in
                        incr nc;
                        let mask_bits = 5 in
                        let fault = Narrow_compare { fproc; select = Nth k; mask_bits } in
                        let pname = Printf.sprintf "__fault_nc_%d" k in
                        let mask = Int64.sub (Int64.shift_left 1L mask_bits) 1L in
                        let idx = add_site fault [ (pname, Int64.lognot mask) ] true in
                        let fm = fresh ~origin:pname ty in
                        let m = fresh ty and ta = fresh ty and tb = fresh ty in
                        [
                          marker g idx;
                          { g with Ir.i = Ir.Un { dst = m; op = Bnot; a = Ir.Reg fm; ty } };
                          { g with Ir.i = Ir.Bin { dst = ta; op = Band; a; b = Ir.Reg m; ty } };
                          { g with Ir.i = Ir.Bin { dst = tb; op = Band; a = b; b = Ir.Reg m; ty } };
                          { g with Ir.i = Ir.Bin { dst; op; a = Ir.Reg ta; b = Ir.Reg tb; ty } };
                        ]
                    | _ -> [ g ])
                  insts)
              p.Ir.body
          in
          (* 2. read-for-write: the store and a shadow load guarded on a
             flag register; fw = 0 stores (original), fw = 1 loads only
             (the Triple-DES mistranslation). *)
          let rfw = ref 0 in
          let body =
            map_segments
              (fun insts ->
                List.concat_map
                  (fun (g : Ir.ginst) ->
                    match g.Ir.i with
                    | Ir.Store { mem; addr; v } when is_app_store p mem ->
                        let k = !rfw in
                        incr rfw;
                        let fault = Read_for_write { fproc; select = Nth k } in
                        if g.Ir.guard <> None then begin
                          ignore (add_site fault [] false);
                          [ g ]
                        end
                        else begin
                          let pname = Printf.sprintf "__fault_rfw_%d" k in
                          let idx = add_site fault [ (pname, 1L) ] true in
                          let fw = fresh ~origin:pname Tbool in
                          let elem =
                            match Ir.find_mem p mem with
                            | Some m -> m.Ir.elem
                            | None -> int32_t
                          in
                          let dead = fresh elem in
                          [
                            marker g idx;
                            { Ir.i = Ir.Store { mem; addr; v }; guard = Some (fw, false) };
                            { Ir.i = Ir.Load { dst = dead; mem; addr }; guard = Some (fw, true) };
                          ]
                        end
                    | _ -> [ g ])
                  insts)
              body
          in
          (* 3. stream writes: one pad group {or-mask, and-mask, enable}
             per write serves all three faults of the occurrence
             (stuck-at-1, stuck-at-0, dropped write). *)
          let body =
            List.fold_left
              (fun body (d : stream_decl) ->
                let occ = ref 0 in
                map_segments
                  (fun insts ->
                    List.concat_map
                      (fun (g : Ir.ginst) ->
                        match g.Ir.i with
                        | Ir.Swrite { stream = s; v } when s = d.sname ->
                            let k = !occ in
                            incr occ;
                            let bit = Stdlib.max 1 (stream_width s / 2) - 1 in
                            let f1 =
                              Stuck_stream_bit
                                { fproc; stream = s; select = Nth k; bit; stuck_to = true }
                            and f0 =
                              Stuck_stream_bit
                                { fproc; stream = s; select = Nth k; bit = 0;
                                  stuck_to = false }
                            and fd = Drop_stream_write { fproc; stream = s; select = Nth k } in
                            if g.Ir.guard <> None then begin
                              ignore (add_site f1 [] false);
                              ignore (add_site f0 [] false);
                              ignore (add_site fd [] false);
                              [ g ]
                            end
                            else begin
                              let base = Printf.sprintf "__fault_sw_%s_%d" s k in
                              let n_or = base ^ "_or"
                              and n_and = base ^ "_and"
                              and n_en = base ^ "_en" in
                              let i1 =
                                add_site f1 [ (n_or, Int64.shift_left 1L bit) ] true
                              in
                              let i0 = add_site f0 [ (n_and, 1L) ] true in
                              let id_ = add_site fd [ (n_en, 1L) ] true in
                              let elem = stream_elem s in
                              let om = fresh ~origin:n_or elem in
                              let am = fresh ~origin:n_and elem in
                              let en = fresh ~origin:n_en Tbool in
                              let t1 = fresh elem and m2 = fresh elem and t2 = fresh elem in
                              [
                                marker g i1;
                                marker g i0;
                                marker g id_;
                                { g with
                                  Ir.i = Ir.Bin { dst = t1; op = Bor; a = v; b = Ir.Reg om; ty = elem } };
                                { g with
                                  Ir.i = Ir.Un { dst = m2; op = Bnot; a = Ir.Reg am; ty = elem } };
                                { g with
                                  Ir.i =
                                    Ir.Bin
                                      { dst = t2; op = Band; a = Ir.Reg t1; b = Ir.Reg m2; ty = elem } };
                                { Ir.i = Ir.Swrite { stream = s; v = Ir.Reg t2 };
                                  guard = Some (en, false) };
                              ]
                            end
                        | _ -> [ g ])
                      insts)
                  body)
              body prog.Ir.streams
          in
          (* 4. loop bounds: the trip-count comparison reads bound + dr;
             dr = 0 is exact, ±1 reproduces the off-by-one translations.
             The adjusted bound is materialized even for immediate bounds
             so arming never changes the schedule. *)
          let loop = ref 0 in
          let body =
            map_loop_conds
              (fun cond cond_insts ->
                let k = !loop in
                incr loop;
                let rewritten = ref false in
                List.concat_map
                  (fun (g : Ir.ginst) ->
                    match g.Ir.i with
                    | Ir.Bin { dst; op = (Lt | Le | Gt | Ge) as op; a; b; ty }
                      when (not !rewritten) && dst = cond ->
                        rewritten := true;
                        let fplus = Loop_bound_off_by_one { fproc; select = Nth k; delta = 1L }
                        and fminus =
                          Loop_bound_off_by_one { fproc; select = Nth k; delta = -1L }
                        in
                        if g.Ir.guard <> None then begin
                          ignore (add_site fplus [] false);
                          ignore (add_site fminus [] false);
                          [ g ]
                        end
                        else begin
                          let pname = Printf.sprintf "__fault_loop_%d" k in
                          let ip = add_site fplus [ (pname, 1L) ] true in
                          let im = add_site fminus [ (pname, -1L) ] true in
                          let dr = fresh ~origin:pname ty in
                          let td = fresh ty in
                          [
                            marker g ip;
                            marker g im;
                            { g with
                              Ir.i = Ir.Bin { dst = td; op = Add; a = b; b = Ir.Reg dr; ty } };
                            { g with Ir.i = Ir.Bin { dst; op; a; b = Ir.Reg td; ty } };
                          ]
                        end
                    | _ -> [ g ])
                  cond_insts)
              body
          in
          { p with Ir.body; regs = p.Ir.regs @ List.rev !new_regs }
        end)
      prog.Ir.procs
  in
  { ip_prog = { prog with Ir.procs }; ip_sites = List.rev !sites_acc }
