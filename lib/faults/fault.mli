(** Fault injection: the hardware-translation bugs of the paper's
    Section 5.1 as IR-to-IR rewrites applied between lowering and
    scheduling.  The software-simulation path interprets the *source*,
    so it never sees these faults — recreating the paper's headline
    scenario: assertions pass in software simulation and fail (or expose
    a hang) only in circuit. *)

(** Which matching site to corrupt (0-based occurrence index). *)
type selector = All | Nth of int

type t =
  | Narrow_compare of { fproc : string; select : selector; mask_bits : int }
      (** Figure 3: a 64-bit comparison compiled as a [mask_bits]-bit
          comparison, so 4294967286 > 4294967296 becomes 22 > 0 *)
  | Read_for_write of { fproc : string; select : selector }
      (** the Triple-DES hang: a block-RAM store translated as a read *)
  | Stuck_stream_bit of {
      fproc : string;
      stream : string;
      select : selector;
      bit : int;
      stuck_to : bool;
    }
      (** a stream-write datapath bit wired to a constant: the value
          written to [stream] has [bit] forced to [stuck_to] *)
  | Drop_stream_write of { fproc : string; stream : string; select : selector }
      (** the FIFO write-enable never asserts: the selected write to
          [stream] is silently dropped while the FSM still advances *)
  | Loop_bound_off_by_one of { fproc : string; select : selector; delta : int64 }
      (** a mistranslated trip count: the selected loop's bound
          comparison sees the bound shifted by [delta] *)

(** Short kind name ("narrow-compare", "read-for-write", …) for campaign
    report rows. *)
val kind_name : t -> string

(** One-line human-readable description of a concrete fault. *)
val describe : t -> string

(** Apply one fault to a program IR (processes other than the target are
    untouched). *)
val apply : t -> Mir.Ir.program_ir -> Mir.Ir.program_ir

val apply_all : t list -> Mir.Ir.program_ir -> Mir.Ir.program_ir

(** Enumerate every candidate fault site of a lowered program as
    concrete single-site ([Nth]-selected) faults: every wide comparison,
    every application store, every stream write (as both a stuck bit and
    a dropped write), and every loop with a rewriteable bound, across
    all hardware processes.  Enumerate on the baseline-strategy IR — the
    ordinals are stable under the instrumented strategies. *)
val sites : Mir.Ir.program_ir -> t list
