(** Fault injection: the hardware-translation bugs of the paper's
    Section 5.1 as IR-to-IR rewrites applied between lowering and
    scheduling.  The software-simulation path interprets the *source*,
    so it never sees these faults — recreating the paper's headline
    scenario: assertions pass in software simulation and fail (or expose
    a hang) only in circuit. *)

(** Which matching site to corrupt (0-based occurrence index). *)
type selector = All | Nth of int

type t =
  | Narrow_compare of { fproc : string; select : selector; mask_bits : int }
      (** Figure 3: a 64-bit comparison compiled as a [mask_bits]-bit
          comparison, so 4294967286 > 4294967296 becomes 22 > 0 *)
  | Read_for_write of { fproc : string; select : selector }
      (** the Triple-DES hang: a block-RAM store translated as a read *)
  | Stuck_stream_bit of {
      fproc : string;
      stream : string;
      select : selector;
      bit : int;
      stuck_to : bool;
    }
      (** a stream-write datapath bit wired to a constant: the value
          written to [stream] has [bit] forced to [stuck_to] *)
  | Drop_stream_write of { fproc : string; stream : string; select : selector }
      (** the FIFO write-enable never asserts: the selected write to
          [stream] is silently dropped while the FSM still advances *)
  | Loop_bound_off_by_one of { fproc : string; select : selector; delta : int64 }
      (** a mistranslated trip count: the selected loop's bound
          comparison sees the bound shifted by [delta] *)

(** Short kind name ("narrow-compare", "read-for-write", …) for campaign
    report rows. *)
val kind_name : t -> string

(** One-line human-readable description of a concrete fault. *)
val describe : t -> string

(** Apply one fault to a program IR (processes other than the target are
    untouched). *)
val apply : t -> Mir.Ir.program_ir -> Mir.Ir.program_ir

val apply_all : t list -> Mir.Ir.program_ir -> Mir.Ir.program_ir

(** Enumerate every candidate fault site of a lowered program as
    concrete single-site ([Nth]-selected) faults: every wide comparison,
    every application store, every stream write (as both a stuck bit and
    a dropped write), and every loop with a rewriteable bound, across
    all hardware processes.  Enumerate on the baseline-strategy IR — the
    ordinals are stable under the instrumented strategies. *)
val sites : Mir.Ir.program_ir -> t list

(** {2 Traversal helpers}

    Exposed for {!Prefilter}, which must number fault sites in exactly
    the order the rewriters and {!sites} do. *)

(** Rewrite every straight-line instruction segment of a body, in the
    shared traversal order all site counting uses. *)
val map_segments :
  (Mir.Ir.ginst list -> Mir.Ir.ginst list) -> Mir.Ir.body -> Mir.Ir.body

(** Rewrite every loop's condition block, pre-order. *)
val map_loop_conds :
  (Mir.Ir.reg -> Mir.Ir.ginst list -> Mir.Ir.ginst list) ->
  Mir.Ir.body ->
  Mir.Ir.body

(** The narrow-compare site predicate (64-bit ordering comparison). *)
val is_wide_compare : Mir.Ir.inst -> bool

(** True when [mem] is an application store target (not a replica
    mirror added by the optimizer). *)
val is_app_store : Mir.Ir.proc_ir -> string -> bool

(** {2 Padded instrumentation (split-stream evaluation)}

    For fork-point mutant evaluation the campaign compiles one design
    per (workload, strategy) with {e every} fault site padded
    simultaneously, instead of one design per mutant.  Each pad is
    parameterized by fresh origin-named registers the program never
    writes: with all parameters at their reset value 0 every pad is an
    arithmetic identity (the padded design behaves exactly like the
    original), and arming a single site — patching its registers via
    {!Sim.Engine.arm} — reproduces the corresponding legacy rewrite's
    semantics.  A marker tap placed ahead of each site reports
    first-activation cycles through the engine's [on_site] hook. *)

type site = {
  s_index : int;  (** global site index; marker id = base + index *)
  s_fault : t;    (** the equivalent legacy single-site fault *)
  s_proc : string;
  s_arm : (string * int64) list;
      (** origin-name register bindings (within [s_proc]) arming this
          mutant in the padded design *)
  s_padded : bool;
      (** false when the site could not be padded (e.g. an already-
          guarded instruction): evaluate it via the legacy path *)
}

type instrumented = {
  ip_prog : Mir.Ir.program_ir;  (** the padded program, all pads neutral *)
  ip_sites : site list;         (** in {!sites} enumeration order *)
}

val default_marker_base : int

(** Pad every fault site of the program at once.  [ip_sites] lists the
    sites in the exact order (and count) of {!sites} on the same IR. *)
val instrument_all : ?marker_base:int -> Mir.Ir.program_ir -> instrumented
