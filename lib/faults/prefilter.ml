(** Static mutant pre-filter.

    Before the campaign simulates a mutant, a forward abstract
    interpretation of the (unfaulted) baseline IR — over the same
    interval x constancy x parity domain the assertion verifier uses —
    tries to prove the mutant can never diverge from the baseline:

    - {b Equivalent}: the rewrite is an arithmetic identity on every
      value that can reach the site.  A narrow-compare pad is an
      identity when both operands provably fit the mask ([v & mask = v]
      for [0 <= v <= mask]); a stuck-at-1 bit is an identity when the
      written value provably has the bit set (bit 0 via parity, higher
      bits via constancy), and dually for stuck-at-0.
    - {b Dead}: the site is statically unreachable (a branch or loop
      whose condition the domain decides), so the mutant never
      activates and behaves exactly like the baseline.
    - {b Unknown}: simulate it.

    Soundness: streams and extern calls are treated as unconstrained
    (top), memories as a flow-insensitive join of their ROM image, the
    power-on zero fill and every stored value, and loops run to a
    widened fixpoint — so the abstract reachability and value sets
    over-approximate every concrete run under every workload feed.
    FIFO back-pressure only ever {e removes} concrete executions, so it
    cannot defeat the over-approximation.  The analysis is input-
    independent and runs identically in fork-point and from-reset
    campaign modes, which the CI classification-identity gate relies
    on. *)

module Ir = Mir.Ir
module D = Analysis.Domain
open Front.Ast

type verdict = Equivalent | Dead | Unknown

let verdict_name = function
  | Equivalent -> "equivalent"
  | Dead -> "dead"
  | Unknown -> "unknown"

(* --- Site observations ------------------------------------------------------ *)

(* What the interpreter records at each syntactic fault site: whether
   any abstractly-reachable state executes it, and the join of the
   operand values it sees there. *)
type obs = { mutable visited : bool; mutable a : D.t; mutable b : D.t }

let fresh_obs () = { visited = false; a = D.Bot; b = D.Bot }

(* Per-process observation tables, keyed exactly like the rewriters
   select sites: wide compares / app stores by their occurrence index in
   [Fault.map_segments] order, stream writes by (stream, per-stream
   occurrence), loops by pre-order index in [Fault.map_loop_conds]
   order. *)
type proc_obs = {
  cmp : (int, obs) Hashtbl.t;
  stores : (int, obs) Hashtbl.t;
  swrites : (string * int, obs) Hashtbl.t;
  loops : (int, obs) Hashtbl.t;
}

(* Tags attach an observation cell to a syntactic instruction by
   physical identity: the numbering pre-pass walks the body with the
   same traversal the rewriters use, and the interpreter — which visits
   in execution order, possibly many times — looks its cell back up.
   Bodies are small, so association lists are fine. *)
type tags = {
  mutable by_ginst : (Ir.ginst * obs) list;
  mutable by_loop : (Ir.ginst list * obs) list;  (* keyed by cond_insts *)
}

let number_proc (p : Ir.proc_ir) : proc_obs * tags =
  let po =
    {
      cmp = Hashtbl.create 8;
      stores = Hashtbl.create 8;
      swrites = Hashtbl.create 8;
      loops = Hashtbl.create 8;
    }
  in
  let tags = { by_ginst = []; by_loop = [] } in
  let ncmp = ref 0 and nstore = ref 0 in
  let sw_counts : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let tag_ginst g o = tags.by_ginst <- (g, o) :: tags.by_ginst in
  let seg insts =
    List.iter
      (fun (g : Ir.ginst) ->
        if Fault.is_wide_compare g.Ir.i then begin
          let o = fresh_obs () in
          Hashtbl.replace po.cmp !ncmp o;
          incr ncmp;
          tag_ginst g o
        end
        else
          match g.Ir.i with
          | Ir.Store { mem; _ } when Fault.is_app_store p mem ->
              let o = fresh_obs () in
              Hashtbl.replace po.stores !nstore o;
              incr nstore;
              tag_ginst g o
          | Ir.Swrite { stream; _ } ->
              let c =
                match Hashtbl.find_opt sw_counts stream with
                | Some c -> c
                | None ->
                    let c = ref 0 in
                    Hashtbl.add sw_counts stream c;
                    c
              in
              let o = fresh_obs () in
              Hashtbl.replace po.swrites (stream, !c) o;
              incr c;
              tag_ginst g o
          | _ -> ())
      insts;
    insts
  in
  ignore (Fault.map_segments seg p.Ir.body);
  let nloop = ref 0 in
  let loop_f _cond cond_insts =
    let k = !nloop in
    incr nloop;
    (* An empty cond block is physically the shared [] — but such a
       loop has no rewriteable bound, hence no site to observe. *)
    if cond_insts <> [] then begin
      let o = fresh_obs () in
      Hashtbl.replace po.loops k o;
      tags.by_loop <- (cond_insts, o) :: tags.by_loop
    end;
    cond_insts
  in
  ignore (Fault.map_loop_conds loop_f p.Ir.body);
  (po, tags)

(* --- Abstract interpreter --------------------------------------------------- *)

(* The default only matters for registers missing from the allocation
   list (which well-formed IR does not produce). *)
let widest_ty = Tint (Signed, W64)

let analyze_proc (streams : stream_decl list) (p : Ir.proc_ir) : proc_obs =
  let po, tags = number_proc p in
  let nregs = List.fold_left (fun m (r, _) -> Stdlib.max m (r + 1)) 1 p.Ir.regs in
  let reg_ty = Array.make nregs widest_ty in
  List.iter (fun (r, (info : Ir.reg_info)) -> reg_ty.(r) <- info.Ir.rty) p.Ir.regs;
  let elem_ty stream =
    match List.find_opt (fun (s : stream_decl) -> s.sname = stream) streams with
    | Some s -> s.elem
    | None -> widest_ty
  in
  (* Flow-insensitive memory summary: power-on zero fill, the ROM
     image, and every stored value, joined. *)
  let mems : (string, D.t ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (m : Ir.mem) ->
      let init =
        match m.Ir.rom_init with
        | None -> D.const 0L
        | Some image ->
            let v = List.fold_left (fun acc x -> D.join acc (D.const x)) D.Bot image in
            (* slots past the image keep the zero fill *)
            if List.length image < m.Ir.length then D.join v (D.const 0L) else v
      in
      Hashtbl.replace mems m.Ir.mname (ref init))
    p.Ir.mems;
  let mem_cell m =
    match Hashtbl.find_opt mems m with Some r -> !r | None -> D.top
  in
  let mem_store m v =
    match Hashtbl.find_opt mems m with Some r -> r := D.join !r v | None -> ()
  in
  let ev regs = function Ir.Reg r -> regs.(r) | Ir.Imm n -> D.const n in
  (* The engine wraps a committed write to the register's declared type,
     but same-state readers observe the raw result — join both views. *)
  let assign regs ~weak dst v =
    let v = D.join v (D.cast ~to_ty:reg_ty.(dst) v) in
    regs.(dst) <- (if weak then D.join regs.(dst) v else v)
  in
  let find_tag g = List.find_opt (fun (g0, _) -> g0 == g) tags.by_ginst in
  let record regs (g : Ir.ginst) =
    match find_tag g with
    | None -> ()
    | Some (_, o) ->
        o.visited <- true;
        (match g.Ir.i with
        | Ir.Bin { a; b; _ } ->
            o.a <- D.join o.a (ev regs a);
            o.b <- D.join o.b (ev regs b)
        | Ir.Swrite { stream; v } ->
            (* bit faults apply to the value as wrapped onto the wire *)
            o.a <- D.join o.a (D.cast ~to_ty:(elem_ty stream) (ev regs v))
        | _ -> ())
  in
  let exec_ginst regs (g : Ir.ginst) =
    let guard =
      match g.Ir.guard with
      | None -> `Run
      | Some (gr, want) -> (
          match D.truth regs.(gr) with
          | D.True -> if want then `Run else `Skip
          | D.False -> if want then `Skip else `Run
          | D.Maybe -> `Maybe)
    in
    if guard <> `Skip then begin
      let weak = guard = `Maybe in
      record regs g;
      match g.Ir.i with
      | Ir.Bin { dst; op; a; b; ty } ->
          assign regs ~weak dst (D.binop op ty (ev regs a) (ev regs b))
      | Ir.Un { dst; op; a; ty } -> assign regs ~weak dst (D.unop op ty (ev regs a))
      | Ir.Copy { dst; src; ty } ->
          assign regs ~weak dst (D.cast ~to_ty:ty (ev regs src))
      | Ir.Castop { dst; src; to_ty; _ } ->
          assign regs ~weak dst (D.cast ~to_ty (ev regs src))
      | Ir.Load { dst; mem; _ } -> assign regs ~weak dst (mem_cell mem)
      | Ir.Store { mem; v; _ } -> mem_store mem (ev regs v)
      | Ir.Sread { dst; stream } ->
          assign regs ~weak dst (D.top_of_ty (elem_ty stream))
      | Ir.Swrite _ -> ()
      | Ir.Extcall { dst; _ } -> assign regs ~weak dst D.top
      | Ir.Tap _ -> ()
    end
  in
  let join_regs a b = Array.map2 D.join a b in
  let widen_regs old next = Array.mapi (fun i o -> D.widen reg_ty.(i) o next.(i)) old in
  let equal_regs a b =
    try Array.for_all2 D.equal a b with Invalid_argument _ -> false
  in
  let join_state a b =
    match (a, b) with
    | None, s | s, None -> s
    | Some x, Some y -> Some (join_regs x y)
  in
  let rec exec_body st body = List.fold_left exec_item st body
  and exec_item st item =
    match st with
    | None -> None
    | Some regs -> (
        match item with
        | Ir.Straight insts ->
            List.iter (exec_ginst regs) insts;
            st
        | Ir.If_else { cond_insts; cond; then_; else_ } ->
            List.iter (exec_ginst regs) cond_insts;
            let tr = D.truth regs.(cond) in
            let st_t =
              if tr <> D.False then exec_body (Some (Array.copy regs)) then_
              else None
            in
            let st_e =
              if tr <> D.True then exec_body (Some (Array.copy regs)) else_
              else None
            in
            join_state st_t st_e
        | Ir.Loop { cond_insts; cond; body; step_insts; _ } ->
            let loop_obs =
              List.find_opt (fun (key, _) -> key == cond_insts) tags.by_loop
            in
            let head = ref (Array.copy regs) in
            let exit_st = ref None in
            let iters = ref 0 in
            let continue_ = ref true in
            (* Widening after a few precise rounds drives the head to
               the domain's type bounds, so this terminates; the count
               cap is pure defense. *)
            while !continue_ && !iters < 64 do
              incr iters;
              let s = Array.copy !head in
              List.iter (exec_ginst s) cond_insts;
              (match loop_obs with
              | Some (_, o) -> o.visited <- true
              | None -> ());
              exit_st := join_state !exit_st (Some (Array.copy s));
              match D.truth s.(cond) with
              | D.False -> continue_ := false
              | D.True | D.Maybe -> (
                  match exec_body (Some s) body with
                  | None -> continue_ := false
                  | Some s2 ->
                      List.iter (exec_ginst s2) step_insts;
                      let joined = join_regs !head s2 in
                      let next =
                        if !iters >= 3 then widen_regs !head joined else joined
                      in
                      if equal_regs next !head then continue_ := false
                      else head := next)
            done;
            if !iters >= 64 then begin
              (* did not converge (should be unreachable): run one
                 all-top round so inner observations over-approximate *)
              let s = Array.map (fun _ -> D.top) !head in
              List.iter (exec_ginst s) cond_insts;
              (match loop_obs with
              | Some (_, o) -> o.visited <- true
              | None -> ());
              ignore (exec_body (Some (Array.copy s)) body);
              exit_st := join_state !exit_st (Some s)
            end;
            !exit_st)
  in
  let init = Array.init nregs (fun _ -> D.const 0L) in
  ignore (exec_body (Some init) p.Ir.body);
  po

(* --- Verdicts --------------------------------------------------------------- *)

let bit_provably_set (v : D.t) bit =
  match v with
  | D.Bot -> false
  | D.Itv i -> (
      (bit = 0 && i.D.parity = D.Podd)
      ||
      match D.const_value v with
      | Some c -> Int64.logand c (Int64.shift_left 1L bit) <> 0L
      | None -> false)

let bit_provably_clear (v : D.t) bit =
  match v with
  | D.Bot -> false
  | D.Itv i -> (
      (bit = 0 && i.D.parity = D.Peven)
      ||
      match D.const_value v with
      | Some c -> Int64.logand c (Int64.shift_left 1L bit) = 0L
      | None -> false)

let verdict_for (po : proc_obs) (f : Fault.t) : verdict =
  let dead_unless_visited tbl key =
    match Hashtbl.find_opt tbl key with
    | Some o when not o.visited -> Dead
    | _ -> Unknown
  in
  match f with
  | Fault.Narrow_compare { select = Fault.Nth k; mask_bits; _ } -> (
      match Hashtbl.find_opt po.cmp k with
      | None -> Unknown
      | Some o ->
          if not o.visited then Dead
          else
            (* 0 <= v <= mask implies v & mask = v at any operand type *)
            let mask = Int64.sub (Int64.shift_left 1L mask_bits) 1L in
            let range = D.join (D.const 0L) (D.const mask) in
            if D.leq o.a range && D.leq o.b range then Equivalent else Unknown)
  | Fault.Read_for_write { select = Fault.Nth k; _ } ->
      dead_unless_visited po.stores k
  | Fault.Stuck_stream_bit { stream; select = Fault.Nth k; bit; stuck_to; _ } -> (
      match Hashtbl.find_opt po.swrites (stream, k) with
      | None -> Unknown
      | Some o ->
          if not o.visited then Dead
          else if
            if stuck_to then bit_provably_set o.a bit
            else bit_provably_clear o.a bit
          then Equivalent
          else Unknown)
  | Fault.Drop_stream_write { stream; select = Fault.Nth k; _ } ->
      dead_unless_visited po.swrites (stream, k)
  | Fault.Loop_bound_off_by_one { select = Fault.Nth k; _ } ->
      dead_unless_visited po.loops k
  | _ -> Unknown (* [All] selectors: not single-site, never pruned *)

let fproc_of = function
  | Fault.Narrow_compare { fproc; _ }
  | Fault.Read_for_write { fproc; _ }
  | Fault.Stuck_stream_bit { fproc; _ }
  | Fault.Drop_stream_write { fproc; _ }
  | Fault.Loop_bound_off_by_one { fproc; _ } ->
      fproc

(* --- Hang-class verdicts ----------------------------------------------------- *)

module Chan = Analysis.Chan
module Live = Analysis.Live
module Bound = Analysis.Bound

type hang_verdict = Certain_hang of string | Hang_unknown

(* No channel op of [ops] in [\[lo, hi)] writes a token, checks an
   assertion, or risks a trap.  Reads are fine: the tokens a divergent
   read consumes never influence whether the network blocks. *)
let clean_region (ops : Chan.op array) lo hi =
  let ok = ref true in
  for i = lo to hi - 1 do
    match ops.(i) with
    | Chan.Write _ | Chan.Assert_op | Chan.Trap -> ok := false
    | Chan.Read _ -> ()
  done;
  !ok

let lcp_len (a : Chan.op array) (b : Chan.op array) =
  let n = Stdlib.min (Array.length a) (Array.length b) in
  let i = ref 0 in
  while !i < n && a.(!i) = b.(!i) do
    incr i
  done;
  !i

(* Re-run the token network with [fproc]'s trace replaced by
   [mutant_ops], and decide whether the stuck state is a {e certain}
   hang: the faulted process's executed divergence (ops past the
   longest common prefix with its baseline trace, strictly before its
   block point) must be write-, assert- and trap-free, so the mutant
   run is observationally the baseline run right up to the global
   block — the engine can only report a hang. *)
let judge_mutant ~streams ~feeds ~drains ~base_traces ~fproc ~mutant_ops =
  let mutant_traces =
    List.map
      (fun (p, ops) -> if p = fproc then (p, mutant_ops) else (p, ops))
      base_traces
  in
  match Live.run_network ~streams ~feeds ~drains mutant_traces with
  | Error _ | Ok (Live.Completed, _) -> Hang_unknown
  | Ok (Live.Stuck w, states) -> (
      match List.find_opt (fun s -> s.Live.ps_proc = fproc) states with
      | None -> Hang_unknown
      | Some ps ->
          let base = Array.of_list (List.assoc fproc base_traces) in
          let mut = Array.of_list mutant_ops in
          let lcp = lcp_len base mut in
          (* a completed faulted process ran its whole divergent tail *)
          let hi = if ps.Live.ps_done then Array.length mut else ps.Live.ps_pos in
          if hi > lcp && not (clean_region mut lcp hi) then Hang_unknown
          else Certain_hang (Live.witness_to_string w))

let hang_verdicts ~(params : (string * (string * int64) list) list)
    ~(feeds : (string * int) list) ~(drains : string list)
    (prog : program) (faults : Fault.t list) : hang_verdict list =
  let unknown_all () = List.map (fun _ -> Hang_unknown) faults in
  let feeds = List.map (fun (s, n) -> (s, Stdlib.max 0 n)) feeds in
  let env_of pname = Option.value ~default:[] (List.assoc_opt pname params) in
  let base =
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | (p : proc) :: rest -> (
          match Chan.trace ~env:(env_of p.pname) prog p with
          | Ok t -> collect ((p.pname, t.Chan.t_ops) :: acc) rest
          | Error _ -> None)
    in
    collect [] prog.procs
  in
  match base with
  | None -> unknown_all ()
  | Some base_traces ->
      (* the unfaulted network must provably complete: every certain-hang
         argument is relative to a baseline run that finishes *)
      let base_completes =
        match Live.run_network ~streams:prog.streams ~feeds ~drains base_traces with
        | Ok (Live.Completed, _) -> true
        | _ -> false
      in
      if not base_completes then unknown_all ()
      else
        let judge (f : Fault.t) : hang_verdict =
          match f with
          | Fault.Drop_stream_write { fproc; stream; select = Fault.Nth k; _ } -> (
              match List.assoc_opt fproc base_traces with
              | None -> Hang_unknown
              | Some ops ->
                  (* the guard suppresses only the pushes: the process
                     computes baseline values throughout, so the prune
                     is sound exactly when the dropped tokens are a
                     suffix of the stream's write sequence (readers then
                     consume a value-prefix of the baseline's tokens) *)
                  let first_drop = ref (-1) and kept_after = ref false in
                  List.iteri
                    (fun i op ->
                      match op with
                      | Chan.Write (s, j) when s = stream ->
                          if j = k then (if !first_drop < 0 then first_drop := i)
                          else if !first_drop >= 0 then kept_after := true
                      | _ -> ())
                    ops;
                  if !first_drop < 0 || !kept_after then Hang_unknown
                  else
                    let mutant_ops =
                      List.filter
                        (fun op ->
                          match op with
                          | Chan.Write (s, j) -> not (s = stream && j = k)
                          | _ -> true)
                        ops
                    in
                    judge_mutant ~streams:prog.streams ~feeds ~drains
                      ~base_traces ~fproc ~mutant_ops)
          | Fault.Loop_bound_off_by_one { fproc; select = Fault.Nth k; delta } -> (
              match List.find_opt (fun (p : proc) -> p.pname = fproc) prog.procs with
              | None -> Hang_unknown
              | Some p -> (
                  let env = env_of fproc in
                  match List.nth_opt (Chan.loop_headers p) k with
                  | Some (Chan.For_loop (h, body)) -> (
                      match
                        (Bound.of_for ~env h body, Bound.shifted_trips ~env ~delta h body)
                      with
                      | Bound.Exact t0, Some t1 when t1 <> t0 -> (
                          match Chan.trace ~env ~trips_override:(k, t1) prog p with
                          | Error _ -> Hang_unknown
                          | Ok mt ->
                              judge_mutant ~streams:prog.streams ~feeds ~drains
                                ~base_traces ~fproc ~mutant_ops:mt.Chan.t_ops)
                      | _ -> Hang_unknown)
                  | _ -> Hang_unknown))
          | _ -> Hang_unknown
        in
        List.map judge faults

let verdicts (prog : Ir.program_ir) (faults : Fault.t list) : verdict list =
  let cache : (string, proc_obs) Hashtbl.t = Hashtbl.create 4 in
  let obs_for pname =
    match Hashtbl.find_opt cache pname with
    | Some po -> Some po
    | None -> (
        match List.find_opt (fun (p : Ir.proc_ir) -> p.Ir.name = pname) prog.Ir.procs with
        | None -> None
        | Some p ->
            let po = analyze_proc prog.Ir.streams p in
            Hashtbl.replace cache pname po;
            Some po)
  in
  List.map
    (fun f ->
      match obs_for (fproc_of f) with
      | None -> Unknown
      | Some po -> verdict_for po f)
    faults
