(** Static mutant pre-filter: a forward abstract interpretation of the
    baseline IR (interval x constancy x parity, the {!Analysis.Domain}
    the assertion verifier uses) that proves fault sites equivalent to
    the unfaulted design or statically dead, so the campaign can skip
    simulating them.  Sound over-approximation: streams and extern
    calls are unconstrained, memories are flow-insensitive joins, loops
    reach a widened fixpoint — a verdict other than [Unknown] holds for
    every workload.  Input-independent, so fork-point and from-reset
    campaign modes prune identically. *)

type verdict =
  | Equivalent  (** the rewrite is an identity on every reachable value *)
  | Dead        (** the site is statically unreachable *)
  | Unknown     (** could diverge: simulate it *)

val verdict_name : verdict -> string

(** One verdict per fault, in order.  [prog] must be the same
    (baseline-strategy) IR the faults were enumerated on by
    {!Fault.sites}: occurrence indices are matched against that IR's
    site numbering. *)
val verdicts : Mir.Ir.program_ir -> Fault.t list -> verdict list
