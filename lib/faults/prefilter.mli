(** Static mutant pre-filter: a forward abstract interpretation of the
    baseline IR (interval x constancy x parity, the {!Analysis.Domain}
    the assertion verifier uses) that proves fault sites equivalent to
    the unfaulted design or statically dead, so the campaign can skip
    simulating them.  Sound over-approximation: streams and extern
    calls are unconstrained, memories are flow-insensitive joins, loops
    reach a widened fixpoint — a verdict other than [Unknown] holds for
    every workload.  Input-independent, so fork-point and from-reset
    campaign modes prune identically. *)

type verdict =
  | Equivalent  (** the rewrite is an identity on every reachable value *)
  | Dead        (** the site is statically unreachable *)
  | Unknown     (** could diverge: simulate it *)

val verdict_name : verdict -> string

(** One verdict per fault, in order.  [prog] must be the same
    (baseline-strategy) IR the faults were enumerated on by
    {!Fault.sites}: occurrence indices are matched against that IR's
    site numbering. *)
val verdicts : Mir.Ir.program_ir -> Fault.t list -> verdict list

(** The liveness pre-filter: [Certain_hang] proves a mutant blocks the
    token network on every execution {e without} having first written a
    divergent token, fired an assertion, or risked a trap — so the
    engine can only classify it as a hang, and the campaign may record
    that class without simulating.

    The proof perturbs the baseline {!Analysis.Chan} traces exactly the
    way the fault rewrites the lowered design (a drop-write removes the
    site's pushes; a loop-off-by-one shifts the compare bound and
    re-expands the loop) and re-runs the {!Analysis.Live} token
    network.  It requires the unfaulted network to provably complete,
    and checks the faulted process's executed divergence is free of
    writes, assertions and traps, so every process observes baseline
    values right up to the global block.  [Hang_unknown] means
    simulate; it is the verdict for every fault kind that perturbs
    values rather than token counts. *)
type hang_verdict = Certain_hang of string | Hang_unknown

val hang_verdicts :
  params:(string * (string * int64) list) list ->
  feeds:(string * int) list ->
  drains:string list ->
  Front.Ast.program ->
  Fault.t list ->
  hang_verdict list
