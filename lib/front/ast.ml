(** Abstract syntax for the InCA C subset (an Impulse-C-like HLL).

    The subset contains exactly the constructs the paper's assertion
    techniques operate on: fixed-width integers, arrays mapped to block
    RAMs, streaming channels between processes, [assert], and loop
    pipelining pragmas.  A program is a task graph of hardware and
    software processes connected by streams (paper, Section 3). *)

type signedness = Signed | Unsigned [@@deriving show, eq, ord]

(** Bit widths supported by the datapath.  [W1] is the boolean width. *)
type width = W1 | W8 | W16 | W32 | W64 [@@deriving show, eq, ord]

type ty =
  | Tint of signedness * width  (** scalar integer *)
  | Tbool                       (** result of comparisons / logic *)
  | Tarray of ty * int          (** fixed-size array of scalars (block RAM) *)
  | Tvoid                       (** procedure result *)
[@@deriving show, eq]

let bits_of_width = function W1 -> 1 | W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let width_of_bits = function
  | 1 -> W1
  | 8 -> W8
  | 16 -> W16
  | 32 -> W32
  | 64 -> W64
  | n -> invalid_arg (Printf.sprintf "width_of_bits: %d" n)

let int32_t = Tint (Signed, W32)
let uint32_t = Tint (Unsigned, W32)
let int64_t = Tint (Signed, W64)

type unop =
  | Neg   (** arithmetic negation *)
  | Lnot  (** logical not, yields bool *)
  | Bnot  (** bitwise complement *)
[@@deriving show, eq]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor
  | Land | Lor
[@@deriving show, eq]

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor -> false

let is_logical = function
  | Land | Lor -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne -> false

type expr = { e : expr_node; ety : ty; eloc : Loc.t }

and expr_node =
  | Int of int64                 (** literal; its type is [ety] *)
  | Bool of bool
  | Var of string
  | Index of string * expr       (** array element read *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cast of ty * expr
  | Call of string * expr list   (** external HDL function (pure) *)
[@@deriving show, eq]

type lvalue =
  | Lvar of string
  | Lindex of string * expr      (** array element write *)
[@@deriving show, eq]

type stmt = { s : stmt_node; sloc : Loc.t }

and stmt_node =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of for_header * stmt list
  | Assert of expr * string      (** condition and its source text *)
  | Stream_read of lvalue * string   (** [v = stream_read(s)] — blocking *)
  | Stream_write of string * expr    (** [stream_write(s, e)] — blocking *)
  | Return of expr option
  | Block of stmt list
  | Tapstmt of int * expr list
      (** internal: assertion data-extraction point inserted by the
          parallelization transform (Section 3.1).  Exports the values
          plus a fire pulse to an out-of-process assertion checker.
          Never produced by the parser. *)
  | Const_array of ty * string * int64 list
      (** ROM: an array with compile-time contents, initialized in the
          block RAM bitstream ([const int32 t[4] = { 1, 2, 3, 4 };]) *)

and for_header = {
  init : stmt option;            (** restricted to [Assign] / [Decl] *)
  cond : expr;
  step : stmt option;            (** restricted to [Assign] *)
  pipelined : bool;              (** [#pragma pipeline] on this loop *)
}
[@@deriving show, eq]

(** Where a process is mapped in the hardware/software partition. *)
type proc_kind = Hardware | Software [@@deriving show, eq]

type proc = {
  pname : string;
  kind : proc_kind;
  params : (string * ty) list;   (** scalar configuration parameters *)
  body : stmt list;
  ploc : Loc.t;
}
[@@deriving show]

(** A streaming channel between processes.  Streams are global, as in
    Impulse-C where they are created once and passed to each process. *)
type stream_decl = {
  sname : string;
  elem : ty;                     (** element type (scalar) *)
  depth : int;                   (** FIFO depth in elements *)
}
[@@deriving show, eq]

(** External HDL function prototype: the body is supplied separately,
    once as a C model (software simulation) and once as a hardware
    behaviour (circuit), which may legitimately differ — Section 5.1. *)
type extern_decl = {
  xname : string;
  xargs : ty list;
  xret : ty;
  xlatency : int;                (** hardware latency in cycles *)
}
[@@deriving show, eq]

type program = {
  streams : stream_decl list;
  externs : extern_decl list;
  procs : proc list;
}
[@@deriving show]

let find_proc prog name = List.find_opt (fun p -> p.pname = name) prog.procs

let find_stream prog name = List.find_opt (fun s -> s.sname = name) prog.streams

let find_extern prog name = List.find_opt (fun x -> x.xname = name) prog.externs

(** Smart constructors used by tests and programmatic builders. *)

let mk_expr ?(loc = Loc.none) ety e = { e; ety; eloc = loc }

let mk_int ?(ty = int32_t) n = mk_expr ty (Int n)

let mk_var ?(ty = int32_t) name = mk_expr ty (Var name)

let mk_bool b = mk_expr Tbool (Bool b)

let mk_stmt ?(loc = Loc.none) s = { s; sloc = loc }

(** [iter_stmts f body] applies [f] to every statement in [body],
    recursing into control structure bodies. *)
let rec iter_stmts f body =
  List.iter
    (fun st ->
      f st;
      match st.s with
      | If (_, t, e) -> iter_stmts f t; iter_stmts f e
      | While (_, b) | For (_, b) | Block b -> iter_stmts f b
      | Decl _ | Assign _ | Assert _ | Stream_read _ | Stream_write _ | Return _
      | Tapstmt _ | Const_array _ -> ())
    body

(** [map_stmts f body] rebuilds [body] bottom-up: children are rewritten
    first, then [f] is applied to each statement.  [f] returns a list to
    allow one-to-many rewrites (e.g. assertion instrumentation). *)
let rec map_stmts (f : stmt -> stmt list) body =
  List.concat_map
    (fun st ->
      let st =
        match st.s with
        | If (c, t, e) -> { st with s = If (c, map_stmts f t, map_stmts f e) }
        | While (c, b) -> { st with s = While (c, map_stmts f b) }
        | For (h, b) -> { st with s = For (h, map_stmts f b) }
        | Block b -> { st with s = Block (map_stmts f b) }
        | Decl _ | Assign _ | Assert _ | Stream_read _ | Stream_write _ | Return _
        | Tapstmt _ | Const_array _ -> st
      in
      f st)
    body

(** All assertions of a statement list, in source order. *)
let assertions_of body =
  let acc = ref [] in
  iter_stmts
    (fun st -> match st.s with Assert (c, txt) -> acc := (st.sloc, c, txt) :: !acc | _ -> ())
    body;
  List.rev !acc

(** Streams read or written anywhere in [body]. *)
let streams_used body =
  let acc = ref [] in
  let add s = if not (List.mem s !acc) then acc := s :: !acc in
  iter_stmts
    (fun st ->
      match st.s with
      | Stream_read (_, s) | Stream_write (s, _) -> add s
      | _ -> ())
    body;
  List.rev !acc

(** Scalar variables read by an expression, in first-occurrence order
    (array names indexed into are excluded — see {!arrays_read}). *)
let free_vars expr =
  let acc = ref [] in
  let add x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec go x =
    match x.e with
    | Int _ | Bool _ -> ()
    | Var v -> add v
    | Index (_, i) -> go i
    | Unop (_, a) | Cast (_, a) -> go a
    | Binop (_, a, b) -> go a; go b
    | Call (_, args) -> List.iter go args
  in
  go expr;
  List.rev !acc

(** Array names indexed into by an expression, in first-occurrence order. *)
let arrays_read expr =
  let acc = ref [] in
  let add x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec go x =
    match x.e with
    | Int _ | Bool _ | Var _ -> ()
    | Index (a, i) -> add a; go i
    | Unop (_, a) | Cast (_, a) -> go a
    | Binop (_, a, b) -> go a; go b
    | Call (_, args) -> List.iter go args
  in
  go expr;
  List.rev !acc

(** Arrays declared in [body] with their element type and length. *)
let arrays_declared body =
  let acc = ref [] in
  iter_stmts
    (fun st ->
      match st.s with
      | Decl (Tarray (elt, n), name, _) -> acc := (name, elt, n) :: !acc
      | _ -> ())
    body;
  List.rev !acc
