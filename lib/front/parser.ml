(** Recursive-descent parser for the InCA C subset.

    Produces an untyped {!Ast.program} (every expression carries
    [Tvoid]); {!Typecheck.elaborate} fills in types and inserts casts. *)

open Ast

exception Error of string * Loc.t

type state = {
  toks : Lexer.lexed array;
  src : string;
  mutable idx : int;
}

let cur st = st.toks.(st.idx)
let cur_tok st = (cur st).Lexer.tok
let cur_loc st = (cur st).Lexer.loc
let bump st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let err st msg = raise (Error (msg, cur_loc st))

let expect st tok what =
  if Lexer.equal_token (cur_tok st) tok then bump st
  else err st (Printf.sprintf "expected %s" what)

let expect_ident st what =
  match cur_tok st with
  | Lexer.IDENT name -> bump st; name
  | _ -> err st (Printf.sprintf "expected identifier (%s)" what)

let expect_int st what =
  match cur_tok st with
  | Lexer.INT n -> bump st; n
  | _ -> err st (Printf.sprintf "expected integer (%s)" what)

let kw st k = match cur_tok st with Lexer.KW k' when k = k' -> true | _ -> false

let eat_kw st k = if kw st k then (bump st; true) else false

let scalar_type_of_kw = function
  | "int8" -> Some (Tint (Signed, W8))
  | "int16" -> Some (Tint (Signed, W16))
  | "int32" -> Some (Tint (Signed, W32))
  | "int64" -> Some (Tint (Signed, W64))
  | "uint8" -> Some (Tint (Unsigned, W8))
  | "uint16" -> Some (Tint (Unsigned, W16))
  | "uint32" -> Some (Tint (Unsigned, W32))
  | "uint64" -> Some (Tint (Unsigned, W64))
  | "bool" -> Some Tbool
  | "void" -> Some Tvoid
  | _ -> None

let peek_scalar_type st =
  match cur_tok st with Lexer.KW k -> scalar_type_of_kw k | _ -> None

let parse_scalar_type st =
  match peek_scalar_type st with
  | Some ty -> bump st; ty
  | None -> err st "expected type"

(* Untyped expression constructor: types are assigned by Typecheck. *)
let mk loc e = { e; ety = Tvoid; eloc = loc }

(* --- Expressions: precedence climbing --------------------------------- *)

let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (Lor, 1)
  | Lexer.AMPAMP -> Some (Land, 2)
  | Lexer.PIPE -> Some (Bor, 3)
  | Lexer.CARET -> Some (Bxor, 4)
  | Lexer.AMP -> Some (Band, 5)
  | Lexer.EQ -> Some (Eq, 6)
  | Lexer.NE -> Some (Ne, 6)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = cur_loc st in
        bump st;
        let rhs = parse_binary st (prec + 1) in
        loop (mk loc (Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Lexer.MINUS -> (
      bump st;
      let operand = parse_unary st in
      (* fold negation of literals so that -7 is a negative literal *)
      match operand.e with
      | Int n -> mk loc (Int (Int64.neg n))
      | _ -> mk loc (Unop (Neg, operand)))
  | Lexer.BANG -> bump st; mk loc (Unop (Lnot, parse_unary st))
  | Lexer.TILDE -> bump st; mk loc (Unop (Bnot, parse_unary st))
  | _ -> parse_primary st

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Lexer.INT n -> bump st; mk loc (Int n)
  | Lexer.KW "true" -> bump st; mk loc (Bool true)
  | Lexer.KW "false" -> bump st; mk loc (Bool false)
  | Lexer.LPAREN -> (
      bump st;
      match peek_scalar_type st with
      | Some ty ->
          bump st;
          expect st Lexer.RPAREN ")";
          let operand = parse_unary st in
          mk loc (Cast (ty, operand))
      | None ->
          let e = parse_expr st in
          expect st Lexer.RPAREN ")";
          e)
  | Lexer.IDENT name -> (
      bump st;
      match cur_tok st with
      | Lexer.LBRACK ->
          bump st;
          let idx = parse_expr st in
          expect st Lexer.RBRACK "]";
          mk loc (Index (name, idx))
      | Lexer.LPAREN ->
          bump st;
          let args =
            if Lexer.equal_token (cur_tok st) Lexer.RPAREN then []
            else
              let rec more acc =
                let a = parse_expr st in
                if Lexer.equal_token (cur_tok st) Lexer.COMMA then (bump st; more (a :: acc))
                else List.rev (a :: acc)
              in
              more []
          in
          expect st Lexer.RPAREN ")";
          mk loc (Call (name, args))
      | _ -> mk loc (Var name))
  | _ -> err st "expected expression"

(* --- Statements -------------------------------------------------------- *)

(* Source text between the current position after '(' and the matching ')'. *)
let source_slice st start_idx end_idx =
  let a = st.toks.(start_idx).Lexer.start_ofs in
  let b = st.toks.(end_idx).Lexer.start_ofs in
  String.trim (String.sub st.src a (b - a))

let rec parse_block st =
  expect st Lexer.LBRACE "{";
  let rec stmts acc =
    if Lexer.equal_token (cur_tok st) Lexer.RBRACE then (bump st; List.rev acc)
    else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_simple_assign st =
  (* used for for-loop init/step: IDENT = expr, IDENT[expr] = expr, or
     (init only) TYPE IDENT = expr — the declaration form the
     pretty-printer emits for programmatically built loops *)
  let loc = cur_loc st in
  match peek_scalar_type st with
  | Some ty ->
      bump st;
      let name = expect_ident st "declaration name" in
      expect st Lexer.ASSIGN "=";
      let rhs = parse_expr st in
      mk_stmt ~loc (Decl (ty, name, Some rhs))
  | None ->
  let name = expect_ident st "assignment target" in
  let lv =
    if Lexer.equal_token (cur_tok st) Lexer.LBRACK then begin
      bump st;
      let i = parse_expr st in
      expect st Lexer.RBRACK "]";
      Lindex (name, i)
    end
    else Lvar name
  in
  expect st Lexer.ASSIGN "=";
  let rhs = parse_expr st in
  mk_stmt ~loc (Assign (lv, rhs))

and parse_stmt st =
  let loc = cur_loc st in
  match cur_tok st with
  | Lexer.PRAGMA p ->
      bump st;
      if String.lowercase_ascii (String.trim p) = "pipeline" then (
        match cur_tok st with
        | Lexer.KW "for" -> parse_for st ~pipelined:true
        | _ -> err st "#pragma pipeline must precede a for loop")
      else err st (Printf.sprintf "unknown pragma %S" p)
  | Lexer.KW "for" -> parse_for st ~pipelined:false
  | Lexer.KW "if" ->
      bump st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expr st in
      expect st Lexer.RPAREN ")";
      let then_ = parse_block st in
      let else_ =
        if kw st "else" then begin
          bump st;
          if kw st "if" then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      mk_stmt ~loc (If (cond, then_, else_))
  | Lexer.KW "while" ->
      bump st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expr st in
      expect st Lexer.RPAREN ")";
      let body = parse_block st in
      mk_stmt ~loc (While (cond, body))
  | Lexer.KW "assert" ->
      bump st;
      expect st Lexer.LPAREN "(";
      let start_idx = st.idx in
      let cond = parse_expr st in
      let end_idx = st.idx in
      expect st Lexer.RPAREN ")";
      expect st Lexer.SEMI ";";
      mk_stmt ~loc (Assert (cond, source_slice st start_idx end_idx))
  | Lexer.KW "stream_write" ->
      bump st;
      expect st Lexer.LPAREN "(";
      let s = expect_ident st "stream name" in
      expect st Lexer.COMMA ",";
      let v = parse_expr st in
      expect st Lexer.RPAREN ")";
      expect st Lexer.SEMI ";";
      mk_stmt ~loc (Stream_write (s, v))
  | Lexer.KW "return" ->
      bump st;
      if Lexer.equal_token (cur_tok st) Lexer.SEMI then (bump st; mk_stmt ~loc (Return None))
      else
        let e = parse_expr st in
        expect st Lexer.SEMI ";";
        mk_stmt ~loc (Return (Some e))
  | Lexer.LBRACE -> mk_stmt ~loc (Block (parse_block st))
  | Lexer.KW "const" ->
      bump st;
      let elem = parse_scalar_type st in
      let name = expect_ident st "const array name" in
      expect st Lexer.LBRACK "[";
      let n = Int64.to_int (expect_int st "array size") in
      expect st Lexer.RBRACK "]";
      expect st Lexer.ASSIGN "=";
      expect st Lexer.LBRACE "{";
      let values =
        let rec more acc =
          let v =
            match cur_tok st with
            | Lexer.MINUS -> (
                bump st;
                match cur_tok st with
                | Lexer.INT x -> bump st; Int64.neg x
                | _ -> err st "expected integer")
            | Lexer.INT x -> bump st; x
            | _ -> err st "expected integer in const array initializer"
          in
          if Lexer.equal_token (cur_tok st) Lexer.COMMA then (bump st; more (v :: acc))
          else List.rev (v :: acc)
        in
        more []
      in
      expect st Lexer.RBRACE "}";
      expect st Lexer.SEMI ";";
      if List.length values <> n then
        err st (Printf.sprintf "const array %s declares %d elements but initializes %d" name n
                  (List.length values));
      mk_stmt ~loc (Const_array (elem, name, values))
  | Lexer.KW k when scalar_type_of_kw k <> None ->
      let ty = parse_scalar_type st in
      let name = expect_ident st "declaration name" in
      let ty =
        if Lexer.equal_token (cur_tok st) Lexer.LBRACK then begin
          bump st;
          let n = Int64.to_int (expect_int st "array size") in
          expect st Lexer.RBRACK "]";
          Tarray (ty, n)
        end
        else ty
      in
      let init =
        if Lexer.equal_token (cur_tok st) Lexer.ASSIGN then begin
          bump st;
          Some (parse_rhs st)
        end
        else None
      in
      expect st Lexer.SEMI ";";
      (match init with
      | Some (`Stream_read s) ->
          mk_stmt ~loc
            (Block
               [ mk_stmt ~loc (Decl (ty, name, None));
                 mk_stmt ~loc (Stream_read (Lvar name, s)) ])
      | Some (`Expr e) -> mk_stmt ~loc (Decl (ty, name, Some e))
      | None -> mk_stmt ~loc (Decl (ty, name, None)))
  | Lexer.IDENT name -> (
      bump st;
      let lv =
        if Lexer.equal_token (cur_tok st) Lexer.LBRACK then begin
          bump st;
          let i = parse_expr st in
          expect st Lexer.RBRACK "]";
          Lindex (name, i)
        end
        else Lvar name
      in
      expect st Lexer.ASSIGN "=";
      let rhs = parse_rhs st in
      expect st Lexer.SEMI ";";
      match rhs with
      | `Stream_read s -> mk_stmt ~loc (Stream_read (lv, s))
      | `Expr e -> mk_stmt ~loc (Assign (lv, e)))
  | _ -> err st "expected statement"

and parse_rhs st =
  if kw st "stream_read" then begin
    bump st;
    expect st Lexer.LPAREN "(";
    let s = expect_ident st "stream name" in
    expect st Lexer.RPAREN ")";
    `Stream_read s
  end
  else `Expr (parse_expr st)

and parse_for st ~pipelined =
  let loc = cur_loc st in
  expect st (Lexer.KW "for") "for";
  expect st Lexer.LPAREN "(";
  let init =
    if Lexer.equal_token (cur_tok st) Lexer.SEMI then None
    else Some (parse_simple_assign st)
  in
  expect st Lexer.SEMI ";";
  let cond = parse_expr st in
  expect st Lexer.SEMI ";";
  let step =
    if Lexer.equal_token (cur_tok st) Lexer.RPAREN then None
    else Some (parse_simple_assign st)
  in
  expect st Lexer.RPAREN ")";
  let body = parse_block st in
  mk_stmt ~loc (For ({ init; cond; step; pipelined }, body))

(* --- Top level --------------------------------------------------------- *)

let parse_stream_decl st =
  expect st (Lexer.KW "stream") "stream";
  let elem = parse_scalar_type st in
  let sname = expect_ident st "stream name" in
  let depth =
    if eat_kw st "depth" then Int64.to_int (expect_int st "stream depth") else 16
  in
  expect st Lexer.SEMI ";";
  { sname; elem; depth }

let parse_extern_decl st =
  expect st (Lexer.KW "extern") "extern";
  let xret = parse_scalar_type st in
  let xname = expect_ident st "extern name" in
  expect st Lexer.LPAREN "(";
  let xargs =
    if Lexer.equal_token (cur_tok st) Lexer.RPAREN then []
    else
      let rec more acc =
        let t = parse_scalar_type st in
        (* parameter name optional in prototypes *)
        (match cur_tok st with Lexer.IDENT _ -> bump st | _ -> ());
        if Lexer.equal_token (cur_tok st) Lexer.COMMA then (bump st; more (t :: acc))
        else List.rev (t :: acc)
      in
      more []
  in
  expect st Lexer.RPAREN ")";
  let xlatency = if eat_kw st "latency" then Int64.to_int (expect_int st "latency") else 1 in
  expect st Lexer.SEMI ";";
  { xname; xargs; xret; xlatency }

let parse_proc st =
  let ploc = cur_loc st in
  expect st (Lexer.KW "process") "process";
  let kind =
    if eat_kw st "hw" then Hardware
    else if eat_kw st "sw" then Software
    else err st "expected hw or sw"
  in
  let pname = expect_ident st "process name" in
  expect st Lexer.LPAREN "(";
  let params =
    if Lexer.equal_token (cur_tok st) Lexer.RPAREN then []
    else
      let rec more acc =
        let t = parse_scalar_type st in
        let n = expect_ident st "parameter name" in
        if Lexer.equal_token (cur_tok st) Lexer.COMMA then (bump st; more ((n, t) :: acc))
        else List.rev ((n, t) :: acc)
      in
      more []
  in
  expect st Lexer.RPAREN ")";
  let body = parse_block st in
  { pname; kind; params; body; ploc }

(** Parse a whole program from [src].  Raises {!Error} on syntax errors
    and {!Lexer.Error} on lexical errors. *)
let parse ?(file = "<string>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; src; idx = 0 } in
  let rec go streams externs procs =
    match cur_tok st with
    | Lexer.EOF ->
        { streams = List.rev streams; externs = List.rev externs; procs = List.rev procs }
    | Lexer.KW "stream" -> go (parse_stream_decl st :: streams) externs procs
    | Lexer.KW "extern" -> go streams (parse_extern_decl st :: externs) procs
    | Lexer.KW "process" -> go streams externs (parse_proc st :: procs)
    | _ -> err st "expected stream, extern, or process declaration"
  in
  go [] [] []
