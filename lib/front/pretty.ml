(** Pretty-printer producing parseable InCA-C source.

    Used to emit the instrumented HLL code (paper, Figure 2) and in
    round-trip property tests: [parse (print p)] re-yields [p] up to
    types and locations. *)

open Ast

let rec string_of_ty = function
  | Tint (Signed, W8) -> "int8"
  | Tint (Signed, W16) -> "int16"
  | Tint (Signed, W32) -> "int32"
  | Tint (Signed, W64) -> "int64"
  | Tint (Unsigned, W8) -> "uint8"
  | Tint (Unsigned, W16) -> "uint16"
  | Tint (Unsigned, W32) -> "uint32"
  | Tint (Unsigned, W64) -> "uint64"
  | Tint (_, W1) | Tbool -> "bool"
  | Tvoid -> "void"
  | Tarray (t, _) ->
      (* arrays are printed at the declaration site *)
      (match t with Tarray _ -> "?" | _ -> string_of_ty_scalar t)

and string_of_ty_scalar t =
  match t with
  | Tarray _ -> invalid_arg "string_of_ty_scalar"
  | _ -> string_of_ty t

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "&&" | Lor -> "||"

let string_of_unop = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let prec_of_binop = function
  | Lor -> 1 | Land -> 2 | Bor -> 3 | Bxor -> 4 | Band -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

(* The parser folds unary minus over a literal into a single negative
   literal.  Printing must apply the same normalization to negation
   chains, or [-(-3)] reparses as [3] and printing is not a fixpoint. *)
let rec fold_neg (x : expr) =
  match x.e with
  | Int n -> Some n
  | Unop (Neg, a) -> Option.map Int64.neg (fold_neg a)
  | _ -> None

(* A literal whose recorded type differs from the one elaboration
   assigns to its bare spelling (e.g. the [int64]-typed [0] synthesized
   by condition coercion) must print with an explicit cast, otherwise
   reparsing retypes it and inserts casts elsewhere in the expression. *)
let literal_needs_cast ~ty n =
  match ty with
  | Tint (_, (W8 | W16 | W32 | W64)) -> not (equal_ty ty (Typecheck.literal_type n))
  | Tint (_, W1) | Tbool | Tvoid | Tarray _ -> false

let pp_literal ppf ~ty n =
  let bare ppf n =
    if Int64.compare n 0L < 0 then Fmt.pf ppf "(%Ld)" n else Fmt.pf ppf "%Ld" n
  in
  if literal_needs_cast ~ty n then Fmt.pf ppf "(%s)%a" (string_of_ty ty) bare n
  else bare ppf n

let rec pp_expr ?(prec = 0) ppf (x : expr) =
  match x.e with
  | Int n -> pp_literal ppf ~ty:x.ety n
  | Bool true -> Fmt.string ppf "true"
  | Bool false -> Fmt.string ppf "false"
  | Var v -> Fmt.string ppf v
  | Index (a, i) -> Fmt.pf ppf "%s[%a]" a (pp_expr ~prec:0) i
  | Unop (Neg, a) when fold_neg a <> None -> (
      match fold_neg a with
      | Some n -> pp_literal ppf ~ty:x.ety (Int64.neg n)
      | None -> assert false)
  | Unop (op, a) -> Fmt.pf ppf "%s%a" (string_of_unop op) (pp_expr ~prec:11) a
  | Binop (op, a, b) ->
      let p = prec_of_binop op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr ~prec:p) a (string_of_binop op)
          (pp_expr ~prec:(p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Cast (ty, a) -> Fmt.pf ppf "(%s)%a" (string_of_ty ty) (pp_expr ~prec:11) a
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0)) args

let expr_to_string e = Fmt.str "%a" (pp_expr ~prec:0) e

let pp_lvalue ppf = function
  | Lvar v -> Fmt.string ppf v
  | Lindex (a, i) -> Fmt.pf ppf "%s[%a]" a (pp_expr ~prec:0) i

let rec pp_stmt ~indent ppf st =
  let pad = String.make indent ' ' in
  match st.s with
  | Decl (Tarray (elt, n), name, _) ->
      Fmt.pf ppf "%s%s %s[%d];" pad (string_of_ty_scalar elt) name n
  | Decl (ty, name, None) -> Fmt.pf ppf "%s%s %s;" pad (string_of_ty ty) name
  | Decl (ty, name, Some e) ->
      Fmt.pf ppf "%s%s %s = %a;" pad (string_of_ty ty) name (pp_expr ~prec:0) e
  | Assign (lv, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_lvalue lv (pp_expr ~prec:0) e
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad (pp_expr ~prec:0) c
        (pp_stmts ~indent:(indent + 2)) t pad
  | If (c, t, f) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad (pp_expr ~prec:0) c
        (pp_stmts ~indent:(indent + 2)) t pad (pp_stmts ~indent:(indent + 2)) f pad
  | While (c, b) ->
      Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad (pp_expr ~prec:0) c
        (pp_stmts ~indent:(indent + 2)) b pad
  | For (h, b) ->
      if h.pipelined then Fmt.pf ppf "%s#pragma pipeline@\n" pad;
      let pp_opt ppf = function
        | Some { s = Assign (lv, e); _ } ->
            Fmt.pf ppf "%a = %a" pp_lvalue lv (pp_expr ~prec:0) e
        | Some { s = Decl (ty, name, Some e); _ } ->
            Fmt.pf ppf "%s %s = %a" (string_of_ty ty) name (pp_expr ~prec:0) e
        | Some _ | None -> ()
      in
      Fmt.pf ppf "%sfor (%a; %a; %a) {@\n%a@\n%s}" pad pp_opt h.init
        (pp_expr ~prec:0) h.cond pp_opt h.step (pp_stmts ~indent:(indent + 2)) b pad
  | Assert (c, _) -> Fmt.pf ppf "%sassert(%a);" pad (pp_expr ~prec:0) c
  | Stream_read (lv, s) -> Fmt.pf ppf "%s%a = stream_read(%s);" pad pp_lvalue lv s
  | Stream_write (s, e) ->
      Fmt.pf ppf "%sstream_write(%s, %a);" pad s (pp_expr ~prec:0) e
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad (pp_expr ~prec:0) e
  | Block b -> Fmt.pf ppf "%s{@\n%a@\n%s}" pad (pp_stmts ~indent:(indent + 2)) b pad
  | Tapstmt (id, args) ->
      Fmt.pf ppf "%s/* tap#%d(%a) */" pad id
        (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0))
        args
  | Const_array (elem, name, values) ->
      Fmt.pf ppf "%sconst %s %s[%d] = { %s };" pad (string_of_ty elem) name
        (List.length values)
        (String.concat ", " (List.map Int64.to_string values))

and pp_stmts ~indent ppf stmts =
  Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any "@\n") (pp_stmt ~indent)) stmts

let pp_proc ppf (p : proc) =
  let kind = match p.kind with Hardware -> "hw" | Software -> "sw" in
  let pp_param ppf (n, t) = Fmt.pf ppf "%s %s" (string_of_ty t) n in
  Fmt.pf ppf "process %s %s(%a) {@\n%a@\n}" kind p.pname
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    p.params
    (pp_stmts ~indent:2)
    p.body

let pp_stream ppf (s : stream_decl) =
  Fmt.pf ppf "stream %s %s depth %d;" (string_of_ty s.elem) s.sname s.depth

let pp_extern ppf (x : extern_decl) =
  Fmt.pf ppf "extern %s %s(%a) latency %d;" (string_of_ty x.xret) x.xname
    (Fmt.list ~sep:(Fmt.any ", ") (Fmt.of_to_string string_of_ty))
    x.xargs x.xlatency

let pp_program ppf (prog : program) =
  let sections =
    List.map (fun s -> Fmt.str "%a" pp_stream s) prog.streams
    @ List.map (fun x -> Fmt.str "%a" pp_extern x) prog.externs
    @ List.map (fun p -> Fmt.str "%a" pp_proc p) prog.procs
  in
  Fmt.pf ppf "%s" (String.concat "\n\n" sections)

let program_to_string prog = Fmt.str "%a@." pp_program prog
