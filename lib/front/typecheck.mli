(** Type checking and elaboration.

    Elaboration rewrites the untyped parse tree into a fully typed AST:
    every expression carries its type, and explicit {!Ast.Cast} nodes
    are inserted so that each binary operation has operands of identical
    type.  This single source of width truth is what both the software
    interpreter (C semantics) and the hardware datapath obey — the
    paper's Section 5.1 bug is an injected *divergence* from it. *)

exception Error of string * Loc.t

(** Usual arithmetic conversions restricted to the width lattice: wider
    width wins; at equal width, unsigned wins.
    @raise Error for non-combinable types. *)
val common_type : Loc.t -> Ast.ty -> Ast.ty -> Ast.ty

val is_scalar : Ast.ty -> bool

(** The type elaboration assigns a bare integer literal: [int32] when
    the value fits, [int64] otherwise.  Exposed for the pretty-printer,
    which must annotate literals carrying any other type so that
    reparsing reconstructs it. *)
val literal_type : int64 -> Ast.ty

(** Elaborate a whole program (idempotent).
    @raise Error on type errors, duplicate names, bad stream/array
    declarations. *)
val elaborate : Ast.program -> Ast.program

(** [parse_and_check ?file src]: parse then elaborate. *)
val parse_and_check : ?file:string -> string -> Ast.program
