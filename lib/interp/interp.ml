(** Software simulation of an InCA program (the "CPU simulation" path).

    This is the analogue of Impulse-C's thread-based software simulation
    (paper, Section 1): every process — hardware-mapped or not — is
    interpreted with plain C semantics, *untimed*, with cooperatively
    scheduled fibers built on OCaml 5 effect handlers.  Differences
    between this path and the cycle-accurate circuit ({!Sim}) are exactly
    the discrepancies the paper's in-circuit assertions exist to catch.

    By default stream FIFOs are unbounded here (software simulation does
    not model backpressure), which is one documented source of
    "passes in simulation, hangs in hardware" behaviour. *)

open Front.Ast
module Loc = Front.Loc
module Value = Value

type failure = {
  floc : Loc.t;
  fproc : string;
  ftext : string;  (** source text of the failed condition *)
}

(** ANSI-C assert(3) message format. *)
let failure_message f =
  Printf.sprintf "%s:%d: %s: Assertion `%s' failed." f.floc.Loc.file f.floc.Loc.line
    f.fproc f.ftext

type outcome =
  | Completed                       (** every process ran to completion *)
  | Aborted of failure              (** first assertion failure halted the app *)
  | Deadlocked of (string * Loc.t) list  (** blocked processes and where *)
  | Fuel_exhausted                  (** step budget exceeded (runaway loop) *)
  | Runtime_error of string

type result = {
  outcome : outcome;
  failures : failure list;          (** all failures, in order (NABORT keeps going) *)
  drained : (string * int64 list) list;  (** collected stream outputs *)
  log : string list;                (** notification messages, ANSI format *)
}

(** One observation emitted during execution when an [observer] is
    installed — the raw material of trace-based invariant mining. *)
type obs_event =
  | Obs_scalar of { oproc : string; oloc : Loc.t; ovar : string; value : int64 }
  | Obs_loop of { oproc : string; oloc : Loc.t; iters : int }
  | Obs_stream of { oproc : string; stream : string; written : int64 }

type config = {
  params : (string * (string * int64) list) list;
      (** per-process scalar parameter bindings *)
  feeds : (string * int64 list) list;
      (** testbench values pre-loaded into streams *)
  drains : string list;             (** streams whose contents to collect *)
  nabort : bool;                    (** paper's NABORT: don't halt on failure *)
  ndebug : bool;                    (** paper's NDEBUG: disable all assertions *)
  unbounded_fifos : bool;
  extern_models : (string * (int64 list -> int64)) list;
      (** C models of external HDL functions *)
  max_steps : int;
  observer : (obs_event -> unit) option;
      (** trace hook: called synchronously for every observation *)
}

let default_config =
  {
    params = [];
    feeds = [];
    drains = [];
    nabort = false;
    ndebug = false;
    unbounded_fifos = true;
    extern_models = [];
    max_steps = 10_000_000;
    observer = None;
  }

exception Abort_all of failure
exception Runtime of string
exception Proc_return

(* --- Effects for blocking stream operations ---------------------------- *)

type _ Effect.t +=
  | Sread : string * string * Loc.t -> int64 Effect.t
  | Swrite : (string * int64 * string * Loc.t) -> unit Effect.t

(* --- Per-process environments ------------------------------------------ *)

(* Each cell carries its declared scalar/element type: stores
   canonicalize to it, exactly as a hardware register of that width
   would.  Ordinary assignments are already canonical (elaboration
   inserts casts), but a [stream_read] into a narrower or differently
   signed lvalue converts here — same as the circuit datapath. *)
type binding = Scalar of ty * int64 ref | Arr of ty * int64 array

type scope = (string, binding) Hashtbl.t

let new_scope () : scope = Hashtbl.create 8

let rec lookup scopes name =
  match scopes with
  | [] -> raise (Runtime (Printf.sprintf "unbound variable %s" name))
  | sc :: rest -> ( match Hashtbl.find_opt sc name with Some b -> b | None -> lookup rest name)

(* --- Expression evaluation (pure) -------------------------------------- *)

type rt = {
  cfg : config;
  prog : program;
  mutable steps : int;
  mutable failures : failure list;
  mutable log : string list;
  mutable obs : (obs_event -> unit) option;
      (** active observer; cleared around for-header init/step execution
          so loop bookkeeping is not reported as an ordinary assignment *)
}

let check_fuel rt =
  rt.steps <- rt.steps + 1;
  if rt.steps > rt.cfg.max_steps then raise (Runtime "fuel exhausted")

let rec eval rt scopes (x : expr) : int64 =
  match x.e with
  | Int n -> Value.wrap_ty x.ety n
  | Bool b -> Value.of_bool b
  | Var name -> (
      match lookup scopes name with
      | Scalar (_, r) -> !r
      | Arr _ -> raise (Runtime (Printf.sprintf "array %s used as scalar" name)))
  | Index (name, idx) -> (
      match lookup scopes name with
      | Arr (_, a) ->
          let i = Int64.to_int (eval rt scopes idx) in
          if i < 0 || i >= Array.length a then
            raise
              (Runtime
                 (Printf.sprintf "%s: array index %d out of bounds for %s[%d]"
                    (Loc.to_string x.eloc) i name (Array.length a)))
          else a.(i)
      | Scalar _ -> raise (Runtime (Printf.sprintf "%s is not an array" name)))
  | Unop (op, a) -> Value.unop op a.ety (eval rt scopes a)
  | Binop (Land, a, b) ->
      (* short-circuit, as in C *)
      if Value.to_bool (eval rt scopes a) then eval rt scopes b else 0L
  | Binop (Lor, a, b) -> if Value.to_bool (eval rt scopes a) then 1L else eval rt scopes b
  | Binop (op, a, b) ->
      let va = eval rt scopes a and vb = eval rt scopes b in
      (try Value.binop op a.ety va vb
       with Value.Division_by_zero ->
         raise (Runtime (Printf.sprintf "%s: division by zero" (Loc.to_string x.eloc))))
  | Cast (ty, a) -> Value.cast ~from_ty:a.ety ~to_ty:ty (eval rt scopes a)
  | Call (f, args) -> (
      match List.assoc_opt f rt.cfg.extern_models with
      | Some model ->
          let vs = List.map (eval rt scopes) args in
          Value.wrap_ty x.ety (model vs)
      | None ->
          raise (Runtime (Printf.sprintf "no C model registered for extern %s" f)))

(* --- Statement execution ------------------------------------------------ *)

let assign rt scopes lv v =
  match lv with
  | Lvar name -> (
      match lookup scopes name with
      | Scalar (ty, r) -> r := Value.wrap_ty ty v
      | Arr _ -> raise (Runtime (Printf.sprintf "cannot assign to array %s" name)))
  | Lindex (name, idx) -> (
      match lookup scopes name with
      | Arr (ty, a) ->
          let i = Int64.to_int (eval rt scopes idx) in
          if i < 0 || i >= Array.length a then
            raise
              (Runtime
                 (Printf.sprintf "array index %d out of bounds for %s[%d]" i name
                    (Array.length a)))
          else a.(i) <- Value.wrap_ty ty v
      | Scalar _ -> raise (Runtime (Printf.sprintf "%s is not an array" name)))

let observe rt ev = match rt.obs with Some f -> f ev | None -> ()

(* Induction variable of a for-header, when it has the canonical shape. *)
let header_var (h : for_header) =
  match (h.init, h.step) with
  | Some { s = Assign (Lvar v, _); _ }, _
  | Some { s = Decl (_, v, _); _ }, _
  | None, Some { s = Assign (Lvar v, _); _ } -> Some v
  | _ -> None

let rec exec_stmts rt pname scopes stmts = List.iter (exec_stmt rt pname scopes) stmts

and exec_stmt rt pname scopes st =
  check_fuel rt;
  match st.s with
  | Decl (ty, name, init) -> (
      let top = match scopes with sc :: _ -> sc | [] -> assert false in
      match ty with
      | Tarray (elem, n) -> Hashtbl.replace top name (Arr (elem, Array.make n 0L))
      | _ ->
          let v = match init with Some e -> eval rt scopes e | None -> 0L in
          Hashtbl.replace top name (Scalar (ty, ref v));
          if init <> None then
            observe rt (Obs_scalar { oproc = pname; oloc = st.sloc; ovar = name; value = v }))
  | Assign (lv, e) ->
      let v = eval rt scopes e in
      assign rt scopes lv v;
      (match lv with
      | Lvar name ->
          observe rt (Obs_scalar { oproc = pname; oloc = st.sloc; ovar = name; value = v })
      | Lindex _ -> ())
  | If (c, t, f) ->
      let branch = if Value.to_bool (eval rt scopes c) then t else f in
      exec_stmts rt pname (new_scope () :: scopes) branch
  | While (c, b) ->
      let iters = ref 0 in
      while Value.to_bool (eval rt scopes c) do
        check_fuel rt;
        incr iters;
        exec_stmts rt pname (new_scope () :: scopes) b
      done;
      observe rt (Obs_loop { oproc = pname; oloc = st.sloc; iters = !iters })
  | For (h, b) ->
      let scopes' = new_scope () :: scopes in
      (* header init/step run unobserved: the induction variable is
         reported once per iteration below, anchored at the loop itself,
         so mined invariants can be injected at the top of the body *)
      let unobserved s =
        let saved = rt.obs in
        rt.obs <- None;
        Fun.protect ~finally:(fun () -> rt.obs <- saved) (fun () ->
            exec_stmt rt pname scopes' s)
      in
      (match h.init with Some s -> unobserved s | None -> ());
      let ivar = header_var h in
      let iters = ref 0 in
      while Value.to_bool (eval rt scopes' h.cond) do
        check_fuel rt;
        incr iters;
        (match ivar with
        | Some v -> (
            match (try Some (lookup scopes' v) with Runtime _ -> None) with
            | Some (Scalar (_, r)) ->
                observe rt
                  (Obs_scalar { oproc = pname; oloc = st.sloc; ovar = v; value = !r })
            | Some (Arr _) | None -> ())
        | None -> ());
        exec_stmts rt pname (new_scope () :: scopes') b;
        match h.step with Some s -> unobserved s | None -> ()
      done;
      observe rt (Obs_loop { oproc = pname; oloc = st.sloc; iters = !iters })
  | Assert (c, txt) ->
      if not rt.cfg.ndebug then
        if not (Value.to_bool (eval rt scopes c)) then begin
          let f = { floc = st.sloc; fproc = pname; ftext = txt } in
          rt.failures <- f :: rt.failures;
          rt.log <- failure_message f :: rt.log;
          if not rt.cfg.nabort then raise (Abort_all f)
        end
  | Stream_read (lv, s) ->
      let v = Effect.perform (Sread (s, pname, st.sloc)) in
      assign rt scopes lv v;
      (match lv with
      | Lvar name ->
          observe rt (Obs_scalar { oproc = pname; oloc = st.sloc; ovar = name; value = v })
      | Lindex _ -> ())
  | Stream_write (s, e) ->
      let v = eval rt scopes e in
      observe rt (Obs_stream { oproc = pname; stream = s; written = v });
      Effect.perform (Swrite (s, v, pname, st.sloc))
  | Return _ -> raise Proc_return
  | Block b -> exec_stmts rt pname (new_scope () :: scopes) b
  | Tapstmt (_, args) ->
      (* data extraction is a hardware artifact; evaluate (for effects on
         fuel accounting only) and discard *)
      List.iter (fun a -> ignore (eval rt scopes a)) args
  | Const_array (elem, name, values) ->
      let top = match scopes with sc :: _ -> sc | [] -> assert false in
      Hashtbl.replace top name
        (Arr (elem, Array.of_list (List.map (Value.wrap_ty elem) values)))

(* --- Cooperative scheduler over effect handlers ------------------------- *)

type fifo = { q : int64 Queue.t; capacity : int }

type blocked =
  | Bread of string * string * Loc.t * (int64, unit) Effect.Deep.continuation
  | Bwrite of string * int64 * string * Loc.t * (unit, unit) Effect.Deep.continuation

(** Run [prog] under [cfg].  Deterministic: processes are scheduled
    round-robin in declaration order. *)
let run ?(cfg = default_config) (prog : program) : result =
  let fifos = Hashtbl.create 8 in
  List.iter
    (fun (s : stream_decl) ->
      let capacity = if cfg.unbounded_fifos then max_int else s.depth in
      Hashtbl.replace fifos s.sname { q = Queue.create (); capacity })
    prog.streams;
  List.iter
    (fun (sname, vs) ->
      match Hashtbl.find_opt fifos sname with
      | Some f ->
          let elem =
            match find_stream prog sname with Some s -> s.elem | None -> int32_t
          in
          List.iter (fun v -> Queue.add (Value.wrap_ty elem v) f.q) vs
      | None -> invalid_arg (Printf.sprintf "feed: unknown stream %s" sname))
    cfg.feeds;
  let rt = { cfg; prog; steps = 0; failures = []; log = []; obs = cfg.observer } in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  let blocked : blocked list ref = ref [] in
  let abort : failure option ref = ref None in
  let error : string option ref = ref None in
  let stream_elem sname =
    match find_stream prog sname with Some s -> s.elem | None -> int32_t
  in
  let handler pname body =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            match e with
            | Proc_return -> ()
            | Abort_all f -> abort := Some f
            | Runtime msg -> error := Some (Printf.sprintf "%s: %s" pname msg)
            | e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sread (s, p, loc) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Hashtbl.find_opt fifos s with
                    | Some f when not (Queue.is_empty f.q) ->
                        continue k (Queue.pop f.q)
                    | Some _ -> blocked := Bread (s, p, loc, k) :: !blocked
                    | None -> error := Some (Printf.sprintf "unknown stream %s" s))
            | Swrite (s, v, p, loc) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Hashtbl.find_opt fifos s with
                    | Some f when Queue.length f.q < f.capacity ->
                        Queue.add (Value.wrap_ty (stream_elem s) v) f.q;
                        continue k ()
                    | Some _ -> blocked := Bwrite (s, v, p, loc, k) :: !blocked
                    | None -> error := Some (Printf.sprintf "unknown stream %s" s))
            | _ -> None);
      }
  in
  (* Launch a fiber per process. *)
  List.iter
    (fun (p : proc) ->
      let body () =
        let top = new_scope () in
        let bindings = try List.assoc p.pname cfg.params with Not_found -> [] in
        List.iter
          (fun (name, ty) ->
            let v = try List.assoc name bindings with Not_found -> 0L in
            Hashtbl.replace top name (Scalar (ty, ref (Value.wrap_ty ty v))))
          p.params;
        exec_stmts rt p.pname [ top ] p.body
      in
      Queue.add (fun () -> handler p.pname body) runnable)
    prog.procs;
  (* Scheduler: run fibers; after each, try to unblock waiters. *)
  let progress = ref true in
  let give_up = ref false in
  while
    (not (Queue.is_empty runnable && not !progress))
    && !abort = None && !error = None && not !give_up
  do
    if Queue.is_empty runnable then begin
      (* try to resume blocked fibers *)
      let still = ref [] in
      let resumed = ref false in
      List.iter
        (fun b ->
          if !resumed || !abort <> None || !error <> None then still := b :: !still
          else
            match b with
            | Bread (s, p, loc, k) -> (
                match Hashtbl.find_opt fifos s with
                | Some f when not (Queue.is_empty f.q) ->
                    resumed := true;
                    let v = Queue.pop f.q in
                    Queue.add (fun () -> handler p (fun () -> Effect.Deep.continue k v)) runnable
                | _ -> still := Bread (s, p, loc, k) :: !still)
            | Bwrite (s, v, p, loc, k) -> (
                match Hashtbl.find_opt fifos s with
                | Some f when Queue.length f.q < f.capacity ->
                    resumed := true;
                    Queue.add (Value.wrap_ty (stream_elem s) v) f.q;
                    Queue.add (fun () -> handler p (fun () -> Effect.Deep.continue k ())) runnable
                | _ -> still := Bwrite (s, v, p, loc, k) :: !still))
        (List.rev !blocked);
      blocked := !still;
      if not !resumed then begin
        progress := false;
        if !blocked <> [] then give_up := true
      end
    end
    else begin
      let fiber = Queue.pop runnable in
      (try fiber () with Runtime msg -> error := Some msg);
      progress := true
    end
  done;
  let drained =
    List.map
      (fun s ->
        match Hashtbl.find_opt fifos s with
        | Some f -> (s, List.of_seq (Queue.to_seq f.q))
        | None -> (s, []))
      cfg.drains
  in
  let outcome =
    match (!abort, !error) with
    | Some f, _ -> Aborted f
    | None, Some msg when msg = "fuel exhausted" || Filename.check_suffix msg "fuel exhausted" ->
        Fuel_exhausted
    | None, Some msg -> Runtime_error msg
    | None, None ->
        if !blocked <> [] then
          Deadlocked
            (List.map
               (function
                 | Bread (_, p, loc, _) -> (p, loc)
                 | Bwrite (_, _, p, loc, _) -> (p, loc))
               !blocked)
        else Completed
  in
  { outcome; failures = List.rev rt.failures; drained; log = List.rev rt.log }

(** True when the run finished with no assertion failure and no error. *)
let ok r = r.outcome = Completed && r.failures = []
