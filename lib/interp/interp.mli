(** Software simulation of an InCA program (the "CPU simulation" path).

    The analogue of Impulse-C's thread-based software simulation (paper,
    Section 1): every process is interpreted with plain C semantics,
    *untimed*, on cooperatively scheduled fibers built from OCaml 5
    effect handlers.  Differences between this path and the
    cycle-accurate circuit ({!Sim.Engine}) are exactly the discrepancies
    the paper's in-circuit assertions exist to catch.

    Stream FIFOs are unbounded here by default (software simulation does
    not model backpressure) — one documented source of "passes in
    simulation, hangs in hardware" behaviour. *)

module Value = Value

type failure = {
  floc : Front.Loc.t;
  fproc : string;
  ftext : string;  (** source text of the failed condition *)
}

(** ANSI-C assert(3) message format. *)
val failure_message : failure -> string

type outcome =
  | Completed                            (** every process ran to completion *)
  | Aborted of failure                   (** first failure halted the app *)
  | Deadlocked of (string * Front.Loc.t) list
      (** blocked processes and where they block *)
  | Fuel_exhausted                       (** step budget exceeded *)
  | Runtime_error of string

type result = {
  outcome : outcome;
  failures : failure list;   (** all failures, in order (NABORT keeps going) *)
  drained : (string * int64 list) list;  (** collected stream outputs *)
  log : string list;         (** notification messages, ANSI format *)
}

(** One observation emitted during execution when an [observer] is
    installed — the raw material of trace-based invariant mining
    ({!Mine.Trace}).  Events carry the source location of the statement
    that produced them so mined invariants can be injected back at the
    same program point. *)
type obs_event =
  | Obs_scalar of { oproc : string; oloc : Front.Loc.t; ovar : string; value : int64 }
      (** a scalar's value right after it is assigned (declaration
          initializer, assignment, or stream read into a variable).  For
          a [for] loop the induction variable is also observed at the
          top of every iteration, anchored at the loop statement's
          location — header init/step assignments themselves are not
          reported. *)
  | Obs_loop of { oproc : string; oloc : Front.Loc.t; iters : int }
      (** completed trip count of one execution of a [for]/[while] loop *)
  | Obs_stream of { oproc : string; stream : string; written : int64 }
      (** a value written to a stream, in program order *)

type config = {
  params : (string * (string * int64) list) list;
      (** per-process scalar parameter bindings *)
  feeds : (string * int64 list) list;
      (** testbench values pre-loaded into streams *)
  drains : string list;
  nabort : bool;             (** paper's NABORT: don't halt on failure *)
  ndebug : bool;             (** paper's NDEBUG: disable all assertions *)
  unbounded_fifos : bool;
  extern_models : (string * (int64 list -> int64)) list;
      (** C models of external HDL functions *)
  max_steps : int;
  observer : (obs_event -> unit) option;
      (** trace hook: called synchronously for every observation *)
}

val default_config : config

(** Run a program.  Deterministic: processes are scheduled round-robin
    in declaration order. *)
val run : ?cfg:config -> Front.Ast.program -> result

(** True when the run completed with no assertion failure. *)
val ok : result -> bool
