(** Structured three-address intermediate representation.

    A process body is lowered to a tree of straight-line instruction
    segments, conditionals, and loops.  Variables and temporaries live in
    virtual registers (hardware registers in the generated FSMD — the IR
    is deliberately not SSA: a register is a stateful datapath element).
    Arrays become named memories with a bounded number of ports; streams
    stay symbolic and are resolved against the program's stream table. *)

open Front.Ast

type reg = int [@@deriving show, eq, ord]

type operand =
  | Reg of reg
  | Imm of int64
[@@deriving show, eq, ord]

(** One three-address instruction.  [ty] fields give the operand type at
    which the operation is performed (elaboration guarantees both
    operands of a {!Bin} share it). *)
type inst =
  | Bin of { dst : reg; op : binop; a : operand; b : operand; ty : ty }
  | Un of { dst : reg; op : unop; a : operand; ty : ty }
  | Copy of { dst : reg; src : operand; ty : ty }
  | Castop of { dst : reg; src : operand; from_ty : ty; to_ty : ty }
  | Load of { dst : reg; mem : string; addr : operand }
  | Store of { mem : string; addr : operand; v : operand }
  | Sread of { dst : reg; stream : string }
  | Swrite of { stream : string; v : operand }
  | Extcall of { dst : reg; func : string; args : operand list; latency : int }
  | Tap of { id : int; args : operand list }
      (** assertion data extraction point: exports [args] plus a fire
          pulse to an out-of-process assertion checker (Section 3.1) *)
[@@deriving show, eq]

(** Guarded instruction: [guard = Some (r, v)] means the instruction
    takes effect only when register [r] holds boolean value [v].
    Produced by if-conversion inside pipelined loops. *)
type ginst = { i : inst; guard : (reg * bool) option } [@@deriving show, eq]

let unguarded i = { i; guard = None }

type body = item list

and item =
  | Straight of ginst list
  | If_else of { cond_insts : ginst list; cond : reg; then_ : body; else_ : body }
      (** [cond_insts] evaluate the condition in dedicated states — an
          [if] always costs at least one state, which is where the
          paper's one-cycle overhead for unoptimized assertions
          (Table 3, scalar row) comes from *)
  | Loop of {
      cond_insts : ginst list;  (** re-evaluated every iteration *)
      cond : reg;
      body : body;
      step_insts : ginst list;
      pipelined : bool;
    }
[@@deriving show]

(** A memory (block RAM).  [mirror_of = Some m] marks a replica created
    by the resource-replication optimization (Section 3.2): every store
    to [m] is mirrored into this memory at lowering time, and only
    assertion logic reads it. *)
type mem = {
  mname : string;
  elem : ty;
  length : int;
  ports : int;
  mirror_of : string option;
  rom_init : int64 list option;
      (** compile-time contents (a ROM initialized in the bitstream) *)
}
[@@deriving show, eq]

type reg_info = {
  rty : ty;
  origin : string option;  (** source variable name, if any *)
}
[@@deriving show, eq]

type proc_ir = {
  name : string;
  kind : proc_kind;
  regs : (reg * reg_info) list;     (** allocation order *)
  mems : mem list;
  body : body;
}
[@@deriving show]

type program_ir = {
  streams : stream_decl list;
  externs : extern_decl list;
  procs : proc_ir list;
}

let reg_type p r =
  match List.assoc_opt r p.regs with
  | Some info -> info.rty
  | None -> invalid_arg (Printf.sprintf "Ir.reg_type: unknown register %d in %s" r p.name)

let find_mem p name = List.find_opt (fun m -> m.mname = name) p.mems

(** Destination register of an instruction, if any. *)
let dst_of = function
  | Bin { dst; _ } | Un { dst; _ } | Copy { dst; _ } | Castop { dst; _ }
  | Load { dst; _ } | Sread { dst; _ } | Extcall { dst; _ } ->
      Some dst
  | Store _ | Swrite _ | Tap _ -> None

(** Registers read by an instruction (guard excluded). *)
let uses_of inst =
  let of_op = function Reg r -> [ r ] | Imm _ -> [] in
  match inst with
  | Bin { a; b; _ } -> of_op a @ of_op b
  | Un { a; _ } -> of_op a
  | Copy { src; _ } -> of_op src
  | Castop { src; _ } -> of_op src
  | Load { addr; _ } -> of_op addr
  | Store { addr; v; _ } -> of_op addr @ of_op v
  | Sread _ -> []
  | Swrite { v; _ } -> of_op v
  | Extcall { args; _ } -> List.concat_map of_op args
  | Tap { args; _ } -> List.concat_map of_op args

let uses_of_g g =
  let guard_uses = match g.guard with Some (r, _) -> [ r ] | None -> [] in
  guard_uses @ uses_of g.i

(** Does the instruction touch memory [m]? *)
let mem_access = function
  | Load { mem; _ } | Store { mem; _ } -> Some mem
  | Bin _ | Un _ | Copy _ | Castop _ | Sread _ | Swrite _ | Extcall _ | Tap _ -> None

let is_stream_op = function
  | Sread _ | Swrite _ -> true
  | Bin _ | Un _ | Copy _ | Castop _ | Load _ | Store _ | Extcall _ | Tap _ -> false

(** Iterate over all instruction segments of a body, in program order. *)
let rec iter_segments f (body : body) =
  List.iter
    (function
      | Straight insts -> f insts
      | If_else { cond_insts; then_; else_; _ } ->
          f cond_insts;
          iter_segments f then_;
          iter_segments f else_
      | Loop { cond_insts; body; step_insts; _ } ->
          f cond_insts;
          iter_segments f body;
          f step_insts)
    body

let all_insts body =
  let acc = ref [] in
  iter_segments (fun insts -> acc := List.rev_append insts !acc) body;
  List.rev !acc

(** Streams referenced by a process body with direction. *)
let streams_of_body body =
  let reads = ref [] and writes = ref [] in
  let add l s = if not (List.mem s !l) then l := s :: !l in
  List.iter
    (fun g ->
      match g.i with
      | Sread { stream; _ } -> add reads stream
      | Swrite { stream; _ } -> add writes stream
      | _ -> ())
    (all_insts body);
  (List.rev !reads, List.rev !writes)

(* --- Compact printer ----------------------------------------------------- *)

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm n -> Fmt.pf ppf "%Ld" n

let pp_inst ppf inst =
  match inst with
  | Bin { dst; op; a; b; _ } ->
      Fmt.pf ppf "r%d = %a %s %a" dst pp_operand a (Front.Pretty.string_of_binop op) pp_operand b
  | Un { dst; op; a; _ } ->
      Fmt.pf ppf "r%d = %s%a" dst (Front.Pretty.string_of_unop op) pp_operand a
  | Copy { dst; src; _ } -> Fmt.pf ppf "r%d = %a" dst pp_operand src
  | Castop { dst; src; to_ty; _ } ->
      Fmt.pf ppf "r%d = (%s)%a" dst (Front.Pretty.string_of_ty to_ty) pp_operand src
  | Load { dst; mem; addr } -> Fmt.pf ppf "r%d = %s[%a]" dst mem pp_operand addr
  | Store { mem; addr; v } -> Fmt.pf ppf "%s[%a] = %a" mem pp_operand addr pp_operand v
  | Sread { dst; stream } -> Fmt.pf ppf "r%d = sread(%s)" dst stream
  | Swrite { stream; v } -> Fmt.pf ppf "swrite(%s, %a)" stream pp_operand v
  | Extcall { dst; func; args; latency } ->
      Fmt.pf ppf "r%d = %s(%a) @%d" dst func (Fmt.list ~sep:Fmt.comma pp_operand) args latency
  | Tap { id; args } ->
      Fmt.pf ppf "tap#%d(%a)" id (Fmt.list ~sep:Fmt.comma pp_operand) args

let pp_ginst ppf g =
  match g.guard with
  | None -> pp_inst ppf g.i
  | Some (r, v) -> Fmt.pf ppf "[r%d=%b] %a" r v pp_inst g.i

let rec pp_body ?(indent = 0) ppf (body : body) =
  let pad = String.make indent ' ' in
  List.iter
    (function
      | Straight insts ->
          List.iter (fun g -> Fmt.pf ppf "%s%a@\n" pad pp_ginst g) insts
      | If_else { cond_insts; cond; then_; else_ } ->
          List.iter (fun g -> Fmt.pf ppf "%scond: %a@\n" pad pp_ginst g) cond_insts;
          Fmt.pf ppf "%sif r%d {@\n%a%s}" pad cond (pp_body ~indent:(indent + 2)) then_ pad;
          if else_ <> [] then
            Fmt.pf ppf " else {@\n%a%s}" (pp_body ~indent:(indent + 2)) else_ pad;
          Fmt.pf ppf "@\n"
      | Loop { cond_insts; cond; body; step_insts; pipelined } ->
          Fmt.pf ppf "%sloop%s {@\n" pad (if pipelined then " (pipelined)" else "");
          List.iter (fun g -> Fmt.pf ppf "%s  cond: %a@\n" pad pp_ginst g) cond_insts;
          Fmt.pf ppf "%s  while r%d:@\n" pad cond;
          pp_body ~indent:(indent + 2) ppf body;
          List.iter (fun g -> Fmt.pf ppf "%s  step: %a@\n" pad pp_ginst g) step_insts;
          Fmt.pf ppf "%s}@\n" pad)
    body

let pp_proc ppf p =
  Fmt.pf ppf "proc %s@\n" p.name;
  List.iter
    (fun m ->
      Fmt.pf ppf "  mem %s : %s[%d] ports=%d%s@\n" m.mname
        (Front.Pretty.string_of_ty m.elem)
        m.length m.ports
        (match m.mirror_of with Some o -> " mirror of " ^ o | None -> ""))
    p.mems;
  pp_body ~indent:2 ppf p.body

let proc_to_string p = Fmt.str "%a" pp_proc p

(* --- Well-formedness ------------------------------------------------------ *)

(** Structural invariants every lowered program must satisfy.  Returns
    human-readable complaints (empty = well-formed): registers resolve,
    memory accesses name declared memories with in-range immediate
    addresses, stream operations name declared streams, tap identifiers
    are unique program-wide, replica memories resolve their originals,
    and ROM images fit their memory. *)
let validate (prog : program_ir) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let tap_ids = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let have_reg r = List.mem_assoc r p.regs in
      let check_inst g =
        (match g.guard with
        | Some (r, _) when not (have_reg r) ->
            err "%s: guard reads undeclared register %d" p.name r
        | _ -> ());
        (match dst_of g.i with
        | Some d when not (have_reg d) ->
            err "%s: instruction defines undeclared register %d" p.name d
        | _ -> ());
        List.iter
          (fun r -> if not (have_reg r) then err "%s: instruction reads undeclared register %d" p.name r)
          (uses_of g.i);
        (match mem_access g.i with
        | Some m -> (
            match find_mem p m with
            | None -> err "%s: access to undeclared memory %s" p.name m
            | Some mem -> (
                let addr =
                  match g.i with
                  | Load { addr; _ } -> Some addr
                  | Store { addr; _ } -> Some addr
                  | _ -> None
                in
                match addr with
                | Some (Imm a) when Int64.compare a 0L < 0 || Int64.compare a (Int64.of_int mem.length) >= 0 ->
                    err "%s: constant address %Ld outside memory %s[0..%d]" p.name a m (mem.length - 1)
                | _ -> ()))
        | None -> ());
        (match g.i with
        | Sread { stream; _ } | Swrite { stream; _ } ->
            if not (List.exists (fun (s : stream_decl) -> s.sname = stream) prog.streams) then
              err "%s: stream operation on undeclared stream %s" p.name stream
        | Tap { id; _ } ->
            (match Hashtbl.find_opt tap_ids id with
            | Some owner -> err "%s: tap id %d already used in %s" p.name id owner
            | None -> Hashtbl.replace tap_ids id p.name)
        | _ -> ())
      in
      let rec check_body body =
        List.iter
          (function
            | Straight insts -> List.iter check_inst insts
            | If_else { cond_insts; cond; then_; else_ } ->
                List.iter check_inst cond_insts;
                if not (have_reg cond) then err "%s: if condition reads undeclared register %d" p.name cond;
                check_body then_;
                check_body else_
            | Loop { cond_insts; cond; body; step_insts; _ } ->
                List.iter check_inst cond_insts;
                if not (have_reg cond) then err "%s: loop condition reads undeclared register %d" p.name cond;
                check_body body;
                List.iter check_inst step_insts)
          body
      in
      List.iter
        (fun m ->
          (match m.mirror_of with
          | Some o when find_mem p o = None ->
              err "%s: memory %s mirrors undeclared memory %s" p.name m.mname o
          | _ -> ());
          match m.rom_init with
          | Some image when List.length image > m.length ->
              err "%s: ROM image of %s has %d elements for %d slots" p.name m.mname
                (List.length image) m.length
          | _ -> ())
        p.mems;
      check_body p.body)
    prog.procs;
  List.rev !errs
