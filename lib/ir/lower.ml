(** Lowering from the typed AST to the structured IR.

    Every source variable gets a dedicated virtual register (a datapath
    register in the FSMD); expression trees allocate temporaries.
    Arrays become memories.  Logical [&&]/[||] are evaluated eagerly as
    1-bit bitwise operations — hardware evaluates both sides; the
    expressions are pure so only timing differs from C's short-circuit.

    [mirrors] implements the resource-replication optimization
    (Section 3.2): for each [(orig, copy)] pair, a [copy] memory is
    created and every store to [orig] is duplicated into [copy] on the
    replica's own write port. *)

open Front.Ast
module Value = Interp.Value

exception Unsupported of string * Front.Loc.t

type binding = Vreg of Ir.reg | Vmem of string

type st = {
  mutable next_reg : int;
  mutable regs : (Ir.reg * Ir.reg_info) list;  (* reverse order *)
  mutable mems : Ir.mem list;                  (* reverse order *)
  mutable scopes : (string, binding) Hashtbl.t list;
  prog : program;
  mirrors : (string * string) list;
  mem_ports : int;
}

let fresh st ?origin rty =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  st.regs <- (r, { Ir.rty; origin }) :: st.regs;
  r

let push_scope st = st.scopes <- Hashtbl.create 8 :: st.scopes
let pop_scope st = st.scopes <- List.tl st.scopes

let bind st name b =
  match st.scopes with
  | sc :: _ -> Hashtbl.replace sc name b
  | [] -> assert false

let rec lookup_scopes scopes name =
  match scopes with
  | [] -> None
  | sc :: rest -> (
      match Hashtbl.find_opt sc name with Some b -> Some b | None -> lookup_scopes rest name)

let lookup st loc name =
  match lookup_scopes st.scopes name with
  | Some b -> b
  | None -> raise (Unsupported (Printf.sprintf "unbound %s (lowering)" name, loc))

(* Unique memory names: arrays re-declared in nested scopes or loops get
   a numeric suffix so each memory is a distinct block RAM. *)
let uniquify_mem st base =
  let taken n = List.exists (fun (m : Ir.mem) -> m.Ir.mname = n) st.mems in
  if not (taken base) then base
  else
    let rec go i =
      let n = Printf.sprintf "%s__%d" base i in
      if taken n then go (i + 1) else n
    in
    go 2

let declare_mem st ?(mirror_of = None) ?(rom_init = None) name elem length =
  let mname = uniquify_mem st name in
  (* a replica carries an extra port: the hidden write port that mirrors
     the original array's stores (resource replication, Section 3.2) *)
  let ports = st.mem_ports + (match mirror_of with Some _ -> 1 | None -> 0) in
  let mem = { Ir.mname; elem; length; ports; mirror_of; rom_init } in
  st.mems <- mem :: st.mems;
  mname

(* --- Expressions -------------------------------------------------------- *)

(* Returns (instructions, result operand). *)
let rec lower_expr st (x : expr) : Ir.ginst list * Ir.operand =
  match x.e with
  | Int n -> ([], Ir.Imm (Value.wrap_ty x.ety n))
  | Bool b -> ([], Ir.Imm (Value.of_bool b))
  | Var name -> (
      match lookup st x.eloc name with
      | Vreg r -> ([], Ir.Reg r)
      | Vmem m -> raise (Unsupported (Printf.sprintf "array %s as scalar" m, x.eloc)))
  | Index (name, idx) -> (
      match lookup st x.eloc name with
      | Vmem m ->
          let insts, addr = lower_expr st idx in
          let dst = fresh st x.ety in
          (insts @ [ Ir.unguarded (Ir.Load { dst; mem = m; addr }) ], Ir.Reg dst)
      | Vreg _ -> raise (Unsupported (Printf.sprintf "%s is not an array" name, x.eloc)))
  | Unop (op, a) ->
      let insts, va = lower_expr st a in
      (match va with
      | Ir.Imm n -> (insts, Ir.Imm (Value.unop op a.ety n))
      | _ ->
          let dst = fresh st x.ety in
          (insts @ [ Ir.unguarded (Ir.Un { dst; op; a = va; ty = a.ety }) ], Ir.Reg dst))
  | Binop (op, a, b) ->
      let op = match op with Land -> Band | Lor -> Bor | other -> other in
      let insts_a, va = lower_expr st a in
      let insts_b, vb = lower_expr st b in
      let operand_ty = a.ety in
      (match (va, vb) with
      | Ir.Imm na, Ir.Imm nb when op <> Div && op <> Mod ->
          (insts_a @ insts_b, Ir.Imm (Value.binop op operand_ty na nb))
      | Ir.Imm na, Ir.Imm nb when nb <> 0L ->
          (insts_a @ insts_b, Ir.Imm (Value.binop op operand_ty na nb))
      | _ ->
          let dst = fresh st x.ety in
          ( insts_a @ insts_b
            @ [ Ir.unguarded (Ir.Bin { dst; op; a = va; b = vb; ty = operand_ty }) ],
            Ir.Reg dst ))
  | Cast (to_ty, a) ->
      let insts, va = lower_expr st a in
      (match va with
      | Ir.Imm n -> (insts, Ir.Imm (Value.cast ~from_ty:a.ety ~to_ty n))
      | _ ->
          let dst = fresh st to_ty in
          ( insts @ [ Ir.unguarded (Ir.Castop { dst; src = va; from_ty = a.ety; to_ty }) ],
            Ir.Reg dst ))
  | Call (func, args) ->
      let latency =
        match find_extern st.prog func with Some x' -> x'.xlatency | None -> 1
      in
      let parts = List.map (lower_expr st) args in
      let insts = List.concat_map fst parts in
      let operands = List.map snd parts in
      let dst = fresh st x.ety in
      (insts @ [ Ir.unguarded (Ir.Extcall { dst; func; args = operands; latency }) ], Ir.Reg dst)

(* Lower an expression into a specific destination register, avoiding a
   trailing temporary-to-variable copy when possible. *)
let lower_expr_into st (x : expr) (dst : Ir.reg) : Ir.ginst list =
  let insts, v = lower_expr st x in
  match (List.rev insts, v) with
  | last :: before, Ir.Reg r when Ir.dst_of last.Ir.i = Some r && last.Ir.guard = None ->
      let retarget =
        match last.Ir.i with
        | Ir.Bin b -> Ir.Bin { b with dst }
        | Ir.Un u -> Ir.Un { u with dst }
        | Ir.Copy c -> Ir.Copy { c with dst }
        | Ir.Castop c -> Ir.Castop { c with dst }
        | Ir.Load l -> Ir.Load { l with dst }
        | Ir.Sread s -> Ir.Sread { s with dst }
        | Ir.Extcall e -> Ir.Extcall { e with dst }
        | (Ir.Store _ | Ir.Swrite _ | Ir.Tap _) as i -> i
      in
      List.rev (Ir.unguarded retarget :: before)
  | _ ->
      let ty = match x.ety with Tvoid -> int32_t | t -> t in
      insts @ [ Ir.unguarded (Ir.Copy { dst; src = v; ty }) ]

(* --- Statements --------------------------------------------------------- *)

(* Mirrored store: duplicate stores into every replica of [m]. *)
let mirror_stores st m addr v =
  List.filter_map
    (fun (orig, copy) ->
      if orig = m then Some (Ir.unguarded (Ir.Store { mem = copy; addr; v })) else None)
    st.mirrors

type acc = { mutable items : Ir.item list; mutable pending : Ir.ginst list }

let flush acc =
  if acc.pending <> [] then begin
    acc.items <- Ir.Straight (List.rev acc.pending) :: acc.items;
    acc.pending <- []
  end

let emit acc insts = acc.pending <- List.rev_append insts acc.pending

let emit_item acc item =
  flush acc;
  acc.items <- item :: acc.items

let finish acc =
  flush acc;
  List.rev acc.items

let rec lower_stmts st stmts : Ir.body =
  let acc = { items = []; pending = [] } in
  List.iter (lower_stmt st acc) stmts;
  finish acc

and lower_stmt st acc (stmt : stmt) =
  let loc = stmt.sloc in
  match stmt.s with
  | Decl (Tarray (elem, n), name, _) ->
      let mirror_of =
        List.fold_left (fun found (o, c) -> if c = name then Some o else found) None st.mirrors
      in
      let mname = declare_mem st ~mirror_of name elem n in
      bind st name (Vmem mname)
  | Decl (ty, name, init) ->
      let r = fresh st ~origin:name ty in
      bind st name (Vreg r);
      (match init with
      | Some e -> emit acc (lower_expr_into st e r)
      | None -> ())
  | Assign (Lvar name, e) -> (
      match lookup st loc name with
      | Vreg r -> emit acc (lower_expr_into st e r)
      | Vmem _ -> raise (Unsupported ("assign to array", loc)))
  | Assign (Lindex (name, idx), e) -> (
      match lookup st loc name with
      | Vmem m ->
          let ia, addr = lower_expr st idx in
          let iv, v = lower_expr st e in
          emit acc (ia @ iv);
          emit acc [ Ir.unguarded (Ir.Store { mem = m; addr; v }) ];
          emit acc (mirror_stores st m addr v)
      | Vreg _ -> raise (Unsupported (name ^ " is not an array", loc)))
  | If (c, then_, else_) ->
      let ic, vc = lower_expr st c in
      let cond, cond_insts = materialize_cond st ic vc in
      (* Data fetches feeding the condition (loads, external calls) are
         hoisted into the enclosing straight segment, where the
         scheduler may fold them into existing states when a memory
         port is free — the paper's Table 3 "non-consecutive" case.
         Only the pure comparison logic stays with the branch. *)
      let cond_insts, hoisted =
        let rec last_fetch idx best = function
          | [] -> best
          | (g : Ir.ginst) :: rest ->
              let best =
                match g.Ir.i with
                | Ir.Load _ | Ir.Extcall _ -> idx + 1
                | _ -> best
              in
              last_fetch (idx + 1) best rest
        in
        let cut = last_fetch 0 0 cond_insts in
        let rec split i = function
          | [] -> ([], [])
          | x :: rest ->
              if i < cut then
                let pre, post = split (i + 1) rest in
                (x :: pre, post)
              else ([], x :: rest)
        in
        let pre, post = split 0 cond_insts in
        (post, pre)
      in
      emit acc hoisted;
      push_scope st;
      let then_b = lower_stmts st then_ in
      pop_scope st;
      push_scope st;
      let else_b = lower_stmts st else_ in
      pop_scope st;
      emit_item acc (Ir.If_else { cond_insts; cond; then_ = then_b; else_ = else_b })
  | While (c, body) ->
      push_scope st;
      let ic, vc = lower_expr st c in
      let cond, cond_insts = materialize_cond st ic vc in
      let body_b = lower_stmts st body in
      pop_scope st;
      emit_item acc (Ir.Loop { cond_insts; cond; body = body_b; step_insts = []; pipelined = false })
  | For (h, body) ->
      push_scope st;
      (match h.init with
      | Some s -> lower_stmt st acc s
      | None -> ());
      let ic, vc = lower_expr st h.cond in
      let cond, cond_insts = materialize_cond st ic vc in
      let body_b = lower_stmts st body in
      let step_insts =
        match h.step with
        | None -> []
        | Some { s = Assign (Lvar name, e); sloc; _ } -> (
            match lookup st sloc name with
            | Vreg r -> lower_expr_into st e r
            | Vmem _ -> raise (Unsupported ("array step", sloc)))
        | Some { sloc; _ } -> raise (Unsupported ("complex for-step", sloc))
      in
      pop_scope st;
      emit_item acc
        (Ir.Loop { cond_insts; cond; body = body_b; step_insts; pipelined = h.pipelined })
  | Assert (_, txt) ->
      raise
        (Unsupported
           ( Printf.sprintf
               "assert(%s) reached lowering: run assertion synthesis (or strip) first" txt,
             loc ))
  | Stream_read (lv, s) -> (
      match lv with
      | Lvar name -> (
          match lookup st loc name with
          | Vreg dst -> emit acc [ Ir.unguarded (Ir.Sread { dst; stream = s }) ]
          | Vmem _ -> raise (Unsupported ("stream_read into array", loc)))
      | Lindex (name, idx) -> (
          match lookup st loc name with
          | Vmem m ->
              let elem =
                match find_stream st.prog s with Some sd -> sd.elem | None -> int32_t
              in
              let tmp = fresh st elem in
              let ia, addr = lower_expr st idx in
              emit acc (ia @ [ Ir.unguarded (Ir.Sread { dst = tmp; stream = s }) ]);
              emit acc [ Ir.unguarded (Ir.Store { mem = m; addr; v = Ir.Reg tmp }) ];
              emit acc (mirror_stores st m addr (Ir.Reg tmp))
          | Vreg _ -> raise (Unsupported (name ^ " is not an array", loc))))
  | Stream_write (s, e) ->
      let insts, v = lower_expr st e in
      emit acc (insts @ [ Ir.unguarded (Ir.Swrite { stream = s; v }) ])
  | Return None -> ()  (* structured bodies: return at end is a no-op *)
  | Return (Some _) -> raise (Unsupported ("return with value", loc))
  | Block b ->
      push_scope st;
      let inner = lower_stmts st b in
      pop_scope st;
      flush acc;
      acc.items <- List.rev_append inner acc.items
  | Tapstmt (id, args) ->
      let parts = List.map (lower_expr st) args in
      emit acc (List.concat_map fst parts);
      emit acc [ Ir.unguarded (Ir.Tap { id; args = List.map snd parts }) ]
  | Const_array (elem, name, values) ->
      let values = List.map (Value.wrap_ty elem) values in
      let mname =
        declare_mem st ~rom_init:(Some values) name elem (List.length values)
      in
      bind st name (Vmem mname)

and materialize_cond st insts v =
  match v with
  | Ir.Reg r -> (r, insts)
  | Ir.Imm n ->
      let r = fresh st Tbool in
      (r, insts @ [ Ir.unguarded (Ir.Copy { dst = r; src = Ir.Imm n; ty = Tbool }) ])

(* --- Processes and programs --------------------------------------------- *)

(** Lower one process.  [mirrors] lists [(array, replica)] pairs: the
    replica memory is created next to the original and all stores are
    duplicated (resource replication, Section 3.2).  [mem_ports] is the
    number of block-RAM ports available to the process (the paper's
    platform behaves like single-port-per-client RAM; see DESIGN.md). *)
let lower_proc ?(mirrors = []) ?(mem_ports = 1) (prog : program) (p : proc) : Ir.proc_ir =
  let st =
    {
      next_reg = 0;
      regs = [];
      mems = [];
      scopes = [];
      prog;
      mirrors = [];
      mem_ports;
    }
  in
  push_scope st;
  (* parameters become registers initialized by the runtime *)
  List.iter
    (fun (name, ty) ->
      let r = fresh st ~origin:name ty in
      bind st name (Vreg r))
    p.params;
  (* pre-declare replica memories so stores can be mirrored; the replica
     is created on first sight of the original array's declaration *)
  let st = { st with mirrors } in
  (* find array declarations to create replicas eagerly *)
  let body_with_mirrors =
    if mirrors = [] then p.body
    else
      map_stmts
        (fun stmt ->
          match stmt.s with
          | Decl (Tarray (elem, n), name, _) when List.mem_assoc name mirrors ->
              let copy = List.assoc name mirrors in
              [ stmt; { stmt with s = Decl (Tarray (elem, n), copy, None) } ]
          | Const_array (elem, name, values) when List.mem_assoc name mirrors ->
              (* a tapped ROM replicates as a second ROM with the same
                 image: there are no stores to mirror, the replica just
                 provides the tap's dedicated read port *)
              let copy = List.assoc name mirrors in
              [ stmt; { stmt with s = Const_array (elem, copy, values) } ]
          | _ -> [ stmt ])
        p.body
  in
  let body = lower_stmts st body_with_mirrors in
  pop_scope st;
  {
    Ir.name = p.pname;
    kind = p.kind;
    regs = List.rev st.regs;
    mems = List.rev st.mems;
    body;
  }

let lower_program ?(mem_ports = 1) (prog : program) : Ir.program_ir =
  {
    Ir.streams = prog.streams;
    externs = prog.externs;
    procs = List.map (lower_proc ~mem_ports prog) prog.procs;
  }
