type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- constructors -------------------------------------------------------- *)

let int n = Int (Int64.of_int n)
let i64 n = Int n
let str s = Str s
let bool b = Bool b
let float f = Float f
let list f xs = List (List.map f xs)
let opt f = function Some x -> f x | None -> Null

(* --- printing ------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Floats: integral values render with one decimal ("12.0") so they
   stay visually distinct from Ints; everything else uses %.12g, which
   is deterministic and round-trips every value the toolchain emits.
   JSON has no non-finite numbers, so those degrade to null. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (Int64.to_string n)
  | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of int * string

let parse (input : string) : (t, string) result =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub input !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode one code point (for \uXXXX escapes). *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad \\u escape %S" s)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' -> add_utf8 b (hex4 ())
              | c -> fail (Printf.sprintf "bad escape \\%c" c)));
          go ())
      | Some c when Char.code c < 0x20 -> fail "control byte in string"
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let s = String.sub input start (!pos - start) in
    if !is_float then Float (float_of_string s)
    else
      match Int64.of_string_opt s with
      | Some v -> Int v
      | None -> Float (float_of_string s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !xs)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ----------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_str = function Str s -> Some s | _ -> None

let get_i64 = function Int n -> Some n | _ -> None

let get_int = function
  | Int n when n >= Int64.of_int min_int && n <= Int64.of_int max_int ->
      Some (Int64.to_int n)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let get_float = function Float f -> Some f | Int n -> Some (Int64.to_float n) | _ -> None

let get_list = function List xs -> Some xs | _ -> None
let get_obj = function Obj kvs -> Some kvs | _ -> None
