(** The toolchain's single JSON vocabulary.

    Every machine-readable artifact — subcommand [--json] output, the
    serve protocol, bench artifacts — is a {!t} printed by
    {!to_string}, so formatting decisions (separator style, escaping,
    number rendering) are made exactly once and every report stays
    byte-deterministic.  Integers are [int64] because fuzz seeds use
    the full splitmix64 range.

    The printer emits single-line documents in the repo's historical
    style: [", "] between fields/elements and [": "] after keys. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- constructors -------------------------------------------------------- *)

val int : int -> t
val i64 : int64 -> t
val str : string -> t
val bool : bool -> t
val float : float -> t
val list : ('a -> t) -> 'a list -> t

(** [None] becomes [Null]. *)
val opt : ('a -> t) -> 'a option -> t

(* --- printing ------------------------------------------------------------ *)

(** Escape for inclusion between double quotes: quote, backslash,
    newline and tab as two-character escapes, other control bytes as
    [\uXXXX]. *)
val escape : string -> string

val to_buffer : Buffer.t -> t -> unit

(** Deterministic single-line rendering. *)
val to_string : t -> string

(* --- parsing ------------------------------------------------------------- *)

(** Parse one JSON document (surrounding whitespace allowed).  Errors
    carry the byte offset of the failure.  Numbers without a fraction
    or exponent parse as [Int]; others as [Float].  [\uXXXX] escapes
    decode to UTF-8. *)
val parse : string -> (t, string) result

(* --- accessors ----------------------------------------------------------- *)

(** Field lookup; [None] when absent or not an object.  Unknown fields
    in the input are simply never looked up, which is what makes every
    decoder in the toolchain tolerant of schema extensions. *)
val member : string -> t -> t option

val get_str : t -> string option
val get_int : t -> int option
val get_i64 : t -> int64 option
val get_bool : t -> bool option
val get_float : t -> float option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
