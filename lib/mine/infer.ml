(** Invariant inference and re-injection (the Daikon-style back half).

    Inference merges every passing run's observations into per-site
    statistics and instantiates six templates over them.  Injection goes
    the long way round on purpose — build the AST, pretty-print it,
    re-parse and re-typecheck — so every instrumented program is genuine
    InCA-C source the whole toolchain accepts, and candidates that
    cannot be expressed at their anchor (a peer variable out of scope, a
    width clash) are discarded by the type checker rather than
    special-cased here. *)

module Ast = Front.Ast
module Loc = Front.Loc
module Driver = Core.Driver
open Ast

type template =
  | Const_value of { var : string; value : int64 }
  | Value_range of { var : string; lo : int64; hi : int64 }
  | Var_ordering of { lhs : string; rhs : string }
  | Loop_bound of { iters : int }
  | Stream_length of { stream : string; len : int }
  | Stream_monotonic of { stream : string; nondecreasing : bool }

type candidate = {
  uid : int;
  cproc : string;
  cloc : Loc.t;
  template : template;
  text : string;
}

let template_kind = function
  | Const_value _ -> "const-value"
  | Value_range _ -> "value-range"
  | Var_ordering _ -> "var-ordering"
  | Loop_bound _ -> "loop-bound"
  | Stream_length _ -> "stream-length"
  | Stream_monotonic _ -> "stream-monotonic"

let text_of_template = function
  | Const_value { var; value } -> Printf.sprintf "%s == %Ld" var value
  | Value_range { var; lo; hi } -> Printf.sprintf "%s in [%Ld, %Ld]" var lo hi
  | Var_ordering { lhs; rhs } -> Printf.sprintf "%s <= %s" lhs rhs
  | Loop_bound { iters } -> Printf.sprintf "trip count == %d" iters
  | Stream_length { stream; len } -> Printf.sprintf "writes to %s == %d" stream len
  | Stream_monotonic { stream; nondecreasing } ->
      Printf.sprintf "writes to %s %s" stream
        (if nondecreasing then "nondecreasing" else "nonincreasing")

let describe c =
  if Loc.equal c.cloc Loc.none then Printf.sprintf "%s: %s" c.cproc c.text
  else Printf.sprintf "%s: %s at %s:%d" c.cproc c.text c.cloc.Loc.file c.cloc.Loc.line

(* --- inference ----------------------------------------------------------- *)

(* Minimum observations before a template is trusted: constants need a
   repeat, bounds and orderings need enough samples not to be noise. *)
let min_const = 2
let min_range = 4
let min_pair = 4
let min_loop = 2
let min_mono = 4

type scal = { mutable scount : int; mutable lo : int64; mutable hi : int64 }
type pair = { mutable pcount : int; mutable le_ok : bool; mutable ge_ok : bool }
type loopst = { mutable lcount : int; mutable llo : int; mutable lhi : int }

type streamst = {
  mutable runs_seen : int;
  mutable len_ok : bool;  (** every run wrote the same number of values *)
  len : int;  (** write count of the first run seen *)
  mutable nondec : bool;
  mutable noninc : bool;
  mutable writes_total : int;
}

(* Hash tables keyed structurally, with a side list recording first-seen
   key order so candidate emission (and thus [uid]) is deterministic. *)
let get tbl order key fresh =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = fresh () in
      Hashtbl.add tbl key v;
      order := key :: !order;
      v

let infer (prog : Ast.program) (traces : Trace.run_trace list) : candidate list =
  let scalars = Hashtbl.create 64 and scalar_order = ref [] in
  let pairs = Hashtbl.create 64 and pair_order = ref [] in
  let loops = Hashtbl.create 16 and loop_order = ref [] in
  let streams = Hashtbl.create 16 and stream_order = ref [] in
  List.iter
    (fun (t : Trace.run_trace) ->
      (* per-run scalar environment: proc -> var -> current value,
         seeded with the stimulus' process parameters so invariants can
         relate variables to parameters (e.g. [i <= n]) *)
      let env : (string * string, int64) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (pname, bindings) ->
          List.iter (fun (v, x) -> Hashtbl.replace env (pname, v) x) bindings)
        t.Trace.tr_options.Driver.params;
      (* per-run stream write state: (proc, stream) -> count, last, monotone *)
      let swr : (string * string, int ref * int64 ref * bool ref * bool ref) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun (ev : Interp.obs_event) ->
          match ev with
          | Interp.Obs_scalar { oproc; oloc; ovar; value } ->
              let s =
                get scalars scalar_order (oproc, oloc, ovar) (fun () ->
                    { scount = 0; lo = value; hi = value })
              in
              s.scount <- s.scount + 1;
              if Int64.compare value s.lo < 0 then s.lo <- value;
              if Int64.compare value s.hi > 0 then s.hi <- value;
              (* ordering against every other variable currently bound
                 in this process, checked at [ovar]'s anchor *)
              Hashtbl.iter
                (fun (p, w) wv ->
                  if p = oproc && w <> ovar then begin
                    let pr =
                      get pairs pair_order (oproc, oloc, ovar, w) (fun () ->
                          { pcount = 0; le_ok = true; ge_ok = true })
                    in
                    pr.pcount <- pr.pcount + 1;
                    if Int64.compare value wv > 0 then pr.le_ok <- false;
                    if Int64.compare value wv < 0 then pr.ge_ok <- false
                  end)
                env;
              Hashtbl.replace env (oproc, ovar) value
          | Interp.Obs_loop { oproc; oloc; iters } ->
              let l =
                get loops loop_order (oproc, oloc) (fun () ->
                    { lcount = 0; llo = iters; lhi = iters })
              in
              l.lcount <- l.lcount + 1;
              if iters < l.llo then l.llo <- iters;
              if iters > l.lhi then l.lhi <- iters
          | Interp.Obs_stream { oproc; stream; written } ->
              let count, last, nondec, noninc =
                match Hashtbl.find_opt swr (oproc, stream) with
                | Some s -> s
                | None ->
                    let s = (ref 0, ref written, ref true, ref true) in
                    Hashtbl.add swr (oproc, stream) s;
                    s
              in
              if !count > 0 then begin
                if Int64.compare written !last < 0 then nondec := false;
                if Int64.compare written !last > 0 then noninc := false
              end;
              incr count;
              last := written)
        t.Trace.events;
      (* merge this run's per-stream facts into the global table *)
      Hashtbl.iter
        (fun key (count, _, nondec, noninc) ->
          let g =
            get streams stream_order key (fun () ->
                {
                  runs_seen = 0;
                  len_ok = true;
                  len = !count;
                  nondec = true;
                  noninc = true;
                  writes_total = 0;
                })
          in
          g.runs_seen <- g.runs_seen + 1;
          if !count <> g.len then g.len_ok <- false;
          g.nondec <- g.nondec && !nondec;
          g.noninc <- g.noninc && !noninc;
          g.writes_total <- g.writes_total + !count)
        swr)
    traces;
  (* emission, in first-observation order per table *)
  let out = ref [] in
  let emit cproc cloc template =
    out := { uid = 0; cproc; cloc; template; text = text_of_template template } :: !out
  in
  List.iter
    (fun ((proc, loc, var) as key) ->
      let s : scal = Hashtbl.find scalars key in
      if s.scount >= min_const && Int64.equal s.lo s.hi then
        emit proc loc (Const_value { var; value = s.lo })
      else if s.scount >= min_range then
        emit proc loc (Value_range { var; lo = s.lo; hi = s.hi }))
    (List.rev !scalar_order);
  List.iter
    (fun ((proc, loc, v, w) as key) ->
      let p : pair = Hashtbl.find pairs key in
      if p.pcount >= min_pair then
        (* both directions holding means equality throughout — almost
           always two constants, already covered by const-value *)
        if p.le_ok && not p.ge_ok then emit proc loc (Var_ordering { lhs = v; rhs = w })
        else if p.ge_ok && not p.le_ok then
          emit proc loc (Var_ordering { lhs = w; rhs = v }))
    (List.rev !pair_order);
  List.iter
    (fun ((proc, loc) as key) ->
      let l : loopst = Hashtbl.find loops key in
      if l.lcount >= min_loop && l.llo = l.lhi && l.llo > 0 then
        emit proc loc (Loop_bound { iters = l.llo }))
    (List.rev !loop_order);
  List.iter
    (fun ((proc, stream) as key) ->
      let g : streamst = Hashtbl.find streams key in
      if g.runs_seen >= 2 && g.len_ok && g.len > 0 then
        emit proc Loc.none (Stream_length { stream; len = g.len });
      if g.writes_total >= min_mono && not (g.nondec && g.noninc) then begin
        if g.nondec then
          emit proc Loc.none (Stream_monotonic { stream; nondecreasing = true });
        if g.noninc then
          emit proc Loc.none (Stream_monotonic { stream; nondecreasing = false })
      end)
    (List.rev !stream_order);
  ignore prog;
  List.mapi (fun i c -> { c with uid = i }) (List.rev !out)

(* Take [n] candidates round-robin across template kinds, preserving
   order within a kind, so a capped mining run exercises every kind. *)
let cap_round_robin n cands =
  if List.length cands <= n then cands
  else begin
    let kinds =
      List.fold_left
        (fun acc c ->
          let k = template_kind c.template in
          if List.mem_assoc k acc then acc else acc @ [ (k, ref []) ])
        [] cands
    in
    List.iter
      (fun c -> let q = List.assoc (template_kind c.template) kinds in q := c :: !q)
      cands;
    let queues = List.map (fun (k, q) -> (k, ref (List.rev !q))) kinds in
    let out = ref [] and left = ref n and progress = ref true in
    while !left > 0 && !progress do
      progress := false;
      List.iter
        (fun (_, q) ->
          if !left > 0 then
            match !q with
            | [] -> ()
            | c :: tl ->
                q := tl;
                out := c :: !out;
                decr left;
                progress := true)
        queues
    done;
    List.sort (fun a b -> compare a.uid b.uid) !out
  end

(* --- injection ----------------------------------------------------------- *)

let i32 = Ast.int32_t

let lit n =
  let fits =
    Int64.compare n (Int64.of_int32 Int32.min_int) >= 0
    && Int64.compare n (Int64.of_int32 Int32.max_int) <= 0
  in
  Ast.mk_int ~ty:(if fits then i32 else Ast.int64_t) n

let evar v = Ast.mk_var v
let ebin op a b ty = Ast.mk_expr ty (Binop (op, a, b))

let mk_assert cond =
  Ast.mk_stmt (Assert (cond, Front.Pretty.expr_to_string cond))

let counter_name uid = Printf.sprintf "__mine_c%d" uid
let prev_name uid = Printf.sprintf "__mine_p%d" uid
let first_name uid = Printf.sprintf "__mine_f%d" uid

let cond_of_scalar_template = function
  | Const_value { var; value } -> ebin Eq (evar var) (lit value) Tbool
  | Value_range { var; lo; hi } ->
      ebin Land
        (ebin Le (lit lo) (evar var) Tbool)
        (ebin Le (evar var) (lit hi) Tbool)
        Tbool
  | Var_ordering { lhs; rhs } -> ebin Le (evar lhs) (evar rhs) Tbool
  | Loop_bound _ | Stream_length _ | Stream_monotonic _ ->
      invalid_arg "cond_of_scalar_template"

(* The observation that anchored a scalar candidate came from a specific
   statement shape; insert the assert only after a statement that can
   have produced it (the loc alone is ambiguous — the parser desugars
   [int32 x = stream_read(s)] into two statements sharing one loc). *)
let produces_var st var =
  match st.s with
  | Decl (_, v, Some _) -> v = var
  | Assign (Lvar v, _) -> v = var
  | Stream_read (Lvar v, _) -> v = var
  | For _ | While _ -> true  (* induction variable, anchored at the loop *)
  | _ -> false

let scalar_anchor_var = function
  | Const_value { var; _ } | Value_range { var; _ } -> var
  | Var_ordering { lhs; _ } -> lhs
  | Loop_bound _ | Stream_length _ | Stream_monotonic _ ->
      invalid_arg "scalar_anchor_var"

(* Append at process end, but before a trailing return. *)
let append_at_end body extra =
  match List.rev body with
  | ({ s = Return _; _ } as r) :: rev_rest -> List.rev (r :: List.rev_append extra rev_rest)
  | _ -> body @ extra

(* The declared type of the values written to [stream] in [body] (used
   to type the previous-value register of the monotonicity check). *)
let written_ty body stream =
  let found = ref None in
  Ast.iter_stmts
    (fun st ->
      match st.s with
      | Stream_write (s, e) when s = stream && !found = None -> found := Some e.ety
      | _ -> ())
    body;
  match !found with Some t -> t | None -> i32

let inject_one (prog : Ast.program) (c : candidate) : Ast.program =
  let rewrite_body body =
    match c.template with
    | Const_value _ | Value_range _ | Var_ordering _ ->
        let a = mk_assert (cond_of_scalar_template c.template) in
        let var = scalar_anchor_var c.template in
        Ast.map_stmts
          (fun st ->
            if Loc.equal st.sloc c.cloc && produces_var st var then
              match st.s with
              | For (h, b) -> [ { st with s = For (h, a :: b) } ]
              | While (w, b) -> [ { st with s = While (w, a :: b) } ]
              | _ -> [ st; a ]
            else [ st ])
          body
    | Loop_bound { iters } ->
        let cnt = counter_name c.uid in
        let decl = Ast.mk_stmt (Decl (i32, cnt, Some (lit 0L))) in
        let incr =
          Ast.mk_stmt (Assign (Lvar cnt, ebin Add (evar cnt) (lit 1L) i32))
        in
        let post = mk_assert (ebin Eq (evar cnt) (lit (Int64.of_int iters)) Tbool) in
        Ast.map_stmts
          (fun st ->
            if Loc.equal st.sloc c.cloc then
              match st.s with
              | For (h, b) -> [ decl; { st with s = For (h, incr :: b) }; post ]
              | While (w, b) -> [ decl; { st with s = While (w, incr :: b) }; post ]
              | _ -> [ st ]
            else [ st ])
          body
    | Stream_length { stream; len } ->
        let cnt = counter_name c.uid in
        let decl = Ast.mk_stmt (Decl (i32, cnt, Some (lit 0L))) in
        let incr =
          Ast.mk_stmt (Assign (Lvar cnt, ebin Add (evar cnt) (lit 1L) i32))
        in
        let post = mk_assert (ebin Eq (evar cnt) (lit (Int64.of_int len)) Tbool) in
        let body =
          Ast.map_stmts
            (fun st ->
              match st.s with
              | Stream_write (s, _) when s = stream -> [ st; incr ]
              | _ -> [ st ])
            body
        in
        append_at_end (decl :: body) [ post ]
    | Stream_monotonic { stream; nondecreasing } ->
        let pty = written_ty body stream in
        let prev = prev_name c.uid and first = first_name c.uid in
        let decls =
          [
            Ast.mk_stmt (Decl (pty, prev, Some (Ast.mk_int ~ty:pty 0L)));
            Ast.mk_stmt (Decl (i32, first, Some (lit 1L)));
          ]
        in
        let body =
          Ast.map_stmts
            (fun st ->
              match st.s with
              | Stream_write (s, e) when s = stream ->
                  let op = if nondecreasing then Le else Ge in
                  let check =
                    Ast.mk_stmt
                      (If
                         ( ebin Eq (evar first) (lit 0L) Tbool,
                           [ mk_assert (ebin op (evar prev) e Tbool) ],
                           [] ))
                  in
                  [
                    check;
                    Ast.mk_stmt (Assign (Lvar first, lit 0L));
                    Ast.mk_stmt (Assign (Lvar prev, e));
                    st;
                  ]
              | _ -> [ st ])
            body
        in
        decls @ body
  in
  {
    prog with
    procs =
      List.map
        (fun p -> if p.pname = c.cproc then { p with body = rewrite_body p.body } else p)
        prog.procs;
  }

let inject_ast (prog : Ast.program) (cands : candidate list) : Ast.program =
  List.fold_left inject_one prog
    (List.sort (fun a b -> compare a.uid b.uid) cands)

let inject (prog : Ast.program) (cands : candidate list) :
    (string * Ast.program) option =
  match
    let ast = inject_ast prog cands in
    let src = Front.Pretty.program_to_string ast in
    (src, Front.Typecheck.parse_and_check ~file:"mined.c" src)
  with
  | src, p -> Some (src, p)
  | exception _ -> None

(* --- falsification ------------------------------------------------------- *)

let survivors (prog : Ast.program) ~(stimuli : Trace.stimulus list) cands =
  List.filter
    (fun c ->
      match inject prog [ c ] with
      | None -> false
      | Some (_, instrumented) ->
          List.for_all
            (fun (st : Trace.stimulus) ->
              let cfg =
                {
                  Interp.default_config with
                  Interp.params = st.Trace.options.Driver.params;
                  feeds = st.Trace.options.Driver.feeds;
                  drains = st.Trace.options.Driver.drains;
                  extern_models = st.Trace.options.Driver.hw_models;
                }
              in
              match Interp.run ~cfg instrumented with
              | r -> Interp.ok r
              | exception _ -> false)
            stimuli)
    cands
