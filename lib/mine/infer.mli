(** Invariant inference and re-injection (the Daikon-style back half).

    Six templates are instantiated over the merged passing-run traces of
    {!Trace.collect}; a candidate survives inference only if no passing
    run falsifies it.  Surviving candidates are injected back into the
    program as ordinary [assert] statements — via pretty-print and
    re-parse, so every instrumented program is genuine InCA-C source —
    and {!Rank} scores them by mutant-kill power. *)

type template =
  | Const_value of { var : string; value : int64 }
      (** the variable held one value at this statement, every run *)
  | Value_range of { var : string; lo : int64; hi : int64 }
      (** observed bounds at this statement across all runs *)
  | Var_ordering of { lhs : string; rhs : string }
      (** [lhs <= rhs] held whenever [lhs] was assigned here ([rhs] is
          another in-scope variable or a process parameter) *)
  | Loop_bound of { iters : int }
      (** the loop at the anchor completed exactly [iters] iterations in
          every execution — checked post-loop via an injected counter *)
  | Stream_length of { stream : string; len : int }
      (** the anchor process wrote exactly [len] values to [stream] per
          run — checked at process end via an injected counter *)
  | Stream_monotonic of { stream : string; nondecreasing : bool }
      (** successive writes to [stream] from the anchor process were
          monotone — checked at each write via an injected
          previous-value register *)

type candidate = {
  uid : int;  (** deterministic: position in canonical inference order *)
  cproc : string;
  cloc : Front.Loc.t;
      (** anchor statement ({!Front.Loc.none} for the stream templates,
          which are process-scoped) *)
  template : template;
  text : string;  (** human-readable invariant, e.g. ["i in [0, 31]"] *)
}

(** Short kind name ("const-value", "value-range", "var-ordering",
    "loop-bound", "stream-length", "stream-monotonic"). *)
val template_kind : template -> string

(** One-line description with anchor, for reports. *)
val describe : candidate -> string

(** Instantiate every template over the merged traces.  Deterministic:
    candidates appear in first-observation order with [uid] numbered
    from 0. *)
val infer : Front.Ast.program -> Trace.run_trace list -> candidate list

(** Keep at most [n] candidates, taken round-robin across template
    kinds so a capped mining run still exercises every kind. *)
val cap_round_robin : int -> candidate list -> candidate list

(** Pure AST injection of the candidates' checks (asserts, plus counter
    / previous-value bookkeeping for the loop and stream templates). *)
val inject_ast : Front.Ast.program -> candidate list -> Front.Ast.program

(** [inject prog cands] injects, pretty-prints, and re-parses, returning
    the instrumented source and its checked program — or [None] when
    the candidate cannot be expressed at its anchor (out-of-scope
    variable, width clash): inexpressible candidates are discarded, not
    errors. *)
val inject :
  Front.Ast.program -> candidate list -> (string * Front.Ast.program) option

(** Falsification filter: keep the candidates whose singly-instrumented
    program still passes software simulation under every [stimuli]
    entry (callers pass the stimuli whose uninstrumented run passed). *)
val survivors :
  Front.Ast.program ->
  stimuli:Trace.stimulus list ->
  candidate list ->
  candidate list
